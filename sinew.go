// Package sinew is a Go implementation of Sinew (Tahara, Diamond, Abadi —
// SIGMOD 2014): a SQL system for multi-structured data. It stores arbitrary
// JSON documents inside physical and virtual columns of an embedded
// relational database and presents a dynamic universal-relation view the
// user queries with standard SQL — no schema declaration at any point.
//
// # Quick start
//
//	db := sinew.Open(sinew.DefaultConfig())
//	db.CreateCollection("webrequests")
//	db.LoadJSONLines("webrequests", strings.NewReader(
//		`{"url":"www.sample-site.com","hits":22,"country":"pl"}`+"\n"+
//		`{"url":"www.sample-site2.com","hits":15,"owner":"John P. Smith"}`))
//	res, err := db.Query(`SELECT url FROM webrequests WHERE hits > 20`)
//
// Every unique key (nested keys dot-delimited, e.g. "user.id") is a column
// of the logical view. Behind the scenes the schema analyzer
// (DB.AnalyzeSchema) decides which keys earn physical columns, and a
// background column materializer (NewMaterializer) moves values between the
// serialized column reservoir and physical columns one atomic row update at
// a time; queries remain correct throughout via automatic
// COALESCE-rewriting of partially materialized ("dirty") columns.
//
// The package re-exports the implementation in internal/core; the embedded
// RDBMS substrate lives in internal/rdbms and is reachable through
// DB.RDBMS for EXPLAIN and optimizer tuning.
package sinew

import (
	"github.com/sinewdata/sinew/internal/core"
	"github.com/sinewdata/sinew/internal/rdbms"
)

// DB is a Sinew database handle. See the package documentation for the
// lifecycle: Open → CreateCollection → LoadJSONLines/LoadDocuments →
// Query/Explain, with AnalyzeSchema + Materializer runs interleaved at any
// point.
type DB = core.DB

// Config carries Sinew's tunables: the §3.1.3 materialization thresholds
// and the optional §4.3 text index.
type Config = core.Config

// CollectionOptions customize per-collection load behaviour (array
// strategies, §4.2).
type CollectionOptions = core.CollectionOptions

// ArrayMode selects an array storage strategy (§4.2).
type ArrayMode = core.ArrayMode

// Array strategies.
const (
	ArrayAsDatum       = core.ArrayAsDatum
	ArrayPositional    = core.ArrayPositional
	ArraySeparateTable = core.ArraySeparateTable
)

// Materializer is the background column materializer (§3.1.4).
type Materializer = core.Materializer

// LoadResult summarizes a bulk load.
type LoadResult = core.LoadResult

// AnalyzeDecision is one schema-analyzer outcome (§3.1.3).
type AnalyzeDecision = core.AnalyzeDecision

// Result is a query result: column names, types, and materialized rows.
type Result = rdbms.Result

// Open creates an in-memory Sinew database.
func Open(cfg Config) *DB { return core.Open(cfg) }

// DefaultConfig returns the paper's §6.1 policy: materialize keys present
// in ≥60% of documents with cardinality >200; text index off.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewMaterializer returns a column materializer for db. Run it in the
// background with Run, or drive it explicitly with RunOnce; Pause/Resume
// interrupt it between atomic row updates.
func NewMaterializer(db *DB) *Materializer { return core.NewMaterializer(db) }
