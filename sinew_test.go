// Public-API integration tests: everything a downstream user touches goes
// through the sinew package exactly as the README shows.
package sinew_test

import (
	"strings"
	"testing"

	sinew "github.com/sinewdata/sinew"
)

func TestReadmeQuickstart(t *testing.T) {
	db := sinew.Open(sinew.DefaultConfig())
	if err := db.CreateCollection("webrequests"); err != nil {
		t.Fatal(err)
	}
	input := `{"url":"www.sample-site.com","hits":22,"avg_site_visit":128.5,"country":"pl"}
{"url":"www.sample-site2.com","hits":15,"ip":"123.45.67.89","owner":"John P. Smith"}`
	res, err := db.LoadJSONLines("webrequests", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if res.Documents != 2 {
		t.Fatalf("documents = %d", res.Documents)
	}
	out, err := db.Query(`SELECT url, owner FROM webrequests WHERE hits > 10 ORDER BY hits DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 || out.Rows[0][0].S != "www.sample-site.com" {
		t.Fatalf("rows = %v", out.Rows)
	}
	if !out.Rows[0][1].IsNull() || out.Rows[1][1].S != "John P. Smith" {
		t.Errorf("owner column = %v / %v", out.Rows[0][1], out.Rows[1][1])
	}
}

func TestFullLifecycleThroughPublicAPI(t *testing.T) {
	cfg := sinew.Config{DensityThreshold: 0.5, CardinalityThreshold: 3, EnableTextIndex: true}
	db := sinew.Open(cfg)
	if err := db.CreateCollection("logs"); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for i := 0; i < 40; i++ {
		lines = append(lines,
			`{"level":`+string(rune('0'+i%7))+`,"msg":"event number `+string(rune('a'+i%26))+`"}`)
	}
	if _, err := db.LoadJSONLines("logs", strings.NewReader(strings.Join(lines, "\n"))); err != nil {
		t.Fatal(err)
	}

	decisions, err := db.AnalyzeSchema("logs")
	if err != nil {
		t.Fatal(err)
	}
	var materialized int
	for _, d := range decisions {
		if d.Materialize {
			materialized++
		}
	}
	if materialized == 0 {
		t.Fatal("analyzer materialized nothing")
	}
	mat := sinew.NewMaterializer(db)
	if _, err := mat.RunOnce("logs"); err != nil {
		t.Fatal(err)
	}
	if err := db.RDBMS().Analyze("logs"); err != nil {
		t.Fatal(err)
	}
	// EXPLAIN works through the public handle.
	plan, err := db.Explain(`SELECT DISTINCT level FROM logs`)
	if err != nil || !strings.Contains(plan, "Seq Scan") {
		t.Fatalf("plan = %q err = %v", plan, err)
	}
	// Text search through the public handle.
	res, err := db.Query(`SELECT COUNT(*) FROM logs WHERE matches('msg', 'event')`)
	if err != nil || res.Rows[0][0].I != 40 {
		t.Fatalf("matches = %v err = %v", res.Rows, err)
	}
	// Update through the public handle.
	upd, err := db.Query(`UPDATE logs SET msg = 'redacted' WHERE level = 3`)
	if err != nil || upd.RowsAffected == 0 {
		t.Fatalf("update = %v err = %v", upd, err)
	}
}

func TestArrayOptionsThroughPublicAPI(t *testing.T) {
	db := sinew.Open(sinew.DefaultConfig())
	err := db.CreateCollection("carts", sinew.CollectionOptions{
		ArrayModes: map[string]sinew.ArrayMode{"items": sinew.ArraySeparateTable},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadJSONLines("carts", strings.NewReader(
		`{"id":1,"items":["milk","bread"]}
{"id":2,"items":["milk"]}`)); err != nil {
		t.Fatal(err)
	}
	// The shredded element table is queryable through the RDBMS.
	res, err := db.RDBMS().Query(`SELECT COUNT(*) FROM carts__items_elems WHERE elem_text = 'milk'`)
	if err != nil || res.Rows[0][0].I != 2 {
		t.Fatalf("elems = %v err = %v", res.Rows, err)
	}
}
