// Command sinewbench regenerates the tables and figures of the Sinew
// paper's evaluation (SIGMOD 2014, §6 and Appendices A–B) using the
// embedded reproduction harness.
//
// Usage:
//
//	sinewbench [-exp all|table2|table3|table4|table5|fig6|fig7|fig8|ablations|counts]
//	           [-small N] [-large N] [-reps R] [-seed S] [-json FILE]
//
// With -json, the Figure 6 (Sinew column), Table 5, and plan-cache
// benchmarks are measured via testing.Benchmark and written as a JSON
// report (ns/op and allocs/op per query) instead of the text tables;
// `make bench` uses this to produce BENCH_PR2.json.
//
// The -small scale plays the paper's in-memory 16M-record runs and -large
// the disk-bound 64M-record runs (scaled 1:4 by default); see DESIGN.md §2
// for the substitution rationale.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/sinewdata/sinew/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment to run: all, table2, table3, table4, table5, fig6, fig7, fig8, ablations, counts")
		small = flag.Int("small", 4000, "record count for the in-memory scale")
		large = flag.Int("large", 16000, "record count for the disk-bound scale")
		reps  = flag.Int("reps", 2, "repetitions per query cell (averaged)")
		seed  = flag.Int64("seed", 42, "dataset generator seed")
		jsonP = flag.String("json", "", "write a machine-readable benchmark report (ns/op, allocs/op) to this file")
	)
	flag.Parse()
	if *jsonP != "" {
		if err := runJSON(*jsonP, *small, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "sinewbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *small, *large, *reps, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "sinewbench:", err)
		os.Exit(1)
	}
}

func runJSON(path string, small int, seed int64) error {
	fmt.Printf("measuring benchmark report (%d records)...\n", small)
	rep, err := bench.WriteReport(path, small, seed)
	if err != nil {
		return err
	}
	for _, q := range rep.Figure6Sinew {
		fmt.Printf("  fig6 %-4s %12d ns/op %8d allocs/op\n", q.Query, q.NsPerOp, q.AllocsPerOp)
	}
	for _, q := range rep.Table5 {
		fmt.Printf("  table5 virtual %12d ns/op physical %12d ns/op (cpu %+.1f%%, disk %+.1f%%)  %s\n",
			q.VirtualNsPerOp, q.PhysicalNsPerOp, q.CPUOverheadPct, q.DiskOverheadPct, q.SQL)
	}
	for _, q := range rep.PlanCache {
		fmt.Printf("  plan-cache hit %12d ns/op miss %12d ns/op (%.1fx)  %s\n",
			q.CachedNsPerOp, q.UncachedNsPerOp, q.SpeedupX, q.SQL)
	}
	fmt.Println("wrote", path)
	return nil
}

func run(exp string, small, large, reps int, seed int64) error {
	want := func(name string) bool { return exp == "all" || exp == name }
	var smallFix, largeFix *bench.NoBenchFixture
	needSmall := want("table3") || want("fig6") || want("fig7") || want("fig8") || want("counts")
	needLarge := want("fig6") || want("fig7")

	if needSmall {
		fmt.Printf("loading NoBench small scale (%d records)...\n", small)
		f, err := bench.SetupNoBench(small, seed, 0)
		if err != nil {
			return err
		}
		smallFix = f
	}
	if needLarge {
		fmt.Printf("loading NoBench large scale (%d records)...\n", large)
		// Scratch budget sized so the MongoDB client-side join exhausts it
		// at this scale (the paper's out-of-disk DNF).
		f, err := bench.SetupNoBench(large, seed, int64(large)*300)
		if err != nil {
			return err
		}
		largeFix = f
	}

	if want("table3") {
		fmt.Println()
		fmt.Println(bench.Table3(smallFix))
	}
	if want("table2") {
		fmt.Println()
		f, err := bench.SetupTwitter(small, 11)
		if err != nil {
			return err
		}
		tbl, err := bench.Table2(f, true)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
	}
	if want("fig6") {
		fmt.Println()
		fmt.Println(bench.Figure6(smallFix, bench.WarmCacheIOModel(), reps))
		fmt.Println()
		fmt.Println(bench.Figure6(largeFix, bench.DiskBoundIOModel(largeFix.DatasetBytes(bench.SysSinew)), reps))
	}
	if want("fig7") {
		fmt.Println()
		fmt.Println(bench.Figure7(smallFix, bench.WarmCacheIOModel(), reps))
		fmt.Println()
		fmt.Println(bench.Figure7(largeFix, bench.DiskBoundIOModel(largeFix.DatasetBytes(bench.SysSinew)), reps))
	}
	if want("fig8") {
		fmt.Println()
		fmt.Println(bench.Figure8(smallFix, bench.WarmCacheIOModel(), reps))
	}
	if want("table4") {
		fmt.Println()
		tbl, err := bench.Table4(small, 3)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
	}
	if want("table5") {
		fmt.Println()
		f, err := bench.SetupTwitter(small, 5)
		if err != nil {
			return err
		}
		tbl, err := bench.Table5(f, reps)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
	}
	if want("counts") {
		fmt.Println()
		tbl, err := bench.RowCounts(smallFix)
		if err != nil {
			return err
		}
		fmt.Println(tbl)
	}
	if want("ablations") {
		for _, fn := range []func() (*bench.Table, error){
			func() (*bench.Table, error) { return bench.AblationHybrid(small/2, 9) },
			func() (*bench.Table, error) { return bench.AblationDirtyCoalesce(small, 13, reps) },
			func() (*bench.Table, error) { return bench.AblationPolicy(small/2, 17) },
			func() (*bench.Table, error) { return bench.AblationBinarySearch(small, 21) },
			func() (*bench.Table, error) { return bench.AblationArrays(small/2, 23) },
		} {
			tbl, err := fn()
			if err != nil {
				return err
			}
			fmt.Println()
			fmt.Println(tbl)
		}
	}
	return nil
}
