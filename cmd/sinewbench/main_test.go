package main

import "testing"

// TestRunExperimentsTiny drives the experiment dispatcher end to end at a
// tiny scale; the heavy lifting is covered in internal/bench.
func TestRunExperimentsTiny(t *testing.T) {
	for _, exp := range []string{"table3", "table4", "fig8", "counts"} {
		if err := run(exp, 300, 600, 1, 1); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	if err := run("nonsense", 100, 200, 1, 1); err != nil {
		t.Fatal(err)
	}
}
