package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

var corpus = filepath.Join("..", "..", "internal", "lint", "testdata", "src")

// The golden corpus seeds at least one violation per check; pointing the
// CLI at it must exit 1 and name every check.
func TestSeededViolationsExitNonzero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", corpus, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("run() = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	for _, id := range []string{
		"sinew/close-propagation", "sinew/mutex-guard", "sinew/datum-switch",
		"sinew/plan-cache-key", "sinew/unchecked-error", "sinew/bad-ignore",
		"sinew/atomic-consistency", "sinew/batch-escape", "sinew/epoch-order",
	} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("output missing %s findings:\n%s", id, out.String())
		}
	}
	if !strings.Contains(errb.String(), "issue(s) found") {
		t.Errorf("stderr missing summary line: %q", errb.String())
	}
}

// A package pattern restricts the report to that subtree.
func TestPatternFilter(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", corpus, "./storage"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run() = %d, want 1\nstderr: %s", code, errb.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if !strings.HasPrefix(line, "storage/") {
			t.Errorf("diagnostic outside ./storage: %q", line)
		}
	}
	if !strings.Contains(out.String(), "sinew/unchecked-error") {
		t.Errorf("expected unchecked-error findings under ./storage:\n%s", out.String())
	}
}

func TestListFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("want 10 registered checks, got %d:\n%s", len(lines), out.String())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "sinew/") {
			t.Errorf("check line missing sinew/ prefix: %q", l)
		}
	}
}

// -json emits machine-readable diagnostics with module-relative paths.
func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", corpus, "-json", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("run(-json) = %d, want 1\nstderr: %s", code, errb.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("JSON output carries no diagnostics")
	}
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Col <= 0 {
			t.Errorf("diagnostic missing position: %+v", d)
		}
		if filepath.IsAbs(d.File) || strings.Contains(d.File, `\`) {
			t.Errorf("file should be module-relative slash-separated, got %q", d.File)
		}
		if !strings.HasPrefix(d.Check, "sinew/") {
			t.Errorf("check missing sinew/ prefix: %q", d.Check)
		}
	}
}

// -v reports one wall-time line per check on stderr.
func TestVerboseTimings(t *testing.T) {
	var out, errb bytes.Buffer
	run([]string{"-C", corpus, "-v", "./..."}, &out, &errb)
	for _, id := range []string{"sinew/atomic-consistency", "sinew/batch-escape", "sinew/epoch-order", "sinew/mutex-guard"} {
		if !strings.Contains(errb.String(), id) {
			t.Errorf("verbose stderr missing a timing line for %s:\n%s", id, errb.String())
		}
	}
}

func TestMissingModuleRoot(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", t.TempDir(), "./..."}, &out, &errb); code != 2 {
		t.Fatalf("run() on a moduleless directory = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "go.mod") {
		t.Errorf("stderr should mention the missing go.mod: %q", errb.String())
	}
}
