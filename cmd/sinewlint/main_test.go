package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

var corpus = filepath.Join("..", "..", "internal", "lint", "testdata", "src")

// The golden corpus seeds at least one violation per check; pointing the
// CLI at it must exit 1 and name every check.
func TestSeededViolationsExitNonzero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", corpus, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("run() = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	for _, id := range []string{
		"sinew/close-propagation", "sinew/mutex-guard", "sinew/datum-switch",
		"sinew/plan-cache-key", "sinew/unchecked-error", "sinew/bad-ignore",
	} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("output missing %s findings:\n%s", id, out.String())
		}
	}
	if !strings.Contains(errb.String(), "issue(s) found") {
		t.Errorf("stderr missing summary line: %q", errb.String())
	}
}

// A package pattern restricts the report to that subtree.
func TestPatternFilter(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-C", corpus, "./storage"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run() = %d, want 1\nstderr: %s", code, errb.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if !strings.HasPrefix(line, "storage/") {
			t.Errorf("diagnostic outside ./storage: %q", line)
		}
	}
	if !strings.Contains(out.String(), "sinew/unchecked-error") {
		t.Errorf("expected unchecked-error findings under ./storage:\n%s", out.String())
	}
}

func TestListFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("want 7 registered checks, got %d:\n%s", len(lines), out.String())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "sinew/") {
			t.Errorf("check line missing sinew/ prefix: %q", l)
		}
	}
}

func TestMissingModuleRoot(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", t.TempDir(), "./..."}, &out, &errb); code != 2 {
		t.Fatalf("run() on a moduleless directory = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "go.mod") {
		t.Errorf("stderr should mention the missing go.mod: %q", errb.String())
	}
}
