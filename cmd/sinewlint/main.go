// Command sinewlint is the project's static analyzer: it loads the whole
// module with the standard library's go/ast + go/types (no external
// dependencies, matching the module's stdlib-only policy) and runs a suite
// of Sinew-specific checks — invariants the Go compiler cannot express.
// Positional checks cover resource and API discipline:
//
//	sinew/close-propagation  operators forward Close() so pager byte
//	                         accounting stays exact (worker hand-offs to
//	                         a WaitGroup-joined goroutine are proven)
//	sinew/mutex-guard        mutex-guarded fields are never touched
//	                         without the lock, path-sensitively
//	sinew/datum-switch       switches over the engine's type tags are
//	                         exhaustive
//	sinew/plan-cache-key     plan-shaping session variables are part of
//	                         the plan-cache key
//	sinew/unchecked-error    storage/serial/exec never silently drop
//	                         errors
//	sinew/sel-invariant      selection vectors are honored when indexing
//	                         batch columns
//	sinew/snapshot-pin       live heap scans pin a snapshot first
//
// and three flow-sensitive checks run on a per-function CFG with a
// must/may dataflow solver (internal/lint/cfg.go, dataflow.go):
//
//	sinew/atomic-consistency a field accessed through sync/atomic
//	                         anywhere is never read or written plainly
//	sinew/batch-escape       pooled RowBatches are cloned before crossing
//	                         a channel and never used after release
//	sinew/epoch-order        DDL/ANALYZE handlers bump the catalog epoch
//	                         before publishing the heap snapshot
//
// Usage:
//
//	sinewlint [-C dir] [-list] [-json] [-v] [./...]
//
// Diagnostics print as file:line:col: check-id: message (or, with -json,
// as a JSON array of {file,line,col,check,message} objects for tooling
// such as the CI problem matcher), and a non-empty report exits 1
// (load/usage failures exit 2). -v prints per-check wall time to stderr;
// checks run concurrently, so the sum exceeds the real elapsed time.
// Suppress a deliberate exception in source with
// `//lint:ignore sinew/<id> reason`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/sinewdata/sinew/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the -json wire shape, consumed by the GitHub Actions
// problem matcher and any editor integration.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sinewlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "module root (directory containing go.mod), or any directory beneath it")
	list := fs.Bool("list", false, "list registered checks and exit")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	verbose := fs.Bool("v", false, "print per-check wall time to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	checks := lint.Registry()
	if *list {
		for _, c := range checks {
			fmt.Fprintf(stdout, "sinew/%s\t%s\n", c.ID(), c.Doc())
		}
		return 0
	}
	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "sinewlint:", err)
		return 2
	}
	prog, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(stderr, "sinewlint:", err)
		return 2
	}
	diags, timings := lint.RunTimed(prog, checks)
	diags = filterByPatterns(diags, root, fs.Args())
	if *verbose {
		for _, tm := range timings {
			fmt.Fprintf(stderr, "sinewlint: %-28s %10s  %d finding(s)\n", tm.ID, tm.Elapsed.Round(10*time.Microsecond), tm.Findings)
		}
	}
	relName := func(name string) string {
		if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}
	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File: filepath.ToSlash(relName(d.Pos.Filename)), Line: d.Pos.Line, Col: d.Pos.Column,
				Check: d.Check, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "sinewlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: sinewlint: %s: %s\n", relName(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "sinewlint: %d issue(s) found\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", abs)
		}
		d = parent
	}
}

// filterByPatterns keeps diagnostics under the requested package patterns.
// The supported forms mirror the go tool: "./..." (everything, the
// default), "./dir/..." (a subtree), and "./dir" (one directory).
func filterByPatterns(diags []lint.Diagnostic, root string, patterns []string) []lint.Diagnostic {
	if len(patterns) == 0 {
		return diags
	}
	keep := diags[:0]
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			keep = append(keep, d)
			continue
		}
		rel = filepath.ToSlash(rel)
		for _, p := range patterns {
			if matchPattern(rel, p) {
				keep = append(keep, d)
				break
			}
		}
	}
	return keep
}

func matchPattern(relFile, pattern string) bool {
	pattern = strings.TrimPrefix(filepath.ToSlash(pattern), "./")
	dir := "."
	if i := strings.LastIndex(relFile, "/"); i >= 0 {
		dir = relFile[:i]
	}
	switch {
	case pattern == "..." || pattern == "":
		return true
	case strings.HasSuffix(pattern, "/..."):
		prefix := strings.TrimSuffix(pattern, "/...")
		return dir == prefix || strings.HasPrefix(dir, prefix+"/")
	default:
		return dir == pattern
	}
}
