// Command sinewlint is the project's static analyzer: it loads the whole
// module with the standard library's go/ast + go/types (no external
// dependencies, matching the module's stdlib-only policy) and runs a suite
// of Sinew-specific checks — invariants the Go compiler cannot express:
//
//	sinew/close-propagation  operators forward Close() so pager byte
//	                         accounting stays exact
//	sinew/mutex-guard        mutex-guarded fields are never touched
//	                         without the lock
//	sinew/datum-switch       switches over the engine's type tags are
//	                         exhaustive
//	sinew/plan-cache-key     plan-shaping session variables are part of
//	                         the plan-cache key
//	sinew/unchecked-error    storage/serial/exec never silently drop
//	                         errors
//
// Usage:
//
//	sinewlint [-C dir] [-list] [./...]
//
// Diagnostics print as file:line:col: check-id: message, and a non-empty
// report exits 1 (load/usage failures exit 2). Suppress a deliberate
// exception in source with `//lint:ignore sinew/<id> reason`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/sinewdata/sinew/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sinewlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "module root (directory containing go.mod), or any directory beneath it")
	list := fs.Bool("list", false, "list registered checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	checks := lint.Registry()
	if *list {
		for _, c := range checks {
			fmt.Fprintf(stdout, "sinew/%s\t%s\n", c.ID(), c.Doc())
		}
		return 0
	}
	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "sinewlint:", err)
		return 2
	}
	prog, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(stderr, "sinewlint:", err)
		return 2
	}
	diags := lint.Run(prog, checks)
	diags = filterByPatterns(diags, root, fs.Args())
	for _, d := range diags {
		rel := d.Pos.Filename
		if r, err := filepath.Rel(root, rel); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		fmt.Fprintf(stdout, "%s:%d:%d: sinewlint: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "sinewlint: %d issue(s) found\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", abs)
		}
		d = parent
	}
}

// filterByPatterns keeps diagnostics under the requested package patterns.
// The supported forms mirror the go tool: "./..." (everything, the
// default), "./dir/..." (a subtree), and "./dir" (one directory).
func filterByPatterns(diags []lint.Diagnostic, root string, patterns []string) []lint.Diagnostic {
	if len(patterns) == 0 {
		return diags
	}
	keep := diags[:0]
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			keep = append(keep, d)
			continue
		}
		rel = filepath.ToSlash(rel)
		for _, p := range patterns {
			if matchPattern(rel, p) {
				keep = append(keep, d)
				break
			}
		}
	}
	return keep
}

func matchPattern(relFile, pattern string) bool {
	pattern = strings.TrimPrefix(filepath.ToSlash(pattern), "./")
	dir := "."
	if i := strings.LastIndex(relFile, "/"); i >= 0 {
		dir = relFile[:i]
	}
	switch {
	case pattern == "..." || pattern == "":
		return true
	case strings.HasSuffix(pattern, "/..."):
		prefix := strings.TrimSuffix(pattern, "/...")
		return dir == prefix || strings.HasPrefix(dir, prefix+"/")
	default:
		return dir == pattern
	}
}
