// Command benchdiff compares two benchmark reports produced by
// `sinewbench -json` and fails (exit 1) when any Figure 6 query — or
// either leg (virtual/physical) of any Table 5 row — regressed beyond the
// tolerance in ns/op or allocs/op. `make bench-diff` uses it to gate PRs
// on the perf trajectory:
//
//	benchdiff -baseline BENCH_PR7.json -new BENCH_PR8.json -tolerance 10
//
// When -baseline is omitted, the newest BENCH_PR*.json beside the -new
// report (highest PR number, the -new file itself excluded) is used, so
// the gate follows the latest recorded baseline without editing the
// invocation every PR. -old remains as a deprecated alias.
//
// Queries present in only one report are reported but do not fail the
// diff (the query set can grow across PRs). Alloc counts below the noise
// floor (-minallocs) are exempt from the allocs gate: a jump from 3 to 5
// allocations is measurement noise, not a regression. Symmetrically,
// queries whose baseline runs under the -minns floor are exempt from the
// ns gate: at tens of microseconds per op, scheduler and timer jitter on a
// shared box exceeds any percentage tolerance worth enforcing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

type queryBench struct {
	Query       string `json:"query"`
	SQL         string `json:"sql"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

type table5Bench struct {
	SQL             string `json:"sql"`
	VirtualNsPerOp  int64  `json:"virtual_ns_per_op"`
	VirtualAllocs   int64  `json:"virtual_allocs_per_op"`
	PhysicalNsPerOp int64  `json:"physical_ns_per_op"`
	PhysicalAllocs  int64  `json:"physical_allocs_per_op"`
}

type report struct {
	Records      int           `json:"records"`
	Figure6Sinew []queryBench  `json:"figure6_sinew"`
	Table5       []table5Bench `json:"table5"`
}

func load(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// prNumber extracts N from a BENCH_PRN.json file name.
func prNumber(base string) (int, bool) {
	const prefix, suffix = "BENCH_PR", ".json"
	if len(base) <= len(prefix)+len(suffix) ||
		base[:len(prefix)] != prefix || base[len(base)-len(suffix):] != suffix {
		return 0, false
	}
	n, err := strconv.Atoi(base[len(prefix) : len(base)-len(suffix)])
	if err != nil {
		return 0, false
	}
	return n, true
}

// newestBaseline picks the default baseline: the BENCH_PR*.json with the
// highest PR number in dir, excluding the candidate report itself.
func newestBaseline(dir, exclude string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_PR*.json"))
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, m := range matches {
		if filepath.Clean(m) == filepath.Clean(exclude) {
			continue
		}
		n, ok := prNumber(filepath.Base(m))
		if !ok {
			continue
		}
		if n > bestN {
			best, bestN = m, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_PR*.json baseline found in %s", dir)
	}
	return best, nil
}

func pct(oldV, newV int64) float64 {
	if oldV <= 0 {
		return 0
	}
	return (float64(newV)/float64(oldV) - 1) * 100
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		basePath  = fs.String("baseline", "", "baseline report (default: newest BENCH_PR*.json beside -new, excluding -new itself)")
		oldPath   = fs.String("old", "", "deprecated alias for -baseline")
		newPath   = fs.String("new", "BENCH_PR8.json", "candidate report")
		tolerance = fs.Float64("tolerance", 10, "max allowed regression in percent")
		minAllocs = fs.Int64("minallocs", 64, "allocs/op noise floor below which the allocs gate is skipped")
		minNs     = fs.Int64("minns", 50000, "baseline ns/op noise floor below which the ns gate is skipped")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	baseline := *basePath
	if baseline == "" {
		baseline = *oldPath
	}
	if baseline == "" {
		var err error
		baseline, err = newestBaseline(filepath.Dir(*newPath), *newPath)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		fmt.Fprintf(stdout, "benchdiff: baseline %s\n", baseline)
	}

	oldRep, err := load(baseline)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	newRep, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if oldRep.Records != newRep.Records {
		fmt.Fprintf(stderr, "benchdiff: record counts differ (%d vs %d); timings are not comparable\n",
			oldRep.Records, newRep.Records)
		return 2
	}

	oldBy := make(map[string]queryBench, len(oldRep.Figure6Sinew))
	for _, q := range oldRep.Figure6Sinew {
		oldBy[q.Query] = q
	}

	failed := false
	fmt.Fprintf(stdout, "%-5s %14s %14s %8s   %10s %10s %8s\n",
		"query", "old ns/op", "new ns/op", "Δ%", "old allocs", "new allocs", "Δ%")
	for _, n := range newRep.Figure6Sinew {
		o, ok := oldBy[n.Query]
		if !ok {
			fmt.Fprintf(stdout, "%-5s %14s %14d %8s   %10s %10d %8s  (new query)\n",
				n.Query, "-", n.NsPerOp, "-", "-", n.AllocsPerOp, "-")
			continue
		}
		delete(oldBy, n.Query)
		nsD := pct(o.NsPerOp, n.NsPerOp)
		alD := pct(o.AllocsPerOp, n.AllocsPerOp)
		mark := ""
		if nsD > *tolerance && o.NsPerOp >= *minNs {
			mark, failed = "  REGRESSION(ns)", true
		}
		if alD > *tolerance && o.AllocsPerOp >= *minAllocs {
			mark, failed = mark+"  REGRESSION(allocs)", true
		}
		fmt.Fprintf(stdout, "%-5s %14d %14d %+7.1f%%   %10d %10d %+7.1f%%%s\n",
			n.Query, o.NsPerOp, n.NsPerOp, nsD, o.AllocsPerOp, n.AllocsPerOp, alD, mark)
	}
	dropped := make([]string, 0, len(oldBy))
	for q := range oldBy {
		dropped = append(dropped, q)
	}
	sort.Strings(dropped)
	for _, q := range dropped {
		fmt.Fprintf(stdout, "%-5s dropped from new report\n", q)
	}

	// Table 5 rows are gated too (keyed by SQL; rows new in the candidate
	// report are exempt): both the virtual- and physical-column legs must
	// stay within tolerance, so ORDER-BY-heavy rows cannot quietly regress.
	oldT5 := make(map[string]table5Bench, len(oldRep.Table5))
	for _, q := range oldRep.Table5 {
		oldT5[q.SQL] = q
	}
	for _, n := range newRep.Table5 {
		o, ok := oldT5[n.SQL]
		if !ok {
			fmt.Fprintf(stdout, "table5 %-60q  (new row)\n", n.SQL)
			continue
		}
		type leg struct {
			name           string
			oldNs, newNs   int64
			oldAll, newAll int64
		}
		for _, l := range []leg{
			{"virtual", o.VirtualNsPerOp, n.VirtualNsPerOp, o.VirtualAllocs, n.VirtualAllocs},
			{"physical", o.PhysicalNsPerOp, n.PhysicalNsPerOp, o.PhysicalAllocs, n.PhysicalAllocs},
		} {
			nsD := pct(l.oldNs, l.newNs)
			alD := pct(l.oldAll, l.newAll)
			mark := ""
			if nsD > *tolerance && l.oldNs >= *minNs {
				mark, failed = "  REGRESSION(ns)", true
			}
			if alD > *tolerance && l.oldAll >= *minAllocs {
				mark, failed = mark+"  REGRESSION(allocs)", true
			}
			fmt.Fprintf(stdout, "table5 %-60q %-8s %12d %12d %+7.1f%%   %8d %8d %+7.1f%%%s\n",
				n.SQL, l.name, l.oldNs, l.newNs, nsD, l.oldAll, l.newAll, alD, mark)
		}
	}

	if failed {
		fmt.Fprintf(stderr, "benchdiff: FAIL — regression beyond %.0f%% tolerance\n", *tolerance)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: OK (tolerance %.0f%%)\n", *tolerance)
	return 0
}
