package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, name, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseline = `{
  "records": 1000,
  "figure6_sinew": [
    {"query": "q1", "sql": "SELECT 1", "ns_per_op": 1000, "allocs_per_op": 100},
    {"query": "q2", "sql": "SELECT 2", "ns_per_op": 2000, "allocs_per_op": 10}
  ]
}`

func TestMissingBaselineFile(t *testing.T) {
	newP := writeReport(t, "new.json", baseline)
	var out, errb bytes.Buffer
	code := run([]string{"-old", filepath.Join(t.TempDir(), "absent.json"), "-new", newP}, &out, &errb)
	if code != 2 {
		t.Fatalf("run() = %d, want 2 for a missing baseline", code)
	}
	if !strings.Contains(errb.String(), "absent.json") {
		t.Errorf("stderr should name the missing file: %q", errb.String())
	}
}

func TestMalformedJSON(t *testing.T) {
	oldP := writeReport(t, "old.json", baseline)
	newP := writeReport(t, "new.json", `{"records": 1000, "figure6_sinew": [`)
	var out, errb bytes.Buffer
	code := run([]string{"-old", oldP, "-new", newP}, &out, &errb)
	if code != 2 {
		t.Fatalf("run() = %d, want 2 for malformed JSON", code)
	}
	if !strings.Contains(errb.String(), "new.json") {
		t.Errorf("stderr should name the malformed file: %q", errb.String())
	}
}

// A query present in only one report is informational, never a failure:
// the set can grow (new query) and shrink (dropped) across PRs.
func TestQueryInOnlyOneReport(t *testing.T) {
	oldP := writeReport(t, "old.json", baseline)
	newP := writeReport(t, "new.json", `{
	  "records": 1000,
	  "figure6_sinew": [
	    {"query": "q1", "sql": "SELECT 1", "ns_per_op": 1000, "allocs_per_op": 100},
	    {"query": "q3", "sql": "SELECT 3", "ns_per_op": 500, "allocs_per_op": 5}
	  ]
	}`)
	var out, errb bytes.Buffer
	code := run([]string{"-old", oldP, "-new", newP}, &out, &errb)
	if code != 0 {
		t.Fatalf("run() = %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "(new query)") {
		t.Errorf("q3 should be reported as a new query:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "q2    dropped from new report") {
		t.Errorf("q2 should be reported as dropped:\n%s", out.String())
	}
}

func TestRegressionFails(t *testing.T) {
	oldP := writeReport(t, "old.json", baseline)
	newP := writeReport(t, "new.json", `{
	  "records": 1000,
	  "figure6_sinew": [
	    {"query": "q1", "sql": "SELECT 1", "ns_per_op": 1500, "allocs_per_op": 100},
	    {"query": "q2", "sql": "SELECT 2", "ns_per_op": 2000, "allocs_per_op": 10}
	  ]
	}`)
	var out, errb bytes.Buffer
	code := run([]string{"-old", oldP, "-new", newP, "-tolerance", "10", "-minns", "0"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run() = %d, want 1 for a 50%% ns/op regression", code)
	}
	if !strings.Contains(out.String(), "REGRESSION(ns)") {
		t.Errorf("q1 should be marked REGRESSION(ns):\n%s", out.String())
	}

	// The same regression is exempt under the -minns noise floor: at
	// microsecond scale the ns gate is all timer jitter.
	out.Reset()
	errb.Reset()
	code = run([]string{"-old", oldP, "-new", newP, "-tolerance", "10", "-minns", "50000"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run() = %d, want 0 with baseline below the ns noise floor\n%s", code, out.String())
	}
}

// Alloc jumps under the -minallocs noise floor don't gate: q2 doubles its
// allocs but sits below the floor.
func TestAllocNoiseFloor(t *testing.T) {
	oldP := writeReport(t, "old.json", baseline)
	newP := writeReport(t, "new.json", `{
	  "records": 1000,
	  "figure6_sinew": [
	    {"query": "q1", "sql": "SELECT 1", "ns_per_op": 1000, "allocs_per_op": 100},
	    {"query": "q2", "sql": "SELECT 2", "ns_per_op": 2000, "allocs_per_op": 20}
	  ]
	}`)
	var out, errb bytes.Buffer
	if code := run([]string{"-old", oldP, "-new", newP}, &out, &errb); code != 0 {
		t.Fatalf("run() = %d, want 0 (allocs below noise floor)\n%s", code, out.String())
	}
}

// Baseline auto-selection picks the highest PR number — numerically, not
// lexically (PR10 beats PR2 even though "BENCH_PR2" sorts after
// "BENCH_PR10") — and never picks the -new report itself.
func TestBaselineAutoSelection(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	write("BENCH_PR2.json", `{"records": 1000, "figure6_sinew": [
	  {"query": "q1", "sql": "SELECT 1", "ns_per_op": 9000, "allocs_per_op": 100}]}`)
	write("BENCH_PR10.json", baseline)
	newP := write("new.json", baseline)

	var out, errb bytes.Buffer
	if code := run([]string{"-new", newP}, &out, &errb); code != 0 {
		t.Fatalf("run() = %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "baseline "+filepath.Join(dir, "BENCH_PR10.json")) {
		t.Errorf("should pick BENCH_PR10.json (numeric ordering):\n%s", out.String())
	}

	// When -new is itself the newest BENCH_PR file, it must be skipped.
	newP = write("BENCH_PR11.json", baseline)
	out.Reset()
	if code := run([]string{"-new", newP}, &out, &errb); code != 0 {
		t.Fatalf("run() = %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "baseline "+filepath.Join(dir, "BENCH_PR10.json")) {
		t.Errorf("auto-selection must exclude the -new report:\n%s", out.String())
	}
}

// An explicit -baseline wins over auto-selection; an empty directory
// fails with a diagnostic instead of diffing nothing.
func TestBaselineFlagAndMissing(t *testing.T) {
	oldP := writeReport(t, "BENCH_PR9.json", baseline)
	newP := writeReport(t, "new.json", baseline)
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", oldP, "-new", newP}, &out, &errb); code != 0 {
		t.Fatalf("run() = %d, want 0 with explicit -baseline\nstderr: %s", code, errb.String())
	}
	if strings.Contains(out.String(), "benchdiff: baseline ") {
		t.Errorf("explicit -baseline must not trigger auto-selection:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-new", newP}, &out, &errb); code != 2 {
		t.Fatalf("run() = %d, want 2 when no BENCH_PR*.json exists", code)
	}
	if !strings.Contains(errb.String(), "no BENCH_PR*.json baseline") {
		t.Errorf("stderr should explain the missing baseline: %q", errb.String())
	}
}

func TestRecordCountMismatch(t *testing.T) {
	oldP := writeReport(t, "old.json", baseline)
	newP := writeReport(t, "new.json", `{"records": 2000, "figure6_sinew": []}`)
	var out, errb bytes.Buffer
	if code := run([]string{"-old", oldP, "-new", newP}, &out, &errb); code != 2 {
		t.Fatalf("run() = %d, want 2 for incomparable record counts", code)
	}
	if !strings.Contains(errb.String(), "not comparable") {
		t.Errorf("stderr should explain the mismatch: %q", errb.String())
	}
}

// Table 5 rows are gated per leg: a regression in either the virtual or
// the physical timing fails, a row new in the candidate report is exempt.
func TestTable5Gate(t *testing.T) {
	oldP := writeReport(t, "old.json", `{
	  "records": 1000,
	  "figure6_sinew": [],
	  "table5": [
	    {"sql": "SELECT * FROM t ORDER BY k", "virtual_ns_per_op": 1000,
	     "virtual_allocs_per_op": 500, "physical_ns_per_op": 900,
	     "physical_allocs_per_op": 400}
	  ]
	}`)
	newP := writeReport(t, "new.json", `{
	  "records": 1000,
	  "figure6_sinew": [],
	  "table5": [
	    {"sql": "SELECT * FROM t ORDER BY k", "virtual_ns_per_op": 1000,
	     "virtual_allocs_per_op": 500, "physical_ns_per_op": 2000,
	     "physical_allocs_per_op": 400},
	    {"sql": "SELECT * FROM t ORDER BY k LIMIT 5", "virtual_ns_per_op": 10,
	     "virtual_allocs_per_op": 5, "physical_ns_per_op": 10,
	     "physical_allocs_per_op": 5}
	  ]
	}`)
	var out, errb bytes.Buffer
	if code := run([]string{"-old", oldP, "-new", newP, "-minns", "0"}, &out, &errb); code != 1 {
		t.Fatalf("run() = %d, want 1 for a table5 physical regression\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION(ns)") {
		t.Errorf("output should mark the regressed leg:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "(new row)") {
		t.Errorf("the row absent from the baseline should be exempt:\n%s", out.String())
	}

	// Within tolerance both legs pass.
	okP := writeReport(t, "ok.json", `{
	  "records": 1000,
	  "figure6_sinew": [],
	  "table5": [
	    {"sql": "SELECT * FROM t ORDER BY k", "virtual_ns_per_op": 1010,
	     "virtual_allocs_per_op": 500, "physical_ns_per_op": 910,
	     "physical_allocs_per_op": 400}
	  ]
	}`)
	out.Reset()
	errb.Reset()
	if code := run([]string{"-old", oldP, "-new", okP}, &out, &errb); code != 0 {
		t.Fatalf("run() = %d, want 0 within tolerance\nstdout: %s", code, out.String())
	}
}
