// Command nobenchgen emits the NoBench dataset (the §6 workload) as
// newline-delimited JSON on stdout, suitable for sinewcli's \load or any
// other JSON-lines consumer.
//
// Usage:
//
//	nobenchgen [-n records] [-seed S] [-queries]
//
// With -queries it instead prints the 11 NoBench queries plus the update
// task as SQL parameterized for the chosen record count.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/nobench"
)

func main() {
	var (
		n       = flag.Int("n", 10000, "number of records")
		seed    = flag.Int64("seed", 42, "generator seed")
		queries = flag.Bool("queries", false, "print the NoBench queries instead of data")
	)
	flag.Parse()

	if *queries {
		par := nobench.NewParams(*n)
		qs := par.Queries()
		for _, qid := range nobench.QueryOrder() {
			fmt.Printf("-- %s\n%s;\n\n", qid, qs[qid])
		}
		return
	}

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	defer w.Flush()
	g := nobench.NewGenerator(*n, *seed)
	for {
		doc, ok := g.Next()
		if !ok {
			return
		}
		if _, err := w.WriteString(jsonx.ObjectValue(doc).String()); err != nil {
			fmt.Fprintln(os.Stderr, "nobenchgen:", err)
			os.Exit(1)
		}
		if err := w.WriteByte('\n'); err != nil {
			fmt.Fprintln(os.Stderr, "nobenchgen:", err)
			os.Exit(1)
		}
	}
}
