// Command sinewd serves a Sinew database over the HTTP line protocol
// (internal/service): pooled sessions, one SQL statement per /query
// request, and a /metrics endpoint exposing the snapshot/session
// counters. Readers never block behind writers — each statement runs
// against an epoch-pinned heap snapshot (DESIGN.md §10).
//
// Quickstart:
//
//	sinewd -addr :8481 &
//	curl -X POST localhost:8481/session              # -> {"session":"s1"}
//	curl -X POST 'localhost:8481/query?session=s1' \
//	     -d 'CREATE TABLE t (a INT, b TEXT)'
//	curl -X POST 'localhost:8481/query?session=s1' \
//	     -d "INSERT INTO t VALUES (1, 'x')"
//	curl -X POST 'localhost:8481/query?session=s1' -d 'SELECT * FROM t'
//	curl localhost:8481/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/sinewdata/sinew/internal/core"
	"github.com/sinewdata/sinew/internal/service"
)

func main() {
	addr := flag.String("addr", "localhost:8481", "listen address (host:port; port 0 picks a free port)")
	textIndex := flag.Bool("textindex", false, "maintain the inverted text index at load time")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.EnableTextIndex = *textIndex
	db := core.Open(cfg)
	srv := service.New(db)

	// Serve in the foreground; a signal triggers the graceful drain.
	errc := make(chan error, 1)
	go func() {
		errc <- srv.Serve(*addr, func(a net.Addr) {
			fmt.Printf("sinewd listening on %s\n", a)
		})
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, "sinewd:", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Printf("sinewd: %s — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "sinewd: shutdown:", err)
			os.Exit(1)
		}
	}
}
