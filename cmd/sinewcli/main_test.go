package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/sinewdata/sinew/internal/core"
)

func cliDB(t *testing.T) (*core.DB, *core.Materializer) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.EnableTextIndex = true
	db := core.Open(cfg)
	return db, core.NewMaterializer(db)
}

func TestCommandLifecycle(t *testing.T) {
	db, mat := cliDB(t)

	if err := command(db, mat, `\create events`); err != nil {
		t.Fatal(err)
	}
	// Load from a temp file.
	path := filepath.Join(t.TempDir(), "data.json")
	if err := os.WriteFile(path, []byte(
		`{"kind":"a","n":1}
{"kind":"b","n":2}
{"kind":"a","n":3}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := command(db, mat, `\load events `+path); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT COUNT(*) FROM events`)
	if err != nil || res.Rows[0][0].I != 3 {
		t.Fatalf("count = %v err = %v", res.Rows, err)
	}

	for _, cmd := range []string{
		`\analyze events`,
		`\materialize events`,
		`\catalog events`,
		`\synccat`,
		`\rewrite SELECT kind FROM events`,
		`\explain SELECT kind FROM events WHERE n > 1`,
	} {
		if err := command(db, mat, cmd); err != nil {
			t.Errorf("%s: %v", cmd, err)
		}
	}
}

func TestCommandErrors(t *testing.T) {
	db, mat := cliDB(t)
	for _, cmd := range []string{
		`\create`,                 // missing argument
		`\load onlyone`,           // wrong arity
		`\load ghost /no/file`,    // unknown collection comes after open; file missing
		`\analyze ghost`,          // unknown collection
		`\materialize ghost`,      // unknown collection
		`\catalog ghost`,          // unknown collection
		`\rewrite SELECT FROM x,`, // parse error
		`\nonsense`,               // unknown command
	} {
		if err := command(db, mat, cmd); err == nil {
			t.Errorf("%q should error", cmd)
		}
	}
}
