// Command sinewcli is an interactive SQL shell over a Sinew database. It
// creates collections, bulk-loads newline-delimited JSON, runs SQL against
// the universal-relation logical view, and exposes the paper's machinery
// through backslash commands:
//
//	\create <collection>          create a collection
//	\load <collection> <file>     bulk-load JSON lines
//	\analyze <collection>         run the schema analyzer (§3.1.3)
//	\materialize <collection>     run a materializer pass (§3.1.4)
//	\catalog <collection>         show the Sinew catalog (Figure 4)
//	\synccat                      publish the catalog as SQL tables (Figure 4)
//	\rewrite <sql>                show the §3.2.2 rewrite of a query
//	\explain <sql>                show the physical plan
//	\stats                        show plan-cache and executor counters
//	\q                            quit
//
// Everything else is executed as SQL.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"github.com/sinewdata/sinew/internal/core"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.EnableTextIndex = true
	db := core.Open(cfg)
	mat := core.NewMaterializer(db)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 0, 1<<20), 1<<24)
	fmt.Println("sinewcli — SQL over multi-structured data (\\q to quit)")
	for {
		fmt.Print("sinew> ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if line == "\\q" || line == "\\quit" {
				return
			}
			if err := command(db, mat, line); err != nil {
				fmt.Println("error:", err)
			}
			continue
		}
		res, err := db.Query(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printResult(res)
	}
}

func command(db *core.DB, mat *core.Materializer, line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\create":
		if len(fields) != 2 {
			return fmt.Errorf("usage: \\create <collection>")
		}
		return db.CreateCollection(fields[1])
	case "\\load":
		if len(fields) != 3 {
			return fmt.Errorf("usage: \\load <collection> <file>")
		}
		f, err := os.Open(fields[2])
		if err != nil {
			return err
		}
		defer f.Close()
		res, err := db.LoadJSONLines(fields[1], f)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d documents (%d new attributes)\n", res.Documents, res.NewAttributes)
		return nil
	case "\\analyze":
		if len(fields) != 2 {
			return fmt.Errorf("usage: \\analyze <collection>")
		}
		decisions, err := db.AnalyzeSchema(fields[1])
		if err != nil {
			return err
		}
		for _, d := range decisions {
			if d.Changed {
				fmt.Printf("%-24s %-8s density=%.2f card=%d -> materialize=%v\n",
					d.Key, d.Type, d.Density, d.Cardinality, d.Materialize)
			}
		}
		return nil
	case "\\materialize":
		if len(fields) != 2 {
			return fmt.Errorf("usage: \\materialize <collection>")
		}
		moved, err := mat.RunOnce(fields[1])
		if err != nil {
			return err
		}
		fmt.Printf("moved %d values\n", moved)
		return db.RDBMS().Analyze(fields[1])
	case "\\catalog":
		if len(fields) != 2 {
			return fmt.Errorf("usage: \\catalog <collection>")
		}
		tc, ok := db.Catalog().Lookup(strings.ToLower(fields[1]))
		if !ok {
			return fmt.Errorf("unknown collection %q", fields[1])
		}
		fmt.Printf("%-6s %-28s %-10s %8s %6s %12s %s\n",
			"id", "key_name", "key_type", "count", "dirty", "materialized", "column")
		for _, c := range tc.Columns() {
			fmt.Printf("%-6d %-28s %-10s %8d %6v %12v %s\n",
				c.AttrID, c.Key, c.Type, c.Count, c.Dirty, c.Materialized, c.PhysicalName)
		}
		return nil
	case "\\synccat":
		if err := db.SyncCatalogTables(); err != nil {
			return err
		}
		fmt.Println("catalog mirrored to sinew_attributes / sinew_columns_* tables")
		return nil
	case "\\rewrite":
		sql := strings.TrimSpace(strings.TrimPrefix(line, "\\rewrite"))
		out, err := db.RewrittenSQL(sql)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	case "\\explain":
		sql := strings.TrimSpace(strings.TrimPrefix(line, "\\explain"))
		out, err := db.Explain(sql)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	case "\\stats":
		s := db.RDBMS().PlanCacheStats()
		fmt.Printf("plan cache: %d hits, %d misses, %d entries, %d invalidations (epoch %d)\n",
			s.Hits, s.Misses, s.Entries, s.Invalidations, s.Epoch)
		skipped, workers := db.RDBMS().Pager().ExecStats()
		fmt.Printf("executor: %d pages skipped, %d parallel workers since last reset\n",
			skipped, workers)
		zoneSkipped, selBatches, parStriped := db.RDBMS().Pager().SelStats()
		fmt.Printf("striped: %d segments skipped by zone maps, %d selection-vector batches, %d parallel striped scans\n",
			zoneSkipped, selBatches, parStriped)
		sortBatches, topnShort, mergeParts := db.RDBMS().Pager().SortStats()
		fmt.Printf("sort: %d batches sorted, %d top-n short circuits, %d sorted-merge partitions\n",
			sortBatches, topnShort, mergeParts)
		snapOpen, snapEpoch, pagesCoW := db.RDBMS().SnapshotStats()
		fmt.Printf("snapshots: %d pinned, epoch %d, %d pages copied-on-write, %d sessions active\n",
			snapOpen, snapEpoch, pagesCoW, db.RDBMS().SessionsActive())
		return nil
	default:
		return fmt.Errorf("unknown command %s", fields[0])
	}
}

func printResult(res *core.QueryResult) {
	if res.ExplainText != "" {
		fmt.Print(res.ExplainText)
		return
	}
	if len(res.Columns) == 0 {
		fmt.Printf("ok (%d rows affected)\n", res.RowsAffected)
		return
	}
	fmt.Println(strings.Join(res.Columns, " | "))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, d := range row {
			cells[i] = d.String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}
