// Package eav is the Entity-Attribute-Value baseline of §6.1: every
// document is shredded into (obj_id, key_name, val_str, val_num, val_bool)
// triples stored in one relation of the same embedded RDBMS Sinew uses,
// with a mapping layer that translates logical queries into self-joins over
// the triple table. Reconstructing any record requires joins (§2), the
// representation is several times larger than the input (§6.2), and large
// queries can exhaust intermediate space (§6.4–6.5), all of which this
// implementation reproduces.
package eav

import (
	"fmt"
	"strings"

	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/rdbms"
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
	"github.com/sinewdata/sinew/internal/sqlutil"
)

// DB is an EAV store over the embedded RDBMS.
type DB struct {
	rdb    *rdbms.DB
	nextID map[string]int64
}

// Open creates an empty EAV database.
func Open() *DB {
	return &DB{rdb: rdbms.Open(), nextID: make(map[string]int64)}
}

// RDBMS exposes the underlying engine (size accounting, EXPLAIN).
func (db *DB) RDBMS() *rdbms.DB { return db.rdb }

// tableName is the triple relation backing a collection.
func tableName(collection string) string { return collection + "_eav" }

// CreateCollection creates the 5-column triple table (§6.1: one column for
// each primitive type).
func (db *DB) CreateCollection(name string) error {
	name = strings.ToLower(name)
	return db.rdb.CreateTable(tableName(name), []storage.Column{
		{Name: "obj_id", Typ: types.Int, NotNull: true},
		{Name: "key_name", Typ: types.Text, NotNull: true},
		{Name: "val_str", Typ: types.Text},
		{Name: "val_num", Typ: types.Float},
		{Name: "val_bool", Typ: types.Bool},
	}, false)
}

// LoadDocuments shreds documents into triples: one tuple per flattened
// scalar key, one per array element. Nested objects contribute their
// dotted sub-keys (the paper's "over 20 new tuples per record").
func (db *DB) LoadDocuments(collection string, docs []*jsonx.Doc) (int64, error) {
	collection = strings.ToLower(collection)
	tbl := tableName(collection)
	base := db.nextID[collection]
	var rows []storage.Row
	for i, doc := range docs {
		id := base + int64(i)
		for _, f := range jsonx.Flatten(doc) {
			switch f.Val.Kind {
			case jsonx.Object:
				// Children are flattened separately; the parent itself has
				// no scalar value.
			case jsonx.Array:
				for _, e := range f.Val.A {
					rows = append(rows, tripleRow(id, f.Path, e))
				}
			default:
				rows = append(rows, tripleRow(id, f.Path, f.Val))
			}
		}
	}
	db.nextID[collection] = base + int64(len(docs))
	if err := db.rdb.InsertRows(tbl, rows); err != nil {
		return 0, err
	}
	return int64(len(rows)), nil
}

func tripleRow(id int64, key string, v jsonx.Value) storage.Row {
	row := storage.Row{
		types.NewInt(id), types.NewText(key),
		types.NewNull(types.Text), types.NewNull(types.Float), types.NewNull(types.Bool),
	}
	switch v.Kind {
	case jsonx.String:
		row[2] = types.NewText(v.S)
	case jsonx.Int:
		row[3] = types.NewFloat(float64(v.I))
	case jsonx.Float:
		row[3] = types.NewFloat(v.F)
	case jsonx.Bool:
		row[4] = types.NewBool(v.B)
	default:
		// Nulls, arrays, and objects have no scalar column in the triple
		// layout; the row keeps all three value columns NULL.
	}
	return row
}

// Analyze refreshes statistics on the triple table.
func (db *DB) Analyze(collection string) error {
	return db.rdb.Analyze(tableName(strings.ToLower(collection)))
}

// valColumn picks the typed value column for a literal.
func valColumn(v types.Datum) string {
	switch v.Typ {
	case types.Text:
		return "val_str"
	case types.Int, types.Float:
		return "val_num"
	case types.Bool:
		return "val_bool"
	default:
		return "val_str"
	}
}

// ---------- The mapping layer ----------
//
// Each logical operation is translated to SQL over the triple table; the
// SQL is executed by the shared embedded RDBMS so EAV pays its costs
// through exactly the same engine as Sinew.

// ProjectKeys returns SELECT k1, k2, ... for all objects: one self-join per
// additional key (§6.3: "the EAV system adds a join on top of the original
// projection in order to reconstruct the objects"). Objects missing any of
// the keys drop out (inner-join semantics, as in the NoBench EAV setup).
func (db *DB) ProjectKeys(collection string, keys ...string) (*rdbms.Result, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("eav: no keys")
	}
	tbl := tableName(strings.ToLower(collection))
	var sel, from, where []string
	for i, k := range keys {
		alias := fmt.Sprintf("e%d", i)
		sel = append(sel, fmt.Sprintf("%s.val_str, %s.val_num", alias, alias))
		from = append(from, fmt.Sprintf("%s %s", tbl, alias))
		where = append(where, fmt.Sprintf("%s.key_name = %s", alias, sqlutil.QuoteString(k)))
		if i > 0 {
			where = append(where, fmt.Sprintf("e0.obj_id = %s.obj_id", alias))
		}
	}
	sql := fmt.Sprintf("SELECT %s FROM %s WHERE %s",
		strings.Join(sel, ", "), strings.Join(from, ", "), strings.Join(where, " AND "))
	return db.rdb.Query(sql)
}

// SelectEq implements SELECT * WHERE key = value: the predicate scan plus a
// join back to collect every attribute of matching objects.
func (db *DB) SelectEq(collection, key string, val types.Datum) (*rdbms.Result, error) {
	tbl := tableName(strings.ToLower(collection))
	sql := fmt.Sprintf(
		"SELECT e2.obj_id, e2.key_name, e2.val_str, e2.val_num, e2.val_bool "+
			"FROM %s e1, %s e2 WHERE e1.key_name = %s AND e1.%s = %s AND e1.obj_id = e2.obj_id",
		tbl, tbl, sqlutil.QuoteString(key), valColumn(val), literal(val))
	return db.rdb.Query(sql)
}

// SelectRange implements SELECT * WHERE lo <= key <= hi (numeric).
func (db *DB) SelectRange(collection, key string, lo, hi float64) (*rdbms.Result, error) {
	tbl := tableName(strings.ToLower(collection))
	sql := fmt.Sprintf(
		"SELECT e2.obj_id, e2.key_name, e2.val_str, e2.val_num, e2.val_bool "+
			"FROM %s e1, %s e2 WHERE e1.key_name = %s AND e1.val_num BETWEEN %g AND %g AND e1.obj_id = e2.obj_id",
		tbl, tbl, sqlutil.QuoteString(key), lo, hi)
	return db.rdb.Query(sql)
}

// SelectArrayContains implements SELECT * WHERE value IN array-key: array
// elements are individual triples, so containment is an equality scan plus
// the reconstruction join.
func (db *DB) SelectArrayContains(collection, key string, val types.Datum) (*rdbms.Result, error) {
	return db.SelectEq(collection, key, val)
}

// GroupCount implements SELECT COUNT(*) ... WHERE numKey BETWEEN lo AND hi
// GROUP BY groupKey: a self-join bringing the group key and filter key
// together. The group key's typed value columns are all grouped (only one
// is non-NULL per triple), so text, numeric, and boolean group keys all
// work.
func (db *DB) GroupCount(collection, filterKey string, lo, hi float64, groupKey string) (*rdbms.Result, error) {
	tbl := tableName(strings.ToLower(collection))
	sql := fmt.Sprintf(
		"SELECT e2.val_str, e2.val_num, e2.val_bool, COUNT(*) FROM %s e1, %s e2 "+
			"WHERE e1.key_name = %s AND e1.val_num BETWEEN %g AND %g "+
			"AND e2.key_name = %s AND e1.obj_id = e2.obj_id "+
			"GROUP BY e2.val_str, e2.val_num, e2.val_bool",
		tbl, tbl, sqlutil.QuoteString(filterKey), lo, hi, sqlutil.QuoteString(groupKey))
	return db.rdb.Query(sql)
}

// Join implements NoBench Q11: join on leftKey = rightKey with a range
// filter on the left side — four instances of the triple table.
func (db *DB) Join(collection, leftKey, rightKey, filterKey string, lo, hi float64) (*rdbms.Result, error) {
	tbl := tableName(strings.ToLower(collection))
	sql := fmt.Sprintf(
		"SELECT l.obj_id, r.obj_id FROM %s l, %s r, %s f "+
			"WHERE l.key_name = %s AND r.key_name = %s AND l.val_str = r.val_str "+
			"AND f.key_name = %s AND f.val_num BETWEEN %g AND %g AND f.obj_id = l.obj_id",
		tbl, tbl, tbl,
		sqlutil.QuoteString(leftKey), sqlutil.QuoteString(rightKey),
		sqlutil.QuoteString(filterKey), lo, hi)
	return db.rdb.Query(sql)
}

// UpdateEq implements UPDATE ... SET setKey = v WHERE whereKey = w: the
// self-join to find matching objects is done first, then the per-object
// triple is updated (or inserted when absent).
func (db *DB) UpdateEq(collection, setKey string, setVal types.Datum, whereKey string, whereVal types.Datum) (int64, error) {
	tbl := tableName(strings.ToLower(collection))
	match, err := db.rdb.Query(fmt.Sprintf(
		"SELECT obj_id FROM %s WHERE key_name = %s AND %s = %s",
		tbl, sqlutil.QuoteString(whereKey), valColumn(whereVal), literal(whereVal)))
	if err != nil {
		return 0, err
	}
	var updated int64
	for _, row := range match.Rows {
		id := row[0].I
		res, err := db.rdb.Exec(fmt.Sprintf(
			"UPDATE %s SET %s = %s WHERE obj_id = %d AND key_name = %s",
			tbl, valColumn(setVal), literal(setVal), id, sqlutil.QuoteString(setKey)))
		if err != nil {
			return updated, err
		}
		if res.RowsAffected == 0 {
			_, err = db.rdb.Exec(fmt.Sprintf(
				"INSERT INTO %s (obj_id, key_name, %s) VALUES (%d, %s, %s)",
				tbl, valColumn(setVal), id, sqlutil.QuoteString(setKey), literal(setVal)))
			if err != nil {
				return updated, err
			}
		}
		updated++
	}
	return updated, nil
}

// SizeBytes reports the triple table's storage footprint (Table 3).
func (db *DB) SizeBytes(collection string) int64 {
	n, err := db.rdb.TableSizeBytes(tableName(strings.ToLower(collection)))
	if err != nil {
		return 0
	}
	return n
}

// TripleCount reports stored triples (the paper quotes 360M/1.44B).
func (db *DB) TripleCount(collection string) int64 {
	n, err := db.rdb.TableRowCount(tableName(strings.ToLower(collection)))
	if err != nil {
		return 0
	}
	return n
}

// ReconstructObjects is the mapping layer's final step for SELECT *
// translations: triples sharing an obj_id (column idCol) are grouped back
// into objects. It returns the object count; the grouping work is part of
// the EAV system's query cost.
func ReconstructObjects(res *rdbms.Result, idCol int) int64 {
	seen := make(map[int64]struct{})
	for _, row := range res.Rows {
		if !row[idCol].IsNull() {
			seen[row[idCol].I] = struct{}{}
		}
	}
	return int64(len(seen))
}

func literal(v types.Datum) string {
	switch v.Typ {
	case types.Text:
		return sqlutil.QuoteString(v.S)
	case types.Bool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	default:
		return v.String()
	}
}
