package eav

import (
	"testing"

	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

func seed(t *testing.T) *DB {
	t.Helper()
	db := Open()
	if err := db.CreateCollection("web"); err != nil {
		t.Fatal(err)
	}
	var docs []*jsonx.Doc
	for _, s := range []string{
		`{"url":"a.com","hits":22,"country":"pl","tags":["x","y"],"geo":{"lat":1.5,"city":"krk"}}`,
		`{"url":"b.com","hits":15,"owner":"smith","tags":["y"]}`,
		`{"url":"c.com","hits":30,"country":"us"}`,
	} {
		d, err := jsonx.ParseDocument([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	n, err := db.LoadDocuments("web", docs)
	if err != nil {
		t.Fatal(err)
	}
	// Triples: doc1: url,hits,country,tags×2,geo.lat,geo.city = 7
	// doc2: url,hits,owner,tags = 4; doc3: url,hits,country = 3
	if n != 14 {
		t.Fatalf("triples = %d", n)
	}
	if err := db.Analyze("web"); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestShreddingCounts(t *testing.T) {
	db := seed(t)
	if got := db.TripleCount("web"); got != 14 {
		t.Errorf("TripleCount = %d", got)
	}
	if db.SizeBytes("web") <= 0 {
		t.Error("size should be positive")
	}
}

func TestProjectKeys(t *testing.T) {
	db := seed(t)
	res, err := db.ProjectKeys("web", "url", "hits")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Inner-join semantics drop objects missing a key.
	res, err = db.ProjectKeys("web", "url", "owner")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("url+owner rows = %d, want 1", len(res.Rows))
	}
	// Nested dotted keys are plain attribute names after flattening.
	res, err = db.ProjectKeys("web", "geo.lat", "geo.city")
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("nested projection rows = %d err=%v", len(res.Rows), err)
	}
	if _, err := db.ProjectKeys("web"); err == nil {
		t.Error("no keys should error")
	}
}

func TestSelectAndReconstruct(t *testing.T) {
	db := seed(t)
	res, err := db.SelectEq("web", "country", types.NewText("pl"))
	if err != nil {
		t.Fatal(err)
	}
	// One matching object reconstructed as its 7 triples.
	if len(res.Rows) != 7 {
		t.Errorf("triples = %d", len(res.Rows))
	}
	if ReconstructObjects(res, 0) != 1 {
		t.Errorf("objects = %d", ReconstructObjects(res, 0))
	}
	res, _ = db.SelectRange("web", "hits", 20, 40)
	if ReconstructObjects(res, 0) != 2 {
		t.Errorf("range objects = %d", ReconstructObjects(res, 0))
	}
	// Array containment: elements are triples.
	res, _ = db.SelectArrayContains("web", "tags", types.NewText("y"))
	if ReconstructObjects(res, 0) != 2 {
		t.Errorf("containment objects = %d", ReconstructObjects(res, 0))
	}
}

func TestGroupCount(t *testing.T) {
	db := seed(t)
	// Text group key: two countries among the three objects.
	res, err := db.GroupCount("web", "hits", 0, 100, "country")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("country groups = %v", res.Rows)
	}
	// Numeric group key.
	res, err = db.GroupCount("web", "hits", 0, 100, "hits")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("hits groups = %v", res.Rows)
	}
}

func TestJoin(t *testing.T) {
	db := seed(t)
	// Self-join url=url with a hits filter: every object whose hits in
	// range joins itself once.
	res, err := db.Join("web", "url", "url", "hits", 20, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("join rows = %d", len(res.Rows))
	}
}

func TestUpdateEq(t *testing.T) {
	db := seed(t)
	// Update an existing triple.
	n, err := db.UpdateEq("web", "country", types.NewText("de"), "url", types.NewText("a.com"))
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	res, _ := db.SelectEq("web", "country", types.NewText("de"))
	if ReconstructObjects(res, 0) != 1 {
		t.Error("update not visible")
	}
	// Update of an absent key inserts the triple.
	n, err = db.UpdateEq("web", "brand_new", types.NewText("v"), "url", types.NewText("b.com"))
	if err != nil || n != 1 {
		t.Fatalf("insert-on-update: n=%d err=%v", n, err)
	}
	res, _ = db.SelectEq("web", "brand_new", types.NewText("v"))
	if ReconstructObjects(res, 0) != 1 {
		t.Error("inserted triple not visible")
	}
}
