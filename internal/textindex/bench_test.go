package textindex

import (
	"fmt"
	"testing"
)

func benchIndex(nDocs int) *Index {
	ix := New()
	for i := 0; i < nDocs; i++ {
		ix.Add(DocID(i), "body", fmt.Sprintf("document %d mentions term%d and term%d plus shared words", i, i%50, i%7))
	}
	return ix
}

func BenchmarkAdd(b *testing.B) {
	ix := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Add(DocID(i), "body", "a handful of tokens to index per call")
	}
}

func BenchmarkSearchTerm(b *testing.B) {
	ix := benchIndex(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ix.SearchTerm("body", "term3"); len(got) == 0 {
			b.Fatal("no hits")
		}
	}
}

func BenchmarkQueryConjunction(b *testing.B) {
	ix := benchIndex(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query("body", "shared term3"); err != nil {
			b.Fatal(err)
		}
	}
}
