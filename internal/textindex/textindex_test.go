package textindex

import (
	"reflect"
	"regexp"
	"sync"
	"testing"
)

func buildIndex() *Index {
	ix := New()
	ix.Add(1, "title", "Sinew a SQL system")
	ix.Add(1, "body", "stores multi-structured data")
	ix.Add(2, "title", "NoSQL at scale")
	ix.Add(2, "body", "document stores trade schema for speed")
	ix.Add(3, "body", "the quick brown fox; the lazy dog")
	return ix
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! foo_bar x123 日本")
	want := []string{"hello", "world", "foo_bar", "x123", "日本"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tokens = %v, want %v", got, want)
	}
	if Tokenize("") != nil {
		t.Error("empty text yields no tokens")
	}
}

func TestSearchTerm(t *testing.T) {
	ix := buildIndex()
	if got := ix.SearchTerm("body", "stores"); !reflect.DeepEqual(got, []DocID{1, 2}) {
		t.Errorf("stores = %v", got)
	}
	if got := ix.SearchTerm("title", "stores"); got != nil {
		t.Errorf("field scoping failed: %v", got)
	}
	if got := ix.SearchTerm("*", "sql"); !reflect.DeepEqual(got, []DocID{1}) {
		t.Errorf("wildcard field = %v", got)
	}
	// Case-insensitive query.
	if got := ix.SearchTerm("title", "SINEW"); !reflect.DeepEqual(got, []DocID{1}) {
		t.Errorf("case = %v", got)
	}
	if got := ix.SearchTerm("body", "absent"); got != nil {
		t.Errorf("absent term = %v", got)
	}
}

func TestSearchPrefixAndRegexp(t *testing.T) {
	ix := buildIndex()
	if got := ix.SearchPrefix("*", "sto"); !reflect.DeepEqual(got, []DocID{1, 2}) {
		t.Errorf("prefix = %v", got)
	}
	rx := regexp.MustCompile("qu.ck")
	if got := ix.SearchRegexp("body", rx); !reflect.DeepEqual(got, []DocID{3}) {
		t.Errorf("regexp = %v", got)
	}
}

func TestSearchPhrase(t *testing.T) {
	ix := buildIndex()
	if got := ix.SearchPhrase("body", "quick brown fox"); !reflect.DeepEqual(got, []DocID{3}) {
		t.Errorf("phrase = %v", got)
	}
	if got := ix.SearchPhrase("body", "brown quick"); got != nil {
		t.Errorf("out-of-order phrase matched: %v", got)
	}
	if got := ix.SearchPhrase("*", "multi structured"); !reflect.DeepEqual(got, []DocID{1}) {
		t.Errorf("wildcard phrase = %v", got)
	}
}

func TestQueryLanguage(t *testing.T) {
	ix := buildIndex()
	cases := map[string][]DocID{
		"stores":                {1, 2},
		"stores schema":         {2},    // AND
		"sql OR lazy":           {1, 3}, // OR
		`"document stores"`:     {2},    // phrase
		"sto*":                  {1, 2}, // prefix
		"/d.g/":                 {3},    // regexp
		"stores absent":         nil,    // AND with no match
		"multi OR quick OR sql": {1, 3}, // chained OR
	}
	for q, want := range cases {
		got, err := ix.Query("*", q)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("query %q = %v, want %v", q, got, want)
		}
	}
	if _, err := ix.Query("*", "/bad[/"); err == nil {
		t.Error("invalid regexp should error")
	}
}

func TestRemove(t *testing.T) {
	ix := buildIndex()
	ix.Remove(1)
	if got := ix.SearchTerm("body", "stores"); !reflect.DeepEqual(got, []DocID{2}) {
		t.Errorf("after remove = %v", got)
	}
	if ix.DocCount() != 2 {
		t.Errorf("doc count = %d", ix.DocCount())
	}
	ix.Remove(1) // idempotent
	if ix.DocCount() != 2 {
		t.Error("double remove changed count")
	}
}

func TestPostingsStaySorted(t *testing.T) {
	ix := New()
	for _, id := range []DocID{5, 1, 9, 3, 7} {
		ix.Add(id, "f", "term")
	}
	got := ix.SearchTerm("f", "term")
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("postings unsorted: %v", got)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	ix := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ix.Add(DocID(g*100+i), "f", "shared term text")
				ix.SearchTerm("f", "shared")
			}
		}(g)
	}
	wg.Wait()
	if got := len(ix.SearchTerm("f", "term")); got != 800 {
		t.Errorf("postings = %d", got)
	}
}

func TestFieldsListing(t *testing.T) {
	ix := buildIndex()
	if got := ix.Fields(); !reflect.DeepEqual(got, []string{"body", "title"}) {
		t.Errorf("fields = %v", got)
	}
}
