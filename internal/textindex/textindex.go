// Package textindex is an embedded inverted text index standing in for the
// Apache Solr deployment of §4.3: documents are tokenized into per-field
// postings lists; queries (term, phrase, prefix, regex, boolean) return
// sorted record-ID sets that the caller applies as a filter over the
// original relation. Fields are faceted by attribute, so predicates over
// virtual columns can be pushed down to the index.
package textindex

import (
	"regexp"
	"sort"
	"strings"
	"sync"
	"unicode"
)

// DocID identifies an indexed record; Sinew uses the RDBMS row identity.
type DocID int64

// Index is a thread-safe inverted index over (field, term).
type Index struct {
	mu sync.RWMutex
	// fields[field][term] = sorted posting list
	fields map[string]map[string][]DocID
	// docTerms tracks per-document term positions for phrase queries:
	// positions[field][docID] = ordered token list.
	positions map[string]map[DocID][]string
	docCount  int
	docs      map[DocID]bool
}

// New returns an empty index.
func New() *Index {
	return &Index{
		fields:    make(map[string]map[string][]DocID),
		positions: make(map[string]map[DocID][]string),
		docs:      make(map[DocID]bool),
	}
}

// Tokenize lowercases and splits text on non-alphanumeric boundaries.
func Tokenize(text string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			cur.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return toks
}

// Add indexes text under (doc, field). Repeated calls for the same pair
// append tokens.
func (ix *Index) Add(doc DocID, field, text string) {
	toks := Tokenize(text)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.docs[doc] {
		ix.docs[doc] = true
		ix.docCount++
	}
	fm, ok := ix.fields[field]
	if !ok {
		fm = make(map[string][]DocID)
		ix.fields[field] = fm
	}
	pm, ok := ix.positions[field]
	if !ok {
		pm = make(map[DocID][]string)
		ix.positions[field] = pm
	}
	pm[doc] = append(pm[doc], toks...)
	for _, t := range toks {
		fm[t] = insertID(fm[t], doc)
	}
}

// insertID keeps the posting list sorted and deduplicated regardless of
// the order documents are added in.
func insertID(lst []DocID, doc DocID) []DocID {
	if n := len(lst); n == 0 || lst[n-1] < doc {
		return append(lst, doc) // common case: ascending inserts
	}
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= doc })
	if i < len(lst) && lst[i] == doc {
		return lst
	}
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = doc
	return lst
}

// Remove drops a document from the index entirely (used on delete /
// reindex). It is O(total postings of the doc's fields).
func (ix *Index) Remove(doc DocID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.docs[doc] {
		return
	}
	delete(ix.docs, doc)
	ix.docCount--
	for field, pm := range ix.positions {
		toks, ok := pm[doc]
		if !ok {
			continue
		}
		delete(pm, doc)
		fm := ix.fields[field]
		seen := map[string]bool{}
		for _, t := range toks {
			if seen[t] {
				continue
			}
			seen[t] = true
			fm[t] = removeID(fm[t], doc)
			if len(fm[t]) == 0 {
				delete(fm, t)
			}
		}
	}
}

func removeID(lst []DocID, doc DocID) []DocID {
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= doc })
	if i < len(lst) && lst[i] == doc {
		return append(lst[:i], lst[i+1:]...)
	}
	return lst
}

// DocCount returns the number of indexed documents.
func (ix *Index) DocCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docCount
}

// Fields lists indexed field names, sorted.
func (ix *Index) Fields() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.fields))
	for f := range ix.fields {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// ---------- Queries ----------

// SearchTerm returns documents whose field contains the term.
// field "*" searches every field.
func (ix *Index) SearchTerm(field, term string) []DocID {
	term = strings.ToLower(term)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if field != "*" {
		fm, ok := ix.fields[field]
		if !ok {
			return nil
		}
		return cloneIDs(fm[term])
	}
	var acc []DocID
	for _, fm := range ix.fields {
		acc = unionIDs(acc, fm[term])
	}
	return acc
}

// SearchPrefix returns documents whose field has a term with the prefix.
func (ix *Index) SearchPrefix(field, prefix string) []DocID {
	prefix = strings.ToLower(prefix)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var acc []DocID
	scan := func(fm map[string][]DocID) {
		for term, lst := range fm {
			if strings.HasPrefix(term, prefix) {
				acc = unionIDs(acc, lst)
			}
		}
	}
	if field != "*" {
		if fm, ok := ix.fields[field]; ok {
			scan(fm)
		}
		return acc
	}
	for _, fm := range ix.fields {
		scan(fm)
	}
	return acc
}

// SearchRegexp returns documents whose field has a term matching rx (full
// match).
func (ix *Index) SearchRegexp(field string, rx *regexp.Regexp) []DocID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var acc []DocID
	scan := func(fm map[string][]DocID) {
		for term, lst := range fm {
			if m := rx.FindString(term); m == term && m != "" {
				acc = unionIDs(acc, lst)
			}
		}
	}
	if field != "*" {
		if fm, ok := ix.fields[field]; ok {
			scan(fm)
		}
		return acc
	}
	for _, fm := range ix.fields {
		scan(fm)
	}
	return acc
}

// SearchPhrase returns documents whose field contains the tokens of phrase
// consecutively.
func (ix *Index) SearchPhrase(field, phrase string) []DocID {
	toks := Tokenize(phrase)
	if len(toks) == 0 {
		return nil
	}
	if len(toks) == 1 {
		return ix.SearchTerm(field, toks[0])
	}
	candidates := ix.SearchTerm(field, toks[0])
	for _, t := range toks[1:] {
		candidates = intersectIDs(candidates, ix.SearchTerm(field, t))
		if len(candidates) == 0 {
			return nil
		}
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	check := func(field string, doc DocID) bool {
		pm, ok := ix.positions[field]
		if !ok {
			return false
		}
		seq := pm[doc]
		for i := 0; i+len(toks) <= len(seq); i++ {
			match := true
			for j, t := range toks {
				if seq[i+j] != t {
					match = false
					break
				}
			}
			if match {
				return true
			}
		}
		return false
	}
	var out []DocID
	for _, doc := range candidates {
		if field != "*" {
			if check(field, doc) {
				out = append(out, doc)
			}
			continue
		}
		for f := range ix.positions {
			if check(f, doc) {
				out = append(out, doc)
				break
			}
		}
	}
	return out
}

// Query is a parsed search expression: whitespace-separated terms are
// AND-ed; "a OR b" unions; quoted phrases match consecutively; trailing '*'
// is a prefix; /re/ is a regular expression term.
func (ix *Index) Query(field, query string) ([]DocID, error) {
	groups := splitTopLevel(query, " OR ")
	var result []DocID
	for _, g := range groups {
		ids, err := ix.queryConjunction(field, strings.TrimSpace(g))
		if err != nil {
			return nil, err
		}
		result = unionIDs(result, ids)
	}
	return result, nil
}

func (ix *Index) queryConjunction(field, q string) ([]DocID, error) {
	parts := tokenizeQuery(q)
	var acc []DocID
	first := true
	for _, p := range parts {
		var ids []DocID
		switch {
		case strings.HasPrefix(p, `"`) && strings.HasSuffix(p, `"`) && len(p) >= 2:
			ids = ix.SearchPhrase(field, p[1:len(p)-1])
		case strings.HasPrefix(p, "/") && strings.HasSuffix(p, "/") && len(p) >= 2:
			rx, err := regexp.Compile(p[1 : len(p)-1])
			if err != nil {
				return nil, err
			}
			ids = ix.SearchRegexp(field, rx)
		case strings.HasSuffix(p, "*"):
			ids = ix.SearchPrefix(field, p[:len(p)-1])
		default:
			ids = ix.SearchTerm(field, p)
		}
		if first {
			acc = ids
			first = false
		} else {
			acc = intersectIDs(acc, ids)
		}
		if len(acc) == 0 {
			return nil, nil
		}
	}
	return acc, nil
}

// tokenizeQuery splits on spaces, keeping quoted phrases and /regexes/
// intact.
func tokenizeQuery(q string) []string {
	var out []string
	i := 0
	for i < len(q) {
		switch {
		case q[i] == ' ':
			i++
		case q[i] == '"':
			j := strings.IndexByte(q[i+1:], '"')
			if j < 0 {
				out = append(out, q[i:])
				return out
			}
			out = append(out, q[i:i+j+2])
			i += j + 2
		case q[i] == '/':
			j := strings.IndexByte(q[i+1:], '/')
			if j < 0 {
				out = append(out, q[i:])
				return out
			}
			out = append(out, q[i:i+j+2])
			i += j + 2
		default:
			j := strings.IndexByte(q[i:], ' ')
			if j < 0 {
				out = append(out, q[i:])
				return out
			}
			out = append(out, q[i:i+j])
			i += j
		}
	}
	return out
}

func splitTopLevel(q, sep string) []string {
	// OR only binds outside quotes; queries are simple enough that a guard
	// against quoted "OR" suffices.
	var out []string
	depth := false
	start := 0
	for i := 0; i+len(sep) <= len(q); i++ {
		if q[i] == '"' {
			depth = !depth
		}
		if !depth && q[i:i+len(sep)] == sep {
			out = append(out, q[start:i])
			start = i + len(sep)
			i += len(sep) - 1
		}
	}
	out = append(out, q[start:])
	return out
}

// ---------- sorted ID set helpers ----------

func cloneIDs(a []DocID) []DocID {
	if len(a) == 0 {
		return nil
	}
	out := make([]DocID, len(a))
	copy(out, a)
	return out
}

func unionIDs(a, b []DocID) []DocID {
	if len(a) == 0 {
		return cloneIDs(b)
	}
	if len(b) == 0 {
		return a
	}
	out := make([]DocID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func intersectIDs(a, b []DocID) []DocID {
	var out []DocID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
