package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks a whole Go module using nothing but the standard
// library: go/build selects files (honoring build tags with cgo disabled),
// go/parser parses them, and go/types checks each package with an importer
// that resolves module-internal import paths to directories under the
// module root and everything else to GOROOT source. External dependencies
// are rejected — the module is dependency-free by policy, and the analyzer
// shares that constraint (no x/tools).

// Package is one type-checked module package.
type Package struct {
	Path  string // import path
	Dir   string
	Types *types.Package
	Info  *types.Info
	Files []*ast.File
}

// Program is the loaded module: every package under the root, type-checked,
// plus the shared FileSet.
type Program struct {
	Fset    *token.FileSet
	ModPath string
	Root    string
	// Packages holds the module's own packages sorted by import path;
	// imported standard-library packages are checked but not listed.
	Packages []*Package
}

// IsModulePath reports whether path names a package inside the analyzed
// module (the checks use it to tell project enums from stdlib types).
func (p *Program) IsModulePath(path string) bool {
	return path == p.ModPath || strings.HasPrefix(path, p.ModPath+"/")
}

type loader struct {
	fset    *token.FileSet
	ctx     build.Context
	root    string
	modpath string
	pkgs    map[string]*Package
	std     map[string]*types.Package
	loading map[string]bool
}

// Load type-checks the module rooted at root (the directory holding
// go.mod). It returns an error for parse or type errors anywhere in the
// module: the analyzer only runs on code that compiles.
func Load(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modpath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	// Selecting no-cgo file sets keeps stdlib packages type-checkable from
	// plain source (no generated cgo intermediates needed).
	ctx.CgoEnabled = false
	l := &loader{
		fset:    token.NewFileSet(),
		ctx:     ctx,
		root:    root,
		modpath: modpath,
		pkgs:    make(map[string]*Package),
		std:     make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
	dirs, err := l.moduleDirs()
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: l.fset, ModPath: modpath, Root: root}
	for _, ip := range dirs {
		pkg, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	return prog, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	buf, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(buf), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// moduleDirs walks the module tree and returns the import paths of every
// buildable package, skipping testdata, hidden directories, and nested
// modules.
func (l *loader) moduleDirs() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := d.Name()
		if strings.HasPrefix(base, ".") && p != l.root {
			return filepath.SkipDir
		}
		if base == "testdata" {
			return filepath.SkipDir
		}
		if p != l.root {
			if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		bp, err := l.ctx.ImportDir(p, 0)
		if err != nil || len(bp.GoFiles) == 0 {
			return nil // not a buildable package; fine
		}
		rel, err := filepath.Rel(l.root, p)
		if err != nil {
			return err
		}
		ip := l.modpath
		if rel != "." {
			ip = l.modpath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	return paths, err
}

// Import implements types.Importer for the standard library and module
// packages alike.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if p, ok := l.std[path]; ok {
		return p, nil
	}
	pkg, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

func (l *loader) dirFor(path string) (string, error) {
	switch {
	case path == l.modpath:
		return l.root, nil
	case strings.HasPrefix(path, l.modpath+"/"):
		return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modpath+"/"))), nil
	case strings.Contains(strings.SplitN(path, "/", 2)[0], "."):
		// A dotted first element means an external module: unsupported by
		// design (the project is stdlib-only).
		return "", fmt.Errorf("lint: external dependency %q is not supported by the stdlib-only loader", path)
	default:
		return filepath.Join(l.ctx.GOROOT, "src", filepath.FromSlash(path)), nil
	}
}

func (l *loader) load(path string) (*Package, error) {
	// Serve repeats from the cache. Load calls this for every walked
	// directory, most of which were already checked as dependencies of an
	// earlier package; re-checking would mint a second *types.Package
	// instance for the same path, and identical types from the two
	// instances do not compare equal ("types.Datum is not types.Datum" in
	// any package importing one directly and one through a dependency).
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	internal := l.IsModule(path)
	info := &types.Info{}
	if internal {
		info.Types = make(map[ast.Expr]types.TypeAndValue)
		info.Defs = make(map[*ast.Ident]types.Object)
		info.Uses = make(map[*ast.Ident]types.Object)
		info.Selections = make(map[*ast.SelectorExpr]*types.Selection)
	}
	var firstErr error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil && internal {
		// Stdlib packages may produce benign soft errors under the no-cgo
		// context; module packages must be clean.
		if firstErr != nil {
			err = firstErr
		}
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Types: tpkg, Info: info, Files: files}
	if internal {
		l.pkgs[path] = pkg
	} else {
		l.std[path] = tpkg
	}
	return pkg, nil
}

// IsModule reports whether the import path is inside the analyzed module.
func (l *loader) IsModule(path string) bool {
	return path == l.modpath || strings.HasPrefix(path, l.modpath+"/")
}
