package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PlanCacheKey enforces the prepared-plan-cache invariant: every session
// variable whose SET handler mutates a plan-shaping plan.Config field must
// be folded into the plan-cache key, or a cached plan built under the old
// setting is replayed after the setting changes. Concretely, the check
// cross-references two places that may live in different packages:
//
//   - SET dispatch: any switch over the Name field of a SetStmt value;
//     each `case "var":` arm is scanned for assignments to fields of a
//     value whose type is named Config (the planner configuration).
//   - Key construction: any function or method named flagsKey; every
//     Config field it reads participates in the cache key.
//
// A session variable that assigns a Config field absent from every
// flagsKey is reported at its case arm. Variables that touch no Config
// field (pure executor knobs) impose no obligation.
type PlanCacheKey struct {
	setVars   []setVar
	keyFields map[string]bool
	keyFuncs  int
}

type setVar struct {
	name   string
	fields []string
	pos    token.Pos
}

// ID implements Check.
func (*PlanCacheKey) ID() string { return "plan-cache-key" }

// Doc implements Check.
func (*PlanCacheKey) Doc() string {
	return "every plan-shaping session variable set via SET must appear in the plan-cache key"
}

// Run implements Check: it only gathers facts; Finish diffs them.
func (c *PlanCacheKey) Run(pass *Pass) {
	pkg := pass.Pkg
	if c.keyFields == nil {
		c.keyFields = map[string]bool{}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "flagsKey" {
				c.keyFuncs++
				c.collectKeyReads(pkg, fd)
			}
			c.collectSetSwitches(pkg, fd)
		}
	}
}

// Finish implements ModuleCheck.
func (c *PlanCacheKey) Finish(pass *Pass) {
	if len(c.setVars) == 0 {
		return
	}
	if c.keyFuncs == 0 {
		for _, v := range c.setVars {
			if len(v.fields) > 0 {
				pass.Reportf(v.pos,
					"session variable %q mutates plan.Config but no flagsKey function exists to fold settings into the plan-cache key", v.name)
			}
		}
		return
	}
	for _, v := range c.setVars {
		var missing []string
		for _, f := range v.fields {
			if !c.keyFields[f] {
				missing = append(missing, f)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			pass.Reportf(v.pos,
				"session variable %q sets Config.%s, which is not read by flagsKey: cached plans built under a different setting would be replayed (add the field to the plan-cache key)",
				v.name, strings.Join(missing, ", Config."))
		}
	}
}

// collectKeyReads records every Config field selected inside flagsKey.
func (c *PlanCacheKey) collectKeyReads(pkg *Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal && isConfigType(typeOf(pkg, sel.X)) {
			c.keyFields[sel.Sel.Name] = true
		}
		return true
	})
}

// collectSetSwitches finds switches over SetStmt.Name and records, per
// string case arm, the Config fields assigned in the arm's body.
func (c *PlanCacheKey) collectSetSwitches(pkg *Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		tag, ok := sw.Tag.(*ast.SelectorExpr)
		if !ok || tag.Sel.Name != "Name" {
			return true
		}
		named := namedOf(typeOf(pkg, tag.X))
		if named == nil || named.Obj().Name() != "SetStmt" {
			return true
		}
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok || cc.List == nil {
				continue
			}
			fields := configAssignments(pkg, cc.Body)
			for _, e := range cc.List {
				tv, ok := pkg.Info.Types[e]
				if !ok || tv.Value == nil {
					continue
				}
				name := strings.Trim(tv.Value.ExactString(), `"`)
				c.setVars = append(c.setVars, setVar{name: name, fields: fields, pos: cc.Pos()})
			}
		}
		return true
	})
}

// configAssignments lists Config fields assigned anywhere in the
// statements.
func configAssignments(pkg *Package, body []ast.Stmt) []string {
	var out []string
	seen := map[string]bool{}
	for _, stmt := range body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal && isConfigType(typeOf(pkg, sel.X)) {
					if !seen[sel.Sel.Name] {
						seen[sel.Sel.Name] = true
						out = append(out, sel.Sel.Name)
					}
				}
			}
			return true
		})
	}
	return out
}

func typeOf(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isConfigType matches values of a named type Config (or pointer to it) —
// the planner configuration struct.
func isConfigType(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Name() == "Config"
}
