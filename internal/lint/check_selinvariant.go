package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SelInvariant enforces the selection-vector convention on RowBatch
// consumers. A batch with a non-nil Sel stores its logical rows at
// physical indices Sel[0..Len()): Len() counts logical rows, the column
// slices keep their physical length, and every columnar read must map the
// logical index through the selection vector. A function that iterates a
// batch by Len() while reading its columns physically (b.Cols[...] or
// b.Row(...)) silently processes filtered-out rows the moment a
// selection-carrying batch reaches it — results are wrong only for sel
// batches, so plain dense tests never catch it. Such a function must
// either consult the batch's Sel (directly or via the selIdx helper) or
// iterate PhysLen() instead.
type SelInvariant struct{}

// ID implements Check.
func (*SelInvariant) ID() string { return "sel-invariant" }

// Doc implements Check.
func (*SelInvariant) Doc() string {
	return "RowBatch columns read under Len() must be indexed through Sel (or iterate PhysLen)"
}

// selUse accumulates how one RowBatch-typed variable is touched inside a
// single function body.
type selUse struct {
	lenPos   token.Pos // first b.Len() use
	usesLen  bool      // iterates/derives the logical row count
	readsPhy bool      // reads columns physically: b.Cols or b.Row
	selAware bool      // consults b.Sel or b.PhysLen
}

// Run implements Check.
func (c *SelInvariant) Run(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			uses := make(map[types.Object]*selUse)
			// selIdx anywhere in the body is the idiomatic mapping helper;
			// its sel argument ties the loop to a selection vector, so the
			// whole function is treated as sel-aware.
			funcAware := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.Ident:
					if x.Name == "selIdx" {
						funcAware = true
					}
				case *ast.SelectorExpr:
					id, ok := x.X.(*ast.Ident)
					if !ok {
						return true
					}
					obj := pkg.Info.Uses[id]
					if obj == nil || !isRowBatchType(obj.Type()) {
						return true
					}
					u := uses[obj]
					if u == nil {
						u = &selUse{}
						uses[obj] = u
					}
					switch x.Sel.Name {
					case "Len":
						if !u.usesLen {
							u.usesLen, u.lenPos = true, x.Sel.Pos()
						}
					case "Cols", "Row":
						u.readsPhy = true
					case "Sel", "PhysLen":
						u.selAware = true
					}
				}
				return true
			})
			if funcAware {
				continue
			}
			for obj, u := range uses {
				if u.usesLen && u.readsPhy && !u.selAware {
					pass.Reportf(u.lenPos,
						"%s reads RowBatch %q columns under Len() without consulting Sel: logical row i lives at Sel[i] on selection-carrying batches (index via selIdx/Sel or iterate PhysLen)",
						fd.Name.Name, obj.Name())
				}
			}
		}
	}
}

// isRowBatchType reports whether t is (a pointer to) a named type called
// RowBatch — the executor's column-major batch carrying the selection
// vector contract.
func isRowBatchType(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Name() == "RowBatch"
}
