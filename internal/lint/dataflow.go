package lint

import "go/ast"

// A generic iterative forward dataflow solver over FuncCFG. Facts are
// bitsets over a check-defined universe (lock names, tracked variables,
// "epoch bumped" — whatever the client indexes); the meet is either
// intersection (must: the fact holds on EVERY path reaching a point) or
// union (may: the fact holds on SOME path). Transfers are arbitrary
// gen/kill functions applied block-at-a-time, so the framework handles any
// monotone bit-vector problem; all current clients are distributive, which
// keeps the fixpoint exact rather than merely sound.

// Facts is a bitset of dataflow facts.
type Facts []uint64

// NewFacts returns an n-bit fact set, entirely set when all is true (the
// "top" element of a must lattice) and empty otherwise.
func NewFacts(n int, all bool) Facts {
	f := make(Facts, (n+63)/64)
	if all {
		for i := range f {
			f[i] = ^uint64(0)
		}
		// Mask the tail so Equal works on identical universes.
		if r := n % 64; r != 0 && len(f) > 0 {
			f[len(f)-1] = (uint64(1) << r) - 1
		}
	}
	return f
}

// Has reports whether bit i is set.
func (f Facts) Has(i int) bool { return f[i/64]&(uint64(1)<<(i%64)) != 0 }

// Set sets bit i.
func (f Facts) Set(i int) { f[i/64] |= uint64(1) << (i % 64) }

// Clear clears bit i.
func (f Facts) Clear(i int) { f[i/64] &^= uint64(1) << (i % 64) }

// Clone returns an independent copy.
func (f Facts) Clone() Facts { return append(Facts(nil), f...) }

// IntersectWith ands g into f (the must meet).
func (f Facts) IntersectWith(g Facts) {
	for i := range f {
		f[i] &= g[i]
	}
}

// UnionWith ors g into f (the may meet).
func (f Facts) UnionWith(g Facts) {
	for i := range f {
		f[i] |= g[i]
	}
}

// Equal reports bitwise equality.
func (f Facts) Equal(g Facts) bool {
	if len(f) != len(g) {
		return false
	}
	for i := range f {
		if f[i] != g[i] {
			return false
		}
	}
	return true
}

// FlowMode selects the meet operator.
type FlowMode int

const (
	// MeetMust intersects predecessor facts: a fact survives a join only
	// if it holds on every incoming path (lock held, epoch bumped).
	MeetMust FlowMode = iota
	// MeetMay unions predecessor facts: a fact survives if it holds on
	// any incoming path (value may alias pooled memory).
	MeetMay
)

// SolveForward computes the fact set holding at the entry of every block.
// entry seeds the function's Entry block; transfer receives a private copy
// of the block's in-facts and returns the out-facts (mutating in place and
// returning the argument is fine). Unreachable blocks converge to the
// lattice top — every fact for must, none for may — so downstream
// reporting passes naturally stay silent on dead code.
func SolveForward(g *FuncCFG, mode FlowMode, nbits int, entry Facts, transfer func(*Block, Facts) Facts) map[*Block]Facts {
	top := NewFacts(nbits, mode == MeetMust)
	in := make(map[*Block]Facts, len(g.Blocks))
	out := make(map[*Block]Facts, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = top.Clone()
		out[b] = top.Clone()
	}
	in[g.Entry] = entry.Clone()

	// Worklist over block order; Entry first. A monotone transfer over a
	// finite lattice terminates; the explicit list keeps revisits cheap.
	work := make([]*Block, 0, len(g.Blocks))
	queued := make(map[*Block]bool, len(g.Blocks))
	push := func(b *Block) {
		if !queued[b] {
			queued[b] = true
			work = append(work, b)
		}
	}
	for _, b := range g.Blocks {
		push(b)
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		if b != g.Entry && len(b.Preds) > 0 {
			agg := out[b.Preds[0]].Clone()
			for _, p := range b.Preds[1:] {
				if mode == MeetMust {
					agg.IntersectWith(out[p])
				} else {
					agg.UnionWith(out[p])
				}
			}
			in[b] = agg
		}
		o := transfer(b, in[b].Clone())
		if !o.Equal(out[b]) {
			out[b] = o
			for _, s := range b.Succs {
				push(s)
			}
		}
	}
	return in
}

// ReplayBlocks walks every block of a solved graph, handing visit each
// node along with the facts in force immediately before it (step is the
// same per-node transfer the solver ran, re-applied to advance the facts).
// This is the reporting pass: checks look for a sink pattern in the node
// while the facts still describe the paths reaching it.
func ReplayBlocks(g *FuncCFG, sol map[*Block]Facts, step func(n ast.Node, facts Facts), visit func(n ast.Node, facts Facts)) {
	for _, b := range g.Blocks {
		facts := sol[b].Clone()
		for _, n := range b.Nodes {
			visit(n, facts)
			step(n, facts)
		}
	}
}
