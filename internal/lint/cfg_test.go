package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as the body of a function and returns its CFG.
func parseBody(t *testing.T, src string) *FuncCFG {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body)
}

// callBlocks returns, per called function name, the distinct blocks whose
// node lists contain a call to it.
func callBlocks(g *FuncCFG) map[string][]*Block {
	out := map[string][]*Block{}
	for _, b := range g.Blocks {
		seen := map[string]bool{}
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && !seen[id.Name] {
					seen[id.Name] = true
					out[id.Name] = append(out[id.Name], b)
				}
				return true
			})
		}
	}
	return out
}

// reachable returns the blocks reachable from the entry.
func reachable(g *FuncCFG) map[*Block]bool { return reachableFrom(g.Entry) }

func TestCFGLinear(t *testing.T) {
	g := parseBody(t, "a(); b(); c()")
	cb := callBlocks(g)
	if len(cb["a"]) != 1 || cb["a"][0] != g.Entry {
		t.Fatalf("a() not in the entry block")
	}
	if cb["a"][0] != cb["c"][0] {
		t.Errorf("straight-line calls split across blocks")
	}
	if !reachable(g)[g.Exit] {
		t.Errorf("exit unreachable from entry")
	}
}

func TestCFGIfJoin(t *testing.T) {
	g := parseBody(t, "if p() { a() } else { b() }; c()")
	cb := callBlocks(g)
	join := cb["c"][0]
	if len(join.Preds) != 2 {
		t.Fatalf("join block has %d preds, want 2 (then and else)", len(join.Preds))
	}
	if cb["a"][0] == cb["b"][0] {
		t.Errorf("then and else share a block")
	}
}

func TestCFGIfNoElse(t *testing.T) {
	g := parseBody(t, "if p() { a() }; c()")
	cb := callBlocks(g)
	join := cb["c"][0]
	// Join is fed by the then-branch and by the head's false edge.
	if len(join.Preds) != 2 {
		t.Fatalf("join block has %d preds, want 2", len(join.Preds))
	}
}

func TestCFGForLoop(t *testing.T) {
	g := parseBody(t, "for i := 0; p(); i++ { a() }; c()")
	cb := callBlocks(g)
	body := cb["a"][0]
	// The body flows to the post block, which flows back to the head.
	if len(body.Succs) != 1 {
		t.Fatalf("loop body has %d succs, want 1 (post)", len(body.Succs))
	}
	post := body.Succs[0]
	back := false
	for _, s := range post.Succs {
		for _, hs := range s.Succs {
			if hs == body {
				back = true
			}
		}
	}
	if !back {
		t.Errorf("no back edge from post through head to body")
	}
	if !reachable(g)[cb["c"][0]] {
		t.Errorf("loop exit unreachable")
	}
}

func TestCFGInfiniteLoopOnlyBreaks(t *testing.T) {
	g := parseBody(t, "for { if p() { break }; a() }; c()")
	cb := callBlocks(g)
	if !reachable(g)[cb["c"][0]] {
		t.Fatalf("break does not reach the loop exit")
	}
	// Without the break, c() must NOT be reachable: `for {}` has no
	// fall-through edge.
	g2 := parseBody(t, "for { a() }; c()")
	cb2 := callBlocks(g2)
	if reachable(g2)[cb2["c"][0]] {
		t.Errorf("for{} acquired a phantom exit edge")
	}
}

func TestCFGRangeBodyOnceOnly(t *testing.T) {
	// Regression: buildRange stores the whole RangeStmt in the head block;
	// inspectNode must not descend into the body there, or every analysis
	// sees loop-body statements twice (once with pre-loop facts).
	g := parseBody(t, "for _, v := range xs { a(v) }; c()")
	count := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			inspectNode(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "a" {
						count++
					}
				}
				return true
			})
		}
	}
	if count != 1 {
		t.Fatalf("a() observed %d times across block nodes, want exactly 1", count)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := parseBody(t, "switch p() {\ncase 1:\n\ta()\n\tfallthrough\ncase 2:\n\tb()\ndefault:\n\td()\n}\nc()")
	cb := callBlocks(g)
	aBlk, bBlk := cb["a"][0], cb["b"][0]
	// The fallthrough jump block hangs off a's clause and lands on b's.
	found := false
	var scan func(b *Block, depth int)
	seen := map[*Block]bool{}
	scan = func(b *Block, depth int) {
		if seen[b] || depth > 3 {
			return
		}
		seen[b] = true
		if b == bBlk {
			found = true
			return
		}
		for _, s := range b.Succs {
			scan(s, depth+1)
		}
	}
	scan(aBlk, 0)
	if !found {
		t.Errorf("fallthrough edge from case 1 to case 2 missing")
	}
	// With a default clause, the head must not edge straight to the exit.
	join := cb["c"][0]
	for _, p := range join.Preds {
		for _, n := range p.Nodes {
			if _, ok := n.(ast.Expr); ok && p == cb["p"][0] {
				t.Errorf("switch head bypasses a default clause")
			}
		}
	}
}

func TestCFGGotoBackward(t *testing.T) {
	g := parseBody(t, "retry:\n\ta()\n\tif p() {\n\t\tgoto retry\n\t}\n\tc()")
	cb := callBlocks(g)
	label := cb["a"][0]
	if len(label.Preds) < 2 {
		t.Fatalf("label block has %d preds, want >=2 (entry + goto)", len(label.Preds))
	}
	if !reachable(g)[cb["c"][0]] {
		t.Errorf("fallthrough past the goto unreachable")
	}
}

func TestCFGReturnCutsFlow(t *testing.T) {
	g := parseBody(t, "if p() { return }; a()")
	cb := callBlocks(g)
	// a() runs only on the false path: exactly one REACHABLE pred (the
	// head's false edge). The unreachable post-return continuation also
	// wires into the join, but it carries the meet identity, so only the
	// reachable pred matters.
	live := reachable(g)
	got := 0
	for _, p := range cb["a"][0].Preds {
		if live[p] {
			got++
		}
	}
	if got != 1 {
		t.Errorf("post-return continuation has %d reachable preds, want 1", got)
	}
	g2 := parseBody(t, "return\na()")
	cb2 := callBlocks(g2)
	if reachable(g2)[cb2["a"][0]] {
		t.Errorf("code after an unconditional return is reachable")
	}
}

func TestCFGDefers(t *testing.T) {
	g := parseBody(t, "defer a()\nif p() {\n\tdefer b()\n}\nc()")
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(g.Defers))
	}
	// The DeferStmt is also a flow node in its registering block.
	cb := callBlocks(g)
	if cb["a"][0] != g.Entry {
		t.Errorf("defer a() not registered in the entry block")
	}
}

func TestCFGSelect(t *testing.T) {
	g := parseBody(t, "select {\ncase <-ch:\n\ta()\ncase ch2 <- v:\n\tb()\n}\nc()")
	cb := callBlocks(g)
	if cb["a"][0] == cb["b"][0] {
		t.Fatalf("select clauses share a block")
	}
	join := cb["c"][0]
	if len(join.Preds) != 2 {
		t.Errorf("select join has %d preds, want 2", len(join.Preds))
	}
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	g := parseBody(t, "outer:\nfor p() {\n\tfor q() {\n\t\tif r() {\n\t\t\tbreak outer\n\t\t}\n\t\tcontinue outer\n\t}\n}\nc()")
	cb := callBlocks(g)
	if !reachable(g)[cb["c"][0]] {
		t.Fatalf("labeled break does not reach the outer exit")
	}
}
