// Package batchescape seeds positive and negative cases for the
// sinew/batch-escape check: pool-backed batches crossing channels or
// goroutines without a clone, and uses after release.
package batchescape

// RowBatch mirrors the executor's column-major batch.
type RowBatch struct {
	Cols [][]int64
	Sel  []int32
	n    int
}

// Width is the column count.
func (b *RowBatch) Width() int { return len(b.Cols) }

// batchPool recycles batches between operator cycles.
type batchPool struct{ free chan *RowBatch }

func (p *batchPool) get() *RowBatch {
	select {
	case b := <-p.free:
		return b
	default:
		return &RowBatch{}
	}
}

func (p *batchPool) put(b *RowBatch) {
	select {
	case p.free <- b:
	default:
	}
}

// cloneBatch deep-copies a batch so it can outlive the producer's cycle.
func cloneBatch(b *RowBatch) *RowBatch {
	nb := &RowBatch{Cols: make([][]int64, len(b.Cols)), n: b.n}
	for i, c := range b.Cols {
		nb.Cols[i] = append([]int64(nil), c...)
	}
	return nb
}

// leakPooled sends a pooled batch raw: the pool recycles it while the
// receiver still reads it.
func leakPooled(p *batchPool, out chan *RowBatch) {
	b := p.get()
	out <- b // want `without cloning`
}

// sendCloned is the sanctioned hand-off.
func sendCloned(p *batchPool, out chan *RowBatch) {
	b := p.get()
	nb := cloneBatch(b)
	out <- nb
	p.put(b)
}

// leakGoroutine captures a pooled batch in a goroutine that outlives the
// operator cycle.
func leakGoroutine(p *batchPool, sink func(int)) {
	b := p.get()
	go func() {
		sink(b.Width()) // want `captures pool-backed batch`
	}()
}

// useAfterPut touches a batch it already handed back.
func useAfterPut(p *batchPool) int {
	b := p.get()
	p.put(b)
	return b.Width() // want `after releasing`
}

// recycleLoop is the sound lifecycle: get, use, put, and the next
// iteration's get redefines the variable before any further use.
func recycleLoop(p *batchPool) int {
	total := 0
	for i := 0; i < 3; i++ {
		b := p.get()
		total += b.Width()
		p.put(b)
	}
	return total
}

// scanOp reuses an output scratch batch across cycles.
type scanOp struct {
	out *RowBatch
}

// leakScratch aliases the scratch buffer straight into a channel.
func (s *scanOp) leakScratch(out chan *RowBatch) {
	b := s.out
	out <- b // want `without cloning`
}

// shipScratch densifies the scratch buffer first.
func (s *scanOp) shipScratch(out chan *RowBatch) {
	b := cloneBatch(s.out)
	out <- b
}
