// Package atomicfield seeds positive and negative cases for the
// sinew/atomic-consistency check: atomic-typed fields touched outside a
// method call, and plain-typed fields that mix atomic.* operations with
// ordinary reads.
package atomicfield

import "sync/atomic"

// Stats is a published statistics snapshot.
type Stats struct{ Rows int64 }

// Table mirrors the engine's lock-free stats publication: stats swings
// through an atomic.Pointer, hits is a plain int64 driven by atomic.Add.
type Table struct {
	stats  atomic.Pointer[Stats]
	hits   int64
	misses int64
	plain  int64
}

// LoadStats is the sanctioned access: a method call on the atomic field.
func (t *Table) LoadStats() *Stats { return t.stats.Load() }

// SetStats is likewise sound.
func (t *Table) SetStats(s *Stats) { t.stats.Store(s) }

// StealStats copies the atomic value wholesale, defeating its guarantee.
func (t *Table) StealStats() *atomic.Pointer[Stats] {
	return &t.stats // want `atomic-typed field Table\.stats directly`
}

// Hit drives the counter through sync/atomic.
func (t *Table) Hit() { atomic.AddInt64(&t.hits, 1) }

// Hits reads the same counter plainly: a data race with Hit.
func (t *Table) Hits() int64 {
	return t.hits // want `mixed atomic/plain access is a data race`
}

// Miss and Misses stay atomic end to end.
func (t *Table) Miss() int64   { return atomic.AddInt64(&t.misses, 1) }
func (t *Table) Misses() int64 { return atomic.LoadInt64(&t.misses) }

// Plain never goes near sync/atomic, so plain access is fine.
func (t *Table) Plain() int64 { return t.plain }

// Bump writes it plainly too: still fine, the field is never atomic.
func (t *Table) Bump() { t.plain++ }
