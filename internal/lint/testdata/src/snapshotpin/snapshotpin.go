// Package snapshotpin seeds positive and negative cases for the
// sinew/snapshot-pin check: live-heap scans outside the declaring
// package must pin an immutable snapshot first.
package snapshotpin

import "example.com/lintcheck/snapshotpin/heapdef"

// CountLive scans the mutable heap directly: flagged — a writer can
// republish the page table mid-scan.
func CountLive(h *heapdef.Heap) int {
	n := 0
	h.Scan(func(int, heapdef.Row) bool { // want `snapshot-pin: CountLive calls h\.Scan on a live heap without pinning a snapshot`
		n++
		return true
	})
	return n
}

// FirstLive reads a live row and fans out live partitions without a
// pin: both calls flagged.
func FirstLive(h *heapdef.Heap) (heapdef.Row, int) {
	row, _ := h.Get(0)       // want `snapshot-pin: FirstLive calls h\.Get on a live heap`
	parts := h.Partitions(4) // want `snapshot-pin: FirstLive calls h\.Partitions on a live heap`
	return row, len(parts)
}

// CountPinned pins the published snapshot and scans that: no finding —
// a snapshot's page table never changes after Publish.
func CountPinned(h *heapdef.Heap) int {
	snap := h.CurrentSnapshot()
	n := 0
	snap.Scan(func(int, heapdef.Row) bool {
		n++
		return true
	})
	return n
}

// LockedFixup models a DML pipeline that owns the table write lock: the
// live scan is deliberate and documents itself in place. Suppressed, so
// no finding.
func LockedFixup(h *heapdef.Heap) int {
	n := 0
	//lint:ignore sinew/snapshot-pin DML holds the table write lock and must observe the live heap it is about to mutate
	h.Scan(func(int, heapdef.Row) bool {
		n++
		return true
	})
	return n
}
