// Package heapdef declares a stand-in live heap and its immutable
// snapshot for the sinew/snapshot-pin corpus. Scan calls inside this
// package model the storage internals and are exempt: raw page-table
// access is the declaring package's job.
package heapdef

// Row is one stored tuple.
type Row []int64

// PageRange is a half-open page interval handed to parallel workers.
type PageRange struct{ Start, End int }

// HeapSnapshot is an immutable copy of the heap's page table; scanning
// it is always safe, so its methods are never flagged.
type HeapSnapshot struct {
	rows []Row
}

// Scan visits every row of the frozen page table.
func (s *HeapSnapshot) Scan(fn func(i int, r Row) bool) {
	for i, r := range s.rows {
		if !fn(i, r) {
			return
		}
	}
}

// Get returns row i of the snapshot.
func (s *HeapSnapshot) Get(i int) (Row, bool) {
	if i < 0 || i >= len(s.rows) {
		return nil, false
	}
	return s.rows[i], true
}

// Heap is the mutable table store. Its scan-entry methods read the live
// page table, which writers republish in place.
type Heap struct {
	rows []Row
	snap *HeapSnapshot
}

// Scan visits live rows.
func (h *Heap) Scan(fn func(i int, r Row) bool) {
	for i, r := range h.rows {
		if !fn(i, r) {
			return
		}
	}
}

// Get reads a live row.
func (h *Heap) Get(i int) (Row, bool) {
	if i < 0 || i >= len(h.rows) {
		return nil, false
	}
	return h.rows[i], true
}

// Partitions splits the live page table for parallel scans.
func (h *Heap) Partitions(n int) []PageRange {
	if n < 1 {
		n = 1
	}
	out := make([]PageRange, 0, n)
	step := (len(h.rows) + n - 1) / n
	for start := 0; start < len(h.rows); start += step {
		end := start + step
		if end > len(h.rows) {
			end = len(h.rows)
		}
		out = append(out, PageRange{Start: start, End: end})
	}
	return out
}

// CurrentSnapshot returns the last published immutable view.
func (h *Heap) CurrentSnapshot() *HeapSnapshot { return h.snap }

// Publish freezes the current rows as the new snapshot.
func (h *Heap) Publish() {
	rows := make([]Row, len(h.rows))
	copy(rows, h.rows)
	h.snap = &HeapSnapshot{rows: rows}
}

// NumLive counts rows through the live scan path: a same-package call,
// so no finding — the storage layer is the implementation being wrapped.
func (h *Heap) NumLive() int {
	n := 0
	h.Scan(func(int, Row) bool { n++; return true })
	return n
}
