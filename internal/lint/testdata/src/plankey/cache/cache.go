// Package cache builds the plan-cache key over plankey.Config. It reads
// MaxWorkers but not BatchSize, so "batch_size" in the SET dispatch is a
// seeded violation.
package cache

import "example.com/lintcheck/plankey"

// flagsKey folds the plan-shaping settings into the cache key.
func flagsKey(cfg *plankey.Config) string {
	if cfg.MaxWorkers > 1 {
		return "parallel"
	}
	return "serial"
}

// Key is the public entry point.
func Key(cfg *plankey.Config, sql string) string {
	return flagsKey(cfg) + "|" + sql
}
