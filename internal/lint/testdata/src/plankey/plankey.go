// Package plankey seeds positive and negative cases for the
// sinew/plan-cache-key check: SET dispatch lives here, key construction in
// the cache subpackage, exercising the cross-package diff.
package plankey

// SetStmt is a parsed SET statement.
type SetStmt struct {
	Name  string
	Value int
}

// Config is the planner configuration mutated by SET.
type Config struct {
	BatchSize  int
	MaxWorkers int
}

var sets int

// Apply dispatches a SET statement onto the config.
func Apply(cfg *Config, st *SetStmt) {
	switch st.Name {
	case "batch_size": // want `session variable "batch_size" sets Config\.BatchSize, which is not read by flagsKey`
		cfg.BatchSize = st.Value
	case "max_workers":
		cfg.MaxWorkers = st.Value
	case "trace":
		// Shapes no plans: touches no Config field, so no key obligation.
		sets++
	}
}
