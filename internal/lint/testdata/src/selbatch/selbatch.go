// Package selbatch seeds positive and negative cases for the
// sinew/sel-invariant check.
package selbatch

// Datum is a stand-in value cell.
type Datum struct{ V int64 }

// RowBatch mirrors the executor's column-major batch: when Sel is
// non-nil, logical row i lives at physical index Sel[i] of every column.
type RowBatch struct {
	Cols [][]Datum
	Sel  []int32
	n    int
}

// Len is the logical row count.
func (b *RowBatch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.n
}

// PhysLen is the physical row count.
func (b *RowBatch) PhysLen() int { return b.n }

// Row copies physical row i.
func (b *RowBatch) Row(i int) []Datum {
	out := make([]Datum, len(b.Cols))
	for j := range b.Cols {
		out[j] = b.Cols[j][i]
	}
	return out
}

// selIdx maps a logical row index through an optional selection vector.
func selIdx(sel []int32, i int) int {
	if sel == nil {
		return i
	}
	return int(sel[i])
}

// SumDense iterates logical rows but indexes the column physically:
// flagged — a selection-carrying batch would sum filtered-out rows.
func SumDense(b *RowBatch) int64 {
	var s int64
	for i := 0; i < b.Len(); i++ { // want `sel-invariant: SumDense reads RowBatch "b" columns under Len\(\)`
		s += b.Cols[0][i].V
	}
	return s
}

// CopyDense uses the physical Row accessor under Len(): flagged.
func CopyDense(b *RowBatch) [][]Datum {
	out := make([][]Datum, 0, b.Len()) // want `sel-invariant: CopyDense reads RowBatch "b" columns under Len\(\)`
	for i := 0; i < b.Len(); i++ {
		out = append(out, b.Row(i))
	}
	return out
}

// SumSel maps logical rows through the selection vector: no finding.
func SumSel(b *RowBatch) int64 {
	var s int64
	for i := 0; i < b.Len(); i++ {
		s += b.Cols[0][selIdx(b.Sel, i)].V
	}
	return s
}

// SumPhysical iterates the physical rows directly: no finding.
func SumPhysical(b *RowBatch) int64 {
	var s int64
	for i := 0; i < b.PhysLen(); i++ {
		s += b.Cols[0][i].V
	}
	return s
}

// FillOutput sizes a dense output batch it owns by the input's logical
// length; per-variable tracking keeps the two batches apart: no finding.
func FillOutput(in, out *RowBatch) {
	for i := 0; i < in.Len(); i++ {
		out.Cols[0][i] = Datum{V: 1}
	}
	out.n = in.Len()
}
