// Package closeprop seeds positive and negative cases for the
// sinew/close-propagation check.
package closeprop

type child struct{ open bool }

func (c *child) Close() { c.open = false }

// LeakyIter owns a child iterator but its Close never forwards: flagged.
type LeakyIter struct {
	src  *child
	done bool
}

func (l *LeakyIter) Next() bool { return false }

func (l *LeakyIter) Close() { // want `LeakyIter\.Close does not release field "src"`
	l.done = true
}

// NoCloseIter looks like an iterator (it has Next) and owns a closable
// field, but has no Close method at all: flagged.
type NoCloseIter struct { // want `NoCloseIter has Next/NextBatch and closable field src but no Close method`
	src *child
}

func (n *NoCloseIter) Next() bool { return false }

// GoodIter forwards Close directly: no finding.
type GoodIter struct{ src *child }

func (g *GoodIter) Next() bool { return false }
func (g *GoodIter) Close()     { g.src.Close() }

// FanIter releases its children through a range loop inside a sibling
// method reached from Close: no finding.
type FanIter struct{ kids []*child }

func (f *FanIter) NextBatch() bool { return false }
func (f *FanIter) Close()          { f.release() }

func (f *FanIter) release() {
	for _, k := range f.kids {
		k.Close()
	}
}

// HandOffIter passes its child to a helper, which takes ownership of the
// release: no finding.
type HandOffIter struct{ src *child }

func reap(c *child) { c.Close() }

func (h *HandOffIter) Next() bool { return false }
func (h *HandOffIter) Close()     { reap(h.src) }
