// Package closeprop seeds positive and negative cases for the
// sinew/close-propagation check.
package closeprop

import "sync"

type child struct{ open bool }

func (c *child) Close() { c.open = false }

// LeakyIter owns a child iterator but its Close never forwards: flagged.
type LeakyIter struct {
	src  *child
	done bool
}

func (l *LeakyIter) Next() bool { return false }

func (l *LeakyIter) Close() { // want `LeakyIter\.Close does not release field "src"`
	l.done = true
}

// NoCloseIter looks like an iterator (it has Next) and owns a closable
// field, but has no Close method at all: flagged.
type NoCloseIter struct { // want `NoCloseIter has Next/NextBatch and closable field src but no Close method`
	src *child
}

func (n *NoCloseIter) Next() bool { return false }

// GoodIter forwards Close directly: no finding.
type GoodIter struct{ src *child }

func (g *GoodIter) Next() bool { return false }
func (g *GoodIter) Close()     { g.src.Close() }

// FanIter releases its children through a range loop inside a sibling
// method reached from Close: no finding.
type FanIter struct{ kids []*child }

func (f *FanIter) NextBatch() bool { return false }
func (f *FanIter) Close()          { f.release() }

func (f *FanIter) release() {
	for _, k := range f.kids {
		k.Close()
	}
}

// HandOffIter passes its child to a helper, which takes ownership of the
// release: no finding.
type HandOffIter struct{ src *child }

func reap(c *child) { c.Close() }

func (h *HandOffIter) Next() bool { return false }
func (h *HandOffIter) Close()     { reap(h.src) }

// WorkerIter is the ParallelScanIter pattern: the constructor stores each
// scan into the field AND hands it to a spawned worker whose `defer
// s.Close()` closes it on every path, and Close waits on the WaitGroup —
// so the workers provably release the field. No finding.
type WorkerIter struct {
	wg    sync.WaitGroup
	stop  chan struct{}
	scans []*child
}

func NewWorkerIter(n int) *WorkerIter {
	w := &WorkerIter{stop: make(chan struct{}), scans: make([]*child, n)}
	for i := 0; i < n; i++ {
		s := &child{open: true}
		w.scans[i] = s
		w.wg.Add(1)
		go w.worker(i, s)
	}
	return w
}

func (w *WorkerIter) worker(i int, s *child) {
	defer w.wg.Done()
	defer s.Close()
	<-w.stop
}

func (w *WorkerIter) Next() bool { return false }

func (w *WorkerIter) Close() {
	close(w.stop)
	w.wg.Wait()
}

// LeakyWorkerIter spawns workers too, but the worker only closes its scan
// on one path — the hand-off proof must NOT accept it, so Close is
// flagged for the unreleased field.
type LeakyWorkerIter struct {
	wg    sync.WaitGroup
	stop  chan struct{}
	scans []*child
}

func NewLeakyWorkerIter(n int) *LeakyWorkerIter {
	w := &LeakyWorkerIter{stop: make(chan struct{}), scans: make([]*child, n)}
	for i := 0; i < n; i++ {
		s := &child{open: true}
		w.scans[i] = s
		w.wg.Add(1)
		go w.worker(i, s)
	}
	return w
}

func (w *LeakyWorkerIter) worker(i int, s *child) {
	defer w.wg.Done()
	if i%2 == 0 {
		s.Close() // the odd-index path leaks the scan
	}
	<-w.stop
}

func (w *LeakyWorkerIter) Next() bool { return false }

func (w *LeakyWorkerIter) Close() { // want `LeakyWorkerIter\.Close does not release field "scans"`
	close(w.stop)
	w.wg.Wait()
}
