// Package storage seeds positive and negative cases for the
// sinew/unchecked-error check; the package name is on its enforcement
// list.
package storage

import (
	"errors"
	"strings"
)

var errShort = errors.New("short write")

type writer struct{ n int }

func (w *writer) flush() error {
	if w.n == 0 {
		return errShort
	}
	w.n = 0
	return nil
}

// Drop discards the flush error silently: flagged.
func Drop(w *writer) {
	w.flush() // want `call to w\.flush discards its error result`
}

// DropDeferred defers the flush without observing its error: flagged.
func DropDeferred(w *writer) {
	defer w.flush() // want `deferred call to w\.flush discards its error result`
}

// DropAsync launches the flush with no way to see the error: flagged.
func DropAsync(w *writer) {
	go w.flush() // want `go statement to w\.flush discards its error result`
}

// Keep propagates the error: no finding.
func Keep(w *writer) error {
	return w.flush()
}

// KeepBlank discards the error visibly, which is allowed by design: the
// blank assignment is greppable and survives review.
func KeepBlank(w *writer) {
	_ = w.flush()
}

// Join uses strings.Builder, whose Write methods never fail; the check
// exempts it. No finding.
func Join(parts []string) string {
	var sb strings.Builder
	for _, p := range parts {
		sb.WriteString(p)
	}
	return sb.String()
}
