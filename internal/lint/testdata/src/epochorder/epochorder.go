// Package epochorder seeds positive and negative cases for the
// sinew/epoch-order check: in a function that both bumps the catalog
// epoch and publishes a snapshot, the bump must dominate the publish.
package epochorder

import "errors"

var errEmpty = errors.New("empty")

// DB mirrors the engine's catalog-epoch owner.
type DB struct{ epoch uint64 }

// BumpCatalogEpoch invalidates cached plans.
func (d *DB) BumpCatalogEpoch() { d.epoch++ }

// Heap mirrors the storage snapshot publisher.
type Heap struct{ v int }

// Publish installs the new snapshot for lock-free readers.
func (h *Heap) Publish() { h.v++ }

// alterOK bumps first on every path.
func alterOK(d *DB, h *Heap, wide bool) {
	d.BumpCatalogEpoch()
	if wide {
		h.Publish()
		return
	}
	h.Publish()
}

// alterBad only bumps on one branch, so the join publishes unbumped on
// the other.
func alterBad(d *DB, h *Heap, ok bool) {
	if ok {
		d.BumpCatalogEpoch()
	}
	h.Publish() // want `before bumping the catalog epoch`
}

// truncateDeferBad registers the publish, then an early return skips the
// bump: the deferred publish lands against the stale epoch.
func truncateDeferBad(d *DB, h *Heap, rows int) error {
	defer h.Publish() // want `deferred publish would land before the bump`
	if rows == 0 {
		return errEmpty
	}
	d.BumpCatalogEpoch()
	return nil
}

// truncateDeferOK bumps before any return the defer can land on.
func truncateDeferOK(d *DB, h *Heap) {
	d.BumpCatalogEpoch()
	defer h.Publish()
}

// analyzeOK returns early BEFORE the defer is registered: that path never
// publishes, so it carries no ordering obligation.
func analyzeOK(d *DB, h *Heap, rows int) error {
	if rows == 0 {
		return errEmpty
	}
	defer h.Publish()
	d.BumpCatalogEpoch()
	return nil
}
