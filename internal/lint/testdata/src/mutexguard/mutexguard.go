// Package mutexguard seeds positive and negative cases for the
// sinew/mutex-guard check.
package mutexguard

import "sync"

// Counter writes n under mu in Add but reads it lock-free in Get: flagged.
type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) Get() int {
	return c.n // want `Counter\.Get accesses "n" without holding mu`
}

// Gauge takes the lock around every access: no finding.
type Gauge struct {
	mu sync.Mutex
	v  int
}

func (g *Gauge) Set(x int) {
	g.mu.Lock()
	g.v = x
	g.mu.Unlock()
}

func (g *Gauge) Value() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Label's name field is only ever read: construction happens-before makes
// the lock-free read in Name safe, so no finding.
type Label struct {
	mu   sync.Mutex
	name string
	hits int
}

func (l *Label) Touch() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hits++
	_ = l.name
}

func (l *Label) Name() string { return l.name }

// Table documents the caller-holds-the-lock convention: lockedInsert
// unlocks without locking, so its guarded region runs from method entry
// to the Unlock. No finding.
type Table struct {
	mu   sync.Mutex
	rows map[string]int
}

func (t *Table) Insert(k string) {
	t.mu.Lock()
	t.lockedInsert(k)
}

func (t *Table) lockedInsert(k string) {
	t.rows[k] = len(t.rows)
	t.mu.Unlock()
}

// Meter exercises the path-sensitivity the CFG solver adds over the old
// positional intervals: a lock taken in only one branch does not bless
// the access after the join, and an access after a mid-loop unlock is
// outside the region even though an earlier Lock sits above it in source.
type Meter struct {
	mu    sync.Mutex
	total int
}

func (m *Meter) BranchyAdd(fast bool) {
	if !fast {
		m.mu.Lock()
		defer m.mu.Unlock()
	}
	m.total++ // want `Meter\.BranchyAdd accesses "total" without holding mu`
}

func (m *Meter) LoopAdd(xs []int) {
	for _, x := range xs {
		m.mu.Lock()
		m.total += x
		m.mu.Unlock()
		_ = m.total // want `Meter\.LoopAdd accesses "total" without holding mu`
	}
}

// SpanAdd holds the lock across the whole loop body: no finding.
func (m *Meter) SpanAdd(xs []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, x := range xs {
		m.total += x
	}
}
