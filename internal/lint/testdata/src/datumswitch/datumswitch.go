// Package datumswitch seeds positive and negative cases for the
// sinew/datum-switch check.
package datumswitch

// Kind tags the parsed values of this mini engine.
type Kind int

// The closed set of value tags.
const (
	Null Kind = iota
	Bool
	Int
	Text
)

// Describe misses Text and has no default arm: flagged.
func Describe(k Kind) string {
	switch k { // want `switch on datumswitch\.Kind is not exhaustive: missing Text`
	case Null:
		return "null"
	case Bool:
		return "bool"
	case Int:
		return "int"
	}
	return ""
}

// Name lists every constant: no finding.
func Name(k Kind) string {
	switch k {
	case Null:
		return "null"
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Text:
		return "text"
	}
	return ""
}

// Width carries a default arm, making the switch total: no finding.
func Width(k Kind) int {
	switch k {
	case Int:
		return 8
	default:
		return 0
	}
}

// Matches compares against a variable, defeating static coverage
// analysis; the check stays silent by design.
func Matches(k, other Kind) bool {
	switch k {
	case other:
		return true
	}
	return false
}

// SegEncoding mirrors the segment store's vector encoding tag — a closed
// enum the check must also police.
type SegEncoding uint8

// The closed set of vector encodings.
const (
	SegStr SegEncoding = iota
	SegInt
	SegRaw
)

// DecodeWidth misses SegRaw and has no default arm: flagged.
func DecodeWidth(e SegEncoding) int {
	switch e { // want `switch on datumswitch\.SegEncoding is not exhaustive: missing SegRaw`
	case SegStr:
		return 0
	case SegInt:
		return 8
	}
	return 0
}

// DecodeName carries a default arm, making the switch total: no finding.
func DecodeName(e SegEncoding) string {
	switch e {
	case SegStr:
		return "str"
	default:
		return "other"
	}
}
