// Package sortbatch seeds the batch sort / Top-N / hash-join operator
// shapes for sinew/close-propagation and sinew/sel-invariant: a blocking
// operator that drains and closes its input in build() but must still
// forward Close, a join owning two closable children, and key gathers
// that must map logical rows through the selection vector.
package sortbatch

// Datum is a stand-in value cell.
type Datum struct{ V int64 }

// RowBatch mirrors the executor's column-major batch: when Sel is
// non-nil, logical row i lives at physical index Sel[i] of every column.
type RowBatch struct {
	Cols [][]Datum
	Sel  []int32
	n    int
}

// Len is the logical row count.
func (b *RowBatch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.n
}

// PhysLen is the physical row count.
func (b *RowBatch) PhysLen() int { return b.n }

// selIdx maps a logical row index through an optional selection vector.
func selIdx(sel []int32, i int) int {
	if sel == nil {
		return i
	}
	return int(sel[i])
}

// source is a stand-in batch input.
type source struct{ open bool }

func (s *source) NextBatch() *RowBatch { return nil }
func (s *source) Close()               { s.open = false }

// SortIter drains its input during build (closing it there) and still
// forwards Close for the early-abandon path: no finding. Its key gather
// maps logical rows through the selection vector: no finding.
type SortIter struct {
	In   *source
	keys []Datum
}

func (s *SortIter) NextBatch() *RowBatch {
	s.build(&RowBatch{})
	return nil
}

func (s *SortIter) build(in *RowBatch) {
	for i := 0; i < in.Len(); i++ {
		s.keys = append(s.keys, in.Cols[0][selIdx(in.Sel, i)])
	}
	s.In.Close()
}

func (s *SortIter) Close() { s.In.Close() }

// LeakySortIter relies on build() having closed the input and never
// forwards Close — abandoning it before the first NextBatch leaks: flagged.
type LeakySortIter struct {
	In   *source
	done bool
}

func (l *LeakySortIter) NextBatch() *RowBatch { return nil }

func (l *LeakySortIter) Close() { // want `LeakySortIter\.Close does not release field "In"`
	l.done = true
}

// HalfClosedJoin owns both sides of a hash join but Close only releases
// the probe side: the build input is flagged.
type HalfClosedJoin struct {
	Probe *source
	Build *source
}

func (j *HalfClosedJoin) NextBatch() *RowBatch { return nil }

func (j *HalfClosedJoin) Close() { // want `HalfClosedJoin\.Close does not release field "Build"`
	j.Probe.Close()
}

// Join closes both children: no finding. The probe-side key gather maps
// through the selection vector: no finding.
type Join struct {
	Probe *source
	Build *source
	keys  []Datum
}

func (j *Join) NextBatch() *RowBatch { return nil }

func (j *Join) probe(in *RowBatch) {
	for i := 0; i < in.Len(); i++ {
		j.keys = append(j.keys, in.Cols[0][selIdx(in.Sel, i)])
	}
}

func (j *Join) Close() {
	j.Probe.Close()
	j.Build.Close()
}

// TopNDense accumulates heap keys by indexing columns physically while
// iterating logical rows: flagged — a selection-carrying batch would pull
// filtered-out rows into the heap.
func TopNDense(b *RowBatch, n int) []Datum {
	var heap []Datum
	for i := 0; i < b.Len() && len(heap) < n; i++ { // want `sel-invariant: TopNDense reads RowBatch "b" columns under Len\(\)`
		heap = append(heap, b.Cols[0][i])
	}
	return heap
}

// MergeHeads compares partition head rows at explicit physical positions
// tracked by the caller: no finding.
func MergeHeads(a, b *RowBatch, pa, pb int) bool {
	return a.Cols[0][pa].V < b.Cols[0][pb].V
}
