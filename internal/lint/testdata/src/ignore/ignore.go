// Package ignore exercises //lint:ignore directive handling: a reasoned
// directive suppresses, a bare one is itself a finding and suppresses
// nothing.
package ignore

type res struct{ open bool }

func (r *res) Close() { r.open = false }

// Owner borrows its resource from a registry that closes it at shutdown;
// the directive in Close's doc comment silences the whole method.
type Owner struct {
	r *res
}

func (o *Owner) Next() bool { return false }

//lint:ignore sinew/close-propagation the registry that handed out r closes it at shutdown; Owner never owns the release
func (o *Owner) Close() {}

// Bare carries a directive with no reason: that is a sinew/bad-ignore
// finding, and the underlying diagnostic is kept.
type Bare struct {
	r *res
}

func (b *Bare) Next() bool { return false }

// want-next-line `needs a reason`
//
//lint:ignore sinew/close-propagation
func (b *Bare) Close() {} // want `Bare\.Close does not release field "r"`
