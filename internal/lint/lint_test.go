package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden corpus under testdata/src is a self-contained mini-module
// seeded with at least one positive and one negative case per check.
// Expectations are written in the source as
//
//	// want `regexp`
//
// on the line the diagnostic lands on, or `// want-next-line` above it
// (for lines that cannot carry a trailing comment, like //lint:ignore
// directives; blank and bare-`//` separator lines in between are skipped,
// since gofmt inserts one before a directive). The test fails on any
// unmatched expectation and on any diagnostic with no expectation.

var wantRx = regexp.MustCompile("\\bwant(-next-line)?\\s+`([^`]*)`")

type expectation struct {
	file string // testdata-relative, slash-separated
	line int
	rx   *regexp.Regexp
	hit  bool
}

func TestGoldenCorpus(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(root)
	if err != nil {
		t.Fatalf("loading golden corpus: %v", err)
	}
	diags := Run(prog, Registry())
	if len(diags) == 0 {
		t.Fatal("golden corpus produced no diagnostics; the seeded violations are gone")
	}

	wants := collectWants(t, root)
	used := make([]bool, len(diags))
	for _, w := range wants {
		matched := false
		for i, d := range diags {
			if relName(root, d.Pos.Filename) != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.rx.MatchString(d.Check + ": " + d.Message) {
				matched, used[i] = true, true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
	for i, d := range diags {
		if !used[i] {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", relName(root, d.Pos.Filename), d.Pos.Line, d.Check, d.Message)
		}
	}
}

// TestCheckMetadata keeps the registry presentable: IDs unique and
// kebab-case, docs non-empty.
func TestCheckMetadata(t *testing.T) {
	idRx := regexp.MustCompile(`^[a-z]+(-[a-z]+)*$`)
	seen := map[string]bool{}
	for _, c := range Registry() {
		id := c.ID()
		if !idRx.MatchString(id) {
			t.Errorf("check ID %q is not kebab-case", id)
		}
		if seen[id] {
			t.Errorf("duplicate check ID %q", id)
		}
		seen[id] = true
		if strings.TrimSpace(c.Doc()) == "" {
			t.Errorf("check %q has no doc line", id)
		}
	}
}

// TestSuppressionSpans pins the //lint:ignore contract on the corpus: the
// reasoned directive in ignore.Owner silences close-propagation, and the
// bare one in ignore.Bare both reports bad-ignore and suppresses nothing.
func TestSuppressionSpans(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	var owner, bare, badIgnore int
	for _, d := range Run(prog, Registry()) {
		switch {
		case strings.Contains(d.Message, "Owner.Close"):
			owner++
		case strings.Contains(d.Message, "Bare.Close"):
			bare++
		case d.Check == "sinew/bad-ignore":
			badIgnore++
		}
	}
	if owner != 0 {
		t.Errorf("reasoned //lint:ignore did not suppress Owner.Close (got %d findings)", owner)
	}
	if bare != 1 {
		t.Errorf("bare //lint:ignore should not suppress: want 1 Bare.Close finding, got %d", bare)
	}
	if badIgnore != 1 {
		t.Errorf("want 1 sinew/bad-ignore for the reasonless directive, got %d", badIgnore)
	}
}

func relName(root, filename string) string {
	if r, err := filepath.Rel(root, filename); err == nil {
		return filepath.ToSlash(r)
	}
	return filename
}

// collectWants scans every corpus file for want annotations.
func collectWants(t *testing.T, root string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		buf, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		lines := strings.Split(string(buf), "\n")
		for i, text := range lines {
			m := wantRx.FindStringSubmatch(text)
			if m == nil {
				continue
			}
			line := i + 1
			rx, err := regexp.Compile(m[2])
			if err != nil {
				return fmt.Errorf("%s:%d: bad want regexp: %w", p, line, err)
			}
			at := line
			if m[1] == "-next-line" {
				// Skip blank and bare-// separator lines: gofmt inserts one
				// before //lint:ignore directives.
				for at < len(lines) {
					s := strings.TrimSpace(lines[at])
					if s != "" && s != "//" {
						break
					}
					at++
				}
				at++
			}
			wants = append(wants, &expectation{file: relName(root, p), line: at, rx: rx})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatal("no want annotations found in testdata/src")
	}
	return wants
}
