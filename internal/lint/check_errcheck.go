package lint

import (
	"go/ast"
	"go/types"
)

// UncheckedError flags silently discarded error returns in the packages
// where a dropped error corrupts state rather than merely hiding a
// failure: storage (pager byte accounting and heap bookkeeping), serial
// (record encoding — a swallowed corruption error yields wrong datums),
// and exec (iterator trees, where an ignored child error terminates a
// stream early and under-counts). A call whose results include an error
// used as a bare expression statement, go statement, or defer is
// reported. Explicitly assigning the error to _ is allowed: it is visible
// in review and greppable, unlike a silent drop.
type UncheckedError struct{}

// errcheckPackages are the package *names* under enforcement.
var errcheckPackages = map[string]bool{
	"storage": true, "serial": true, "exec": true, "pblike": true, "avrolike": true,
}

// ID implements Check.
func (*UncheckedError) ID() string { return "unchecked-error" }

// Doc implements Check.
func (*UncheckedError) Doc() string {
	return "storage/serial/exec must not silently discard error returns (byte accounting corrupts)"
}

// Run implements Check.
func (c *UncheckedError) Run(pass *Pass) {
	pkg := pass.Pkg
	if !errcheckPackages[pkg.Types.Name()] {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch x := n.(type) {
			case *ast.ExprStmt:
				call, _ = x.X.(*ast.CallExpr)
				how = "call"
			case *ast.GoStmt:
				call, how = x.Call, "go statement"
			case *ast.DeferStmt:
				call, how = x.Call, "deferred call"
			default:
				return true
			}
			if call == nil || !returnsError(pkg, call) {
				return true
			}
			if neverFails(pkg, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s to %s discards its error result; assign it (or explicitly `_ =` it) — a dropped error here silently corrupts accounting",
				how, callName(call))
			return true
		})
	}
}

// neverFails exempts callees documented to always return a nil error:
// strings.Builder and bytes.Buffer Write* methods (both panic rather than
// fail), whose error results exist only to satisfy io interfaces.
func neverFails(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok {
		return false
	}
	named := namedOf(tv.Type)
	if named == nil {
		return false
	}
	p := named.Obj().Pkg()
	if p == nil {
		return false
	}
	switch {
	case p.Path() == "strings" && named.Obj().Name() == "Builder":
		return true
	case p.Path() == "bytes" && named.Obj().Name() == "Buffer":
		return true
	}
	return false
}

// returnsError reports whether any of the call's results is error.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
	default:
		return isErrorType(t)
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// callName renders a readable callee name for the diagnostic.
func callName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			return id.Name + "." + fn.Sel.Name
		}
		return fn.Sel.Name
	}
	return "function"
}
