package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MutexGuard enforces the lock discipline on shared structs: when a type
// carries a sync.Mutex/RWMutex field and a sibling field is accessed while
// that mutex is held somewhere, then *every* method access to the field
// must happen under the lock (or carry an explicit
// //lint:ignore sinew/mutex-guard directive documenting why the call site
// cannot race). The analysis is positional, not a full CFG: a lock region
// runs from a mu.Lock()/RLock() call to the matching Unlock (deferred
// unlocks extend to the end of the method; an Unlock with no earlier Lock
// means the caller passed the lock in, so the region starts at the method
// entry).
//
// Two exemptions keep noise down. Fields that no method ever writes are
// skipped: they are set once at construction, and the happens-before edge
// from construction makes lock-free reads safe. Accesses inside function
// literals are never flagged (the closure may run under the caller's
// lock), though their writes still count toward the written-field set.
type MutexGuard struct{}

// ID implements Check.
func (*MutexGuard) ID() string { return "mutex-guard" }

// Doc implements Check.
func (*MutexGuard) Doc() string {
	return "fields accessed under a sibling mutex elsewhere must not be touched without the lock"
}

// interval is one locked region inside a method, by token position.
type interval struct {
	mu       string
	from, to token.Pos
}

type fieldAccess struct {
	field  string
	pos    token.Pos
	write  bool
	noFlag bool // inside a FuncLit: unknown execution context
}

type methodFacts struct {
	decl      *ast.FuncDecl
	intervals []interval
	accesses  []fieldAccess
}

// Run implements Check.
func (c *MutexGuard) Run(pass *Pass) {
	pkg := pass.Pkg
	methods := methodsOf(pkg)
	structDecls(pkg, func(name *ast.Ident, st *ast.StructType) {
		obj, ok := pkg.Info.Defs[name]
		if !ok {
			return
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			return
		}
		stype, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		mutexes := mutexFields(stype)
		if len(mutexes) == 0 {
			return
		}
		skip := map[string]bool{}
		for i := 0; i < stype.NumFields(); i++ {
			f := stype.Field(i)
			if mutexes[f.Name()] || isSyncType(f.Type()) {
				skip[f.Name()] = true
			}
		}

		var facts []methodFacts
		for _, m := range methods[name.Name] {
			if m.Body == nil {
				continue
			}
			facts = append(facts, analyzeMethod(pkg, m, mutexes, skip))
		}

		// Fields some method writes: only these can race.
		written := map[string]bool{}
		for _, mf := range facts {
			for _, a := range mf.accesses {
				if a.write {
					written[a.field] = true
				}
			}
		}
		// Fields observed under a lock anywhere, with the guarding mutex
		// and an example method for the message.
		type guard struct{ mu, method string }
		guardedBy := map[string][]guard{}
		for _, mf := range facts {
			for _, a := range mf.accesses {
				if !written[a.field] {
					continue
				}
				for _, iv := range mf.intervals {
					if a.pos >= iv.from && a.pos <= iv.to {
						gs := guardedBy[a.field]
						dup := false
						for _, g := range gs {
							if g.mu == iv.mu {
								dup = true
								break
							}
						}
						if !dup {
							guardedBy[a.field] = append(gs, guard{mu: iv.mu, method: mf.decl.Name.Name})
						}
						break
					}
				}
			}
		}
		if len(guardedBy) == 0 {
			return
		}
		for _, mf := range facts {
			reported := map[string]bool{}
			for _, a := range mf.accesses {
				gs, guarded := guardedBy[a.field]
				if !guarded || a.noFlag || reported[a.field] {
					continue
				}
				held := false
				for _, iv := range mf.intervals {
					if a.pos >= iv.from && a.pos <= iv.to {
						for _, g := range gs {
							if g.mu == iv.mu {
								held = true
								break
							}
						}
					}
					if held {
						break
					}
				}
				if held {
					continue
				}
				reported[a.field] = true
				pass.Reportf(a.pos,
					"%s.%s accesses %q without holding %s (the field is written under %s in %s.%s)",
					name.Name, mf.decl.Name.Name, a.field, gs[0].mu, gs[0].mu, name.Name, gs[0].method)
			}
		}
	})
}

// analyzeMethod extracts the method's lock intervals and field accesses.
func analyzeMethod(pkg *Package, m *ast.FuncDecl, mutexes, skip map[string]bool) methodFacts {
	_, recv := receiverNamed(pkg, m)
	mf := methodFacts{decl: m}
	if recv == nil {
		return mf
	}

	type lockEvent struct {
		mu       string
		pos      token.Pos
		unlock   bool
		deferred bool
	}
	var events []lockEvent
	funcLitDepth := 0

	// record classifies an access rooted at a receiver field. A write
	// remains a write only while the selector path stays inside the
	// field's own memory: stepping through a pointer (c.store.x = v, or
	// *c.ptr = v) mutates the pointee, so the field itself is merely read.
	// Indexing keeps write status — mutating a map or slice held in the
	// field races with its readers.
	record := func(e ast.Expr, write bool) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				write = false
				e = x.X
			case *ast.SelectorExpr:
				if isReceiver(pkg, x.X, recv) {
					if f, ok := fieldOfReceiver(pkg, x, recv); ok && !skip[f] {
						mf.accesses = append(mf.accesses, fieldAccess{
							field: f, pos: x.Pos(), write: write, noFlag: funcLitDepth > 0,
						})
					}
					return
				}
				if t := typeOf(pkg, x.X); t != nil {
					if _, ptr := t.Underlying().(*types.Pointer); ptr {
						write = false
					}
				}
				e = x.X
			default:
				return
			}
		}
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			funcLitDepth++
			ast.Inspect(x.Body, walk)
			funcLitDepth--
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				record(lhs, true)
			}
			return true
		case *ast.IncDecStmt:
			record(x.X, true)
			return true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				record(x.X, true)
			}
			return true
		case *ast.DeferStmt, *ast.CallExpr:
			call, deferred := (*ast.CallExpr)(nil), false
			if ds, ok := n.(*ast.DeferStmt); ok {
				call, deferred = ds.Call, true
			} else {
				call = n.(*ast.CallExpr)
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && len(call.Args) > 0 {
				record(call.Args[0], true)
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isLockOp(sel.Sel.Name) && funcLitDepth == 0 {
				if f, ok := fieldOfReceiver(pkg, sel.X, recv); ok && mutexes[f] {
					events = append(events, lockEvent{
						mu: f, pos: call.Pos(),
						unlock:   sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock",
						deferred: deferred,
					})
				}
			}
			if deferred {
				// Walk the deferred call's parts ourselves: re-walking the
				// CallExpr node itself would register a lock op twice.
				if sel, ok := call.Fun.(*ast.SelectorExpr); !ok || !isLockOp(sel.Sel.Name) {
					ast.Inspect(call.Fun, walk)
				}
				for _, a := range call.Args {
					ast.Inspect(a, walk)
				}
				return false
			}
			return true
		case *ast.SelectorExpr:
			if isReceiver(pkg, x.X, recv) {
				if s, ok := pkg.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
					record(x, false)
					return false
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(m.Body, walk)

	// Fold the event stream into locked intervals, per mutex.
	bodyStart, bodyEnd := m.Body.Pos(), m.Body.End()
	open := map[string]token.Pos{}
	for _, ev := range events {
		switch {
		case !ev.unlock && !ev.deferred:
			if _, ok := open[ev.mu]; !ok {
				open[ev.mu] = ev.pos
			}
		case ev.unlock && ev.deferred:
			// Lock(); defer Unlock(): held from the lock (or method entry,
			// when the caller locked) to the end of the method.
			from, ok := open[ev.mu]
			if !ok {
				from = bodyStart
			}
			delete(open, ev.mu)
			mf.intervals = append(mf.intervals, interval{mu: ev.mu, from: from, to: bodyEnd})
		case ev.unlock:
			from, ok := open[ev.mu]
			if !ok {
				from = bodyStart // caller passed the lock in
			}
			delete(open, ev.mu)
			mf.intervals = append(mf.intervals, interval{mu: ev.mu, from: from, to: ev.pos})
		}
	}
	for mu, from := range open {
		// Locked and never unlocked here (unlock happens elsewhere): hold
		// to the end.
		mf.intervals = append(mf.intervals, interval{mu: mu, from: from, to: bodyEnd})
	}
	return mf
}

func isLockOp(name string) bool {
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return true
	}
	return false
}

// mutexFields returns the names of sync.Mutex / sync.RWMutex fields.
func mutexFields(st *types.Struct) map[string]bool {
	out := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		named := namedOf(f.Type())
		if named == nil {
			continue
		}
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" {
			switch named.Obj().Name() {
			case "Mutex", "RWMutex":
				out[f.Name()] = true
			}
		}
	}
	return out
}
