package lint

import (
	"go/ast"
	"go/types"
)

// SnapshotPin enforces the snapshot read discipline that makes concurrent
// sessions sound (DESIGN.md §10). A live Heap's scan-entry methods — Scan,
// Iterate, IterateRange, Get, Partitions — read the mutable page table,
// which writers republish in place; calling them outside the package that
// owns the heap races with every concurrent INSERT/UPDATE/ANALYZE unless
// the caller holds the table's write lock. Reader code must instead pin an
// immutable view first (Heap.CurrentSnapshot, Heap.AcquireSnapshot, or
// ExecCtx.View) and scan that: the same methods on HeapSnapshot, or
// through the ReadView interface, are safe by construction because a
// snapshot's page table never changes after Publish. The storage package
// itself is exempt — it is the implementation being wrapped — and
// legitimate under-lock uses (DML pipelines that must observe the heap
// they are about to mutate) document themselves with
// //lint:ignore sinew/snapshot-pin and a reason.
type SnapshotPin struct{}

// ID implements Check.
func (*SnapshotPin) ID() string { return "snapshot-pin" }

// Doc implements Check.
func (*SnapshotPin) Doc() string {
	return "live Heap scans outside storage must pin a snapshot (CurrentSnapshot/AcquireSnapshot/ExecCtx.View) or hold the table write lock"
}

// snapshotScanEntries are the Heap methods that walk the mutable page
// table. Mutators (Insert, Update, Delete) are not listed: they are
// write-lock territory by definition and MutexGuard covers that side.
var snapshotScanEntries = map[string]bool{
	"Scan":         true,
	"Iterate":      true,
	"IterateRange": true,
	"Get":          true,
	"Partitions":   true,
}

// Run implements Check.
func (c *SnapshotPin) Run(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !snapshotScanEntries[sel.Sel.Name] {
					return true
				}
				// Only genuine method calls: a package-qualified function or
				// a func-valued field named Scan is a different animal.
				if s, ok := pkg.Info.Selections[sel]; !ok || s.Kind() != types.MethodVal {
					return true
				}
				named := namedOf(pkg.Info.Types[sel.X].Type)
				if named == nil || named.Obj().Name() != "Heap" {
					return true
				}
				// The declaring package is the storage layer itself: raw
				// page-table access is its job.
				if named.Obj().Pkg() == pkg.Types {
					return true
				}
				pass.Reportf(sel.Sel.Pos(),
					"%s calls %s.%s on a live heap without pinning a snapshot: readers must scan an immutable view (CurrentSnapshot/AcquireSnapshot/ExecCtx.View); write-lock holders justify the live scan with //lint:ignore",
					fd.Name.Name, types.ExprString(sel.X), sel.Sel.Name)
				return true
			})
		}
	}
}
