package lint

import (
	"go/ast"
	"go/types"
)

// ClosePropagation enforces the resource-release invariant of the executor
// and storage layers: pager byte accounting is flushed by HeapIter.Close,
// so every operator that owns a child iterator (anything with a no-arg
// Close method: Iterator, BatchIterator, *storage.HeapIter, RowSource, …)
// must forward Close to it. A struct that has such fields and a Close
// method which never releases one of them — directly, through a sibling
// method, via a range loop, or by handing the field to a helper — leaks
// the child's accounting when a LIMIT or an error abandons the plan early.
// Structs that look like iterators (they have Next or NextBatch) but lack
// Close entirely are reported too.
type ClosePropagation struct{}

// ID implements Check.
func (*ClosePropagation) ID() string { return "close-propagation" }

// Doc implements Check.
func (*ClosePropagation) Doc() string {
	return "operators owning child iterators must forward Close() so pager accounting stays exact"
}

// Run implements Check.
func (c *ClosePropagation) Run(pass *Pass) {
	pkg := pass.Pkg
	methods := methodsOf(pkg)
	structDecls(pkg, func(name *ast.Ident, st *ast.StructType) {
		obj, ok := pkg.Info.Defs[name]
		if !ok {
			return
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			return
		}
		stype, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		closable := closableFields(stype)
		if len(closable) == 0 {
			return
		}
		var closeDecl *ast.FuncDecl
		hasNext := false
		for _, m := range methods[name.Name] {
			switch m.Name.Name {
			case "Close":
				closeDecl = m
			case "Next", "NextBatch":
				hasNext = true
			}
		}
		if closeDecl == nil {
			if hasNext {
				pass.Reportf(name.Pos(),
					"%s has Next/NextBatch and closable field %s but no Close method; child resources (pager accounting) cannot be released",
					name.Name, closable[0])
			}
			return
		}
		released := releasedFields(pkg, name.Name, closeDecl, methods)
		for _, f := range closable {
			if !released[f] {
				pass.Reportf(closeDecl.Pos(),
					"%s.Close does not release field %q, which has a Close method; early plan abandonment leaks its resources (pager byte accounting)",
					name.Name, f)
			}
		}
	})
}

// closableFields lists the struct's fields (including slice/array fields)
// whose type carries a no-arg Close method. Synchronization primitives and
// function fields are skipped.
func closableFields(st *types.Struct) []string {
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		t, _ := closableElem(f.Type())
		if isSyncType(t) {
			continue
		}
		if _, ok := t.Underlying().(*types.Signature); ok {
			continue
		}
		if hasCloseMethod(t) {
			out = append(out, f.Name())
		}
	}
	return out
}

// releasedFields computes which receiver fields are plausibly released by
// Close: the set of fields that, somewhere in Close or any same-type
// method transitively reachable from it, (a) have .Close() called on them,
// (b) are ranged over with the element later closed or used, or (c) are
// passed to any function or method call (a helper is assumed to take
// ownership).
func releasedFields(pkg *Package, typeName string, closeDecl *ast.FuncDecl, methods map[string][]*ast.FuncDecl) map[string]bool {
	released := make(map[string]bool)
	byName := make(map[string]*ast.FuncDecl, len(methods[typeName]))
	for _, m := range methods[typeName] {
		byName[m.Name.Name] = m
	}
	seen := map[string]bool{}
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if fd == nil || fd.Body == nil || seen[fd.Name.Name] {
			return
		}
		seen[fd.Name.Name] = true
		_, recv := receiverNamed(pkg, fd)
		if recv == nil {
			return
		}
		// Range vars aliasing a closable field's elements.
		rangeVars := map[types.Object]string{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.RangeStmt:
				if f, ok := fieldOfReceiver(pkg, x.X, recv); ok {
					if id, ok := x.Value.(*ast.Ident); ok && id.Name != "_" {
						if obj := pkg.Info.Defs[id]; obj != nil {
							rangeVars[obj] = f
						}
					}
				}
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					// recv.f.Close() or chain.Close() rooted at recv.f.
					if sel.Sel.Name == "Close" {
						if f, ok := fieldOfReceiver(pkg, sel.X, recv); ok {
							released[f] = true
						}
						// v.Close() where v ranges over recv.f.
						if id, ok := sel.X.(*ast.Ident); ok {
							if obj := pkg.Info.Uses[id]; obj != nil {
								if f, ok := rangeVars[obj]; ok {
									released[f] = true
								}
							}
						}
					}
					// recv.helper(): follow same-type methods.
					if isReceiver(pkg, sel.X, recv) {
						if m, ok := byName[sel.Sel.Name]; ok {
							visit(m)
						}
					}
				}
				// recv.f passed as an argument: the callee owns release.
				for _, arg := range x.Args {
					if f, ok := fieldOfReceiver(pkg, arg, recv); ok {
						released[f] = true
					}
					if id, ok := arg.(*ast.Ident); ok {
						if obj := pkg.Info.Uses[id]; obj != nil {
							if f, ok := rangeVars[obj]; ok {
								released[f] = true
							}
						}
					}
				}
			}
			return true
		})
	}
	visit(closeDecl)
	return released
}
