package lint

import (
	"go/ast"
	"go/types"
)

// ClosePropagation enforces the resource-release invariant of the executor
// and storage layers: pager byte accounting is flushed by HeapIter.Close,
// so every operator that owns a child iterator (anything with a no-arg
// Close method: Iterator, BatchIterator, *storage.HeapIter, RowSource, …)
// must forward Close to it. A struct that has such fields and a Close
// method which never releases one of them — directly, through a sibling
// method, via a range loop, or by handing the field to a helper — leaks
// the child's accounting when a LIMIT or an error abandons the plan early.
// Structs that look like iterators (they have Next or NextBatch) but lack
// Close entirely are reported too.
//
// One ownership transfer is recognized beyond direct release: the worker
// hand-off. When a constructor stores a closable value into the field AND
// hands the same value to a spawned method (`go y.worker(i, s)`) whose
// parameter is closed on every path through its CFG (a `defer s.Close()`
// reaching every return), and the type's Close waits on a sync.WaitGroup
// field, then the workers provably close the field's contents before
// Close returns — the ParallelScanIter pattern, previously only
// expressible as a //lint:ignore.
type ClosePropagation struct{}

// ID implements Check.
func (*ClosePropagation) ID() string { return "close-propagation" }

// Doc implements Check.
func (*ClosePropagation) Doc() string {
	return "operators owning child iterators must forward Close() so pager accounting stays exact"
}

// PackageParallel implements PkgParallel: state is per-struct, per-package.
func (*ClosePropagation) PackageParallel() {}

// Run implements Check.
func (c *ClosePropagation) Run(pass *Pass) {
	pkg := pass.Pkg
	methods := methodsOf(pkg)
	structDecls(pkg, func(name *ast.Ident, st *ast.StructType) {
		obj, ok := pkg.Info.Defs[name]
		if !ok {
			return
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			return
		}
		stype, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		closable := closableFields(stype)
		if len(closable) == 0 {
			return
		}
		var closeDecl *ast.FuncDecl
		hasNext := false
		for _, m := range methods[name.Name] {
			switch m.Name.Name {
			case "Close":
				closeDecl = m
			case "Next", "NextBatch":
				hasNext = true
			}
		}
		if closeDecl == nil {
			if hasNext {
				pass.Reportf(name.Pos(),
					"%s has Next/NextBatch and closable field %s but no Close method; child resources (pager accounting) cannot be released",
					name.Name, closable[0])
			}
			return
		}
		released := releasedFields(pkg, name.Name, closeDecl, methods)
		var handoff map[string]map[int]bool
		handoffDone := false
		for _, f := range closable {
			if released[f] {
				continue
			}
			// Before reporting, try the worker hand-off proof: the field's
			// values were given to goroutine methods that close their
			// parameter on every path, and Close waits for those
			// goroutines on a WaitGroup.
			if !handoffDone {
				handoffDone = true
				if closeReachesWait(pkg, stype, closeDecl, methods[name.Name]) {
					handoff = handoffClosers(pkg, name.Name, methods)
				}
			}
			if fieldHandedToCloser(pkg, named, f, handoff) {
				continue
			}
			pass.Reportf(closeDecl.Pos(),
				"%s.Close does not release field %q, which has a Close method; early plan abandonment leaks its resources (pager byte accounting)",
				name.Name, f)
		}
	})
}

// closableFields lists the struct's fields (including slice/array fields)
// whose type carries a no-arg Close method. Synchronization primitives and
// function fields are skipped.
func closableFields(st *types.Struct) []string {
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		t, _ := closableElem(f.Type())
		if isSyncType(t) {
			continue
		}
		if _, ok := t.Underlying().(*types.Signature); ok {
			continue
		}
		if hasCloseMethod(t) {
			out = append(out, f.Name())
		}
	}
	return out
}

// releasedFields computes which receiver fields are plausibly released by
// Close: the set of fields that, somewhere in Close or any same-type
// method transitively reachable from it, (a) have .Close() called on them,
// (b) are ranged over with the element later closed or used, or (c) are
// passed to any function or method call (a helper is assumed to take
// ownership).
func releasedFields(pkg *Package, typeName string, closeDecl *ast.FuncDecl, methods map[string][]*ast.FuncDecl) map[string]bool {
	released := make(map[string]bool)
	byName := make(map[string]*ast.FuncDecl, len(methods[typeName]))
	for _, m := range methods[typeName] {
		byName[m.Name.Name] = m
	}
	seen := map[string]bool{}
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if fd == nil || fd.Body == nil || seen[fd.Name.Name] {
			return
		}
		seen[fd.Name.Name] = true
		_, recv := receiverNamed(pkg, fd)
		if recv == nil {
			return
		}
		// Range vars aliasing a closable field's elements.
		rangeVars := map[types.Object]string{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.RangeStmt:
				if f, ok := fieldOfReceiver(pkg, x.X, recv); ok {
					if id, ok := x.Value.(*ast.Ident); ok && id.Name != "_" {
						if obj := pkg.Info.Defs[id]; obj != nil {
							rangeVars[obj] = f
						}
					}
				}
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					// recv.f.Close() or chain.Close() rooted at recv.f.
					if sel.Sel.Name == "Close" {
						if f, ok := fieldOfReceiver(pkg, sel.X, recv); ok {
							released[f] = true
						}
						// v.Close() where v ranges over recv.f.
						if id, ok := sel.X.(*ast.Ident); ok {
							if obj := pkg.Info.Uses[id]; obj != nil {
								if f, ok := rangeVars[obj]; ok {
									released[f] = true
								}
							}
						}
					}
					// recv.helper(): follow same-type methods.
					if isReceiver(pkg, sel.X, recv) {
						if m, ok := byName[sel.Sel.Name]; ok {
							visit(m)
						}
					}
				}
				// recv.f passed as an argument: the callee owns release.
				for _, arg := range x.Args {
					if f, ok := fieldOfReceiver(pkg, arg, recv); ok {
						released[f] = true
					}
					if id, ok := arg.(*ast.Ident); ok {
						if obj := pkg.Info.Uses[id]; obj != nil {
							if f, ok := rangeVars[obj]; ok {
								released[f] = true
							}
						}
					}
				}
			}
			return true
		})
	}
	visit(closeDecl)
	return released
}

// closeReachesWait reports whether Close (or a same-type method it calls)
// waits on a sync.WaitGroup field of the struct — the synchronization
// that makes a worker hand-off sound: Close cannot return until every
// spawned worker's deferred cleanup has run.
func closeReachesWait(pkg *Package, st *types.Struct, closeDecl *ast.FuncDecl, typeMethods []*ast.FuncDecl) bool {
	wgFields := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		named := namedOf(f.Type())
		if named == nil {
			continue
		}
		if p := named.Obj().Pkg(); p != nil && p.Path() == "sync" && named.Obj().Name() == "WaitGroup" {
			wgFields[f.Name()] = true
		}
	}
	if len(wgFields) == 0 {
		return false
	}
	byName := make(map[string]*ast.FuncDecl, len(typeMethods))
	for _, m := range typeMethods {
		byName[m.Name.Name] = m
	}
	seen := map[string]bool{}
	found := false
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if fd == nil || fd.Body == nil || seen[fd.Name.Name] || found {
			return
		}
		seen[fd.Name.Name] = true
		_, recv := receiverNamed(pkg, fd)
		if recv == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "Wait" {
				if f, ok := fieldOfReceiver(pkg, sel.X, recv); ok && wgFields[f] {
					found = true
				}
			}
			if isReceiver(pkg, sel.X, recv) {
				visit(byName[sel.Sel.Name])
			}
			return true
		})
	}
	visit(closeDecl)
	return found
}

// handoffClosers finds, per method of the type, the parameter positions
// that are provably closed on EVERY path through the method: a must-fact
// over the CFG, generated by `defer q.Close()` (registration guarantees
// the close at whatever return the path reaches) or a direct q.Close()
// call, required to hold at function exit.
func handoffClosers(pkg *Package, typeName string, methods map[string][]*ast.FuncDecl) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, m := range methods[typeName] {
		if m.Body == nil || m.Type.Params == nil {
			continue
		}
		type cand struct {
			idx int
			obj types.Object
		}
		var cands []cand
		pos := 0
		for _, fl := range m.Type.Params.List {
			if len(fl.Names) == 0 {
				pos++
				continue
			}
			for _, nm := range fl.Names {
				if obj := pkg.Info.Defs[nm]; obj != nil && hasCloseMethod(obj.Type()) {
					cands = append(cands, cand{idx: pos, obj: obj})
				}
				pos++
			}
		}
		if len(cands) == 0 {
			continue
		}
		g := BuildCFG(m.Body)
		step := func(n ast.Node, facts Facts) {
			callsIn(n, "Close", func(call *ast.CallExpr) {
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return
				}
				obj := pkg.Info.Uses[id]
				for ci := range cands {
					if cands[ci].obj == obj {
						facts.Set(ci)
					}
				}
			})
		}
		sol := SolveForward(g, MeetMust, len(cands), NewFacts(len(cands), false), func(b *Block, in Facts) Facts {
			for _, n := range b.Nodes {
				step(n, in)
			}
			return in
		})
		exitIn := sol[g.Exit]
		for ci := range cands {
			if exitIn.Has(ci) {
				if out[m.Name.Name] == nil {
					out[m.Name.Name] = map[int]bool{}
				}
				out[m.Name.Name][cands[ci].idx] = true
			}
		}
	}
	return out
}

// fieldHandedToCloser reports whether, somewhere in the package, a value
// stored into the named type's field (y.f = v, y.f[i] = v, or
// y.f = append(y.f, v)) is also handed to a spawned method of the type
// (`go y.M(..., v, ...)`) at a parameter position M provably closes.
func fieldHandedToCloser(pkg *Package, named *types.Named, field string, handoff map[string]map[int]bool) bool {
	if len(handoff) == 0 {
		return false
	}
	sameType := func(e ast.Expr) bool {
		n := namedOf(typeOf(pkg, e))
		return n != nil && n.Obj() == named.Obj()
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			stored := map[types.Object]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, lhs := range as.Lhs {
					if i >= len(as.Rhs) {
						break
					}
					target := lhs
					if ix, ok := target.(*ast.IndexExpr); ok {
						target = ix.X
					}
					sel, ok := target.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != field || !sameType(sel.X) {
						continue
					}
					switch rhs := as.Rhs[i].(type) {
					case *ast.Ident:
						if obj := pkg.Info.Uses[rhs]; obj != nil {
							stored[obj] = true
						}
					case *ast.CallExpr:
						if id, ok := rhs.Fun.(*ast.Ident); ok && id.Name == "append" && len(rhs.Args) > 1 {
							for _, a := range rhs.Args[1:] {
								if aid, ok := a.(*ast.Ident); ok {
									if obj := pkg.Info.Uses[aid]; obj != nil {
										stored[obj] = true
									}
								}
							}
						}
					}
				}
				return true
			})
			if len(stored) == 0 {
				continue
			}
			handed := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				sel, ok := gs.Call.Fun.(*ast.SelectorExpr)
				if !ok || !sameType(sel.X) {
					return true
				}
				for pi := range handoff[sel.Sel.Name] {
					if pi < len(gs.Call.Args) {
						if id, ok := gs.Call.Args[pi].(*ast.Ident); ok {
							if obj := pkg.Info.Uses[id]; obj != nil && stored[obj] {
								handed = true
							}
						}
					}
				}
				return true
			})
			if handed {
				return true
			}
		}
	}
	return false
}
