// Package lint is sinewlint's engine: a stdlib-only static analyzer that
// enforces project invariants the Go compiler cannot see — Close()
// propagation through iterator trees (pager byte accounting), mutex
// discipline on shared structs, exhaustive switches over the engine's type
// tags, plan-cache key completeness for session variables, and discarded
// errors on the storage/serialization paths. Checks run over the whole
// type-checked module (see load.go) and report file:line diagnostics with
// a stable check ID; deliberate exceptions are silenced in source with
//
//	//lint:ignore sinew/<check-id> <reason>
//
// placed on the flagged line, the line above it, or in the doc comment of
// the enclosing declaration (which silences the whole declaration). The
// reason is mandatory: an unexplained suppression is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string // full ID, e.g. "sinew/close-propagation"
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Check is a single analysis. Run is called once per module package, in
// import-path order; a check may accumulate state across packages.
type Check interface {
	// ID is the short check name; the reported ID is "sinew/" + ID().
	ID() string
	// Doc is a one-line description of the enforced invariant.
	Doc() string
	Run(pass *Pass)
}

// ModuleCheck is implemented by checks that need a whole-module view:
// Finish runs once after every package has been visited.
type ModuleCheck interface {
	Check
	Finish(pass *Pass)
}

// PkgParallel marks a check whose Run calls are independent across
// packages — no state accumulates between them — so the driver may fan
// its packages out across goroutines. Checks that build module-wide maps
// (PlanCacheKey, AtomicConsistency) must NOT carry the marker: their
// packages run in import-path order on one goroutine.
type PkgParallel interface {
	Check
	PackageParallel()
}

// Pass hands one package (or, for Finish, the whole program) to a check.
type Pass struct {
	Prog *Program
	Pkg  *Package // nil during ModuleCheck.Finish
	id   string
	out  *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Pos:     p.Prog.Fset.Position(pos),
		Check:   "sinew/" + p.id,
		Message: fmt.Sprintf(format, args...),
	})
}

// Registry returns the full check suite in reporting order.
func Registry() []Check {
	return []Check{
		&ClosePropagation{},
		&MutexGuard{},
		&EnumSwitch{},
		&PlanCacheKey{},
		&UncheckedError{},
		&SelInvariant{},
		&SnapshotPin{},
		&AtomicConsistency{},
		&BatchEscape{},
		&EpochOrder{},
	}
}

// Run executes the given checks over the program and returns surviving
// diagnostics sorted by position. Suppressed findings are dropped;
// malformed //lint:ignore directives are reported as sinew/bad-ignore.
func Run(prog *Program, checks []Check) []Diagnostic {
	diags, _ := RunTimed(prog, checks)
	return diags
}

// CheckTiming is one check's wall time and surviving-finding-independent
// raw diagnostic count, for `sinewlint -v`.
type CheckTiming struct {
	ID       string
	Elapsed  time.Duration
	Findings int
}

// RunTimed is Run with per-check wall times. Checks execute concurrently,
// each on its own goroutine with a private diagnostic slice; a check
// carrying the PkgParallel marker additionally fans its packages out.
// Merging happens in registry then package order, so output is identical
// to the old sequential driver.
func RunTimed(prog *Program, checks []Check) ([]Diagnostic, []CheckTiming) {
	perCheck := make([][]Diagnostic, len(checks))
	timings := make([]CheckTiming, len(checks))
	var wg sync.WaitGroup
	for ci, c := range checks {
		wg.Add(1)
		go func(ci int, c Check) {
			defer wg.Done()
			start := time.Now()
			if _, fan := c.(PkgParallel); fan && len(prog.Packages) > 1 {
				perPkg := make([][]Diagnostic, len(prog.Packages))
				var pwg sync.WaitGroup
				for pi, pkg := range prog.Packages {
					pwg.Add(1)
					go func(pi int, pkg *Package) {
						defer pwg.Done()
						c.Run(&Pass{Prog: prog, Pkg: pkg, id: c.ID(), out: &perPkg[pi]})
					}(pi, pkg)
				}
				pwg.Wait()
				for _, d := range perPkg {
					perCheck[ci] = append(perCheck[ci], d...)
				}
			} else {
				for _, pkg := range prog.Packages {
					c.Run(&Pass{Prog: prog, Pkg: pkg, id: c.ID(), out: &perCheck[ci]})
				}
			}
			if mc, ok := c.(ModuleCheck); ok {
				mc.Finish(&Pass{Prog: prog, id: c.ID(), out: &perCheck[ci]})
			}
			timings[ci] = CheckTiming{ID: "sinew/" + c.ID(), Elapsed: time.Since(start), Findings: len(perCheck[ci])}
		}(ci, c)
	}
	wg.Wait()
	var diags []Diagnostic
	for _, d := range perCheck {
		diags = append(diags, d...)
	}
	sup := collectSuppressions(prog)
	diags = append(diags, sup.malformed...)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.matches(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return kept[i].Check < kept[j].Check
	})
	return kept, timings
}

// ---------- //lint:ignore suppression ----------

var ignoreRx = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)(?:\s+(.*))?$`)

// suppression is one directive's effect: check ID over a line range of a
// file. A bare directive covers its own line and the next; a directive in
// a declaration's doc comment covers the whole declaration.
type suppression struct {
	file     string
	check    string
	from, to int
}

type suppressionSet struct {
	byFile    map[string][]suppression
	malformed []Diagnostic
}

func (s *suppressionSet) matches(d Diagnostic) bool {
	for _, sup := range s.byFile[d.Pos.Filename] {
		if sup.check == d.Check && d.Pos.Line >= sup.from && d.Pos.Line <= sup.to {
			return true
		}
	}
	return false
}

func collectSuppressions(prog *Program) *suppressionSet {
	set := &suppressionSet{byFile: make(map[string][]suppression)}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			file := prog.Fset.File(f.Pos())
			if file == nil {
				continue
			}
			// Map doc-comment extents so a directive inside a declaration's
			// doc comment covers the whole declaration.
			type span struct{ docFrom, docTo, declTo int }
			var spans []span
			for _, decl := range f.Decls {
				var doc *ast.CommentGroup
				switch d := decl.(type) {
				case *ast.FuncDecl:
					doc = d.Doc
				case *ast.GenDecl:
					doc = d.Doc
				}
				if doc != nil {
					spans = append(spans, span{
						docFrom: prog.Fset.Position(doc.Pos()).Line,
						docTo:   prog.Fset.Position(doc.End()).Line,
						declTo:  prog.Fset.Position(decl.End()).Line,
					})
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := ignoreRx.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					check, reason := m[1], strings.TrimSpace(m[2])
					if reason == "" {
						set.malformed = append(set.malformed, Diagnostic{
							Pos:     pos,
							Check:   "sinew/bad-ignore",
							Message: fmt.Sprintf("//lint:ignore %s needs a reason: every suppression must say why the invariant does not apply", check),
						})
						continue
					}
					sup := suppression{file: pos.Filename, check: check, from: pos.Line, to: pos.Line + 1}
					for _, sp := range spans {
						if pos.Line >= sp.docFrom && pos.Line <= sp.docTo {
							sup.to = sp.declTo
							break
						}
					}
					set.byFile[sup.file] = append(set.byFile[sup.file], sup)
				}
			}
		}
	}
	return set
}
