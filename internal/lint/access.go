package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Access classification: resolving selector expressions to the struct
// field they touch, with the access mode (read, write, address-taken,
// atomic) attached. The dataflow checks consume these instead of raw AST
// selectors, so "the same field" means the same (package, type, field)
// triple across every file of the module — embedded promotions, pointer
// receivers, and aliasing through locals all collapse onto one FieldRef
// via go/types.

// FieldRef names a struct field globally.
type FieldRef struct {
	Pkg   string // declaring package path
	Type  string // receiver named type
	Field string
}

func (r FieldRef) String() string { return r.Type + "." + r.Field }

// AccessMode classifies how a selector touches its field.
type AccessMode int

const (
	// AccessRead is a plain value read.
	AccessRead AccessMode = iota
	// AccessWrite is a plain store: assignment LHS, ++/--, or a delete()
	// on the field's map.
	AccessWrite
	// AccessAddr takes the field's address outside any sync/atomic
	// operand position (the address may then be written through).
	AccessAddr
	// AccessAtomic goes through sync/atomic: a method call on an
	// atomic-typed field, or the field's address passed to an
	// atomic.Load/Store/Add/Swap/CompareAndSwap function.
	AccessAtomic
)

func (m AccessMode) String() string {
	switch m {
	case AccessWrite:
		return "write"
	case AccessAddr:
		return "address-taken"
	case AccessAtomic:
		return "atomic"
	}
	return "read"
}

// FieldAccess is one classified field touch.
type FieldAccess struct {
	Ref  FieldRef
	Mode AccessMode
	Pos  token.Pos
	Fn   string // enclosing function, for messages
	// AtomicType is true when the field's own type is declared in
	// sync/atomic (atomic.Uint64, atomic.Pointer[T], …).
	AtomicType bool
}

// fieldRefOf resolves sel to the field it selects, when sel is a direct
// struct-field selection on a named type.
func fieldRefOf(pkg *Package, sel *ast.SelectorExpr) (FieldRef, types.Type, bool) {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return FieldRef{}, nil, false
	}
	named := namedOf(s.Recv())
	if named == nil || named.Obj().Pkg() == nil {
		return FieldRef{}, nil, false
	}
	return FieldRef{
		Pkg:   named.Obj().Pkg().Path(),
		Type:  named.Obj().Name(),
		Field: s.Obj().Name(),
	}, s.Obj().Type(), true
}

// isAtomicDeclared reports whether t is a type declared in sync/atomic.
func isAtomicDeclared(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	p := named.Obj().Pkg()
	return p != nil && p.Path() == "sync/atomic"
}

// atomicFuncCall reports whether call invokes a sync/atomic package
// function (atomic.AddInt64, atomic.LoadPointer, …).
func atomicFuncCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// classifyAccesses walks one function body and yields every classified
// struct-field access. Function literals ARE descended into: a closure's
// plain read races exactly like a method's. The classification is a
// two-pass walk: pass one marks the selectors consumed by an atomic
// operation (method-call receivers on atomic-typed fields, &field operands
// of atomic.* calls) and the write roots of assignments; pass two emits
// one FieldAccess per remaining field selector.
func classifyAccesses(pkg *Package, fnName string, body ast.Node, emit func(FieldAccess)) {
	atomicSel := make(map[*ast.SelectorExpr]bool)
	writeRoot := make(map[ast.Expr]bool)
	addrOf := make(map[*ast.SelectorExpr]bool)

	// markWrite records the selector root of one assignment target,
	// unwrapping parens/indexing. Stepping through a pointer dereference
	// mutates the pointee, not the field, so the walk stops there (the
	// field itself is then merely read).
	var markWrite func(e ast.Expr)
	markWrite = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.ParenExpr:
			markWrite(x.X)
		case *ast.IndexExpr:
			markWrite(x.X)
		case *ast.SelectorExpr:
			writeRoot[x] = true
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if sel, ok := x.X.(*ast.SelectorExpr); ok {
					addrOf[sel] = true
				}
			}
		case *ast.CallExpr:
			// delete(x.f, k) mutates the field's map.
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "delete" && len(x.Args) > 0 {
				markWrite(x.Args[0])
			}
			// x.f.Load() — the receiver selection x.f is an atomic use when
			// f's type lives in sync/atomic.
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if inner, ok := sel.X.(*ast.SelectorExpr); ok {
					if _, t, ok := fieldRefOf(pkg, inner); ok && isAtomicDeclared(t) {
						atomicSel[inner] = true
					}
				}
			}
			// atomic.AddInt64(&x.f, 1) — the &x.f operand is an atomic use
			// of a plain-typed field.
			if atomicFuncCall(pkg, x) {
				for _, a := range x.Args {
					if ue, ok := a.(*ast.UnaryExpr); ok && ue.Op == token.AND {
						if sel, ok := ue.X.(*ast.SelectorExpr); ok {
							atomicSel[sel] = true
						}
					}
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ref, t, ok := fieldRefOf(pkg, sel)
		if !ok {
			return true
		}
		acc := FieldAccess{Ref: ref, Pos: sel.Sel.Pos(), Fn: fnName, AtomicType: isAtomicDeclared(t)}
		switch {
		case atomicSel[sel]:
			acc.Mode = AccessAtomic
		case writeRoot[sel]:
			acc.Mode = AccessWrite
		case addrOf[sel]:
			acc.Mode = AccessAddr
		default:
			acc.Mode = AccessRead
		}
		emit(acc)
		return true
	})
}
