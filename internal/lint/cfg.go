package lint

import (
	"go/ast"
	"go/token"
)

// This file builds per-function control-flow graphs over go/ast — the
// substrate that turns sinewlint's newer checks from positional pattern
// matches into path-aware analyses (the same jump go vet's lostcancel and
// copylocks made via x/tools' ctrlflow; rebuilt here because the module is
// stdlib-only by policy). The graph is statement-granular: each Block holds
// a straight-line run of statement (and branch-condition) nodes, and edges
// follow if/else, for/range loops, switch/type-switch (including
// fallthrough), select, goto/labeled statements, break/continue (labeled
// and bare), and return. Function literals are opaque: their bodies do not
// execute inline, so the builder never descends into them — checks that
// care about closures analyze them as separate functions.
//
// Defer is modeled two ways: the DeferStmt node sits in the block where it
// executes (registration is a flow event — a path that returns before
// reaching the defer never runs it), and the statement is also listed in
// FuncCFG.Defers so checks can apply end-of-function effects.

// Block is one straight-line run of nodes with no internal control flow.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// FuncCFG is the control-flow graph of one function body. Entry is the
// first executed block; Exit is a synthetic block every return (and the
// body's fall-off-the-end) feeds into. Blocks that lost all predecessors
// (code after return/goto) stay in Blocks but are unreachable from Entry.
type FuncCFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	Defers []*ast.DeferStmt
}

// BuildCFG constructs the control-flow graph of a function body.
func BuildCFG(body *ast.BlockStmt) *FuncCFG {
	b := &cfgBuilder{
		cfg:    &FuncCFG{},
		labels: make(map[string]*Block),
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.cfg.Exit)
	return b.cfg
}

type cfgBuilder struct {
	cfg *FuncCFG
	cur *Block
	// scopes is the stack of enclosing breakable/continuable constructs,
	// innermost last.
	scopes []branchScope
	// labels maps label names to their target blocks (created eagerly on
	// the first goto or definition, whichever comes first).
	labels map[string]*Block
	// pendingLabel is the label of the statement about to be built, so
	// labeled loops and switches resolve `break L` / `continue L`.
	pendingLabel string
}

// branchScope is one enclosing for/range/switch/select construct.
type branchScope struct {
	label string
	brk   *Block // break target (nil only for impossible cases)
	cont  *Block // continue target; nil for switch/select
	next  *Block // fallthrough target (next case clause body)
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		b.pendingLabel = ""
		b.stmtList(x.List)
	case *ast.IfStmt:
		b.pendingLabel = ""
		b.buildIf(x)
	case *ast.ForStmt:
		b.buildFor(x)
	case *ast.RangeStmt:
		b.buildRange(x)
	case *ast.SwitchStmt:
		b.buildSwitch(x.Init, x.Tag, x.Body, s)
	case *ast.TypeSwitchStmt:
		b.buildSwitch(x.Init, nil, x.Body, s)
	case *ast.SelectStmt:
		b.buildSelect(x)
	case *ast.LabeledStmt:
		lbl := b.labelBlock(x.Label.Name)
		b.edge(b.cur, lbl)
		b.cur = lbl
		b.pendingLabel = x.Label.Name
		b.stmt(x.Stmt)
	case *ast.BranchStmt:
		b.pendingLabel = ""
		b.buildBranch(x)
	case *ast.ReturnStmt:
		b.pendingLabel = ""
		b.add(x)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // unreachable continuation
	case *ast.DeferStmt:
		b.pendingLabel = ""
		b.add(x)
		b.cfg.Defers = append(b.cfg.Defers, x)
	case *ast.EmptyStmt:
		// nothing
	default:
		// Assign, Decl, Expr, Go, IncDec, Send: straight-line.
		b.pendingLabel = ""
		b.add(s)
	}
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) buildIf(x *ast.IfStmt) {
	if x.Init != nil {
		b.add(x.Init)
	}
	b.add(x.Cond)
	head := b.cur
	join := b.newBlock()
	then := b.newBlock()
	b.edge(head, then)
	b.cur = then
	b.stmtList(x.Body.List)
	b.edge(b.cur, join)
	if x.Else != nil {
		els := b.newBlock()
		b.edge(head, els)
		b.cur = els
		b.stmt(x.Else)
		b.edge(b.cur, join)
	} else {
		b.edge(head, join)
	}
	b.cur = join
}

func (b *cfgBuilder) buildFor(x *ast.ForStmt) {
	label := b.takeLabel()
	if x.Init != nil {
		b.add(x.Init)
	}
	head := b.newBlock()
	b.edge(b.cur, head)
	if x.Cond != nil {
		head.Nodes = append(head.Nodes, x.Cond)
	}
	exit := b.newBlock()
	if x.Cond != nil {
		b.edge(head, exit) // `for {}` only leaves via break
	}
	cont := head
	var post *Block
	if x.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, x.Post)
		b.edge(post, head)
		cont = post
	}
	body := b.newBlock()
	b.edge(head, body)
	b.scopes = append(b.scopes, branchScope{label: label, brk: exit, cont: cont})
	b.cur = body
	b.stmtList(x.Body.List)
	b.edge(b.cur, cont)
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = exit
}

func (b *cfgBuilder) buildRange(x *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	b.edge(b.cur, head)
	// The RangeStmt node itself carries the iteration: the range
	// expression read plus the per-iteration key/value assignment.
	head.Nodes = append(head.Nodes, x)
	exit := b.newBlock()
	b.edge(head, exit)
	body := b.newBlock()
	b.edge(head, body)
	b.scopes = append(b.scopes, branchScope{label: label, brk: exit, cont: head})
	b.cur = body
	b.stmtList(x.Body.List)
	b.edge(b.cur, head)
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = exit
}

// buildSwitch covers both value and type switches; tag is nil for the
// latter (the TypeSwitchStmt's Assign rides in the head node).
func (b *cfgBuilder) buildSwitch(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, whole ast.Stmt) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	} else if ts, ok := whole.(*ast.TypeSwitchStmt); ok {
		b.add(ts.Assign)
	}
	head := b.cur
	exit := b.newBlock()
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, exit)
	}
	for i, cc := range clauses {
		var next *Block
		if i+1 < len(blocks) {
			next = blocks[i+1]
		}
		b.scopes = append(b.scopes, branchScope{label: label, brk: exit, next: next})
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		b.edge(b.cur, exit)
		b.scopes = b.scopes[:len(b.scopes)-1]
	}
	b.cur = exit
}

func (b *cfgBuilder) buildSelect(x *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	exit := b.newBlock()
	for _, cs := range x.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(head, blk)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.scopes = append(b.scopes, branchScope{label: label, brk: exit})
		b.cur = blk
		b.stmtList(cc.Body)
		b.edge(b.cur, exit)
		b.scopes = b.scopes[:len(b.scopes)-1]
	}
	// A select with no cases blocks forever; every other select joins.
	if len(x.Body.List) == 0 {
		b.edge(head, exit)
	}
	b.cur = exit
}

func (b *cfgBuilder) buildBranch(x *ast.BranchStmt) {
	label := ""
	if x.Label != nil {
		label = x.Label.Name
	}
	switch x.Tok {
	case token.BREAK:
		for i := len(b.scopes) - 1; i >= 0; i-- {
			sc := b.scopes[i]
			if label == "" || sc.label == label {
				b.edge(b.cur, sc.brk)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.scopes) - 1; i >= 0; i-- {
			sc := b.scopes[i]
			if sc.cont != nil && (label == "" || sc.label == label) {
				b.edge(b.cur, sc.cont)
				break
			}
		}
	case token.GOTO:
		b.edge(b.cur, b.labelBlock(label))
	case token.FALLTHROUGH:
		for i := len(b.scopes) - 1; i >= 0; i-- {
			if b.scopes[i].next != nil {
				b.edge(b.cur, b.scopes[i].next)
				break
			}
		}
	}
	b.cur = b.newBlock() // whatever follows the jump is unreachable
}

// inspectNode is ast.Inspect scoped to what executes WITH the node in its
// block: a RangeStmt head node carries the per-iteration key/value targets
// and the range expression, but its Body runs in separate blocks and must
// not be walked here (it would be analyzed twice, once with head facts).
func inspectNode(n ast.Node, fn func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		if rs.Key != nil {
			ast.Inspect(rs.Key, fn)
		}
		if rs.Value != nil {
			ast.Inspect(rs.Value, fn)
		}
		ast.Inspect(rs.X, fn)
		return
	}
	ast.Inspect(n, fn)
}

// callsIn finds every call expression inside n whose callee's terminal
// name is name, without descending into function literals (their bodies do
// not execute with the statement). It is the shallow matcher the CFG
// checks use to test one node for a flow event.
func callsIn(n ast.Node, name string, fn func(*ast.CallExpr)) {
	if n == nil {
		return
	}
	inspectNode(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == name {
				fn(call)
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == name {
				fn(call)
			}
		}
		return true
	})
}
