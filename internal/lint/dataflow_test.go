package lint

import (
	"go/ast"
	"testing"
)

func TestFactsBitset(t *testing.T) {
	f := NewFacts(130, false)
	for _, i := range []int{0, 63, 64, 129} {
		if f.Has(i) {
			t.Errorf("fresh facts have bit %d", i)
		}
		f.Set(i)
		if !f.Has(i) {
			t.Errorf("Set(%d) did not stick", i)
		}
	}
	g := f.Clone()
	f.Clear(64)
	if g.Has(64) == f.Has(64) {
		t.Errorf("Clone aliases the underlying words")
	}
	top := NewFacts(130, true)
	for _, i := range []int{0, 63, 64, 129} {
		if !top.Has(i) {
			t.Errorf("top lattice missing bit %d", i)
		}
	}
	u := NewFacts(130, false)
	u.Set(5)
	v := NewFacts(130, false)
	v.Set(70)
	w := u.Clone()
	w.UnionWith(v)
	if !w.Has(5) || !w.Has(70) {
		t.Errorf("union lost a bit")
	}
	w.IntersectWith(u)
	if !w.Has(5) || w.Has(70) {
		t.Errorf("intersection wrong: has5=%v has70=%v", w.Has(5), w.Has(70))
	}
	if !u.Equal(u.Clone()) || u.Equal(v) {
		t.Errorf("Equal misbehaves")
	}
}

// genKillStep sets bit 0 at every gen() call and clears it at every
// kill() call — the canonical one-fact transfer the solver tests use.
func genKillStep(n ast.Node, facts Facts) {
	callsIn(n, "gen", func(*ast.CallExpr) { facts.Set(0) })
	callsIn(n, "kill", func(*ast.CallExpr) { facts.Clear(0) })
}

func solve1(g *FuncCFG, mode FlowMode) map[*Block]Facts {
	return SolveForward(g, mode, 1, NewFacts(1, false), func(b *Block, in Facts) Facts {
		for _, n := range b.Nodes {
			genKillStep(n, in)
		}
		return in
	})
}

// factAt replays the solved facts up to the first sink() call and returns
// whether bit 0 holds immediately before it.
func factAt(g *FuncCFG, sol map[*Block]Facts) (bool, bool) {
	var at, found bool
	ReplayBlocks(g, sol, genKillStep, func(n ast.Node, facts Facts) {
		callsIn(n, "sink", func(*ast.CallExpr) {
			if !found {
				found = true
				at = facts.Has(0)
			}
		})
	})
	return at, found
}

func TestSolveMustVsMayAtBranchJoin(t *testing.T) {
	g := parseBody(t, "if p() { gen() }; sink()")
	if got, ok := factAt(g, solve1(g, MeetMust)); !ok || got {
		t.Errorf("must: fact generated on one branch survives the join (ok=%v)", ok)
	}
	if got, ok := factAt(g, solve1(g, MeetMay)); !ok || !got {
		t.Errorf("may: fact generated on one branch lost at the join (ok=%v)", ok)
	}
}

func TestSolveMustBothBranches(t *testing.T) {
	g := parseBody(t, "if p() { gen() } else { gen() }; sink()")
	if got, ok := factAt(g, solve1(g, MeetMust)); !ok || !got {
		t.Errorf("must: fact generated on every branch dropped at the join (ok=%v)", ok)
	}
}

func TestSolveStraightLineKill(t *testing.T) {
	g := parseBody(t, "gen(); kill(); sink()")
	if got, _ := factAt(g, solve1(g, MeetMay)); got {
		t.Errorf("kill did not clear the fact even in may mode")
	}
}

func TestSolveLoopBackEdge(t *testing.T) {
	// The kill at the end of the body flows around the back edge: on the
	// second iteration the fact is gone, so must-mode cannot keep it at
	// the sink even though gen() appears above it in source order.
	g := parseBody(t, "gen()\nfor p() {\n\tsink()\n\tkill()\n}")
	if got, ok := factAt(g, solve1(g, MeetMust)); !ok || got {
		t.Errorf("must: mid-loop kill ignored across the back edge (ok=%v)", ok)
	}
	if got, ok := factAt(g, solve1(g, MeetMay)); !ok || !got {
		t.Errorf("may: first-iteration fact lost (ok=%v)", ok)
	}
}

func TestSolveLoopInvariantHold(t *testing.T) {
	g := parseBody(t, "gen()\nfor p() {\n\tsink()\n}")
	if got, ok := factAt(g, solve1(g, MeetMust)); !ok || !got {
		t.Errorf("must: loop-invariant fact dropped inside the loop (ok=%v)", ok)
	}
}

func TestSolveUnreachableConvergesToTop(t *testing.T) {
	g := parseBody(t, "return\nsink()")
	sol := solve1(g, MeetMust)
	for _, b := range g.Blocks {
		if b == g.Entry || len(b.Preds) > 0 {
			continue
		}
		if !sol[b].Has(0) {
			t.Errorf("unreachable block %d not at must-top: a reporting pass would flag dead code", b.Index)
		}
	}
}

func TestSolveCallerHeldEntrySeed(t *testing.T) {
	// Seeding the entry facts models conventions like "the caller passed
	// the lock in": the fact holds everywhere until killed.
	g := parseBody(t, "sink(); kill()")
	entry := NewFacts(1, false)
	entry.Set(0)
	sol := SolveForward(g, MeetMust, 1, entry, func(b *Block, in Facts) Facts {
		for _, n := range b.Nodes {
			genKillStep(n, in)
		}
		return in
	})
	if got, ok := factAt(g, sol); !ok || !got {
		t.Errorf("entry-seeded fact missing at the first use (ok=%v)", ok)
	}
}

func TestReplaySeesPreStateOfEachNode(t *testing.T) {
	// At the gen() node itself the fact is not yet set (visit runs before
	// step); one statement later it is.
	g := parseBody(t, "gen(); sink()")
	var atGen, atSink bool
	sol := solve1(g, MeetMay)
	ReplayBlocks(g, sol, genKillStep, func(n ast.Node, facts Facts) {
		callsIn(n, "gen", func(*ast.CallExpr) { atGen = facts.Has(0) })
		callsIn(n, "sink", func(*ast.CallExpr) { atSink = facts.Has(0) })
	})
	if atGen {
		t.Errorf("visit observed the gen node's own effect")
	}
	if !atSink {
		t.Errorf("visit did not observe the preceding node's effect")
	}
}
