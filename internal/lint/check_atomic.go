package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// AtomicConsistency enforces the all-or-nothing rule of sync/atomic: once
// any access to a field goes through the atomic package, every access
// must, module-wide. The engine's lock-free read paths lean on exactly
// this — table.stats swings through an atomic.Pointer so planners load it
// without the table lock, serial.Dictionary republishes its attribute
// snapshot for lock-free Lookup, and storage.Heap publishes its
// page-pointer table once per statement — and one plain load or store of
// such a field is an undiagnosed data race (the race detector only sees it
// on an interleaving that actually collides).
//
// Two field populations are policed:
//
//   - Fields of a sync/atomic type (atomic.Uint64, atomic.Pointer[T], …):
//     the only legal touch is calling a method on the field. Copying the
//     value, reassigning the whole field, or taking its address and
//     letting it escape defeats the type's guarantee.
//   - Plain-typed fields operated on via atomic.LoadX/StoreX/AddX/SwapX/
//     CompareAndSwapX(&f, …) anywhere in the module: every other read or
//     write of the same (type, field) must also be atomic. This is the
//     mixed-access bug go vet cannot see, because the plain access and the
//     atomic one usually live in different files.
type AtomicConsistency struct {
	// atomicVia maps fields touched through atomic.* functions to one
	// example position (for the diagnostic).
	atomicVia map[FieldRef]token.Position
	// plain accumulates every plain read/write/address-taking of
	// candidate plain-typed fields across the module.
	plain map[FieldRef][]FieldAccess
}

// ID implements Check.
func (*AtomicConsistency) ID() string { return "atomic-consistency" }

// Doc implements Check.
func (*AtomicConsistency) Doc() string {
	return "a field accessed through sync/atomic anywhere must never be read or written plainly"
}

// Run implements Check: it reports atomic-typed misuse immediately and
// gathers the module-wide access sets for Finish.
func (c *AtomicConsistency) Run(pass *Pass) {
	if c.atomicVia == nil {
		c.atomicVia = make(map[FieldRef]token.Position)
		c.plain = make(map[FieldRef][]FieldAccess)
	}
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			classifyAccesses(pkg, fd.Name.Name, fd.Body, func(a FieldAccess) {
				if a.AtomicType {
					if a.Mode != AccessAtomic {
						pass.Reportf(a.Pos,
							"%s %s atomic-typed field %s directly: the only sound access is a method call on the field (Load/Store/Add/Swap/CompareAndSwap)",
							a.Fn, accessVerb(a.Mode), a.Ref)
					}
					return
				}
				if a.Mode == AccessAtomic {
					if _, seen := c.atomicVia[a.Ref]; !seen {
						c.atomicVia[a.Ref] = pass.Prog.Fset.Position(a.Pos)
					}
					return
				}
				c.plain[a.Ref] = append(c.plain[a.Ref], a)
			})
		}
	}
}

// Finish implements ModuleCheck: with the whole module visited, any field
// in both populations is reported at each of its plain accesses.
func (c *AtomicConsistency) Finish(pass *Pass) {
	refs := make([]FieldRef, 0, len(c.atomicVia))
	for ref := range c.atomicVia {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.Field < b.Field
	})
	for _, ref := range refs {
		where := c.atomicVia[ref]
		for _, a := range c.plain[ref] {
			pass.Reportf(a.Pos,
				"%s %s %s plainly, but the field is accessed via sync/atomic (e.g. %s:%d): mixed atomic/plain access is a data race",
				a.Fn, accessVerb(a.Mode), ref, shortPath(where.Filename), where.Line)
		}
	}
}

// accessVerb renders a mode as a present-tense verb phrase.
func accessVerb(m AccessMode) string {
	switch m {
	case AccessWrite:
		return "writes"
	case AccessAddr:
		return "takes the address of"
	case AccessAtomic:
		return "atomically accesses"
	}
	return "reads"
}

// shortPath trims a position's filename to its last two path elements for
// readable cross-file diagnostics.
func shortPath(p string) string {
	slash := 0
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			slash++
			if slash == 2 {
				return p[i+1:]
			}
		}
	}
	return p
}
