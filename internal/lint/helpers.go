package lint

import (
	"go/ast"
	"go/types"
)

// hasCloseMethod reports whether t (or *t) has a Close method taking no
// arguments — the project-wide convention for resource release (exec
// iterators, storage.HeapIter, batch sources).
func hasCloseMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Close")
		fn, ok := obj.(*types.Func)
		return ok && noArgMethod(fn)
	}
	// Methods with pointer receivers are in *t's method set.
	pt := t
	if _, ok := t.(*types.Pointer); !ok {
		pt = types.NewPointer(t)
	}
	obj, _, _ := types.LookupFieldOrMethod(pt, true, nil, "Close")
	fn, ok := obj.(*types.Func)
	return ok && noArgMethod(fn)
}

func noArgMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() == 0
}

// closableElem unwraps slices and arrays so []Iterator fields count as
// closable; it returns the element type to test and whether the field was
// a collection.
func closableElem(t types.Type) (types.Type, bool) {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem(), true
	case *types.Array:
		return u.Elem(), true
	}
	return t, false
}

// isSyncType reports whether t is declared in sync or sync/atomic —
// such fields are synchronization primitives, not guarded state.
func isSyncType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic")
}

// namedOf strips pointers and returns the named type, if any.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// receiverNamed resolves a method declaration's receiver to its named type
// and receiver identifier (nil ident for anonymous receivers).
func receiverNamed(pkg *Package, fd *ast.FuncDecl) (*types.Named, *ast.Ident) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil, nil
	}
	field := fd.Recv.List[0]
	tv, ok := pkg.Info.Types[field.Type]
	if !ok {
		return nil, nil
	}
	named := namedOf(tv.Type)
	if named == nil {
		return nil, nil
	}
	if len(field.Names) > 0 {
		return named, field.Names[0]
	}
	return named, nil
}

// isReceiver reports whether e is a use of the given receiver identifier,
// unwrapping parens and pointer derefs.
func isReceiver(pkg *Package, e ast.Expr, recv *ast.Ident) bool {
	if recv == nil {
		return false
	}
	switch x := e.(type) {
	case *ast.Ident:
		ro := pkg.Info.Defs[recv]
		uo := pkg.Info.Uses[x]
		return ro != nil && ro == uo
	case *ast.ParenExpr:
		return isReceiver(pkg, x.X, recv)
	case *ast.StarExpr:
		return isReceiver(pkg, x.X, recv)
	}
	return false
}

// fieldOfReceiver returns the field name when e is recv.f (or a deeper
// selector chain rooted at recv.f, in which case the root field is
// returned), and a FieldVal selection.
func fieldOfReceiver(pkg *Package, e ast.Expr, recv *ast.Ident) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if isReceiver(pkg, sel.X, recv) {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			return sel.Sel.Name, true
		}
		return "", false
	}
	// Deeper chain: recv.f.g... — attribute to the root field f.
	return fieldOfReceiver(pkg, sel.X, recv)
}

// methodsOf collects the package's method declarations for each named type,
// keyed by type name.
func methodsOf(pkg *Package) map[string][]*ast.FuncDecl {
	out := make(map[string][]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			named, _ := receiverNamed(pkg, fd)
			if named == nil {
				continue
			}
			name := named.Obj().Name()
			out[name] = append(out[name], fd)
		}
	}
	return out
}

// structDecls yields each named struct type declared in the package along
// with its AST node.
func structDecls(pkg *Package, fn func(name *ast.Ident, st *ast.StructType)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				fn(ts.Name, st)
			}
		}
	}
}
