package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// EnumSwitch enforces exhaustiveness for switches over the engine's value
// tags: types.Type (the SQL type tag every datum carries), jsonx.Kind (the
// parsed-JSON tag), and any other module-internal integer "enum" named
// Type, Kind, AttrType, or SegEncoding (the segment vector encoding tag).
// Extraction produces every tag the serializer can write, so a switch in
// the typed-datum layer that silently falls through for a missing tag
// turns new value kinds into wrong answers rather than errors; each such
// switch must either list every declared constant of the enum or carry a
// default arm.
type EnumSwitch struct{}

// enumTypeNames are the module-internal named integer types treated as
// closed enums.
var enumTypeNames = map[string]bool{
	"Type": true, "Kind": true, "AttrType": true, "SegEncoding": true,
}

// ID implements Check.
func (*EnumSwitch) ID() string { return "datum-switch" }

// Doc implements Check.
func (*EnumSwitch) Doc() string {
	return "switches over the engine's type/kind tags must cover every constant or have a default"
}

// Run implements Check.
func (c *EnumSwitch) Run(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pkg.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			named := namedOf(tv.Type)
			if named == nil || !enumTypeNames[named.Obj().Name()] {
				return true
			}
			tpkg := named.Obj().Pkg()
			if tpkg == nil || !pass.Prog.IsModulePath(tpkg.Path()) {
				return true
			}
			basic, ok := named.Underlying().(*types.Basic)
			if !ok || basic.Info()&types.IsInteger == 0 {
				return true
			}
			consts := enumConstants(tpkg, named)
			if len(consts) < 2 {
				return true
			}
			covered := map[string]bool{}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					return true // default arm: the switch is total
				}
				for _, e := range cc.List {
					etv, ok := pkg.Info.Types[e]
					if !ok || etv.Value == nil {
						// A non-constant case (variable comparison) defeats
						// static coverage analysis; stay silent.
						return true
					}
					covered[etv.Value.ExactString()] = true
				}
			}
			var missing []string
			for val, name := range consts {
				if !covered[val] {
					missing = append(missing, name)
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				pass.Reportf(sw.Pos(),
					"switch on %s.%s is not exhaustive: missing %s (add the cases or a default arm)",
					tpkg.Name(), named.Obj().Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// enumConstants maps each distinct constant value of the enum type to one
// representative constant name from the type's declaring package.
func enumConstants(tpkg *types.Package, named *types.Named) map[string]string {
	out := map[string]string{}
	scope := tpkg.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		cn, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(cn.Type(), named) {
			continue
		}
		vs := cn.Val().ExactString()
		if _, dup := out[vs]; !dup {
			out[vs] = name
		}
	}
	return out
}
