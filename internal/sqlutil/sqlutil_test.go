package sqlutil

import "testing"

func TestQuoteIdent(t *testing.T) {
	cases := map[string]string{
		"plain":      `"plain"`,
		"user.id":    `"user.id"`,
		`with"quote`: `"with""quote"`,
		"":           `""`,
		"MixedCase":  `"MixedCase"`,
	}
	for in, want := range cases {
		if got := QuoteIdent(in); got != want {
			t.Errorf("QuoteIdent(%q) = %s, want %s", in, got, want)
		}
	}
}

func TestQuoteString(t *testing.T) {
	cases := map[string]string{
		"plain": `'plain'`,
		"it's":  `'it''s'`,
		"":      `''`,
		"a''b":  `'a''''b'`,
	}
	for in, want := range cases {
		if got := QuoteString(in); got != want {
			t.Errorf("QuoteString(%q) = %s, want %s", in, got, want)
		}
	}
}
