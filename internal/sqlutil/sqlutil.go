// Package sqlutil holds small SQL text helpers shared by the layers that
// generate SQL (Sinew's materializer and rewriter, the EAV and pgjson
// baselines).
package sqlutil

import "strings"

// QuoteIdent always quotes the identifier, which keeps generated SQL
// correct for names containing dots (flattened attributes), uppercase, or
// keyword collisions. Embedded quotes are doubled.
func QuoteIdent(name string) string {
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
}

// QuoteString renders a SQL string literal.
func QuoteString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
