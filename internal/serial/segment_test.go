package serial

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"github.com/sinewdata/sinew/internal/jsonx"
)

// buildTestSegment serializes a mixed-shape corpus (sparse keys, nested
// objects, arrays, a NULL record, multi-typed keys) and stripes it.
func buildTestSegment(t testing.TB) ([][]byte, []byte, *Dictionary) {
	t.Helper()
	dict := NewDictionary()
	docs := []string{
		`{"s":"hello","i":42,"f":2.5,"b":true,"o":{"x":"y","n":7},"a":[1,"two",null,3.5]}`,
		`{"s":"other","extra":1,"i":-7}`,
		`{"i":-1,"o":{"x":"z"},"f":-0.25,"b":false}`,
		`{"multi":"text","sparse_9":"rare"}`,
		`{"multi":99,"s":""}`,
		`{}`,
	}
	records := make([][]byte, 0, len(docs)+1)
	for _, d := range docs {
		doc, err := jsonx.ParseDocument([]byte(d))
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Serialize(doc, dict)
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, rec)
	}
	records = append(records, nil) // NULL record
	seg, err := EncodeSegment(records, dict)
	if err != nil {
		t.Fatal(err)
	}
	return records, seg, dict
}

// TestSegmentRoundTrip is the codec's differential test: every striped
// vector must agree with row-format extraction, and the raw vector must
// reproduce the input bytes exactly.
func TestSegmentRoundTrip(t *testing.T) {
	records, data, dict := buildTestSegment(t)
	s, err := ParseSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRecords() != len(records) {
		t.Fatalf("NumRecords = %d, want %d", s.NumRecords(), len(records))
	}

	for i, rec := range records {
		if s.RecordNull(i) != (rec == nil) {
			t.Errorf("record %d: RecordNull = %v", i, s.RecordNull(i))
		}
		got, ok := s.RecordBytes(i)
		if rec == nil {
			if ok {
				t.Errorf("record %d: bytes for NULL record", i)
			}
			continue
		}
		if !ok || !bytes.Equal(got, rec) {
			t.Errorf("record %d: raw vector does not reproduce input", i)
		}
	}

	// Presence bitmaps and typed vectors vs per-record row reads.
	for _, attr := range dict.All() {
		col, ok := s.Column(attr.ID)
		vals := map[int]jsonx.Value{}
		for i, rec := range records {
			if rec == nil {
				continue
			}
			v, found, err := ExtractByID(rec, attr.ID, dict)
			if err != nil {
				t.Fatal(err)
			}
			if found {
				vals[i] = v
			}
		}
		if !ok {
			// Attribute only ever appears inside nested objects/arrays.
			if len(vals) != 0 {
				t.Errorf("attr %d (%s): no column but %d row hits", attr.ID, attr.Key, len(vals))
			}
			continue
		}
		if col.NumPresent() != len(vals) {
			t.Errorf("attr %d (%s): NumPresent = %d, want %d", attr.ID, attr.Key, col.NumPresent(), len(vals))
		}
		for i := range records {
			_, want := vals[i]
			if col.Present(i) != want {
				t.Errorf("attr %d (%s) record %d: Present = %v, want %v", attr.ID, attr.Key, i, col.Present(i), want)
			}
		}
		seen := map[int]jsonx.Value{}
		switch col.Encoding() {
		case SegString:
			err = col.Strings(func(row int, b []byte) { seen[row] = jsonx.StringValue(string(b)) })
		case SegInt:
			err = col.Ints(func(row int, v int64) { seen[row] = jsonx.IntValue(v) })
		case SegFloat:
			err = col.Floats(func(row int, v float64) { seen[row] = jsonx.FloatValue(v) })
		case SegBool:
			err = col.Bools(func(row int, v bool) { seen[row] = jsonx.BoolValue(v) })
		case SegRaw:
			err = col.Raws(func(row int, b []byte) {
				v, derr := DecodeRaw(b, attr.Type, dict)
				if derr != nil {
					t.Errorf("attr %d row %d: %v", attr.ID, row, derr)
					return
				}
				seen[row] = v
			})
		default:
			t.Fatalf("attr %d: unexpected encoding %v", attr.ID, col.Encoding())
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != len(vals) {
			t.Errorf("attr %d (%s): streamed %d values, want %d", attr.ID, attr.Key, len(seen), len(vals))
		}
		for i, want := range vals {
			if got, ok := seen[i]; !ok || got.String() != want.String() {
				t.Errorf("attr %d (%s) record %d: vector %q, row %q", attr.ID, attr.Key, i, got.String(), want.String())
			}
		}
	}

	// AttrIDs ascending and matching the union of per-record IDs.
	ids := s.AttrIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("AttrIDs not ascending: %v", ids)
		}
	}
	union := map[uint32]bool{}
	for _, rec := range records {
		if rec == nil {
			continue
		}
		ra, err := AttrIDs(rec)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ra {
			union[id] = true
		}
	}
	if len(union) != len(ids) {
		t.Errorf("AttrIDs has %d entries, union has %d", len(ids), len(union))
	}
	for _, id := range ids {
		if !union[id] {
			t.Errorf("AttrIDs lists %d, absent from every record", id)
		}
	}
}

// TestSegmentRanges pins the footer min/max metadata.
func TestSegmentRanges(t *testing.T) {
	dict := NewDictionary()
	docs := []string{
		`{"n":5,"x":1.5}`,
		`{"n":-3,"x":9.25}`,
		`{"n":12}`,
	}
	records := make([][]byte, len(docs))
	for i, d := range docs {
		doc, err := jsonx.ParseDocument([]byte(d))
		if err != nil {
			t.Fatal(err)
		}
		if records[i], err = Serialize(doc, dict); err != nil {
			t.Fatal(err)
		}
	}
	data, err := EncodeSegment(records, dict)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	nid, _ := dict.IDOf("n", TypeInt)
	col, ok := s.Column(nid)
	if !ok {
		t.Fatal("no column for n")
	}
	if lo, hi, ok := col.IntRange(); !ok || lo != -3 || hi != 12 {
		t.Errorf("IntRange = %d..%d ok=%v, want -3..12", lo, hi, ok)
	}
	if _, _, ok := col.FloatRange(); ok {
		t.Error("FloatRange on int column must report !ok")
	}
	xid, _ := dict.IDOf("x", TypeFloat)
	xcol, ok := s.Column(xid)
	if !ok {
		t.Fatal("no column for x")
	}
	if lo, hi, ok := xcol.FloatRange(); !ok || lo != 1.5 || hi != 9.25 {
		t.Errorf("FloatRange = %g..%g ok=%v, want 1.5..9.25", lo, hi, ok)
	}
}

// TestSegmentEncodeErrors pins the encoder's rejection paths.
func TestSegmentEncodeErrors(t *testing.T) {
	dict := NewDictionary()
	if _, err := EncodeSegment(nil, dict); err == nil {
		t.Error("empty segment must be rejected")
	}
	if _, err := EncodeSegment([][]byte{{1, 2}}, dict); err == nil {
		t.Error("garbage record must be rejected")
	}
	// A record whose attribute is missing from the dictionary.
	other := NewDictionary()
	doc, err := jsonx.ParseDocument([]byte(`{"k":"v"}`))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Serialize(doc, other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeSegment([][]byte{rec}, dict); err == nil {
		t.Error("unknown attribute must be rejected")
	}
}

// probeSegment exercises every segment read path; like probeAll, the only
// requirement on arbitrary bytes is no panic.
func probeSegment(data []byte, dict *Dictionary) {
	s, err := ParseSegment(data)
	if err != nil {
		return
	}
	n := s.NumRecords()
	for i := -1; i <= n; i++ {
		_ = s.RecordNull(i)
		_, _ = s.RecordBytes(i)
	}
	_ = s.AttrIDs()
	for ci := 0; ci < s.NumAttrs(); ci++ {
		col := s.ColumnAt(ci)
		if got, ok := s.Column(col.ID()); !ok || got != col {
			panic("segment column lookup disagrees with ColumnAt")
		}
		_ = col.NumPresent()
		for i := -1; i <= n; i++ {
			_ = col.Present(i)
		}
		_, _, _ = col.IntRange()
		_, _, _ = col.FloatRange()
		_ = col.Ints(func(int, int64) {})
		_ = col.Floats(func(int, float64) {})
		_ = col.Bools(func(int, bool) {})
		_ = col.Strings(func(_ int, b []byte) { _ = len(b) })
		_ = col.Raws(func(_ int, b []byte) {
			_, _ = DecodeRaw(b, TypeObject, dict)
			_, _ = DecodeRaw(b, TypeArray, dict)
		})
	}
}

// TestCorruptSegmentsNeverPanic hand-crafts the corruption classes the
// segment parser validates: truncations, corrupt presence bitmaps, count
// and length mismatches, bad footers.
func TestCorruptSegmentsNeverPanic(t *testing.T) {
	_, data, dict := buildTestSegment(t)

	t.Run("truncations", func(t *testing.T) {
		for n := 0; n <= len(data); n++ {
			probeSegment(data[:n], dict)
		}
	})

	t.Run("every-u32-poisoned", func(t *testing.T) {
		// Overwrite each aligned u32 with extreme values; parse must
		// reject or survive, never panic. Covers footer offsets, counts,
		// ends arrays, and presence bitmap words.
		for off := 0; off+u32 <= len(data); off += u32 {
			for _, v := range []uint32{0, 1, ^uint32(0), uint32(len(data)), uint32(len(data) - 1)} {
				bad := append([]byte(nil), data...)
				binary.LittleEndian.PutUint32(bad[off:], v)
				probeSegment(bad, dict)
			}
		}
	})

	t.Run("bit-flips", func(t *testing.T) {
		for off := 0; off < len(data); off++ {
			bad := append([]byte(nil), data...)
			bad[off] ^= 0xff
			probeSegment(bad, dict)
		}
	})

	t.Run("footer-count-mismatch", func(t *testing.T) {
		// Inflate each column's footer count: popcount check must reject.
		footerOff := int(binary.LittleEndian.Uint32(data[len(data)-u32:]))
		f := data[footerOff:]
		ncols := int(binary.LittleEndian.Uint32(f[u32:]))
		for ci := 0; ci < ncols; ci++ {
			bad := append([]byte(nil), data...)
			cntOff := footerOff + 5*u32 + ci*segColDirBytes + 4*u32
			cnt := binary.LittleEndian.Uint32(bad[cntOff:])
			binary.LittleEndian.PutUint32(bad[cntOff:], cnt+1)
			if _, err := ParseSegment(bad); err == nil {
				t.Errorf("column %d: inflated count must be rejected", ci)
			}
			probeSegment(bad, dict)
		}
	})

	t.Run("presence-on-null-record", func(t *testing.T) {
		// Set a presence bit on the NULL record (the last one): the
		// parser must reject presence ∩ null.
		s, err := ParseSegment(data)
		if err != nil {
			t.Fatal(err)
		}
		nullRow := s.NumRecords() - 1
		if !s.RecordNull(nullRow) {
			t.Fatal("fixture's last record should be NULL")
		}
		footerOff := int(binary.LittleEndian.Uint32(data[len(data)-u32:]))
		colOff := int(binary.LittleEndian.Uint32(data[footerOff+5*u32+2*u32:]))
		bad := append([]byte(nil), data...)
		word := binary.LittleEndian.Uint64(bad[colOff+(nullRow/64)*8:])
		word |= 1 << uint(nullRow%64)
		binary.LittleEndian.PutUint64(bad[colOff+(nullRow/64)*8:], word)
		if _, err := ParseSegment(bad); err == nil {
			t.Error("presence bit on NULL record must be rejected")
		}
		probeSegment(bad, dict)
	})
}

// TestSegmentFloatRangeNaN: NaN values poison the footer range (a NaN
// min/max would make skip decisions wrong).
func TestSegmentFloatRangeNaN(t *testing.T) {
	dict := NewDictionary()
	doc := jsonx.NewDoc()
	doc.Set("x", jsonx.FloatValue(math.NaN()))
	rec, err := Serialize(doc, dict)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSegment([][]byte{rec}, dict)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := dict.IDOf("x", TypeFloat)
	col, ok := s.Column(id)
	if !ok {
		t.Fatal("no column for x")
	}
	if _, _, ok := col.FloatRange(); ok {
		t.Error("NaN-containing column must not report a range")
	}
}
