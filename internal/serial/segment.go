package serial

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"github.com/sinewdata/sinew/internal/jsonx"
)

// This file implements the column-striped segment format: an immutable
// encoding of a group of records (one frozen heap page) that stripes every
// attribute into a per-attribute value vector. A scan that extracts k keys
// from a segment touches k vectors instead of parsing every record header
// row-at-a-time — the format-level ceiling ROADMAP item 2 names.
//
// Layout (all integers little-endian):
//
//	[magic "SSEG"][version u32]
//	[record-null bitmap]                  bit set = record is NULL
//	[raw vector: ends u32*n | bytes]      original record bytes, verbatim
//	[column sections ...]                 per attribute, located via footer
//	[footer]                              directory: IDs, encodings, ranges
//	[footerOff u32]                       trailing pointer to the footer
//
// Each column section is [presence bitmap | payload]; the payload holds
// only the values of records whose presence bit is set, densely packed:
// int/float 8 bytes each, bool 1 byte, string/raw length-prefixed via a
// cumulative-ends array. The footer carries the page-summary metadata of
// PR 3 — the attribute-ID set and per-column min/max — so planners can
// skip segments without touching the vectors.
//
// The raw vector keeps the exact input bytes of every record, so freezing
// is lossless: un-freezing a segment back to heap rows is a byte-identical
// reconstruction, and extraction paths that need full-record descent
// (dotted paths through nested objects, extract_any probes) still work.

// SegEncoding tags how one attribute's value vector is encoded.
type SegEncoding uint8

// Segment column encodings. String/int/float/bool attributes get typed
// vectors; object and array attributes fall back to raw value bytes
// (decoded on demand with the dictionary, exactly like the row format).
const (
	SegString SegEncoding = iota
	SegInt
	SegFloat
	SegBool
	SegRaw
)

// String names the encoding (diagnostics and lint corpus).
func (e SegEncoding) String() string {
	switch e {
	case SegString:
		return "string"
	case SegInt:
		return "int"
	case SegFloat:
		return "float"
	case SegBool:
		return "bool"
	case SegRaw:
		return "raw"
	default:
		return fmt.Sprintf("SegEncoding(%d)", uint8(e))
	}
}

const (
	segMagic   = uint32('S') | uint32('S')<<8 | uint32('E')<<16 | uint32('G')<<24
	segVersion = 1
	// segColDirBytes is the footer directory entry size: id, enc, off,
	// len, count, flags (u32 each) plus min and max (u64 each).
	segColDirBytes = 6*u32 + 16

	segFlagHasRange = 1
)

// encodingOf maps an attribute type to its vector encoding.
func encodingOf(t AttrType) SegEncoding {
	switch t {
	case TypeString:
		return SegString
	case TypeInt:
		return SegInt
	case TypeFloat:
		return SegFloat
	case TypeBool:
		return SegBool
	case TypeObject, TypeArray:
		return SegRaw
	default:
		return SegRaw
	}
}

type segColBuilder struct {
	id    uint32
	enc   SegEncoding
	words []uint64
	count int
	fixed []byte   // int/float/bool payload
	ends  []uint32 // string/raw cumulative ends
	varb  []byte   // string/raw bytes

	rangeOK  bool
	rangeBad bool // NaN poisons float ranges
	minBits  uint64
	maxBits  uint64
}

func (cb *segColBuilder) noteInt(v int64) {
	if !cb.rangeOK {
		cb.rangeOK = true
		cb.minBits, cb.maxBits = uint64(v), uint64(v)
		return
	}
	if v < int64(cb.minBits) {
		cb.minBits = uint64(v)
	}
	if v > int64(cb.maxBits) {
		cb.maxBits = uint64(v)
	}
}

func (cb *segColBuilder) noteFloat(v float64) {
	if math.IsNaN(v) {
		cb.rangeBad = true
		return
	}
	if !cb.rangeOK {
		cb.rangeOK = true
		cb.minBits, cb.maxBits = math.Float64bits(v), math.Float64bits(v)
		return
	}
	if v < math.Float64frombits(cb.minBits) {
		cb.minBits = math.Float64bits(v)
	}
	if v > math.Float64frombits(cb.maxBits) {
		cb.maxBits = math.Float64bits(v)
	}
}

// EncodeSegment stripes a group of serialized records into a segment. A
// nil entry is a NULL record (absent row cell). Every non-nil entry must
// be a well-formed record whose attributes resolve in dict; any parse or
// dictionary failure aborts the encode — the caller keeps the rows as-is.
func EncodeSegment(records [][]byte, dict Dict) ([]byte, error) {
	n := len(records)
	if n == 0 {
		return nil, fmt.Errorf("serial: cannot encode empty segment")
	}
	nwords := (n + 63) / 64
	nulls := make([]uint64, nwords)
	rawEnds := make([]uint32, n)
	rawLen := 0
	byID := make(map[uint32]*segColBuilder)

	for i, rec := range records {
		if rec == nil {
			nulls[i/64] |= 1 << uint(i%64)
			rawEnds[i] = uint32(rawLen)
			continue
		}
		rawLen += len(rec)
		rawEnds[i] = uint32(rawLen)
		h, err := parseHeader(rec)
		if err != nil {
			return nil, fmt.Errorf("serial: segment record %d: %w", i, err)
		}
		for a := 0; a < h.n; a++ {
			id := h.aid(a)
			attr, ok := dict.Lookup(id)
			if !ok {
				return nil, fmt.Errorf("serial: segment record %d: attribute %d not in dictionary", i, id)
			}
			vb, err := h.valueBytes(a)
			if err != nil {
				return nil, fmt.Errorf("serial: segment record %d: %w", i, err)
			}
			cb := byID[id]
			if cb == nil {
				cb = &segColBuilder{id: id, enc: encodingOf(attr.Type), words: make([]uint64, nwords)}
				byID[id] = cb
			}
			if cb.words[i/64]&(1<<uint(i%64)) != 0 {
				return nil, fmt.Errorf("serial: segment record %d: duplicate attribute %d", i, id)
			}
			cb.words[i/64] |= 1 << uint(i%64)
			cb.count++
			switch cb.enc {
			case SegInt:
				if len(vb) != 8 {
					return nil, fmt.Errorf("serial: segment record %d attr %d: bad int length %d", i, id, len(vb))
				}
				cb.fixed = append(cb.fixed, vb...)
				cb.noteInt(int64(binary.LittleEndian.Uint64(vb)))
			case SegFloat:
				if len(vb) != 8 {
					return nil, fmt.Errorf("serial: segment record %d attr %d: bad float length %d", i, id, len(vb))
				}
				cb.fixed = append(cb.fixed, vb...)
				cb.noteFloat(math.Float64frombits(binary.LittleEndian.Uint64(vb)))
			case SegBool:
				if len(vb) != 1 {
					return nil, fmt.Errorf("serial: segment record %d attr %d: bad bool length %d", i, id, len(vb))
				}
				if vb[0] != 0 {
					cb.fixed = append(cb.fixed, 1)
				} else {
					cb.fixed = append(cb.fixed, 0)
				}
			case SegString, SegRaw:
				cb.varb = append(cb.varb, vb...)
				cb.ends = append(cb.ends, uint32(len(cb.varb)))
			default:
				return nil, fmt.Errorf("serial: segment attr %d: unknown encoding %d", id, cb.enc)
			}
		}
	}

	ids := make([]uint32, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })

	// Assemble: header, record-null bitmap, raw vector, column sections,
	// footer, trailing footer offset.
	out := make([]byte, 0, 2*u32+nwords*8+n*u32+rawLen)
	out = binary.LittleEndian.AppendUint32(out, segMagic)
	out = binary.LittleEndian.AppendUint32(out, segVersion)

	nullOff := len(out)
	for _, w := range nulls {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	rawOff := len(out)
	for _, e := range rawEnds {
		out = binary.LittleEndian.AppendUint32(out, e)
	}
	out = appendRawRecords(out, records)
	rawSecLen := len(out) - rawOff

	type colLoc struct {
		off, length int
	}
	locs := make([]colLoc, len(ids))
	for ci, id := range ids {
		cb := byID[id]
		start := len(out)
		for _, w := range cb.words {
			out = binary.LittleEndian.AppendUint64(out, w)
		}
		switch cb.enc {
		case SegInt, SegFloat, SegBool:
			out = append(out, cb.fixed...)
		case SegString, SegRaw:
			for _, e := range cb.ends {
				out = binary.LittleEndian.AppendUint32(out, e)
			}
			out = append(out, cb.varb...)
		default:
			return nil, fmt.Errorf("serial: segment attr %d: unknown encoding %d", id, cb.enc)
		}
		locs[ci] = colLoc{off: start, length: len(out) - start}
	}

	footerOff := len(out)
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ids)))
	out = binary.LittleEndian.AppendUint32(out, uint32(nullOff))
	out = binary.LittleEndian.AppendUint32(out, uint32(rawOff))
	out = binary.LittleEndian.AppendUint32(out, uint32(rawSecLen))
	for ci, id := range ids {
		cb := byID[id]
		out = binary.LittleEndian.AppendUint32(out, id)
		out = binary.LittleEndian.AppendUint32(out, uint32(cb.enc))
		out = binary.LittleEndian.AppendUint32(out, uint32(locs[ci].off))
		out = binary.LittleEndian.AppendUint32(out, uint32(locs[ci].length))
		out = binary.LittleEndian.AppendUint32(out, uint32(cb.count))
		var flags uint32
		if cb.rangeOK && !cb.rangeBad {
			flags |= segFlagHasRange
		}
		out = binary.LittleEndian.AppendUint32(out, flags)
		out = binary.LittleEndian.AppendUint64(out, cb.minBits)
		out = binary.LittleEndian.AppendUint64(out, cb.maxBits)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(footerOff))
	return out, nil
}

func appendRawRecords(out []byte, records [][]byte) []byte {
	for _, rec := range records {
		out = append(out, rec...)
	}
	return out
}

// SegColumn is one parsed attribute vector of a segment.
type SegColumn struct {
	id    uint32
	enc   SegEncoding
	words []uint64 // presence bitmap; bit set = value present
	count int
	fixed []byte // int/float/bool payload (aliases segment bytes)
	ends  []byte // string/raw cumulative ends (aliases segment bytes)
	varb  []byte // string/raw bytes (aliases segment bytes)

	hasRange bool
	minBits  uint64
	maxBits  uint64
}

// ID returns the attribute ID of the column.
func (c *SegColumn) ID() uint32 { return c.id }

// Encoding returns the vector encoding of the column.
func (c *SegColumn) Encoding() SegEncoding { return c.enc }

// NumPresent returns how many records carry the attribute.
func (c *SegColumn) NumPresent() int { return c.count }

// Present reports whether record i carries the attribute.
func (c *SegColumn) Present(i int) bool {
	if i < 0 || i/64 >= len(c.words) {
		return false
	}
	return c.words[i/64]&(1<<uint(i%64)) != 0
}

// IntRange returns the footer min/max for an int column.
func (c *SegColumn) IntRange() (lo, hi int64, ok bool) {
	if !c.hasRange || c.enc != SegInt {
		return 0, 0, false
	}
	return int64(c.minBits), int64(c.maxBits), true
}

// FloatRange returns the footer min/max for a float column.
func (c *SegColumn) FloatRange() (lo, hi float64, ok bool) {
	if !c.hasRange || c.enc != SegFloat {
		return 0, 0, false
	}
	return math.Float64frombits(c.minBits), math.Float64frombits(c.maxBits), true
}

// forEach walks the presence bitmap; fn receives (row, k) where k is the
// dense payload index of the row's value.
func (c *SegColumn) forEach(fn func(row, k int)) {
	k := 0
	for wi, w := range c.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64+b, k)
			k++
			w &^= 1 << uint(b)
		}
	}
}

// Ints streams the values of an int column as (row, value) pairs.
func (c *SegColumn) Ints(fn func(row int, v int64)) error {
	if c.enc != SegInt {
		return fmt.Errorf("serial: segment attr %d is %s, not int", c.id, c.enc)
	}
	c.forEach(func(row, k int) {
		fn(row, int64(binary.LittleEndian.Uint64(c.fixed[k*8:])))
	})
	return nil
}

// Floats streams the values of a float column as (row, value) pairs.
func (c *SegColumn) Floats(fn func(row int, v float64)) error {
	if c.enc != SegFloat {
		return fmt.Errorf("serial: segment attr %d is %s, not float", c.id, c.enc)
	}
	c.forEach(func(row, k int) {
		fn(row, math.Float64frombits(binary.LittleEndian.Uint64(c.fixed[k*8:])))
	})
	return nil
}

// Bools streams the values of a bool column as (row, value) pairs.
func (c *SegColumn) Bools(fn func(row int, v bool)) error {
	if c.enc != SegBool {
		return fmt.Errorf("serial: segment attr %d is %s, not bool", c.id, c.enc)
	}
	c.forEach(func(row, k int) {
		fn(row, c.fixed[k] != 0)
	})
	return nil
}

// Strings streams the values of a string column as (row, bytes) pairs.
// The bytes alias the segment buffer; callers must copy to retain.
func (c *SegColumn) Strings(fn func(row int, b []byte)) error {
	if c.enc != SegString {
		return fmt.Errorf("serial: segment attr %d is %s, not string", c.id, c.enc)
	}
	c.forEachVar(fn)
	return nil
}

// Raws streams the raw value bytes of an object/array column as (row,
// bytes) pairs; decode with DecodeRaw. The bytes alias the segment buffer.
func (c *SegColumn) Raws(fn func(row int, b []byte)) error {
	if c.enc != SegRaw {
		return fmt.Errorf("serial: segment attr %d is %s, not raw", c.id, c.enc)
	}
	c.forEachVar(fn)
	return nil
}

func (c *SegColumn) forEachVar(fn func(row int, b []byte)) {
	c.forEach(func(row, k int) {
		start := uint32(0)
		if k > 0 {
			start = binary.LittleEndian.Uint32(c.ends[(k-1)*u32:])
		}
		end := binary.LittleEndian.Uint32(c.ends[k*u32:])
		fn(row, c.varb[start:end])
	})
}

// Segment is a parsed column-striped segment. It aliases the encoded
// bytes; the buffer must not be mutated while the Segment is in use.
type Segment struct {
	n        int
	nulls    []uint64
	rawEnds  []byte // n*4 cumulative ends, aliases buffer
	rawBytes []byte
	cols     []SegColumn // ascending attribute ID
}

// ParseSegment validates and parses an encoded segment. Corrupt input —
// truncated footers, presence bitmaps whose popcount disagrees with the
// payload, attribute-ID/vector length mismatches — returns an error,
// never panics.
func ParseSegment(data []byte) (*Segment, error) {
	if len(data) < 3*u32 {
		return nil, fmt.Errorf("serial: segment too short (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data) != segMagic {
		return nil, fmt.Errorf("serial: bad segment magic")
	}
	if v := binary.LittleEndian.Uint32(data[u32:]); v != segVersion {
		return nil, fmt.Errorf("serial: unsupported segment version %d", v)
	}
	footerOff := int(binary.LittleEndian.Uint32(data[len(data)-u32:]))
	trailer := len(data) - u32
	if footerOff < 2*u32 || footerOff+5*u32 > trailer {
		return nil, fmt.Errorf("serial: segment footer offset %d out of range", footerOff)
	}
	f := data[footerOff:trailer]
	n := int(binary.LittleEndian.Uint32(f))
	ncols := int(binary.LittleEndian.Uint32(f[u32:]))
	nullOff := int(binary.LittleEndian.Uint32(f[2*u32:]))
	rawOff := int(binary.LittleEndian.Uint32(f[3*u32:]))
	rawSecLen := int(binary.LittleEndian.Uint32(f[4*u32:]))
	if n <= 0 {
		return nil, fmt.Errorf("serial: segment record count %d", n)
	}
	if ncols < 0 || len(f)-5*u32 != ncols*segColDirBytes {
		return nil, fmt.Errorf("serial: segment footer length %d does not fit %d columns", len(f), ncols)
	}

	nwords := (n + 63) / 64
	if nullOff < 2*u32 || nwords > (footerOff-nullOff)/8 {
		return nil, fmt.Errorf("serial: segment null bitmap out of range")
	}
	nulls := make([]uint64, nwords)
	for i := range nulls {
		nulls[i] = binary.LittleEndian.Uint64(data[nullOff+i*8:])
	}
	if err := checkTailBits(nulls, n); err != nil {
		return nil, err
	}

	if rawOff < 2*u32 || rawSecLen < n*u32 || rawOff+rawSecLen > footerOff {
		return nil, fmt.Errorf("serial: segment raw vector out of range")
	}
	s := &Segment{
		n:        n,
		nulls:    nulls,
		rawEnds:  data[rawOff : rawOff+n*u32],
		rawBytes: data[rawOff+n*u32 : rawOff+rawSecLen],
	}
	prev := uint32(0)
	for i := 0; i < n; i++ {
		e := binary.LittleEndian.Uint32(s.rawEnds[i*u32:])
		if e < prev || int(e) > len(s.rawBytes) {
			return nil, fmt.Errorf("serial: segment raw vector ends not monotonic at record %d", i)
		}
		if s.RecordNull(i) && e != prev {
			return nil, fmt.Errorf("serial: segment null record %d has raw bytes", i)
		}
		prev = e
	}
	if int(prev) != len(s.rawBytes) {
		return nil, fmt.Errorf("serial: segment raw vector length mismatch (%d of %d bytes)", prev, len(s.rawBytes))
	}

	s.cols = make([]SegColumn, 0, ncols)
	prevID := int64(-1)
	for ci := 0; ci < ncols; ci++ {
		d := f[5*u32+ci*segColDirBytes:]
		col := SegColumn{
			id:      binary.LittleEndian.Uint32(d),
			enc:     SegEncoding(binary.LittleEndian.Uint32(d[u32:])),
			count:   int(binary.LittleEndian.Uint32(d[4*u32:])),
			minBits: binary.LittleEndian.Uint64(d[6*u32:]),
			maxBits: binary.LittleEndian.Uint64(d[6*u32+8:]),
		}
		col.hasRange = binary.LittleEndian.Uint32(d[5*u32:])&segFlagHasRange != 0
		off := int(binary.LittleEndian.Uint32(d[2*u32:]))
		length := int(binary.LittleEndian.Uint32(d[3*u32:]))
		if int64(col.id) <= prevID {
			return nil, fmt.Errorf("serial: segment attribute IDs not ascending at %d", col.id)
		}
		prevID = int64(col.id)
		if off < 2*u32 || length < nwords*8 || off+length > footerOff {
			return nil, fmt.Errorf("serial: segment attr %d section out of range", col.id)
		}
		sec := data[off : off+length]
		col.words = make([]uint64, nwords)
		pop := 0
		for i := range col.words {
			col.words[i] = binary.LittleEndian.Uint64(sec[i*8:])
			pop += bits.OnesCount64(col.words[i])
			if col.words[i]&nulls[i] != 0 {
				return nil, fmt.Errorf("serial: segment attr %d present on a null record", col.id)
			}
		}
		if pop != col.count {
			return nil, fmt.Errorf("serial: segment attr %d presence bitmap has %d bits, footer says %d", col.id, pop, col.count)
		}
		if err := checkTailBits(col.words, n); err != nil {
			return nil, err
		}
		if col.count > n {
			return nil, fmt.Errorf("serial: segment attr %d count %d exceeds %d records", col.id, col.count, n)
		}
		payload := sec[nwords*8:]
		switch col.enc {
		case SegInt, SegFloat:
			if len(payload) != col.count*8 {
				return nil, fmt.Errorf("serial: segment attr %d payload %d bytes for %d values", col.id, len(payload), col.count)
			}
			col.fixed = payload
		case SegBool:
			if len(payload) != col.count {
				return nil, fmt.Errorf("serial: segment attr %d payload %d bytes for %d bools", col.id, len(payload), col.count)
			}
			col.fixed = payload
		case SegString, SegRaw:
			if len(payload) < col.count*u32 {
				return nil, fmt.Errorf("serial: segment attr %d truncated ends array", col.id)
			}
			col.ends = payload[:col.count*u32]
			col.varb = payload[col.count*u32:]
			prevEnd := uint32(0)
			for k := 0; k < col.count; k++ {
				e := binary.LittleEndian.Uint32(col.ends[k*u32:])
				if e < prevEnd || int(e) > len(col.varb) {
					return nil, fmt.Errorf("serial: segment attr %d ends not monotonic at value %d", col.id, k)
				}
				prevEnd = e
			}
			if col.count > 0 && int(prevEnd) != len(col.varb) {
				return nil, fmt.Errorf("serial: segment attr %d value bytes length mismatch", col.id)
			}
		default:
			return nil, fmt.Errorf("serial: segment attr %d unknown encoding %d", col.id, uint8(col.enc))
		}
		// Zone-map sanity: the range flag is only meaningful on numeric
		// vectors with at least one value, and min must not exceed max. Page
		// skipping trusts these extrema to prove rows absent, so a corrupt
		// footer here would silently drop rows instead of erroring later.
		if col.hasRange {
			if col.count == 0 {
				return nil, fmt.Errorf("serial: segment attr %d has a value range but no values", col.id)
			}
			switch col.enc {
			case SegInt:
				if int64(col.minBits) > int64(col.maxBits) {
					return nil, fmt.Errorf("serial: segment attr %d int range min exceeds max", col.id)
				}
			case SegFloat:
				lo, hi := math.Float64frombits(col.minBits), math.Float64frombits(col.maxBits)
				if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
					return nil, fmt.Errorf("serial: segment attr %d float range invalid", col.id)
				}
			default:
				return nil, fmt.Errorf("serial: segment attr %d range flag on %s encoding", col.id, col.enc)
			}
		}
		s.cols = append(s.cols, col)
	}
	return s, nil
}

// checkTailBits rejects bitmap bits at positions >= n (a corrupt bitmap
// could otherwise address rows past the segment).
func checkTailBits(words []uint64, n int) error {
	if rem := n % 64; rem != 0 {
		if words[len(words)-1]&^(1<<uint(rem)-1) != 0 {
			return fmt.Errorf("serial: segment bitmap has bits past record %d", n)
		}
	}
	return nil
}

// NumRecords returns the number of records in the segment.
func (s *Segment) NumRecords() int { return s.n }

// RecordNull reports whether record i is NULL.
func (s *Segment) RecordNull(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.nulls[i/64]&(1<<uint(i%64)) != 0
}

// RecordBytes returns the original serialized bytes of record i; ok=false
// for NULL records. The bytes alias the segment buffer.
func (s *Segment) RecordBytes(i int) ([]byte, bool) {
	if i < 0 || i >= s.n || s.RecordNull(i) {
		return nil, false
	}
	start := uint32(0)
	if i > 0 {
		start = binary.LittleEndian.Uint32(s.rawEnds[(i-1)*u32:])
	}
	end := binary.LittleEndian.Uint32(s.rawEnds[i*u32:])
	return s.rawBytes[start:end], true
}

// AttrIDs returns the attribute IDs present anywhere in the segment,
// ascending — the footer's page-summary attribute set.
func (s *Segment) AttrIDs() []uint32 {
	out := make([]uint32, len(s.cols))
	for i := range s.cols {
		out[i] = s.cols[i].id
	}
	return out
}

// NumAttrs returns the number of striped attribute vectors.
func (s *Segment) NumAttrs() int { return len(s.cols) }

// Column returns the vector of attribute id; ok=false when no record in
// the segment carries it.
func (s *Segment) Column(id uint32) (*SegColumn, bool) {
	lo, hi := 0, len(s.cols)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case s.cols[mid].id < id:
			lo = mid + 1
		case s.cols[mid].id > id:
			hi = mid
		default:
			return &s.cols[mid], true
		}
	}
	return nil, false
}

// ColumnAt returns the i-th vector in attribute-ID order.
func (s *Segment) ColumnAt(i int) *SegColumn { return &s.cols[i] }

// DecodeRaw decodes one raw-encoded value (object or array) with its
// attribute type, mirroring the row format's decodeValue.
func DecodeRaw(b []byte, t AttrType, dict Dict) (jsonx.Value, error) {
	return decodeValue(b, t, dict)
}
