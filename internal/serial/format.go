package serial

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/sinewdata/sinew/internal/jsonx"
)

// Record layout (all integers little-endian uint32, Figure 5):
//
//	[n][aid_0 .. aid_{n-1}][off_0 .. off_{n-1}][bodyLen][body]
//
// aids are sorted ascending; off_i is the byte offset of attribute i's
// value within the body; a value's length is off_{i+1}-off_i (or
// bodyLen-off_i for the last). Values are binary: bool 1 byte, int/float 8
// bytes, strings raw UTF-8, nested objects a nested record, arrays a
// count-prefixed sequence of tagged elements.

const u32 = 4

// Serialize encodes a document. Top-level keys become attributes; nested
// objects are serialized recursively as sub-records under their parent key
// (their dotted sub-attributes are cataloged by the loader, not stored
// separately). Null-valued keys are omitted: absence is NULL.
func Serialize(doc *jsonx.Doc, dict Dict) ([]byte, error) {
	type entry struct {
		id  uint32
		val jsonx.Value
	}
	entries := make([]entry, 0, doc.Len())
	for _, m := range doc.Members() {
		at, ok := AttrTypeOf(m.Val)
		if !ok {
			continue // JSON null: absent
		}
		entries = append(entries, entry{id: dict.IDFor(m.Key, at), val: m.Val})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })

	// Body first, recording offsets.
	var body []byte
	offsets := make([]uint32, len(entries))
	for i, e := range entries {
		offsets[i] = uint32(len(body))
		var err error
		body, err = appendValue(body, e.val, dict)
		if err != nil {
			return nil, err
		}
	}

	out := make([]byte, 0, u32*(2+2*len(entries))+len(body))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(entries)))
	for _, e := range entries {
		out = binary.LittleEndian.AppendUint32(out, e.id)
	}
	for _, off := range offsets {
		out = binary.LittleEndian.AppendUint32(out, off)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = append(out, body...)
	return out, nil
}

// appendValue encodes one value into the body.
func appendValue(body []byte, v jsonx.Value, dict Dict) ([]byte, error) {
	switch v.Kind {
	case jsonx.Bool:
		if v.B {
			return append(body, 1), nil
		}
		return append(body, 0), nil
	case jsonx.Int:
		return binary.LittleEndian.AppendUint64(body, uint64(v.I)), nil
	case jsonx.Float:
		return binary.LittleEndian.AppendUint64(body, math.Float64bits(v.F)), nil
	case jsonx.String:
		return append(body, v.S...), nil
	case jsonx.Object:
		sub, err := Serialize(v.Obj, dict)
		if err != nil {
			return nil, err
		}
		return append(body, sub...), nil
	case jsonx.Array:
		body = binary.LittleEndian.AppendUint32(body, uint32(len(v.A)))
		for _, e := range v.A {
			at, ok := AttrTypeOf(e)
			if !ok {
				// Array-nested null keeps its position with a sentinel tag.
				body = append(body, 0xff)
				body = binary.LittleEndian.AppendUint32(body, 0)
				continue
			}
			elem, err := appendValue(nil, e, dict)
			if err != nil {
				return nil, err
			}
			body = append(body, byte(at))
			body = binary.LittleEndian.AppendUint32(body, uint32(len(elem)))
			body = append(body, elem...)
		}
		return body, nil
	default:
		return nil, fmt.Errorf("serial: cannot serialize %v value", v.Kind)
	}
}

// header gives parsed access to a record's structure without copying.
type header struct {
	n       int
	aids    []byte // n*4 bytes
	offs    []byte // n*4 bytes
	body    []byte
	bodyLen uint32
}

func parseHeader(data []byte) (header, error) {
	if len(data) < u32 {
		return header{}, fmt.Errorf("serial: record too short (%d bytes)", len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	need := u32 * (2 + 2*n)
	if len(data) < need {
		return header{}, fmt.Errorf("serial: truncated header (n=%d, %d bytes)", n, len(data))
	}
	h := header{
		n:    n,
		aids: data[u32 : u32+u32*n],
		offs: data[u32+u32*n : u32+2*u32*n],
	}
	h.bodyLen = binary.LittleEndian.Uint32(data[u32+2*u32*n:])
	bodyStart := need
	if len(data) < bodyStart+int(h.bodyLen) {
		return header{}, fmt.Errorf("serial: truncated body (want %d bytes)", h.bodyLen)
	}
	h.body = data[bodyStart : bodyStart+int(h.bodyLen)]
	return h, nil
}

func (h header) aid(i int) uint32 {
	return binary.LittleEndian.Uint32(h.aids[i*u32:])
}

func (h header) off(i int) uint32 {
	return binary.LittleEndian.Uint32(h.offs[i*u32:])
}

// valueBytes returns the body slice of attribute index i. Offsets come
// from the (untrusted) record bytes, so they are validated here: corrupt
// or unsorted offsets surface as errors, never slice panics.
func (h header) valueBytes(i int) ([]byte, error) {
	start := h.off(i)
	end := h.bodyLen
	if i+1 < h.n {
		end = h.off(i + 1)
	}
	if start > end || end > h.bodyLen {
		return nil, fmt.Errorf("serial: corrupt value offsets (attr %d: %d..%d of body %d)", i, start, end, h.bodyLen)
	}
	return h.body[start:end], nil
}

// find binary-searches the sorted attribute ID list.
func (h header) find(id uint32) (int, bool) {
	lo, hi := 0, h.n
	for lo < hi {
		mid := (lo + hi) / 2
		v := h.aid(mid)
		switch {
		case v < id:
			lo = mid + 1
		case v > id:
			hi = mid
		default:
			return mid, true
		}
	}
	return 0, false
}

// Has reports whether the record contains attribute id — the cheap
// existence check (the paper notes existence checks are much cheaper than
// extraction).
func Has(data []byte, id uint32) (bool, error) {
	h, err := parseHeader(data)
	if err != nil {
		return false, err
	}
	_, ok := h.find(id)
	return ok, nil
}

// ExtractByID returns the value of attribute id; ok=false when absent.
func ExtractByID(data []byte, id uint32, dict Dict) (jsonx.Value, bool, error) {
	h, err := parseHeader(data)
	if err != nil {
		return jsonx.Value{}, false, err
	}
	i, ok := h.find(id)
	if !ok {
		return jsonx.Value{}, false, nil
	}
	attr, ok := dict.Lookup(id)
	if !ok {
		return jsonx.Value{}, false, fmt.Errorf("serial: attribute %d not in dictionary", id)
	}
	vb, err := h.valueBytes(i)
	if err != nil {
		return jsonx.Value{}, false, err
	}
	v, err := decodeValue(vb, attr.Type, dict)
	if err != nil {
		return jsonx.Value{}, false, err
	}
	return v, true, nil
}

// ExtractByIDLinear is ExtractByID with a linear header scan instead of
// binary search — the ablation baseline isolating the sorted-ID design of
// §4.1 (kept out of production paths).
func ExtractByIDLinear(data []byte, id uint32, dict Dict) (jsonx.Value, bool, error) {
	h, err := parseHeader(data)
	if err != nil {
		return jsonx.Value{}, false, err
	}
	for i := 0; i < h.n; i++ {
		if h.aid(i) != id {
			continue
		}
		attr, ok := dict.Lookup(id)
		if !ok {
			return jsonx.Value{}, false, fmt.Errorf("serial: attribute %d not in dictionary", id)
		}
		vb, err := h.valueBytes(i)
		if err != nil {
			return jsonx.Value{}, false, err
		}
		v, err := decodeValue(vb, attr.Type, dict)
		if err != nil {
			return jsonx.Value{}, false, err
		}
		return v, true, nil
	}
	return jsonx.Value{}, false, nil
}

// ExtractPath resolves a possibly dot-delimited key path of a given type:
// it first tries the literal key, then descends through nested object
// attributes ("user.id" → object "user", then "id" inside it). ok=false
// when the path or type does not match — never an error for a absent or
// differently-typed key (§3.2.2's graceful multi-type handling).
func ExtractPath(data []byte, path string, want AttrType, dict Dict) (jsonx.Value, bool, error) {
	h, err := parseHeader(data)
	if err != nil {
		return jsonx.Value{}, false, err
	}
	return extractPathParsed(h, path, want, dict)
}

// extractPathParsed is ExtractPath over an already-parsed header, so
// callers resolving several paths against one record (batch extraction)
// pay the header parse once.
func extractPathParsed(h header, path string, want AttrType, dict Dict) (jsonx.Value, bool, error) {
	if id, ok := dict.IDOf(path, want); ok {
		if i, found := h.find(id); found {
			attr, ok := dict.Lookup(id)
			if !ok {
				return jsonx.Value{}, false, fmt.Errorf("serial: attribute %d not in dictionary", id)
			}
			vb, err := h.valueBytes(i)
			if err != nil {
				return jsonx.Value{}, false, err
			}
			v, err := decodeValue(vb, attr.Type, dict)
			if err != nil {
				return jsonx.Value{}, false, err
			}
			return v, true, nil
		}
	}
	// Descend through nested objects (and, for numeric tail segments,
	// array positions — §4.2 positional addressing) at each dot boundary.
	for i := 0; i < len(path); i++ {
		if path[i] != '.' {
			continue
		}
		head, rest := path[:i], path[i+1:]
		if oid, ok := dict.IDOf(head, TypeObject); ok {
			if idx, found := h.find(oid); found {
				vb, err := h.valueBytes(idx)
				if err != nil {
					return jsonx.Value{}, false, err
				}
				if v, found, err := ExtractPath(vb, rest, want, dict); err != nil || found {
					return v, found, err
				}
			}
		}
		if aid, ok := dict.IDOf(head, TypeArray); ok {
			if idx, found := h.find(aid); found {
				vb, err := h.valueBytes(idx)
				if err != nil {
					return jsonx.Value{}, false, err
				}
				arr, err := decodeValue(vb, TypeArray, dict)
				if err != nil {
					return jsonx.Value{}, false, err
				}
				if v, ok := jsonx.ValuePathGet(arr, rest); ok {
					if at, typed := AttrTypeOf(v); typed && at == want {
						return v, true, nil
					}
				}
			}
		}
	}
	return jsonx.Value{}, false, nil
}

// Record is a serialized value with its header parsed once up front. The
// batch execution path parses each reservoir value into a Record per
// batch, then resolves every extraction call site against it — instead of
// re-parsing the header in every extract_key_<type> expression node.
type Record struct {
	h header
}

// ParseRecord parses the record header of data. The Record aliases data;
// the caller must not mutate it while the Record is in use.
func ParseRecord(data []byte) (*Record, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	return &Record{h: h}, nil
}

// NumAttrs reports the number of attributes in the record.
func (r *Record) NumAttrs() int { return r.h.n }

// Has reports whether the record contains attribute id.
func (r *Record) Has(id uint32) bool {
	_, ok := r.h.find(id)
	return ok
}

// ExtractPath resolves a dotted key path of a given type against the
// pre-parsed record; same semantics as the package-level ExtractPath.
func (r *Record) ExtractPath(path string, want AttrType, dict Dict) (jsonx.Value, bool, error) {
	return extractPathParsed(r.h, path, want, dict)
}

// decodeValue decodes a body slice of a known attribute type.
func decodeValue(b []byte, t AttrType, dict Dict) (jsonx.Value, error) {
	switch t {
	case TypeBool:
		if len(b) != 1 {
			return jsonx.Value{}, fmt.Errorf("serial: bad bool length %d", len(b))
		}
		return jsonx.BoolValue(b[0] != 0), nil
	case TypeInt:
		if len(b) != 8 {
			return jsonx.Value{}, fmt.Errorf("serial: bad int length %d", len(b))
		}
		return jsonx.IntValue(int64(binary.LittleEndian.Uint64(b))), nil
	case TypeFloat:
		if len(b) != 8 {
			return jsonx.Value{}, fmt.Errorf("serial: bad float length %d", len(b))
		}
		return jsonx.FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case TypeString:
		return jsonx.StringValue(string(b)), nil
	case TypeObject:
		doc, err := Deserialize(b, dict)
		if err != nil {
			return jsonx.Value{}, err
		}
		return jsonx.ObjectValue(doc), nil
	case TypeArray:
		return decodeArray(b, dict)
	default:
		return jsonx.Value{}, fmt.Errorf("serial: unknown attribute type %d", t)
	}
}

func decodeArray(b []byte, dict Dict) (jsonx.Value, error) {
	if len(b) < u32 {
		return jsonx.Value{}, fmt.Errorf("serial: truncated array")
	}
	count := int(binary.LittleEndian.Uint32(b))
	b = b[u32:]
	// Each element needs a 1-byte tag plus a 4-byte length, so a count
	// larger than the remaining bytes allow is corruption — reject it
	// before the capacity hint turns into a giant allocation.
	if count > len(b)/(1+u32) {
		return jsonx.Value{}, fmt.Errorf("serial: corrupt array count %d (%d payload bytes)", count, len(b))
	}
	elems := make([]jsonx.Value, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < 1+u32 {
			return jsonx.Value{}, fmt.Errorf("serial: truncated array element %d", i)
		}
		tag := b[0]
		n := int(binary.LittleEndian.Uint32(b[1:]))
		b = b[1+u32:]
		if len(b) < n {
			return jsonx.Value{}, fmt.Errorf("serial: truncated array element payload")
		}
		if tag == 0xff {
			elems = append(elems, jsonx.NullValue())
		} else {
			v, err := decodeValue(b[:n], AttrType(tag), dict)
			if err != nil {
				return jsonx.Value{}, err
			}
			elems = append(elems, v)
		}
		b = b[n:]
	}
	return jsonx.ArrayValue(elems...), nil
}

// Deserialize reconstructs the full document (attribute-ID order; original
// member order is not preserved, matching the paper's benchmark which only
// requires reassembling the logical content).
func Deserialize(data []byte, dict Dict) (*jsonx.Doc, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	doc := jsonx.NewDoc()
	for i := 0; i < h.n; i++ {
		attr, ok := dict.Lookup(h.aid(i))
		if !ok {
			return nil, fmt.Errorf("serial: attribute %d not in dictionary", h.aid(i))
		}
		vb, err := h.valueBytes(i)
		if err != nil {
			return nil, err
		}
		v, err := decodeValue(vb, attr.Type, dict)
		if err != nil {
			return nil, err
		}
		doc.Set(attr.Key, v)
	}
	return doc, nil
}

// AttrIDs lists the attribute IDs present in the record (catalog and
// materializer use it to avoid full decodes).
func AttrIDs(data []byte) ([]uint32, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, h.n)
	for i := range out {
		out[i] = h.aid(i)
	}
	return out, nil
}

// Remove returns a copy of the record without attribute id (the
// materializer moves a value out of the reservoir into a physical column).
// The second result reports whether the attribute was present.
func Remove(data []byte, id uint32) ([]byte, bool, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, false, err
	}
	idx, ok := h.find(id)
	if !ok {
		return data, false, nil
	}
	vb, err := h.valueBytes(idx)
	if err != nil {
		return nil, false, err
	}
	out := make([]byte, 0, len(data)-len(vb)-2*u32)
	out = binary.LittleEndian.AppendUint32(out, uint32(h.n-1))
	for i := 0; i < h.n; i++ {
		if i != idx {
			out = binary.LittleEndian.AppendUint32(out, h.aid(i))
		}
	}
	removedOff := h.off(idx)
	for i := 0; i < h.n; i++ {
		if i == idx {
			continue
		}
		off := h.off(i)
		if off > removedOff {
			off -= uint32(len(vb))
		}
		out = binary.LittleEndian.AppendUint32(out, off)
	}
	out = binary.LittleEndian.AppendUint32(out, h.bodyLen-uint32(len(vb)))
	out = append(out, h.body[:removedOff]...)
	out = append(out, h.body[removedOff+uint32(len(vb)):]...)
	return out, true, nil
}

// Insert returns a copy of the record with attribute id set to v (the
// materializer moves a value back into the reservoir on dematerialization).
// An existing value for id is replaced.
func Insert(data []byte, id uint32, v jsonx.Value, dict Dict) ([]byte, error) {
	doc, err := Deserialize(data, dict)
	if err != nil {
		return nil, err
	}
	attr, ok := dict.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("serial: attribute %d not in dictionary", id)
	}
	doc.Set(attr.Key, v)
	return Serialize(doc, dict)
}
