package serial

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"github.com/sinewdata/sinew/internal/jsonx"
)

// This file pins the corruption contract of the serialization layer: on
// arbitrary (truncated, bit-flipped, adversarial) input, parseHeader,
// ExtractByID, ExtractPath, Deserialize, and the fused MultiExtract kernel
// must return an error or not-found — never panic, never read out of
// bounds.

func corruptDict(t testing.TB) *Dictionary {
	t.Helper()
	return NewDictionary()
}

// buildTestRecord serializes a representative document covering every
// value type and returns its bytes with the dictionary used.
func buildTestRecord(t testing.TB) ([]byte, *Dictionary) {
	t.Helper()
	dict := corruptDict(t)
	doc, err := jsonx.ParseDocument([]byte(
		`{"s":"hello","i":42,"f":2.5,"b":true,"o":{"x":"y","n":7},"a":[1,"two",null,3.5]}`))
	if err != nil {
		t.Fatal(err)
	}
	data, err := Serialize(doc, dict)
	if err != nil {
		t.Fatal(err)
	}
	return data, dict
}

// probeAll runs every read-side entry point over the bytes; the only
// requirement is that none of them panics.
func probeAll(data []byte, dict *Dictionary) {
	_, _ = AttrIDs(data)
	for id := uint32(0); id < 12; id++ {
		_, _, _ = ExtractByID(data, id, dict)
		_, _, _ = ExtractByIDLinear(data, id, dict)
		_, _ = Has(data, id)
	}
	for _, path := range []string{"s", "i", "o.x", "o.n", "a", "missing"} {
		for _, at := range []AttrType{TypeString, TypeInt, TypeFloat, TypeBool, TypeObject, TypeArray} {
			_, _, _ = ExtractPath(data, path, at, dict)
		}
	}
	_, _ = Deserialize(data, dict)

	specs := []MultiSpec{
		{Path: "s", Want: TypeString},
		{Path: "i", Want: TypeInt},
		{Path: "o.x", Want: TypeString},
		{Path: "a", Want: TypeArray},
		{Path: "s", Any: true},
		{Path: "never.seen", Want: TypeInt},
	}
	pm := PrepareMulti(specs, dict)
	var rec Record
	if err := rec.Reset(data); err != nil {
		return // rejected at parse; nothing more to probe
	}
	out := make([]jsonx.Value, len(specs))
	found := make([]bool, len(specs))
	_ = rec.MultiExtract(pm, dict, out, found)
}

// TestCorruptRecordsNeverPanic hand-crafts the corruption classes named in
// the format's validation paths.
func TestCorruptRecordsNeverPanic(t *testing.T) {
	data, dict := buildTestRecord(t)

	t.Run("truncations", func(t *testing.T) {
		// Every prefix of a valid record, including the empty one.
		for n := 0; n <= len(data); n++ {
			probeAll(data[:n], dict)
		}
	})

	t.Run("huge-attr-count", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(bad[0:], ^uint32(0)) // n = 2^32-1
		if _, err := ParseRecord(bad); err == nil {
			t.Error("absurd attribute count must be rejected")
		}
		probeAll(bad, dict)
	})

	t.Run("out-of-range-offsets", func(t *testing.T) {
		h, err := parseHeader(data)
		if err != nil {
			t.Fatal(err)
		}
		// The offsets array starts after [n][aids]; poison each entry with
		// values past the body and with inverted (start > end) pairs.
		offBase := u32 + h.n*u32
		for i := 0; i < h.n; i++ {
			bad := append([]byte(nil), data...)
			binary.LittleEndian.PutUint32(bad[offBase+i*u32:], ^uint32(0))
			probeAll(bad, dict)
			bad2 := append([]byte(nil), data...)
			binary.LittleEndian.PutUint32(bad2[offBase+i*u32:], h.bodyLen+1)
			probeAll(bad2, dict)
		}
		// An offset past its successor must surface as an error, not a
		// negative-length slice.
		if h.n >= 2 {
			bad := append([]byte(nil), data...)
			binary.LittleEndian.PutUint32(bad[offBase:], h.off(1)+1)
			if _, ok, err := ExtractByID(bad, h.aid(0), dict); err == nil && ok {
				t.Error("inverted offsets must not decode to a value")
			}
			probeAll(bad, dict)
		}
	})

	t.Run("unsorted-attr-ids", func(t *testing.T) {
		h, err := parseHeader(data)
		if err != nil {
			t.Fatal(err)
		}
		if h.n < 2 {
			t.Skip("need two attributes")
		}
		// Swap the first two attribute IDs: binary search may miss keys
		// (acceptable) but nothing may panic, and the fused merge must not
		// spin or read out of bounds.
		bad := append([]byte(nil), data...)
		a0 := binary.LittleEndian.Uint32(bad[u32:])
		a1 := binary.LittleEndian.Uint32(bad[u32+u32:])
		binary.LittleEndian.PutUint32(bad[u32:], a1)
		binary.LittleEndian.PutUint32(bad[u32+u32:], a0)
		probeAll(bad, dict)
	})

	t.Run("nested-corruption", func(t *testing.T) {
		// Corrupt bytes inside the body so nested object/array decoding
		// sees garbage sub-records.
		for i := len(data) - 1; i >= len(data)-int(16) && i >= 0; i-- {
			bad := append([]byte(nil), data...)
			bad[i] ^= 0xff
			probeAll(bad, dict)
		}
	})
}

// segDirEntry locates the footer directory entry of attribute id within an
// encoded segment, returning its byte offset into seg.
func segDirEntry(t testing.TB, seg []byte, id uint32) int {
	t.Helper()
	footerOff := int(binary.LittleEndian.Uint32(seg[len(seg)-u32:]))
	f := seg[footerOff : len(seg)-u32]
	ncols := int(binary.LittleEndian.Uint32(f[u32:]))
	for ci := 0; ci < ncols; ci++ {
		off := footerOff + 5*u32 + ci*segColDirBytes
		if binary.LittleEndian.Uint32(seg[off:]) == id {
			return off
		}
	}
	t.Fatalf("attribute %d not in segment footer", id)
	return 0
}

// corruptZoneMutants poisons the zone-map metadata of a valid segment in
// every way the planner's page skipping would be unsound to trust:
// inverted extrema, NaN bounds, range flags on unordered encodings,
// presence-count overflow, and a truncated presence bitmap.
func corruptZoneMutants(t testing.TB, seg []byte, dict *Dictionary) map[string][]byte {
	t.Helper()
	clone := func() []byte { return append([]byte(nil), seg...) }
	m := make(map[string][]byte)

	idInt, ok := dict.IDOf("i", TypeInt)
	if !ok {
		t.Fatal("test segment lacks int attribute i")
	}
	di := segDirEntry(t, seg, idInt)
	negMax := int64(-1000)
	bad := clone()
	binary.LittleEndian.PutUint64(bad[di+6*u32:], 1000)             // min = 1000
	binary.LittleEndian.PutUint64(bad[di+6*u32+8:], uint64(negMax)) // max = -1000
	m["int-min-gt-max"] = bad

	idF, ok := dict.IDOf("f", TypeFloat)
	if !ok {
		t.Fatal("test segment lacks float attribute f")
	}
	df := segDirEntry(t, seg, idF)
	bad = clone()
	binary.LittleEndian.PutUint64(bad[df+6*u32:], math.Float64bits(2.0))
	binary.LittleEndian.PutUint64(bad[df+6*u32+8:], math.Float64bits(-2.0))
	m["float-min-gt-max"] = bad
	bad = clone()
	binary.LittleEndian.PutUint64(bad[df+6*u32:], math.Float64bits(math.NaN()))
	m["float-nan-min"] = bad

	idS, ok := dict.IDOf("s", TypeString)
	if !ok {
		t.Fatal("test segment lacks string attribute s")
	}
	ds := segDirEntry(t, seg, idS)
	bad = clone()
	flags := binary.LittleEndian.Uint32(bad[ds+5*u32:])
	binary.LittleEndian.PutUint32(bad[ds+5*u32:], flags|segFlagHasRange)
	m["range-flag-on-string"] = bad

	bad = clone()
	binary.LittleEndian.PutUint32(bad[di+4*u32:], ^uint32(0)>>1)
	m["present-count-overflow"] = bad

	bad = clone()
	binary.LittleEndian.PutUint32(bad[di+3*u32:], 0) // section length 0 < bitmap
	m["truncated-presence-bitmap"] = bad

	return m
}

// TestCorruptSegmentZoneMaps pins the zone-map corruption contract: every
// mutant must be rejected by ParseSegment (page skipping trusts the
// footer extrema, so accepting them would silently drop rows) and must
// not panic any read path.
func TestCorruptSegmentZoneMaps(t *testing.T) {
	_, seg, dict := buildTestSegment(t)
	if _, err := ParseSegment(seg); err != nil {
		t.Fatalf("pristine segment rejected: %v", err)
	}
	for name, bad := range corruptZoneMutants(t, seg, dict) {
		if _, err := ParseSegment(bad); err == nil {
			t.Errorf("%s: corrupt zone map accepted", name)
		}
		probeSegment(bad, dict)
	}
}

// TestMultiExtractMatchesExtractPath is the kernel's differential test:
// for every (path, type) combination over a mixed-shape corpus, the fused
// merge must agree with the one-key ExtractPath it replaces, and the Any
// probe must agree with the sinew_extract_any probe order.
func TestMultiExtractMatchesExtractPath(t *testing.T) {
	dict := corruptDict(t)
	docs := []string{
		`{"s":"hello","i":42,"f":2.5,"b":true,"o":{"x":"y","n":7},"a":[1,2]}`,
		`{"s":"other","extra":1}`,
		`{"i":-1,"o":{"x":"z"}}`,
		`{"multi":"text"}`,
		`{"multi":99}`,
		`{}`,
	}
	records := make([][]byte, len(docs))
	for i, d := range docs {
		doc, err := jsonx.ParseDocument([]byte(d))
		if err != nil {
			t.Fatal(err)
		}
		if records[i], err = Serialize(doc, dict); err != nil {
			t.Fatal(err)
		}
	}

	paths := []string{"s", "i", "f", "b", "o", "a", "o.x", "o.n", "multi", "extra", "nope", "o.nope"}
	typs := []AttrType{TypeString, TypeInt, TypeFloat, TypeBool, TypeObject, TypeArray}
	var specs []MultiSpec
	for _, p := range paths {
		for _, at := range typs {
			specs = append(specs, MultiSpec{Path: p, Want: at})
		}
		specs = append(specs, MultiSpec{Path: p, Any: true})
	}
	pm := PrepareMulti(specs, dict)
	out := make([]jsonx.Value, len(specs))
	found := make([]bool, len(specs))
	var rec Record

	anyOrder := []AttrType{TypeString, TypeInt, TypeFloat, TypeBool, TypeArray, TypeObject}
	for ri, data := range records {
		if err := rec.Reset(data); err != nil {
			t.Fatalf("record %d: %v", ri, err)
		}
		if err := rec.MultiExtract(pm, dict, out, found); err != nil {
			t.Fatalf("record %d: %v", ri, err)
		}
		for si, s := range specs {
			var wantV jsonx.Value
			var wantOK bool
			if s.Any {
				for _, at := range anyOrder {
					v, ok, err := ExtractPath(data, s.Path, at, dict)
					if err != nil {
						t.Fatal(err)
					}
					if ok {
						wantV, wantOK = v, true
						break
					}
				}
			} else {
				v, ok, err := ExtractPath(data, s.Path, s.Want, dict)
				if err != nil {
					t.Fatal(err)
				}
				wantV, wantOK = v, ok
			}
			if found[si] != wantOK {
				t.Errorf("record %d spec %+v: found=%v, ExtractPath ok=%v",
					ri, specLabel(s), found[si], wantOK)
				continue
			}
			if wantOK && out[si].String() != wantV.String() {
				t.Errorf("record %d spec %+v: fused %q vs single %q",
					ri, specLabel(s), out[si].String(), wantV.String())
			}
		}
	}
}

func specLabel(s MultiSpec) string {
	if s.Any {
		return fmt.Sprintf("{%s any}", s.Path)
	}
	return fmt.Sprintf("{%s %s}", s.Path, s.Want)
}

// FuzzRecordReaders drives every read-side entry point — parseHeader,
// ExtractByID, ExtractPath, Deserialize, MultiExtract, and the segment
// decoder — over fuzzer-chosen bytes. The property under test is purely
// "no panic": errors and not-found are both acceptable outcomes for
// garbage input.
func FuzzRecordReaders(f *testing.F) {
	data, dict := buildTestRecord(f)
	f.Add(data)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(data[:len(data)/2])
	// Seed an unsorted-IDs variant.
	bad := append([]byte(nil), data...)
	if len(bad) >= 3*u32 {
		a0 := binary.LittleEndian.Uint32(bad[u32:])
		a1 := binary.LittleEndian.Uint32(bad[2*u32:])
		binary.LittleEndian.PutUint32(bad[u32:], a1)
		binary.LittleEndian.PutUint32(bad[2*u32:], a0)
	}
	f.Add(bad)
	// Segment-format seeds: a valid segment plus the corruption classes
	// ParseSegment validates (truncated footer, poisoned offsets, corrupt
	// presence bitmaps).
	_, seg, _ := buildTestSegment(f)
	f.Add(seg)
	f.Add(seg[:len(seg)-u32]) // footer pointer gone
	f.Add(seg[:len(seg)/2])   // truncated mid-columns
	for _, off := range []int{2 * u32, 3 * u32, len(seg) - u32} {
		badSeg := append([]byte(nil), seg...)
		binary.LittleEndian.PutUint32(badSeg[off:], ^uint32(0))
		f.Add(badSeg)
	}
	// Adversarial zone maps: inverted/NaN extrema, misplaced range flags,
	// count overflow, truncated bitmaps.
	for _, badSeg := range corruptZoneMutants(f, seg, dict) {
		f.Add(badSeg)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		probeAll(b, dict)
		probeSegment(b, dict)
	})
}
