// Package serial implements Sinew's custom serialization format (§4.1 of
// the paper, Figure 5): a per-record header holding the attribute count, a
// sorted list of attribute IDs, and a parallel list of value offsets,
// followed by a binary body. The header separates structure from data so a
// single key is located with one binary search (O(log n)) instead of the
// sequential scan Avro/Protocol-Buffers-style formats require; IDs and
// offsets are stored contiguously for cache-friendly searches.
//
// Attribute IDs come from a dictionary (the global half of Sinew's catalog,
// Figure 4a): every distinct (key, type) pair — an attribute — maps to a
// compact integer ID, which doubles as dictionary compression of key names.
package serial

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/sinewdata/sinew/internal/jsonx"
)

// AttrType is the dynamic type half of an attribute. The same JSON key with
// values of two types yields two attributes (paper §3.2.2: extraction is
// type-selective).
type AttrType uint8

// Attribute types.
const (
	TypeString AttrType = iota
	TypeInt
	TypeFloat
	TypeBool
	TypeObject
	TypeArray
)

// String returns the catalog name of the type (matching Figure 4's
// key_type column).
func (t AttrType) String() string {
	switch t {
	case TypeString:
		return "text"
	case TypeInt:
		return "integer"
	case TypeFloat:
		return "real"
	case TypeBool:
		return "boolean"
	case TypeObject:
		return "document"
	case TypeArray:
		return "array"
	default:
		return fmt.Sprintf("AttrType(%d)", uint8(t))
	}
}

// AttrTypeOf maps a JSON value to its attribute type; ok is false for null
// (null-valued keys are simply absent from the serialized record).
func AttrTypeOf(v jsonx.Value) (AttrType, bool) {
	switch v.Kind {
	case jsonx.String:
		return TypeString, true
	case jsonx.Int:
		return TypeInt, true
	case jsonx.Float:
		return TypeFloat, true
	case jsonx.Bool:
		return TypeBool, true
	case jsonx.Object:
		return TypeObject, true
	case jsonx.Array:
		return TypeArray, true
	default:
		return 0, false
	}
}

// Attr is one dictionary entry.
type Attr struct {
	ID   uint32
	Key  string
	Type AttrType
}

// Dict resolves attributes to IDs and back. Implementations must be safe
// for concurrent use (the loader and extraction UDFs share it).
type Dict interface {
	// IDFor returns the attribute's ID, allocating a new one if the
	// attribute has never been seen (the invisible schema-evolution cost
	// of §3.2.1).
	IDFor(key string, typ AttrType) uint32
	// IDOf returns the ID without allocating; ok is false if absent.
	IDOf(key string, typ AttrType) (id uint32, ok bool)
	// Lookup resolves an ID.
	Lookup(id uint32) (Attr, bool)
	// All returns every attribute sorted by ID (Avro-style formats need
	// the full closed schema).
	All() []Attr
}

// Dictionary is the standard in-memory Dict.
type Dictionary struct {
	mu    sync.RWMutex
	byKey map[dictKey]uint32
	byID  []Attr // index == ID
	// snap is the latest byID slice header, republished under mu after
	// every append. Entries are immutable once written and IDs are
	// append-only, so a loaded snapshot is always a consistent prefix —
	// Lookup (the per-attribute hot path of record rendering and
	// extraction) reads it without touching the lock.
	snap atomic.Pointer[[]Attr]
}

type dictKey struct {
	key string
	typ AttrType
}

// NewDictionary returns an empty dictionary; IDs start at 0.
func NewDictionary() *Dictionary {
	return &Dictionary{byKey: make(map[dictKey]uint32)}
}

// IDFor implements Dict.
func (d *Dictionary) IDFor(key string, typ AttrType) uint32 {
	k := dictKey{key, typ}
	d.mu.RLock()
	id, ok := d.byKey[k]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byKey[k]; ok {
		return id
	}
	id = uint32(len(d.byID))
	d.byKey[k] = id
	d.byID = append(d.byID, Attr{ID: id, Key: key, Type: typ})
	s := d.byID
	d.snap.Store(&s)
	return id
}

// IDOf implements Dict.
func (d *Dictionary) IDOf(key string, typ AttrType) (uint32, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byKey[dictKey{key, typ}]
	return id, ok
}

// Lookup implements Dict.
func (d *Dictionary) Lookup(id uint32) (Attr, bool) {
	// Lock-free fast path: the snapshot is a consistent prefix of byID. An
	// ID past the snapshot may have been minted since; only then fall back
	// to the locked read.
	if p := d.snap.Load(); p != nil {
		if s := *p; int(id) < len(s) {
			return s[id], true
		}
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.byID) {
		return Attr{}, false
	}
	return d.byID[id], true
}

// All implements Dict.
func (d *Dictionary) All() []Attr {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Attr, len(d.byID))
	copy(out, d.byID)
	return out
}

// Len returns the number of attributes.
func (d *Dictionary) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byID)
}

// IDsOfKey returns all attribute IDs sharing a key (one per observed type),
// sorted; extraction with an unknown desired type probes each.
func (d *Dictionary) IDsOfKey(key string) []Attr {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []Attr
	for _, a := range d.byID {
		if a.Key == key {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
