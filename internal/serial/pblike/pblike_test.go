package pblike

import (
	"testing"

	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/serial"
)

func parse(t *testing.T, s string) *jsonx.Doc {
	t.Helper()
	d, err := jsonx.ParseDocument([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRoundTrip(t *testing.T) {
	dict := serial.NewDictionary()
	cases := []string{
		`{"a":1,"b":"text","c":2.5,"d":true}`,
		`{"neg":-42,"big":9007199254740993}`,
		`{"nested":{"x":{"y":1}},"arr":[1,"two",null,false]}`,
		`{}`,
	}
	for _, s := range cases {
		in := parse(t, s)
		data, err := Serialize(in, dict)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Deserialize(data, dict)
		if err != nil {
			t.Fatal(err)
		}
		want := jsonx.NewDoc()
		for _, m := range in.Members() {
			if _, typed := serial.AttrTypeOf(m.Val); typed {
				want.Set(m.Key, m.Val)
			}
		}
		if !jsonx.ObjectValue(want).Equal(jsonx.ObjectValue(out)) {
			t.Errorf("%s: got %v", s, jsonx.ObjectValue(out))
		}
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<62 - 1, -(1 << 62)} {
		if unzigzag(zigzag(v)) != v {
			t.Errorf("zigzag round trip failed for %d", v)
		}
	}
}

func TestExtractShortCircuit(t *testing.T) {
	dict := serial.NewDictionary()
	// Allocate IDs in order: early, middle, late.
	data, err := Serialize(parse(t, `{"early":1,"middle":"m","late":2.5}`), dict)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, _ := Extract(data, "middle", serial.TypeString, dict)
	if !ok || v.S != "m" {
		t.Fatalf("middle = %v %v", v, ok)
	}
	// Key known to the dict but absent from this record: the scan
	// short-circuits once field numbers pass it.
	dict.IDFor("absent_mid", serial.TypeInt)
	if _, ok, _ := Extract(data, "absent_mid", serial.TypeInt, dict); ok {
		t.Error("absent key found")
	}
	// Key not in the dictionary at all.
	if _, ok, _ := Extract(data, "never_seen", serial.TypeInt, dict); ok {
		t.Error("unknown key found")
	}
}

func TestFieldsSortedByID(t *testing.T) {
	dict := serial.NewDictionary()
	// Allocate zig-zag ordered attribute IDs across two docs.
	Serialize(parse(t, `{"z":1,"a":2}`), dict)
	data, _ := Serialize(parse(t, `{"a":2,"z":1}`), dict)
	r := &reader{b: data}
	var prev uint32
	first := true
	for !r.done() {
		key, err := r.uvarint()
		if err != nil {
			t.Fatal(err)
		}
		id := uint32(key >> 3)
		if !first && id <= prev {
			t.Fatalf("fields not sorted: %d after %d", id, prev)
		}
		prev, first = id, false
		if err := r.skip(key & 7); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUnknownFieldsSkipped(t *testing.T) {
	dictA := serial.NewDictionary()
	data, _ := Serialize(parse(t, `{"a":1,"b":"x"}`), dictA)
	// A reader with an empty dictionary skips all fields gracefully.
	dictB := serial.NewDictionary()
	out, err := Deserialize(data, dictB)
	if err != nil || out.Len() != 0 {
		t.Errorf("out = %v err = %v", out, err)
	}
}

func TestTruncatedRecords(t *testing.T) {
	dict := serial.NewDictionary()
	data, _ := Serialize(parse(t, `{"a":1,"s":"hello","o":{"x":1}}`), dict)
	for cut := 0; cut < len(data); cut++ {
		_, _ = Deserialize(data[:cut], dict) // must not panic
	}
}
