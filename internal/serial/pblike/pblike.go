// Package pblike implements a Protocol-Buffers-style serialization used as
// the Appendix A baseline: tag/value pairs with varint field numbers (the
// dictionary attribute IDs), optional fields simply absent, fields written
// in ascending field-number order. Like real protobuf, records are
// sequential: extraction walks tags from the start and can only
// short-circuit once the scanned field number exceeds the target — there is
// no random access, which is why single-key extraction costs almost as much
// as ten-key extraction in Table 4.
package pblike

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/serial"
)

// Wire types (mirroring protobuf).
const (
	wireVarint  = 0 // int, bool
	wireFixed64 = 1 // float
	wireBytes   = 2 // string, nested object, array
)

// Serialize encodes doc as tag/value pairs sorted by field number.
func Serialize(doc *jsonx.Doc, dict serial.Dict) ([]byte, error) {
	type field struct {
		id  uint32
		val jsonx.Value
	}
	fields := make([]field, 0, doc.Len())
	for _, m := range doc.Members() {
		at, ok := serial.AttrTypeOf(m.Val)
		if !ok {
			continue // null: absent, like proto3 optional
		}
		fields = append(fields, field{id: dict.IDFor(m.Key, at), val: m.Val})
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].id < fields[j].id })
	var out []byte
	for _, f := range fields {
		var err error
		out, err = appendField(out, f.id, f.val, dict)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func appendField(out []byte, id uint32, v jsonx.Value, dict serial.Dict) ([]byte, error) {
	switch v.Kind {
	case jsonx.Bool:
		out = binary.AppendUvarint(out, uint64(id)<<3|wireVarint)
		if v.B {
			return append(out, 1), nil
		}
		return append(out, 0), nil
	case jsonx.Int:
		out = binary.AppendUvarint(out, uint64(id)<<3|wireVarint)
		return binary.AppendUvarint(out, zigzag(v.I)), nil
	case jsonx.Float:
		out = binary.AppendUvarint(out, uint64(id)<<3|wireFixed64)
		return binary.LittleEndian.AppendUint64(out, math.Float64bits(v.F)), nil
	case jsonx.String:
		out = binary.AppendUvarint(out, uint64(id)<<3|wireBytes)
		out = binary.AppendUvarint(out, uint64(len(v.S)))
		return append(out, v.S...), nil
	case jsonx.Object:
		sub, err := Serialize(v.Obj, dict)
		if err != nil {
			return nil, err
		}
		out = binary.AppendUvarint(out, uint64(id)<<3|wireBytes)
		out = binary.AppendUvarint(out, uint64(len(sub)))
		return append(out, sub...), nil
	case jsonx.Array:
		var body []byte
		for _, e := range v.A {
			at, ok := serial.AttrTypeOf(e)
			if !ok {
				body = append(body, 0xff)
				continue
			}
			elem, err := appendScalar(nil, e, dict)
			if err != nil {
				return nil, err
			}
			body = append(body, byte(at))
			body = binary.AppendUvarint(body, uint64(len(elem)))
			body = append(body, elem...)
		}
		out = binary.AppendUvarint(out, uint64(id)<<3|wireBytes)
		out = binary.AppendUvarint(out, uint64(len(body)))
		return append(out, body...), nil
	default:
		return nil, fmt.Errorf("pblike: cannot serialize %v", v.Kind)
	}
}

// appendScalar encodes a bare value (array element payload).
func appendScalar(out []byte, v jsonx.Value, dict serial.Dict) ([]byte, error) {
	switch v.Kind {
	case jsonx.Bool:
		if v.B {
			return append(out, 1), nil
		}
		return append(out, 0), nil
	case jsonx.Int:
		return binary.AppendUvarint(out, zigzag(v.I)), nil
	case jsonx.Float:
		return binary.LittleEndian.AppendUint64(out, math.Float64bits(v.F)), nil
	case jsonx.String:
		return append(out, v.S...), nil
	case jsonx.Object:
		sub, err := Serialize(v.Obj, dict)
		if err != nil {
			return nil, err
		}
		return append(out, sub...), nil
	case jsonx.Array:
		for _, e := range v.A {
			at, ok := serial.AttrTypeOf(e)
			if !ok {
				out = append(out, 0xff)
				continue
			}
			elem, err := appendScalar(nil, e, dict)
			if err != nil {
				return nil, err
			}
			out = append(out, byte(at))
			out = binary.AppendUvarint(out, uint64(len(elem)))
			out = append(out, elem...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("pblike: cannot serialize %v", v.Kind)
	}
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

type reader struct {
	b   []byte
	pos int
}

func (r *reader) done() bool { return r.pos >= len(r.b) }

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("pblike: bad varint")
	}
	r.pos += n
	return v, nil
}

func (r *reader) take(n int) ([]byte, error) {
	if r.pos+n > len(r.b) {
		return nil, fmt.Errorf("pblike: truncated record")
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

// skip advances past a value of the given wire type.
func (r *reader) skip(wire uint64) error {
	switch wire {
	case wireVarint:
		_, err := r.uvarint()
		return err
	case wireFixed64:
		_, err := r.take(8)
		return err
	case wireBytes:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		_, err = r.take(int(n))
		return err
	default:
		return fmt.Errorf("pblike: unknown wire type %d", wire)
	}
}

// decode reads the value for a known attribute type.
func (r *reader) decode(t serial.AttrType, wire uint64, dict serial.Dict) (jsonx.Value, error) {
	switch t {
	case serial.TypeBool:
		u, err := r.uvarint()
		if err != nil {
			return jsonx.Value{}, err
		}
		return jsonx.BoolValue(u != 0), nil
	case serial.TypeInt:
		u, err := r.uvarint()
		if err != nil {
			return jsonx.Value{}, err
		}
		return jsonx.IntValue(unzigzag(u)), nil
	case serial.TypeFloat:
		b, err := r.take(8)
		if err != nil {
			return jsonx.Value{}, err
		}
		return jsonx.FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case serial.TypeString:
		n, err := r.uvarint()
		if err != nil {
			return jsonx.Value{}, err
		}
		b, err := r.take(int(n))
		if err != nil {
			return jsonx.Value{}, err
		}
		return jsonx.StringValue(string(b)), nil
	case serial.TypeObject:
		n, err := r.uvarint()
		if err != nil {
			return jsonx.Value{}, err
		}
		b, err := r.take(int(n))
		if err != nil {
			return jsonx.Value{}, err
		}
		doc, err := Deserialize(b, dict)
		if err != nil {
			return jsonx.Value{}, err
		}
		return jsonx.ObjectValue(doc), nil
	case serial.TypeArray:
		n, err := r.uvarint()
		if err != nil {
			return jsonx.Value{}, err
		}
		b, err := r.take(int(n))
		if err != nil {
			return jsonx.Value{}, err
		}
		return decodeArrayBody(b, dict)
	default:
		return jsonx.Value{}, fmt.Errorf("pblike: unknown attribute type %d", t)
	}
}

func decodeArrayBody(b []byte, dict serial.Dict) (jsonx.Value, error) {
	r := &reader{b: b}
	var elems []jsonx.Value
	for !r.done() {
		tag, err := r.take(1)
		if err != nil {
			return jsonx.Value{}, err
		}
		if tag[0] == 0xff {
			elems = append(elems, jsonx.NullValue())
			continue
		}
		n, err := r.uvarint()
		if err != nil {
			return jsonx.Value{}, err
		}
		payload, err := r.take(int(n))
		if err != nil {
			return jsonx.Value{}, err
		}
		v, err := decodeScalar(payload, serial.AttrType(tag[0]), dict)
		if err != nil {
			return jsonx.Value{}, err
		}
		elems = append(elems, v)
	}
	return jsonx.ArrayValue(elems...), nil
}

func decodeScalar(b []byte, t serial.AttrType, dict serial.Dict) (jsonx.Value, error) {
	switch t {
	case serial.TypeBool:
		if len(b) != 1 {
			return jsonx.Value{}, fmt.Errorf("pblike: bad bool")
		}
		return jsonx.BoolValue(b[0] != 0), nil
	case serial.TypeInt:
		u, n := binary.Uvarint(b)
		if n <= 0 {
			return jsonx.Value{}, fmt.Errorf("pblike: bad int")
		}
		return jsonx.IntValue(unzigzag(u)), nil
	case serial.TypeFloat:
		if len(b) != 8 {
			return jsonx.Value{}, fmt.Errorf("pblike: bad float")
		}
		return jsonx.FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case serial.TypeString:
		return jsonx.StringValue(string(b)), nil
	case serial.TypeObject:
		doc, err := Deserialize(b, dict)
		if err != nil {
			return jsonx.Value{}, err
		}
		return jsonx.ObjectValue(doc), nil
	case serial.TypeArray:
		return decodeArrayBody(b, dict)
	default:
		return jsonx.Value{}, fmt.Errorf("pblike: unknown type %d", t)
	}
}

// decodedField is the intermediate message representation: protobuf
// unmarshals the wire format into a message object first, and the
// application then maps that object into its own model. Deserialize
// mirrors the two steps (the paper attributes PB's deserialization deficit
// to exactly this intermediate logical representation, Appendix A).
type decodedField struct {
	id  uint32
	val jsonx.Value
}

// Deserialize reconstructs the document by walking every field.
func Deserialize(data []byte, dict serial.Dict) (*jsonx.Doc, error) {
	// Step 1: wire format → intermediate message fields.
	r := &reader{b: data}
	var fields []decodedField
	for !r.done() {
		key, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		id := uint32(key >> 3)
		wire := key & 7
		attr, ok := dict.Lookup(id)
		if !ok {
			if err := r.skip(wire); err != nil {
				return nil, err
			}
			continue
		}
		v, err := r.decode(attr.Type, wire, dict)
		if err != nil {
			return nil, err
		}
		fields = append(fields, decodedField{id: id, val: v})
	}
	// Step 2: message fields → application document.
	doc := jsonx.NewDoc()
	for _, f := range fields {
		attr, _ := dict.Lookup(f.id)
		doc.Set(attr.Key, f.val)
	}
	return doc, nil
}

// Extract scans tags from the start, short-circuiting once the field
// numbers pass the target (fields are sorted), and decodes only the match.
func Extract(data []byte, key string, want serial.AttrType, dict serial.Dict) (jsonx.Value, bool, error) {
	id, ok := dict.IDOf(key, want)
	if !ok {
		return jsonx.Value{}, false, nil
	}
	r := &reader{b: data}
	for !r.done() {
		tagKey, err := r.uvarint()
		if err != nil {
			return jsonx.Value{}, false, err
		}
		fid := uint32(tagKey >> 3)
		wire := tagKey & 7
		if fid == id {
			attr, _ := dict.Lookup(id)
			v, err := r.decode(attr.Type, wire, dict)
			if err != nil {
				return jsonx.Value{}, false, err
			}
			return v, true, nil
		}
		if fid > id {
			return jsonx.Value{}, false, nil // sorted: target absent
		}
		if err := r.skip(wire); err != nil {
			return jsonx.Value{}, false, err
		}
	}
	return jsonx.Value{}, false, nil
}
