package serial

import (
	"fmt"
	"testing"

	"github.com/sinewdata/sinew/internal/jsonx"
)

// benchDoc builds a NoBench-shaped document with nAttrs attributes.
func benchDoc(nAttrs int) *jsonx.Doc {
	d := jsonx.NewDoc()
	for i := 0; i < nAttrs; i++ {
		switch i % 4 {
		case 0:
			d.Set(fmt.Sprintf("int_%03d", i), jsonx.IntValue(int64(i)))
		case 1:
			d.Set(fmt.Sprintf("str_%03d", i), jsonx.StringValue("value-for-benchmarking"))
		case 2:
			d.Set(fmt.Sprintf("flt_%03d", i), jsonx.FloatValue(float64(i)*1.5))
		default:
			d.Set(fmt.Sprintf("bool_%03d", i), jsonx.BoolValue(i%8 == 0))
		}
	}
	return d
}

func BenchmarkSerialize16(b *testing.B)  { benchSerialize(b, 16) }
func BenchmarkSerialize160(b *testing.B) { benchSerialize(b, 160) }

func benchSerialize(b *testing.B, attrs int) {
	dict := NewDictionary()
	doc := benchDoc(attrs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Serialize(doc, dict); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeserialize16(b *testing.B) {
	dict := NewDictionary()
	data, _ := Serialize(benchDoc(16), dict)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Deserialize(data, dict); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtract16(b *testing.B)  { benchExtract(b, 16) }
func BenchmarkExtract160(b *testing.B) { benchExtract(b, 160) }

func benchExtract(b *testing.B, attrs int) {
	dict := NewDictionary()
	data, _ := Serialize(benchDoc(attrs), dict)
	key := fmt.Sprintf("int_%03d", attrs-4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok, err := ExtractPath(data, key, TypeInt, dict); err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkExtractNested(b *testing.B) {
	dict := NewDictionary()
	d := benchDoc(8)
	sub := jsonx.NewDoc()
	sub.Set("lang", jsonx.StringValue("en"))
	sub.Set("id", jsonx.IntValue(7))
	d.Set("user", jsonx.ObjectValue(sub))
	data, _ := Serialize(d, dict)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok, err := ExtractPath(data, "user.id", TypeInt, dict); err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}
