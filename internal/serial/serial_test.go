package serial

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sinewdata/sinew/internal/jsonx"
)

func doc(t *testing.T, s string) *jsonx.Doc {
	t.Helper()
	d, err := jsonx.ParseDocument([]byte(s))
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return d
}

func TestSerializeRoundTrip(t *testing.T) {
	dict := NewDictionary()
	in := doc(t, `{"url":"www.x.com","hits":22,"avg":128.5,"ok":true,"user":{"id":7,"lang":"en"},"tags":[1,"a",null,false]}`)
	data, err := Serialize(in, dict)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Deserialize(data, dict)
	if err != nil {
		t.Fatal(err)
	}
	if !jsonx.ObjectValue(in).Equal(jsonx.ObjectValue(out)) {
		t.Errorf("round trip mismatch:\n in=%v\nout=%v", jsonx.ObjectValue(in), jsonx.ObjectValue(out))
	}
}

func TestNullKeysAbsent(t *testing.T) {
	dict := NewDictionary()
	in := doc(t, `{"a":1,"b":null}`)
	data, err := Serialize(in, dict)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := Deserialize(data, dict)
	if out.Has("b") {
		t.Error("null-valued key should be absent from the record")
	}
	if !out.Has("a") {
		t.Error("a missing")
	}
}

func TestExtractByID(t *testing.T) {
	dict := NewDictionary()
	in := doc(t, `{"x":5,"y":"str","z":2.5}`)
	data, _ := Serialize(in, dict)
	id, ok := dict.IDOf("y", TypeString)
	if !ok {
		t.Fatal("y not in dict")
	}
	v, found, err := ExtractByID(data, id, dict)
	if err != nil || !found || v.S != "str" {
		t.Fatalf("extract y = %v %v %v", v, found, err)
	}
	// Absent ID.
	if _, found, _ := ExtractByID(data, 9999, dict); found {
		t.Error("bogus ID found")
	}
}

func TestExtractPathNested(t *testing.T) {
	dict := NewDictionary()
	in := doc(t, `{"user":{"id":7,"geo":{"lat":1.5,"city":"nyc"}},"id":1}`)
	data, _ := Serialize(in, dict)

	v, found, err := ExtractPath(data, "user.id", TypeInt, dict)
	if err != nil || !found || v.I != 7 {
		t.Fatalf("user.id = %v %v %v", v, found, err)
	}
	v, found, _ = ExtractPath(data, "user.geo.city", TypeString, dict)
	if !found || v.S != "nyc" {
		t.Fatalf("user.geo.city = %v %v", v, found)
	}
	// Whole nested object remains referenceable (paper §3.1.1).
	v, found, _ = ExtractPath(data, "user.geo", TypeObject, dict)
	if !found || v.Kind != jsonx.Object {
		t.Fatalf("user.geo = %v %v", v, found)
	}
	if _, found, _ := ExtractPath(data, "user.nope", TypeInt, dict); found {
		t.Error("user.nope should be absent")
	}
}

func TestExtractTypeSelective(t *testing.T) {
	dict := NewDictionary()
	// Two records where the same key has different types (dyn1 in NoBench).
	d1, _ := Serialize(doc(t, `{"dyn1":42}`), dict)
	d2, _ := Serialize(doc(t, `{"dyn1":"forty-two"}`), dict)

	if v, found, _ := ExtractPath(d1, "dyn1", TypeInt, dict); !found || v.I != 42 {
		t.Errorf("int extraction from int record: %v %v", v, found)
	}
	if _, found, _ := ExtractPath(d2, "dyn1", TypeInt, dict); found {
		t.Error("int extraction from string record must return absent (NULL), not error")
	}
	if v, found, _ := ExtractPath(d2, "dyn1", TypeString, dict); !found || v.S != "forty-two" {
		t.Errorf("string extraction: %v %v", v, found)
	}
}

func TestHas(t *testing.T) {
	dict := NewDictionary()
	data, _ := Serialize(doc(t, `{"sparse_1":"v"}`), dict)
	id, _ := dict.IDOf("sparse_1", TypeString)
	if ok, _ := Has(data, id); !ok {
		t.Error("Has should find sparse_1")
	}
	if ok, _ := Has(data, id+100); ok {
		t.Error("Has found absent attribute")
	}
}

func TestRemoveAndInsert(t *testing.T) {
	dict := NewDictionary()
	in := doc(t, `{"a":1,"b":"bee","c":3.5}`)
	data, _ := Serialize(in, dict)
	idB, _ := dict.IDOf("b", TypeString)

	smaller, removed, err := Remove(data, idB)
	if err != nil || !removed {
		t.Fatalf("remove: %v %v", removed, err)
	}
	if _, found, _ := ExtractByID(smaller, idB, dict); found {
		t.Error("b still present after Remove")
	}
	if v, found, _ := ExtractPath(smaller, "a", TypeInt, dict); !found || v.I != 1 {
		t.Errorf("a damaged by Remove: %v %v", v, found)
	}
	if v, found, _ := ExtractPath(smaller, "c", TypeFloat, dict); !found || v.F != 3.5 {
		t.Errorf("c damaged by Remove: %v %v", v, found)
	}
	// Remove of absent attribute is a no-op.
	same, removed, _ := Remove(smaller, idB)
	if removed || len(same) != len(smaller) {
		t.Error("second remove should be a no-op")
	}

	back, err := Insert(smaller, idB, jsonx.StringValue("bee"), dict)
	if err != nil {
		t.Fatal(err)
	}
	if v, found, _ := ExtractByID(back, idB, dict); !found || v.S != "bee" {
		t.Errorf("b after Insert = %v %v", v, found)
	}
}

func TestAttrIDsSorted(t *testing.T) {
	dict := NewDictionary()
	// Allocate in a scrambled order across two docs.
	_, _ = Serialize(doc(t, `{"z":1,"m":2,"a":3}`), dict)
	data, _ := Serialize(doc(t, `{"a":3,"z":1,"m":2}`), dict)
	ids, err := AttrIDs(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("ids not sorted: %v", ids)
		}
	}
}

func TestDictionaryConcurrent(t *testing.T) {
	dict := NewDictionary()
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 500; i++ {
				dict.IDFor("key", TypeString)
				dict.IDFor("other", TypeInt)
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if dict.Len() != 2 {
		t.Errorf("dict len = %d, want 2", dict.Len())
	}
}

func TestDictionaryIDsOfKey(t *testing.T) {
	dict := NewDictionary()
	dict.IDFor("dyn1", TypeString)
	dict.IDFor("other", TypeInt)
	dict.IDFor("dyn1", TypeInt)
	dict.IDFor("dyn1", TypeBool)
	attrs := dict.IDsOfKey("dyn1")
	if len(attrs) != 3 {
		t.Fatalf("attrs = %v", attrs)
	}
}

func TestCorruptRecords(t *testing.T) {
	dict := NewDictionary()
	data, _ := Serialize(mustDocT(t, `{"a":1}`), dict)
	for cut := 0; cut < len(data); cut++ {
		// Truncations must error, never panic.
		_, _ = Deserialize(data[:cut], dict)
	}
	if _, err := Deserialize([]byte{}, dict); err == nil {
		t.Error("empty record should error")
	}
}

func mustDocT(t *testing.T, s string) *jsonx.Doc { return doc(t, s) }

func TestPropertySerializeRoundTrip(t *testing.T) {
	dict := NewDictionary()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := jsonx.NewDoc()
		keys := []string{"a", "b", "c", "dd", "ee", "sparse_1", "nested"}
		for _, k := range keys {
			if r.Intn(2) == 0 {
				continue
			}
			switch r.Intn(5) {
			case 0:
				d.Set(k, jsonx.IntValue(r.Int63()-r.Int63()))
			case 1:
				d.Set(k, jsonx.FloatValue(r.NormFloat64()))
			case 2:
				d.Set(k, jsonx.StringValue(randString(r)))
			case 3:
				d.Set(k, jsonx.BoolValue(r.Intn(2) == 0))
			case 4:
				sub := jsonx.NewDoc()
				sub.Set("x", jsonx.IntValue(int64(r.Intn(100))))
				d.Set(k, jsonx.ObjectValue(sub))
			}
		}
		data, err := Serialize(d, dict)
		if err != nil {
			return false
		}
		out, err := Deserialize(data, dict)
		if err != nil {
			return false
		}
		return jsonx.ObjectValue(d).Equal(jsonx.ObjectValue(out))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randString(r *rand.Rand) string {
	b := make([]byte, r.Intn(24))
	for i := range b {
		b[i] = byte(32 + r.Intn(90))
	}
	return string(b)
}
