package serial

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file renders a serialized record straight to JSON text, skipping
// the jsonx.Doc intermediate that Deserialize builds. Reconstructing the
// reservoir (sinew_tojson, every SELECT *) is the per-row cost of the
// hybrid storage model, and the document round trip — ordered map, boxed
// values, final marshal — allocates an order of magnitude more than the
// text itself. AppendJSON walks the record header once and appends each
// value directly.
//
// Output contract: byte-identical to
// jsonx.ObjectValue(Deserialize(data, dict)).String() whenever AppendJSON
// succeeds. The one semantic wrinkle is duplicate keys: two attribute IDs
// can share a key with different types, and Doc.Set keeps the first
// position with the last value. A streaming writer cannot reproduce that
// without buffering, so duplicates (and any malformed record) return an
// error and the caller falls back to the document path, which also owns
// the canonical error message.

// errJSONFallback tags records AppendJSON declines; callers re-run the
// Deserialize path for the authoritative result or error.
var errJSONFallback = fmt.Errorf("serial: record needs document-path JSON rendering")

// AppendJSON appends the record's JSON object text to dst and returns the
// extended slice. On any error dst's contents are unspecified and the
// caller must fall back to Deserialize.
func AppendJSON(dst, data []byte, dict Dict) ([]byte, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	dst = append(dst, '{')
	var keys [24]string
	seen := keys[:0]
	for i := 0; i < h.n; i++ {
		attr, ok := dict.Lookup(h.aid(i))
		if !ok {
			return nil, fmt.Errorf("serial: attribute %d not in dictionary", h.aid(i))
		}
		for _, k := range seen {
			if k == attr.Key {
				return nil, errJSONFallback
			}
		}
		seen = append(seen, attr.Key)
		vb, err := h.valueBytes(i)
		if err != nil {
			return nil, err
		}
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, attr.Key)
		dst = append(dst, ':')
		dst, err = appendJSONValue(dst, vb, attr.Type, dict)
		if err != nil {
			return nil, err
		}
	}
	return append(dst, '}'), nil
}

// appendJSONValue renders one encoded value of a known attribute type.
func appendJSONValue(dst, b []byte, t AttrType, dict Dict) ([]byte, error) {
	switch t {
	case TypeBool:
		if len(b) != 1 {
			return nil, fmt.Errorf("serial: bad bool length %d", len(b))
		}
		if b[0] != 0 {
			return append(dst, "true"...), nil
		}
		return append(dst, "false"...), nil
	case TypeInt:
		if len(b) != 8 {
			return nil, fmt.Errorf("serial: bad int length %d", len(b))
		}
		return strconv.AppendInt(dst, int64(binary.LittleEndian.Uint64(b)), 10), nil
	case TypeFloat:
		if len(b) != 8 {
			return nil, fmt.Errorf("serial: bad float length %d", len(b))
		}
		return appendJSONFloat(dst, math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case TypeString:
		return appendJSONString(dst, b), nil
	case TypeObject:
		return AppendJSON(dst, b, dict)
	case TypeArray:
		if len(b) < u32 {
			return nil, fmt.Errorf("serial: truncated array")
		}
		count := int(binary.LittleEndian.Uint32(b))
		b = b[u32:]
		if count > len(b)/(1+u32) {
			return nil, fmt.Errorf("serial: corrupt array count %d (%d payload bytes)", count, len(b))
		}
		dst = append(dst, '[')
		for i := 0; i < count; i++ {
			if len(b) < 1+u32 {
				return nil, fmt.Errorf("serial: truncated array element %d", i)
			}
			tag := b[0]
			n := int(binary.LittleEndian.Uint32(b[1:]))
			b = b[1+u32:]
			if len(b) < n {
				return nil, fmt.Errorf("serial: truncated array element payload")
			}
			if i > 0 {
				dst = append(dst, ',')
			}
			if tag == 0xff {
				dst = append(dst, "null"...)
			} else {
				var err error
				dst, err = appendJSONValue(dst, b[:n], AttrType(tag), dict)
				if err != nil {
					return nil, err
				}
			}
			b = b[n:]
		}
		return append(dst, ']'), nil
	default:
		return nil, fmt.Errorf("serial: unknown attribute type %d", t)
	}
}

// appendJSONFloat matches jsonx's float rendering: shortest 'g' form with
// a ".0" suffix whenever the text would otherwise read back as an integer.
func appendJSONFloat(dst []byte, f float64) []byte {
	start := len(dst)
	dst = strconv.AppendFloat(dst, f, 'g', -1, 64)
	s := string(dst[start:])
	if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
		dst = append(dst, ".0"...)
	}
	return dst
}

const jsonHexDigits = "0123456789abcdef"

// appendJSONString writes s as a quoted, escaped JSON string —
// byte-for-byte jsonx's encodeString (string keys and raw byte values
// share the one loop, so string payloads are never copied out first).
func appendJSONString[T string | []byte](dst []byte, s T) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"':
			dst = append(dst, '\\', '"')
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		case '\b':
			dst = append(dst, '\\', 'b')
		case '\f':
			dst = append(dst, '\\', 'f')
		default:
			dst = append(dst, '\\', 'u', '0', '0', jsonHexDigits[c>>4], jsonHexDigits[c&0xf])
		}
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
