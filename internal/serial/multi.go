package serial

import (
	"github.com/sinewdata/sinew/internal/jsonx"
)

// This file implements the fused multi-key extraction kernel: when a query
// projects several virtual keys of the same reservoir column, the batch
// operator parses each record header once and resolves every requested
// (path, type) pair in a single sorted merge over the header's attribute
// IDs, instead of one full ExtractPath per key per row. Dictionary lookups
// happen once per query (PrepareMulti), not once per row per key.

// anyProbeOrder is the type-probe sequence for untyped (extract_any)
// requests; it must match the probe order of sinew_extract_any so the
// fused path returns the same value for multi-typed keys.
var anyProbeOrder = [...]AttrType{TypeString, TypeInt, TypeFloat, TypeBool, TypeArray, TypeObject}

// MultiSpec is one (path, type) extraction request of a prepared
// multi-extract. Specs are built once per query by PrepareMulti.
type MultiSpec struct {
	Path string
	Want AttrType
	// Any requests the first value of any type in anyProbeOrder
	// (sinew_extract_any semantics); Want is ignored.
	Any bool

	// id is the dictionary ID of the literal (Path, Want) attribute when
	// one exists; idOK is false for never-seen attributes.
	id   uint32
	idOK bool
	// anyIDs are the resolved candidate IDs for Any specs, in probe order.
	anyIDs []uint32
	// dotted marks paths needing the nested-object descent fallback when
	// the literal attribute is absent from a record.
	dotted bool
}

// PreparedMulti is a set of extraction requests with dictionary IDs
// resolved up front and a merge order precomputed over the sorted IDs.
type PreparedMulti struct {
	Specs []MultiSpec
	// merge lists indices into Specs with a resolved literal ID, sorted by
	// that ID — the probe sequence of the header merge.
	merge []int
	// slow lists indices that can never match via the literal-ID merge and
	// always take the fallback path (Any specs, unresolved dotted paths).
	slow []int
}

// PrepareMulti resolves a set of extraction requests against the
// dictionary once. Requests keep their input order in Specs (outputs of
// MultiExtract are positional).
func PrepareMulti(reqs []MultiSpec, dict Dict) *PreparedMulti {
	pm := &PreparedMulti{Specs: make([]MultiSpec, len(reqs))}
	copy(pm.Specs, reqs)
	for i := range pm.Specs {
		s := &pm.Specs[i]
		s.dotted = hasDot(s.Path)
		if s.Any {
			s.anyIDs = s.anyIDs[:0]
			for _, t := range anyProbeOrder {
				if id, ok := dict.IDOf(s.Path, t); ok {
					s.anyIDs = append(s.anyIDs, id)
				} else {
					// Keep probe order alignment: sentinel for absent types.
					s.anyIDs = append(s.anyIDs, ^uint32(0))
				}
			}
			pm.slow = append(pm.slow, i)
			continue
		}
		if id, ok := dict.IDOf(s.Path, s.Want); ok {
			s.id, s.idOK = id, true
			pm.merge = append(pm.merge, i)
		} else if s.dotted {
			pm.slow = append(pm.slow, i)
		}
		// Non-dotted paths with no dictionary entry can never match any
		// record: they stay out of both lists and always yield found=false.
	}
	// Insertion sort (stable, allocation-free): the merge list is a handful
	// of specs and PrepareMulti runs once per query, where sort.SliceStable's
	// closure and swapper show up in per-query allocation counts.
	for i := 1; i < len(pm.merge); i++ {
		for j := i; j > 0 && pm.Specs[pm.merge[j]].id < pm.Specs[pm.merge[j-1]].id; j-- {
			pm.merge[j], pm.merge[j-1] = pm.merge[j-1], pm.merge[j]
		}
	}
	return pm
}

func hasDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
	}
	return false
}

// Reset re-parses r against new record bytes in place, so one scratch
// Record serves every row of a scan without allocating. The Record aliases
// data; the caller must not mutate it while the Record is in use.
func (r *Record) Reset(data []byte) error {
	h, err := parseHeader(data)
	if err != nil {
		r.h = header{}
		return err
	}
	r.h = h
	return nil
}

// MultiExtract resolves every prepared request against the record in one
// pass: a two-pointer merge of the prepared (sorted) spec IDs with the
// record's sorted attribute IDs, then the descent/probe fallback for the
// few specs that need it. out[i] and found[i] receive spec i's value;
// both slices must have len(pm.Specs). Absent or differently-typed keys
// yield found=false, never an error (§3.2.2 type-selective NULLs).
func (r *Record) MultiExtract(pm *PreparedMulti, dict Dict, out []jsonx.Value, found []bool) error {
	for i := range found {
		found[i] = false
		out[i] = jsonx.Value{}
	}
	h := r.h
	// Sorted merge: both h.aids and pm.merge are ascending, so each side
	// advances monotonically. Duplicate spec IDs re-match without moving
	// the header cursor.
	pos := 0
	for _, si := range pm.merge {
		s := &pm.Specs[si]
		for pos < h.n && h.aid(pos) < s.id {
			pos++
		}
		if pos < h.n && h.aid(pos) == s.id {
			vb, err := h.valueBytes(pos)
			if err != nil {
				return err
			}
			v, err := decodeValue(vb, s.Want, dict)
			if err != nil {
				return err
			}
			out[si] = v
			found[si] = true
		} else if s.dotted {
			// Literal dotted attribute absent from this record: descend
			// through nested objects the slow way.
			v, ok, err := extractPathParsed(h, s.Path, s.Want, dict)
			if err != nil {
				return err
			}
			out[si], found[si] = v, ok
		}
	}
	for _, si := range pm.slow {
		s := &pm.Specs[si]
		if s.Any {
			v, ok, err := r.extractAnyPrepared(s, dict)
			if err != nil {
				return err
			}
			out[si], found[si] = v, ok
			continue
		}
		// Unresolved dotted path: no literal attribute exists anywhere, so
		// every record takes the descent.
		v, ok, err := extractPathParsed(h, s.Path, s.Want, dict)
		if err != nil {
			return err
		}
		out[si], found[si] = v, ok
	}
	return nil
}

// extractAnyPrepared probes each type in anyProbeOrder — prepared literal
// ID first, then the dotted descent — exactly mirroring the
// ExtractPath-per-type loop of sinew_extract_any, so multi-typed keys
// resolve to the same value on the fused path.
func (r *Record) extractAnyPrepared(s *MultiSpec, dict Dict) (jsonx.Value, bool, error) {
	for ti, id := range s.anyIDs {
		if id != ^uint32(0) {
			if i, ok := r.h.find(id); ok {
				vb, err := r.h.valueBytes(i)
				if err != nil {
					return jsonx.Value{}, false, err
				}
				v, err := decodeValue(vb, anyProbeOrder[ti], dict)
				if err != nil {
					return jsonx.Value{}, false, err
				}
				return v, true, nil
			}
		}
		if s.dotted {
			v, ok, err := extractPathParsed(r.h, s.Path, anyProbeOrder[ti], dict)
			if err != nil {
				return jsonx.Value{}, false, err
			}
			if ok {
				return v, true, nil
			}
		}
	}
	return jsonx.Value{}, false, nil
}
