// Package avrolike implements an Avro-style sequential serialization used
// as the Appendix A baseline. Like Avro, it has no notion of optional
// attributes: the writer schema is the full closed set of attributes in the
// dictionary, and every record encodes a union tag ([null, T]) for every
// schema attribute — explicit NULLs for all absent keys. On sparse data
// (NoBench has ~1000 mostly-absent keys) this bloats the encoding and makes
// both deserialization and key extraction scan the whole record, which is
// exactly the behaviour Table 4 of the paper measures.
package avrolike

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/serial"
)

// Serialize encodes doc against the dictionary's full attribute schema.
// The dictionary must already contain every attribute of doc (run a
// cataloging pass first, as Avro requires the writer schema up front).
func Serialize(doc *jsonx.Doc, dict serial.Dict) ([]byte, error) {
	var out []byte
	for _, attr := range dict.All() {
		v, ok := doc.Get(attr.Key)
		at, typed := serial.AttrTypeOf(v)
		if !ok || !typed || at != attr.Type {
			out = append(out, 0) // union branch 0: null
			continue
		}
		out = append(out, 1) // union branch 1: value
		var err error
		out, err = appendValue(out, v, dict)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// appendValue writes a length-prefixed (for variable types) binary value.
func appendValue(out []byte, v jsonx.Value, dict serial.Dict) ([]byte, error) {
	switch v.Kind {
	case jsonx.Bool:
		if v.B {
			return append(out, 1), nil
		}
		return append(out, 0), nil
	case jsonx.Int:
		return binary.AppendVarint(out, v.I), nil
	case jsonx.Float:
		return binary.LittleEndian.AppendUint64(out, math.Float64bits(v.F)), nil
	case jsonx.String:
		out = binary.AppendUvarint(out, uint64(len(v.S)))
		return append(out, v.S...), nil
	case jsonx.Object:
		sub, err := Serialize(v.Obj, dict)
		if err != nil {
			return nil, err
		}
		out = binary.AppendUvarint(out, uint64(len(sub)))
		return append(out, sub...), nil
	case jsonx.Array:
		out = binary.AppendUvarint(out, uint64(len(v.A)))
		for _, e := range v.A {
			at, ok := serial.AttrTypeOf(e)
			if !ok {
				out = append(out, 0xff)
				continue
			}
			out = append(out, byte(at))
			var err error
			out, err = appendValue(out, e, dict)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("avrolike: cannot serialize %v", v.Kind)
	}
}

// reader walks a record sequentially.
type reader struct {
	b   []byte
	pos int
}

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, fmt.Errorf("avrolike: truncated record")
	}
	c := r.b[r.pos]
	r.pos++
	return c, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("avrolike: bad varint")
	}
	r.pos += n
	return v, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("avrolike: bad uvarint")
	}
	r.pos += n
	return v, nil
}

func (r *reader) take(n int) ([]byte, error) {
	if r.pos+n > len(r.b) {
		return nil, fmt.Errorf("avrolike: truncated record")
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

// readValue decodes (or skips, when decode is false) one value of type t.
func (r *reader) readValue(t serial.AttrType, dict serial.Dict, decode bool) (jsonx.Value, error) {
	switch t {
	case serial.TypeBool:
		c, err := r.byte()
		if err != nil {
			return jsonx.Value{}, err
		}
		return jsonx.BoolValue(c != 0), nil
	case serial.TypeInt:
		v, err := r.varint()
		if err != nil {
			return jsonx.Value{}, err
		}
		return jsonx.IntValue(v), nil
	case serial.TypeFloat:
		b, err := r.take(8)
		if err != nil {
			return jsonx.Value{}, err
		}
		return jsonx.FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case serial.TypeString:
		n, err := r.uvarint()
		if err != nil {
			return jsonx.Value{}, err
		}
		b, err := r.take(int(n))
		if err != nil {
			return jsonx.Value{}, err
		}
		if !decode {
			return jsonx.Value{}, nil
		}
		return jsonx.StringValue(string(b)), nil
	case serial.TypeObject:
		n, err := r.uvarint()
		if err != nil {
			return jsonx.Value{}, err
		}
		b, err := r.take(int(n))
		if err != nil {
			return jsonx.Value{}, err
		}
		if !decode {
			return jsonx.Value{}, nil
		}
		doc, err := Deserialize(b, dict)
		if err != nil {
			return jsonx.Value{}, err
		}
		return jsonx.ObjectValue(doc), nil
	case serial.TypeArray:
		n, err := r.uvarint()
		if err != nil {
			return jsonx.Value{}, err
		}
		elems := make([]jsonx.Value, 0, n)
		for i := uint64(0); i < n; i++ {
			tag, err := r.byte()
			if err != nil {
				return jsonx.Value{}, err
			}
			if tag == 0xff {
				if decode {
					elems = append(elems, jsonx.NullValue())
				}
				continue
			}
			v, err := r.readValue(serial.AttrType(tag), dict, decode)
			if err != nil {
				return jsonx.Value{}, err
			}
			if decode {
				elems = append(elems, v)
			}
		}
		if !decode {
			return jsonx.Value{}, nil
		}
		return jsonx.ArrayValue(elems...), nil
	default:
		return jsonx.Value{}, fmt.Errorf("avrolike: unknown type %d", t)
	}
}

// Deserialize reconstructs the document (sequentially, reading every
// attribute slot of the schema).
func Deserialize(data []byte, dict serial.Dict) (*jsonx.Doc, error) {
	r := &reader{b: data}
	doc := jsonx.NewDoc()
	for _, attr := range dict.All() {
		branch, err := r.byte()
		if err != nil {
			return nil, err
		}
		if branch == 0 {
			continue
		}
		v, err := r.readValue(attr.Type, dict, true)
		if err != nil {
			return nil, err
		}
		doc.Set(attr.Key, v)
	}
	return doc, nil
}

// Extract fetches a single attribute by scanning the record from the start
// — Avro supports no random access, so every attribute slot before the
// target must be walked (and all of them when the key is absent).
func Extract(data []byte, key string, want serial.AttrType, dict serial.Dict) (jsonx.Value, bool, error) {
	r := &reader{b: data}
	for _, attr := range dict.All() {
		branch, err := r.byte()
		if err != nil {
			return jsonx.Value{}, false, err
		}
		hit := attr.Key == key && attr.Type == want
		if branch == 0 {
			if hit {
				return jsonx.Value{}, false, nil
			}
			continue
		}
		v, err := r.readValue(attr.Type, dict, hit)
		if err != nil {
			return jsonx.Value{}, false, err
		}
		if hit {
			return v, true, nil
		}
	}
	return jsonx.Value{}, false, nil
}
