package avrolike

import (
	"testing"

	"github.com/sinewdata/sinew/internal/jsonx"
	"github.com/sinewdata/sinew/internal/serial"
)

// fixture returns a dictionary (the closed writer schema) and two docs.
func fixture(t *testing.T) (*serial.Dictionary, []*jsonx.Doc) {
	t.Helper()
	dict := serial.NewDictionary()
	var docs []*jsonx.Doc
	for _, s := range []string{
		`{"a":1,"b":"text","c":2.5,"d":true,"nested":{"x":1},"arr":[1,"y",null]}`,
		`{"a":2,"sparse":"only here"}`,
	} {
		d, err := jsonx.ParseDocument([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
		catalogDoc(dict, d)
	}
	return dict, docs
}

// catalogDoc registers every attribute, recursively by local key name —
// Avro requires the complete writer schema (nested records included)
// before any record can be encoded.
func catalogDoc(dict *serial.Dictionary, d *jsonx.Doc) {
	for _, m := range d.Members() {
		if at, ok := serial.AttrTypeOf(m.Val); ok {
			dict.IDFor(m.Key, at)
		}
		if m.Val.Kind == jsonx.Object {
			catalogDoc(dict, m.Val.Obj)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dict, docs := fixture(t)
	for _, d := range docs {
		data, err := Serialize(d, dict)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Deserialize(data, dict)
		if err != nil {
			t.Fatal(err)
		}
		// Nulls inside arrays survive; absent keys stay absent.
		for _, m := range d.Members() {
			got, ok := out.Get(m.Key)
			if _, typed := serial.AttrTypeOf(m.Val); !typed {
				continue
			}
			if !ok || !got.Equal(m.Val) {
				t.Errorf("key %q: got %v, want %v", m.Key, got, m.Val)
			}
		}
	}
}

func TestUnionNullBloat(t *testing.T) {
	dict, docs := fixture(t)
	// The sparse doc has 2 keys but pays a union byte for all 7 schema
	// attributes — the Appendix A size penalty in miniature.
	data, err := Serialize(docs[1], dict)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < dict.Len() {
		t.Errorf("record %d bytes < %d schema slots", len(data), dict.Len())
	}
}

func TestExtract(t *testing.T) {
	dict, docs := fixture(t)
	data, _ := Serialize(docs[0], dict)
	v, ok, err := Extract(data, "b", serial.TypeString, dict)
	if err != nil || !ok || v.S != "text" {
		t.Fatalf("b = %v %v %v", v, ok, err)
	}
	// Absent attribute.
	if _, ok, _ := Extract(data, "sparse", serial.TypeString, dict); ok {
		t.Error("sparse should be absent in doc 0")
	}
	// Wrong type is absent, not an error.
	if _, ok, _ := Extract(data, "b", serial.TypeInt, dict); ok {
		t.Error("type-mismatched extraction should be absent")
	}
}

func TestTruncatedRecordErrors(t *testing.T) {
	dict, docs := fixture(t)
	data, _ := Serialize(docs[0], dict)
	for cut := 0; cut < len(data); cut++ {
		_, _ = Deserialize(data[:cut], dict) // must not panic
	}
	if _, err := Deserialize(nil, dict); err == nil {
		t.Error("empty record should error against a non-empty schema")
	}
}
