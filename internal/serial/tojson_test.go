package serial

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sinewdata/sinew/internal/jsonx"
)

// docPathJSON is the reference rendering: the document round trip the
// streaming writer must reproduce byte-for-byte.
func docPathJSON(t *testing.T, data []byte, dict Dict) string {
	t.Helper()
	doc, err := Deserialize(data, dict)
	if err != nil {
		t.Fatalf("Deserialize: %v", err)
	}
	return jsonx.ObjectValue(doc).String()
}

func TestAppendJSONMatchesDocumentPath(t *testing.T) {
	cases := []string{
		`{}`,
		`{"a":1}`,
		`{"url":"www.x.com","hits":22,"avg":128.5,"ok":true,"user":{"id":7,"lang":"en"},"tags":[1,"a",null,false]}`,
		`{"s":""}`,
		`{"esc":"quote\" back\\ nl\n tab\t cr\r ctl\u0001"}`,
		`{"unicode":"héllo wörld ☃"}`,
		`{"f1":1.0,"f2":-0.5,"f3":1e300,"f4":-2.5e-11,"f5":3.0,"f6":123456789.25}`,
		`{"neg":-9223372036854775808,"pos":9223372036854775807,"zero":0}`,
		`{"arr":[],"nested":[[1,2],["a"],[]],"objs":[{"x":1},{"y":"z"}]}`,
		`{"deep":{"a":{"b":{"c":[true,null,{"d":0.125}]}}}}`,
		`{"b1":true,"b2":false}`,
	}
	dict := NewDictionary()
	for _, src := range cases {
		data, err := Serialize(doc(t, src), dict)
		if err != nil {
			t.Fatalf("Serialize %q: %v", src, err)
		}
		want := docPathJSON(t, data, dict)
		got, err := AppendJSON(nil, data, dict)
		if err != nil {
			t.Errorf("AppendJSON %q: %v", src, err)
			continue
		}
		if string(got) != want {
			t.Errorf("AppendJSON mismatch for %q:\n got %s\nwant %s", src, got, want)
		}
	}
}

func TestAppendJSONSpecialFloats(t *testing.T) {
	// Inf/NaN cannot come from parsed JSON but can arrive through the
	// Value API; whatever jsonx renders, the streaming writer must echo.
	dict := NewDictionary()
	d := jsonx.NewDoc()
	d.Set("inf", jsonx.FloatValue(math.Inf(1)))
	d.Set("ninf", jsonx.FloatValue(math.Inf(-1)))
	d.Set("negzero", jsonx.FloatValue(math.Copysign(0, -1)))
	data, err := Serialize(d, dict)
	if err != nil {
		t.Fatal(err)
	}
	want := docPathJSON(t, data, dict)
	got, err := AppendJSON(nil, data, dict)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("special floats:\n got %s\nwant %s", got, want)
	}
}

func TestAppendJSONDuplicateKeyFallsBack(t *testing.T) {
	// Two attribute IDs sharing one key (same key, different types) is
	// representable in the record format even though Serialize never emits
	// it. The streaming writer must decline so the caller's document path
	// (first position, last value) stays authoritative.
	dict := NewDictionary()
	idInt := dict.IDFor("k", TypeInt)
	idStr := dict.IDFor("k", TypeString)
	lo, hi := idInt, idStr
	loVal := []byte{1, 0, 0, 0, 0, 0, 0, 0}
	hiVal := []byte("text")
	if lo > hi {
		lo, hi = hi, lo
		loVal, hiVal = hiVal, loVal
	}
	var rec []byte
	rec = binary.LittleEndian.AppendUint32(rec, 2)
	rec = binary.LittleEndian.AppendUint32(rec, lo)
	rec = binary.LittleEndian.AppendUint32(rec, hi)
	rec = binary.LittleEndian.AppendUint32(rec, 0)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(loVal)))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(loVal)+len(hiVal)))
	rec = append(rec, loVal...)
	rec = append(rec, hiVal...)

	if _, err := Deserialize(rec, dict); err != nil {
		t.Fatalf("document path should accept duplicate keys: %v", err)
	}
	if _, err := AppendJSON(nil, rec, dict); err == nil {
		t.Error("AppendJSON should decline duplicate-key records")
	}
}

func TestAppendJSONCorruptRecords(t *testing.T) {
	dict := NewDictionary()
	data, _ := Serialize(mustDocT(t, `{"a":1,"s":"xy","arr":[1,null]}`), dict)
	for cut := 0; cut < len(data); cut++ {
		// Truncations must error or render; never panic.
		_, _ = AppendJSON(nil, data[:cut], dict)
	}
	if _, err := AppendJSON(nil, []byte{}, dict); err == nil {
		t.Error("empty record should error")
	}
}

func TestPropertyAppendJSONMatchesDocumentPath(t *testing.T) {
	dict := NewDictionary()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := jsonx.NewDoc()
		keys := []string{"a", "b", "c", "dd", "ee", "sparse_1", "nested", "arr"}
		for _, k := range keys {
			if r.Intn(3) == 0 {
				continue
			}
			d.Set(k, randJSONValue(r, 2))
		}
		data, err := Serialize(d, dict)
		if err != nil {
			return false
		}
		got, err := AppendJSON(nil, data, dict)
		if err != nil {
			return false
		}
		doc, err := Deserialize(data, dict)
		if err != nil {
			return false
		}
		return string(got) == jsonx.ObjectValue(doc).String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randJSONValue draws a serializable value; depth bounds nesting.
func randJSONValue(r *rand.Rand, depth int) jsonx.Value {
	max := 5
	if depth > 0 {
		max = 7
	}
	switch r.Intn(max) {
	case 0:
		return jsonx.IntValue(r.Int63() - r.Int63())
	case 1:
		f := r.NormFloat64() * math.Pow(10, float64(r.Intn(40)-20))
		if r.Intn(4) == 0 {
			f = float64(r.Intn(10)) // integral: exercises the ".0" suffix
		}
		return jsonx.FloatValue(f)
	case 2:
		return jsonx.StringValue(randEscString(r))
	case 3:
		return jsonx.BoolValue(r.Intn(2) == 0)
	case 4:
		return jsonx.StringValue("")
	case 5:
		sub := jsonx.NewDoc()
		for i := 0; i < r.Intn(3); i++ {
			sub.Set(string(rune('x'+i)), randJSONValue(r, depth-1))
		}
		return jsonx.ObjectValue(sub)
	default:
		n := r.Intn(4)
		elems := make([]jsonx.Value, 0, n)
		for i := 0; i < n; i++ {
			if r.Intn(5) == 0 {
				elems = append(elems, jsonx.NullValue())
			} else {
				elems = append(elems, randJSONValue(r, depth-1))
			}
		}
		return jsonx.ArrayValue(elems...)
	}
}

// randEscString mixes printable ASCII with characters that need escaping.
func randEscString(r *rand.Rand) string {
	b := make([]byte, r.Intn(20))
	for i := range b {
		switch r.Intn(6) {
		case 0:
			b[i] = byte(r.Intn(32)) // control characters
		case 1:
			b[i] = '"'
		case 2:
			b[i] = '\\'
		default:
			b[i] = byte(32 + r.Intn(90))
		}
	}
	return string(b)
}
