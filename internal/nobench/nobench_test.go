package nobench

import (
	"strings"
	"testing"

	"github.com/sinewdata/sinew/internal/jsonx"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := GenerateJSON(50, 7)
	b := GenerateJSON(50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs across runs with the same seed", i)
		}
	}
	c := GenerateJSON(50, 8)
	if a[0] == c[0] {
		t.Error("different seeds should differ")
	}
}

func TestRecordShape(t *testing.T) {
	docs := Generate(100, 1)
	if len(docs) != 100 {
		t.Fatalf("n = %d", len(docs))
	}
	for i, d := range docs {
		for _, key := range []string{"str1", "str2", "num", "bool", "dyn1", "dyn2", "nested_arr", "nested_obj", "thousandth"} {
			if !d.Has(key) {
				t.Fatalf("record %d missing %s", i, key)
			}
		}
		num, _ := d.Get("num")
		if num.I != int64(i) {
			t.Errorf("num = %v, want %d", num, i)
		}
		th, _ := d.Get("thousandth")
		if th.I != int64(i%1000) {
			t.Errorf("thousandth = %v", th)
		}
		arr, _ := d.Get("nested_arr")
		if arr.Kind != jsonx.Array || len(arr.A) != ArrayLen {
			t.Errorf("nested_arr = %v", arr)
		}
		obj, _ := d.Get("nested_obj")
		if obj.Kind != jsonx.Object || !obj.Obj.Has("str") || !obj.Obj.Has("num") {
			t.Errorf("nested_obj = %v", obj)
		}
		// Exactly SparsePerRecord sparse keys.
		sparse := 0
		for _, k := range d.Keys() {
			if strings.HasPrefix(k, "sparse_") {
				sparse++
			}
		}
		if sparse != SparsePerRecord {
			t.Errorf("record %d has %d sparse keys", i, sparse)
		}
	}
}

func TestDynTypesCycle(t *testing.T) {
	docs := Generate(9, 1)
	kinds := map[jsonx.Kind]int{}
	for _, d := range docs {
		v, _ := d.Get("dyn1")
		kinds[v.Kind]++
	}
	if kinds[jsonx.Int] != 3 || kinds[jsonx.String] != 3 || kinds[jsonx.Bool] != 3 {
		t.Errorf("dyn1 kind distribution = %v", kinds)
	}
}

func TestSparseKeyDensity(t *testing.T) {
	n := 2000
	docs := Generate(n, 42)
	count := 0
	key := SparseKey(110)
	for _, d := range docs {
		if d.Has(key) {
			count++
		}
	}
	// Each sparse key should appear in ~1% of records.
	if count < n/200 || count > n/25 {
		t.Errorf("%s appears in %d/%d records, want ~1%%", key, count, n)
	}
}

func TestStr1ProbeHits(t *testing.T) {
	n := 1000
	docs := Generate(n, 42)
	par := NewParams(n)
	probe := par.Str1Probe()
	hits := 0
	for _, d := range docs {
		if v, _ := d.Get("str1"); v.S == probe {
			hits++
		}
	}
	if hits != 1 {
		t.Errorf("str1 probe hits %d records, want exactly 1", hits)
	}
}

func TestQueriesAreComplete(t *testing.T) {
	par := NewParams(1000)
	qs := par.Queries()
	if len(qs) != 12 {
		t.Fatalf("queries = %d", len(qs))
	}
	for _, qid := range QueryOrder() {
		sql, ok := qs[qid]
		if !ok || sql == "" {
			t.Errorf("missing %s", qid)
		}
		if !strings.Contains(sql, par.Table) {
			t.Errorf("%s does not reference the table: %s", qid, sql)
		}
	}
	lo, hi := par.RangeBounds()
	if hi <= lo {
		t.Errorf("bounds = %d..%d", lo, hi)
	}
}

func TestGeneratedJSONParses(t *testing.T) {
	for _, line := range GenerateJSON(20, 3) {
		if _, err := jsonx.ParseDocument([]byte(line)); err != nil {
			t.Fatalf("generated JSON invalid: %v\n%s", err, line)
		}
	}
}
