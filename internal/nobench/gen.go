// Package nobench generates the NoBench dataset and queries (Chasseur,
// Li, Patel — "Enabling JSON Document Stores in Relational Systems",
// WebDB 2013), the workload of §6 of the Sinew paper.
//
// Each record has ~15 keys: common scalars (str1, str2, num, bool), two
// dynamically-typed keys (dyn1, dyn2 — string, integer, or boolean chosen
// per record), a nested array (nested_arr), a nested document
// (nested_obj with str and num), a low-cardinality thousandth, and ten
// consecutive sparse keys drawn from a pool of 1000 (sparse_000 ...
// sparse_999) so that each sparse key appears in ~1% of records.
package nobench

import (
	"encoding/base32"
	"fmt"
	"math/rand"

	"github.com/sinewdata/sinew/internal/jsonx"
)

// SparsePool is the number of distinct sparse keys.
const SparsePool = 1000

// SparsePerRecord is how many consecutive sparse keys each record carries.
const SparsePerRecord = 10

// ArrayLen is the nested_arr length.
const ArrayLen = 5

// SparseValueDomain is the number of distinct sparse values; with each
// sparse key present in ~1% of records, an equality probe on (key, value)
// matches ~1/10000 of records — the paper's update-task selectivity (§6.6).
const SparseValueDomain = 100

// Generator produces deterministic NoBench records.
type Generator struct {
	rng *rand.Rand
	n   int
	i   int
}

// NewGenerator returns a generator for n records with a fixed seed.
func NewGenerator(n int, seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), n: n}
}

// encodeStr renders an integer the way NoBench does (base32 text), e.g.
// "GBRDCMBQGA======".
func encodeStr(v int64) string {
	raw := fmt.Sprintf("%d", v)
	return base32.StdEncoding.EncodeToString([]byte(raw))
}

// StrValue returns the canonical string for seed value v — queries use it
// to build equality predicates that actually match generated data.
func StrValue(v int64) string { return encodeStr(v) }

// SparseKey names sparse key k.
func SparseKey(k int) string { return fmt.Sprintf("sparse_%03d", k) }

// Next generates the next record; ok=false after n records.
func (g *Generator) Next() (*jsonx.Doc, bool) {
	if g.i >= g.n {
		return nil, false
	}
	i := int64(g.i)
	g.i++
	r := g.rng

	doc := jsonx.NewDoc()
	doc.Set("str1", jsonx.StringValue(encodeStr(i)))
	doc.Set("str2", jsonx.StringValue(encodeStr(r.Int63n(int64(g.n)))))
	doc.Set("num", jsonx.IntValue(i))
	doc.Set("bool", jsonx.BoolValue(i%2 == 0))

	// Dynamically typed keys: the type depends on the record.
	doc.Set("dyn1", dynValue(r, i))
	doc.Set("dyn2", dynValue(r, i+1))

	// nested_arr: strings drawn from the same space as str1 so array
	// containment probes can hit.
	elems := make([]jsonx.Value, ArrayLen)
	for j := range elems {
		elems[j] = jsonx.StringValue(encodeStr(r.Int63n(int64(g.n)))) //nolint: gosec
	}
	doc.Set("nested_arr", jsonx.ArrayValue(elems...))

	// nested_obj: str joins against str1 (Q11), num mirrors num.
	sub := jsonx.NewDoc()
	sub.Set("str", jsonx.StringValue(encodeStr(r.Int63n(int64(g.n)))))
	sub.Set("num", jsonx.IntValue(r.Int63n(int64(g.n))))
	doc.Set("nested_obj", jsonx.ObjectValue(sub))

	doc.Set("thousandth", jsonx.IntValue(i%1000))

	// Ten consecutive sparse keys; the cluster advances per record so every
	// sparse key appears in ~SparsePerRecord/SparsePool of records.
	cluster := (g.i * SparsePerRecord) % SparsePool
	for j := 0; j < SparsePerRecord; j++ {
		doc.Set(SparseKey((cluster+j)%SparsePool), jsonx.StringValue(encodeStr(r.Int63n(SparseValueDomain))))
	}
	return doc, true
}

// dynValue picks a string, integer, or boolean for the dyn keys.
func dynValue(r *rand.Rand, i int64) jsonx.Value {
	switch i % 3 {
	case 0:
		return jsonx.IntValue(i)
	case 1:
		return jsonx.StringValue(encodeStr(i))
	default:
		return jsonx.BoolValue(r.Intn(2) == 0)
	}
}

// Generate materializes all n records.
func Generate(n int, seed int64) []*jsonx.Doc {
	g := NewGenerator(n, seed)
	out := make([]*jsonx.Doc, 0, n)
	for {
		d, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, d)
	}
}

// GenerateJSON renders records as JSON text lines (the pgjson loader's
// input and the "original size" row of Table 3).
func GenerateJSON(n int, seed int64) []string {
	g := NewGenerator(n, seed)
	out := make([]string, 0, n)
	for {
		d, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, jsonx.ObjectValue(d).String())
	}
}
