package nobench

import "fmt"

// Params fixes the constants of the parameterized NoBench queries for a
// dataset of N records so that selectivities match the original benchmark:
// equality probes hit one record, range predicates select ~0.1%, sparse
// equality touches ~1% of records.
type Params struct {
	N int
	// Table is the collection name (default "nobench_main").
	Table string
}

// NewParams returns defaults for n records.
func NewParams(n int) Params { return Params{N: n, Table: "nobench_main"} }

// rangeWidth selects ~0.1% of num's domain [0, N).
func (p Params) rangeWidth() int64 {
	w := int64(p.N / 1000)
	if w < 1 {
		w = 1
	}
	return w
}

// RangeBounds returns the num BETWEEN bounds (Q6, Q10, Q11).
func (p Params) RangeBounds() (int64, int64) {
	lo := int64(p.N / 3)
	return lo, lo + p.rangeWidth()
}

// DynBounds returns the dyn1 BETWEEN bounds (Q7); dyn1 is the record index
// when integer-typed, so a window within [0,N) matches ~1/3 of a 0.1%
// slice.
func (p Params) DynBounds() (int64, int64) {
	lo := int64(p.N / 2)
	return lo, lo + 10*p.rangeWidth()
}

// Str1Probe is an equality value present in the data (Q5).
func (p Params) Str1Probe() string { return StrValue(int64(p.N / 4)) }

// ArrayProbe is a containment value drawn from the nested_arr domain (Q8).
func (p Params) ArrayProbe() string { return StrValue(int64(p.N / 5)) }

// SparseQueryKey is the sparse key probed by Q9 and the update task.
func (p Params) SparseQueryKey() string { return SparseKey(589) }

// SparseSetKey is the sparse key written by the update task.
func (p Params) SparseSetKey() string { return SparseKey(588) }

// SparseProbe is the equality value probed against SparseQueryKey (Q9 and
// the update task); it lies inside the sparse value domain.
func (p Params) SparseProbe() string { return StrValue(50) }

// Queries returns the 11 NoBench queries plus the update task (§6.6) as
// SQL over the logical schema. Q1–Q4 are projections, Q5–Q9 selections,
// Q10 an aggregate, Q11 a join, Q12 the random update.
func (p Params) Queries() map[string]string {
	t := p.Table
	lo, hi := p.RangeBounds()
	dlo, dhi := p.DynBounds()
	return map[string]string{
		"Q1": fmt.Sprintf(`SELECT str1, num FROM %s`, t),
		"Q2": fmt.Sprintf(`SELECT "nested_obj.str", "nested_obj.num" FROM %s`, t),
		"Q3": fmt.Sprintf(`SELECT sparse_110, sparse_119 FROM %s`, t),
		"Q4": fmt.Sprintf(`SELECT sparse_110, sparse_220 FROM %s`, t),
		"Q5": fmt.Sprintf(`SELECT * FROM %s WHERE str1 = '%s'`, t, p.Str1Probe()),
		"Q6": fmt.Sprintf(`SELECT * FROM %s WHERE num BETWEEN %d AND %d`, t, lo, hi),
		"Q7": fmt.Sprintf(`SELECT * FROM %s WHERE dyn1 BETWEEN %d AND %d`, t, dlo, dhi),
		"Q8": fmt.Sprintf(`SELECT * FROM %s WHERE '%s' IN nested_arr`, t, p.ArrayProbe()),
		"Q9": fmt.Sprintf(`SELECT * FROM %s WHERE %s = '%s'`, t, p.SparseQueryKey(), p.SparseProbe()),
		"Q10": fmt.Sprintf(
			`SELECT thousandth, COUNT(*) FROM %s WHERE num BETWEEN %d AND %d GROUP BY thousandth`,
			t, lo, hi),
		"Q11": fmt.Sprintf(
			`SELECT l._id, r._id FROM %s l, %s r WHERE l."nested_obj.str" = r.str1 AND l.num BETWEEN %d AND %d`,
			t, t, lo, hi),
		"Q12": fmt.Sprintf(`UPDATE %s SET %s = 'DUMMY' WHERE %s = '%s'`,
			t, p.SparseSetKey(), p.SparseQueryKey(), p.SparseProbe()),
	}
}

// QueryOrder lists query IDs in presentation order.
func QueryOrder() []string {
	return []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9", "Q10", "Q11", "Q12"}
}
