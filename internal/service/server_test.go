package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/sinewdata/sinew/internal/core"
)

// startServer boots a sinewd instance on a loopback port and returns its
// base URL plus the database underneath. Shutdown runs in cleanup.
func startServer(t *testing.T) (string, *core.DB) {
	t.Helper()
	db := core.Open(core.DefaultConfig())
	srv := New(db)

	addrc := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- srv.Serve("127.0.0.1:0", func(a net.Addr) { addrc <- a })
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-errc:
		t.Fatalf("serve: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server did not start listening")
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-errc; err != nil {
			t.Errorf("serve returned: %v", err)
		}
		if n := db.RDBMS().SessionsActive(); n != 0 {
			t.Errorf("sessions_active = %d after shutdown, want 0 (pool not drained)", n)
		}
	})
	return base, db
}

// post sends one request and decodes the JSON reply.
func post(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s %s reply: %v", method, url, err)
	}
	return resp.StatusCode, out
}

// query runs one statement on the given session ("" = ephemeral) and
// fails the test on a non-200 reply.
func query(t *testing.T, base, session, sql string) map[string]any {
	t.Helper()
	url := base + "/query"
	if session != "" {
		url += "?session=" + session
	}
	code, out := post(t, http.MethodPost, url, sql)
	if code != http.StatusOK {
		t.Fatalf("%q: status %d (%v)", sql, code, out["error"])
	}
	return out
}

// metrics fetches /metrics and parses every line into a map keyed by the
// full metric name (labels included).
func metrics(t *testing.T, base string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int64)
	for _, line := range strings.Split(strings.TrimSpace(string(buf)), "\n") {
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", line, err)
		}
		out[name] = v
	}
	return out
}

// TestServerEndToEnd drives the whole HTTP surface: session pool, DDL and
// DML over /query, JSON result shapes, per-session and global counters,
// error accounting, and the drain on Shutdown (checked in cleanup).
func TestServerEndToEnd(t *testing.T) {
	base, _ := startServer(t)

	// Two pooled sessions: a writer and a reader.
	_, out := post(t, http.MethodPost, base+"/session", "")
	writer, _ := out["session"].(string)
	_, out = post(t, http.MethodPost, base+"/session", "")
	reader, _ := out["session"].(string)
	if writer == "" || reader == "" || writer == reader {
		t.Fatalf("session ids: writer=%q reader=%q", writer, reader)
	}

	query(t, base, writer, `CREATE TABLE kv (k TEXT, v INT)`)
	res := query(t, base, writer, `INSERT INTO kv VALUES ('a', 1), ('b', 2), ('c', 3)`)
	if ra, _ := res["rows_affected"].(float64); ra != 3 {
		t.Fatalf("rows_affected = %v, want 3", res["rows_affected"])
	}

	// A read on the other session sees the published data with full shape.
	res = query(t, base, reader, `SELECT k, v FROM kv ORDER BY k`)
	cols, _ := res["columns"].([]any)
	rows, _ := res["rows"].([]any)
	if len(cols) != 2 || len(rows) != 3 {
		t.Fatalf("result shape: %d columns, %d rows", len(cols), len(rows))
	}
	first, _ := rows[0].([]any)
	if len(first) != 2 || first[0] != "a" || first[1] != float64(1) {
		t.Fatalf("first row = %v, want [a 1]", first)
	}

	// An ephemeral query (no session) works too.
	query(t, base, "", `SELECT COUNT(*) FROM kv`)

	// A bad statement surfaces as 400 and lands in the error counters.
	code, out := post(t, http.MethodPost, base+"/query?session="+reader, `SELECT nope FROM missing`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad statement: status %d, want 400", code)
	}
	if msg, _ := out["error"].(string); msg == "" {
		t.Fatal("bad statement reply has no error text")
	}

	m := metrics(t, base)
	if got := m["sinew_sessions_active"]; got != 2 {
		t.Errorf("sinew_sessions_active = %d, want 2 pooled sessions", got)
	}
	if got := m["sinew_snapshot_epoch"]; got < 1 {
		t.Errorf("sinew_snapshot_epoch = %d, want >= 1 after writes published", got)
	}
	if got := m["sinew_snapshots_open"]; got != 0 {
		t.Errorf("sinew_snapshots_open = %d at rest, want 0", got)
	}
	if got := m["sinew_queries_total"]; got < 5 {
		t.Errorf("sinew_queries_total = %d, want >= 5", got)
	}
	if got := m["sinew_query_errors_total"]; got != 1 {
		t.Errorf("sinew_query_errors_total = %d, want 1", got)
	}
	wkey := fmt.Sprintf("sinew_session_queries{session=%q}", writer)
	if got := m[wkey]; got != 2 {
		t.Errorf("%s = %d, want 2", wkey, got)
	}
	ekey := fmt.Sprintf("sinew_session_errors{session=%q}", reader)
	if got := m[ekey]; got != 1 {
		t.Errorf("%s = %d, want 1", ekey, got)
	}

	// Closing a session shrinks the gauge; closing it twice is a 404.
	if code, _ := post(t, http.MethodDelete, base+"/session?id="+writer, ""); code != http.StatusOK {
		t.Fatalf("closing %s: status %d", writer, code)
	}
	if got := metrics(t, base)["sinew_sessions_active"]; got != 1 {
		t.Errorf("sinew_sessions_active = %d after close, want 1", got)
	}
	if code, _ := post(t, http.MethodDelete, base+"/session?id="+writer, ""); code != http.StatusNotFound {
		t.Errorf("double close: status %d, want 404", code)
	}
}

// TestReaderLatencyUnderLoad is the service-level liveness check for the
// snapshot read path: while one session bulk-loads, other sessions'
// reads must not queue behind the writer's table lock. The bound is
// deliberately loose (an order of magnitude above the benchmark's 2×
// acceptance bar) so the test stays robust on loaded CI machines; the
// precise number lives in BenchmarkQueryUnderIngest.
func TestReaderLatencyUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement under -short")
	}
	base, _ := startServer(t)

	query(t, base, "", `CREATE TABLE ld (id INT, v INT)`)
	var seed strings.Builder
	seed.WriteString(`INSERT INTO ld VALUES `)
	for i := 0; i < 2000; i++ {
		if i > 0 {
			seed.WriteString(", ")
		}
		fmt.Fprintf(&seed, "(%d, %d)", i, i%97)
	}
	query(t, base, "", seed.String())

	const readSQL = `SELECT COUNT(*), SUM(v) FROM ld WHERE v < 50`
	p50 := func(samples int) time.Duration {
		ds := make([]time.Duration, samples)
		for i := range ds {
			start := time.Now()
			query(t, base, "", readSQL)
			ds[i] = time.Since(start)
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	idle := p50(30)

	// Bulk load: a writer hammers insert+delete chunks so the table churns
	// at a steady size for the whole measurement window.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var chunk strings.Builder
		chunk.WriteString(`INSERT INTO ld VALUES `)
		for i := 0; i < 200; i++ {
			if i > 0 {
				chunk.WriteString(", ")
			}
			fmt.Fprintf(&chunk, "(%d, %d)", 100000+i, i)
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			query(t, base, "", chunk.String())
			query(t, base, "", `DELETE FROM ld WHERE id >= 100000`)
		}
	}()
	busy := p50(30)
	close(stop)
	wg.Wait()

	bound := 50 * idle
	if floor := 250 * time.Millisecond; bound < floor {
		bound = floor
	}
	if busy > bound {
		t.Errorf("reader p50 under load = %v, idle = %v: exceeds bound %v (readers appear to block behind the bulk load)",
			busy, idle, bound)
	}
	t.Logf("reader p50: idle %v, under load %v", idle, busy)
}
