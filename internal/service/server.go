// Package service implements sinewd's HTTP line protocol: a thin,
// session-pooled front end over a Sinew database (DESIGN.md §10).
//
// The protocol is deliberately minimal — one statement per request, JSON
// results — because the interesting machinery lives below it: every
// /query runs against an epoch-pinned heap snapshot, so readers on one
// session never block behind loads, UPDATEs, or ANALYZE issued on
// another.
//
//	POST   /session             open a session       -> {"session":"s1"}
//	DELETE /session?id=s1       close it
//	POST   /query?session=s1    body = one SQL stmt  -> {"columns":..,"rows":..}
//	GET    /metrics             plaintext counters (global + per-session)
//	GET    /healthz             liveness probe
//
// A /query without a session parameter runs on an ephemeral session that
// exists only for the request; sessions_active still counts it, so the
// gauge reflects true concurrency.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sinewdata/sinew/internal/core"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// maxStatementBytes bounds a /query request body; one statement should
// never approach it (bulk loads go through LoadJSONLines, not SQL text).
const maxStatementBytes = 4 << 20

// session is one pooled client session and its counters.
type session struct {
	id      string
	opened  time.Time
	queries atomic.Int64
	errors  atomic.Int64
	rows    atomic.Int64
}

// Server is the sinewd HTTP front end. Create with New, start with
// Serve (or ServeListener for a caller-owned listener), stop with
// Shutdown.
type Server struct {
	db *core.DB
	hs *http.Server

	mu       sync.Mutex // guards sessions and nextID
	sessions map[string]*session
	nextID   uint64

	queriesTotal atomic.Int64
	errorsTotal  atomic.Int64
}

// New builds a server over an opened database. It does not listen yet.
func New(db *core.DB) *Server {
	s := &Server{db: db, sessions: make(map[string]*session)}
	mux := http.NewServeMux()
	mux.HandleFunc("/session", s.handleSession)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	s.hs = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// Serve listens on addr ("host:port"; port 0 picks a free one) and
// serves until Shutdown. The listener is bound before Serve returns
// control to the accept loop, so Addr is valid as soon as the listener
// callback fires.
func (s *Server) Serve(addr string, onListen func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	err = s.hs.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains in-flight requests (graceful), then closes every
// pooled session so the sessions_active gauge returns to zero.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.hs.Shutdown(ctx)
	s.mu.Lock()
	for id := range s.sessions {
		delete(s.sessions, id)
		s.db.RDBMS().SessionExit()
	}
	s.mu.Unlock()
	return err
}

// handleSession opens (POST) or closes (DELETE ?id=) a pooled session.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.mu.Lock()
		s.nextID++
		sess := &session{id: fmt.Sprintf("s%d", s.nextID), opened: time.Now()}
		s.sessions[sess.id] = sess
		s.mu.Unlock()
		s.db.RDBMS().SessionEnter()
		writeJSON(w, http.StatusOK, map[string]any{"session": sess.id})
	case http.MethodDelete:
		id := r.URL.Query().Get("id")
		s.mu.Lock()
		_, ok := s.sessions[id]
		if ok {
			delete(s.sessions, id)
		}
		s.mu.Unlock()
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("unknown session %q", id)})
			return
		}
		s.db.RDBMS().SessionExit()
		writeJSON(w, http.StatusOK, map[string]any{"closed": id})
	default:
		w.Header().Set("Allow", "POST, DELETE")
		writeJSON(w, http.StatusMethodNotAllowed, map[string]any{"error": "use POST to open, DELETE ?id= to close"})
	}
}

// handleQuery runs the request body as one SQL statement on the named
// (or an ephemeral) session.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeJSON(w, http.StatusMethodNotAllowed, map[string]any{"error": "POST one SQL statement as the request body"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxStatementBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if len(body) > maxStatementBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, map[string]any{"error": "statement exceeds 4 MiB"})
		return
	}
	sql := strings.TrimSpace(string(body))
	if sql == "" {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "empty statement"})
		return
	}

	var sess *session
	if id := r.URL.Query().Get("session"); id != "" {
		s.mu.Lock()
		sess = s.sessions[id]
		s.mu.Unlock()
		if sess == nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("unknown session %q", id)})
			return
		}
	} else {
		// Ephemeral session for the duration of one statement.
		s.db.RDBMS().SessionEnter()
		defer s.db.RDBMS().SessionExit()
	}

	s.queriesTotal.Add(1)
	if sess != nil {
		sess.queries.Add(1)
	}
	res, err := s.db.Query(sql)
	if err != nil {
		s.errorsTotal.Add(1)
		if sess != nil {
			sess.errors.Add(1)
		}
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if sess != nil {
		sess.rows.Add(int64(len(res.Rows)))
	}

	out := map[string]any{"rows_affected": res.RowsAffected}
	if res.ExplainText != "" {
		out["explain"] = res.ExplainText
	}
	if res.Columns != nil {
		typeNames := make([]string, len(res.Types))
		for i, t := range res.Types {
			typeNames[i] = t.String()
		}
		rows := make([][]any, len(res.Rows))
		for i, r := range res.Rows {
			jr := make([]any, len(r))
			for j, d := range r {
				jr[j] = datumJSON(d)
			}
			rows[i] = jr
		}
		out["columns"] = res.Columns
		out["types"] = typeNames
		out["rows"] = rows
	}
	writeJSON(w, http.StatusOK, out)
}

// datumJSON converts one SQL value to its natural JSON shape.
func datumJSON(d types.Datum) any {
	if d.IsNull() {
		return nil
	}
	switch d.Typ {
	case types.Bool:
		return d.B
	case types.Int:
		return d.I
	case types.Float:
		return d.F
	case types.Text:
		return d.S
	case types.Bytes:
		return d.Bs
	case types.Array:
		out := make([]any, len(d.A))
		for i, e := range d.A {
			out[i] = datumJSON(e)
		}
		return out
	default:
		return d.String()
	}
}

// handleMetrics renders the global and per-session counters as plain
// text, one `name value` (or `name{session="sN"} value`) pair per line.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	rdb := s.db.RDBMS()
	open, epoch, cow := rdb.SnapshotStats()
	pc := rdb.PlanCacheStats()

	var b strings.Builder
	global := func(name string, v int64) {
		fmt.Fprintf(&b, "sinew_%s %d\n", name, v)
	}
	global("sessions_active", rdb.SessionsActive())
	global("snapshots_open", open)
	global("snapshot_epoch", epoch)
	global("pages_cow", cow)
	global("queries_total", s.queriesTotal.Load())
	global("query_errors_total", s.errorsTotal.Load())
	global("plan_cache_hits", int64(pc.Hits))
	global("plan_cache_misses", int64(pc.Misses))
	global("catalog_epoch", int64(pc.Epoch))

	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sess := s.sessions[id]
		fmt.Fprintf(&b, "sinew_session_queries{session=%q} %d\n", id, sess.queries.Load())
		fmt.Fprintf(&b, "sinew_session_rows{session=%q} %d\n", id, sess.rows.Load())
		fmt.Fprintf(&b, "sinew_session_errors{session=%q} %d\n", id, sess.errors.Load())
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, b.String())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
