package rdbms

import (
	"fmt"
	"strings"
	"testing"
)

// benchDB builds a table of n rows for engine micro-benchmarks.
func benchDB(b *testing.B, n int) *DB {
	b.Helper()
	db := Open()
	if _, err := db.Exec(`CREATE TABLE t (id integer, grp integer, name text, score real)`); err != nil {
		b.Fatal(err)
	}
	const batch = 500
	for base := 0; base < n; base += batch {
		var sb strings.Builder
		sb.WriteString(`INSERT INTO t VALUES `)
		for i := 0; i < batch && base+i < n; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			id := base + i
			fmt.Fprintf(&sb, "(%d, %d, 'name%d', %g)", id, id%100, id%1000, float64(id)/3)
		}
		if _, err := db.Exec(sb.String()); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := db.Exec(`ANALYZE t`); err != nil {
		b.Fatal(err)
	}
	return db
}

func benchQuery(b *testing.B, sql string) {
	db := benchDB(b, 10000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeqScanFilter(b *testing.B) {
	benchQuery(b, `SELECT id FROM t WHERE score > 3000`)
}

func BenchmarkHashAggregate(b *testing.B) {
	benchQuery(b, `SELECT grp, COUNT(*), SUM(score) FROM t GROUP BY grp`)
}

func BenchmarkSortHeavy(b *testing.B) {
	benchQuery(b, `SELECT id FROM t ORDER BY score DESC LIMIT 10`)
}

func BenchmarkHashJoinSelf(b *testing.B) {
	benchQuery(b, `SELECT COUNT(*) FROM t a, t b WHERE a.id = b.id`)
}

func BenchmarkPointUpdate(b *testing.B) {
	db := benchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(fmt.Sprintf(`UPDATE t SET score = 0 WHERE id = %d`, i%10000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanOnly(b *testing.B) {
	db := benchDB(b, 1000)
	stmt := `SELECT grp, COUNT(*) FROM t WHERE score > 10 GROUP BY grp ORDER BY grp LIMIT 5`
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`EXPLAIN ` + stmt); err != nil {
			b.Fatal(err)
		}
	}
}
