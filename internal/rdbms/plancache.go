package rdbms

import (
	"container/list"
	"sync"
	"sync/atomic"

	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/plan"
	"github.com/sinewdata/sinew/internal/rdbms/sqlparse"
)

// The prepared-plan cache: repeated statements skip parsing, rewriting and
// planning entirely. Entries are keyed by the statement text, the
// plan-shaping session flags, and the catalog epoch — a counter bumped by
// every DDL, ANALYZE, and (via BumpCatalogEpoch) any upper-layer change
// that alters what the same SQL text should compile to, such as a
// materializer pass moving columns. An epoch bump therefore invalidates
// every cached plan at once without enumerating dependencies.
//
// Cached *plan.SelectPlan values are safe to re-execute and to execute
// concurrently: Open builds fresh iterator state per execution, and fused
// multi-extract kernels are instantiated per Open by their factory.

// planCacheCap bounds the number of retained plans (LRU eviction).
const planCacheCap = 256

type planKey struct {
	sql   string
	flags string
	epoch uint64
}

type cachedPlan struct {
	sp     *plan.SelectPlan
	tables []string
	key    planKey // for eviction bookkeeping
}

// PlanCacheStats is a snapshot of the cache counters, surfaced through the
// sinew_stats() UDF and the CLI.
type PlanCacheStats struct {
	Hits          uint64
	Misses        uint64
	Entries       int
	Invalidations uint64
	Epoch         uint64
}

type planCache struct {
	mu      sync.Mutex
	entries map[planKey]*list.Element
	lru     *list.List // front = most recent; values are *cachedPlan
	hits    atomic.Uint64
	misses  atomic.Uint64
	invals  atomic.Uint64
}

func newPlanCache() *planCache {
	return &planCache{
		entries: make(map[planKey]*list.Element),
		lru:     list.New(),
	}
}

func (c *planCache) get(key planKey) (*cachedPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cachedPlan), true
}

func (c *planCache) put(key planKey, cp *cachedPlan) {
	cp.key = key
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = cp
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(cp)
	for c.lru.Len() > planCacheCap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cachedPlan).key)
	}
}

func (c *planCache) remove(key planKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.Remove(el)
		delete(c.entries, key)
	}
}

// clear drops every entry; called on epoch bumps so stale-epoch plans do
// not linger until LRU eviction.
func (c *planCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) > 0 {
		c.entries = make(map[planKey]*list.Element)
		c.lru.Init()
	}
	c.invals.Add(1)
}

func (c *planCache) stats(epoch uint64) PlanCacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return PlanCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Entries:       n,
		Invalidations: c.invals.Load(),
		Epoch:         epoch,
	}
}

// BumpCatalogEpoch invalidates every cached plan. The rdbms layer calls it
// on DDL/TRUNCATE/ANALYZE; upper layers (Sinew core) call it whenever the
// logical-to-physical mapping changes — schema analysis, a materializer
// pass, or document loads that mint new attributes — since those change
// what the rewriter emits for the same statement text.
func (db *DB) BumpCatalogEpoch() {
	db.epoch.Add(1)
	db.plans.clear()
}

// CatalogEpoch reports the current epoch (tests pin invalidation with it).
func (db *DB) CatalogEpoch() uint64 { return db.epoch.Load() }

// PlanCacheStats snapshots the prepared-plan cache counters.
func (db *DB) PlanCacheStats() PlanCacheStats {
	return db.plans.stats(db.epoch.Load())
}

// flagsKey folds the plan-shaping session settings into the cache key, so
// SET enable_batch / batch_size / parallel_scan_min_pages /
// max_parallel_workers / enable_page_skip / enable_striped force a re-plan
// rather than replaying a plan built under different settings.
func (db *DB) flagsKey() string {
	db.cfgMu.Lock()
	cfg := *db.cfg
	db.cfgMu.Unlock()
	// Hand-rolled to keep the hot path free of fmt.
	b := make([]byte, 0, 40)
	if cfg.EnableBatch {
		b = append(b, "b1,"...)
	} else {
		b = append(b, "b0,"...)
	}
	b = appendUint(b, uint64(cfg.BatchSize))
	b = append(b, ',')
	b = appendUint(b, uint64(cfg.ParallelScanMinPages))
	b = append(b, ',')
	b = appendUint(b, uint64(cfg.MaxParallelWorkers))
	if cfg.EnablePageSkip {
		b = append(b, ",s1"...)
	} else {
		b = append(b, ",s0"...)
	}
	if cfg.EnableStriped {
		b = append(b, ",c1"...)
	} else {
		b = append(b, ",c0"...)
	}
	return string(b)
}

func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// ExecSelectCached runs a SELECT through the prepared-plan cache. sqlText
// is the statement as the client submitted it (before any rewriting); on a
// miss, build is called to produce the planned-against AST — for Sinew that
// closure performs parse + virtual-column rewrite, which a hit skips
// entirely along with planning.
func (db *DB) ExecSelectCached(sqlText string, build func() (*sqlparse.SelectStmt, error)) (*Result, error) {
	key := planKey{sql: sqlText, flags: db.flagsKey(), epoch: db.epoch.Load()}
	if ent, ok := db.plans.get(key); ok {
		// Lock-free hit path: pin every referenced table's snapshot, then
		// re-check the epoch. DDL bumps the epoch *before* publishing
		// (storage invariant 4), so if the epoch still matches, none of the
		// snapshots pinned above can postdate a conflicting DDL.
		ec := exec.NewExecCtx()
		pinned := true
		for _, n := range ent.tables {
			t, err := db.lookup(n)
			if err != nil {
				pinned = false
				break
			}
			ec.View(t.heap)
		}
		if pinned && db.epoch.Load() == key.epoch {
			db.plans.hits.Add(1)
			rows, cerr := ent.sp.CollectCtx(ec)
			ec.Release()
			if cerr != nil {
				return nil, cerr
			}
			return &Result{Columns: ent.sp.ColumnNames, Types: ent.sp.ColumnTypes, Rows: rows}, nil
		}
		ec.Release()
		db.plans.remove(key)
	}
	db.plans.misses.Add(1)

	st, err := build()
	if err != nil {
		return nil, err
	}
	ec := exec.NewExecCtx()
	defer ec.Release()
	// Sample the epoch before planning: if a DDL lands mid-plan it bumps
	// the epoch, the entry below is cached under the stale key, and no
	// future lookup ever replays it.
	epoch := db.epoch.Load()
	p := plan.NewPlanner(snapshotCatalog{db: db, ec: ec}, db.funcs, db.planCfg())
	sp, err := p.PlanSelect(st)
	if err != nil {
		return nil, err
	}
	rows, err := sp.CollectCtx(ec)
	if err != nil {
		return nil, err
	}
	db.plans.put(planKey{sql: sqlText, flags: key.flags, epoch: epoch},
		&cachedPlan{sp: sp, tables: fromTables(st)})
	return &Result{Columns: sp.ColumnNames, Types: sp.ColumnTypes, Rows: rows}, nil
}
