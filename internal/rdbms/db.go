// Package rdbms is the embedded relational database Sinew layers on: an
// unmodified "Postgres stand-in" with SQL, a cost-based optimizer driven by
// ANALYZE statistics, user-defined functions, table-level locking with
// per-statement atomicity, and EXPLAIN.
//
// Sinew (internal/core) talks to it exactly the way the paper's prototype
// talks to Postgres: DDL/DML/queries over SQL, UDFs for serialization and
// key extraction, and background processes doing single-row atomic updates.
package rdbms

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/plan"
	"github.com/sinewdata/sinew/internal/rdbms/sqlparse"
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// DB is an embedded relational database instance.
//
// Concurrency model (DESIGN.md §10): readers never take table locks. Every
// SELECT opens an exec.ExecCtx and pins each referenced heap's published
// snapshot with one atomic load; it plans and scans those frozen page
// versions for the whole statement. Writers serialize per table on t.mu,
// mutate private page versions (copy-on-write for anything a snapshot may
// share), and publish a new snapshot before unlocking. Unpinned versions
// are reclaimed by the garbage collector.
type DB struct {
	mu     sync.RWMutex // guards the table map
	tables map[string]*table
	pager  *storage.Pager
	funcs  *exec.Registry
	cfgMu  sync.Mutex // guards writes to *cfg (SET) and flagsKey reads
	cfg    *plan.Config
	// epoch counts catalog-shape changes; the prepared-plan cache keys on
	// it so DDL/ANALYZE/materializer moves invalidate cached plans.
	epoch atomic.Uint64
	plans *planCache
	// sessions counts logical client sessions (sinewd's pool); feeds
	// sinew_stats() and /metrics.
	sessions atomic.Int64
}

// table couples a heap with its writer lock and statistics. t.mu is a
// write-write exclusion lock only — readers go through heap snapshots and
// never acquire it. heap is assigned once at creation; stats swings
// atomically so lock-free planners can load it.
type table struct {
	mu    sync.RWMutex
	name  string
	heap  *storage.Heap
	stats atomic.Pointer[storage.TableStats]
}

// Open creates an empty database.
func Open() *DB {
	return &DB{
		tables: make(map[string]*table),
		pager:  storage.NewPager(),
		funcs:  exec.NewRegistry(),
		cfg:    plan.DefaultConfig(),
		plans:  newPlanCache(),
	}
}

// RegisterFunc installs a user-defined function, available to SQL
// immediately (Sinew's extraction functions, pgjson's parser, matches()).
func (db *DB) RegisterFunc(def *exec.FuncDef) { db.funcs.Register(def) }

// RegisterMultiExtract installs the fused multi-key extraction kernel
// factory for a function family (see exec.MultiExtractFactory); the
// planner fuses co-occurring calls of that family into one batch operator.
func (db *DB) RegisterMultiExtract(family string, f exec.MultiExtractFactory) {
	db.funcs.RegisterMultiExtract(family, f)
}

// RegisterStripedExtract installs the segment-kernel factory for a
// function family — the striped-scan counterpart of RegisterMultiExtract,
// used when scans deliver frozen-page column segments with their batches.
func (db *DB) RegisterStripedExtract(family string, f exec.SegExtractFactory) {
	db.funcs.RegisterStripedExtract(family, f)
}

// Funcs exposes the function registry (read-mostly).
func (db *DB) Funcs() *exec.Registry { return db.funcs }

// Pager returns the I/O accounting pager shared by all tables.
func (db *DB) Pager() *storage.Pager { return db.pager }

// PlanConfig returns the optimizer configuration; experiments adjust it in
// place before planning.
func (db *DB) PlanConfig() *plan.Config { return db.cfg }

// Result is the materialized outcome of one statement.
type Result struct {
	Columns      []string
	Types        []types.Type
	Rows         []storage.Row
	RowsAffected int64
	// ExplainText is set for EXPLAIN statements.
	ExplainText string
}

// Table returns a table's live heap and current statistics. Sinew core
// uses it to wire serializers and segmenters onto the heap; statement
// planning goes through snapshotCatalog instead, so planners see an
// epoch-pinned snapshot rather than the mutable heap.
func (db *DB) Table(name string) (*storage.Heap, *storage.TableStats, error) {
	t, err := db.lookup(name)
	if err != nil {
		return nil, nil, err
	}
	return t.heap, t.stats.Load(), nil
}

// snapshotCatalog implements plan.Catalog for one statement: table lookups
// resolve through the statement's ExecCtx, so the planner sizes and shapes
// the plan against the very snapshot the executor will scan. With a nil
// ExecCtx it degrades to live-heap views (embedded callers that serialize
// writes themselves).
type snapshotCatalog struct {
	db *DB
	ec *exec.ExecCtx
}

func (c snapshotCatalog) Table(name string) (storage.ReadView, *storage.TableStats, error) {
	t, err := c.db.lookup(name)
	if err != nil {
		return nil, nil, err
	}
	return c.ec.View(t.heap), t.stats.Load(), nil
}

func (db *DB) lookup(name string) (*table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("rdbms: relation %q does not exist", name)
	}
	return t, nil
}

// Exec parses and runs one SQL statement.
func (db *DB) Exec(sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(stmt)
}

// Query is Exec restricted by convention to SELECTs; it exists for caller
// readability.
func (db *DB) Query(sql string) (*Result, error) { return db.Exec(sql) }

// ExecStmt runs an already-parsed statement (the Sinew rewriter produces
// ASTs directly, skipping a reparse).
func (db *DB) ExecStmt(stmt sqlparse.Statement) (*Result, error) {
	switch st := stmt.(type) {
	case *sqlparse.SelectStmt:
		return db.execSelect(st)
	case *sqlparse.InsertStmt:
		return db.execInsert(st)
	case *sqlparse.UpdateStmt:
		return db.execUpdate(st)
	case *sqlparse.DeleteStmt:
		return db.execDelete(st)
	case *sqlparse.CreateTableStmt:
		return db.execCreateTable(st)
	case *sqlparse.DropTableStmt:
		return db.execDropTable(st)
	case *sqlparse.AlterTableStmt:
		return db.execAlterTable(st)
	case *sqlparse.TruncateStmt:
		return db.execTruncate(st)
	case *sqlparse.AnalyzeStmt:
		if err := db.Analyze(st.Table); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparse.SetStmt:
		return db.execSet(st)
	case *sqlparse.ExplainStmt:
		sel, ok := st.Stmt.(*sqlparse.SelectStmt)
		if !ok {
			return nil, fmt.Errorf("rdbms: EXPLAIN supports only SELECT")
		}
		text, err := db.ExplainSelect(sel)
		if err != nil {
			return nil, err
		}
		return &Result{ExplainText: text}, nil
	default:
		return nil, fmt.Errorf("rdbms: unsupported statement %T", stmt)
	}
}

// execSet applies SET name = value to the session/planner configuration.
// Writes go under cfgMu so a concurrent statement snapshotting the config
// (planCfg) or computing a cache key (flagsKey) sees a consistent value.
func (db *DB) execSet(st *sqlparse.SetStmt) (*Result, error) {
	db.cfgMu.Lock()
	defer db.cfgMu.Unlock()
	switch st.Name {
	case "batch_size":
		n, err := setIntValue(st, 1, 1<<16)
		if err != nil {
			return nil, err
		}
		db.cfg.BatchSize = int(n)
	case "enable_batch":
		b, err := setBoolValue(st)
		if err != nil {
			return nil, err
		}
		db.cfg.EnableBatch = b
	case "parallel_scan_min_pages":
		n, err := setIntValue(st, 0, 1<<30)
		if err != nil {
			return nil, err
		}
		db.cfg.ParallelScanMinPages = int(n)
	case "max_parallel_workers":
		// 0 = bounded by GOMAXPROCS, 1 = force serial, N > 1 = extra cap.
		n, err := setIntValue(st, 0, 1024)
		if err != nil {
			return nil, err
		}
		db.cfg.MaxParallelWorkers = int(n)
	case "enable_page_skip":
		b, err := setBoolValue(st)
		if err != nil {
			return nil, err
		}
		db.cfg.EnablePageSkip = b
	case "enable_striped":
		b, err := setBoolValue(st)
		if err != nil {
			return nil, err
		}
		db.cfg.EnableStriped = b
	default:
		return nil, fmt.Errorf("rdbms: SET %s: unrecognized configuration parameter (known: %s)",
			st.Name, strings.Join(sessionVars, ", "))
	}
	return &Result{}, nil
}

// sessionVars lists every session variable execSet accepts, for the
// unknown-parameter error. Keep sorted and in sync with the switch above.
var sessionVars = []string{
	"batch_size", "enable_batch", "enable_page_skip", "enable_striped",
	"max_parallel_workers", "parallel_scan_min_pages",
}

// setValueDesc renders the offending value for SET error messages.
func setValueDesc(d types.Datum) string {
	if d.IsNull() {
		return "NULL"
	}
	return fmt.Sprintf("%s %s", d.Typ, d.String())
}

// Every SET validation error follows one shape — "rdbms: SET <name>:
// <problem>" — so clients and tests can rely on the variable being named.
func setIntValue(st *sqlparse.SetStmt, lo, hi int64) (int64, error) {
	if st.Value.Typ != types.Int || st.Value.IsNull() {
		return 0, fmt.Errorf("rdbms: SET %s: requires an integer value, got %s", st.Name, setValueDesc(st.Value))
	}
	if st.Value.I < lo || st.Value.I > hi {
		return 0, fmt.Errorf("rdbms: SET %s: %d is outside the valid range [%d, %d]", st.Name, st.Value.I, lo, hi)
	}
	return st.Value.I, nil
}

func setBoolValue(st *sqlparse.SetStmt) (bool, error) {
	if st.Value.Typ != types.Bool || st.Value.IsNull() {
		return false, fmt.Errorf("rdbms: SET %s: requires a boolean value (on/off), got %s", st.Name, setValueDesc(st.Value))
	}
	return st.Value.B, nil
}

// planCfg snapshots the session configuration for one statement, so a
// concurrent SET cannot race the planner mid-plan. The returned copy is
// private to the statement.
func (db *DB) planCfg() *plan.Config {
	db.cfgMu.Lock()
	cfg := *db.cfg
	db.cfgMu.Unlock()
	return &cfg
}

// execSelect runs a SELECT against epoch-pinned snapshots: no table locks,
// so reads never block behind loads, UPDATEs, or ANALYZE. The ExecCtx pins
// each referenced heap's published snapshot on first touch (planning),
// execution scans the same pinned versions, and Release drops the pins.
func (db *DB) execSelect(st *sqlparse.SelectStmt) (*Result, error) {
	ec := exec.NewExecCtx()
	defer ec.Release()
	p := plan.NewPlanner(snapshotCatalog{db: db, ec: ec}, db.funcs, db.planCfg())
	sp, err := p.PlanSelect(st)
	if err != nil {
		return nil, err
	}
	rows, err := sp.CollectCtx(ec)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: sp.ColumnNames, Types: sp.ColumnTypes, Rows: rows}, nil
}

// PlanSelect plans (but does not run) a SELECT — benchmarks and tools use
// it to drive the executor directly. Planning reads a pinned snapshot; the
// returned plan re-binds to the live heaps, so the caller must not run
// DDL/DML concurrently with executing it (or must execute it with OpenCtx
// under its own ExecCtx).
func (db *DB) PlanSelect(st *sqlparse.SelectStmt) (*plan.SelectPlan, error) {
	ec := exec.NewExecCtx()
	defer ec.Release()
	p := plan.NewPlanner(snapshotCatalog{db: db, ec: ec}, db.funcs, db.planCfg())
	return p.PlanSelect(st)
}

// ExplainSelect plans (but does not run) a SELECT and renders the plan.
func (db *DB) ExplainSelect(st *sqlparse.SelectStmt) (string, error) {
	ec := exec.NewExecCtx()
	defer ec.Release()
	p := plan.NewPlanner(snapshotCatalog{db: db, ec: ec}, db.funcs, db.planCfg())
	sp, err := p.PlanSelect(st)
	if err != nil {
		return "", err
	}
	return sp.Explain(), nil
}

// PlanSelectStmt exposes the physical plan (the Table 2 experiment inspects
// operator choices programmatically).
func (db *DB) PlanSelectStmt(st *sqlparse.SelectStmt) (*plan.SelectPlan, error) {
	return db.PlanSelect(st)
}

func fromTables(st *sqlparse.SelectStmt) []string {
	names := make([]string, 0, len(st.From))
	for _, f := range st.From {
		names = append(names, f.Name)
	}
	return names
}

func (db *DB) execInsert(st *sqlparse.InsertStmt) (*Result, error) {
	t, err := db.lookup(st.Table)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Publish before unlocking (LIFO defers) so the statement's effect —
	// including a rollback — becomes the snapshot readers pin next.
	defer t.heap.Publish()
	schema := t.heap.Schema()

	// Map the column list to schema positions.
	colIdx := make([]int, 0, len(st.Columns))
	if len(st.Columns) == 0 {
		for i := range schema.Cols {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, c := range st.Columns {
			i := schema.ColumnIndex(c)
			if i < 0 {
				return nil, fmt.Errorf("rdbms: column %q of relation %q does not exist", c, st.Table)
			}
			colIdx = append(colIdx, i)
		}
	}

	emptyLayout := &plan.Layout{}
	var inserted int64
	// Per-statement atomicity: remember how many rows were added; since
	// Insert appends, failure mid-way rolls back by deleting the tail.
	var added []storage.RowID
	rollback := func() {
		for i := len(added) - 1; i >= 0; i-- {
			_, _ = t.heap.Delete(added[i])
		}
	}
	for _, rowExprs := range st.Rows {
		if len(rowExprs) != len(colIdx) {
			rollback()
			return nil, fmt.Errorf("rdbms: INSERT has %d expressions but %d target columns", len(rowExprs), len(colIdx))
		}
		row := make(storage.Row, len(schema.Cols))
		for i, c := range schema.Cols {
			row[i] = types.NewNull(c.Typ)
		}
		for i, e := range rowExprs {
			ce, err := plan.CompileExpr(e, emptyLayout, db.funcs, "VALUES")
			if err != nil {
				rollback()
				return nil, err
			}
			v, err := ce.Eval(nil)
			if err != nil {
				rollback()
				return nil, err
			}
			v, err = coerceTo(v, schema.Cols[colIdx[i]].Typ)
			if err != nil {
				rollback()
				return nil, err
			}
			row[colIdx[i]] = v
		}
		id, err := insertReturningID(t.heap, row)
		if err != nil {
			rollback()
			return nil, err
		}
		added = append(added, id)
		inserted++
	}
	return &Result{RowsAffected: inserted}, nil
}

// coerceTo casts v to the column type on insert/update, keeping NULLs and
// accepting exact or numeric-compatible types.
func coerceTo(v types.Datum, t types.Type) (types.Datum, error) {
	if v.IsNull() || v.Typ == t || t == types.Unknown {
		return v, nil
	}
	return types.Cast(v, t)
}

// insertReturningID inserts and reports where the row landed (the heap
// appends, so it is the last slot).
func insertReturningID(h *storage.Heap, row storage.Row) (storage.RowID, error) {
	if err := h.Insert(row); err != nil {
		return storage.RowID{}, err
	}
	return h.LastRowID(), nil
}

func (db *DB) execUpdate(st *sqlparse.UpdateStmt) (*Result, error) {
	t, err := db.lookup(st.Table)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	defer t.heap.Publish()
	schema := t.heap.Schema()
	layout := tableLayout(st.Table, schema)

	var filter exec.Expr
	if st.Where != nil {
		norm, err := normalizeForTable(st.Where, layout)
		if err != nil {
			return nil, err
		}
		if filter, err = plan.CompileExpr(norm, layout, db.funcs, "WHERE"); err != nil {
			return nil, err
		}
	}
	type setOp struct {
		idx int
		e   exec.Expr
	}
	sets := make([]setOp, 0, len(st.Set))
	for _, s := range st.Set {
		idx := schema.ColumnIndex(s.Column)
		if idx < 0 {
			return nil, fmt.Errorf("rdbms: column %q of relation %q does not exist", s.Column, st.Table)
		}
		norm, err := normalizeForTable(s.Value, layout)
		if err != nil {
			return nil, err
		}
		ce, err := plan.CompileExpr(norm, layout, db.funcs, "SET")
		if err != nil {
			return nil, err
		}
		sets = append(sets, setOp{idx: idx, e: ce})
	}

	// Phase 1: find matches and compute new rows (Halloween-safe).
	scan := exec.NewRowIDScan(t.heap, filter)
	defer scan.Close()
	type change struct {
		id  storage.RowID
		row storage.Row
	}
	var changes []change
	for {
		id, row, ok, err := scan.NextWithID()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		newRow := row.Clone()
		for _, s := range sets {
			v, err := s.e.Eval(row)
			if err != nil {
				return nil, err
			}
			v, err = coerceTo(v, schema.Cols[s.idx].Typ)
			if err != nil {
				return nil, err
			}
			newRow[s.idx] = v
		}
		changes = append(changes, change{id: id, row: newRow})
	}

	// Phase 2: apply with undo logging for statement atomicity.
	type undo struct {
		id  storage.RowID
		row storage.Row
	}
	var undoLog []undo
	for _, ch := range changes {
		old, err := t.heap.Update(ch.id, ch.row)
		if err != nil {
			for i := len(undoLog) - 1; i >= 0; i-- {
				_, _ = t.heap.Update(undoLog[i].id, undoLog[i].row)
			}
			return nil, err
		}
		undoLog = append(undoLog, undo{id: ch.id, row: old})
	}
	return &Result{RowsAffected: int64(len(changes))}, nil
}

func (db *DB) execDelete(st *sqlparse.DeleteStmt) (*Result, error) {
	t, err := db.lookup(st.Table)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	defer t.heap.Publish()
	layout := tableLayout(st.Table, t.heap.Schema())

	var filter exec.Expr
	if st.Where != nil {
		norm, err := normalizeForTable(st.Where, layout)
		if err != nil {
			return nil, err
		}
		if filter, err = plan.CompileExpr(norm, layout, db.funcs, "WHERE"); err != nil {
			return nil, err
		}
	}
	scan := exec.NewRowIDScan(t.heap, filter)
	defer scan.Close()
	var ids []storage.RowID
	for {
		id, _, ok, err := scan.NextWithID()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		ids = append(ids, id)
	}
	type undo struct {
		id  storage.RowID
		row storage.Row
	}
	var undoLog []undo
	for _, id := range ids {
		old, err := t.heap.Delete(id)
		if err != nil {
			for i := len(undoLog) - 1; i >= 0; i-- {
				_ = t.heap.Restore(undoLog[i].id, undoLog[i].row)
			}
			return nil, err
		}
		undoLog = append(undoLog, undo{id: id, row: old})
	}
	return &Result{RowsAffected: int64(len(ids))}, nil
}

// tableLayout builds a single-table layout (no statistics needed for DML
// compilation).
func tableLayout(name string, schema *storage.Schema) *plan.Layout {
	l := &plan.Layout{}
	for _, c := range schema.Cols {
		l.Cols = append(l.Cols, plan.LayoutCol{Table: strings.ToLower(name), Name: c.Name, Typ: c.Typ})
	}
	return l
}

// normalizeForTable qualifies bare refs against a one-table layout.
func normalizeForTable(e sqlparse.Expr, layout *plan.Layout) (sqlparse.Expr, error) {
	return plan.NormalizeRefs(e, layout)
}

func (db *DB) execCreateTable(st *sqlparse.CreateTableStmt) (*Result, error) {
	cols := make([]storage.Column, len(st.Columns))
	for i, c := range st.Columns {
		cols[i] = storage.Column{Name: c.Name, Typ: c.Typ, NotNull: c.NotNull}
	}
	err := db.CreateTable(st.Table, cols, st.IfNotExists)
	if err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// CreateTable creates a table programmatically (loaders use this directly).
func (db *DB) CreateTable(name string, cols []storage.Column, ifNotExists bool) error {
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[key]; exists {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("rdbms: relation %q already exists", name)
	}
	schema, err := storage.NewSchema(cols...)
	if err != nil {
		return err
	}
	db.tables[key] = &table{name: key, heap: storage.NewHeap(schema, db.pager)}
	db.BumpCatalogEpoch()
	return nil
}

func (db *DB) execDropTable(st *sqlparse.DropTableStmt) (*Result, error) {
	key := strings.ToLower(st.Table)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[key]; !ok {
		if st.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("rdbms: relation %q does not exist", st.Table)
	}
	delete(db.tables, key)
	db.BumpCatalogEpoch()
	return &Result{}, nil
}

func (db *DB) execAlterTable(st *sqlparse.AlterTableStmt) (*Result, error) {
	t, err := db.lookup(st.Table)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case st.AddColumn != nil:
		col := storage.Column{Name: st.AddColumn.Name, Typ: st.AddColumn.Typ}
		if st.AddColumn.NotNull && t.heap.NumRows() > 0 {
			return nil, fmt.Errorf("rdbms: cannot add NOT NULL column %q to non-empty table", col.Name)
		}
		col.NotNull = st.AddColumn.NotNull
		// AlterAddColumn swaps in a schema clone rather than mutating the
		// one pinned snapshots share (storage invariant 3).
		if err := t.heap.AlterAddColumn(col); err != nil {
			return nil, err
		}
		if err := t.heap.AddColumnData(); err != nil {
			return nil, err
		}
	case st.DropColumn != "":
		if t.heap.Schema().ColumnIndex(st.DropColumn) < 0 {
			return nil, fmt.Errorf("rdbms: column %q of relation %q does not exist", st.DropColumn, st.Table)
		}
		idx, err := t.heap.AlterDropColumn(st.DropColumn)
		if err != nil {
			return nil, err
		}
		if err := t.heap.DropColumnData(idx); err != nil {
			return nil, err
		}
	}
	// Schema changed; statistics are stale.
	t.stats.Store(nil)
	// Epoch before publish (storage invariant 4): any cached plan that
	// manages to pin the post-ALTER snapshot must fail its epoch re-check.
	db.BumpCatalogEpoch()
	t.heap.Publish()
	return &Result{}, nil
}

func (db *DB) execTruncate(st *sqlparse.TruncateStmt) (*Result, error) {
	t, err := db.lookup(st.Table)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.heap.Truncate()
	t.stats.Store(nil)
	db.BumpCatalogEpoch()
	t.heap.Publish()
	return &Result{}, nil
}

// Analyze recomputes optimizer statistics for a table (the SQL ANALYZE).
// The whole pass holds the write lock: Analyze rebuilds page summaries and
// FreezeColdPages restripes pages, both of which install new page
// versions. Readers are unaffected — they keep scanning the snapshot from
// the previous publish until the new one lands.
func (db *DB) Analyze(name string) error {
	t, err := db.lookup(name)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.stats.Store(storage.Analyze(t.heap))
	// ANALYZE doubles as the compaction trigger: cold full pages freeze
	// into column-striped segments (no-op without a segmenter).
	t.heap.FreezeColdPages()
	// New statistics can change plan choice; cached plans are stale. Bump
	// before publishing (storage invariant 4).
	db.BumpCatalogEpoch()
	t.heap.Publish()
	t.mu.Unlock()
	return nil
}

// ---------- Programmatic access for loaders and background workers ----------

// InsertRows bulk-appends rows under a single lock acquisition; the fast
// path all four benchmarked loaders use.
func (db *DB) InsertRows(name string, rows []storage.Row) error {
	t, err := db.lookup(name)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	defer t.heap.Publish()
	for _, r := range rows {
		if err := t.heap.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// ScanTable iterates the rows of the table's published snapshot — no lock,
// so it never blocks behind a writer. fn must not retain row slices;
// return false to stop.
func (db *DB) ScanTable(name string, fn func(id storage.RowID, row storage.Row) bool) error {
	t, err := db.lookup(name)
	if err != nil {
		return err
	}
	t.heap.CurrentSnapshot().Scan(fn)
	return nil
}

// UpdateRow atomically replaces a single row (the column materializer's
// unit of work, §3.1.4: each row-update is atomic, the whole pass is not).
func (db *DB) UpdateRow(name string, id storage.RowID, row storage.Row) error {
	t, err := db.lookup(name)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	defer t.heap.Publish()
	_, err = t.heap.Update(id, row)
	return err
}

// GetRow fetches one row by ID from the published snapshot; the returned
// row is a copy.
func (db *DB) GetRow(name string, id storage.RowID) (storage.Row, bool, error) {
	t, err := db.lookup(name)
	if err != nil {
		return nil, false, err
	}
	row, ok := t.heap.CurrentSnapshot().Get(id)
	if !ok {
		return nil, false, nil
	}
	return row.Clone(), true, nil
}

// TableNames lists tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TableSizeBytes reports the estimated stored size of a table's published
// snapshot.
func (db *DB) TableSizeBytes(name string) (int64, error) {
	t, err := db.lookup(name)
	if err != nil {
		return 0, err
	}
	return t.heap.CurrentSnapshot().SizeBytes(), nil
}

// TableRowCount reports the row count of a table's published snapshot.
func (db *DB) TableRowCount(name string) (int64, error) {
	t, err := db.lookup(name)
	if err != nil {
		return 0, err
	}
	return t.heap.CurrentSnapshot().NumRows(), nil
}

// TableSchema returns a copy of the table's published schema.
func (db *DB) TableSchema(name string) (*storage.Schema, error) {
	t, err := db.lookup(name)
	if err != nil {
		return nil, err
	}
	return t.heap.CurrentSnapshot().Schema().Clone(), nil
}

// TotalSizeBytes sums all table sizes (the database footprint for Table 3).
func (db *DB) TotalSizeBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var total int64
	for _, t := range db.tables {
		total += t.heap.CurrentSnapshot().SizeBytes()
	}
	return total
}

// FrozenPages sums the column-striped (frozen) page count across all
// tables — the segments_total figure of sinew_stats().
func (db *DB) FrozenPages() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var total int64
	for _, t := range db.tables {
		total += int64(t.heap.CurrentSnapshot().NumFrozenPages())
	}
	return total
}

// ---------- Session & snapshot telemetry ----------

// SessionEnter and SessionExit track logical client sessions (sinewd's
// session pool). The gauge feeds sinew_stats() and /metrics.
func (db *DB) SessionEnter() { db.sessions.Add(1) }

// SessionExit decrements the logical session gauge.
func (db *DB) SessionExit() { db.sessions.Add(-1) }

// SessionsActive reports the current logical session count.
func (db *DB) SessionsActive() int64 { return db.sessions.Load() }

// SnapshotStats reports the MVCC counters: snapshots currently pinned by
// in-flight statements, snapshot publishes to date (the global epoch
// clock), and pages cloned by copy-on-write. These survive Pager.Reset —
// they describe lifetime concurrency behavior, not one query.
func (db *DB) SnapshotStats() (open, epoch, cow int64) {
	return db.pager.SnapshotStats()
}
