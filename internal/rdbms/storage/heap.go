// Package storage implements the physical layer of the embedded RDBMS:
// heap tables organized into pages, a byte-accounting pager that models I/O,
// and per-column statistics for the optimizer.
//
// The heap is a row store in the style of Postgres: each row carries a small
// header plus a null bitmap (one bit per schema attribute), so NULLs in wide
// sparse schemas cost one bit, not a column width — the property §3.1.1 of
// the Sinew paper relies on when choosing Postgres as the substrate.
package storage

import (
	"fmt"
	"sync"

	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// Column describes one attribute of a table schema.
type Column struct {
	Name    string
	Typ     types.Type
	NotNull bool
}

// Schema is an ordered set of columns with name lookup.
type Schema struct {
	Cols   []Column
	byName map[string]int
}

// NewSchema builds a schema; duplicate column names are an error.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{Cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range s.Cols {
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("storage: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// ColumnIndex returns the position of name, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// AddColumn appends a column (ALTER TABLE ... ADD COLUMN).
func (s *Schema) AddColumn(c Column) error {
	if _, dup := s.byName[c.Name]; dup {
		return fmt.Errorf("storage: column %q already exists", c.Name)
	}
	s.byName[c.Name] = len(s.Cols)
	s.Cols = append(s.Cols, c)
	return nil
}

// DropColumn removes a column from the schema (ALTER TABLE ... DROP).
func (s *Schema) DropColumn(name string) error {
	i, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("storage: column %q does not exist", name)
	}
	s.Cols = append(s.Cols[:i], s.Cols[i+1:]...)
	delete(s.byName, name)
	for j := i; j < len(s.Cols); j++ {
		s.byName[s.Cols[j].Name] = j
	}
	return nil
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c, _ := NewSchema(s.Cols...)
	return c
}

// Row is one tuple; len(Row) always equals len(Schema.Cols) of its table.
type Row []types.Datum

// Clone deep-copies the row (datum payloads that alias memory — bytes,
// arrays — are shared; callers treat datums as immutable).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// rowsPerPage is the heap page grouping factor. Pages are the unit of I/O
// accounting; the value trades accounting granularity against bookkeeping.
const rowsPerPage = 128

// rowHeaderBytes models the fixed per-tuple header (Postgres: 23 bytes +
// alignment). The null bitmap is added per schema width.
const rowHeaderBytes = 24

// page groups rows for I/O accounting.
type page struct {
	rows  []Row
	bytes int64 // estimated on-disk footprint of live rows
	// sum is the page's skip summary (pageskip.go); nil when stale.
	sum *PageSummary
	// frozen is the page's column-striped form (segment.go); while set,
	// rows is nil and row-path readers materialize lazily from it.
	frozen *FrozenPage
	// shared marks the page as referenced by a published snapshot
	// (snapshot.go). Once set, no other field may be written: mutators go
	// through the writable*Page helpers, which install a fresh page struct
	// in the live table instead. Only the publisher writes this flag (under
	// the table write lock) and only mutators read it; snapshot readers
	// never touch it.
	shared bool
}

// Heap is a mutable row store for one table.
//
// Concurrency: Heap mutators are not internally synchronized; the rdbms
// layer serializes writers with its table locks. Readers do not need any
// lock: they pin an immutable HeapSnapshot (snapshot.go) published by the
// last committed statement. The pager it reports to is safe for
// concurrent use.
type Heap struct {
	schema *Schema
	pages  []*page
	nrows  int64
	bytes  int64
	pager  *Pager
	// summarizers maps column index -> attribute summarizer for per-page
	// skip summaries (pageskip.go).
	summarizers map[int]AttrSummarizer
	// segmenter stripes cold pages into column segments (segment.go);
	// frozen counts the pages currently in striped form.
	segmenter      ColumnSegmenter
	freezeMinPages int
	frozen         int
	// epoch counts publishes; snap holds the latest published snapshot
	// (snapshot.go).
	epoch uint64
	snap  snapPtr
}

// NewHeap creates an empty heap over schema, reporting I/O to pager
// (which may be nil for untracked scratch tables). The empty state is
// published so CurrentSnapshot is never nil.
func NewHeap(schema *Schema, pager *Pager) *Heap {
	h := &Heap{schema: schema, pager: pager}
	h.Publish()
	return h
}

// Schema returns the heap's schema (shared, not a copy).
func (h *Heap) Schema() *Schema { return h.schema }

// NumRows returns the live row count.
func (h *Heap) NumRows() int64 { return h.nrows }

// SizeBytes returns the estimated on-disk size of the table.
func (h *Heap) SizeBytes() int64 { return h.bytes }

// rowFootprint estimates the stored size of row under the current schema:
// header + null bitmap + non-null datum payloads.
func (h *Heap) rowFootprint(row Row) int64 {
	return rowFootprintIn(h.schema, row)
}

func rowFootprintIn(schema *Schema, row Row) int64 {
	n := int64(rowHeaderBytes) + int64((len(schema.Cols)+7)/8)
	for _, d := range row {
		n += d.SizeBytes()
	}
	return n
}

// Insert appends a row. The row must match the schema width; NOT NULL
// constraints are enforced here.
func (h *Heap) Insert(row Row) error {
	if len(row) != len(h.schema.Cols) {
		return fmt.Errorf("storage: row width %d does not match schema width %d", len(row), len(h.schema.Cols))
	}
	for i, c := range h.schema.Cols {
		if c.NotNull && row[i].IsNull() {
			return fmt.Errorf("storage: null value in column %q violates not-null constraint", c.Name)
		}
	}
	var p *page
	if n := len(h.pages); n > 0 && h.pages[n-1].frozen == nil && len(h.pages[n-1].rows) < rowsPerPage {
		p = h.writableTailPage()
	} else {
		p = &page{rows: make([]Row, 0, rowsPerPage), sum: newPageSummary()}
		h.pages = append(h.pages, p)
	}
	fp := h.rowFootprint(row)
	p.rows = append(p.rows, row)
	p.bytes += fp
	if p.sum != nil {
		h.noteRow(p.sum, row)
		if !p.sum.valid {
			p.sum = nil
		}
	}
	h.nrows++
	h.bytes += fp
	if h.pager != nil {
		h.pager.recordWrite(fp)
	}
	// Load-time compaction: once the heap is past the size threshold,
	// pages freeze as they fill (the write-hot tail stays row-form).
	if len(p.rows) == rowsPerPage && h.segmenter != nil && len(h.pages) >= h.freezeMinPages {
		h.freezePageAt(len(h.pages) - 1)
	}
	return nil
}

// LastRowID returns the address of the most recently inserted row; it is
// only meaningful immediately after Insert on a non-empty heap.
func (h *Heap) LastRowID() RowID {
	p := len(h.pages) - 1
	if p < 0 {
		return RowID{Page: -1, Slot: -1}
	}
	return RowID{Page: p, Slot: len(h.pages[p].rows) - 1}
}

// RowID addresses a row stably across updates (not deletes).
type RowID struct {
	Page int
	Slot int
}

// Scan iterates all live rows in heap order, charging page reads to the
// pager. fn may not retain the row slice across calls unless it clones.
// Returning false from fn stops the scan early (remaining pages unread).
func (h *Heap) Scan(fn func(id RowID, row Row) bool) {
	scanPages(h.pages, h.pager, fn)
}

// scanPages is Scan over an explicit page table (shared by the live heap
// and snapshots).
func scanPages(pages []*page, pager *Pager, fn func(id RowID, row Row) bool) {
	for pi, p := range pages {
		if pager != nil {
			pager.recordRead(p.bytes)
		}
		for si, r := range pageRows(p) {
			if r == nil {
				continue // deleted
			}
			if !fn(RowID{Page: pi, Slot: si}, r) {
				return
			}
		}
	}
}

// HeapIter is a pull-style cursor over live rows in heap order. Page reads
// accumulate locally and are flushed to the pager in one batch when the
// scan reaches the end or the iterator is closed — callers that may stop
// early (LIMIT) must Close the iterator or the bytes it touched are never
// recorded.
type HeapIter struct {
	pages   []*page
	pager   *Pager
	page    int
	slot    int
	pending int64 // page bytes entered but not yet reported to the pager
	read    int64 // total bytes this iterator has charged
}

// Iterate returns a cursor positioned before the first row. The cursor
// captures the page table at creation, so a cursor made from a snapshot
// never observes later writes.
func (h *Heap) Iterate() *HeapIter { return &HeapIter{pages: h.pages, pager: h.pager} }

// Next returns the next live row, or ok=false at the end.
func (it *HeapIter) Next() (RowID, Row, bool) {
	for it.page < len(it.pages) {
		p := it.pages[it.page]
		if it.slot == 0 {
			it.pending += p.bytes
		}
		rows := pageRows(p)
		for it.slot < len(rows) {
			s := it.slot
			it.slot++
			if rows[s] != nil {
				return RowID{Page: it.page, Slot: s}, rows[s], true
			}
		}
		it.page++
		it.slot = 0
	}
	it.flush()
	return RowID{}, nil, false
}

// flush reports accumulated page bytes to the pager (idempotent).
func (it *HeapIter) flush() {
	if it.pending == 0 {
		return
	}
	if it.pager != nil {
		it.pager.recordRead(it.pending)
	}
	it.read += it.pending
	it.pending = 0
}

// Close finalizes pager accounting for a scan abandoned before the end
// (LIMIT, error); safe to call more than once and after exhaustion.
func (it *HeapIter) Close() { it.flush() }

// BytesRead reports the bytes this iterator has charged to the pager so
// far (flushed bytes only).
func (it *HeapIter) BytesRead() int64 { return it.read }

// NumPages returns the current page count (the unit partitions divide).
func (h *Heap) NumPages() int { return len(h.pages) }

// PageRange is a half-open contiguous run of pages [Start, End) — the unit
// of work of a partitioned parallel scan.
type PageRange struct {
	Start, End int
}

// Partitions splits the heap's pages into at most n near-equal contiguous
// ranges (fewer when the heap has fewer pages than n). An empty heap
// yields no partitions.
func (h *Heap) Partitions(n int) []PageRange {
	return partitionRanges(len(h.pages), n)
}

// partitionRanges splits a page count into near-equal contiguous ranges.
func partitionRanges(pages, n int) []PageRange {
	if n < 1 {
		n = 1
	}
	if n > pages {
		n = pages
	}
	out := make([]PageRange, 0, n)
	for i := 0; i < n; i++ {
		start := pages * i / n
		end := pages * (i + 1) / n
		if start < end {
			out = append(out, PageRange{Start: start, End: end})
		}
	}
	return out
}

// HeapChunkIter reads live rows of a page range in bulk — the storage-side
// feeder of the batch executor. Like HeapIter it accumulates page-read
// bytes locally and flushes them to the pager at the end of the range or
// on Close, and it tracks bytes per iterator so a partitioned scan can
// report byte accounting per partition.
type HeapChunkIter struct {
	pages   []*page
	pager   *Pager
	page    int
	end     int
	slot    int
	pending int64
	read    int64
	// skip, when set, is consulted at each page boundary: returning true
	// for a page with a usable summary skips the whole page, charging no
	// read bytes (that is the I/O win page summaries buy).
	skip           func(*PageSummary) bool
	skipped        int64 // pages skipped and already reported to the pager
	pendingSkipped int64 // pages skipped but not yet reported
	// frozen pages delivered striped via ReadPage, pending pager report.
	pendingSegScanned int64
}

// SetSkip installs a page-skip predicate; must be called before the first
// ReadRows. The predicate must return true only when the page summary
// proves no live row can satisfy the scan's filter.
func (it *HeapChunkIter) SetSkip(f func(*PageSummary) bool) { it.skip = f }

// PagesSkipped reports how many whole pages the predicate eliminated.
func (it *HeapChunkIter) PagesSkipped() int64 { return it.skipped + it.pendingSkipped }

// IterateRange returns a chunk cursor over pages [start, end); end is
// clamped to the page count. Like Iterate, the cursor captures the page
// table at creation.
func (h *Heap) IterateRange(start, end int) *HeapChunkIter {
	return newChunkIter(h.pages, h.pager, start, end)
}

func newChunkIter(pages []*page, pager *Pager, start, end int) *HeapChunkIter {
	if start < 0 {
		start = 0
	}
	if end > len(pages) {
		end = len(pages)
	}
	return &HeapChunkIter{pages: pages, pager: pager, page: start, end: end, slot: 0}
}

// ReadRows fills dst with the next live rows in heap order and returns the
// count; 0 means the range is exhausted. Rows are shared with the heap and
// must be treated as immutable.
func (it *HeapChunkIter) ReadRows(dst []Row) int {
	n := 0
	for n < len(dst) && it.page < it.end {
		p := it.pages[it.page]
		if it.slot == 0 {
			if it.skip != nil && p.sum.usable() && it.skip(p.sum) {
				it.pendingSkipped++
				it.page++
				continue
			}
			it.pending += p.bytes
		}
		rows := pageRows(p)
		for it.slot < len(rows) && n < len(dst) {
			if r := rows[it.slot]; r != nil {
				dst[n] = r
				n++
			}
			it.slot++
		}
		if it.slot >= len(rows) {
			it.page++
			it.slot = 0
		}
	}
	if n == 0 {
		it.flush()
	}
	return n
}

func (it *HeapChunkIter) flush() {
	if it.pendingSkipped > 0 {
		if it.pager != nil {
			it.pager.recordPagesSkipped(it.pendingSkipped)
		}
		it.skipped += it.pendingSkipped
		it.pendingSkipped = 0
	}
	if it.pendingSegScanned > 0 {
		if it.pager != nil {
			it.pager.recordSegScanned(it.pendingSegScanned)
		}
		it.pendingSegScanned = 0
	}
	if it.pending == 0 {
		return
	}
	if it.pager != nil {
		it.pager.recordRead(it.pending)
	}
	it.read += it.pending
	it.pending = 0
}

// Close finalizes pager accounting for an abandoned range; idempotent.
func (it *HeapChunkIter) Close() { it.flush() }

// BytesRead reports the bytes this partition cursor has charged so far.
func (it *HeapChunkIter) BytesRead() int64 { return it.read }

// Get fetches a single row by ID, charging only that row's bytes (a point
// read, as through an index).
func (h *Heap) Get(id RowID) (Row, bool) {
	return getPageRow(h.pages, h.schema, h.pager, id)
}

func getPageRow(pages []*page, schema *Schema, pager *Pager, id RowID) (Row, bool) {
	if id.Page < 0 || id.Page >= len(pages) {
		return nil, false
	}
	rows := pageRows(pages[id.Page])
	if id.Slot < 0 || id.Slot >= len(rows) || rows[id.Slot] == nil {
		return nil, false
	}
	if pager != nil {
		pager.recordRead(rowFootprintIn(schema, rows[id.Slot]))
	}
	return rows[id.Slot], true
}

// Update atomically replaces the row at id. It returns the previous row for
// undo logging.
func (h *Heap) Update(id RowID, row Row) (Row, error) {
	if len(row) != len(h.schema.Cols) {
		return nil, fmt.Errorf("storage: row width %d does not match schema width %d", len(row), len(h.schema.Cols))
	}
	p, old, err := h.slot(id)
	if err != nil {
		return nil, err
	}
	oldFP, newFP := h.rowFootprint(old), h.rowFootprint(row)
	p.rows[id.Slot] = row
	p.bytes += newFP - oldFP
	p.sum = nil // attr set / extrema may have shrunk; rebuilt by ANALYZE
	h.bytes += newFP - oldFP
	if h.pager != nil {
		h.pager.recordWrite(newFP)
	}
	return old, nil
}

// Delete removes the row at id, returning it for undo logging.
func (h *Heap) Delete(id RowID) (Row, error) {
	p, old, err := h.slot(id)
	if err != nil {
		return nil, err
	}
	fp := h.rowFootprint(old)
	p.rows[id.Slot] = nil
	p.bytes -= fp
	p.sum = nil
	h.bytes -= fp
	h.nrows--
	if h.pager != nil {
		h.pager.recordWrite(int64(rowHeaderBytes))
	}
	return old, nil
}

// Restore reinstates a previously deleted row at id (undo of Delete).
func (h *Heap) Restore(id RowID, row Row) error {
	if id.Page < 0 || id.Page >= len(h.pages) {
		return fmt.Errorf("storage: restore: bad page %d", id.Page)
	}
	p, err := h.writableRowPage(id.Page)
	if err != nil {
		return err
	}
	if id.Slot < 0 || id.Slot >= len(p.rows) {
		return fmt.Errorf("storage: restore: bad slot %d", id.Slot)
	}
	if p.rows[id.Slot] != nil {
		return fmt.Errorf("storage: restore: slot %d.%d is occupied", id.Page, id.Slot)
	}
	fp := h.rowFootprint(row)
	p.rows[id.Slot] = row
	p.bytes += fp
	h.bytes += fp
	h.nrows++
	p.sum = nil
	return nil
}

// slot resolves a row for mutation. The page comes back in mutable row
// form: frozen pages un-freeze and snapshot-shared pages are cloned
// first, so writers never touch storage a concurrent reader sees.
func (h *Heap) slot(id RowID) (*page, Row, error) {
	if id.Page < 0 || id.Page >= len(h.pages) {
		return nil, nil, fmt.Errorf("storage: bad page %d", id.Page)
	}
	p, err := h.writableRowPage(id.Page)
	if err != nil {
		return nil, nil, err
	}
	if id.Slot < 0 || id.Slot >= len(p.rows) || p.rows[id.Slot] == nil {
		return nil, nil, fmt.Errorf("storage: no live row at %d.%d", id.Page, id.Slot)
	}
	return p, p.rows[id.Slot], nil
}

// AddColumnData extends every row with a NULL for a newly added column and
// adjusts footprints (the null bitmap may grow by a byte). The rewrite is
// copy-on-write end to end: every page is rebuilt from fresh row slices
// (frozen pages materialize through their shared cache, read-only), so
// snapshot readers pinned to the pre-ALTER epoch keep seeing the old
// shape. Column indices do not shift, so skip summaries carry over
// (cloned — the tail page's summary is mutated by later inserts).
func (h *Heap) AddColumnData() error {
	rowsByPage, unfroze, err := h.materializeAllRows()
	if err != nil {
		return err
	}
	for pi, rows := range rowsByPage {
		old := h.pages[pi]
		np := &page{rows: make([]Row, len(rows), max(rowsPerPage, len(rows))), sum: old.sum.clone()}
		for i, r := range rows {
			if r == nil {
				continue
			}
			nr := make(Row, len(r)+1)
			copy(nr, r)
			nr[len(r)] = types.Datum{Null: true}
			np.rows[i] = nr
			np.bytes += h.rowFootprint(nr)
		}
		h.pages[pi] = np
	}
	h.finishRewrite(unfroze)
	return nil
}

// DropColumnData removes column idx from every row, rebuilding every page
// copy-on-write (see AddColumnData). Summaries are dropped: column
// indices shift, so summaries keyed by index are stale.
func (h *Heap) DropColumnData(idx int) error {
	rowsByPage, unfroze, err := h.materializeAllRows()
	if err != nil {
		return err
	}
	for pi, rows := range rowsByPage {
		np := &page{rows: make([]Row, len(rows), max(rowsPerPage, len(rows)))}
		for i, r := range rows {
			if r == nil {
				continue
			}
			nr := make(Row, 0, len(r)-1)
			nr = append(nr, r[:idx]...)
			nr = append(nr, r[idx+1:]...)
			np.rows[i] = nr
			np.bytes += h.rowFootprint(nr)
		}
		h.pages[pi] = np
	}
	h.remapSummarizersOnDrop(idx)
	h.finishRewrite(unfroze)
	return nil
}

// materializeAllRows returns every page's row-form view without mutating
// any page (phase 1 of a schema rewrite: errors surface before the heap
// changes shape). unfroze counts the frozen pages the rewrite will retire.
func (h *Heap) materializeAllRows() (rowsByPage [][]Row, unfroze int, err error) {
	rowsByPage = make([][]Row, len(h.pages))
	for i, p := range h.pages {
		if p.frozen != nil {
			rows, err := p.frozen.materializeRows()
			if err != nil {
				return nil, 0, err
			}
			rowsByPage[i] = rows
			unfroze++
			continue
		}
		rowsByPage[i] = p.rows
	}
	return rowsByPage, unfroze, nil
}

// finishRewrite settles counters after a whole-heap page rewrite: all
// pages are row-form again and byte totals are recomputed.
func (h *Heap) finishRewrite(unfroze int) {
	h.frozen = 0
	if unfroze > 0 && h.pager != nil {
		h.pager.recordSegUnfrozen(int64(unfroze))
	}
	h.recomputeBytes()
}

func (h *Heap) recomputeBytes() {
	h.bytes = 0
	for _, p := range h.pages {
		h.bytes += p.bytes
	}
}

// Truncate discards all rows.
func (h *Heap) Truncate() {
	h.pages = nil
	h.nrows = 0
	h.bytes = 0
	h.frozen = 0
}

// Pager models storage I/O by counting bytes read and written. The harness
// converts byte counts into an effective scan time under a configured
// bandwidth (DESIGN.md §2): engines whose per-tuple CPU cost is low become
// bandwidth-bound exactly as Sinew does on the paper's 40 GB dataset.
type Pager struct {
	mu           sync.Mutex
	bytesRead    int64
	bytesWritten int64
	// Execution counters (per-query when callers Reset between queries):
	// whole pages eliminated by skip summaries, and parallel-pipeline
	// workers launched.
	pagesSkipped    int64
	parallelWorkers int64
	// Segment counters: frozen pages scanned striped, and frozen pages
	// un-frozen back to rows by writes.
	segScanned  int64
	segUnfrozen int64
	// Selection-vector execution counters: frozen pages eliminated by
	// segment zone maps, selection-carrying batches emitted by striped
	// scans, and striped scans run under a parallel gather.
	zoneSkipped     int64
	selBatches      int64
	parallelStriped int64
	// Order-sensitive operator counters: input batches accumulated by batch
	// sorts, rows discarded on arrival by bounded Top-N heaps, and
	// partitions merged by sorted-merge gathers.
	sortBatches       int64
	topnShortCircuits int64
	sortedMergeParts  int64
	// Snapshot counters (snapshot.go): snapshotsOpen is a gauge of reader
	// pins currently held, snapshotPublishes counts published versions
	// (the global snapshot_epoch), and pagesCoW counts page version splits
	// caused by writes to snapshot-shared pages.
	snapshotsOpen     int64
	snapshotPublishes int64
	pagesCoW          int64
}

// NewPager returns a zeroed pager.
func NewPager() *Pager { return &Pager{} }

func (p *Pager) recordRead(n int64) {
	p.mu.Lock()
	p.bytesRead += n
	p.mu.Unlock()
}

func (p *Pager) recordWrite(n int64) {
	p.mu.Lock()
	p.bytesWritten += n
	p.mu.Unlock()
}

func (p *Pager) recordPagesSkipped(n int64) {
	p.mu.Lock()
	p.pagesSkipped += n
	p.mu.Unlock()
}

func (p *Pager) recordParallelWorkers(n int64) {
	p.mu.Lock()
	p.parallelWorkers += n
	p.mu.Unlock()
}

func (p *Pager) recordSegScanned(n int64) {
	p.mu.Lock()
	p.segScanned += n
	p.mu.Unlock()
}

func (p *Pager) recordSegUnfrozen(n int64) {
	p.mu.Lock()
	p.segUnfrozen += n
	p.mu.Unlock()
}

func (p *Pager) recordZoneSkipped(n int64) {
	p.mu.Lock()
	p.zoneSkipped += n
	p.mu.Unlock()
}

func (p *Pager) recordSelBatches(n int64) {
	p.mu.Lock()
	p.selBatches += n
	p.mu.Unlock()
}

func (p *Pager) recordParallelStriped(n int64) {
	p.mu.Lock()
	p.parallelStriped += n
	p.mu.Unlock()
}

func (p *Pager) recordSortBatches(n int64) {
	p.mu.Lock()
	p.sortBatches += n
	p.mu.Unlock()
}

func (p *Pager) recordTopNShortCircuits(n int64) {
	p.mu.Lock()
	p.topnShortCircuits += n
	p.mu.Unlock()
}

func (p *Pager) recordSortedMergeParts(n int64) {
	p.mu.Lock()
	p.sortedMergeParts += n
	p.mu.Unlock()
}

func (p *Pager) recordSnapshotPin(delta int64) {
	p.mu.Lock()
	p.snapshotsOpen += delta
	p.mu.Unlock()
}

func (p *Pager) recordSnapshotPublish() {
	p.mu.Lock()
	p.snapshotPublishes++
	p.mu.Unlock()
}

func (p *Pager) recordPageCoW(n int64) {
	p.mu.Lock()
	p.pagesCoW += n
	p.mu.Unlock()
}

// SnapshotStats returns the snapshot counters: reader pins currently open
// (a gauge), snapshots published since the database opened (the global
// snapshot epoch), and page version splits caused by copy-on-write.
// Unlike the per-query counters these survive Reset: the gauge tracks
// outstanding pins and the epoch is monotonic by design.
func (p *Pager) SnapshotStats() (open, epoch, pagesCoW int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshotsOpen, p.snapshotPublishes, p.pagesCoW
}

// SortStats returns the order-sensitive operator counters: batches
// accumulated by batch sorts, rows discarded on arrival by bounded Top-N
// heaps, and partitions merged by sorted-merge gathers since the last
// Reset.
func (p *Pager) SortStats() (sortBatches, topnShortCircuits, sortedMergeParts int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sortBatches, p.topnShortCircuits, p.sortedMergeParts
}

// SelStats returns the selection-vector execution counters: frozen pages
// eliminated by segment zone maps, selection-carrying batches emitted by
// striped scans, and striped scans run under a parallel gather since the
// last Reset.
func (p *Pager) SelStats() (zoneSkipped, selBatches, parallelStriped int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.zoneSkipped, p.selBatches, p.parallelStriped
}

// SegStats returns the segment execution counters: frozen pages scanned
// striped and frozen pages un-frozen by writes since the last Reset.
func (p *Pager) SegStats() (segScanned, segUnfrozen int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.segScanned, p.segUnfrozen
}

// Stats returns cumulative bytes read and written.
func (p *Pager) Stats() (read, written int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytesRead, p.bytesWritten
}

// ExecStats returns the execution counters: pages eliminated by skip
// summaries and parallel workers launched since the last Reset.
func (p *Pager) ExecStats() (pagesSkipped, parallelWorkers int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pagesSkipped, p.parallelWorkers
}

// Reset zeroes the counters (between benchmark phases).
func (p *Pager) Reset() {
	p.mu.Lock()
	p.bytesRead, p.bytesWritten = 0, 0
	p.pagesSkipped, p.parallelWorkers = 0, 0
	p.segScanned, p.segUnfrozen = 0, 0
	p.zoneSkipped, p.selBatches, p.parallelStriped = 0, 0, 0
	p.sortBatches, p.topnShortCircuits, p.sortedMergeParts = 0, 0, 0
	p.mu.Unlock()
}
