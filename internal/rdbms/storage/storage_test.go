package storage

import (
	"fmt"
	"testing"

	"github.com/sinewdata/sinew/internal/rdbms/types"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "id", Typ: types.Int, NotNull: true},
		Column{Name: "name", Typ: types.Text},
		Column{Name: "score", Typ: types.Float},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.ColumnIndex("name") != 1 || s.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex")
	}
	if _, err := NewSchema(Column{Name: "a"}, Column{Name: "a"}); err == nil {
		t.Error("duplicate columns should error")
	}
	if err := s.AddColumn(Column{Name: "extra", Typ: types.Bool}); err != nil {
		t.Fatal(err)
	}
	if s.ColumnIndex("extra") != 3 {
		t.Error("added column index")
	}
	if err := s.AddColumn(Column{Name: "extra"}); err == nil {
		t.Error("re-adding column should error")
	}
	if err := s.DropColumn("name"); err != nil {
		t.Fatal(err)
	}
	if s.ColumnIndex("name") != -1 || s.ColumnIndex("score") != 1 || s.ColumnIndex("extra") != 2 {
		t.Error("indices after drop")
	}
	if err := s.DropColumn("name"); err == nil {
		t.Error("double drop should error")
	}
}

func mkRow(id int64, name string, score float64) Row {
	return Row{types.NewInt(id), types.NewText(name), types.NewFloat(score)}
}

func TestHeapInsertScanCount(t *testing.T) {
	h := NewHeap(testSchema(t), nil)
	for i := 0; i < 300; i++ { // spans multiple pages (128 rows/page)
		if err := h.Insert(mkRow(int64(i), fmt.Sprintf("n%d", i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumRows() != 300 {
		t.Errorf("rows = %d", h.NumRows())
	}
	var seen int
	h.Scan(func(_ RowID, r Row) bool {
		seen++
		return true
	})
	if seen != 300 {
		t.Errorf("scanned = %d", seen)
	}
	// Early-exit scan.
	seen = 0
	h.Scan(func(_ RowID, _ Row) bool { seen++; return seen < 10 })
	if seen != 10 {
		t.Errorf("early exit = %d", seen)
	}
}

func TestHeapConstraints(t *testing.T) {
	h := NewHeap(testSchema(t), nil)
	if err := h.Insert(Row{types.NewInt(1)}); err == nil {
		t.Error("short row should error")
	}
	if err := h.Insert(Row{types.NewNull(types.Int), types.NewText("x"), types.NewFloat(1)}); err == nil {
		t.Error("NOT NULL violation should error")
	}
}

func TestHeapUpdateDeleteRestore(t *testing.T) {
	h := NewHeap(testSchema(t), nil)
	for i := 0; i < 5; i++ {
		h.Insert(mkRow(int64(i), "x", 0))
	}
	id := RowID{Page: 0, Slot: 2}
	old, err := h.Update(id, mkRow(2, "updated", 9))
	if err != nil || old[1].S != "x" {
		t.Fatalf("update: %v %v", old, err)
	}
	got, ok := h.Get(id)
	if !ok || got[1].S != "updated" {
		t.Errorf("get after update = %v", got)
	}
	deleted, err := h.Delete(id)
	if err != nil || deleted[1].S != "updated" {
		t.Fatalf("delete: %v %v", deleted, err)
	}
	if h.NumRows() != 4 {
		t.Errorf("rows after delete = %d", h.NumRows())
	}
	if _, ok := h.Get(id); ok {
		t.Error("deleted row should be gone")
	}
	if _, err := h.Update(id, mkRow(2, "z", 0)); err == nil {
		t.Error("update of deleted row should error")
	}
	if err := h.Restore(id, deleted); err != nil {
		t.Fatal(err)
	}
	if h.NumRows() != 5 {
		t.Errorf("rows after restore = %d", h.NumRows())
	}
	if err := h.Restore(id, deleted); err == nil {
		t.Error("restore into occupied slot should error")
	}
}

func TestHeapIterSkipsDeleted(t *testing.T) {
	h := NewHeap(testSchema(t), nil)
	for i := 0; i < 10; i++ {
		h.Insert(mkRow(int64(i), "x", 0))
	}
	h.Delete(RowID{Page: 0, Slot: 3})
	h.Delete(RowID{Page: 0, Slot: 7})
	it := h.Iterate()
	var ids []int64
	for {
		_, r, ok := it.Next()
		if !ok {
			break
		}
		ids = append(ids, r[0].I)
	}
	if len(ids) != 8 {
		t.Errorf("iterated = %v", ids)
	}
	for _, id := range ids {
		if id == 3 || id == 7 {
			t.Errorf("deleted row %d visible", id)
		}
	}
}

func TestLastRowID(t *testing.T) {
	h := NewHeap(testSchema(t), nil)
	if h.LastRowID().Page != -1 {
		t.Error("empty heap LastRowID")
	}
	for i := 0; i < 130; i++ { // crosses a page boundary
		h.Insert(mkRow(int64(i), "x", 0))
	}
	id := h.LastRowID()
	row, ok := h.Get(id)
	if !ok || row[0].I != 129 {
		t.Errorf("last row = %v %v", row, ok)
	}
}

func TestSizeAccountingAndNullBitmap(t *testing.T) {
	h := NewHeap(testSchema(t), nil)
	h.Insert(mkRow(1, "abc", 1.5))
	full := h.SizeBytes()
	h2 := NewHeap(testSchema(t), nil)
	h2.Insert(Row{types.NewInt(1), types.NewNull(types.Text), types.NewNull(types.Float)})
	sparse := h2.SizeBytes()
	if sparse >= full {
		t.Errorf("NULLs should be nearly free: sparse %d vs full %d", sparse, full)
	}
	// The difference is exactly the non-null payloads (text hdr+3, float 8).
	if full-sparse != (4+3)+8 {
		t.Errorf("delta = %d", full-sparse)
	}
}

func TestAddDropColumnData(t *testing.T) {
	h := NewHeap(testSchema(t), nil)
	for i := 0; i < 3; i++ {
		h.Insert(mkRow(int64(i), "x", 1))
	}
	h.Schema().AddColumn(Column{Name: "new", Typ: types.Bool})
	h.AddColumnData()
	h.Scan(func(_ RowID, r Row) bool {
		if len(r) != 4 || !r[3].IsNull() {
			t.Errorf("row = %v", r)
		}
		return true
	})
	idx := h.Schema().ColumnIndex("name")
	h.Schema().DropColumn("name")
	h.DropColumnData(idx)
	h.Scan(func(_ RowID, r Row) bool {
		if len(r) != 3 || r[1].Typ != types.Float {
			t.Errorf("row after drop = %v", r)
		}
		return true
	})
}

func TestPagerAccounting(t *testing.T) {
	p := NewPager()
	h := NewHeap(testSchema(t), p)
	for i := 0; i < 10; i++ {
		h.Insert(mkRow(int64(i), "hello", 1))
	}
	_, w := p.Stats()
	if w <= 0 {
		t.Error("writes not recorded")
	}
	p.Reset()
	h.Scan(func(_ RowID, _ Row) bool { return true })
	r, _ := p.Stats()
	if r != h.SizeBytes() {
		t.Errorf("scan read %d bytes, heap size %d", r, h.SizeBytes())
	}
}

func TestAnalyzeStats(t *testing.T) {
	h := NewHeap(testSchema(t), nil)
	for i := 0; i < 1000; i++ {
		name := types.NewText(fmt.Sprintf("name%d", i%10)) // 10 distinct, skewed below
		if i%2 == 0 {
			name = types.NewText("common")
		}
		score := types.NewFloat(float64(i))
		if i%5 == 0 {
			score = types.NewNull(types.Float)
		}
		h.Insert(Row{types.NewInt(int64(i)), name, score})
	}
	stats := Analyze(h)
	if stats.RowCount != 1000 {
		t.Fatalf("rowcount = %d", stats.RowCount)
	}
	id := stats.Columns["id"]
	if id.NDistinct != 1000 || id.NullCount != 0 {
		t.Errorf("id stats = %+v", id)
	}
	if !id.HasMinMax || id.Min.I != 0 || id.Max.I != 999 {
		t.Errorf("id min/max = %v %v", id.Min, id.Max)
	}
	name := stats.Columns["name"]
	// Odd rows cycle name1/3/5/7/9 (5 values); even rows are "common".
	if name.NDistinct != 6 {
		t.Errorf("name ndistinct = %d", name.NDistinct)
	}
	if len(name.MCVs) == 0 || name.MCVs[0].Val.S != "common" || name.MCVs[0].Freq < 0.45 {
		t.Errorf("name MCVs = %+v", name.MCVs)
	}
	score := stats.Columns["score"]
	if score.NullCount != 200 {
		t.Errorf("score nulls = %d", score.NullCount)
	}
}

func TestAnalyzeEmptyTable(t *testing.T) {
	stats := Analyze(NewHeap(testSchema(t), nil))
	if stats.RowCount != 0 || len(stats.Columns) != 3 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestRowFootprintTracksUpdates(t *testing.T) {
	h := NewHeap(testSchema(t), nil)
	h.Insert(mkRow(1, "short", 1))
	before := h.SizeBytes()
	h.Update(RowID{0, 0}, mkRow(1, "a much longer name value", 1))
	if h.SizeBytes() <= before {
		t.Error("size should grow with a longer value")
	}
	h.Delete(RowID{0, 0})
	if h.SizeBytes() != 0 {
		t.Errorf("size after delete = %d", h.SizeBytes())
	}
}
