package storage

import (
	"sort"

	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// This file implements per-page skip summaries: for each heap page, a small
// sorted set of the Sinew attribute IDs appearing in its serialized-column
// records (§4.1 makes presence testable from the header alone) plus min/max
// ranges for physical scalar columns. A selection on a sparse virtual key
// can then skip whole pages without deserializing a single record header,
// and a range predicate on a physical column can skip pages whose extrema
// exclude it — the structure-aware analogue of the per-column statistics
// Sinew keeps in its catalog (§3.1.1).
//
// Summaries are maintained incrementally on Insert, invalidated page-local
// by Update/Delete/Restore (a deletion can shrink the true attr set, so the
// stale summary may no longer be a superset), and rebuilt wholesale by
// ANALYZE. An invalid summary is never used to skip — readers degrade to a
// full page read, so correctness never depends on summary freshness.

// AttrSummarizer reports the attribute IDs present in one column value of a
// row (for Sinew reservoirs: the header's attr IDs). Returning ok=false
// marks the value unsummarizable and invalidates the page summary for the
// column's pages. NULLs are never passed in.
type AttrSummarizer func(d types.Datum) (ids []uint32, ok bool)

// colRange tracks the extrema of one physical scalar column within a page.
type colRange struct {
	min, max types.Datum
	ok       bool // at least one non-null value seen
	bad      bool // incomparable values; range unusable
}

// PageSummary is the skip summary of one heap page. Readers access it only
// through methods that return conservatively ("cannot prove") whenever the
// summary is invalid or the column untracked.
type PageSummary struct {
	valid  bool
	attrs  map[int][]uint32 // column index -> sorted attr IDs present
	ranges map[int]*colRange
	zones  map[int]map[uint32]AttrZone // column index -> attr ID -> zone map
}

func newPageSummary() *PageSummary {
	return &PageSummary{
		valid:  true,
		attrs:  make(map[int][]uint32),
		ranges: make(map[int]*colRange),
	}
}

func (s *PageSummary) usable() bool { return s != nil && s.valid }

// LacksAllAttrs reports whether the summary proves that none of ids appears
// in column col anywhere on the page. False means "present or unknown".
func (s *PageSummary) LacksAllAttrs(col int, ids []uint32) bool {
	if !s.usable() {
		return false
	}
	set, tracked := s.attrs[col]
	if !tracked {
		return false
	}
	for _, id := range ids {
		i := sort.Search(len(set), func(j int) bool { return set[j] >= id })
		if i < len(set) && set[i] == id {
			return false
		}
	}
	return true
}

// ColRange returns the min/max of column col on the page, when known.
func (s *PageSummary) ColRange(col int) (min, max types.Datum, ok bool) {
	if !s.usable() {
		return types.Datum{}, types.Datum{}, false
	}
	r, tracked := s.ranges[col]
	if !tracked || r.bad || !r.ok {
		return types.Datum{}, types.Datum{}, false
	}
	return r.min, r.max, true
}

// AttrZone returns the zone map of attribute id within column col, when
// the page is frozen and its segment footer recorded one. ok=false means
// "no zone known" — callers must not skip on it.
func (s *PageSummary) AttrZone(col int, id uint32) (AttrZone, bool) {
	if !s.usable() {
		return AttrZone{}, false
	}
	z, ok := s.zones[col][id]
	return z, ok
}

// setZones installs the zone maps of one segment-striped column.
func (s *PageSummary) setZones(col int, zs []AttrZone) {
	if len(zs) == 0 {
		return
	}
	if s.zones == nil {
		s.zones = make(map[int]map[uint32]AttrZone)
	}
	m := make(map[uint32]AttrZone, len(zs))
	for _, z := range zs {
		m[z.ID] = z
	}
	s.zones[col] = m
}

// attachZones copies the per-attribute zone maps out of a frozen page's
// segment columns into the summary (freeze time and ANALYZE rebuilds).
func (s *PageSummary) attachZones(fp *FrozenPage) {
	if !s.usable() || fp == nil {
		return
	}
	for j := range fp.cols {
		if zm, ok := fp.cols[j].Seg.(ZoneMapped); ok {
			s.setZones(j, zm.AttrZones())
		}
	}
}

// insertAttr adds id to the sorted set for col.
func (s *PageSummary) insertAttr(col int, id uint32) {
	set := s.attrs[col]
	i := sort.Search(len(set), func(j int) bool { return set[j] >= id })
	if i < len(set) && set[i] == id {
		return
	}
	set = append(set, 0)
	copy(set[i+1:], set[i:])
	set[i] = id
	s.attrs[col] = set
}

// rangeTracked reports whether a column type participates in min/max
// tracking (orderable scalars only).
func rangeTracked(t types.Type) bool {
	return t == types.Int || t == types.Float || t == types.Text
}

// noteRow folds one row into the summary (insert path and rebuild).
func (h *Heap) noteRow(s *PageSummary, row Row) {
	h.noteRowExcept(s, row, nil)
}

// noteRowExcept is noteRow with the attribute summarizers suppressed for
// the columns in skipAttrs (freeze-time summaries take those columns'
// attribute sets from the segment footer instead of per-record parses).
// Range tracking is unaffected.
func (h *Heap) noteRowExcept(s *PageSummary, row Row, skipAttrs map[int]bool) {
	if !s.valid {
		return
	}
	for col, fn := range h.summarizers {
		if col >= len(row) || skipAttrs[col] {
			continue
		}
		d := row[col]
		if d.IsNull() {
			continue
		}
		ids, ok := fn(d)
		if !ok {
			s.valid = false
			return
		}
		for _, id := range ids {
			s.insertAttr(col, id)
		}
	}
	for col, d := range row {
		if d.IsNull() || !rangeTracked(d.Typ) {
			continue
		}
		r := s.ranges[col]
		if r == nil {
			r = &colRange{}
			s.ranges[col] = r
		}
		if r.bad {
			continue
		}
		if !r.ok {
			r.min, r.max, r.ok = d, d, true
			continue
		}
		if c, err := types.Compare(d, r.min); err != nil {
			r.bad = true
			continue
		} else if c < 0 {
			r.min = d
		}
		if c, err := types.Compare(d, r.max); err != nil {
			r.bad = true
		} else if c > 0 {
			r.max = d
		}
	}
}

// SetAttrSummarizer installs fn as the attribute summarizer for column col.
// Existing page summaries were built without it and are invalidated; ANALYZE
// (RebuildSummaries) restores them.
func (h *Heap) SetAttrSummarizer(col int, fn AttrSummarizer) {
	if h.summarizers == nil {
		h.summarizers = make(map[int]AttrSummarizer)
	}
	h.summarizers[col] = fn
	h.InvalidateSummaries()
}

// InvalidateSummaries marks every page summary stale; subsequent scans read
// all pages until RebuildSummaries or fresh inserts repopulate them.
// Snapshot-shared pages are cloned first (summary swaps are writes too).
func (h *Heap) InvalidateSummaries() {
	for pi := range h.pages {
		if h.pages[pi].sum == nil {
			continue
		}
		h.writableMetaPage(pi).sum = nil
	}
}

// RebuildSummaries recomputes every page's skip summary from its live rows
// (the ANALYZE path). Frozen pages are immutable, so a summary built at
// freeze time is still exact and kept; a frozen page whose summary was
// invalidated (e.g. a summarizer change) rebuilds from its row-form view.
func (h *Heap) RebuildSummaries() {
	for pi, p := range h.pages {
		if p.frozen != nil && p.sum.usable() {
			continue
		}
		s := newPageSummary()
		for _, r := range pageRows(p) {
			if r == nil {
				continue
			}
			h.noteRow(s, r)
			if !s.valid {
				break
			}
		}
		np := h.writableMetaPage(pi)
		if s.valid {
			s.attachZones(np.frozen)
			np.sum = s
		} else {
			np.sum = nil
		}
	}
}

// remapSummarizersOnDrop shifts summarizer column indices after column idx
// is removed from the schema.
func (h *Heap) remapSummarizersOnDrop(idx int) {
	if h.summarizers == nil {
		return
	}
	next := make(map[int]AttrSummarizer, len(h.summarizers))
	for col, fn := range h.summarizers {
		switch {
		case col == idx:
			// dropped column: summarizer goes with it
		case col > idx:
			next[col-1] = fn
		default:
			next[col] = fn
		}
	}
	h.summarizers = next
}

// RecordParallelWorkers forwards a parallel-pipeline worker count to the
// pager's execution counters (per-query attribution: the pager is reset
// between queries by callers that track per-query stats).
func (h *Heap) RecordParallelWorkers(n int) {
	if h.pager != nil && n > 0 {
		h.pager.recordParallelWorkers(int64(n))
	}
}

// RecordZoneSkips counts frozen pages a scan eliminated via segment zone
// maps (min/max/null-count metadata) before decoding them.
func (h *Heap) RecordZoneSkips(n int64) {
	if h.pager != nil && n > 0 {
		h.pager.recordZoneSkipped(n)
	}
}

// RecordSelBatches counts selection-carrying batches emitted by striped
// scans (in-scan predicate evaluation over aliased frozen pages).
func (h *Heap) RecordSelBatches(n int64) {
	if h.pager != nil && n > 0 {
		h.pager.recordSelBatches(n)
	}
}

// RecordParallelStriped counts striped scans run under a parallel gather
// (one count per multi-partition striped scan, not per partition).
func (h *Heap) RecordParallelStriped(n int64) {
	if h.pager != nil && n > 0 {
		h.pager.recordParallelStriped(n)
	}
}

// RecordSortBatches counts input batches accumulated by batch sorts
// (BatchSortIter flushes its per-query count on Close).
func (h *Heap) RecordSortBatches(n int64) {
	if h.pager != nil && n > 0 {
		h.pager.recordSortBatches(n)
	}
}

// RecordTopNShortCircuits counts rows a bounded Top-N heap discarded on
// arrival without materializing them.
func (h *Heap) RecordTopNShortCircuits(n int64) {
	if h.pager != nil && n > 0 {
		h.pager.recordTopNShortCircuits(n)
	}
}

// RecordSortedMergeParts counts partitions merged by sorted-merge gathers
// (per-partition locally sorted streams k-way merged on precomputed keys).
func (h *Heap) RecordSortedMergeParts(n int64) {
	if h.pager != nil && n > 0 {
		h.pager.recordSortedMergeParts(n)
	}
}
