package storage

import (
	"fmt"
	"sync/atomic"
)

// This file adds epoch-based snapshot reads on top of the row heap — the
// storage half of the sinewd concurrency story (DESIGN.md §10). A writer
// mutates the heap privately under the rdbms layer's per-table write lock
// and, at statement end, publishes an immutable HeapSnapshot: a copy of
// the page-pointer table plus the counters and schema pointer of that
// moment, stamped with a per-heap epoch. Readers pin the latest snapshot
// with one atomic load and scan it without any lock; pages referenced by
// a published snapshot are marked shared, and every later mutation goes
// through a copy-on-write helper that installs a fresh page struct in the
// writer's table instead of touching the shared one. Reclamation is the
// garbage collector's: when the last reader drops its pin and the heap has
// republished, nothing references the old page version and it is freed.
//
// Invariants (enforced by writablePage/writableRowPage/writableTailPage,
// checked by the snapshot stress and differential tests, and linted by
// sinew/snapshot-pin):
//
//  1. No field of a shared page is ever written; mutators clone first.
//  2. FrozenPage internals are safe to share: they are immutable apart
//     from internally synchronized lazy caches.
//  3. A published snapshot's schema pointer is never mutated; ALTER swaps
//     in a cloned schema (AlterAddColumn/AlterDropColumn).
//  4. The catalog epoch is bumped before the post-DDL snapshot publishes,
//     so a cached plan that pins a post-ALTER snapshot always fails its
//     epoch re-check and replans.

// ReadView is a readable view of one table's storage: either the live
// *Heap (single-writer paths that hold the table lock) or an immutable
// *HeapSnapshot pinned by a reader. The executor's scan constructors take
// a ReadView so one statement scans a single frozen version end to end.
type ReadView interface {
	Schema() *Schema
	NumRows() int64
	SizeBytes() int64
	NumPages() int
	NumFrozenPages() int
	Segmented() bool
	Partitions(n int) []PageRange
	Iterate() *HeapIter
	IterateRange(start, end int) *HeapChunkIter
	Scan(fn func(id RowID, row Row) bool)
	Get(id RowID) (Row, bool)
	// Epoch is the heap's publish counter at the view's creation (the live
	// heap reports its current epoch).
	Epoch() uint64
	// Owner returns the heap the view reads — the identity scan nodes and
	// stat sinks key on.
	Owner() *Heap
}

// HeapSnapshot is one published version of a heap: an immutable page table
// plus the row/byte/frozen counters and schema of the publishing moment.
// It is safe for any number of concurrent readers and holds no locks.
type HeapSnapshot struct {
	owner  *Heap
	schema *Schema
	pages  []*page
	nrows  int64
	bytes  int64
	frozen int
	epoch  uint64
	pager  *Pager
}

// Publish freezes the heap's current state into a new snapshot and makes
// it the target of subsequent reader pins. The caller must hold the
// table's write lock (or otherwise be the only mutator). Cost is one
// page-pointer copy — O(pages), no row copying.
func (h *Heap) Publish() uint64 {
	pages := make([]*page, len(h.pages))
	copy(pages, h.pages)
	for _, p := range pages {
		p.shared = true
	}
	h.epoch++
	h.snap.Store(&HeapSnapshot{
		owner:  h,
		schema: h.schema,
		pages:  pages,
		nrows:  h.nrows,
		bytes:  h.bytes,
		frozen: h.frozen,
		epoch:  h.epoch,
		pager:  h.pager,
	})
	if h.pager != nil {
		h.pager.recordSnapshotPublish()
	}
	return h.epoch
}

// CurrentSnapshot returns the latest published snapshot without pinning
// it (monitoring and read-only accessor paths). Never nil: NewHeap
// publishes the empty state.
func (h *Heap) CurrentSnapshot() *HeapSnapshot { return h.snap.Load() }

// AcquireSnapshot pins the latest snapshot for a statement: the pin is a
// pager gauge (snapshots_open) released by HeapSnapshot.Release. The
// snapshot itself stays valid after release — pinning exists for
// observability, not lifetime (the GC reclaims unreferenced versions).
func (h *Heap) AcquireSnapshot() *HeapSnapshot {
	s := h.snap.Load()
	if s != nil && s.pager != nil {
		s.pager.recordSnapshotPin(1)
	}
	return s
}

// Release drops a pin taken by AcquireSnapshot. Each acquire must be
// released exactly once.
func (s *HeapSnapshot) Release() {
	if s != nil && s.pager != nil {
		s.pager.recordSnapshotPin(-1)
	}
}

// Epoch returns the publish counter stamped on the snapshot.
func (s *HeapSnapshot) Epoch() uint64 { return s.epoch }

// Owner returns the heap this snapshot was published from.
func (s *HeapSnapshot) Owner() *Heap { return s.owner }

// Schema returns the schema the snapshot was published under.
func (s *HeapSnapshot) Schema() *Schema { return s.schema }

// NumRows returns the live row count at publish time.
func (s *HeapSnapshot) NumRows() int64 { return s.nrows }

// SizeBytes returns the estimated table size at publish time.
func (s *HeapSnapshot) SizeBytes() int64 { return s.bytes }

// NumPages returns the page count at publish time.
func (s *HeapSnapshot) NumPages() int { return len(s.pages) }

// NumFrozenPages returns the frozen-page count at publish time.
func (s *HeapSnapshot) NumFrozenPages() int { return s.frozen }

// Segmented reports whether any page of the snapshot is frozen.
func (s *HeapSnapshot) Segmented() bool { return s.frozen > 0 }

// Partitions splits the snapshot's pages for a parallel scan; every
// partition of one view scans the same frozen page table.
func (s *HeapSnapshot) Partitions(n int) []PageRange {
	return partitionRanges(len(s.pages), n)
}

// Iterate returns a row cursor over the snapshot.
func (s *HeapSnapshot) Iterate() *HeapIter {
	return &HeapIter{pages: s.pages, pager: s.pager}
}

// IterateRange returns a chunk cursor over pages [start, end) of the
// snapshot.
func (s *HeapSnapshot) IterateRange(start, end int) *HeapChunkIter {
	return newChunkIter(s.pages, s.pager, start, end)
}

// Scan iterates all live rows of the snapshot in heap order.
func (s *HeapSnapshot) Scan(fn func(id RowID, row Row) bool) {
	scanPages(s.pages, s.pager, fn)
}

// Get fetches a single row by ID from the snapshot.
func (s *HeapSnapshot) Get(id RowID) (Row, bool) {
	return getPageRow(s.pages, s.schema, s.pager, id)
}

// Epoch returns the heap's current publish counter (callers must hold the
// table lock or otherwise not race with Publish).
func (h *Heap) Epoch() uint64 { return h.epoch }

// Owner returns h itself (the live heap is its own view).
func (h *Heap) Owner() *Heap { return h }

// snapPtr wraps the atomic snapshot pointer so the Heap struct literal
// stays copy-free in NewHeap.
type snapPtr = atomic.Pointer[HeapSnapshot]

// ---------- copy-on-write helpers (writer side, under the table lock) ----------

// recordCoW counts one page version split caused by a write to a shared
// page (the pages_cow counter).
func (h *Heap) recordCoW() {
	if h.pager != nil {
		h.pager.recordPageCoW(1)
	}
}

// writableTailPage returns the last page ready for appends, cloning it
// when a published snapshot shares it. The caller guarantees the tail
// page is row-form. The clone keeps an equivalent skip summary (cloned,
// never shared: Insert mutates it incrementally).
func (h *Heap) writableTailPage() *page {
	pi := len(h.pages) - 1
	p := h.pages[pi]
	if !p.shared {
		return p
	}
	np := &page{
		rows:  append(make([]Row, 0, rowsPerPage), p.rows...),
		bytes: p.bytes,
		sum:   p.sum.clone(),
	}
	h.pages[pi] = np
	h.recordCoW()
	return np
}

// writableRowPage returns page pi in mutable row form: frozen pages are
// un-frozen into a fresh page struct (the materialized row cache is
// shared with snapshot readers, so the slice is copied), and shared
// row-form pages are cloned. Mutators may then write rows[i], bytes and
// sum freely.
func (h *Heap) writableRowPage(pi int) (*page, error) {
	p := h.pages[pi]
	if p.frozen == nil && !p.shared {
		return p, nil
	}
	np := &page{bytes: p.bytes}
	if p.frozen != nil {
		rows, err := p.frozen.materializeRows()
		if err != nil {
			return nil, err
		}
		np.rows = append(make([]Row, 0, max(rowsPerPage, len(rows))), rows...)
		h.frozen--
		if h.pager != nil {
			h.pager.recordSegUnfrozen(1)
		}
	} else {
		np.rows = append(make([]Row, 0, max(rowsPerPage, len(p.rows))), p.rows...)
	}
	if p.shared {
		h.recordCoW()
	}
	h.pages[pi] = np
	return np, nil
}

// writableMetaPage returns page pi ready for metadata writes (summary
// swaps): shared pages are cloned preserving their form. The clone's sum
// still aliases the shared page's summary, so callers must replace it
// wholesale (assign a fresh or nil summary), never mutate it in place.
func (h *Heap) writableMetaPage(pi int) *page {
	p := h.pages[pi]
	if !p.shared {
		return p
	}
	np := &page{bytes: p.bytes, frozen: p.frozen, sum: p.sum}
	if p.frozen == nil {
		np.rows = append(make([]Row, 0, max(rowsPerPage, len(p.rows))), p.rows...)
	}
	h.pages[pi] = np
	h.recordCoW()
	return np
}

// AlterAddColumn appends a column to the schema copy-on-write: published
// snapshots keep the old schema pointer while the live heap switches to a
// clone with the column added. Callers follow up with AddColumnData.
func (h *Heap) AlterAddColumn(c Column) error {
	ns := h.schema.Clone()
	if err := ns.AddColumn(c); err != nil {
		return err
	}
	h.schema = ns
	return nil
}

// AlterDropColumn removes a column from a schema clone (see
// AlterAddColumn) and returns the dropped index for DropColumnData.
func (h *Heap) AlterDropColumn(name string) (int, error) {
	idx := h.schema.ColumnIndex(name)
	if idx < 0 {
		return -1, fmt.Errorf("storage: column %q does not exist", name)
	}
	ns := h.schema.Clone()
	if err := ns.DropColumn(name); err != nil {
		return -1, err
	}
	h.schema = ns
	return idx, nil
}

// clone deep-copies a page summary so a CoW page can keep (and later
// mutate) skip metadata without touching the version shared with
// snapshot readers. nil and invalid summaries clone to nil.
func (s *PageSummary) clone() *PageSummary {
	if !s.usable() {
		return nil
	}
	out := &PageSummary{
		valid:  true,
		attrs:  make(map[int][]uint32, len(s.attrs)),
		ranges: make(map[int]*colRange, len(s.ranges)),
	}
	for col, ids := range s.attrs {
		out.attrs[col] = append([]uint32(nil), ids...)
	}
	for col, r := range s.ranges {
		cr := *r
		out.ranges[col] = &cr
	}
	if s.zones != nil {
		out.zones = make(map[int]map[uint32]AttrZone, len(s.zones))
		for col, zm := range s.zones {
			m := make(map[uint32]AttrZone, len(zm))
			for id, z := range zm {
				m[id] = z
			}
			out.zones[col] = m
		}
	}
	return out
}
