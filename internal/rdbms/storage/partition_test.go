package storage

import (
	"testing"
)

func TestPartitionsCoverAllPages(t *testing.T) {
	h := NewHeap(testSchema(t), nil)
	for i := 0; i < 1000; i++ { // several pages at 128 rows/page
		h.Insert(mkRow(int64(i), "x", 0))
	}
	pages := h.NumPages()
	if pages < 2 {
		t.Fatalf("want multi-page heap, got %d pages", pages)
	}
	for _, n := range []int{1, 2, 3, pages, pages + 5} {
		parts := h.Partitions(n)
		if len(parts) == 0 || len(parts) > n || len(parts) > pages {
			t.Fatalf("Partitions(%d) = %v", n, parts)
		}
		// Contiguous, non-overlapping, full coverage.
		next := 0
		for _, pr := range parts {
			if pr.Start != next || pr.End <= pr.Start {
				t.Fatalf("Partitions(%d) = %v: bad range %v", n, parts, pr)
			}
			next = pr.End
		}
		if next != pages {
			t.Fatalf("Partitions(%d) cover %d of %d pages", n, next, pages)
		}
	}
	if got := h.Partitions(0); len(got) != 1 {
		t.Errorf("Partitions(0) = %v", got)
	}
}

func TestPartitionsEmptyHeap(t *testing.T) {
	h := NewHeap(testSchema(t), nil)
	if got := h.Partitions(4); len(got) != 0 {
		t.Errorf("empty heap partitions = %v", got)
	}
}

func TestChunkIterReadsAllRowsAcrossPartitions(t *testing.T) {
	h := NewHeap(testSchema(t), nil)
	const rows = 777
	for i := 0; i < rows; i++ {
		h.Insert(mkRow(int64(i), "x", 0))
	}
	// Deleted rows must be skipped, like HeapIter.
	h.Delete(RowID{Page: 1, Slot: 5})
	h.Delete(RowID{Page: 2, Slot: 0})

	var got []int64
	for _, pr := range h.Partitions(3) {
		it := h.IterateRange(pr.Start, pr.End)
		buf := make([]Row, 37) // deliberately not a divisor of the page size
		for {
			n := it.ReadRows(buf)
			if n == 0 {
				break
			}
			for _, r := range buf[:n] {
				got = append(got, r[0].I)
			}
		}
	}
	if len(got) != rows-2 {
		t.Fatalf("read %d rows, want %d", len(got), rows-2)
	}
	// Partitions are consumed in order, so ids must be ascending with the
	// two deleted ids missing.
	prev := int64(-1)
	for _, id := range got {
		if id <= prev {
			t.Fatalf("rows out of order: %d after %d", id, prev)
		}
		prev = id
	}
}

func TestChunkIterPagerAccounting(t *testing.T) {
	p := NewPager()
	h := NewHeap(testSchema(t), p)
	for i := 0; i < 1000; i++ {
		h.Insert(mkRow(int64(i), "hello", 1))
	}
	p.Reset()
	// A full range read charges the whole heap, split over partitions.
	var sum int64
	for _, pr := range h.Partitions(4) {
		it := h.IterateRange(pr.Start, pr.End)
		buf := make([]Row, 64)
		for it.ReadRows(buf) > 0 {
		}
		it.Close()
		sum += it.BytesRead()
	}
	r, _ := p.Stats()
	if r != h.SizeBytes() || sum != h.SizeBytes() {
		t.Errorf("chunk scan read %d (per-iter sum %d), heap size %d", r, sum, h.SizeBytes())
	}
}

func TestIterCloseFlushesEarlyStop(t *testing.T) {
	p := NewPager()
	h := NewHeap(testSchema(t), p)
	for i := 0; i < 1000; i++ {
		h.Insert(mkRow(int64(i), "hello", 1))
	}
	p.Reset()
	it := h.Iterate()
	for i := 0; i < 10; i++ { // stop mid-page, as a LIMIT would
		it.Next()
	}
	if r, _ := p.Stats(); r != 0 {
		t.Errorf("bytes charged before flush: %d", r)
	}
	it.Close()
	r, _ := p.Stats()
	if r <= 0 || r >= h.SizeBytes() {
		t.Errorf("abandoned scan charged %d of %d", r, h.SizeBytes())
	}
	if it.BytesRead() != r {
		t.Errorf("BytesRead %d != pager %d", it.BytesRead(), r)
	}
	it.Close() // idempotent
	if r2, _ := p.Stats(); r2 != r {
		t.Errorf("double Close recharged: %d -> %d", r, r2)
	}
}
