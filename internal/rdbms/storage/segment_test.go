package storage

import (
	"fmt"
	"testing"

	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// fakeSegment is a trivial ColumnSegment for storage-level tests: it
// copies the column's datums and plays them back.
type fakeSegment struct {
	vals []types.Datum
}

func (f *fakeSegment) NumRows() int      { return len(f.vals) }
func (f *fakeSegment) AttrIDs() []uint32 { return nil }
func (f *fakeSegment) Values(dst []types.Datum) error {
	copy(dst, f.vals)
	return nil
}

// stripeCol0 stripes only column 0.
func stripeCol0(col int, vals []types.Datum) (ColumnSegment, error) {
	if col != 0 {
		return nil, nil
	}
	return &fakeSegment{vals: append([]types.Datum(nil), vals...)}, nil
}

func freezeTestHeap(t *testing.T, nrows int) (*Heap, *Pager) {
	t.Helper()
	schema, err := NewSchema(
		Column{Name: "id", Typ: types.Int},
		Column{Name: "txt", Typ: types.Text},
	)
	if err != nil {
		t.Fatal(err)
	}
	pager := NewPager()
	h := NewHeap(schema, pager)
	for i := 0; i < nrows; i++ {
		row := Row{types.NewInt(int64(i)), types.NewText(fmt.Sprintf("row-%d", i))}
		if err := h.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return h, pager
}

func collectRows(h *Heap) []Row {
	var out []Row
	h.Scan(func(_ RowID, r Row) bool {
		out = append(out, r.Clone())
		return true
	})
	return out
}

func TestFreezeColdPages(t *testing.T) {
	const nrows = 2*rowsPerPage + 44 // two full pages + a row tail
	h, pager := freezeTestHeap(t, nrows)
	before := collectRows(h)

	h.SetColumnSegmenter(stripeCol0)
	if got := h.FreezeColdPages(); got != 2 {
		t.Fatalf("FreezeColdPages = %d, want 2 (full pages only)", got)
	}
	if !h.Segmented() || h.NumFrozenPages() != 2 {
		t.Fatalf("Segmented=%v NumFrozenPages=%d", h.Segmented(), h.NumFrozenPages())
	}
	// Idempotent: already-frozen pages and the tail stay put.
	if got := h.FreezeColdPages(); got != 0 {
		t.Fatalf("second FreezeColdPages = %d, want 0", got)
	}

	// Row-path reads see identical content in identical order.
	after := collectRows(h)
	if len(after) != len(before) {
		t.Fatalf("scan returned %d rows, want %d", len(after), len(before))
	}
	for i := range before {
		for j := range before[i] {
			if got, want := after[i][j].String(), before[i][j].String(); got != want {
				t.Fatalf("row %d col %d: %q != %q after freeze", i, j, got, want)
			}
		}
	}

	// Point reads work on frozen pages without un-freezing.
	if r, ok := h.Get(RowID{Page: 0, Slot: 7}); !ok || r[0].String() != "7" {
		t.Fatalf("Get on frozen page: ok=%v row=%v", ok, r)
	}
	if h.NumFrozenPages() != 2 {
		t.Fatal("Get must not un-freeze")
	}

	// ReadPage delivers frozen pages striped and the tail as rows.
	it := h.IterateRange(0, h.NumPages())
	buf := make([]Row, rowsPerPage)
	var frozenSeen, rowPages int
	for {
		pv, ok := it.ReadPage(buf)
		if !ok {
			break
		}
		if pv.Frozen != nil {
			frozenSeen++
			if pv.Frozen.NumRows() != rowsPerPage {
				t.Fatalf("frozen page NumRows = %d", pv.Frozen.NumRows())
			}
			vals, nulls, err := pv.Frozen.ColVals(0)
			if err != nil || len(vals) != rowsPerPage {
				t.Fatalf("ColVals: %v len=%d", err, len(vals))
			}
			for w := range nulls {
				if nulls[w] != 0 {
					t.Fatal("unexpected NULLs in frozen int column")
				}
			}
		} else {
			rowPages++
			if len(pv.Rows) != 44 {
				t.Fatalf("tail page has %d rows, want 44", len(pv.Rows))
			}
		}
	}
	it.Close()
	if frozenSeen != 2 || rowPages != 1 {
		t.Fatalf("ReadPage saw %d frozen, %d row pages", frozenSeen, rowPages)
	}
	if scanned, _ := pager.SegStats(); scanned != 2 {
		t.Fatalf("segments scanned = %d, want 2", scanned)
	}

	// UPDATE un-freezes the touched page only.
	if _, err := h.Update(RowID{Page: 0, Slot: 3}, Row{types.NewInt(-3), types.NewText("upd")}); err != nil {
		t.Fatal(err)
	}
	if h.NumFrozenPages() != 1 {
		t.Fatalf("NumFrozenPages after update = %d, want 1", h.NumFrozenPages())
	}
	if _, unfrozen := pager.SegStats(); unfrozen != 1 {
		t.Fatalf("segments unfrozen = %d, want 1", unfrozen)
	}
	if r, ok := h.Get(RowID{Page: 0, Slot: 3}); !ok || r[1].String() != "upd" {
		t.Fatalf("updated row not visible: ok=%v r=%v", ok, r)
	}

	// Schema changes un-freeze everything.
	if err := h.Schema().AddColumn(Column{Name: "extra", Typ: types.Int}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddColumnData(); err != nil {
		t.Fatal(err)
	}
	if h.NumFrozenPages() != 0 {
		t.Fatalf("NumFrozenPages after ALTER = %d, want 0", h.NumFrozenPages())
	}
	if r, ok := h.Get(RowID{Page: 1, Slot: 0}); !ok || len(r) != 3 || !r[2].IsNull() {
		t.Fatalf("widened row wrong: %v", r)
	}
}

func TestFreezeSkipsDirtyPages(t *testing.T) {
	h, _ := freezeTestHeap(t, 2*rowsPerPage)
	if _, err := h.Delete(RowID{Page: 0, Slot: 5}); err != nil {
		t.Fatal(err)
	}
	h.SetColumnSegmenter(stripeCol0)
	if got := h.FreezeColdPages(); got != 1 {
		t.Fatalf("FreezeColdPages = %d, want 1 (page 0 has a hole)", got)
	}
}

func TestLoadTimeFreezeThreshold(t *testing.T) {
	schema, err := NewSchema(Column{Name: "id", Typ: types.Int})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHeap(schema, NewPager())
	h.SetColumnSegmenter(stripeCol0)
	h.SetFreezeMinPages(2)
	for i := 0; i < 4*rowsPerPage; i++ {
		if err := h.Insert(Row{types.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Page 0 filled while the heap was below threshold; pages 2 and 3
	// (and page 1, which fills exactly as the heap reaches 2 pages)
	// freeze as they fill.
	if h.NumFrozenPages() < 2 {
		t.Fatalf("NumFrozenPages = %d, want >= 2 from load-time freezing", h.NumFrozenPages())
	}
	if h.NumFrozenPages() == h.NumPages() {
		t.Fatal("the below-threshold head should have stayed row-form")
	}
	// Iteration order survives mixed frozen/row pages.
	rows := collectRows(h)
	if len(rows) != 4*rowsPerPage {
		t.Fatalf("scan returned %d rows", len(rows))
	}
	for i, r := range rows {
		if r[0].String() != fmt.Sprintf("%d", i) {
			t.Fatalf("row %d out of order: %v", i, r)
		}
	}
}
