package storage

import (
	"fmt"
	"sync"

	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// This file implements the segment store beside the row heap: full, cold
// pages are frozen into column-striped form — per-column value vectors,
// with serialized-record columns handed to a ColumnSegmenter that stripes
// them into per-attribute vectors (internal/serial's segment format). The
// heap becomes a hybrid of a write-hot row tail and immutable striped
// pages; UPDATE/DELETE transparently un-freeze a page back to rows, so
// mutation semantics, heap iteration order, and pager accounting are
// unchanged. The storage layer stays ignorant of the segment encoding:
// it sees only the ColumnSegment interface the upper layer implements.

// ColumnSegment is a striped encoding of one column of one frozen page,
// produced by a ColumnSegmenter. Implementations are immutable and safe
// for concurrent readers.
type ColumnSegment interface {
	// NumRows returns the row count of the page the segment covers.
	NumRows() int
	// AttrIDs returns the attribute IDs striped anywhere in the segment,
	// ascending — the page-summary attribute set of the column.
	AttrIDs() []uint32
	// Values reconstructs the column's row-format datums into dst, which
	// has NumRows entries (the un-freeze and row-path read).
	Values(dst []types.Datum) error
}

// ColumnSegmenter stripes one column of a full page. vals holds the
// column's datums in slot order. Returning (nil, nil) keeps the column as
// a plain vector; an error vetoes freezing the page (the rows stay).
type ColumnSegmenter func(col int, vals []types.Datum) (ColumnSegment, error)

// AttrZone is the zone map of one striped attribute vector within a
// ColumnSegment: how many records carry the attribute (Present) and, for
// ordered numeric encodings, the min/max of its values. A zone with
// HasRange unset still proves presence counts; Min/Max are only
// meaningful when HasRange is set.
type AttrZone struct {
	ID       uint32
	Present  int
	Min, Max types.Datum
	HasRange bool
}

// ZoneMapped is implemented by ColumnSegments that expose per-attribute
// zone maps (the serial segment footer's min/max and presence counts).
// Freezing attaches the zones to the page summary, so scans skip whole
// frozen pages on attribute-level range predicates before decoding them.
type ZoneMapped interface {
	AttrZones() []AttrZone
}

// DefaultFreezeMinPages is the load-time compaction threshold: once a heap
// has at least this many pages, pages freeze as they fill. Below it only
// ANALYZE (FreezeColdPages) compacts, keeping small hot tables row-form.
const DefaultFreezeMinPages = 64

// PageCapacity is the heap page grouping factor. Striped batch readers
// size their ReadPage row buffers with it: a smaller buffer would silently
// drop rows of a full row-form page.
const PageCapacity = rowsPerPage

// FrozenCol is one column of a frozen page: either a plain datum vector
// with a null bitmap, or a ColumnSegment for striped serialized columns.
type FrozenCol struct {
	Vals  []types.Datum // plain vector (nil when Seg is set)
	Nulls []uint64      // bit set = NULL (plain vectors only)
	Seg   ColumnSegment // striped column (nil for plain vectors)
}

// FrozenPage is the striped form of one full heap page.
type FrozenPage struct {
	n    int
	cols []FrozenCol

	rowsOnce sync.Once
	rows     []Row // lazy row-form cache for row-path readers
	rowsErr  error

	mu      sync.Mutex
	segVals [][]types.Datum // lazy per-column datum cache for Seg columns
	segNull [][]uint64
}

// NumRows returns the page's row count.
func (fp *FrozenPage) NumRows() int { return fp.n }

// NumCols returns the page's column count.
func (fp *FrozenPage) NumCols() int { return len(fp.cols) }

// Col returns column j's striped form. Exactly one of (vals, seg) is set;
// vals and nulls alias the frozen page and must not be mutated.
func (fp *FrozenPage) Col(j int) (vals []types.Datum, nulls []uint64, seg ColumnSegment) {
	c := fp.cols[j]
	return c.Vals, c.Nulls, c.Seg
}

// ColVals returns column j as a plain datum vector, materializing (and
// caching) segment columns on first use. The result aliases the frozen
// page; callers must not mutate it.
func (fp *FrozenPage) ColVals(j int) ([]types.Datum, []uint64, error) {
	c := fp.cols[j]
	if c.Seg == nil {
		return c.Vals, c.Nulls, nil
	}
	ncols := len(fp.cols)
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.segVals == nil {
		fp.segVals = make([][]types.Datum, ncols)
		fp.segNull = make([][]uint64, ncols)
	}
	if fp.segVals[j] == nil {
		vals := make([]types.Datum, fp.n)
		if err := c.Seg.Values(vals); err != nil {
			return nil, nil, err
		}
		nulls := make([]uint64, (fp.n+63)/64)
		for i, d := range vals {
			if d.IsNull() {
				nulls[i/64] |= 1 << uint(i%64)
			}
		}
		fp.segVals[j] = vals
		fp.segNull[j] = nulls
	}
	return fp.segVals[j], fp.segNull[j], nil
}

// materializeRows builds (once) the row-form view of the page for
// row-path readers and the un-freeze path.
func (fp *FrozenPage) materializeRows() ([]Row, error) {
	fp.rowsOnce.Do(func() {
		cols := make([][]types.Datum, len(fp.cols))
		for j := range fp.cols {
			vals, _, err := fp.ColVals(j)
			if err != nil {
				fp.rowsErr = fmt.Errorf("storage: un-freeze column %d: %w", j, err)
				return
			}
			cols[j] = vals
		}
		rows := make([]Row, fp.n)
		for i := 0; i < fp.n; i++ {
			r := make(Row, len(cols))
			for j := range cols {
				r[j] = cols[j][i]
			}
			rows[i] = r
		}
		fp.rows = rows
	})
	return fp.rows, fp.rowsErr
}

// SetColumnSegmenter installs fn as the page segmenter. Compaction only
// happens on heaps with a segmenter (Sinew installs one per collection).
func (h *Heap) SetColumnSegmenter(fn ColumnSegmenter) {
	h.segmenter = fn
	if h.freezeMinPages == 0 {
		h.freezeMinPages = DefaultFreezeMinPages
	}
}

// SetFreezeMinPages overrides the load-time compaction threshold (tests
// and benchmarks; 0 restores the default).
func (h *Heap) SetFreezeMinPages(n int) {
	if n <= 0 {
		n = DefaultFreezeMinPages
	}
	h.freezeMinPages = n
}

// NumFrozenPages reports how many pages are currently frozen.
func (h *Heap) NumFrozenPages() int { return h.frozen }

// Segmented reports whether any page of the heap is frozen (the planner's
// routing test for striped scans).
func (h *Heap) Segmented() bool { return h.frozen > 0 }

// FreezeColdPages stripes every eligible page — full, no deleted slots,
// not already frozen — and returns how many pages it froze. ANALYZE calls
// it so compaction follows the same trigger as statistics refresh.
func (h *Heap) FreezeColdPages() int {
	if h.segmenter == nil {
		return 0
	}
	n := 0
	for pi := range h.pages {
		if h.freezePageAt(pi) {
			n++
		}
	}
	return n
}

// freezePageAt stripes the page at index pi; returns false when the page
// is ineligible or the segmenter vetoes it. Freezing never mutates the
// existing page struct — it installs a fresh frozen page in its slot, so
// snapshot readers pinned to the row-form version are untouched. A
// carried-over skip summary is cloned for the same reason (attachZones
// writes into it).
func (h *Heap) freezePageAt(pi int) bool {
	p := h.pages[pi]
	if h.segmenter == nil || p.frozen != nil || len(p.rows) != rowsPerPage {
		return false
	}
	for _, r := range p.rows {
		if r == nil {
			return false // deleted slot: page is not cold
		}
	}
	ncols := len(h.schema.Cols)
	fp := &FrozenPage{n: len(p.rows), cols: make([]FrozenCol, ncols)}
	for j := 0; j < ncols; j++ {
		vals := make([]types.Datum, len(p.rows))
		for i, r := range p.rows {
			vals[i] = r[j]
		}
		seg, err := h.segmenter(j, vals)
		if err != nil {
			return false // unstripeable value: keep the rows
		}
		if seg != nil {
			if seg.NumRows() != len(p.rows) {
				return false
			}
			fp.cols[j] = FrozenCol{Seg: seg}
			continue
		}
		nulls := make([]uint64, (len(vals)+63)/64)
		for i, d := range vals {
			if d.IsNull() {
				nulls[i/64] |= 1 << uint(i%64)
			}
		}
		fp.cols[j] = FrozenCol{Vals: vals, Nulls: nulls}
	}
	striped := false
	for j := range fp.cols {
		if fp.cols[j].Seg != nil {
			striped = true
			break
		}
	}
	if !striped {
		return false // nothing column-striped: freezing buys nothing
	}
	// The page summary outlives the rows: frozen pages are immutable, so
	// build it now if stale. Segment-striped columns contribute their
	// attribute-ID sets straight from the segment footer — no per-record
	// summarizer parses — and become attribute-tracked even without a
	// summarizer, so extractions over any striped column can skip pages.
	sum := p.sum.clone()
	if sum == nil {
		segCols := make(map[int]bool, len(fp.cols))
		for j := range fp.cols {
			if fp.cols[j].Seg != nil {
				segCols[j] = true
			}
		}
		s := newPageSummary()
		for _, r := range p.rows {
			h.noteRowExcept(s, r, segCols)
			if !s.valid {
				break
			}
		}
		if s.valid {
			for j := range fp.cols {
				if seg := fp.cols[j].Seg; seg != nil {
					for _, id := range seg.AttrIDs() {
						s.insertAttr(j, id)
					}
				}
			}
			sum = s
		}
	}
	// Zone maps attach whether the summary was just built or carried over
	// from incremental inserts: the page is immutable from here on, so the
	// footer extrema stay exact until un-freeze invalidates the summary.
	sum.attachZones(fp)
	h.pages[pi] = &page{frozen: fp, bytes: p.bytes, sum: sum}
	h.frozen++
	return true
}

// pageRows returns the row-form view of p, materializing frozen pages
// lazily (without un-freezing them). A frozen page that fails to
// materialize returns nil — callers see an empty page rather than a
// panic; un-freeze surfaces the error.
func pageRows(p *page) []Row {
	if p.frozen == nil {
		return p.rows
	}
	rows, err := p.frozen.materializeRows()
	if err != nil {
		return nil
	}
	return rows
}

// PageView is one page as delivered to the striped batch scan: either a
// frozen striped page or the live rows of a row-form page.
type PageView struct {
	Frozen *FrozenPage // non-nil for frozen pages
	Rows   []Row       // live rows (row-form pages)
}

// ReadPage returns the next unskipped page of the range as a whole —
// frozen pages striped, row pages as live rows copied into rowBuf (which
// must hold a full page). ok=false means the range is exhausted. Byte
// accounting matches ReadRows: entering a page charges its bytes, skipped
// pages charge nothing, and frozen pages additionally count toward the
// pager's segments-scanned counter.
func (it *HeapChunkIter) ReadPage(rowBuf []Row) (PageView, bool) {
	for it.page < it.end {
		p := it.pages[it.page]
		if it.slot == 0 && it.skip != nil && p.sum.usable() && it.skip(p.sum) {
			it.pendingSkipped++
			it.page++
			continue
		}
		it.pending += p.bytes
		it.page++
		it.slot = 0
		if p.frozen != nil {
			it.pendingSegScanned++
			return PageView{Frozen: p.frozen}, true
		}
		n := 0
		for _, r := range p.rows {
			if r != nil && n < len(rowBuf) {
				rowBuf[n] = r
				n++
			}
		}
		if n == 0 {
			continue // fully deleted page
		}
		return PageView{Rows: rowBuf[:n]}, true
	}
	it.flush()
	return PageView{}, false
}
