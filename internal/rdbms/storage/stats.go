package storage

import (
	"sort"

	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// ColumnStats summarizes one column for the optimizer, in the style of
// pg_statistic: row/null counts, distinct estimate, extrema, and most
// common values. Stats exist only for physical columns — expressions such
// as Sinew's extract_key UDF are opaque, which is exactly the effect
// Table 2 of the paper measures.
type ColumnStats struct {
	RowCount  int64
	NullCount int64
	NDistinct int64
	// HasMinMax is set for orderable columns with at least one non-null.
	HasMinMax bool
	Min, Max  types.Datum
	// MCVs lists up to statsMCVLimit most common values with frequencies
	// (fraction of all rows).
	MCVs []MCV
}

// MCV is a most-common-value entry.
type MCV struct {
	Val  types.Datum
	Freq float64
}

// TableStats is the result of ANALYZE: per-column statistics keyed by
// column name, plus the table row count at analysis time.
type TableStats struct {
	RowCount int64
	Columns  map[string]*ColumnStats
}

const (
	// statsDistinctTrackLimit caps the exact-distinct tracking; beyond it
	// the estimate scales up proportionally (a crude HLL stand-in).
	statsDistinctTrackLimit = 1 << 16
	statsMCVLimit           = 10
)

// Analyze computes statistics for every column of h with a full scan. As a
// side effect it rebuilds the per-page skip summaries (pageskip.go), which
// Update/Delete invalidate page-locally.
func Analyze(h *Heap) *TableStats {
	h.RebuildSummaries()
	schema := h.Schema()
	n := len(schema.Cols)
	type colAcc struct {
		nulls    int64
		distinct map[string]int64 // hashkey -> count (value kept separately)
		sample   map[string]types.Datum
		overflow bool
		seen     int64
		min, max types.Datum
		hasMM    bool
		cmpOK    bool
	}
	accs := make([]colAcc, n)
	for i := range accs {
		accs[i].distinct = make(map[string]int64)
		accs[i].sample = make(map[string]types.Datum)
		accs[i].cmpOK = true
	}
	var rows int64
	var keyBuf []byte
	h.Scan(func(_ RowID, row Row) bool {
		rows++
		for i := 0; i < n; i++ {
			d := row[i]
			a := &accs[i]
			if d.IsNull() {
				a.nulls++
				continue
			}
			a.seen++
			keyBuf = d.HashKey(keyBuf[:0])
			k := string(keyBuf)
			if !a.overflow {
				a.distinct[k]++
				if _, ok := a.sample[k]; !ok {
					a.sample[k] = d
				}
				if len(a.distinct) > statsDistinctTrackLimit {
					a.overflow = true
				}
			} else if c, ok := a.distinct[k]; ok {
				a.distinct[k] = c + 1
			}
			if a.cmpOK {
				if !a.hasMM {
					a.min, a.max, a.hasMM = d, d, true
				} else {
					if c, err := types.Compare(d, a.min); err != nil {
						a.cmpOK = false
						a.hasMM = false
					} else if c < 0 {
						a.min = d
					}
					if a.cmpOK {
						if c, err := types.Compare(d, a.max); err != nil {
							a.cmpOK = false
							a.hasMM = false
						} else if c > 0 {
							a.max = d
						}
					}
				}
			}
		}
		return true
	})
	ts := &TableStats{RowCount: rows, Columns: make(map[string]*ColumnStats, n)}
	for i, c := range schema.Cols {
		a := &accs[i]
		cs := &ColumnStats{RowCount: rows, NullCount: a.nulls}
		nd := int64(len(a.distinct))
		if a.overflow && a.seen > 0 {
			// Tracked the first statsDistinctTrackLimit distincts over some
			// prefix; scale linearly as Postgres's estimator would.
			nd = nd * a.seen / maxInt64(1, sumCounts(a.distinct))
			if nd < statsDistinctTrackLimit {
				nd = statsDistinctTrackLimit
			}
		}
		cs.NDistinct = nd
		if a.hasMM {
			cs.HasMinMax = true
			cs.Min, cs.Max = a.min, a.max
		}
		if rows > 0 && len(a.distinct) > 0 {
			type kv struct {
				k string
				c int64
			}
			top := make([]kv, 0, len(a.distinct))
			for k, c := range a.distinct {
				top = append(top, kv{k, c})
			}
			sort.Slice(top, func(x, y int) bool {
				if top[x].c != top[y].c {
					return top[x].c > top[y].c
				}
				return top[x].k < top[y].k
			})
			if len(top) > statsMCVLimit {
				top = top[:statsMCVLimit]
			}
			for _, t := range top {
				cs.MCVs = append(cs.MCVs, MCV{Val: a.sample[t.k], Freq: float64(t.c) / float64(rows)})
			}
		}
		ts.Columns[c.Name] = cs
	}
	return ts
}

func sumCounts(m map[string]int64) int64 {
	var s int64
	for _, c := range m {
		s += c
	}
	return s
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
