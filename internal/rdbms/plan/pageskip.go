package plan

import (
	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// This file derives page-skip predicates from scan filters. Every heap
// page carries an optional summary: the sorted set of Sinew attribute IDs
// present in its serialized column plus min/max ranges for physical
// columns (storage.PageSummary). A filter conjunct lets a page be skipped
// when the summary proves the conjunct cannot be TRUE for any row of the
// page — then no row passes the AND of conjuncts and the page need not be
// read (or charged to the pager).
//
// The derivation rests on NULL-strictness. For a conjunct e we use two
// properties:
//
//	P(e): if a given atom inside e evaluates to NULL, e does not evaluate
//	      to TRUE (it is NULL or FALSE). Holds for comparisons, BETWEEN,
//	      [NOT] IN, [NOT] LIKE, ANY, IS NOT NULL — all strict in SQL.
//	V(e): if the atom is NULL, e's *value* is NULL. Holds for arithmetic,
//	      casts, negation, and extraction calls themselves.
//
// Extraction calls f(col, 'key') return NULL when the key is absent from
// the record, so "page lacks every attribute ID for 'key'" implies the
// atom is NULL on every row, which under P implies the conjunct is never
// TRUE. Barriers that stop the descent: OR, NOT (NOT(x AND FALSE) can be
// TRUE with x NULL), IS NULL, COALESCE, and calls to non-extraction
// functions (unknown NULL behaviour).

// skipCond is one page-level exclusion test.
type skipCond struct {
	// attr: skip the page when it lacks every attribute ID the dictionary
	// maps key to, for serialized column col. The key is resolved to IDs at
	// execution time (once per iterator open), not plan time: cached plans
	// outlive dictionary growth (a later load can mint a new ID for the
	// key), while during one execution the statement's table locks keep new
	// IDs off the scanned pages. Otherwise: a range test "col op val must
	// hold for some row".
	// zone: skip the page when, for EVERY attribute ID the dictionary maps
	// key to, the page either lacks the ID outright or carries a segment
	// zone map proving no present value can satisfy "atom op val". Zone
	// conditions only exist for typed extraction atoms compared against
	// constants; they extend attr conditions from "key absent" to "key
	// present but out of range", using the min/max the segment footer
	// already stores (the freeze-time analogue of Sinew's catalog
	// statistics).
	attr bool
	zone bool
	col  int
	key  string
	op   string
	val  types.Datum
}

// deriveSkips walks the plan and installs page-skip predicates on batch
// scans. It runs after fusion/pruning and before parallelization, so it
// sees plain ScanNodes (whose predicates still contain raw extraction
// calls — fusion only rewrites projections).
func (p *Planner) deriveSkips(n Node) {
	if n == nil {
		return
	}
	switch x := n.(type) {
	case *ScanNode:
		p.deriveScanSkip(x, nil)
		return
	case *FilterNode:
		// A residual filter directly above a scan evaluates over the scan's
		// layout, so its conjuncts can contribute skip conditions too.
		if sc, ok := x.Child.(*ScanNode); ok {
			p.deriveScanSkip(sc, x.Preds)
			return
		}
	}
	for _, c := range n.Children() {
		p.deriveSkips(c)
	}
}

func (p *Planner) deriveScanSkip(s *ScanNode, extra []exec.Expr) {
	if p.Cfg == nil || !p.Cfg.EnablePageSkip || !s.Batch {
		return
	}
	resolver := p.Funcs.AttrResolverFn()
	var conds []skipCond
	for _, e := range s.Preds {
		conds = append(conds, condsP(e, resolver)...)
	}
	for _, e := range extra {
		conds = append(conds, condsP(e, resolver)...)
	}
	if len(conds) == 0 {
		return
	}
	s.Skip = makeSkip(conds, resolver, s.Heap.Owner())
	s.SkipConds = len(conds)
}

// makeSkip compiles conds into a factory of per-page tests. The factory
// runs at iterator open — after the statement took its table locks — and
// resolves every key to its current attribute IDs exactly once, so the
// per-page check does no dictionary lookups and each execution of a
// cached plan still sees the live dictionary. Any single condition
// proving exclusion suffices: each derives from a top-level conjunct, and
// one always-false conjunct kills the whole AND.
func makeSkip(conds []skipCond, resolver exec.AttrResolver, h *storage.Heap) func() func(*storage.PageSummary) bool {
	return func() func(*storage.PageSummary) bool {
		resolved := make([][]uint32, len(conds))
		// Per-ID singleton slices for the zone test's LacksAllAttrs probes,
		// allocated at open: the page test may be shared across parallel
		// partition scans, so it must not write shared scratch.
		singles := make([][][]uint32, len(conds))
		for i, c := range conds {
			if c.attr || c.zone {
				resolved[i] = resolver(c.key)
			}
			if c.zone {
				for _, id := range resolved[i] {
					singles[i] = append(singles[i], []uint32{id})
				}
			}
		}
		return func(sum *storage.PageSummary) bool {
			for i, c := range conds {
				if c.attr {
					if ids := resolved[i]; ids != nil && sum.LacksAllAttrs(c.col, ids) {
						return true
					}
					continue
				}
				if c.zone {
					ids := resolved[i]
					if len(ids) == 0 {
						continue
					}
					excluded := true
					for j, id := range ids {
						if sum.LacksAllAttrs(c.col, singles[i][j]) {
							continue
						}
						z, ok := sum.AttrZone(c.col, id)
						if !ok || !zoneExcludes(z, c.op, c.val) {
							excluded = false
							break
						}
					}
					if excluded {
						if h != nil {
							h.RecordZoneSkips(1)
						}
						return true
					}
					continue
				}
				min, max, ok := sum.ColRange(c.col)
				if !ok {
					continue
				}
				if rangeExcludes(min, max, c.op, c.val) {
					return true
				}
			}
			return false
		}
	}
}

// rangeExcludes reports whether a [min, max] value range proves that no
// value in it satisfies "value op val". Incomparable datums prove
// nothing (Compare errors are conservative no-skips).
func rangeExcludes(min, max types.Datum, op string, val types.Datum) bool {
	switch op {
	case "=":
		if lt, err := types.Compare(val, min); err == nil && lt < 0 {
			return true
		}
		if gt, err := types.Compare(val, max); err == nil && gt > 0 {
			return true
		}
	case "<":
		if r, err := types.Compare(min, val); err == nil && r >= 0 {
			return true
		}
	case "<=":
		if r, err := types.Compare(min, val); err == nil && r > 0 {
			return true
		}
	case ">":
		if r, err := types.Compare(max, val); err == nil && r <= 0 {
			return true
		}
	case ">=":
		if r, err := types.Compare(max, val); err == nil && r < 0 {
			return true
		}
	}
	return false
}

// zoneExcludes reports whether one attribute's zone map proves no row of
// the page can satisfy "atom op val" through this attribute ID. A zone
// with zero present values excludes trivially (the atom is NULL wherever
// it would resolve via this ID); otherwise the footer min/max must
// exclude the range. Zones without ranges (strings, bools, nested
// values, NaN-poisoned floats) prove nothing.
func zoneExcludes(z storage.AttrZone, op string, val types.Datum) bool {
	if z.Present == 0 {
		return true
	}
	if !z.HasRange {
		return false
	}
	return rangeExcludes(z.Min, z.Max, op, val)
}

// condsP derives exclusion conditions from conjunct e using property P:
// every returned condition, when proven by a page summary, implies e is
// not TRUE on any row of the page.
func condsP(e exec.Expr, resolver exec.AttrResolver) []skipCond {
	switch x := e.(type) {
	case *exec.BinExpr:
		switch x.Op {
		case "AND":
			// Both sides must be TRUE, so either side's conditions apply.
			return append(condsP(x.L, resolver), condsP(x.R, resolver)...)
		case "=", "<>", "<", "<=", ">", ">=":
			conds := append(condsV(x.L, resolver), condsV(x.R, resolver)...)
			if x.Op != "<>" {
				if rc, ok := rangeCond(x.L, x.R, x.Op); ok {
					conds = append(conds, rc)
				} else if rc, ok := rangeCond(x.R, x.L, flipOp(x.Op)); ok {
					conds = append(conds, rc)
				}
				if zc, ok := zoneCond(x.L, x.R, x.Op, resolver); ok {
					conds = append(conds, zc)
				} else if zc, ok := zoneCond(x.R, x.L, flipOp(x.Op), resolver); ok {
					conds = append(conds, zc)
				}
			}
			return conds
		default:
			// OR and value-level operators in boolean position: a NULL/zero
			// value is not TRUE only for strict value trees.
			return nil
		}
	case *exec.BetweenExpr:
		conds := condsV(x.X, resolver)
		if x.Not {
			// NOT BETWEEN is TRUE when X is outside [Lo, Hi]; NULL bounds
			// make it NULL, but a page-range proof would need both bounds,
			// so only the X-is-NULL condition is used.
			return conds
		}
		conds = append(conds, condsV(x.Lo, resolver)...)
		conds = append(conds, condsV(x.Hi, resolver)...)
		if rc, ok := rangeCond(x.X, x.Lo, ">="); ok {
			conds = append(conds, rc)
		}
		if rc, ok := rangeCond(x.X, x.Hi, "<="); ok {
			conds = append(conds, rc)
		}
		if zc, ok := zoneCond(x.X, x.Lo, ">=", resolver); ok {
			conds = append(conds, zc)
		}
		if zc, ok := zoneCond(x.X, x.Hi, "<=", resolver); ok {
			conds = append(conds, zc)
		}
		return conds
	case *exec.InListExpr:
		// NULL X makes both IN and NOT IN evaluate to NULL.
		return condsV(x.X, resolver)
	case *exec.LikeExpr:
		return append(condsV(x.X, resolver), condsV(x.Pattern, resolver)...)
	case *exec.AnyExpr:
		return append(condsV(x.X, resolver), condsV(x.Array, resolver)...)
	case *exec.IsNullExpr:
		if x.Not {
			// IS NOT NULL is FALSE when X is NULL.
			return condsV(x.X, resolver)
		}
		// IS NULL is TRUE when X is NULL — missing attributes SATISFY it.
		return nil
	case *exec.CallExpr, *exec.CastExpr, *exec.NegExpr:
		// A bare value expression in boolean position: NULL value → NULL
		// truth → not TRUE.
		return condsV(e, resolver)
	default:
		// NotExpr is a barrier: NOT(NULL AND FALSE) = NOT FALSE = TRUE even
		// though an atom was NULL. COALESCE masks NULLs by design.
		return nil
	}
}

// condsV derives conditions under property V: each returned condition,
// when proven, implies e's value is NULL on every row of the page.
func condsV(e exec.Expr, resolver exec.AttrResolver) []skipCond {
	switch x := e.(type) {
	case *exec.CallExpr:
		if col, key, ok := extractionAtom(x, resolver); ok {
			return []skipCond{{attr: true, col: col, key: key}}
		}
		// Non-extraction calls may map NULL args to non-NULL results.
		return nil
	case *exec.BinExpr:
		switch x.Op {
		case "+", "-", "*", "/", "%", "||":
			return append(condsV(x.L, resolver), condsV(x.R, resolver)...)
		}
		return nil
	case *exec.CastExpr:
		return condsV(x.X, resolver)
	case *exec.NegExpr:
		return condsV(x.X, resolver)
	default:
		return nil
	}
}

// extractionAtom matches f(col, 'key') where f is a registered extraction
// function (FuseFamily set — these return NULL for absent keys). The key
// itself is returned; ID resolution happens at execution time, once per
// iterator open (see skipCond and makeSkip). Without a resolver no
// condition is emitted.
func extractionAtom(x *exec.CallExpr, resolver exec.AttrResolver) (col int, key string, ok bool) {
	if resolver == nil || x.Def == nil || x.Def.FuseFamily == "" || len(x.Args) != 2 {
		return 0, "", false
	}
	ce, okc := x.Args[0].(*exec.ColExpr)
	ke, okk := x.Args[1].(*exec.ConstExpr)
	if !okc || !okk || ke.Val.IsNull() || ke.Val.Typ != types.Text {
		return 0, "", false
	}
	return ce.Idx, ke.Val.S, true
}

// zoneCond matches extraction-atom-vs-constant comparisons for segment
// zone-map pruning. Any-probe extractions are excluded: they return the
// textual form of whatever typed attribute matches, so the footer's
// numeric extrema do not bound the atom's comparison behaviour.
func zoneCond(l, r exec.Expr, op string, resolver exec.AttrResolver) (skipCond, bool) {
	call, okc := l.(*exec.CallExpr)
	k, okk := r.(*exec.ConstExpr)
	if !okc || !okk || k.Val.IsNull() || call.Def == nil || call.Def.FuseAny {
		return skipCond{}, false
	}
	col, key, ok := extractionAtom(call, resolver)
	if !ok {
		return skipCond{}, false
	}
	return skipCond{zone: true, col: col, key: key, op: op, val: k.Val}, true
}

// rangeCond matches col-vs-constant comparisons for min/max pruning.
func rangeCond(l, r exec.Expr, op string) (skipCond, bool) {
	ce, okc := l.(*exec.ColExpr)
	k, okk := r.(*exec.ConstExpr)
	if !okc || !okk || k.Val.IsNull() {
		return skipCond{}, false
	}
	return skipCond{col: ce.Idx, op: op, val: k.Val}, true
}

// flipOp mirrors a comparison when its operands are swapped (5 < col ⇒
// col > 5).
func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}
