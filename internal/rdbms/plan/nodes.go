package plan

import (
	"fmt"
	"math"
	"strings"

	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/storage"
)

// Node is a physical plan operator. Estimated rows and total cost are fixed
// at plan time; Open instantiates the executor tree.
type Node interface {
	// Layout is the output row shape.
	Layout() *Layout
	// Rows is the estimated output cardinality.
	Rows() float64
	// Cost is the estimated total cost (inputs included), in abstract units.
	Cost() float64
	// Open builds the runtime iterator. ec, when non-nil, is the statement's
	// execution context: scans resolve their heap through it so the whole
	// statement reads one pinned snapshot per table. A nil ec reads live
	// heaps (single-threaded embedded callers).
	Open(ec *exec.ExecCtx) exec.Iterator
	// Label is the EXPLAIN head line (without rows/cost annotations).
	Label() string
	// Details are extra EXPLAIN lines (Filter:, Sort Key:, ...).
	Details() []string
	// Children returns input nodes in display order.
	Children() []Node
}

// baseNode carries the common plan-time estimates.
type baseNode struct {
	layout *Layout
	rows   float64
	cost   float64
}

func (b *baseNode) Layout() *Layout { return b.layout }
func (b *baseNode) Rows() float64   { return b.rows }
func (b *baseNode) Cost() float64   { return b.cost }

// batchNode is implemented by nodes that can run as a native batch
// operator. OpenBatch reports ok=false when the node was not planned in
// batch mode, in which case callers fall back to Open.
type batchNode interface {
	OpenBatch(ec *exec.ExecCtx) (it exec.BatchIterator, ok bool)
}

// openBatch opens child as a batch stream: natively when the child was
// planned in batch mode, otherwise through a RowToBatch adapter (the
// boundary above Sort/joins).
func openBatch(ec *exec.ExecCtx, child Node, size int) exec.BatchIterator {
	if bn, ok := child.(batchNode); ok {
		if it, native := bn.OpenBatch(ec); native {
			return it
		}
	}
	return &exec.RowToBatch{In: child.Open(ec), Size: size}
}

// execView resolves a scan's exec-time read view: a statement context pins
// (or reuses) the owner heap's latest snapshot; without one the plan-time
// view is read directly.
func execView(ec *exec.ExecCtx, v storage.ReadView) storage.ReadView {
	if ec == nil {
		return v
	}
	return ec.View(v.Owner())
}

// batchAnnotation is the EXPLAIN suffix for batch-mode operators; nodes
// return "" when running row-at-a-time.
type batchAnnotated interface {
	batchAnnotation() string
}

// ---------- Scan ----------

// ScanNode is a sequential scan with pushed-down filter conjuncts. Heap is
// the plan-time read view used for costing and plan shaping; Open re-binds
// the scan to the statement's pinned snapshot through its ExecCtx (PlanSelect
// resets the field to the owner heap after planning, so cached plans do not
// retain the planning-time snapshot's pages).
type ScanNode struct {
	baseNode
	Heap      storage.ReadView
	TableName string
	AliasName string
	Preds     []exec.Expr
	// Batch selects the batch-at-a-time pipeline; BatchSize is rows per
	// RowBatch and Workers > 1 selects the parallel partitioned scan.
	Batch     bool
	BatchSize int
	Workers   int
	// NeedCols, when non-nil, restricts the batch scan to materializing
	// only these column indices (scan column pruning, see
	// pruneScanColumns).
	NeedCols []int
	// Skip, when non-nil, is a factory invoked once per iterator open; the
	// returned test is evaluated against each page's attribute/range
	// summary and pages it reports skippable are never read (see
	// deriveSkips — the factory resolves dictionary IDs per execution).
	// SkipConds is the number of predicate conjuncts the skip test was
	// derived from (EXPLAIN only).
	Skip      func() func(*storage.PageSummary) bool
	SkipConds int
	// Striped selects the striped page mode: frozen heap pages are
	// delivered as column aliases with their segments attached
	// (RowBatch.Segs), so the fused extraction above can read per-attribute
	// vectors. Set by stripeScans on batch scans of segmented heaps.
	Striped bool
	// SelFilter is the in-scan compiled form of Preds for striped scans:
	// ranked conjuncts evaluated page by page against frozen-page column
	// vectors, emitting selection vectors instead of compacted copies
	// (see stripeScans / exec.CompileSelFilter). Nil when Preds is empty
	// or the scan is not striped.
	SelFilter *exec.SelFilter
}

// Label implements Node.
func (s *ScanNode) Label() string {
	if s.AliasName != "" && s.AliasName != s.TableName {
		return fmt.Sprintf("Seq Scan on %s %s", s.TableName, s.AliasName)
	}
	return fmt.Sprintf("Seq Scan on %s", s.TableName)
}

// Details implements Node.
func (s *ScanNode) Details() []string {
	var d []string
	if len(s.Preds) > 0 {
		d = append(d, "Filter: "+predsDisplay(s.Preds))
	}
	if s.Batch {
		line := fmt.Sprintf("Batch Size: %d", s.BatchSize)
		if s.Workers > 1 {
			line += fmt.Sprintf("  Workers: %d", s.Workers)
		}
		d = append(d, line)
	}
	if s.Skip != nil {
		d = append(d, fmt.Sprintf("Page Skip: %d conds", s.SkipConds))
	}
	return d
}

// Children implements Node.
func (s *ScanNode) Children() []Node { return nil }

// Open implements Node.
func (s *ScanNode) Open(ec *exec.ExecCtx) exec.Iterator {
	if it, ok := s.OpenBatch(ec); ok {
		return &exec.BatchToRow{In: it}
	}
	return exec.NewScan(execView(ec, s.Heap), conjoinExec(s.Preds))
}

// OpenBatch implements batchNode.
func (s *ScanNode) OpenBatch(ec *exec.ExecCtx) (exec.BatchIterator, bool) {
	if !s.Batch {
		return nil, false
	}
	v := execView(ec, s.Heap)
	var skip func(*storage.PageSummary) bool
	if s.Skip != nil {
		skip = s.Skip()
	}
	if s.Workers > 1 {
		if s.Striped {
			v.Owner().RecordParallelStriped(1)
		}
		return exec.NewParallelScanStriped(v, conjoinExec(s.Preds), s.BatchSize, s.Workers, s.NeedCols, skip, s.Striped, s.SelFilter), true
	}
	it := exec.NewBatchScan(v, conjoinExec(s.Preds), s.BatchSize)
	it.NeedCols = s.NeedCols
	if skip != nil {
		it.SetPageSkip(skip)
	}
	if s.Striped {
		// A striped scan evaluates its predicates in-scan: frozen pages
		// alias immutable column vectors and filter via selection vectors
		// (exec.SelFilter); row-form pages compact in place.
		if s.SelFilter != nil {
			it.SetSelFilter(s.SelFilter)
		}
		it.EnableStriped()
	}
	return it, true
}

func (s *ScanNode) batchAnnotation() string {
	if !s.Batch {
		return ""
	}
	if s.Workers > 1 {
		if s.Striped {
			return " (batch, parallel, striped)"
		}
		return " (batch, parallel)"
	}
	if s.Striped {
		if len(s.Preds) > 0 {
			return " (batch, striped, sel)"
		}
		return " (batch, striped)"
	}
	return " (batch)"
}

// ---------- Filter ----------

// FilterNode applies residual predicates above another node.
type FilterNode struct {
	baseNode
	Child     Node
	Preds     []exec.Expr
	Batch     bool
	BatchSize int
}

// Label implements Node.
func (f *FilterNode) Label() string { return "Filter" }

// Details implements Node.
func (f *FilterNode) Details() []string { return []string{"Filter: " + predsDisplay(f.Preds)} }

// Children implements Node.
func (f *FilterNode) Children() []Node { return []Node{f.Child} }

// Open implements Node.
func (f *FilterNode) Open(ec *exec.ExecCtx) exec.Iterator {
	if it, ok := f.OpenBatch(ec); ok {
		return &exec.BatchToRow{In: it}
	}
	return &exec.FilterIter{In: f.Child.Open(ec), Pred: conjoinExec(f.Preds)}
}

// OpenBatch implements batchNode.
func (f *FilterNode) OpenBatch(ec *exec.ExecCtx) (exec.BatchIterator, bool) {
	if !f.Batch {
		return nil, false
	}
	return &exec.BatchFilterIter{In: openBatch(ec, f.Child, f.BatchSize), Pred: conjoinExec(f.Preds)}, true
}

func (f *FilterNode) batchAnnotation() string {
	if !f.Batch {
		return ""
	}
	return " (batch)"
}

// ---------- Project ----------

// ProjectNode computes output expressions.
type ProjectNode struct {
	baseNode
	Child     Node
	Exprs     []exec.Expr
	Batch     bool
	BatchSize int
}

// Label implements Node.
func (p *ProjectNode) Label() string { return "Project" }

// Details implements Node.
func (p *ProjectNode) Details() []string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return []string{"Output: " + strings.Join(parts, ", ")}
}

// Children implements Node.
func (p *ProjectNode) Children() []Node { return []Node{p.Child} }

// Open implements Node.
func (p *ProjectNode) Open(ec *exec.ExecCtx) exec.Iterator {
	if it, ok := p.OpenBatch(ec); ok {
		return &exec.BatchToRow{In: it}
	}
	return &exec.ProjectIter{In: p.Child.Open(ec), Exprs: p.Exprs}
}

// OpenBatch implements batchNode.
func (p *ProjectNode) OpenBatch(ec *exec.ExecCtx) (exec.BatchIterator, bool) {
	if !p.Batch {
		return nil, false
	}
	return &exec.BatchProjectIter{In: openBatch(ec, p.Child, p.BatchSize), Exprs: p.Exprs}, true
}

func (p *ProjectNode) batchAnnotation() string {
	if !p.Batch {
		return ""
	}
	return " (batch)"
}

// ---------- Fused multi-extraction ----------

// MultiExtractNode appends one computed column per extraction request to
// its child's rows, all filled by a single fused kernel that decodes each
// serialized record of column DataIdx once (replacing K independent
// extraction UDF calls in the projection above it). It is inserted by the
// fusion pass (fuseExtracts) and always runs in batch mode.
type MultiExtractNode struct {
	baseNode
	Child   Node
	DataIdx int
	Reqs    []exec.MultiExtractReq
	Factory exec.MultiExtractFactory
	// SegFactory, when non-nil, builds the segment-aware kernel used for
	// batches that carry the data column as a striped ColumnSegment (set by
	// stripeScans when the scan below is striped and the family registered
	// a SegExtractFactory).
	SegFactory exec.SegExtractFactory
	// Family is the fused call family the node was built from (the
	// FuseFamily of the rewritten calls); stripeScans resolves the segment
	// factory with it.
	Family string
	// Source names the fused call family for EXPLAIN (e.g. the reservoir
	// column the keys come from).
	Source    string
	BatchSize int
}

// Label implements Node.
func (m *MultiExtractNode) Label() string { return "Multi Extract" }

// Details implements Node.
func (m *MultiExtractNode) Details() []string {
	parts := make([]string, len(m.Reqs))
	for i, r := range m.Reqs {
		parts[i] = fmt.Sprintf("%q", r.Key)
	}
	return []string{"Keys: " + strings.Join(parts, ", ")}
}

// Children implements Node.
func (m *MultiExtractNode) Children() []Node { return []Node{m.Child} }

// Open implements Node.
func (m *MultiExtractNode) Open(ec *exec.ExecCtx) exec.Iterator {
	it, _ := m.OpenBatch(ec)
	return &exec.BatchToRow{In: it}
}

// OpenBatch implements batchNode. The kernel instance is built per Open so
// each execution (and each goroutine) gets its own scratch state.
func (m *MultiExtractNode) OpenBatch(ec *exec.ExecCtx) (exec.BatchIterator, bool) {
	kernel, err := m.Factory(m.Reqs)
	if err != nil {
		return &errBatchIter{err: err}, true
	}
	var segKernel exec.SegExtractKernel
	if m.SegFactory != nil {
		if segKernel, err = m.SegFactory(m.Reqs); err != nil {
			return &errBatchIter{err: err}, true
		}
	}
	return &exec.BatchMultiExtractIter{
		In:        openBatch(ec, m.Child, m.BatchSize),
		DataIdx:   m.DataIdx,
		Kernel:    kernel,
		SegKernel: segKernel,
		K:         len(m.Reqs),
	}, true
}

func (m *MultiExtractNode) batchAnnotation() string {
	if m.SegFactory != nil {
		return fmt.Sprintf(" (fused extract: %d keys, striped)", len(m.Reqs))
	}
	return fmt.Sprintf(" (fused extract: %d keys)", len(m.Reqs))
}

// errBatchIter surfaces a kernel construction error on first pull.
type errBatchIter struct{ err error }

func (e *errBatchIter) NextBatch() (*exec.RowBatch, error) { return nil, e.err }
func (e *errBatchIter) Close()                             {}

// ---------- Sort / Top-N / Unique ----------

// sortKeyDisplay renders sort keys for EXPLAIN.
func sortKeyDisplay(keys []exec.SortKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return strings.Join(parts, ", ")
}

// heapBelow finds the heap of the first scan under n — the stats sink for
// batch sort / Top-N operator counters.
func heapBelow(n Node) *storage.Heap {
	if s, ok := n.(*ScanNode); ok {
		return s.Heap.Owner()
	}
	for _, c := range n.Children() {
		if h := heapBelow(c); h != nil {
			return h
		}
	}
	return nil
}

// SortNode materializes and sorts its input.
type SortNode struct {
	baseNode
	Child Node
	Keys  []exec.SortKey
	// Batch selects the batch-native permutation sort (BatchSortIter);
	// BatchSize is rows per emitted RowBatch.
	Batch     bool
	BatchSize int
}

// Label implements Node.
func (s *SortNode) Label() string { return "Sort" }

// Details implements Node.
func (s *SortNode) Details() []string {
	return []string{"Sort Key: " + sortKeyDisplay(s.Keys)}
}

// Children implements Node.
func (s *SortNode) Children() []Node { return []Node{s.Child} }

// Open implements Node.
func (s *SortNode) Open(ec *exec.ExecCtx) exec.Iterator {
	if it, ok := s.OpenBatch(ec); ok {
		return &exec.BatchToRow{In: it}
	}
	return &exec.SortIter{In: s.Child.Open(ec), Keys: s.Keys}
}

// OpenBatch implements batchNode.
func (s *SortNode) OpenBatch(ec *exec.ExecCtx) (exec.BatchIterator, bool) {
	if !s.Batch {
		return nil, false
	}
	return &exec.BatchSortIter{
		In: openBatch(ec, s.Child, s.BatchSize), Keys: s.Keys,
		Size: s.BatchSize, Heap: heapBelow(s.Child),
	}, true
}

func (s *SortNode) batchAnnotation() string {
	if !s.Batch {
		return ""
	}
	return " (batch)"
}

// TopNNode is the bounded ORDER BY + LIMIT operator: the planner
// substitutes it for a SortNode directly under a LIMIT (rewriteTopN), so
// only the best N rows are ever materialized.
type TopNNode struct {
	baseNode
	Child     Node
	Keys      []exec.SortKey
	N         int64
	Batch     bool
	BatchSize int
}

// Label implements Node.
func (t *TopNNode) Label() string { return "Top-N" }

// Details implements Node.
func (t *TopNNode) Details() []string {
	return []string{
		"Sort Key: " + sortKeyDisplay(t.Keys),
		fmt.Sprintf("Limit: %d", t.N),
	}
}

// Children implements Node.
func (t *TopNNode) Children() []Node { return []Node{t.Child} }

// Open implements Node. The row fallback is the exact pre-rewrite
// pipeline: a full sort truncated by LIMIT.
func (t *TopNNode) Open(ec *exec.ExecCtx) exec.Iterator {
	if it, ok := t.OpenBatch(ec); ok {
		return &exec.BatchToRow{In: it}
	}
	return &exec.LimitIter{In: &exec.SortIter{In: t.Child.Open(ec), Keys: t.Keys}, N: t.N}
}

// OpenBatch implements batchNode.
func (t *TopNNode) OpenBatch(ec *exec.ExecCtx) (exec.BatchIterator, bool) {
	if !t.Batch {
		return nil, false
	}
	return &exec.BatchTopNIter{
		In: openBatch(ec, t.Child, t.BatchSize), Keys: t.Keys, N: t.N,
		Size: t.BatchSize, Heap: heapBelow(t.Child),
	}, true
}

func (t *TopNNode) batchAnnotation() string {
	if !t.Batch {
		return ""
	}
	return " (batch)"
}

// UniqueNode removes consecutive duplicates of sorted input (the sort-based
// DISTINCT; Table 2's "Unique" operator).
type UniqueNode struct {
	baseNode
	Child Node
}

// Label implements Node.
func (u *UniqueNode) Label() string { return "Unique" }

// Details implements Node.
func (u *UniqueNode) Details() []string { return nil }

// Children implements Node.
func (u *UniqueNode) Children() []Node { return []Node{u.Child} }

// Open implements Node.
func (u *UniqueNode) Open(ec *exec.ExecCtx) exec.Iterator {
	return &exec.UniqueIter{In: u.Child.Open(ec)}
}

// ---------- Aggregation ----------

// HashAggNode groups via hash table (Table 2's "HashAggregate").
type HashAggNode struct {
	baseNode
	Child     Node
	GroupBy   []exec.Expr
	Aggs      []*exec.AggSpec
	AggNames  []string
	Batch     bool
	BatchSize int
}

// Label implements Node.
func (h *HashAggNode) Label() string { return "HashAggregate" }

// Details implements Node.
func (h *HashAggNode) Details() []string {
	if len(h.GroupBy) == 0 {
		return nil
	}
	parts := make([]string, len(h.GroupBy))
	for i, g := range h.GroupBy {
		parts[i] = g.String()
	}
	return []string{"Group Key: " + strings.Join(parts, ", ")}
}

// Children implements Node.
func (h *HashAggNode) Children() []Node { return []Node{h.Child} }

// Open implements Node.
func (h *HashAggNode) Open(ec *exec.ExecCtx) exec.Iterator {
	if it, ok := h.OpenBatch(ec); ok {
		return &exec.BatchToRow{In: it}
	}
	return &exec.HashAggIter{In: h.Child.Open(ec), GroupBy: h.GroupBy, Aggs: h.Aggs}
}

// OpenBatch implements batchNode.
func (h *HashAggNode) OpenBatch(ec *exec.ExecCtx) (exec.BatchIterator, bool) {
	if !h.Batch {
		return nil, false
	}
	return &exec.BatchHashAggIter{
		In: openBatch(ec, h.Child, h.BatchSize), GroupBy: h.GroupBy, Aggs: h.Aggs, Size: h.BatchSize,
	}, true
}

func (h *HashAggNode) batchAnnotation() string {
	if !h.Batch {
		return ""
	}
	return " (batch)"
}

// GroupAggNode groups sorted input (Table 2's "GroupAggregate"); the
// planner puts a SortNode below it.
type GroupAggNode struct {
	baseNode
	Child   Node
	GroupBy []exec.Expr
	Aggs    []*exec.AggSpec
}

// Label implements Node.
func (g *GroupAggNode) Label() string { return "GroupAggregate" }

// Details implements Node.
func (g *GroupAggNode) Details() []string {
	parts := make([]string, len(g.GroupBy))
	for i, ge := range g.GroupBy {
		parts[i] = ge.String()
	}
	return []string{"Group Key: " + strings.Join(parts, ", ")}
}

// Children implements Node.
func (g *GroupAggNode) Children() []Node { return []Node{g.Child} }

// Open implements Node.
func (g *GroupAggNode) Open(ec *exec.ExecCtx) exec.Iterator {
	return &exec.GroupAggIter{In: g.Child.Open(ec), GroupBy: g.GroupBy, Aggs: g.Aggs}
}

// ---------- Joins ----------

// HashJoinNode is an inner equi-join building on the right child.
type HashJoinNode struct {
	baseNode
	Probe     Node
	Build     Node
	ProbeKeys []exec.Expr
	BuildKeys []exec.Expr
	Residual  []exec.Expr
	// Batch selects the adapter-free batch join (BatchHashJoinIter) with a
	// columnar build table.
	Batch     bool
	BatchSize int
}

// Label implements Node.
func (j *HashJoinNode) Label() string { return "Hash Join" }

// Details implements Node.
func (j *HashJoinNode) Details() []string {
	parts := make([]string, len(j.ProbeKeys))
	for i := range j.ProbeKeys {
		parts[i] = j.ProbeKeys[i].String() + " = " + j.BuildKeys[i].String()
	}
	d := []string{"Hash Cond: " + strings.Join(parts, " AND ")}
	if len(j.Residual) > 0 {
		d = append(d, "Join Filter: "+predsDisplay(j.Residual))
	}
	return d
}

// Children implements Node.
func (j *HashJoinNode) Children() []Node { return []Node{j.Probe, j.Build} }

// Open implements Node.
func (j *HashJoinNode) Open(ec *exec.ExecCtx) exec.Iterator {
	if it, ok := j.OpenBatch(ec); ok {
		return &exec.BatchToRow{In: it}
	}
	return &exec.HashJoinIter{
		Probe: j.Probe.Open(ec), Build: j.Build.Open(ec),
		ProbeKeys: j.ProbeKeys, BuildKeys: j.BuildKeys,
		Residual: conjoinExec(j.Residual),
	}
}

// OpenBatch implements batchNode: both sides are consumed batch-at-a-time
// and the build side lives in a columnar table.
func (j *HashJoinNode) OpenBatch(ec *exec.ExecCtx) (exec.BatchIterator, bool) {
	if !j.Batch {
		return nil, false
	}
	return &exec.BatchHashJoinIter{
		Probe: openBatch(ec, j.Probe, j.BatchSize), Build: openBatch(ec, j.Build, j.BatchSize),
		ProbeKeys: j.ProbeKeys, BuildKeys: j.BuildKeys,
		Residual:   conjoinExec(j.Residual),
		BuildWidth: len(j.Build.Layout().Cols),
		Size:       j.BatchSize,
	}, true
}

func (j *HashJoinNode) batchAnnotation() string {
	if !j.Batch {
		return ""
	}
	return " (batch)"
}

// MergeJoinNode is an inner equi-join over sorted children (the planner
// inserts the Sorts).
type MergeJoinNode struct {
	baseNode
	Left      Node
	Right     Node
	LeftKeys  []exec.Expr
	RightKeys []exec.Expr
	Residual  []exec.Expr
}

// Label implements Node.
func (j *MergeJoinNode) Label() string { return "Merge Join" }

// Details implements Node.
func (j *MergeJoinNode) Details() []string {
	parts := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		parts[i] = j.LeftKeys[i].String() + " = " + j.RightKeys[i].String()
	}
	d := []string{"Merge Cond: " + strings.Join(parts, " AND ")}
	if len(j.Residual) > 0 {
		d = append(d, "Join Filter: "+predsDisplay(j.Residual))
	}
	return d
}

// Children implements Node.
func (j *MergeJoinNode) Children() []Node { return []Node{j.Left, j.Right} }

// Open implements Node.
func (j *MergeJoinNode) Open(ec *exec.ExecCtx) exec.Iterator {
	return &exec.MergeJoinIter{
		Left: j.Left.Open(ec), Right: j.Right.Open(ec),
		LeftKeys: j.LeftKeys, RightKeys: j.RightKeys,
		Residual: conjoinExec(j.Residual),
	}
}

// NestedLoopNode joins on an arbitrary (or absent) condition.
type NestedLoopNode struct {
	baseNode
	Outer Node
	Inner Node
	Cond  []exec.Expr
}

// Label implements Node.
func (j *NestedLoopNode) Label() string { return "Nested Loop" }

// Details implements Node.
func (j *NestedLoopNode) Details() []string {
	if len(j.Cond) == 0 {
		return nil
	}
	return []string{"Join Filter: " + predsDisplay(j.Cond)}
}

// Children implements Node.
func (j *NestedLoopNode) Children() []Node { return []Node{j.Outer, j.Inner} }

// Open implements Node.
func (j *NestedLoopNode) Open(ec *exec.ExecCtx) exec.Iterator {
	return &exec.NestedLoopIter{Outer: j.Outer.Open(ec), Inner: j.Inner.Open(ec), Cond: conjoinExec(j.Cond)}
}

// ---------- Limit ----------

// LimitNode truncates output.
type LimitNode struct {
	baseNode
	Child     Node
	N         int64
	Batch     bool
	BatchSize int
}

// Label implements Node.
func (l *LimitNode) Label() string { return fmt.Sprintf("Limit %d", l.N) }

// Details implements Node.
func (l *LimitNode) Details() []string { return nil }

// Children implements Node.
func (l *LimitNode) Children() []Node { return []Node{l.Child} }

// Open implements Node.
func (l *LimitNode) Open(ec *exec.ExecCtx) exec.Iterator {
	if it, ok := l.OpenBatch(ec); ok {
		return &exec.BatchToRow{In: it}
	}
	return &exec.LimitIter{In: l.Child.Open(ec), N: l.N}
}

// OpenBatch implements batchNode.
func (l *LimitNode) OpenBatch(ec *exec.ExecCtx) (exec.BatchIterator, bool) {
	if !l.Batch {
		return nil, false
	}
	return &exec.BatchLimitIter{In: openBatch(ec, l.Child, l.BatchSize), N: l.N}, true
}

func (l *LimitNode) batchAnnotation() string {
	if !l.Batch {
		return ""
	}
	return " (batch)"
}

// ---------- EXPLAIN rendering ----------

// Explain renders the plan tree in a Postgres-like text form.
func Explain(root Node) string {
	var sb strings.Builder
	explainNode(&sb, root, 0, true)
	return sb.String()
}

func explainNode(sb *strings.Builder, n Node, depth int, first bool) {
	indent := strings.Repeat("  ", depth)
	arrow := ""
	if !first {
		arrow = "->  "
	}
	ann := ""
	if ba, ok := n.(batchAnnotated); ok {
		ann = ba.batchAnnotation()
	}
	fmt.Fprintf(sb, "%s%s%s%s  (rows=%.0f cost=%.2f)\n", indent, arrow, n.Label(), ann, math.Ceil(n.Rows()), n.Cost())
	for _, d := range n.Details() {
		fmt.Fprintf(sb, "%s      %s\n", indent, d)
	}
	for _, c := range n.Children() {
		explainNode(sb, c, depth+1, false)
	}
}

// LeafOrder returns the scan targets ("table" or "table alias") in plan
// pre-order — for join plans this is the join order the optimizer chose,
// which the Table 2 experiment diffs between virtual- and physical-column
// states.
func LeafOrder(root Node) []string {
	var out []string
	var walk func(Node)
	walk = func(n Node) {
		if s, ok := n.(*ScanNode); ok {
			name := s.TableName
			if s.AliasName != "" && s.AliasName != s.TableName {
				name = s.AliasName
			}
			out = append(out, name)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(root)
	return out
}

// OperatorNames returns the operator labels of the plan in pre-order —
// convenient for tests and for the Table 2 plan-diff experiment.
func OperatorNames(root Node) []string {
	var out []string
	var walk func(Node)
	walk = func(n Node) {
		label := n.Label()
		if i := strings.Index(label, " on "); i > 0 {
			label = label[:i]
		}
		if strings.HasPrefix(label, "Limit") {
			label = "Limit"
		}
		out = append(out, label)
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(root)
	return out
}
