package plan

import "github.com/sinewdata/sinew/internal/rdbms/exec"

// This file implements the striped-scan routing pass. Every batch scan
// over a heap with frozen column-striped pages switches into striped page
// mode (frozen pages delivered as column aliases; predicates, if any, are
// compiled into an in-scan exec.SelFilter whose ranked conjuncts run
// directly against the page vectors and emit selection vectors). On top of
// that, every MultiExtractNode chain sitting directly on a striped scan
// attaches the family's segment-kernel factory to each MultiExtractNode
// whose data column is segment-backed at that scan. The fused kernels then
// read per-attribute vectors out of the frozen pages instead of decoding
// serialized records row by row; the heap's row-form tail and foreign
// segment types fall back to the row kernel per batch, so results are
// identical either way.

// stripedEligible reports whether scans of this shape may run striped with
// fused extraction reading segment vectors. Predicates no longer
// disqualify the scan: filtered batches keep their page-aliased columns
// (and attached segments) and carry the surviving rows in a selection
// vector.
func (p *Planner) stripedEligible(s *ScanNode) bool {
	return p.scanStripes(s)
}

// scanStripes reports whether the scan itself may deliver frozen pages as
// column aliases.
func (p *Planner) scanStripes(s *ScanNode) bool {
	return p.Cfg != nil && p.Cfg.EnableStriped && s.Batch && s.Heap.Segmented()
}

// stripeScan marks one scan striped and compiles its pushed-down
// predicates into the in-scan selection filter. Extraction atoms inside
// the conjuncts resolve their kernel factories through the session
// registry, so a predicate like json_int(data,'age') > 30 reads the
// segment's attribute vector instead of parsing records.
func (p *Planner) stripeScan(s *ScanNode) {
	s.Striped = true
	if len(s.Preds) > 0 && s.SelFilter == nil {
		width := len(s.Heap.Schema().Cols)
		s.SelFilter = exec.CompileSelFilter(s.Preds, width, p.Funcs.StripedExtract, p.Funcs.MultiExtract)
	}
}

// stripedFusable reports whether a single-key extraction group over child
// is still worth fusing: a striped-eligible scan with a registered segment
// factory benefits even for one key, because only a MultiExtractNode can
// reach the segment vectors.
func (p *Planner) stripedFusable(family string, child Node) bool {
	s, ok := child.(*ScanNode)
	if !ok || !p.stripedEligible(s) {
		return false
	}
	_, ok = p.Funcs.StripedExtract(family)
	return ok
}

// stripeScans walks the plan and routes MultiExtract-over-scan chains
// through the striped page mode.
func (p *Planner) stripeScans(n Node) {
	if n == nil {
		return
	}
	if m, ok := n.(*MultiExtractNode); ok {
		p.stripeChain(m)
	}
	if s, ok := n.(*ScanNode); ok && p.scanStripes(s) {
		// Even without fused extraction above, striped page delivery beats
		// the row transpose: frozen pages arrive as column aliases instead
		// of per-row FillRows copies.
		p.stripeScan(s)
	}
	for _, c := range n.Children() {
		// Avoid double-visiting inner MultiExtractNodes of a chain already
		// handled by stripeChain; re-visiting is harmless (idempotent), so
		// a plain recursive walk keeps this simple.
		p.stripeScans(c)
	}
}

// stripeChain handles one stack of MultiExtractNodes over a scan. Every
// node in the stack gets the segment factory of its family — segments ride
// along batch columns (RowBatch.Segs survives extraction pass-through), so
// upper nodes of the stack see their data column striped too.
func (p *Planner) stripeChain(top *MultiExtractNode) {
	var chain []*MultiExtractNode
	n := Node(top)
	for {
		m, ok := n.(*MultiExtractNode)
		if !ok {
			break
		}
		chain = append(chain, m)
		n = m.Child
	}
	scan, ok := n.(*ScanNode)
	if !ok || !p.stripedEligible(scan) {
		return
	}
	routed := false
	for _, m := range chain {
		if f, ok := p.Funcs.StripedExtract(m.Family); ok {
			m.SegFactory = f
			routed = true
		}
	}
	if routed {
		p.stripeScan(scan)
	}
}
