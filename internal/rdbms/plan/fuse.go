package plan

import (
	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// This file implements the fused-extraction rewrite: when a batch
// projection evaluates two or more fusable extraction calls — calls of the
// form f(col, 'key') whose FuncDef carries a FuseFamily with a registered
// MultiExtractFactory — over the same serialized column, the calls are
// replaced by references to columns appended by a single MultiExtractNode
// below the projection. One kernel invocation then decodes each record
// once for all keys, instead of N independent UDF evaluations re-walking
// the record per key.
//
// Calls inside lazily evaluated expressions (COALESCE, AND/OR, IN, ANY)
// are left alone: the row-wise fallback skips them for rows where an
// earlier branch decides the result (the COALESCE-for-dirty-columns
// contract, §3.1.4), and a fused kernel would evaluate them eagerly.

// fuseSlotKey identifies one distinct extraction request within a plan's
// projection: the call family, the input column, and the (key, type)
// request.
type fuseSlotKey struct {
	family  string
	dataIdx int
	key     string
	typ     uint8
	any     bool
}

// fuseExtracts walks the plan tree and applies the fusion rewrite to every
// batch-mode projection and to batch sort / Top-N keys (a sort key like
// extract_int(data, 'k') otherwise re-parses every record row-wise inside
// the sort's key evaluation, even over a striped scan).
func (p *Planner) fuseExtracts(n Node) {
	if n == nil {
		return
	}
	// Children first: fusing a sort's keys widens the sort's output (the
	// appended key columns pass through it), and every ancestor's column
	// arithmetic must see the widened layout.
	for _, c := range n.Children() {
		p.fuseExtracts(c)
	}
	switch x := n.(type) {
	case *ProjectNode:
		if x.Batch {
			p.fuseProject(x)
		}
	case *SortNode:
		if x.Batch {
			x.Child = p.fuseSortKeys(x.Child, x.Keys, x.BatchSize)
			// The appended key columns ride through the sort: republish its
			// layout so parents index past them.
			x.layout = &Layout{Rows: x.layout.Rows, Cols: x.Child.Layout().Cols}
		}
	case *TopNNode:
		if x.Batch {
			x.Child = p.fuseSortKeys(x.Child, x.Keys, x.BatchSize)
			x.layout = &Layout{Rows: x.layout.Rows, Cols: x.Child.Layout().Cols}
		}
	}
}

// fuseProject rewrites one projection in place when it contains ≥2
// distinct fusable requests over the same column.
func (p *Planner) fuseProject(pn *ProjectNode) {
	slots := make([]*exec.Expr, len(pn.Exprs))
	for i := range pn.Exprs {
		slots[i] = &pn.Exprs[i]
	}
	pn.Child = p.fuseSlots(pn.Child, slots, pn.BatchSize)
}

// fuseSortKeys applies the fusion rewrite to sort-key expressions: fused
// keys become references to columns appended below the sort, so key
// evaluation is one vectorized kernel pass (segment vectors on striped
// scans) instead of a per-row record parse. The appended columns ride
// through the sort as ordinary payload.
func (p *Planner) fuseSortKeys(child Node, keys []exec.SortKey, batchSize int) Node {
	slots := make([]*exec.Expr, len(keys))
	for i := range keys {
		slots[i] = &keys[i].Expr
	}
	return p.fuseSlots(child, slots, batchSize)
}

// fuseSlots is the shared fusion body: it collects fusable extraction
// calls from the expression slots, inserts MultiExtractNodes above child
// for every group worth fusing, rewrites the slots to reference the
// appended columns, and returns the (possibly unchanged) child.
func (p *Planner) fuseSlots(child Node, exprSlots []*exec.Expr, batchSize int) Node {
	childW := len(child.Layout().Cols)

	type slot struct {
		req  exec.MultiExtractReq
		name string
	}
	var order []fuseSlotKey
	slots := map[fuseSlotKey]*slot{}

	// fusableCall resolves e to its slot key when it is a fusable
	// extraction call over a child column.
	fusableCall := func(x *exec.CallExpr) (fuseSlotKey, bool) {
		d := x.Def
		if d == nil || d.FuseFamily == "" || len(x.Args) != 2 {
			return fuseSlotKey{}, false
		}
		ce, okc := x.Args[0].(*exec.ColExpr)
		ke, okk := x.Args[1].(*exec.ConstExpr)
		if !okc || !okk || ce.Idx < 0 || ce.Idx >= childW ||
			ke.Val.IsNull() || ke.Val.Typ != types.Text {
			return fuseSlotKey{}, false
		}
		if _, ok := p.Funcs.MultiExtract(d.FuseFamily); !ok {
			return fuseSlotKey{}, false
		}
		return fuseSlotKey{d.FuseFamily, ce.Idx, ke.Val.S, d.FuseType, d.FuseAny}, true
	}

	var collect func(e exec.Expr)
	collect = func(e exec.Expr) {
		switch x := e.(type) {
		case *exec.CallExpr:
			if sk, ok := fusableCall(x); ok {
				if _, seen := slots[sk]; !seen {
					ret := types.Unknown
					if x.Def.RetType != nil {
						ret = x.Def.RetType(nil)
					}
					slots[sk] = &slot{
						req:  exec.MultiExtractReq{Key: sk.key, Type: sk.typ, Any: sk.any, Ret: ret},
						name: x.String(),
					}
					order = append(order, sk)
				}
				return
			}
			for _, a := range x.Args {
				collect(a)
			}
		case *exec.CoalesceExpr, *exec.InListExpr, *exec.AnyExpr:
			// Lazy contexts: leave their arguments to row-wise evaluation.
		case *exec.BinExpr:
			if x.Op != "AND" && x.Op != "OR" {
				collect(x.L)
				collect(x.R)
			}
		case *exec.NotExpr:
			collect(x.X)
		case *exec.NegExpr:
			collect(x.X)
		case *exec.IsNullExpr:
			collect(x.X)
		case *exec.BetweenExpr:
			collect(x.X)
			collect(x.Lo)
			collect(x.Hi)
		case *exec.LikeExpr:
			collect(x.X)
			collect(x.Pattern)
		case *exec.CastExpr:
			collect(x.X)
		}
	}
	for _, e := range exprSlots {
		collect(*e)
	}

	// Group the requests by (family, input column); each group with ≥2
	// distinct requests becomes one MultiExtractNode.
	type groupKey struct {
		family  string
		dataIdx int
	}
	type group struct {
		gk   groupKey
		keys []fuseSlotKey
	}
	var groups []*group
	byGK := map[groupKey]*group{}
	for _, sk := range order {
		gk := groupKey{sk.family, sk.dataIdx}
		g, ok := byGK[gk]
		if !ok {
			g = &group{gk: gk}
			byGK[gk] = g
			groups = append(groups, g)
		}
		g.keys = append(g.keys, sk)
	}

	cur := child
	colBase := childW
	replaced := map[fuseSlotKey]*exec.ColExpr{}
	for _, g := range groups {
		// Fusing needs ≥2 keys to pay off on the row path (one decode for
		// all keys); a single key still fuses over a striped-eligible scan,
		// where only a MultiExtractNode can reach the segment vectors.
		if len(g.keys) < 2 && !p.stripedFusable(g.gk.family, child) {
			continue
		}
		factory, _ := p.Funcs.MultiExtract(g.gk.family)
		lay := &Layout{Rows: cur.Layout().Rows}
		lay.Cols = append(lay.Cols, cur.Layout().Cols...)
		reqs := make([]exec.MultiExtractReq, 0, len(g.keys))
		for i, sk := range g.keys {
			s := slots[sk]
			reqs = append(reqs, s.req)
			lay.Cols = append(lay.Cols, LayoutCol{Name: s.name, Typ: s.req.Ret})
			replaced[sk] = &exec.ColExpr{Idx: colBase + i, Typ: s.req.Ret, Name: s.name}
		}
		src := ""
		if g.gk.dataIdx < len(child.Layout().Cols) {
			src = child.Layout().Cols[g.gk.dataIdx].Name
		}
		cur = &MultiExtractNode{
			baseNode: baseNode{
				layout: lay,
				rows:   cur.Rows(),
				// One decode pass per row regardless of key count; charge a
				// fraction of the per-call UDF cost per key.
				cost: cur.Cost() + cur.Rows()*float64(len(reqs))*0.01,
			},
			Child:   cur,
			DataIdx: g.gk.dataIdx,
			Reqs:    reqs,
			Factory: factory,
			Family:  g.gk.family,
			Source:  src,
			BatchSize: func() int {
				if batchSize > 0 {
					return batchSize
				}
				return exec.DefaultBatchSize
			}(),
		}
		colBase += len(reqs)
	}
	if cur == child {
		return child
	}

	var rewrite func(e exec.Expr) exec.Expr
	rewrite = func(e exec.Expr) exec.Expr {
		switch x := e.(type) {
		case *exec.CallExpr:
			if sk, ok := fusableCall(x); ok {
				if rc, done := replaced[sk]; done {
					return rc
				}
				return x
			}
			for i := range x.Args {
				x.Args[i] = rewrite(x.Args[i])
			}
		case *exec.BinExpr:
			if x.Op != "AND" && x.Op != "OR" {
				x.L = rewrite(x.L)
				x.R = rewrite(x.R)
			}
		case *exec.NotExpr:
			x.X = rewrite(x.X)
		case *exec.NegExpr:
			x.X = rewrite(x.X)
		case *exec.IsNullExpr:
			x.X = rewrite(x.X)
		case *exec.BetweenExpr:
			x.X = rewrite(x.X)
			x.Lo = rewrite(x.Lo)
			x.Hi = rewrite(x.Hi)
		case *exec.LikeExpr:
			x.X = rewrite(x.X)
			x.Pattern = rewrite(x.Pattern)
		case *exec.CastExpr:
			x.X = rewrite(x.X)
		}
		return e
	}
	for _, e := range exprSlots {
		*e = rewrite(*e)
	}
	return cur
}
