// Package plan builds and costs physical query plans for the embedded
// RDBMS. It binds SQL ASTs against the catalog, estimates cardinalities
// from per-column statistics (with Postgres-style fixed defaults for
// expressions it cannot see through — the mechanism behind Table 2 of the
// Sinew paper), chooses operators and join orders, and renders EXPLAIN
// output.
package plan

import (
	"fmt"
	"strings"

	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/sqlparse"
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// Catalog is what the planner needs to know about tables; the rdbms layer
// implements it.
type Catalog interface {
	// Table resolves a table name to a readable view of its storage (the
	// live heap for single-threaded embedded callers, an epoch-pinned
	// snapshot under concurrent sessions) and the latest ANALYZE statistics
	// (stats may be nil if the table was never analyzed).
	Table(name string) (storage.ReadView, *storage.TableStats, error)
}

// LayoutCol is one column of an intermediate row layout during planning.
type LayoutCol struct {
	Table string // effective (aliased) table name; "" for derived columns
	Name  string
	Typ   types.Type
	// Stats is the column's statistics when it maps directly to a base
	// table column of an analyzed table; nil otherwise (derived columns,
	// un-analyzed tables).
	Stats *storage.ColumnStats
}

// Layout describes the row shape flowing between operators.
type Layout struct {
	Cols []LayoutCol
	// Rows is the estimated row count of the relation carrying this layout
	// at bind time (used for scaling absolute-row default estimates).
	Rows float64
}

// Resolve finds the offset of a column reference; table may be empty for an
// unqualified reference, which must be unambiguous.
func (l *Layout) Resolve(table, name string) (int, error) {
	found := -1
	for i, c := range l.Cols {
		if c.Name != name {
			continue
		}
		if table != "" && c.Table != table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("plan: column reference %q is ambiguous", name)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return 0, fmt.Errorf("plan: column %s.%s does not exist", table, name)
		}
		return 0, fmt.Errorf("plan: column %q does not exist", name)
	}
	return found, nil
}

// Concat returns a layout for the concatenation of two relations (join
// output).
func Concat(a, b *Layout) *Layout {
	out := &Layout{Cols: make([]LayoutCol, 0, len(a.Cols)+len(b.Cols))}
	out.Cols = append(out.Cols, a.Cols...)
	out.Cols = append(out.Cols, b.Cols...)
	return out
}

// compiler turns bound ASTs into executable expressions.
type compiler struct {
	layout *Layout
	funcs  *exec.Registry
	// allowAggs permits aggregate function calls (they are compiled by the
	// aggregate planner, never here; here they are an error).
	context string // "WHERE", "SELECT", ... for error messages
}

// CompileExpr binds and compiles an AST expression against a layout.
// Aggregate calls are rejected; the aggregation planner strips them first.
func CompileExpr(e sqlparse.Expr, layout *Layout, funcs *exec.Registry, context string) (exec.Expr, error) {
	c := &compiler{layout: layout, funcs: funcs, context: context}
	return c.compile(e)
}

func (c *compiler) compile(e sqlparse.Expr) (exec.Expr, error) {
	switch x := e.(type) {
	case *sqlparse.ColumnRef:
		idx, err := c.layout.Resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		col := c.layout.Cols[idx]
		name := col.Name
		if col.Table != "" {
			name = col.Table + "." + col.Name
		}
		return &exec.ColExpr{Idx: idx, Typ: col.Typ, Name: name}, nil
	case *sqlparse.Literal:
		return &exec.ConstExpr{Val: x.Val}, nil
	case *sqlparse.BinaryExpr:
		l, err := c.compile(x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compile(x.R)
		if err != nil {
			return nil, err
		}
		return &exec.BinExpr{Op: x.Op.String(), L: l, R: r}, nil
	case *sqlparse.UnaryExpr:
		sub, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return &exec.NotExpr{X: sub}, nil
		}
		return &exec.NegExpr{X: sub}, nil
	case *sqlparse.IsNullExpr:
		sub, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		return &exec.IsNullExpr{X: sub, Not: x.Not}, nil
	case *sqlparse.BetweenExpr:
		sub, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		lo, err := c.compile(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := c.compile(x.Hi)
		if err != nil {
			return nil, err
		}
		return &exec.BetweenExpr{X: sub, Lo: lo, Hi: hi, Not: x.Not}, nil
	case *sqlparse.InListExpr:
		sub, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		list := make([]exec.Expr, len(x.List))
		for i, le := range x.List {
			ce, err := c.compile(le)
			if err != nil {
				return nil, err
			}
			list[i] = ce
		}
		return &exec.InListExpr{X: sub, List: list, Not: x.Not}, nil
	case *sqlparse.LikeExpr:
		sub, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		pat, err := c.compile(x.Pattern)
		if err != nil {
			return nil, err
		}
		return &exec.LikeExpr{X: sub, Pattern: pat, Not: x.Not}, nil
	case *sqlparse.AnyExpr:
		sub, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		arr, err := c.compile(x.Array)
		if err != nil {
			return nil, err
		}
		return &exec.AnyExpr{X: sub, Op: x.Op.String(), Array: arr}, nil
	case *sqlparse.CastExpr:
		sub, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		return &exec.CastExpr{X: sub, To: x.To}, nil
	case *sqlparse.FuncCall:
		if exec.IsAggName(x.Name) {
			return nil, fmt.Errorf("plan: aggregate function %s() is not allowed in %s", x.Name, c.context)
		}
		if x.Name == "coalesce" {
			// COALESCE gets lazy evaluation (Postgres semantics) instead
			// of the eager-argument builtin path.
			if len(x.Args) == 0 {
				return nil, fmt.Errorf("plan: coalesce() requires at least one argument")
			}
			args := make([]exec.Expr, len(x.Args))
			for i, a := range x.Args {
				ce, err := c.compile(a)
				if err != nil {
					return nil, err
				}
				args[i] = ce
			}
			return &exec.CoalesceExpr{Args: args}, nil
		}
		def, ok := c.funcs.Lookup(x.Name)
		if !ok {
			return nil, fmt.Errorf("plan: function %s() does not exist", x.Name)
		}
		if len(x.Args) < def.MinArgs || (def.MaxArgs >= 0 && len(x.Args) > def.MaxArgs) {
			return nil, fmt.Errorf("plan: wrong number of arguments to %s()", x.Name)
		}
		args := make([]exec.Expr, len(x.Args))
		for i, a := range x.Args {
			ce, err := c.compile(a)
			if err != nil {
				return nil, err
			}
			args[i] = ce
		}
		return &exec.CallExpr{Def: def, Args: args}, nil
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T in %s", e, c.context)
	}
}

// exprDisplayName derives an output column name for an unaliased select
// item, Postgres-style: bare columns keep their name, function calls use
// the function name, everything else is "?column?".
func exprDisplayName(e sqlparse.Expr) string {
	switch x := e.(type) {
	case *sqlparse.ColumnRef:
		return x.Name
	case *sqlparse.FuncCall:
		return x.Name
	case *sqlparse.CastExpr:
		return exprDisplayName(x.X)
	default:
		return "?column?"
	}
}

// NormalizeRefs is the exported form of normalizeRefs for the rdbms layer's
// DML compilation.
func NormalizeRefs(e sqlparse.Expr, layout *Layout) (sqlparse.Expr, error) {
	return normalizeRefs(e, layout)
}

// normalizeRefs fully qualifies every column reference in e with its
// effective table name so that structurally identical expressions print
// identically (the planner matches GROUP BY keys and ORDER BY targets by
// normalized print form).
func normalizeRefs(e sqlparse.Expr, layout *Layout) (sqlparse.Expr, error) {
	var firstErr error
	out := sqlparse.RewriteExpr(e, func(n sqlparse.Expr) sqlparse.Expr {
		cr, ok := n.(*sqlparse.ColumnRef)
		if !ok {
			return n
		}
		idx, err := layout.Resolve(cr.Table, cr.Name)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return n
		}
		col := layout.Cols[idx]
		return &sqlparse.ColumnRef{Table: col.Table, Name: col.Name}
	})
	return out, firstErr
}

// exprKey is the canonical matching key of a normalized expression.
func exprKey(e sqlparse.Expr) string { return sqlparse.PrintExpr(e) }

// containsAggregate reports whether the AST contains an aggregate call.
func containsAggregate(e sqlparse.Expr) bool {
	found := false
	sqlparse.WalkExpr(e, func(n sqlparse.Expr) bool {
		if fc, ok := n.(*sqlparse.FuncCall); ok && exec.IsAggName(fc.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// collectColumnRefs lists the distinct tables referenced by e.
func referencedTables(e sqlparse.Expr) map[string]bool {
	out := make(map[string]bool)
	sqlparse.WalkExpr(e, func(n sqlparse.Expr) bool {
		if cr, ok := n.(*sqlparse.ColumnRef); ok && cr.Table != "" {
			out[cr.Table] = true
		}
		return true
	})
	return out
}

// splitConjuncts flattens nested ANDs into a conjunct list.
func splitConjuncts(e sqlparse.Expr, out []sqlparse.Expr) []sqlparse.Expr {
	if e == nil {
		return out
	}
	if b, ok := e.(*sqlparse.BinaryExpr); ok && b.Op == sqlparse.OpAnd {
		out = splitConjuncts(b.L, out)
		return splitConjuncts(b.R, out)
	}
	return append(out, e)
}

// conjoinExec folds compiled predicates into a single AND tree.
func conjoinExec(preds []exec.Expr) exec.Expr {
	var out exec.Expr
	for _, p := range preds {
		if out == nil {
			out = p
		} else {
			out = &exec.BinExpr{Op: "AND", L: out, R: p}
		}
	}
	return out
}

// predsDisplay renders compiled predicates for EXPLAIN Filter lines.
func predsDisplay(preds []exec.Expr) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}
