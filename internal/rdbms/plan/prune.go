package plan

import "github.com/sinewdata/sinew/internal/rdbms/exec"

// pruneScanColumns pushes referenced-column sets down into batch scans.
// Starting from each projection-like node (Project, HashAggregate,
// GroupAggregate) it collects the columns that node reads and walks down
// through column-transparent operators (Filter, Limit, Sort), adding their
// referenced columns, until it reaches a ScanNode — which then only
// materializes the referenced columns into its batches. Joins, DISTINCT's
// Unique, and unknown nodes conservatively keep full-width scans, as does
// any expression the ColumnsUsed walker does not understand.
func pruneScanColumns(n Node) {
	if n == nil {
		return
	}
	switch x := n.(type) {
	case *ProjectNode:
		set := map[int]bool{}
		pruneChain(x.Child, set, addExprCols(set, x.Exprs...))
	case *HashAggNode:
		set := map[int]bool{}
		ok := addExprCols(set, x.GroupBy...)
		for _, a := range x.Aggs {
			ok = ok && addExprCols(set, a.Arg)
		}
		pruneChain(x.Child, set, ok)
	case *GroupAggNode:
		set := map[int]bool{}
		ok := addExprCols(set, x.GroupBy...)
		for _, a := range x.Aggs {
			ok = ok && addExprCols(set, a.Arg)
		}
		pruneChain(x.Child, set, ok)
	default:
		for _, c := range n.Children() {
			pruneScanColumns(c)
		}
	}
}

// pruneChain continues a pruning walk below a projection-like node: set
// holds the columns known to be read from the rows n produces, ok is false
// once some consumer was not analyzable (the walk then degrades to the
// generic recursion so deeper plans still get pruned).
func pruneChain(n Node, set map[int]bool, ok bool) {
	if !ok {
		pruneScanColumns(n)
		return
	}
	switch x := n.(type) {
	case *FilterNode:
		pruneChain(x.Child, set, addExprCols(set, x.Preds...))
	case *LimitNode:
		pruneChain(x.Child, set, true)
	case *MultiExtractNode:
		// Columns the node appends don't exist below it; what the kernel
		// reads is the serialized data column.
		childW := len(x.Child.Layout().Cols)
		nset := map[int]bool{x.DataIdx: true}
		for j := range set {
			if j < childW {
				nset[j] = true
			}
		}
		pruneChain(x.Child, nset, true)
	case *SortNode:
		sok := true
		for _, k := range x.Keys {
			sok = sok && addExprCols(set, k.Expr)
		}
		pruneChain(x.Child, set, sok)
	case *TopNNode:
		sok := true
		for _, k := range x.Keys {
			sok = sok && addExprCols(set, k.Expr)
		}
		pruneChain(x.Child, set, sok)
	case *ScanNode:
		if !x.Batch || !addExprCols(set, x.Preds...) {
			return
		}
		width := len(x.Heap.Schema().Cols)
		if len(set) >= width {
			return
		}
		cols := make([]int, 0, len(set))
		for j := 0; j < width; j++ {
			if set[j] {
				cols = append(cols, j)
			}
		}
		x.NeedCols = cols
	default:
		pruneScanColumns(n)
	}
}

// addExprCols records every column the expressions read into set and
// reports whether all of them were fully analyzable.
func addExprCols(set map[int]bool, es ...exec.Expr) bool {
	ok := true
	for _, e := range es {
		if e == nil {
			continue
		}
		ok = ok && exec.ColumnsUsed(e, func(i int) { set[i] = true })
	}
	return ok
}
