package plan

import (
	"fmt"
	"math"

	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/sqlparse"
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// Planner builds physical plans.
type Planner struct {
	Cat   Catalog
	Funcs *exec.Registry
	Cfg   *Config
}

// NewPlanner constructs a planner; cfg nil means DefaultConfig.
func NewPlanner(cat Catalog, funcs *exec.Registry, cfg *Config) *Planner {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	return &Planner{Cat: cat, Funcs: funcs, Cfg: cfg}
}

// SelectPlan is a planned SELECT ready to execute or explain.
type SelectPlan struct {
	Root        Node
	ColumnNames []string
	ColumnTypes []types.Type
}

// Explain renders the plan tree.
func (sp *SelectPlan) Explain() string { return Explain(sp.Root) }

// Open instantiates the executor against live heaps (embedded callers
// with no concurrent writers). Concurrent sessions use OpenCtx.
func (sp *SelectPlan) Open() exec.Iterator { return sp.Root.Open(nil) }

// OpenCtx instantiates the executor with a statement execution context:
// every scan resolves its heap to the context's pinned snapshot.
func (sp *SelectPlan) OpenCtx(ec *exec.ExecCtx) exec.Iterator { return sp.Root.Open(ec) }

// Collect runs the plan to a fully materialized result. The common
// projection-over-scan shape takes a fused collector that materializes
// each result row in a single copy out of the heap; every other plan runs
// through the operator pipeline. Reads go to live heaps; concurrent
// sessions use CollectCtx.
func (sp *SelectPlan) Collect() ([]storage.Row, error) {
	return sp.CollectCtx(nil)
}

// CollectCtx is Collect under a statement execution context: all scans of
// the statement read the snapshots ec pins (one per heap), so the result
// is consistent with a single storage epoch per table even while writers
// publish new versions. The caller owns ec and releases it.
func (sp *SelectPlan) CollectCtx(ec *exec.ExecCtx) ([]storage.Row, error) {
	if rows, ok, err := fusedCollect(sp.Root, ec); ok {
		return rows, err
	}
	return exec.Collect(sp.Root.Open(ec))
}

// fusedCollect recognizes [Limit →] Project(plain columns) → filterless
// batch Scan and short-circuits the batch pipeline: the scan's transpose
// into column-major batches and the collector's re-transpose into result
// rows collapse into one heap-to-result copy. Any other shape (filters,
// expressions, aggregates, joins, sorts) reports ok=false.
func fusedCollect(n Node, ec *exec.ExecCtx) (rows []storage.Row, ok bool, err error) {
	limit := int64(-1)
	if l, lok := n.(*LimitNode); lok {
		limit = l.N
		n = l.Child
	}
	p, pok := n.(*ProjectNode)
	if !pok {
		return nil, false, nil
	}
	s, sok := p.Child.(*ScanNode)
	if !sok || !s.Batch || len(s.Preds) > 0 {
		return nil, false, nil
	}
	v := execView(ec, s.Heap)
	width := len(v.Schema().Cols)
	cols := make([]int, len(p.Exprs))
	for i, e := range p.Exprs {
		ce, cok := e.(*exec.ColExpr)
		if !cok || ce.Idx < 0 || ce.Idx >= width {
			return nil, false, nil
		}
		cols[i] = ce.Idx
	}
	rows, err = exec.CollectProjectedScan(v, cols, limit, s.BatchSize)
	return rows, true, err
}

// conjunct is one WHERE predicate with its classification bookkeeping.
type conjunct struct {
	ast    sqlparse.Expr
	tables map[string]bool
	used   bool
	// Equi-join decomposition (valid when isEdge): lhs references only
	// lTable, rhs only rTable.
	isEdge         bool
	lhs, rhs       sqlparse.Expr
	lTable, rTable string
}

// relation is an in-progress join input during greedy ordering.
type relation struct {
	node   Node
	layout *Layout
	tables map[string]bool
}

// PlanSelect builds a physical plan for stmt.
func (p *Planner) PlanSelect(stmt *sqlparse.SelectStmt) (*SelectPlan, error) {
	if len(stmt.From) == 0 {
		return p.planNoFrom(stmt)
	}

	// ----- Bind FROM -----
	rels := make([]*relation, 0, len(stmt.From))
	full := &Layout{}
	seen := map[string]bool{}
	for _, ref := range stmt.From {
		eff := ref.EffectiveName()
		if seen[eff] {
			return nil, fmt.Errorf("plan: table name %q specified more than once", eff)
		}
		seen[eff] = true
		heap, stats, err := p.Cat.Table(ref.Name)
		if err != nil {
			return nil, err
		}
		layout := &Layout{Rows: float64(heap.NumRows())}
		for _, c := range heap.Schema().Cols {
			lc := LayoutCol{Table: eff, Name: c.Name, Typ: c.Typ}
			if stats != nil {
				lc.Stats = stats.Columns[c.Name]
			}
			layout.Cols = append(layout.Cols, lc)
		}
		rels = append(rels, &relation{layout: layout, tables: map[string]bool{eff: true}})
		full.Cols = append(full.Cols, layout.Cols...)
		full.Rows *= math.Max(layout.Rows, 1)
		viewRef := heap
		aliasName := eff
		tableName := ref.Name
		// Scan node built after local predicates are known; stash identity.
		rels[len(rels)-1].node = &ScanNode{Heap: viewRef, TableName: tableName, AliasName: aliasName}
	}

	// ----- Normalize and expand -----
	items, names, err := p.expandItems(stmt, full)
	if err != nil {
		return nil, err
	}
	var whereN sqlparse.Expr
	if stmt.Where != nil {
		whereN, err = normalizeRefs(stmt.Where, full)
		if err != nil {
			return nil, err
		}
		if containsAggregate(whereN) {
			return nil, fmt.Errorf("plan: aggregate functions are not allowed in WHERE")
		}
	}
	groupBy := make([]sqlparse.Expr, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		g2 := substituteAliases(g, items, names)
		if groupBy[i], err = normalizeRefs(g2, full); err != nil {
			return nil, err
		}
	}
	var having sqlparse.Expr
	if stmt.Having != nil {
		if having, err = normalizeRefs(stmt.Having, full); err != nil {
			return nil, err
		}
	}
	orderBy := make([]sqlparse.OrderItem, len(stmt.OrderBy))
	for i, o := range stmt.OrderBy {
		e := o.Expr
		// ORDER BY <ordinal> references the select list (SQL standard).
		if lit, ok := e.(*sqlparse.Literal); ok && lit.Val.Typ == types.Int {
			n := lit.Val.I
			if n < 1 || n > int64(len(items)) {
				return nil, fmt.Errorf("plan: ORDER BY position %d is not in select list", n)
			}
			e = items[n-1]
		}
		e = substituteAliases(e, items, names)
		if e, err = normalizeRefs(e, full); err != nil {
			return nil, err
		}
		orderBy[i] = sqlparse.OrderItem{Expr: e, Desc: o.Desc}
	}

	// ----- Classify conjuncts -----
	var conjuncts []*conjunct
	for _, cexpr := range splitConjuncts(whereN, nil) {
		cj := &conjunct{ast: cexpr, tables: referencedTables(cexpr)}
		if be, ok := cexpr.(*sqlparse.BinaryExpr); ok && be.Op == sqlparse.OpEq {
			lt, rt := referencedTables(be.L), referencedTables(be.R)
			if len(lt) == 1 && len(rt) == 1 {
				var lTab, rTab string
				for t := range lt {
					lTab = t
				}
				for t := range rt {
					rTab = t
				}
				if lTab != rTab {
					cj.isEdge = true
					cj.lhs, cj.rhs, cj.lTable, cj.rTable = be.L, be.R, lTab, rTab
				}
			}
		}
		conjuncts = append(conjuncts, cj)
	}

	// ----- Build scans with pushed-down local predicates -----
	for _, rel := range rels {
		scan := rel.node.(*ScanNode)
		var localASTs []sqlparse.Expr
		for _, cj := range conjuncts {
			if cj.used || cj.isEdge {
				continue
			}
			if subsetOf(cj.tables, rel.tables) {
				localASTs = append(localASTs, cj.ast)
				cj.used = true
			}
		}
		es := &estimator{cfg: p.Cfg, layout: rel.layout, rows: rel.layout.Rows}
		sel := 1.0
		for _, a := range localASTs {
			sel *= es.selectivity(a)
		}
		preds := make([]exec.Expr, len(localASTs))
		for i, a := range localASTs {
			if preds[i], err = CompileExpr(a, rel.layout, p.Funcs, "WHERE"); err != nil {
				return nil, err
			}
		}
		inRows := rel.layout.Rows
		outRows := math.Max(inRows*sel, 0)
		scan.Preds = preds
		scan.baseNode = baseNode{
			layout: rel.layout,
			rows:   outRows,
			cost: float64(scan.Heap.SizeBytes())*p.Cfg.SeqPageCostPerByte +
				inRows*(p.Cfg.CPUTupleCost+exprCostOf(preds)),
		}
		p.batchify(scan)
	}

	// ----- Greedy join ordering -----
	cur, curLayout, err := p.orderJoins(rels, conjuncts)
	if err != nil {
		return nil, err
	}

	// Any unapplied conjuncts (shouldn't normally remain) go in a filter.
	var leftover []sqlparse.Expr
	for _, cj := range conjuncts {
		if !cj.used {
			leftover = append(leftover, cj.ast)
		}
	}
	if len(leftover) > 0 {
		preds := make([]exec.Expr, len(leftover))
		es := &estimator{cfg: p.Cfg, layout: curLayout, rows: cur.Rows()}
		sel := 1.0
		for i, a := range leftover {
			if preds[i], err = CompileExpr(a, curLayout, p.Funcs, "WHERE"); err != nil {
				return nil, err
			}
			sel *= es.selectivity(a)
		}
		cur = p.batchify(&FilterNode{
			baseNode: baseNode{layout: curLayout, rows: cur.Rows() * sel,
				cost: cur.Cost() + cur.Rows()*(p.Cfg.CPUTupleCost+exprCostOf(preds))},
			Child: cur, Preds: preds,
		})
	}

	// ----- Aggregation -----
	hasAgg := len(groupBy) > 0
	if !hasAgg {
		for _, it := range items {
			if containsAggregate(it) {
				hasAgg = true
				break
			}
		}
	}
	if !hasAgg && having != nil {
		hasAgg = true
	}

	var itemASTs []sqlparse.Expr // ASTs to compile for the final projection
	preProjLayout := curLayout

	if hasAgg {
		cur, preProjLayout, itemASTs, orderBy, err = p.planAggregation(cur, curLayout, groupBy, having, items, orderBy)
		if err != nil {
			return nil, err
		}
	} else {
		itemASTs = items
	}

	// ----- ORDER BY below projection (non-DISTINCT) -----
	if len(orderBy) > 0 && !stmt.Distinct {
		keys := make([]exec.SortKey, len(orderBy))
		for i, o := range orderBy {
			ke, err := CompileExpr(o.Expr, preProjLayout, p.Funcs, "ORDER BY")
			if err != nil {
				return nil, err
			}
			keys[i] = exec.SortKey{Expr: ke, Desc: o.Desc}
		}
		cur = p.newSort(cur, preProjLayout, keys)
	}

	// ----- Projection -----
	exprs := make([]exec.Expr, len(itemASTs))
	outTypes := make([]types.Type, len(itemASTs))
	outLayout := &Layout{Rows: cur.Rows()}
	es := &estimator{cfg: p.Cfg, layout: preProjLayout, rows: cur.Rows()}
	distinctEst := 1.0
	for i, a := range itemASTs {
		e, err := CompileExpr(a, preProjLayout, p.Funcs, "SELECT")
		if err != nil {
			return nil, err
		}
		exprs[i] = e
		outTypes[i] = e.Type()
		outLayout.Cols = append(outLayout.Cols, LayoutCol{Name: names[i], Typ: e.Type()})
		distinctEst *= es.ndistinct(a)
	}
	cur = p.batchify(&ProjectNode{
		baseNode: baseNode{layout: outLayout, rows: cur.Rows(),
			cost: cur.Cost() + cur.Rows()*(p.Cfg.CPUTupleCost+exprCostOf(exprs))},
		Child: cur, Exprs: exprs,
	})

	// ----- DISTINCT -----
	if stmt.Distinct {
		nGroups := math.Min(distinctEst, math.Max(cur.Rows(), 1))
		allCols := make([]exec.Expr, len(outLayout.Cols))
		for i, c := range outLayout.Cols {
			allCols[i] = &exec.ColExpr{Idx: i, Typ: c.Typ, Name: c.Name}
		}
		if nGroups <= p.Cfg.HashAggMaxGroups {
			cur = p.batchify(&HashAggNode{
				baseNode: baseNode{layout: outLayout, rows: nGroups,
					cost: cur.Cost() + cur.Rows()*p.Cfg.CPUTupleCost*2},
				Child: cur, GroupBy: allCols,
			})
		} else {
			keys := make([]exec.SortKey, len(allCols))
			for i, c := range allCols {
				keys[i] = exec.SortKey{Expr: c}
			}
			cur = p.newSort(cur, outLayout, keys)
			cur = &UniqueNode{
				baseNode: baseNode{layout: outLayout, rows: nGroups,
					cost: cur.Cost() + cur.Rows()*p.Cfg.CPUTupleCost},
				Child: cur,
			}
		}
		// ORDER BY above DISTINCT resolves against the selected items:
		// an ORDER BY expression must be one of the projected expressions
		// (matched structurally) or a projected output column name.
		if len(orderBy) > 0 {
			keys := make([]exec.SortKey, len(orderBy))
			for i, o := range orderBy {
				var ke exec.Expr
				for j, a := range itemASTs {
					if exprKey(a) == exprKey(o.Expr) {
						ke = &exec.ColExpr{Idx: j, Typ: outLayout.Cols[j].Typ, Name: names[j]}
						break
					}
				}
				if ke == nil {
					var err error
					ke, err = CompileExpr(o.Expr, outLayout, p.Funcs, "ORDER BY")
					if err != nil {
						return nil, fmt.Errorf("plan: ORDER BY with DISTINCT must reference selected columns: %v", err)
					}
				}
				keys[i] = exec.SortKey{Expr: ke, Desc: o.Desc}
			}
			cur = p.newSort(cur, outLayout, keys)
		}
	}

	// ----- LIMIT -----
	if stmt.Limit >= 0 {
		cur = p.batchify(&LimitNode{
			baseNode: baseNode{layout: cur.Layout(), rows: math.Min(cur.Rows(), float64(stmt.Limit)), cost: cur.Cost()},
			Child:    cur, N: stmt.Limit,
		})
	}

	cur = p.rewriteTopN(cur)
	p.fuseExtracts(cur)
	p.stripeScans(cur)
	pruneScanColumns(cur)
	p.deriveSkips(cur)
	cur = p.parallelize(cur)
	releasePlanViews(cur)
	return &SelectPlan{Root: cur, ColumnNames: names, ColumnTypes: outTypes}, nil
}

// releasePlanViews rebinds every scan to its owner heap once planning is
// done: the plan-time view (an epoch-pinned snapshot under concurrent
// catalogs) was only needed for race-free costing and plan shaping, and a
// cached plan must not keep that snapshot's page versions alive. Execution
// re-resolves views per statement through the ExecCtx.
func releasePlanViews(n Node) {
	if n == nil {
		return
	}
	if s, ok := n.(*ScanNode); ok {
		s.Heap = s.Heap.Owner()
	}
	for _, c := range n.Children() {
		releasePlanViews(c)
	}
}

// planNoFrom handles SELECT <exprs> with no FROM clause.
func (p *Planner) planNoFrom(stmt *sqlparse.SelectStmt) (*SelectPlan, error) {
	layout := &Layout{Rows: 1}
	exprs := make([]exec.Expr, 0, len(stmt.Items))
	names := make([]string, 0, len(stmt.Items))
	outTypes := make([]types.Type, 0, len(stmt.Items))
	outLayout := &Layout{Rows: 1}
	for _, it := range stmt.Items {
		if it.Star {
			return nil, fmt.Errorf("plan: SELECT * requires a FROM clause")
		}
		e, err := CompileExpr(it.Expr, layout, p.Funcs, "SELECT")
		if err != nil {
			return nil, err
		}
		name := it.Alias
		if name == "" {
			name = exprDisplayName(it.Expr)
		}
		exprs = append(exprs, e)
		names = append(names, name)
		outTypes = append(outTypes, e.Type())
		outLayout.Cols = append(outLayout.Cols, LayoutCol{Name: name, Typ: e.Type()})
	}
	root := &ProjectNode{
		baseNode: baseNode{layout: outLayout, rows: 1, cost: exprCostOf(exprs)},
		Child:    &valuesNode{baseNode: baseNode{layout: layout, rows: 1}},
		Exprs:    exprs,
	}
	return &SelectPlan{Root: root, ColumnNames: names, ColumnTypes: outTypes}, nil
}

// valuesNode emits a single empty row (for FROM-less SELECT).
type valuesNode struct{ baseNode }

func (v *valuesNode) Label() string     { return "Result" }
func (v *valuesNode) Details() []string { return nil }
func (v *valuesNode) Children() []Node  { return nil }
func (v *valuesNode) Open(*exec.ExecCtx) exec.Iterator {
	return &exec.SliceIter{Rows: []storage.Row{{}}}
}

// expandItems resolves stars and normalizes item expressions; it returns the
// item ASTs and output column names.
func (p *Planner) expandItems(stmt *sqlparse.SelectStmt, full *Layout) ([]sqlparse.Expr, []string, error) {
	var items []sqlparse.Expr
	var names []string
	for _, it := range stmt.Items {
		if it.Star {
			matched := false
			for _, c := range full.Cols {
				if it.Table != "" && c.Table != it.Table {
					continue
				}
				items = append(items, &sqlparse.ColumnRef{Table: c.Table, Name: c.Name})
				names = append(names, c.Name)
				matched = true
			}
			if !matched {
				return nil, nil, fmt.Errorf("plan: relation %q in star expansion not found", it.Table)
			}
			continue
		}
		n, err := normalizeRefs(it.Expr, full)
		if err != nil {
			return nil, nil, err
		}
		items = append(items, n)
		name := it.Alias
		if name == "" {
			name = exprDisplayName(it.Expr)
		}
		names = append(names, name)
	}
	return items, names, nil
}

// substituteAliases replaces bare column references that name a select-item
// alias with that item's expression (ORDER BY / GROUP BY alias resolution).
func substituteAliases(e sqlparse.Expr, items []sqlparse.Expr, names []string) sqlparse.Expr {
	cr, ok := e.(*sqlparse.ColumnRef)
	if !ok || cr.Table != "" {
		return e
	}
	for i, n := range names {
		if n == cr.Name && items[i] != nil {
			return items[i]
		}
	}
	return e
}

func subsetOf(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// batchify marks a freshly built node as a batch operator when batch
// execution is enabled; row-only children are bridged by a RowToBatch
// adapter at Open time. A ScanNode over a large heap additionally gets a
// parallel partitioned scan, one worker per ParallelScanMinPages pages,
// bounded by GOMAXPROCS.
func (p *Planner) batchify(n Node) Node {
	if p.Cfg == nil || !p.Cfg.EnableBatch {
		return n
	}
	size := p.Cfg.BatchSize
	if size <= 0 {
		size = exec.DefaultBatchSize
	}
	switch x := n.(type) {
	case *ScanNode:
		x.Batch, x.BatchSize = true, size
		if w := p.pipelineWorkers(x.Heap); w > 1 {
			x.Workers = w
		}
	case *FilterNode:
		x.Batch, x.BatchSize = true, size
	case *ProjectNode:
		x.Batch, x.BatchSize = true, size
	case *HashAggNode:
		x.Batch, x.BatchSize = true, size
	case *LimitNode:
		x.Batch, x.BatchSize = true, size
	case *SortNode:
		x.Batch, x.BatchSize = true, size
	case *TopNNode:
		x.Batch, x.BatchSize = true, size
	case *HashJoinNode:
		x.Batch, x.BatchSize = true, size
	}
	return n
}

// newSort wraps child in a SortNode with an n·log n cost term.
func (p *Planner) newSort(child Node, layout *Layout, keys []exec.SortKey) Node {
	n := math.Max(child.Rows(), 1)
	sortCost := child.Cost() + n*math.Log2(n+1)*p.Cfg.CPUOperatorCost*2 + n*p.Cfg.CPUTupleCost
	return p.batchify(&SortNode{
		baseNode: baseNode{layout: layout, rows: child.Rows(), cost: sortCost},
		Child:    child, Keys: keys,
	})
}
