package plan

import (
	"math"

	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/sqlparse"
)

// orderJoins combines the per-table relations into a single join tree using
// greedy smallest-output-first ordering. Estimated cardinalities drive both
// the order and the join algorithm choice, so plans genuinely change when
// the estimates change — which is the mechanism Table 2 of the paper
// demonstrates for virtual vs. physical columns.
func (p *Planner) orderJoins(rels []*relation, conjuncts []*conjunct) (Node, *Layout, error) {
	for len(rels) > 1 {
		type candidate struct {
			i, j     int
			edges    []*conjunct
			rows     float64
			hasEdges bool
		}
		best := candidate{i: -1}
		for i := 0; i < len(rels); i++ {
			for j := i + 1; j < len(rels); j++ {
				edges := edgesBetween(conjuncts, rels[i], rels[j])
				rows := p.estimateJoinRows(rels[i], rels[j], edges)
				c := candidate{i: i, j: j, edges: edges, rows: rows, hasEdges: len(edges) > 0}
				if best.i < 0 ||
					(c.hasEdges && !best.hasEdges) ||
					(c.hasEdges == best.hasEdges && c.rows < best.rows) {
					best = c
				}
			}
		}
		left, right := rels[best.i], rels[best.j]
		joined, err := p.buildJoin(left, right, best.edges, best.rows, conjuncts)
		if err != nil {
			return nil, nil, err
		}
		// Replace the pair with the joined relation.
		out := rels[:0]
		for k, r := range rels {
			if k != best.i && k != best.j {
				out = append(out, r)
			}
		}
		rels = append(out, joined)
	}
	return rels[0].node, rels[0].layout, nil
}

// edgesBetween returns the unused equi-join conjuncts connecting a and b.
func edgesBetween(conjuncts []*conjunct, a, b *relation) []*conjunct {
	var out []*conjunct
	for _, cj := range conjuncts {
		if cj.used || !cj.isEdge {
			continue
		}
		if (a.tables[cj.lTable] && b.tables[cj.rTable]) ||
			(a.tables[cj.rTable] && b.tables[cj.lTable]) {
			out = append(out, cj)
		}
	}
	return out
}

// estimateJoinRows estimates |A ⋈ B| as |A|·|B| / Π max(nd(keyA), nd(keyB)),
// falling back to the cross product when no equi edges exist.
func (p *Planner) estimateJoinRows(a, b *relation, edges []*conjunct) float64 {
	rows := math.Max(a.node.Rows(), 1) * math.Max(b.node.Rows(), 1)
	esA := &estimator{cfg: p.Cfg, layout: a.layout, rows: a.node.Rows()}
	esB := &estimator{cfg: p.Cfg, layout: b.layout, rows: b.node.Rows()}
	for _, e := range edges {
		lhs, rhs := e.lhs, e.rhs
		if !a.tables[e.lTable] {
			lhs, rhs = rhs, lhs
		}
		nd := math.Max(esA.ndistinct(lhs), esB.ndistinct(rhs))
		if nd < 1 {
			nd = 1
		}
		rows /= nd
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

// buildJoin constructs the physical join of two relations, choosing hash vs
// merge vs nested-loop and attaching any residual predicates that become
// applicable.
func (p *Planner) buildJoin(a, b *relation, edges []*conjunct, estRows float64, conjuncts []*conjunct) (*relation, error) {
	unionTables := make(map[string]bool, len(a.tables)+len(b.tables))
	for t := range a.tables {
		unionTables[t] = true
	}
	for t := range b.tables {
		unionTables[t] = true
	}

	// Orient edges so lhs belongs to a and rhs to b; compile keys against
	// each side's layout.
	var aKeys, bKeys []exec.Expr

	for _, e := range edges {
		lhs, rhs := e.lhs, e.rhs
		if !a.tables[e.lTable] {
			lhs, rhs = rhs, lhs
		}
		ak, err := CompileExpr(lhs, a.layout, p.Funcs, "JOIN")
		if err != nil {
			return nil, err
		}
		bk, err := CompileExpr(rhs, b.layout, p.Funcs, "JOIN")
		if err != nil {
			return nil, err
		}
		aKeys = append(aKeys, ak)
		bKeys = append(bKeys, bk)
		e.used = true
	}

	outLayout := Concat(a.layout, b.layout)
	outLayout.Rows = estRows

	// Residuals: unused non-edge conjuncts now fully covered, and not
	// local to either single side (those were pushed into scans).
	var residASTs []sqlparse.Expr
	for _, cj := range conjuncts {
		if cj.used {
			continue
		}
		if subsetOf(cj.tables, unionTables) && !subsetOf(cj.tables, a.tables) && !subsetOf(cj.tables, b.tables) {
			residASTs = append(residASTs, cj.ast)
			cj.used = true
		}
	}
	var residual []exec.Expr
	residSel := 1.0
	es := &estimator{cfg: p.Cfg, layout: outLayout, rows: estRows}
	for _, ra := range residASTs {
		ce, err := CompileExpr(ra, outLayout, p.Funcs, "JOIN")
		if err != nil {
			return nil, err
		}
		residual = append(residual, ce)
		residSel *= es.selectivity(ra)
	}
	estRows = math.Max(estRows*residSel, 1)
	outLayout.Rows = estRows

	rowsA, rowsB := math.Max(a.node.Rows(), 1), math.Max(b.node.Rows(), 1)
	ct, co := p.Cfg.CPUTupleCost, p.Cfg.CPUOperatorCost

	var node Node
	switch {
	case len(edges) == 0:
		// Cross / non-equi join: nested loop with the smaller side inner.
		outer, inner := a, b
		if rowsB > rowsA {
			outer, inner = b, a
			// Layout must match outer ++ inner ordering.
			outLayout = Concat(outer.layout, inner.layout)
			outLayout.Rows = estRows
			residual = residual[:0]
			for _, ra := range residASTs {
				ce, err := CompileExpr(ra, outLayout, p.Funcs, "JOIN")
				if err != nil {
					return nil, err
				}
				residual = append(residual, ce)
			}
		}
		cost := outer.node.Cost() + inner.node.Cost() +
			math.Max(outer.node.Rows(), 1)*math.Max(inner.node.Rows(), 1)*(co+exprCostOf(residual))
		node = &NestedLoopNode{
			baseNode: baseNode{layout: outLayout, rows: estRows, cost: cost},
			Outer:    outer.node, Inner: inner.node, Cond: residual,
		}
	case math.Min(rowsA, rowsB) <= p.Cfg.HashJoinMaxBuildRows:
		// Hash join; build on the smaller side. Output layout is
		// probe ++ build.
		probe, build := a, b
		probeKeys, buildKeys := aKeys, bKeys
		if rowsA < rowsB {
			probe, build = b, a
			probeKeys, buildKeys = bKeys, aKeys
		}
		outLayout = Concat(probe.layout, build.layout)
		outLayout.Rows = estRows
		residual, err := compileAll(residASTs, outLayout, p.Funcs)
		if err != nil {
			return nil, err
		}
		cost := probe.node.Cost() + build.node.Cost() +
			math.Max(build.node.Rows(), 1)*ct*1.5 +
			math.Max(probe.node.Rows(), 1)*(ct+exprCostOf(probeKeys)) +
			estRows*(co+exprCostOf(residual))
		node = p.batchify(&HashJoinNode{
			baseNode: baseNode{layout: outLayout, rows: estRows, cost: cost},
			Probe:    probe.node, Build: build.node,
			ProbeKeys: probeKeys, BuildKeys: buildKeys, Residual: residual,
		})
	default:
		// Merge join with sorts below both inputs.
		aSortKeys := make([]exec.SortKey, len(aKeys))
		for i, k := range aKeys {
			aSortKeys[i] = exec.SortKey{Expr: k}
		}
		bSortKeys := make([]exec.SortKey, len(bKeys))
		for i, k := range bKeys {
			bSortKeys[i] = exec.SortKey{Expr: k}
		}
		leftSorted := p.newSort(a.node, a.layout, aSortKeys)
		rightSorted := p.newSort(b.node, b.layout, bSortKeys)
		cost := leftSorted.Cost() + rightSorted.Cost() +
			(rowsA+rowsB)*ct + estRows*(co+exprCostOf(residual))
		node = &MergeJoinNode{
			baseNode: baseNode{layout: outLayout, rows: estRows, cost: cost},
			Left:     leftSorted, Right: rightSorted,
			LeftKeys: aKeys, RightKeys: bKeys, Residual: residual,
		}
	}
	return &relation{node: node, layout: node.Layout(), tables: unionTables}, nil
}

func compileAll(asts []sqlparse.Expr, layout *Layout, funcs *exec.Registry) ([]exec.Expr, error) {
	out := make([]exec.Expr, len(asts))
	for i, a := range asts {
		e, err := CompileExpr(a, layout, funcs, "JOIN")
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}
