package plan

import (
	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/sqlparse"
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// Config holds the optimizer's cost constants and default selectivities.
// The defaults mirror Postgres where the paper depends on them; most
// importantly DefaultEqRows: a predicate over an expression the optimizer
// has no statistics for (UDF calls such as Sinew's extract_key, i.e.
// virtual columns) is estimated at a fixed 200 rows regardless of the true
// selectivity — §3.1.1 ("the optimizer assumes a fixed selectivity for
// queries over virtual columns (200 rows out of 10 million)").
type Config struct {
	// SeqPageCostPerByte converts scanned bytes into cost units
	// (Postgres seq_page_cost=1.0 per 8 KB page).
	SeqPageCostPerByte float64
	// CPUTupleCost is charged per row processed by an operator.
	CPUTupleCost float64
	// CPUOperatorCost is charged per primitive expression evaluation.
	CPUOperatorCost float64
	// DefaultEqRows is the absolute row estimate for equality over opaque
	// expressions or un-analyzed columns.
	DefaultEqRows float64
	// DefaultIneqSel is the selectivity of a single inequality without
	// usable statistics (Postgres DEFAULT_INEQ_SEL).
	DefaultIneqSel float64
	// DefaultRangeSel is the selectivity of a closed range (BETWEEN)
	// without statistics (Postgres DEFAULT_RANGE_INEQ_SEL).
	DefaultRangeSel float64
	// DefaultMatchSel is the selectivity of LIKE / containment predicates
	// without statistics.
	DefaultMatchSel float64
	// DefaultNDistinct is the assumed distinct count of an opaque grouping
	// or join key.
	DefaultNDistinct float64
	// DefaultNullFrac is the assumed NULL fraction without statistics.
	DefaultNullFrac float64
	// HashAggMaxGroups caps the estimated group count for which a hash
	// aggregate is considered to fit in working memory; beyond it the
	// planner switches to sort-based grouping (Postgres work_mem).
	HashAggMaxGroups float64
	// HashJoinMaxBuildRows caps the estimated build-side size for hash
	// joins; beyond it the planner uses a merge join.
	HashJoinMaxBuildRows float64
	// EnableBatch selects batch-at-a-time (vectorized-lite) pipelines for
	// scan/filter/project/limit/aggregate where available; row-at-a-time
	// operators remain for Sort, joins, and DML behind adapters. Session
	// knob: SET enable_batch = on|off.
	EnableBatch bool
	// BatchSize is the number of rows per RowBatch in batch pipelines.
	// Session knob: SET batch_size = N.
	BatchSize int
	// ParallelScanMinPages is the minimum heap page count per extra scan
	// worker: a scan gets min(GOMAXPROCS, pages/ParallelScanMinPages)
	// workers. Session knob: SET parallel_scan_min_pages = N.
	ParallelScanMinPages int
	// MaxParallelWorkers caps pipeline parallelism: 0 means the
	// GOMAXPROCS-bounded default, 1 forces serial execution, and any other
	// value is an additional upper bound on worker count.
	MaxParallelWorkers int
	// EnablePageSkip turns strict sparse-key predicates into per-page
	// attr-presence / min-max skip checks (storage page summaries).
	EnablePageSkip bool
	// EnableStriped routes batch scans of segmented heaps through the
	// striped page mode: frozen-page column segments feed fused extraction
	// kernels directly, and scan predicates compile into in-scan
	// selection-vector filters over the segment vectors. Session knob:
	// SET enable_striped = on|off.
	EnableStriped bool
}

// DefaultConfig returns Postgres-flavoured defaults.
func DefaultConfig() *Config {
	return &Config{
		SeqPageCostPerByte:   1.0 / 8192,
		CPUTupleCost:         0.01,
		CPUOperatorCost:      0.0025,
		DefaultEqRows:        200,
		DefaultIneqSel:       1.0 / 3,
		DefaultRangeSel:      0.005,
		DefaultMatchSel:      0.005,
		DefaultNDistinct:     200,
		DefaultNullFrac:      0.005,
		HashAggMaxGroups:     10000,
		HashJoinMaxBuildRows: 1 << 20,
		EnableBatch:          true,
		BatchSize:            exec.DefaultBatchSize,
		ParallelScanMinPages: 4,
		MaxParallelWorkers:   0,
		EnablePageSkip:       true,
		EnableStriped:        true,
	}
}

// estimator computes selectivities for bound predicates over a layout.
type estimator struct {
	cfg    *Config
	layout *Layout
	rows   float64 // input row estimate the predicate applies to
}

// selectivity estimates the fraction of rows satisfying the (normalized)
// conjunct e.
func (es *estimator) selectivity(e sqlparse.Expr) float64 {
	switch x := e.(type) {
	case *sqlparse.BinaryExpr:
		switch x.Op {
		case sqlparse.OpAnd:
			return es.selectivity(x.L) * es.selectivity(x.R)
		case sqlparse.OpOr:
			sl, sr := es.selectivity(x.L), es.selectivity(x.R)
			return sl + sr - sl*sr
		case sqlparse.OpEq:
			return es.eqSelectivity(x.L, x.R)
		case sqlparse.OpNe:
			return clampSel(1 - es.eqSelectivity(x.L, x.R))
		case sqlparse.OpLt, sqlparse.OpLe:
			return es.rangeSelectivity(x.L, x.R, true)
		case sqlparse.OpGt, sqlparse.OpGe:
			return es.rangeSelectivity(x.L, x.R, false)
		default:
			return 0.5
		}
	case *sqlparse.UnaryExpr:
		if x.Op == "NOT" {
			return clampSel(1 - es.selectivity(x.X))
		}
		return 0.5
	case *sqlparse.IsNullExpr:
		nf := es.nullFrac(x.X)
		if x.Not {
			return clampSel(1 - nf)
		}
		return clampSel(nf)
	case *sqlparse.BetweenExpr:
		return es.betweenSelectivity(x)
	case *sqlparse.InListExpr:
		s := 0.0
		for _, v := range x.List {
			s += es.eqSelectivity(x.X, v)
		}
		if x.Not {
			s = 1 - s
		}
		return clampSel(s)
	case *sqlparse.LikeExpr:
		if x.Not {
			return clampSel(1 - es.cfg.DefaultMatchSel)
		}
		return es.cfg.DefaultMatchSel
	case *sqlparse.AnyExpr:
		return es.cfg.DefaultMatchSel
	case *sqlparse.FuncCall:
		// Boolean function call as a predicate (e.g. array_contains,
		// matches): opaque.
		return es.cfg.DefaultMatchSel
	case *sqlparse.Literal:
		if !x.Val.IsNull() && x.Val.Typ == types.Bool {
			if x.Val.B {
				return 1
			}
			return 0
		}
		return 0
	default:
		return 0.5
	}
}

// colInfo resolves e to a base column's statistics when e is a direct
// column reference of an analyzed table. opaque is true when the
// expression contains a stats-opaque function call (a UDF such as
// extract_key) — these never get real statistics.
func (es *estimator) colInfo(e sqlparse.Expr) (stats *storage.ColumnStats, opaque bool) {
	switch x := e.(type) {
	case *sqlparse.ColumnRef:
		idx, err := es.layout.Resolve(x.Table, x.Name)
		if err != nil {
			return nil, false
		}
		return es.layout.Cols[idx].Stats, false
	case *sqlparse.CastExpr:
		return es.colInfo(x.X)
	case *sqlparse.FuncCall:
		if x.Name == "coalesce" && len(x.Args) > 0 {
			// COALESCE(col, extract(...)) — the dirty-column rewrite. Its
			// distribution is the column's, but the optimizer cannot know
			// that; Postgres treats it as opaque, and so do we.
			return nil, true
		}
		return nil, true
	default:
		// Look for any function call inside.
		op := false
		sqlparse.WalkExpr(e, func(n sqlparse.Expr) bool {
			if _, ok := n.(*sqlparse.FuncCall); ok {
				op = true
				return false
			}
			return true
		})
		return nil, op
	}
}

func isConst(e sqlparse.Expr) (types.Datum, bool) {
	switch x := e.(type) {
	case *sqlparse.Literal:
		return x.Val, true
	case *sqlparse.CastExpr:
		if d, ok := isConst(x.X); ok {
			if cast, err := types.Cast(d, x.To); err == nil {
				return cast, true
			}
		}
	case *sqlparse.UnaryExpr:
		if x.Op == "-" {
			if d, ok := isConst(x.X); ok && d.IsNumeric() {
				if d.Typ == types.Int {
					return types.NewInt(-d.I), true
				}
				return types.NewFloat(-d.F), true
			}
		}
	}
	return types.Datum{}, false
}

// eqSelectivity estimates expr = expr.
func (es *estimator) eqSelectivity(l, r sqlparse.Expr) float64 {
	// Normalize to column-ish on the left, constant on the right.
	if _, lconst := isConst(l); lconst {
		l, r = r, l
	}
	cval, rconst := isConst(r)
	stats, _ := es.colInfo(l)
	if rconst {
		if stats != nil && stats.RowCount > 0 {
			// MCV hit gives the exact frequency; otherwise spread the
			// non-MCV mass over remaining distincts.
			var mcvTotal float64
			for _, m := range stats.MCVs {
				mcvTotal += m.Freq
				if types.Equal(m.Val, cval) {
					return clampSel(m.Freq)
				}
			}
			nd := float64(stats.NDistinct) - float64(len(stats.MCVs))
			if nd < 1 {
				nd = 1
			}
			nullFrac := float64(stats.NullCount) / float64(stats.RowCount)
			rest := 1 - nullFrac - mcvTotal
			if rest < 0 {
				rest = 0
			}
			return clampSel(rest / nd)
		}
		// Opaque or un-analyzed: the fixed default row estimate.
		return es.defaultEqSel()
	}
	// column = column (within one relation or a residual join condition).
	ndL := es.ndistinct(l)
	ndR := es.ndistinct(r)
	nd := ndL
	if ndR > nd {
		nd = ndR
	}
	if nd < 1 {
		nd = 1
	}
	return clampSel(1 / nd)
}

func (es *estimator) defaultEqSel() float64 {
	if es.rows <= 0 {
		return 0.005
	}
	return clampSel(es.cfg.DefaultEqRows / es.rows)
}

// rangeSelectivity estimates expr < const (lt=true) or expr > const using
// min/max interpolation when numeric statistics exist.
func (es *estimator) rangeSelectivity(l, r sqlparse.Expr, lt bool) float64 {
	if _, lconst := isConst(l); lconst {
		l, r = r, l
		lt = !lt
	}
	cval, rconst := isConst(r)
	if !rconst {
		return es.cfg.DefaultIneqSel
	}
	stats, _ := es.colInfo(l)
	if stats == nil || !stats.HasMinMax {
		return es.cfg.DefaultIneqSel
	}
	frac, ok := interpolate(stats, cval)
	if !ok {
		return es.cfg.DefaultIneqSel
	}
	if lt {
		return clampSel(frac)
	}
	return clampSel(1 - frac)
}

func (es *estimator) betweenSelectivity(b *sqlparse.BetweenExpr) float64 {
	lo, loConst := isConst(b.Lo)
	hi, hiConst := isConst(b.Hi)
	stats, _ := es.colInfo(b.X)
	sel := es.cfg.DefaultRangeSel
	if stats != nil && stats.HasMinMax && loConst && hiConst {
		fLo, okLo := interpolate(stats, lo)
		fHi, okHi := interpolate(stats, hi)
		if okLo && okHi {
			sel = clampSel(fHi - fLo)
		}
	}
	if b.Not {
		sel = 1 - sel
	}
	return clampSel(sel)
}

// interpolate computes the fraction of the column's [min,max] span below v.
func interpolate(stats *storage.ColumnStats, v types.Datum) (float64, bool) {
	minF, ok1 := stats.Min.Float64()
	maxF, ok2 := stats.Max.Float64()
	vF, ok3 := v.Float64()
	if !ok1 || !ok2 || !ok3 {
		return 0, false
	}
	if maxF <= minF {
		if vF >= maxF {
			return 1, true
		}
		return 0, true
	}
	f := (vF - minF) / (maxF - minF)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f, true
}

// nullFrac estimates the NULL fraction of e.
func (es *estimator) nullFrac(e sqlparse.Expr) float64 {
	stats, opaque := es.colInfo(e)
	if stats != nil && stats.RowCount > 0 {
		return float64(stats.NullCount) / float64(stats.RowCount)
	}
	if opaque {
		// Virtual-column extraction: the optimizer has no idea how sparse
		// the key is; Postgres assumes almost nothing is NULL.
		return es.cfg.DefaultNullFrac
	}
	return es.cfg.DefaultNullFrac
}

// ndistinct estimates the number of distinct values of e, used for
// grouping and join cardinality. Opaque expressions get the fixed default
// (200), which is what flips HashAggregate/Unique in Table 2.
func (es *estimator) ndistinct(e sqlparse.Expr) float64 {
	stats, _ := es.colInfo(e)
	if stats != nil && stats.NDistinct > 0 {
		return float64(stats.NDistinct)
	}
	return es.cfg.DefaultNDistinct
}

func clampSel(s float64) float64 {
	if s < 1e-9 {
		return 1e-9
	}
	if s > 1 {
		return 1
	}
	return s
}

// exprCostOf sums compiled-expression evaluation costs (per row).
func exprCostOf(preds []exec.Expr) float64 {
	var c float64
	for _, p := range preds {
		c += p.Cost()
	}
	return c
}
