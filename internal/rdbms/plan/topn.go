package plan

import (
	"math"

	"github.com/sinewdata/sinew/internal/rdbms/exec"
)

// rewriteTopN substitutes a bounded Top-N for a SortNode feeding a LIMIT —
// directly (LIMIT → SORT) or through a cardinality-preserving projection
// (LIMIT → PROJECT → SORT). The LimitNode stays in place (its truncation
// is a no-op over the already bounded stream, and DISTINCT or other
// shapes above the sort keep their semantics); only the sort below stops
// materializing more than N rows.
func (p *Planner) rewriteTopN(n Node) Node {
	l, ok := n.(*LimitNode)
	if !ok || l.N <= 0 {
		return n
	}
	switch c := l.Child.(type) {
	case *SortNode:
		l.Child = p.newTopN(c, l.N)
	case *ProjectNode:
		if s, sok := c.Child.(*SortNode); sok {
			c.Child = p.newTopN(s, l.N)
		}
	}
	return n
}

// newTopN converts a SortNode into a TopNNode bounded at limit rows. The
// cost model replaces the full n·log n sort with an n·log N heap pass.
func (p *Planner) newTopN(s *SortNode, limit int64) Node {
	in := math.Max(s.Child.Rows(), 1)
	bound := math.Min(float64(limit), in)
	cost := s.Child.Cost() + in*math.Log2(bound+1)*p.Cfg.CPUOperatorCost*2 + bound*p.Cfg.CPUTupleCost
	return &TopNNode{
		baseNode: baseNode{layout: s.Layout(), rows: math.Min(s.Rows(), float64(limit)), cost: cost},
		Child:    s.Child,
		Keys:     append([]exec.SortKey(nil), s.Keys...),
		N:        limit,
		Batch:    s.Batch, BatchSize: s.BatchSize,
	}
}
