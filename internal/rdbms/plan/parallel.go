package plan

import (
	"fmt"
	"runtime"

	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// This file implements the morsel-driven parallelization pass: after the
// plan is built, fused, and pruned, parallelize replaces eligible pipeline
// fragments — SCAN→FILTER→PROJECT chains, hash aggregations over such
// chains, and hash-join probes — with a GatherNode that runs the whole
// fragment once per heap partition and merges the worker streams. A
// fragment is eligible when every expression in it is parallel-safe (no
// volatile UDFs), the aggregate (if any) is mergeable (no DISTINCT; MIN/MAX
// over a statically typed argument), it is not under a LIMIT (row budgets
// do not cross goroutines, so LIMIT is a barrier), and the table is large
// enough for the configured worker count to exceed one.

// GatherNode runs its input fragment once per heap partition and merges
// the per-worker streams. Merge strategy:
//
//	ordered          — partition streams drained in partition order; output
//	                   order identical to the serial pipeline.
//	two-phase agg    — per-worker partial hash tables merged, then sorted
//	                   group emission (Agg set).
//	partitioned probe— shared hash-join build table, workers probe their
//	                   partitions (Join set).
type GatherNode struct {
	baseNode
	// Input is the parallelized subtree, displayed as the EXPLAIN child.
	Input Node
	// Scan is the chain's bottom scan; Ops are the chain operators above it
	// in bottom-up order (Filter/Project/MultiExtract), excluding the
	// aggregate or join root when Agg/Join is set.
	Scan *ScanNode
	Ops  []Node
	// Agg selects two-phase aggregation; Join selects partitioned probe;
	// Sort/TopN select sorted merge (each partition sorts locally with
	// appended key columns, the merge k-way-scans on those keys). At most
	// one of the four is non-nil.
	Agg     *HashAggNode
	Join    *HashJoinNode
	Sort    *SortNode
	TopN    *TopNNode
	Workers int
}

// MergeStrategy names how worker streams are combined (EXPLAIN).
func (g *GatherNode) MergeStrategy() string {
	switch {
	case g.Agg != nil:
		return "two-phase agg"
	case g.Join != nil:
		return "partitioned probe"
	case g.Sort != nil || g.TopN != nil:
		return "sorted"
	default:
		return "ordered"
	}
}

// Label implements Node.
func (g *GatherNode) Label() string { return "Gather" }

// Details implements Node.
func (g *GatherNode) Details() []string {
	return []string{fmt.Sprintf("Workers: %d  Merge: %s", g.Workers, g.MergeStrategy())}
}

// Children implements Node.
func (g *GatherNode) Children() []Node { return []Node{g.Input} }

func (g *GatherNode) batchAnnotation() string {
	if g.Scan != nil && g.Scan.Striped {
		if len(g.Scan.Preds) > 0 {
			return " (batch, parallel, striped, sel)"
		}
		return " (batch, parallel, striped)"
	}
	return " (batch, parallel)"
}

// buildPartition constructs one worker's operator chain over a page range
// of view v (the statement's pinned snapshot — every partition scans the
// same frozen page table Partitions was computed from). It runs on the
// worker goroutine, so per-worker scratch (scan eval contexts, fused
// extraction kernels) is instantiated here.
func (g *GatherNode) buildPartition(v storage.ReadView, r storage.PageRange) (exec.BatchIterator, error) {
	// Predicates stay pushed into the partition scans; a striped partition
	// evaluates them in-scan via its SelFilter (the compiled filter is
	// immutable and shared, per-partition kernel/selection state is
	// instantiated lazily on this worker goroutine). Worker-local batch
	// pools in the mergers make selection-carrying and filtered batches
	// safe to hand across the gather channel.
	scan := exec.NewBatchScanRange(v, conjoinExec(g.Scan.Preds), g.Scan.BatchSize, r.Start, r.End)
	scan.NeedCols = g.Scan.NeedCols
	if g.Scan.Skip != nil {
		scan.SetPageSkip(g.Scan.Skip())
	}
	if g.Scan.Striped {
		if g.Scan.SelFilter != nil {
			scan.SetSelFilter(g.Scan.SelFilter)
		}
		scan.EnableStriped()
	}
	var cur exec.BatchIterator = scan
	for _, op := range g.Ops {
		switch x := op.(type) {
		case *FilterNode:
			cur = &exec.BatchFilterIter{In: cur, Pred: conjoinExec(x.Preds)}
		case *ProjectNode:
			cur = &exec.BatchProjectIter{In: cur, Exprs: x.Exprs}
		case *MultiExtractNode:
			kernel, err := x.Factory(x.Reqs)
			if err != nil {
				return nil, err
			}
			men := &exec.BatchMultiExtractIter{In: cur, DataIdx: x.DataIdx, Kernel: kernel, K: len(x.Reqs)}
			if x.SegFactory != nil {
				if men.SegKernel, err = x.SegFactory(x.Reqs); err != nil {
					return nil, err
				}
			}
			cur = men
		default:
			return nil, fmt.Errorf("plan: unparallelizable operator %T in gather chain", op)
		}
	}
	// A sorted-merge gather sorts each partition locally; the appended key
	// columns let the merge compare precomputed keys. Top-N additionally
	// pushes the bound into the partition, so each worker keeps at most N
	// rows.
	switch {
	case g.TopN != nil:
		cur = &exec.BatchTopNIter{
			In: cur, Keys: g.TopN.Keys, N: g.TopN.N, Size: g.TopN.BatchSize,
			AppendKeys: true, Heap: v.Owner(),
		}
	case g.Sort != nil:
		cur = &exec.BatchSortIter{
			In: cur, Keys: g.Sort.Keys, Size: g.Sort.BatchSize,
			AppendKeys: true, Heap: v.Owner(),
		}
	}
	return cur, nil
}

// OpenBatch implements batchNode. The view is resolved once and bound into
// every partition builder, so all workers scan the page table the
// partitions were computed from.
func (g *GatherNode) OpenBatch(ec *exec.ExecCtx) (exec.BatchIterator, bool) {
	v := execView(ec, g.Scan.Heap)
	owner := v.Owner()
	parts := v.Partitions(g.Workers)
	if len(parts) > 1 {
		owner.RecordParallelWorkers(len(parts))
		if g.Scan.Striped {
			owner.RecordParallelStriped(1)
		}
	}
	build := func(r storage.PageRange) (exec.BatchIterator, error) {
		return g.buildPartition(v, r)
	}
	switch {
	case g.Agg != nil:
		return exec.NewParallelHashAgg(parts, build, g.Agg.GroupBy, g.Agg.Aggs, false, g.Agg.BatchSize), true
	case g.Join != nil:
		outWidth := len(g.Join.Layout().Cols)
		buildWidth := len(g.Join.Build.Layout().Cols)
		return exec.NewParallelHashJoin(parts, build, g.Join.Build.Open(ec),
			g.Join.ProbeKeys, g.Join.BuildKeys, conjoinExec(g.Join.Residual),
			g.Scan.BatchSize, outWidth, buildWidth), true
	case g.Sort != nil || g.TopN != nil:
		keys, limit, size := []exec.SortKey(nil), int64(-1), g.Scan.BatchSize
		if g.TopN != nil {
			keys, limit, size = g.TopN.Keys, g.TopN.N, g.TopN.BatchSize
		} else {
			keys, size = g.Sort.Keys, g.Sort.BatchSize
		}
		owner.RecordSortedMergeParts(int64(len(parts)))
		return exec.NewParallelSortedMerge(parts, build, keys, limit, size), true
	default:
		return exec.NewParallelPipeline(parts, build), true
	}
}

// Open implements Node.
func (g *GatherNode) Open(ec *exec.ExecCtx) exec.Iterator {
	it, _ := g.OpenBatch(ec)
	return &exec.BatchToRow{In: it}
}

// pipelineWorkers computes the worker count for a pipeline over h: one
// worker per ParallelScanMinPages pages, bounded by GOMAXPROCS and by the
// max_parallel_workers session setting (0 = GOMAXPROCS default, 1 = force
// serial).
func (p *Planner) pipelineWorkers(h storage.ReadView) int {
	if p.Cfg == nil || !p.Cfg.EnableBatch {
		return 1
	}
	if p.Cfg.MaxParallelWorkers == 1 || p.Cfg.ParallelScanMinPages <= 0 {
		return 1
	}
	w := h.NumPages() / p.Cfg.ParallelScanMinPages
	maxW := runtime.GOMAXPROCS(0)
	if p.Cfg.MaxParallelWorkers > 0 && p.Cfg.MaxParallelWorkers < maxW {
		maxW = p.Cfg.MaxParallelWorkers
	}
	if w > maxW {
		w = maxW
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelize rewrites the plan tree, wrapping eligible fragments in
// GatherNodes. It returns the (possibly replaced) node.
func (p *Planner) parallelize(n Node) Node {
	return p.parallelizeNode(n, false)
}

func (p *Planner) parallelizeNode(n Node, underLimit bool) Node {
	switch x := n.(type) {
	case *LimitNode:
		x.Child = p.parallelizeNode(x.Child, true)
		return x
	case *SortNode:
		// A sort over a parallelizable chain sorts each partition locally
		// and k-way-merges the sorted streams; otherwise it remains a full
		// barrier (a LIMIT above it cannot early-stop the child).
		if g := p.gatherSort(x, nil); g != nil {
			return g
		}
		x.Child = p.parallelizeNode(x.Child, false)
		return x
	case *TopNNode:
		// Top-N pushes its bound into each partition: workers keep at most
		// N rows, the merge stops after emitting N.
		if g := p.gatherSort(nil, x); g != nil {
			return g
		}
		x.Child = p.parallelizeNode(x.Child, false)
		return x
	case *UniqueNode:
		x.Child = p.parallelizeNode(x.Child, underLimit)
		return x
	case *HashAggNode:
		if g := p.gatherAgg(x); g != nil {
			return g
		}
		x.Child = p.parallelizeNode(x.Child, false)
		return x
	case *GroupAggNode:
		x.Child = p.parallelizeNode(x.Child, underLimit)
		return x
	case *HashJoinNode:
		if !underLimit {
			if g := p.gatherJoin(x); g != nil {
				g.Join.Build = p.parallelizeNode(g.Join.Build, false)
				return g
			}
		}
		x.Probe = p.parallelizeNode(x.Probe, underLimit)
		x.Build = p.parallelizeNode(x.Build, false)
		return x
	case *MergeJoinNode:
		x.Left = p.parallelizeNode(x.Left, false)
		x.Right = p.parallelizeNode(x.Right, false)
		return x
	case *NestedLoopNode:
		x.Outer = p.parallelizeNode(x.Outer, underLimit)
		x.Inner = p.parallelizeNode(x.Inner, false)
		return x
	case *FilterNode, *ProjectNode, *MultiExtractNode:
		if !underLimit {
			if g := p.gatherChain(n); g != nil {
				return g
			}
		}
		switch c := n.(type) {
		case *FilterNode:
			c.Child = p.parallelizeNode(c.Child, underLimit)
		case *ProjectNode:
			c.Child = p.parallelizeNode(c.Child, underLimit)
		case *MultiExtractNode:
			c.Child = p.parallelizeNode(c.Child, underLimit)
		}
		return n
	default:
		// ScanNode keeps its scan-level Workers parallelism; other leaves
		// and unknown nodes are left alone.
		return n
	}
}

// chainOf decomposes n into a Filter/Project/MultiExtract chain over a
// batch ScanNode, returning the operators in bottom-up order. ok is false
// when the subtree has any other shape or a non-batch member.
func chainOf(n Node) (ops []Node, scan *ScanNode, ok bool) {
	var topDown []Node
	cur := n
	for {
		switch x := cur.(type) {
		case *ScanNode:
			if !x.Batch {
				return nil, nil, false
			}
			for i := len(topDown) - 1; i >= 0; i-- {
				ops = append(ops, topDown[i])
			}
			return ops, x, true
		case *FilterNode:
			if !x.Batch {
				return nil, nil, false
			}
			topDown = append(topDown, x)
			cur = x.Child
		case *ProjectNode:
			if !x.Batch {
				return nil, nil, false
			}
			topDown = append(topDown, x)
			cur = x.Child
		case *MultiExtractNode:
			topDown = append(topDown, x)
			cur = x.Child
		default:
			return nil, nil, false
		}
	}
}

// chainSafe reports whether every expression in the chain (and the scan's
// pushed-down predicates) is parallel-safe.
func chainSafe(ops []Node, scan *ScanNode) bool {
	for _, e := range scan.Preds {
		if !exec.ParallelSafe(e) {
			return false
		}
	}
	for _, op := range ops {
		switch x := op.(type) {
		case *FilterNode:
			for _, e := range x.Preds {
				if !exec.ParallelSafe(e) {
					return false
				}
			}
		case *ProjectNode:
			for _, e := range x.Exprs {
				if !exec.ParallelSafe(e) {
					return false
				}
			}
		}
	}
	return true
}

// chainWorthwhile reports whether the chain does enough per-row work for a
// gather to pay off. Plain column projections over a filterless scan are
// excluded — they are served by the fused collector (fusedCollect) or the
// parallel scan itself, and a gather would only add clone+merge overhead.
func chainWorthwhile(ops []Node, scan *ScanNode) bool {
	if len(scan.Preds) > 0 {
		return true
	}
	for _, op := range ops {
		switch x := op.(type) {
		case *FilterNode, *MultiExtractNode:
			return true
		case *ProjectNode:
			for _, e := range x.Exprs {
				if _, plain := e.(*exec.ColExpr); !plain {
					return true
				}
			}
		}
	}
	return false
}

// newGather wraps input (a verified chain) in a GatherNode.
func newGather(input Node, ops []Node, scan *ScanNode, workers int) *GatherNode {
	scan.Workers = 0 // partitions are per-worker; the scan itself is serial
	return &GatherNode{
		baseNode: baseNode{layout: input.Layout(), rows: input.Rows(), cost: input.Cost()},
		Input:    input,
		Scan:     scan,
		Ops:      ops,
		Workers:  workers,
	}
}

// gatherChain parallelizes a plain SCAN→FILTER→PROJECT chain.
func (p *Planner) gatherChain(n Node) *GatherNode {
	ops, scan, ok := chainOf(n)
	if !ok || !chainSafe(ops, scan) || !chainWorthwhile(ops, scan) {
		return nil
	}
	w := p.pipelineWorkers(scan.Heap)
	if w <= 1 {
		return nil
	}
	return newGather(n, ops, scan, w)
}

// gatherSort parallelizes a sort (s) or bounded Top-N (t) over a chain as a
// locally-sorted partition fan-out merged with a k-way sorted merge. Exactly
// one of s, t is non-nil. Unlike gatherChain, no chainWorthwhile gate: the
// O(n log n) sort itself is the work worth spreading across workers.
func (p *Planner) gatherSort(s *SortNode, t *TopNNode) *GatherNode {
	var child Node
	var keys []exec.SortKey
	var node Node
	var batch bool
	if t != nil {
		child, keys, node, batch = t.Child, t.Keys, t, t.Batch
	} else {
		child, keys, node, batch = s.Child, s.Keys, s, s.Batch
	}
	if !batch {
		return nil
	}
	for _, k := range keys {
		if !exec.ParallelSafe(k.Expr) {
			return nil
		}
	}
	ops, scan, ok := chainOf(child)
	if !ok || !chainSafe(ops, scan) {
		return nil
	}
	w := p.pipelineWorkers(scan.Heap)
	if w <= 1 {
		return nil
	}
	g := newGather(node, ops, scan, w)
	g.Sort, g.TopN = s, t
	return g
}

// aggsMergeable reports whether two-phase aggregation is exact for aggs:
// DISTINCT aggregates are not (per-worker distinct sets double-count), and
// MIN/MAX over a statically untyped argument could pick a different
// first-seen type than the serial heap-order accumulator.
func aggsMergeable(aggs []*exec.AggSpec) bool {
	for _, a := range aggs {
		if a.Distinct {
			return false
		}
		if (a.Kind == exec.AggMin || a.Kind == exec.AggMax) && a.Arg != nil && a.Arg.Type() == types.Unknown {
			return false
		}
	}
	return true
}

// gatherAgg parallelizes a hash aggregation over a chain as two-phase
// aggregation.
func (p *Planner) gatherAgg(h *HashAggNode) *GatherNode {
	if !h.Batch || !aggsMergeable(h.Aggs) {
		return nil
	}
	for _, g := range h.GroupBy {
		if !exec.ParallelSafe(g) {
			return nil
		}
	}
	for _, a := range h.Aggs {
		if a.Arg != nil && !exec.ParallelSafe(a.Arg) {
			return nil
		}
	}
	ops, scan, ok := chainOf(h.Child)
	if !ok || !chainSafe(ops, scan) {
		return nil
	}
	w := p.pipelineWorkers(scan.Heap)
	if w <= 1 {
		return nil
	}
	g := newGather(h, ops, scan, w)
	g.Agg = h
	return g
}

// gatherJoin parallelizes a hash join whose probe side is a chain: shared
// build table, partitioned probe.
func (p *Planner) gatherJoin(j *HashJoinNode) *GatherNode {
	for _, e := range j.ProbeKeys {
		if !exec.ParallelSafe(e) {
			return nil
		}
	}
	for _, e := range j.BuildKeys {
		if !exec.ParallelSafe(e) {
			return nil
		}
	}
	for _, e := range j.Residual {
		if !exec.ParallelSafe(e) {
			return nil
		}
	}
	ops, scan, ok := chainOf(j.Probe)
	if !ok || !chainSafe(ops, scan) {
		return nil
	}
	w := p.pipelineWorkers(scan.Heap)
	if w <= 1 {
		return nil
	}
	g := newGather(j, ops, scan, w)
	g.Join = j
	return g
}
