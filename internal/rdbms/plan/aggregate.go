package plan

import (
	"fmt"
	"math"

	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/sqlparse"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// aggEnv rewrites post-aggregation expressions: occurrences of a GROUP BY
// key become references to the aggregate output's group columns, and
// aggregate calls become references to its aggregate columns. Anything
// else that still touches a base column is an error ("must appear in the
// GROUP BY clause").
type aggEnv struct {
	groupKeys  []sqlparse.Expr       // normalized group expressions
	groupRefs  []*sqlparse.ColumnRef // post-agg references, one per key
	groupByKey map[string]int

	aggCalls []*sqlparse.FuncCall // unique aggregate calls in input order
	aggByKey map[string]int
}

func newAggEnv(groupKeys []sqlparse.Expr) *aggEnv {
	env := &aggEnv{
		groupKeys:  groupKeys,
		groupByKey: make(map[string]int),
		aggByKey:   make(map[string]int),
	}
	for i, g := range groupKeys {
		env.groupByKey[exprKey(g)] = i
		if cr, ok := g.(*sqlparse.ColumnRef); ok {
			env.groupRefs = append(env.groupRefs, &sqlparse.ColumnRef{Table: cr.Table, Name: cr.Name})
		} else {
			env.groupRefs = append(env.groupRefs, &sqlparse.ColumnRef{Table: "", Name: fmt.Sprintf("$g%d", i)})
		}
	}
	return env
}

// aggRef returns the post-agg reference for aggregate call index j.
func aggRef(j int) *sqlparse.ColumnRef {
	return &sqlparse.ColumnRef{Name: fmt.Sprintf("$a%d", j)}
}

// rewrite maps a normalized expression into post-aggregation space,
// registering aggregate calls as it goes.
func (env *aggEnv) rewrite(e sqlparse.Expr) (sqlparse.Expr, error) {
	if e == nil {
		return nil, nil
	}
	if i, ok := env.groupByKey[exprKey(e)]; ok {
		return env.groupRefs[i], nil
	}
	switch x := e.(type) {
	case *sqlparse.FuncCall:
		if exec.IsAggName(x.Name) {
			key := exprKey(x)
			j, ok := env.aggByKey[key]
			if !ok {
				j = len(env.aggCalls)
				env.aggByKey[key] = j
				env.aggCalls = append(env.aggCalls, x)
			}
			return aggRef(j), nil
		}
		args := make([]sqlparse.Expr, len(x.Args))
		for i, a := range x.Args {
			ra, err := env.rewrite(a)
			if err != nil {
				return nil, err
			}
			args[i] = ra
		}
		return &sqlparse.FuncCall{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}, nil
	case *sqlparse.ColumnRef:
		return nil, fmt.Errorf("plan: column %q must appear in the GROUP BY clause or be used in an aggregate function", displayRef(x))
	case *sqlparse.Literal:
		return x, nil
	case *sqlparse.BinaryExpr:
		l, err := env.rewrite(x.L)
		if err != nil {
			return nil, err
		}
		r, err := env.rewrite(x.R)
		if err != nil {
			return nil, err
		}
		return &sqlparse.BinaryExpr{Op: x.Op, L: l, R: r}, nil
	case *sqlparse.UnaryExpr:
		sub, err := env.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		return &sqlparse.UnaryExpr{Op: x.Op, X: sub}, nil
	case *sqlparse.IsNullExpr:
		sub, err := env.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		return &sqlparse.IsNullExpr{X: sub, Not: x.Not}, nil
	case *sqlparse.BetweenExpr:
		sub, err := env.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		lo, err := env.rewrite(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := env.rewrite(x.Hi)
		if err != nil {
			return nil, err
		}
		return &sqlparse.BetweenExpr{X: sub, Lo: lo, Hi: hi, Not: x.Not}, nil
	case *sqlparse.InListExpr:
		sub, err := env.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		list := make([]sqlparse.Expr, len(x.List))
		for i, a := range x.List {
			ra, err := env.rewrite(a)
			if err != nil {
				return nil, err
			}
			list[i] = ra
		}
		return &sqlparse.InListExpr{X: sub, List: list, Not: x.Not}, nil
	case *sqlparse.LikeExpr:
		sub, err := env.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		pat, err := env.rewrite(x.Pattern)
		if err != nil {
			return nil, err
		}
		return &sqlparse.LikeExpr{X: sub, Pattern: pat, Not: x.Not}, nil
	case *sqlparse.AnyExpr:
		sub, err := env.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		arr, err := env.rewrite(x.Array)
		if err != nil {
			return nil, err
		}
		return &sqlparse.AnyExpr{X: sub, Op: x.Op, Array: arr}, nil
	case *sqlparse.CastExpr:
		sub, err := env.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		return &sqlparse.CastExpr{X: sub, To: x.To}, nil
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T after aggregation", e)
	}
}

func displayRef(cr *sqlparse.ColumnRef) string {
	if cr.Table != "" {
		return cr.Table + "." + cr.Name
	}
	return cr.Name
}

// planAggregation inserts the aggregation operator (hash or sort-based,
// chosen from the estimated group count — the Table 2 decision), the HAVING
// filter, and returns the rewritten item and ORDER BY ASTs together with
// the post-aggregation layout.
func (p *Planner) planAggregation(
	cur Node, curLayout *Layout,
	groupBy []sqlparse.Expr, having sqlparse.Expr,
	items []sqlparse.Expr, orderBy []sqlparse.OrderItem,
) (Node, *Layout, []sqlparse.Expr, []sqlparse.OrderItem, error) {
	env := newAggEnv(groupBy)

	// Rewrite items, HAVING, ORDER BY into post-agg space (registering
	// aggregate calls).
	outItems := make([]sqlparse.Expr, len(items))
	for i, it := range items {
		r, err := env.rewrite(it)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		outItems[i] = r
	}
	var havingOut sqlparse.Expr
	if having != nil {
		r, err := env.rewrite(having)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		havingOut = r
	}
	outOrder := make([]sqlparse.OrderItem, len(orderBy))
	for i, o := range orderBy {
		r, err := env.rewrite(o.Expr)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		outOrder[i] = sqlparse.OrderItem{Expr: r, Desc: o.Desc}
	}

	// Compile group keys and aggregate arguments against the input layout.
	groupExprs := make([]exec.Expr, len(groupBy))
	for i, g := range groupBy {
		ge, err := CompileExpr(g, curLayout, p.Funcs, "GROUP BY")
		if err != nil {
			return nil, nil, nil, nil, err
		}
		groupExprs[i] = ge
	}
	aggSpecs := make([]*exec.AggSpec, len(env.aggCalls))
	for j, call := range env.aggCalls {
		kind, _ := exec.AggFromName(call.Name, call.Star)
		spec := &exec.AggSpec{Kind: kind, Distinct: call.Distinct}
		if !call.Star {
			if len(call.Args) != 1 {
				return nil, nil, nil, nil, fmt.Errorf("plan: aggregate %s() takes exactly one argument", call.Name)
			}
			arg, err := CompileExpr(call.Args[0], curLayout, p.Funcs, "aggregate")
			if err != nil {
				return nil, nil, nil, nil, err
			}
			spec.Arg = arg
		}
		aggSpecs[j] = spec
	}

	// Post-aggregation layout: group columns then aggregate columns.
	aggLayout := &Layout{}
	for i, ref := range env.groupRefs {
		aggLayout.Cols = append(aggLayout.Cols, LayoutCol{
			Table: ref.Table, Name: ref.Name, Typ: groupExprs[i].Type(),
		})
	}
	for j, call := range env.aggCalls {
		typ := aggResultType(call, aggSpecs[j])
		aggLayout.Cols = append(aggLayout.Cols, LayoutCol{Name: fmt.Sprintf("$a%d", j), Typ: typ})
	}

	// Estimate group count and choose the operator.
	es := &estimator{cfg: p.Cfg, layout: curLayout, rows: cur.Rows()}
	nGroups := 1.0
	for _, g := range groupBy {
		nGroups *= es.ndistinct(g)
	}
	nGroups = math.Min(nGroups, math.Max(cur.Rows(), 1))
	aggLayout.Rows = nGroups

	ct, co := p.Cfg.CPUTupleCost, p.Cfg.CPUOperatorCost
	aggEvalCost := exprCostOf(groupExprs)
	for _, s := range aggSpecs {
		if s.Arg != nil {
			aggEvalCost += s.Arg.Cost()
		}
	}
	if len(groupBy) == 0 || nGroups <= p.Cfg.HashAggMaxGroups {
		cur = p.batchify(&HashAggNode{
			baseNode: baseNode{layout: aggLayout, rows: nGroups,
				cost: cur.Cost() + cur.Rows()*(ct+aggEvalCost) + nGroups*co},
			Child: cur, GroupBy: groupExprs, Aggs: aggSpecs,
		})
	} else {
		keys := make([]exec.SortKey, len(groupExprs))
		for i, g := range groupExprs {
			keys[i] = exec.SortKey{Expr: g}
		}
		sorted := p.newSort(cur, curLayout, keys)
		cur = &GroupAggNode{
			baseNode: baseNode{layout: aggLayout, rows: nGroups,
				cost: sorted.Cost() + cur.Rows()*(ct+aggEvalCost)},
			Child: sorted, GroupBy: groupExprs, Aggs: aggSpecs,
		}
	}

	// HAVING filter.
	if havingOut != nil {
		pred, err := CompileExpr(havingOut, aggLayout, p.Funcs, "HAVING")
		if err != nil {
			return nil, nil, nil, nil, err
		}
		cur = p.batchify(&FilterNode{
			baseNode: baseNode{layout: aggLayout, rows: math.Max(cur.Rows()/3, 1),
				cost: cur.Cost() + cur.Rows()*(ct+pred.Cost())},
			Child: cur, Preds: []exec.Expr{pred},
		})
	}
	return cur, aggLayout, outItems, outOrder, nil
}

func aggResultType(call *sqlparse.FuncCall, spec *exec.AggSpec) typesType {
	switch spec.Kind {
	case exec.AggCount, exec.AggCountStar:
		return intType
	case exec.AggAvg:
		return floatType
	case exec.AggSum:
		if spec.Arg != nil {
			return spec.Arg.Type()
		}
		return unknownType
	default: // MIN/MAX keep the argument type
		if spec.Arg != nil {
			return spec.Arg.Type()
		}
		return unknownType
	}
}

// Local aliases keep aggResultType terse.
type typesType = types.Type

var (
	intType     = types.Int
	floatType   = types.Float
	unknownType = types.Unknown
)
