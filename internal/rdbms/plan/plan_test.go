package plan

import (
	"fmt"
	"strings"
	"testing"

	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/sqlparse"
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// memCatalog is a minimal plan.Catalog for tests.
type memCatalog struct {
	heaps map[string]*storage.Heap
	stats map[string]*storage.TableStats
}

func (m *memCatalog) Table(name string) (storage.ReadView, *storage.TableStats, error) {
	h, ok := m.heaps[name]
	if !ok {
		return nil, nil, fmt.Errorf("no table %q", name)
	}
	return h, m.stats[name], nil
}

// buildCatalog creates table t(v int, s text, grp int) with n rows;
// analyzed toggles statistics.
func buildCatalog(t *testing.T, n int, analyzed bool) *memCatalog {
	t.Helper()
	schema, err := storage.NewSchema(
		storage.Column{Name: "v", Typ: types.Int},
		storage.Column{Name: "s", Typ: types.Text},
		storage.Column{Name: "grp", Typ: types.Int},
	)
	if err != nil {
		t.Fatal(err)
	}
	h := storage.NewHeap(schema, nil)
	for i := 0; i < n; i++ {
		h.Insert(storage.Row{
			types.NewInt(int64(i)),
			types.NewText(fmt.Sprintf("s%d", i)),
			types.NewInt(int64(i % 5)),
		})
	}
	cat := &memCatalog{heaps: map[string]*storage.Heap{"t": h}, stats: map[string]*storage.TableStats{}}
	if analyzed {
		cat.stats["t"] = storage.Analyze(h)
	}
	return cat
}

func planQuery(t *testing.T, cat Catalog, sql string) *SelectPlan {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlanner(cat, exec.NewRegistry(), nil)
	sp, err := p.PlanSelect(stmt.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	return sp
}

func runQuery(t *testing.T, cat Catalog, sql string) []storage.Row {
	t.Helper()
	rows, err := exec.Collect(planQuery(t, cat, sql).Open())
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return rows
}

func TestScanRowEstimateWithStats(t *testing.T) {
	cat := buildCatalog(t, 1000, true)
	sp := planQuery(t, cat, `SELECT v FROM t WHERE v < 100`)
	// Interpolated range selectivity: ~10%.
	scan := findScan(sp.Root)
	if scan.Rows() < 50 || scan.Rows() > 200 {
		t.Errorf("range estimate = %.0f, want ~100", scan.Rows())
	}
	// Equality on a unique column estimates ~1 row.
	sp = planQuery(t, cat, `SELECT v FROM t WHERE v = 7`)
	if r := findScan(sp.Root).Rows(); r > 5 {
		t.Errorf("eq estimate = %.0f, want ~1", r)
	}
}

func TestOpaqueExpressionDefaultEstimate(t *testing.T) {
	cat := buildCatalog(t, 10000, true)
	// abs() is stats-opaque: the fixed 200-row default applies (§3.1.1).
	sp := planQuery(t, cat, `SELECT v FROM t WHERE abs(v) = 7`)
	if r := findScan(sp.Root).Rows(); r < 150 || r > 250 {
		t.Errorf("opaque eq estimate = %.0f, want ~200", r)
	}
}

func findScan(n Node) Node {
	if s, ok := n.(*ScanNode); ok {
		return s
	}
	for _, c := range n.Children() {
		if s := findScan(c); s != nil {
			return s
		}
	}
	return nil
}

func TestDistinctStrategyFlip(t *testing.T) {
	cat := buildCatalog(t, 2000, true)
	cfg := DefaultConfig()
	cfg.HashAggMaxGroups = 100

	stmt, _ := sqlparse.Parse(`SELECT DISTINCT v FROM t`)
	p := NewPlanner(cat, exec.NewRegistry(), cfg)
	sp, err := p.PlanSelect(stmt.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	ops := strings.Join(OperatorNames(sp.Root), " ")
	if !strings.Contains(ops, "Unique") {
		t.Errorf("high-cardinality DISTINCT should sort+Unique: %s", ops)
	}
	// Low-cardinality grp hashes.
	stmt, _ = sqlparse.Parse(`SELECT DISTINCT grp FROM t`)
	sp, _ = p.PlanSelect(stmt.(*sqlparse.SelectStmt))
	ops = strings.Join(OperatorNames(sp.Root), " ")
	if !strings.Contains(ops, "HashAggregate") {
		t.Errorf("low-cardinality DISTINCT should hash: %s", ops)
	}
}

func TestGroupByStrategyFlip(t *testing.T) {
	cat := buildCatalog(t, 2000, true)
	cfg := DefaultConfig()
	cfg.HashAggMaxGroups = 100
	p := NewPlanner(cat, exec.NewRegistry(), cfg)

	stmt, _ := sqlparse.Parse(`SELECT v, COUNT(*) FROM t GROUP BY v`)
	sp, err := p.PlanSelect(stmt.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	if ops := strings.Join(OperatorNames(sp.Root), " "); !strings.Contains(ops, "GroupAggregate") {
		t.Errorf("want GroupAggregate: %s", ops)
	}
	stmt, _ = sqlparse.Parse(`SELECT grp, COUNT(*) FROM t GROUP BY grp`)
	sp, _ = p.PlanSelect(stmt.(*sqlparse.SelectStmt))
	if ops := strings.Join(OperatorNames(sp.Root), " "); !strings.Contains(ops, "HashAggregate") {
		t.Errorf("want HashAggregate: %s", ops)
	}
}

func TestAggregateExpressionsAndHaving(t *testing.T) {
	cat := buildCatalog(t, 100, true)
	rows := runQuery(t, cat, `SELECT grp, SUM(v) + 1, COUNT(*) * 2 FROM t GROUP BY grp HAVING SUM(v) > 900 ORDER BY grp`)
	// Sum per grp g: sum of i in [0,100) with i%5==g → 950+20g.
	if len(rows) != 5 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][1].I != 951 || rows[0][2].I != 40 {
		t.Errorf("row0 = %v", rows[0])
	}
}

func TestGroupByValidation(t *testing.T) {
	cat := buildCatalog(t, 10, true)
	stmt, _ := sqlparse.Parse(`SELECT s, COUNT(*) FROM t GROUP BY grp`)
	p := NewPlanner(cat, exec.NewRegistry(), nil)
	if _, err := p.PlanSelect(stmt.(*sqlparse.SelectStmt)); err == nil ||
		!strings.Contains(err.Error(), "GROUP BY") {
		t.Errorf("want GROUP BY validation error, got %v", err)
	}
	// Aggregates in WHERE are rejected.
	stmt, _ = sqlparse.Parse(`SELECT v FROM t WHERE COUNT(*) > 1`)
	if _, err := p.PlanSelect(stmt.(*sqlparse.SelectStmt)); err == nil {
		t.Error("aggregate in WHERE should error")
	}
}

func TestOrderByAliasAndExpression(t *testing.T) {
	cat := buildCatalog(t, 10, true)
	rows := runQuery(t, cat, `SELECT v * -1 AS neg FROM t ORDER BY neg LIMIT 1`)
	if rows[0][0].I != -9 {
		t.Errorf("rows = %v", rows)
	}
	rows = runQuery(t, cat, `SELECT grp, COUNT(*) AS n FROM t GROUP BY grp ORDER BY n DESC, grp LIMIT 2`)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	cat := buildCatalog(t, 5, false)
	cat.heaps["u"] = cat.heaps["t"]
	stmt, _ := sqlparse.Parse(`SELECT v FROM t, u WHERE t.v = u.v`)
	p := NewPlanner(cat, exec.NewRegistry(), nil)
	if _, err := p.PlanSelect(stmt.(*sqlparse.SelectStmt)); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("want ambiguity error, got %v", err)
	}
}

func TestDuplicateTableAlias(t *testing.T) {
	cat := buildCatalog(t, 5, false)
	stmt, _ := sqlparse.Parse(`SELECT 1 FROM t, t`)
	p := NewPlanner(cat, exec.NewRegistry(), nil)
	if _, err := p.PlanSelect(stmt.(*sqlparse.SelectStmt)); err == nil {
		t.Error("duplicate table without alias should error")
	}
}

func TestJoinAlgorithmThreshold(t *testing.T) {
	cat := buildCatalog(t, 2000, true)
	cat.heaps["u"] = cat.heaps["t"]
	cat.stats["u"] = cat.stats["t"]
	cfg := DefaultConfig()
	p := NewPlanner(cat, exec.NewRegistry(), cfg)
	stmt, _ := sqlparse.Parse(`SELECT a.v FROM t a, u b WHERE a.v = b.v`)
	sp, err := p.PlanSelect(stmt.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	if ops := strings.Join(OperatorNames(sp.Root), " "); !strings.Contains(ops, "Hash Join") {
		t.Errorf("under threshold should hash join: %s", ops)
	}
	cfg.HashJoinMaxBuildRows = 10
	sp, _ = p.PlanSelect(stmt.(*sqlparse.SelectStmt))
	if ops := strings.Join(OperatorNames(sp.Root), " "); !strings.Contains(ops, "Merge Join") {
		t.Errorf("over threshold should merge join: %s", ops)
	}
}

func TestCrossJoinUsesNestedLoop(t *testing.T) {
	cat := buildCatalog(t, 10, false)
	cat.heaps["u"] = cat.heaps["t"]
	stmt, _ := sqlparse.Parse(`SELECT 1 FROM t a, u b`)
	p := NewPlanner(cat, exec.NewRegistry(), nil)
	sp, err := p.PlanSelect(stmt.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	if ops := strings.Join(OperatorNames(sp.Root), " "); !strings.Contains(ops, "Nested Loop") {
		t.Errorf("cross join ops: %s", ops)
	}
	rows, _ := exec.Collect(sp.Open())
	if len(rows) != 100 {
		t.Errorf("cross join rows = %d", len(rows))
	}
}

func TestExplainRendering(t *testing.T) {
	cat := buildCatalog(t, 100, true)
	sp := planQuery(t, cat, `SELECT grp, COUNT(*) FROM t WHERE v > 10 GROUP BY grp`)
	text := sp.Explain()
	for _, want := range []string{"Seq Scan on t", "Filter:", "rows=", "cost="} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}
}

func TestLeafOrderAndOperatorNames(t *testing.T) {
	cat := buildCatalog(t, 100, true)
	cat.heaps["u"] = cat.heaps["t"]
	cat.stats["u"] = cat.stats["t"]
	sp := planQuery(t, cat, `SELECT a.v FROM t a, u b WHERE a.v = b.v`)
	leaves := LeafOrder(sp.Root)
	if len(leaves) != 2 {
		t.Errorf("leaves = %v", leaves)
	}
	ops := OperatorNames(sp.Root)
	if ops[0] != "Project" {
		t.Errorf("ops = %v", ops)
	}
}

func TestSelectNoFromPlanning(t *testing.T) {
	cat := buildCatalog(t, 1, false)
	rows := runQuery(t, cat, `SELECT 2 + 2, upper('x')`)
	if len(rows) != 1 || rows[0][0].I != 4 || rows[0][1].S != "X" {
		t.Errorf("rows = %v", rows)
	}
}

func TestSelectivityEstimatorDirect(t *testing.T) {
	cat := buildCatalog(t, 1000, true)
	_, stats, _ := cat.Table("t")
	layout := &Layout{Rows: 1000}
	layout.Cols = append(layout.Cols,
		LayoutCol{Table: "t", Name: "v", Typ: types.Int, Stats: stats.Columns["v"]},
		LayoutCol{Table: "t", Name: "grp", Typ: types.Int, Stats: stats.Columns["grp"]},
	)
	es := &estimator{cfg: DefaultConfig(), layout: layout, rows: 1000}
	parse := func(s string) sqlparse.Expr {
		stmt, err := sqlparse.Parse("SELECT 1 FROM t WHERE " + s)
		if err != nil {
			t.Fatal(err)
		}
		return stmt.(*sqlparse.SelectStmt).Where
	}
	// MCV-backed equality on grp (each value ~20%).
	if sel := es.selectivity(parse("grp = 2")); sel < 0.15 || sel > 0.25 {
		t.Errorf("grp=2 sel = %f", sel)
	}
	// BETWEEN interpolation.
	if sel := es.selectivity(parse("v BETWEEN 100 AND 299")); sel < 0.15 || sel > 0.25 {
		t.Errorf("between sel = %f", sel)
	}
	// NOT inverts.
	if sel := es.selectivity(parse("NOT (grp = 2)")); sel < 0.7 {
		t.Errorf("not sel = %f", sel)
	}
	// OR combines.
	if sel := es.selectivity(parse("grp = 1 OR grp = 2")); sel < 0.3 || sel > 0.5 {
		t.Errorf("or sel = %f", sel)
	}
	// IS NULL uses null fraction (none here).
	if sel := es.selectivity(parse("v IS NULL")); sel > 0.01 {
		t.Errorf("is-null sel = %f", sel)
	}
}

func TestExplainBatchAnnotation(t *testing.T) {
	cat := buildCatalog(t, 100, true)
	sp := planQuery(t, cat, `SELECT grp, COUNT(*) FROM t WHERE v > 10 GROUP BY grp`)
	text := sp.Explain()
	for _, want := range []string{"(batch)", "Batch Size: "} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}
	// Disabling batch execution removes the annotation.
	stmt, err := sqlparse.Parse(`SELECT v FROM t WHERE v > 10`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.EnableBatch = false
	p := NewPlanner(cat, exec.NewRegistry(), cfg)
	sp, err = p.PlanSelect(stmt.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sp.Explain(), "(batch)") {
		t.Errorf("batch annotation with EnableBatch=false:\n%s", sp.Explain())
	}
}

func TestRowAndBatchPlansAgree(t *testing.T) {
	cat := buildCatalog(t, 500, true)
	for _, sql := range []string{
		`SELECT v, s FROM t WHERE v >= 250`,
		`SELECT grp, COUNT(*), SUM(v) FROM t GROUP BY grp ORDER BY grp`,
		`SELECT v * 2 FROM t WHERE grp = 3 LIMIT 7`,
		`SELECT DISTINCT grp FROM t ORDER BY grp`,
		// Scan column pruning: the filter and sort columns are not in the
		// select list, so the pruned scan must still materialize them.
		`SELECT s FROM t WHERE v % 7 = 0`,
		`SELECT s FROM t ORDER BY v DESC LIMIT 20`,
		// Fused projection-over-scan collector (with and without LIMIT).
		`SELECT v, s FROM t`,
		`SELECT s, v, s FROM t LIMIT 13`,
		// Aggregate over a fully pruned scan (no columns referenced).
		`SELECT COUNT(*) FROM t`,
	} {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		rowCfg := DefaultConfig()
		rowCfg.EnableBatch = false
		plans := map[string]*Config{"row": rowCfg, "batch": DefaultConfig()}
		var got map[string][]storage.Row
		got = map[string][]storage.Row{}
		for name, cfg := range plans {
			p := NewPlanner(cat, exec.NewRegistry(), cfg)
			sp, err := p.PlanSelect(stmt.(*sqlparse.SelectStmt))
			if err != nil {
				t.Fatalf("plan %q (%s): %v", sql, name, err)
			}
			rows, err := sp.Collect()
			if err != nil {
				t.Fatalf("run %q (%s): %v", sql, name, err)
			}
			got[name] = rows
		}
		r, b := got["row"], got["batch"]
		if len(r) != len(b) {
			t.Fatalf("%q: row %d rows, batch %d", sql, len(r), len(b))
		}
		for i := range r {
			var rk, bk []byte
			for j := range r[i] {
				rk = r[i][j].HashKey(rk)
				bk = b[i][j].HashKey(bk)
			}
			if string(rk) != string(bk) {
				t.Fatalf("%q row %d: row-mode %v vs batch-mode %v", sql, i, r[i], b[i])
			}
		}
	}
}
