package sqlparse

import (
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any scalar expression node.
type Expr interface{ expr() }

// ---------- Statements ----------

// SelectStmt is a SELECT query. JOIN ... ON clauses are normalized by the
// parser into From entries plus conjuncts appended to Where, so the planner
// sees a single cross-product + filter form.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr // nil when absent
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
}

// SelectItem is one projection: an expression with an optional alias, or a
// star (possibly table-qualified).
type SelectItem struct {
	Expr  Expr   // nil for star items
	Alias string // "" when none
	Star  bool
	Table string // qualifier for "t.*"; "" for bare "*"
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Name  string
	Alias string // "" when none; effective name is Alias or Name
}

// EffectiveName returns the name the table is referenced by in the query.
func (t TableRef) EffectiveName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string // empty means full schema order
	Rows    [][]Expr
}

// UpdateStmt is UPDATE t SET col = expr, ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one column assignment in UPDATE.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] t (col type [NOT NULL]...).
type CreateTableStmt struct {
	Table       string
	IfNotExists bool
	Columns     []ColumnDef
}

// ColumnDef is one column definition in CREATE TABLE / ALTER TABLE ADD.
type ColumnDef struct {
	Name    string
	Typ     types.Type
	NotNull bool
}

// DropTableStmt is DROP TABLE [IF EXISTS] t.
type DropTableStmt struct {
	Table    string
	IfExists bool
}

// AlterTableStmt is ALTER TABLE t ADD COLUMN def | DROP COLUMN name.
type AlterTableStmt struct {
	Table      string
	AddColumn  *ColumnDef // exactly one of AddColumn/DropColumn is set
	DropColumn string
}

// TruncateStmt is TRUNCATE [TABLE] t.
type TruncateStmt struct{ Table string }

// ExplainStmt wraps a statement whose plan should be printed, not run.
type ExplainStmt struct{ Stmt Statement }

// AnalyzeStmt is ANALYZE t, which refreshes optimizer statistics.
type AnalyzeStmt struct{ Table string }

// SetStmt is SET name = value, adjusting a session-level knob (batch_size,
// enable_batch, ...). Value is an Int, Bool, or Text datum.
type SetStmt struct {
	Name  string
	Value types.Datum
}

func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*AlterTableStmt) stmt()  {}
func (*TruncateStmt) stmt()    {}
func (*ExplainStmt) stmt()     {}
func (*AnalyzeStmt) stmt()     {}
func (*SetStmt) stmt()         {}

// ---------- Expressions ----------

// ColumnRef references a column, optionally table-qualified. Name keeps the
// exact identifier (dots included when quoted, e.g. "user.id").
type ColumnRef struct {
	Table string
	Name  string
}

// Literal is a constant value.
type Literal struct{ Val types.Datum }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators, in no particular order.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpConcat
)

// String returns the SQL spelling of the operator.
func (o BinOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpConcat:
		return "||"
	default:
		return "?"
	}
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   BinOp
	L, R Expr
}

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	X  Expr
}

// FuncCall is a scalar or aggregate function call; Star marks COUNT(*).
type FuncCall struct {
	Name     string // lowercase
	Args     []Expr
	Star     bool
	Distinct bool // COUNT(DISTINCT x)
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

// InListExpr is x [NOT] IN (e1, e2, ...).
type InListExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

// LikeExpr is x [NOT] LIKE pattern.
type LikeExpr struct {
	X, Pattern Expr
	Not        bool
}

// AnyExpr is x op ANY(arrayExpr) — used for array containment (NoBench Q8).
type AnyExpr struct {
	X     Expr
	Op    BinOp
	Array Expr
}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	X  Expr
	To types.Type
}

func (*ColumnRef) expr()   {}
func (*Literal) expr()     {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*FuncCall) expr()    {}
func (*IsNullExpr) expr()  {}
func (*BetweenExpr) expr() {}
func (*InListExpr) expr()  {}
func (*LikeExpr) expr()    {}
func (*AnyExpr) expr()     {}
func (*CastExpr) expr()    {}

// WalkExpr calls fn on e and every sub-expression, pre-order. fn returning
// false prunes descent below that node.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *UnaryExpr:
		WalkExpr(x.X, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *IsNullExpr:
		WalkExpr(x.X, fn)
	case *BetweenExpr:
		WalkExpr(x.X, fn)
		WalkExpr(x.Lo, fn)
		WalkExpr(x.Hi, fn)
	case *InListExpr:
		WalkExpr(x.X, fn)
		for _, a := range x.List {
			WalkExpr(a, fn)
		}
	case *LikeExpr:
		WalkExpr(x.X, fn)
		WalkExpr(x.Pattern, fn)
	case *AnyExpr:
		WalkExpr(x.X, fn)
		WalkExpr(x.Array, fn)
	case *CastExpr:
		WalkExpr(x.X, fn)
	}
}

// RewriteExpr rebuilds e bottom-up, replacing each node with fn(node) after
// its children have been rewritten. fn must return a non-nil Expr.
func RewriteExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *BinaryExpr:
		e = &BinaryExpr{Op: x.Op, L: RewriteExpr(x.L, fn), R: RewriteExpr(x.R, fn)}
	case *UnaryExpr:
		e = &UnaryExpr{Op: x.Op, X: RewriteExpr(x.X, fn)}
	case *FuncCall:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = RewriteExpr(a, fn)
		}
		e = &FuncCall{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}
	case *IsNullExpr:
		e = &IsNullExpr{X: RewriteExpr(x.X, fn), Not: x.Not}
	case *BetweenExpr:
		e = &BetweenExpr{X: RewriteExpr(x.X, fn), Lo: RewriteExpr(x.Lo, fn), Hi: RewriteExpr(x.Hi, fn), Not: x.Not}
	case *InListExpr:
		list := make([]Expr, len(x.List))
		for i, a := range x.List {
			list[i] = RewriteExpr(a, fn)
		}
		e = &InListExpr{X: RewriteExpr(x.X, fn), List: list, Not: x.Not}
	case *LikeExpr:
		e = &LikeExpr{X: RewriteExpr(x.X, fn), Pattern: RewriteExpr(x.Pattern, fn), Not: x.Not}
	case *AnyExpr:
		e = &AnyExpr{X: RewriteExpr(x.X, fn), Op: x.Op, Array: RewriteExpr(x.Array, fn)}
	case *CastExpr:
		e = &CastExpr{X: RewriteExpr(x.X, fn), To: x.To}
	}
	return fn(e)
}
