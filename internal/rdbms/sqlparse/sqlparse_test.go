package sqlparse

import (
	"strings"
	"testing"

	"github.com/sinewdata/sinew/internal/rdbms/types"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func mustSelect(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	st, ok := mustParse(t, sql).(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) is %T, want SelectStmt", sql, mustParse(t, sql))
	}
	return st
}

func TestParseSimpleSelect(t *testing.T) {
	st := mustSelect(t, `SELECT a, b FROM t WHERE a = 1`)
	if len(st.Items) != 2 || len(st.From) != 1 || st.Where == nil {
		t.Fatalf("st = %+v", st)
	}
	if st.From[0].Name != "t" {
		t.Errorf("table = %q", st.From[0].Name)
	}
}

func TestParseStar(t *testing.T) {
	st := mustSelect(t, `SELECT * FROM t`)
	if !st.Items[0].Star || st.Items[0].Table != "" {
		t.Fatalf("items = %+v", st.Items)
	}
	st = mustSelect(t, `SELECT t1.*, x FROM t t1`)
	if !st.Items[0].Star || st.Items[0].Table != "t1" {
		t.Fatalf("items = %+v", st.Items)
	}
}

func TestParseQuotedIdentifiers(t *testing.T) {
	st := mustSelect(t, `SELECT "user.id", t."delete.status.id_str" FROM tweets t`)
	c0 := st.Items[0].Expr.(*ColumnRef)
	if c0.Name != "user.id" || c0.Table != "" {
		t.Errorf("c0 = %+v", c0)
	}
	c1 := st.Items[1].Expr.(*ColumnRef)
	if c1.Name != "delete.status.id_str" || c1.Table != "t" {
		t.Errorf("c1 = %+v", c1)
	}
}

func TestCaseFolding(t *testing.T) {
	st := mustSelect(t, `SELECT Foo FROM BAR`)
	if st.Items[0].Expr.(*ColumnRef).Name != "foo" {
		t.Error("unquoted identifiers should lowercase")
	}
	if st.From[0].Name != "bar" {
		t.Error("table names should lowercase")
	}
	// Quoted identifiers preserve case.
	st = mustSelect(t, `SELECT "Foo" FROM bar`)
	if st.Items[0].Expr.(*ColumnRef).Name != "Foo" {
		t.Error("quoted identifiers must preserve case")
	}
}

func TestParseAliases(t *testing.T) {
	st := mustSelect(t, `SELECT a AS x, b y FROM t AS u`)
	if st.Items[0].Alias != "x" || st.Items[1].Alias != "y" {
		t.Errorf("aliases = %q %q", st.Items[0].Alias, st.Items[1].Alias)
	}
	if st.From[0].Alias != "u" || st.From[0].EffectiveName() != "u" {
		t.Errorf("from = %+v", st.From[0])
	}
}

func TestJoinNormalization(t *testing.T) {
	// JOIN ... ON becomes FROM-list + WHERE conjunct.
	st := mustSelect(t, `SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y > 1`)
	if len(st.From) != 2 {
		t.Fatalf("from = %+v", st.From)
	}
	conj, ok := st.Where.(*BinaryExpr)
	if !ok || conj.Op != OpAnd {
		t.Fatalf("where = %+v", st.Where)
	}
	// INNER JOIN and chains.
	st = mustSelect(t, `SELECT * FROM a INNER JOIN b ON a.x = b.x JOIN c ON b.y = c.y`)
	if len(st.From) != 3 {
		t.Fatalf("from = %+v", st.From)
	}
	// CROSS JOIN adds no condition.
	st = mustSelect(t, `SELECT * FROM a CROSS JOIN b`)
	if len(st.From) != 2 || st.Where != nil {
		t.Fatalf("st = %+v", st)
	}
}

func TestOuterJoinRejected(t *testing.T) {
	if _, err := Parse(`SELECT * FROM a LEFT JOIN b ON a.x = b.x`); err == nil {
		t.Error("outer joins should be rejected")
	}
}

func TestPrecedence(t *testing.T) {
	// a = 1 OR b = 2 AND c = 3  parses as  a=1 OR (b=2 AND c=3)
	st := mustSelect(t, `SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3`)
	or := st.Where.(*BinaryExpr)
	if or.Op != OpOr {
		t.Fatalf("top = %v", or.Op)
	}
	if or.R.(*BinaryExpr).Op != OpAnd {
		t.Errorf("rhs = %v", or.R.(*BinaryExpr).Op)
	}
	// 1 + 2 * 3 parses as 1 + (2 * 3)
	st = mustSelect(t, `SELECT 1 + 2 * 3`)
	add := st.Items[0].Expr.(*BinaryExpr)
	if add.Op != OpAdd || add.R.(*BinaryExpr).Op != OpMul {
		t.Errorf("expr = %v", PrintExpr(add))
	}
	// NOT binds tighter than AND.
	st = mustSelect(t, `SELECT 1 FROM t WHERE NOT a AND b`)
	and := st.Where.(*BinaryExpr)
	if and.Op != OpAnd {
		t.Fatalf("top = %v", and.Op)
	}
	if _, ok := and.L.(*UnaryExpr); !ok {
		t.Errorf("lhs = %T", and.L)
	}
}

func TestPredicateForms(t *testing.T) {
	cases := map[string]func(Expr) bool{
		`a BETWEEN 1 AND 2`:     func(e Expr) bool { b, ok := e.(*BetweenExpr); return ok && !b.Not },
		`a NOT BETWEEN 1 AND 2`: func(e Expr) bool { b, ok := e.(*BetweenExpr); return ok && b.Not },
		`a IN (1, 2, 3)`:        func(e Expr) bool { b, ok := e.(*InListExpr); return ok && len(b.List) == 3 },
		`a NOT IN (1)`:          func(e Expr) bool { b, ok := e.(*InListExpr); return ok && b.Not },
		`a IS NULL`:             func(e Expr) bool { b, ok := e.(*IsNullExpr); return ok && !b.Not },
		`a IS NOT NULL`:         func(e Expr) bool { b, ok := e.(*IsNullExpr); return ok && b.Not },
		`a LIKE 'x%'`:           func(e Expr) bool { _, ok := e.(*LikeExpr); return ok },
		`a NOT LIKE 'x%'`:       func(e Expr) bool { b, ok := e.(*LikeExpr); return ok && b.Not },
		`'v' IN arr`:            func(e Expr) bool { b, ok := e.(*AnyExpr); return ok && b.Op == OpEq },
		`a = ANY(arr)`:          func(e Expr) bool { _, ok := e.(*AnyExpr); return ok },
	}
	for sql, check := range cases {
		st := mustSelect(t, `SELECT 1 FROM t WHERE `+sql)
		if !check(st.Where) {
			t.Errorf("WHERE %s parsed as %T: %s", sql, st.Where, PrintExpr(st.Where))
		}
	}
}

func TestFunctionCalls(t *testing.T) {
	st := mustSelect(t, `SELECT COUNT(*), SUM(x), coalesce(a, b, 1), COUNT(DISTINCT y) FROM t`)
	c := st.Items[0].Expr.(*FuncCall)
	if !c.Star || c.Name != "count" {
		t.Errorf("count(*) = %+v", c)
	}
	co := st.Items[2].Expr.(*FuncCall)
	if co.Name != "coalesce" || len(co.Args) != 3 {
		t.Errorf("coalesce = %+v", co)
	}
	cd := st.Items[3].Expr.(*FuncCall)
	if !cd.Distinct {
		t.Errorf("count distinct = %+v", cd)
	}
}

func TestLiterals(t *testing.T) {
	st := mustSelect(t, `SELECT 42, -7, 3.5, 1e3, 'it''s', TRUE, FALSE, NULL`)
	vals := make([]types.Datum, len(st.Items))
	for i, item := range st.Items {
		vals[i] = item.Expr.(*Literal).Val
	}
	if vals[0].I != 42 || vals[1].I != -7 {
		t.Errorf("ints = %v %v", vals[0], vals[1])
	}
	if vals[2].F != 3.5 || vals[3].F != 1000 {
		t.Errorf("floats = %v %v", vals[2], vals[3])
	}
	if vals[4].S != "it's" {
		t.Errorf("string = %q", vals[4].S)
	}
	if !vals[5].B || vals[6].B {
		t.Errorf("bools = %v %v", vals[5], vals[6])
	}
	if !vals[7].IsNull() {
		t.Errorf("null = %v", vals[7])
	}
}

func TestCastParsing(t *testing.T) {
	st := mustSelect(t, `SELECT CAST(a AS integer), CAST('1.5' AS double precision)`)
	c := st.Items[0].Expr.(*CastExpr)
	if c.To != types.Int {
		t.Errorf("cast to = %v", c.To)
	}
	if st.Items[1].Expr.(*CastExpr).To != types.Float {
		t.Errorf("double precision = %v", st.Items[1].Expr.(*CastExpr).To)
	}
}

func TestGroupOrderLimit(t *testing.T) {
	st := mustSelect(t, `SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC, b ASC LIMIT 10`)
	if len(st.GroupBy) != 1 || st.Having == nil {
		t.Fatalf("st = %+v", st)
	}
	if !st.OrderBy[0].Desc || st.OrderBy[1].Desc {
		t.Errorf("order = %+v", st.OrderBy)
	}
	if st.Limit != 10 {
		t.Errorf("limit = %d", st.Limit)
	}
}

func TestDistinct(t *testing.T) {
	if !mustSelect(t, `SELECT DISTINCT a FROM t`).Distinct {
		t.Error("DISTINCT not parsed")
	}
}

func TestDMLStatements(t *testing.T) {
	ins := mustParse(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`).(*InsertStmt)
	if len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("ins = %+v", ins)
	}
	up := mustParse(t, `UPDATE t SET a = a + 1, b = 'z' WHERE c IS NULL`).(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("up = %+v", up)
	}
	del := mustParse(t, `DELETE FROM t WHERE a = 1`).(*DeleteStmt)
	if del.Where == nil {
		t.Fatalf("del = %+v", del)
	}
}

func TestDDLStatements(t *testing.T) {
	ct := mustParse(t, `CREATE TABLE IF NOT EXISTS t (id bigint NOT NULL, name varchar(20), v double precision)`).(*CreateTableStmt)
	if !ct.IfNotExists || len(ct.Columns) != 3 {
		t.Fatalf("ct = %+v", ct)
	}
	if ct.Columns[0].Typ != types.Int || !ct.Columns[0].NotNull {
		t.Errorf("col0 = %+v", ct.Columns[0])
	}
	if ct.Columns[1].Typ != types.Text || ct.Columns[2].Typ != types.Float {
		t.Errorf("cols = %+v", ct.Columns)
	}
	at := mustParse(t, `ALTER TABLE t ADD COLUMN c text`).(*AlterTableStmt)
	if at.AddColumn == nil || at.AddColumn.Name != "c" {
		t.Fatalf("at = %+v", at)
	}
	at = mustParse(t, `ALTER TABLE t DROP COLUMN c`).(*AlterTableStmt)
	if at.DropColumn != "c" {
		t.Fatalf("at = %+v", at)
	}
	dt := mustParse(t, `DROP TABLE IF EXISTS t`).(*DropTableStmt)
	if !dt.IfExists {
		t.Fatalf("dt = %+v", dt)
	}
	if _, ok := mustParse(t, `TRUNCATE TABLE t`).(*TruncateStmt); !ok {
		t.Error("truncate")
	}
	if _, ok := mustParse(t, `ANALYZE t`).(*AnalyzeStmt); !ok {
		t.Error("analyze")
	}
	ex := mustParse(t, `EXPLAIN SELECT 1`).(*ExplainStmt)
	if _, ok := ex.Stmt.(*SelectStmt); !ok {
		t.Error("explain select")
	}
}

func TestComments(t *testing.T) {
	st := mustSelect(t, "SELECT a -- trailing comment\nFROM t /* block\ncomment */ WHERE a = 1")
	if len(st.Items) != 1 || st.Where == nil {
		t.Fatalf("st = %+v", st)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `SELECT`, `SELECT FROM t`, `SELECT a FROM`, `SELECT a WHERE`,
		`SELECT a FROM t WHERE`, `FROM t`, `SELECT a FROM t GROUP`,
		`SELECT * FROM (SELECT 1) x`, `INSERT INTO t`, `UPDATE t`,
		`CREATE TABLE t`, `SELECT 'unterminated`, `SELECT "unterminated`,
		`SELECT a FROM t LIMIT x`, `SELECT a BETWEEN 1`, `SELECT @`,
		`SELECT a FROM t; SELECT b FROM t`,
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestTrailingSemicolon(t *testing.T) {
	mustSelect(t, `SELECT 1;`)
}

func TestPrintRoundTrip(t *testing.T) {
	queries := []string{
		`SELECT a, b AS x FROM t WHERE a = 1 AND b <> 'y'`,
		`SELECT DISTINCT "user.id" FROM tweets t1, deletes d1 WHERE t1.id = d1."delete.id"`,
		`SELECT COUNT(*), SUM(v) FROM t GROUP BY k HAVING COUNT(*) > 1 ORDER BY k DESC LIMIT 5`,
		`SELECT * FROM t WHERE a BETWEEN 1 AND 2 OR b IN (1, 2) OR c LIKE 'x%' OR d IS NOT NULL`,
		`SELECT CAST(a AS real), coalesce(b, 'z') FROM t WHERE 'v' = ANY(arr)`,
		`INSERT INTO t (a) VALUES (1), (NULL)`,
		`UPDATE t SET a = -1.5 WHERE NOT b`,
		`DELETE FROM t WHERE a % 2 = 0`,
		`CREATE TABLE x (a integer NOT NULL, b text)`,
		`ALTER TABLE x ADD COLUMN "dotted.name" real`,
		`EXPLAIN SELECT 1 + 2`,
	}
	for _, sql := range queries {
		st1 := mustParse(t, sql)
		printed := Print(st1)
		st2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of %q -> %q failed: %v", sql, printed, err)
			continue
		}
		printed2 := Print(st2)
		if printed != printed2 {
			t.Errorf("print not stable:\n 1: %s\n 2: %s", printed, printed2)
		}
	}
}

func TestWalkAndRewrite(t *testing.T) {
	st := mustSelect(t, `SELECT a + b FROM t WHERE c = 1 AND d BETWEEN 2 AND 3`)
	var refs []string
	WalkExpr(st.Where, func(e Expr) bool {
		if cr, ok := e.(*ColumnRef); ok {
			refs = append(refs, cr.Name)
		}
		return true
	})
	if strings.Join(refs, ",") != "c,d" {
		t.Errorf("refs = %v", refs)
	}
	// Rewrite every column ref to a qualified form.
	out := RewriteExpr(st.Where, func(e Expr) Expr {
		if cr, ok := e.(*ColumnRef); ok {
			return &ColumnRef{Table: "t", Name: cr.Name}
		}
		return e
	})
	if !strings.Contains(PrintExpr(out), "t.c") {
		t.Errorf("rewritten = %s", PrintExpr(out))
	}
	// Original is unchanged.
	if strings.Contains(PrintExpr(st.Where), "t.c") {
		t.Error("RewriteExpr mutated the input")
	}
}

func TestNegativeNumberFolding(t *testing.T) {
	st := mustSelect(t, `SELECT -5, -2.5`)
	if st.Items[0].Expr.(*Literal).Val.I != -5 {
		t.Errorf("int = %v", st.Items[0].Expr)
	}
	if st.Items[1].Expr.(*Literal).Val.F != -2.5 {
		t.Errorf("float = %v", st.Items[1].Expr)
	}
}

func TestConcatOperator(t *testing.T) {
	st := mustSelect(t, `SELECT a || 'x' || b FROM t`)
	top := st.Items[0].Expr.(*BinaryExpr)
	if top.Op != OpConcat {
		t.Errorf("op = %v", top.Op)
	}
}

func TestParseSet(t *testing.T) {
	cases := []struct {
		sql  string
		name string
		val  types.Datum
	}{
		{`SET batch_size = 512`, "batch_size", types.NewInt(512)},
		{`SET batch_size TO 64`, "batch_size", types.NewInt(64)},
		{`SET ENABLE_BATCH = off`, "enable_batch", types.NewBool(false)},
		{`SET enable_batch = on`, "enable_batch", types.NewBool(true)},
		{`SET enable_batch = TRUE`, "enable_batch", types.NewBool(true)},
		{`SET enable_batch = FALSE`, "enable_batch", types.NewBool(false)},
		{`SET search_path = 'public'`, "search_path", types.NewText("public")},
	}
	for _, c := range cases {
		st, ok := mustParse(t, c.sql).(*SetStmt)
		if !ok {
			t.Fatalf("Parse(%q) = %T", c.sql, mustParse(t, c.sql))
		}
		if st.Name != c.name {
			t.Errorf("%q: name = %q, want %q", c.sql, st.Name, c.name)
		}
		if st.Value.Typ != c.val.Typ || st.Value.IsNull() != c.val.IsNull() {
			t.Errorf("%q: value type = %v, want %v", c.sql, st.Value.Typ, c.val.Typ)
		}
		if string(st.Value.HashKey(nil)) != string(c.val.HashKey(nil)) {
			t.Errorf("%q: value = %v, want %v", c.sql, st.Value, c.val)
		}
		// Print must round-trip through Parse.
		st2, err := Parse(Print(st))
		if err != nil {
			t.Fatalf("round-trip Parse(%q): %v", Print(st), err)
		}
		if s2 := st2.(*SetStmt); s2.Name != st.Name ||
			string(s2.Value.HashKey(nil)) != string(st.Value.HashKey(nil)) {
			t.Errorf("%q: round-trip mismatch: %v", c.sql, s2)
		}
	}
	for _, bad := range []string{`SET`, `SET batch_size`, `SET batch_size =`} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should error", bad)
		}
	}
}
