// Package sqlparse implements the SQL dialect of the embedded RDBMS:
// a lexer, an AST, a recursive-descent parser, and an AST printer.
//
// The dialect covers what Sinew and its baselines need: SELECT with
// DISTINCT / joins / GROUP BY / HAVING / ORDER BY / LIMIT, scalar and
// aggregate functions, BETWEEN / IN / LIKE / IS NULL / = ANY predicates,
// CAST, COALESCE, INSERT, UPDATE, DELETE, CREATE/ALTER/DROP TABLE,
// TRUNCATE, EXPLAIN, and ANALYZE. Quoted identifiers preserve case and may
// contain dots ("user.id" is a single flattened-attribute name, per the
// paper's Table 1 queries).
package sqlparse

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tkEOF tokenKind = iota
	tkIdent
	tkQuotedIdent
	tkKeyword
	tkNumber
	tkString
	tkOp     // punctuation and operators
	tkInvald // lex error sentinel
)

type token struct {
	kind tokenKind
	text string // keywords uppercased; unquoted idents lowercased
	pos  int
}

// ParseError is a lex or parse failure with position information.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: parse error at position %d: %s", e.Pos, e.Msg)
}

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "LIMIT": true,
	"OFFSET": true, "ASC": true, "DESC": true, "AS": true, "ON": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "OUTER": true,
	"CROSS": true, "AND": true, "OR": true, "NOT": true, "NULL": true,
	"IS": true, "IN": true, "BETWEEN": true, "LIKE": true, "ANY": true,
	"ALL": true, "TRUE": true, "FALSE": true, "CAST": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "TABLE": true,
	"DROP": true, "ALTER": true, "ADD": true, "COLUMN": true,
	"TRUNCATE": true, "EXPLAIN": true, "ANALYZE": true, "IF": true,
	"EXISTS": true, "PRIMARY": true, "KEY": true, "UNIQUE": true,
	"DEFAULT": true, "NULLS": true, "FIRST": true, "LAST": true,
	"USING": true, "RETURNING": true,
}

// lex tokenizes input; the returned slice always ends with a tkEOF token.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && input[i+1] == '*': // block comment
			j := strings.Index(input[i+2:], "*/")
			if j < 0 {
				return nil, &ParseError{Pos: i, Msg: "unterminated block comment"}
			}
			i += j + 4
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tkKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tkIdent, text: strings.ToLower(word), pos: start})
			}
		case c == '"':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '"' {
					if i+1 < n && input[i+1] == '"' { // doubled quote escape
						sb.WriteByte('"')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &ParseError{Pos: start, Msg: "unterminated quoted identifier"}
			}
			toks = append(toks, token{kind: tkQuotedIdent, text: sb.String(), pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // doubled quote escape
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &ParseError{Pos: start, Msg: "unterminated string literal"}
			}
			toks = append(toks, token{kind: tkString, text: sb.String(), pos: start})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			seenDot := false
			seenExp := false
			for i < n {
				d := input[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < n && (input[i] == '+' || input[i] == '-') {
						i++
					}
					continue
				}
				break
			}
			toks = append(toks, token{kind: tkNumber, text: input[start:i], pos: start})
		default:
			start := i
			// Multi-character operators first.
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=", "||":
				toks = append(toks, token{kind: tkOp, text: two, pos: start})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', '.', ';':
				toks = append(toks, token{kind: tkOp, text: string(c), pos: start})
				i++
			default:
				return nil, &ParseError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{kind: tkEOF, pos: n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '$'
}
