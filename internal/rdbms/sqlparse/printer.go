package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// Print renders a statement back to SQL text. The output is valid input to
// Parse; round-tripping is covered by tests. Identifiers are quoted only
// when needed (non-lowercase characters, dots, or keyword collisions).
func Print(s Statement) string {
	var sb strings.Builder
	printStatement(&sb, s)
	return sb.String()
}

// PrintExpr renders an expression to SQL text.
func PrintExpr(e Expr) string {
	var sb strings.Builder
	printExpr(&sb, e)
	return sb.String()
}

func printStatement(sb *strings.Builder, s Statement) {
	switch st := s.(type) {
	case *SelectStmt:
		sb.WriteString("SELECT ")
		if st.Distinct {
			sb.WriteString("DISTINCT ")
		}
		for i, item := range st.Items {
			if i > 0 {
				sb.WriteString(", ")
			}
			switch {
			case item.Star && item.Table != "":
				quoteIdent(sb, item.Table)
				sb.WriteString(".*")
			case item.Star:
				sb.WriteString("*")
			default:
				printExpr(sb, item.Expr)
				if item.Alias != "" {
					sb.WriteString(" AS ")
					quoteIdent(sb, item.Alias)
				}
			}
		}
		if len(st.From) > 0 {
			sb.WriteString(" FROM ")
			for i, t := range st.From {
				if i > 0 {
					sb.WriteString(", ")
				}
				quoteIdent(sb, t.Name)
				if t.Alias != "" {
					sb.WriteString(" ")
					quoteIdent(sb, t.Alias)
				}
			}
		}
		if st.Where != nil {
			sb.WriteString(" WHERE ")
			printExpr(sb, st.Where)
		}
		if len(st.GroupBy) > 0 {
			sb.WriteString(" GROUP BY ")
			for i, e := range st.GroupBy {
				if i > 0 {
					sb.WriteString(", ")
				}
				printExpr(sb, e)
			}
		}
		if st.Having != nil {
			sb.WriteString(" HAVING ")
			printExpr(sb, st.Having)
		}
		if len(st.OrderBy) > 0 {
			sb.WriteString(" ORDER BY ")
			for i, o := range st.OrderBy {
				if i > 0 {
					sb.WriteString(", ")
				}
				printExpr(sb, o.Expr)
				if o.Desc {
					sb.WriteString(" DESC")
				}
			}
		}
		if st.Limit >= 0 {
			fmt.Fprintf(sb, " LIMIT %d", st.Limit)
		}
	case *InsertStmt:
		sb.WriteString("INSERT INTO ")
		quoteIdent(sb, st.Table)
		if len(st.Columns) > 0 {
			sb.WriteString(" (")
			for i, c := range st.Columns {
				if i > 0 {
					sb.WriteString(", ")
				}
				quoteIdent(sb, c)
			}
			sb.WriteString(")")
		}
		sb.WriteString(" VALUES ")
		for i, row := range st.Rows {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("(")
			for j, e := range row {
				if j > 0 {
					sb.WriteString(", ")
				}
				printExpr(sb, e)
			}
			sb.WriteString(")")
		}
	case *UpdateStmt:
		sb.WriteString("UPDATE ")
		quoteIdent(sb, st.Table)
		sb.WriteString(" SET ")
		for i, set := range st.Set {
			if i > 0 {
				sb.WriteString(", ")
			}
			quoteIdent(sb, set.Column)
			sb.WriteString(" = ")
			printExpr(sb, set.Value)
		}
		if st.Where != nil {
			sb.WriteString(" WHERE ")
			printExpr(sb, st.Where)
		}
	case *DeleteStmt:
		sb.WriteString("DELETE FROM ")
		quoteIdent(sb, st.Table)
		if st.Where != nil {
			sb.WriteString(" WHERE ")
			printExpr(sb, st.Where)
		}
	case *CreateTableStmt:
		sb.WriteString("CREATE TABLE ")
		if st.IfNotExists {
			sb.WriteString("IF NOT EXISTS ")
		}
		quoteIdent(sb, st.Table)
		sb.WriteString(" (")
		for i, c := range st.Columns {
			if i > 0 {
				sb.WriteString(", ")
			}
			quoteIdent(sb, c.Name)
			sb.WriteString(" ")
			sb.WriteString(c.Typ.String())
			if c.NotNull {
				sb.WriteString(" NOT NULL")
			}
		}
		sb.WriteString(")")
	case *DropTableStmt:
		sb.WriteString("DROP TABLE ")
		if st.IfExists {
			sb.WriteString("IF EXISTS ")
		}
		quoteIdent(sb, st.Table)
	case *AlterTableStmt:
		sb.WriteString("ALTER TABLE ")
		quoteIdent(sb, st.Table)
		if st.AddColumn != nil {
			sb.WriteString(" ADD COLUMN ")
			quoteIdent(sb, st.AddColumn.Name)
			sb.WriteString(" ")
			sb.WriteString(st.AddColumn.Typ.String())
			if st.AddColumn.NotNull {
				sb.WriteString(" NOT NULL")
			}
		} else {
			sb.WriteString(" DROP COLUMN ")
			quoteIdent(sb, st.DropColumn)
		}
	case *TruncateStmt:
		sb.WriteString("TRUNCATE TABLE ")
		quoteIdent(sb, st.Table)
	case *ExplainStmt:
		sb.WriteString("EXPLAIN ")
		printStatement(sb, st.Stmt)
	case *AnalyzeStmt:
		sb.WriteString("ANALYZE ")
		quoteIdent(sb, st.Table)
	case *SetStmt:
		sb.WriteString("SET ")
		quoteIdent(sb, st.Name)
		sb.WriteString(" = ")
		printExpr(sb, &Literal{Val: st.Value})
	default:
		fmt.Fprintf(sb, "<unknown statement %T>", s)
	}
}

func printExpr(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *ColumnRef:
		if x.Table != "" {
			quoteIdent(sb, x.Table)
			sb.WriteString(".")
		}
		quoteIdent(sb, x.Name)
	case *Literal:
		printDatumLiteral(sb, x.Val)
	case *BinaryExpr:
		sb.WriteString("(")
		printExpr(sb, x.L)
		sb.WriteString(" ")
		sb.WriteString(x.Op.String())
		sb.WriteString(" ")
		printExpr(sb, x.R)
		sb.WriteString(")")
	case *UnaryExpr:
		if x.Op == "NOT" {
			sb.WriteString("(NOT ")
			printExpr(sb, x.X)
			sb.WriteString(")")
		} else {
			sb.WriteString("(-")
			printExpr(sb, x.X)
			sb.WriteString(")")
		}
	case *FuncCall:
		sb.WriteString(x.Name)
		sb.WriteString("(")
		if x.Star {
			sb.WriteString("*")
		} else {
			if x.Distinct {
				sb.WriteString("DISTINCT ")
			}
			for i, a := range x.Args {
				if i > 0 {
					sb.WriteString(", ")
				}
				printExpr(sb, a)
			}
		}
		sb.WriteString(")")
	case *IsNullExpr:
		sb.WriteString("(")
		printExpr(sb, x.X)
		if x.Not {
			sb.WriteString(" IS NOT NULL)")
		} else {
			sb.WriteString(" IS NULL)")
		}
	case *BetweenExpr:
		sb.WriteString("(")
		printExpr(sb, x.X)
		if x.Not {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" BETWEEN ")
		printExpr(sb, x.Lo)
		sb.WriteString(" AND ")
		printExpr(sb, x.Hi)
		sb.WriteString(")")
	case *InListExpr:
		sb.WriteString("(")
		printExpr(sb, x.X)
		if x.Not {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" IN (")
		for i, a := range x.List {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, a)
		}
		sb.WriteString("))")
	case *LikeExpr:
		sb.WriteString("(")
		printExpr(sb, x.X)
		if x.Not {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" LIKE ")
		printExpr(sb, x.Pattern)
		sb.WriteString(")")
	case *AnyExpr:
		sb.WriteString("(")
		printExpr(sb, x.X)
		sb.WriteString(" ")
		sb.WriteString(x.Op.String())
		sb.WriteString(" ANY(")
		printExpr(sb, x.Array)
		sb.WriteString("))")
	case *CastExpr:
		sb.WriteString("CAST(")
		printExpr(sb, x.X)
		sb.WriteString(" AS ")
		sb.WriteString(x.To.String())
		sb.WriteString(")")
	default:
		fmt.Fprintf(sb, "<unknown expr %T>", e)
	}
}

func printDatumLiteral(sb *strings.Builder, d types.Datum) {
	if d.IsNull() {
		sb.WriteString("NULL")
		return
	}
	switch d.Typ {
	case types.Bool:
		if d.B {
			sb.WriteString("TRUE")
		} else {
			sb.WriteString("FALSE")
		}
	case types.Int:
		sb.WriteString(strconv.FormatInt(d.I, 10))
	case types.Float:
		s := strconv.FormatFloat(d.F, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		sb.WriteString(s)
	case types.Text:
		sb.WriteString("'")
		sb.WriteString(strings.ReplaceAll(d.S, "'", "''"))
		sb.WriteString("'")
	default:
		// Arrays and bytes have no literal syntax in this dialect; render
		// via text form for debugging output only.
		sb.WriteString("'")
		sb.WriteString(strings.ReplaceAll(d.String(), "'", "''"))
		sb.WriteString("'")
	}
}

// quoteIdent writes name, quoting it if it is not a plain lowercase
// identifier or collides with a keyword.
func quoteIdent(sb *strings.Builder, name string) {
	if isPlainIdent(name) {
		sb.WriteString(name)
		return
	}
	sb.WriteString("\"")
	sb.WriteString(strings.ReplaceAll(name, "\"", "\"\""))
	sb.WriteString("\"")
}

func isPlainIdent(name string) bool {
	if name == "" {
		return false
	}
	if keywords[strings.ToUpper(name)] {
		return false
	}
	if !(name[0] == '_' || name[0] >= 'a' && name[0] <= 'z') {
		return false
	}
	for i := 1; i < len(name); i++ {
		c := name[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '$') {
			return false
		}
	}
	return true
}
