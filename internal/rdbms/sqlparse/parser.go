package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.eatOp(";")
	if !p.atEOF() {
		return nil, p.errf("unexpected %q after statement", p.cur().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.cur().kind == tkEOF }

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tkEOF {
		p.i++
	}
	return t
}

// peekKeyword reports whether the current token is the given keyword.
func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tkKeyword && t.text == kw
}

// eatKeyword consumes the keyword if present.
func (p *parser) eatKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.i++
		return true
	}
	return false
}

// expectKeyword consumes the keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !p.eatKeyword(kw) {
		return p.errf("expected %s, found %q", kw, p.cur().text)
	}
	return nil
}

// peekOp reports whether the current token is the given operator text.
func (p *parser) peekOp(op string) bool {
	t := p.cur()
	return t.kind == tkOp && t.text == op
}

// eatOp consumes the operator if present.
func (p *parser) eatOp(op string) bool {
	if p.peekOp(op) {
		p.i++
		return true
	}
	return false
}

// expectOp consumes the operator or fails.
func (p *parser) expectOp(op string) error {
	if !p.eatOp(op) {
		return p.errf("expected %q, found %q", op, p.cur().text)
	}
	return nil
}

// parseIdent accepts a (quoted or plain) identifier.
func (p *parser) parseIdent() (string, error) {
	t := p.cur()
	if t.kind == tkIdent || t.kind == tkQuotedIdent {
		p.advance()
		return t.text, nil
	}
	return "", p.errf("expected identifier, found %q", t.text)
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.cur()
	if t.kind != tkKeyword {
		return nil, p.errf("expected statement keyword, found %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreateTable()
	case "DROP":
		return p.parseDropTable()
	case "ALTER":
		return p.parseAlterTable()
	case "TRUNCATE":
		return p.parseTruncate()
	case "EXPLAIN":
		p.advance()
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Stmt: inner}, nil
	case "ANALYZE":
		p.advance()
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &AnalyzeStmt{Table: name}, nil
	case "SET":
		return p.parseSet()
	default:
		return nil, p.errf("unsupported statement %q", t.text)
	}
}

// ---------- SELECT ----------

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	if p.eatKeyword("DISTINCT") {
		s.Distinct = true
	}
	// Projections.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.eatOp(",") {
			break
		}
	}
	// FROM (optional: SELECT 1+1 is allowed).
	if p.eatKeyword("FROM") {
		if err := p.parseFromClause(s); err != nil {
			return nil, err
		}
	}
	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = conjoin(s.Where, w)
	}
	if p.eatKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.eatOp(",") {
				break
			}
		}
	}
	if p.eatKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.eatKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if p.eatKeyword("DESC") {
				oi.Desc = true
			} else {
				p.eatKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, oi)
			if !p.eatOp(",") {
				break
			}
		}
	}
	if p.eatKeyword("LIMIT") {
		t := p.cur()
		if t.kind != tkNumber {
			return nil, p.errf("expected number after LIMIT")
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT value %q", t.text)
		}
		p.advance()
		s.Limit = n
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// "*" or "t.*"
	if p.peekOp("*") {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	if (p.cur().kind == tkIdent || p.cur().kind == tkQuotedIdent) &&
		p.toks[p.i+1].kind == tkOp && p.toks[p.i+1].text == "." &&
		p.toks[p.i+2].kind == tkOp && p.toks[p.i+2].text == "*" {
		tbl := p.cur().text
		p.i += 3
		return SelectItem{Star: true, Table: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.eatKeyword("AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.cur().kind == tkIdent || p.cur().kind == tkQuotedIdent {
		// Bare alias.
		item.Alias = p.advance().text
	}
	return item, nil
}

// parseFromClause handles comma-separated tables and JOIN ... ON chains,
// normalizing ON conditions into WHERE conjuncts.
func (p *parser) parseFromClause(s *SelectStmt) error {
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return err
		}
		s.From = append(s.From, ref)
		// JOIN chain attached to this table.
		for {
			explicitInner := false
			if p.eatKeyword("INNER") {
				explicitInner = true
			} else if p.eatKeyword("CROSS") {
				if err := p.expectKeyword("JOIN"); err != nil {
					return err
				}
				ref2, err := p.parseTableRef()
				if err != nil {
					return err
				}
				s.From = append(s.From, ref2)
				continue
			} else if p.peekKeyword("LEFT") || p.peekKeyword("RIGHT") {
				return p.errf("outer joins are not supported")
			}
			if !p.eatKeyword("JOIN") {
				if explicitInner {
					return p.errf("expected JOIN after INNER")
				}
				break
			}
			ref2, err := p.parseTableRef()
			if err != nil {
				return err
			}
			s.From = append(s.From, ref2)
			if err := p.expectKeyword("ON"); err != nil {
				return err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return err
			}
			s.Where = conjoin(s.Where, cond)
		}
		if !p.eatOp(",") {
			return nil
		}
	}
}

func (p *parser) parseTableRef() (TableRef, error) {
	if p.eatOp("(") {
		return TableRef{}, p.errf("subqueries in FROM are not supported")
	}
	name, err := p.parseIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.eatKeyword("AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.cur().kind == tkIdent || p.cur().kind == tkQuotedIdent {
		ref.Alias = p.advance().text
	}
	return ref, nil
}

func conjoin(a, b Expr) Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &BinaryExpr{Op: OpAnd, L: a, R: b}
}

// ---------- DML ----------

func (p *parser) parseInsert() (*InsertStmt, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: table}
	if p.eatOp("(") {
		for {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.eatOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.eatOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.eatOp(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	p.advance() // UPDATE
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	u := &UpdateStmt{Table: table}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, SetClause{Column: col, Value: val})
		if !p.eatOp(",") {
			break
		}
	}
	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = w
	}
	return u, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	p.advance() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	d := &DeleteStmt{Table: table}
	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}

// ---------- DDL ----------

func (p *parser) parseCreateTable() (*CreateTableStmt, error) {
	p.advance() // CREATE
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	c := &CreateTableStmt{}
	if p.eatKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		c.IfNotExists = true
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	c.Table = name
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		def, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		c.Columns = append(c.Columns, def)
		if !p.eatOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.parseIdent()
	if err != nil {
		return ColumnDef{}, err
	}
	typTok := p.cur()
	if typTok.kind != tkIdent && typTok.kind != tkKeyword {
		return ColumnDef{}, p.errf("expected type name for column %q", name)
	}
	p.advance()
	typName := typTok.text
	// "double precision" is two words.
	if strings.EqualFold(typName, "double") && p.cur().kind == tkIdent && p.cur().text == "precision" {
		p.advance()
		typName = "double precision"
	}
	// varchar(n) / char(n): length is parsed and ignored.
	if p.eatOp("(") {
		if p.cur().kind != tkNumber {
			return ColumnDef{}, p.errf("expected length in type %q", typName)
		}
		p.advance()
		if err := p.expectOp(")"); err != nil {
			return ColumnDef{}, err
		}
	}
	typ, err := types.ParseType(typName)
	if err != nil {
		return ColumnDef{}, p.errf("unknown type %q", typName)
	}
	def := ColumnDef{Name: name, Typ: typ}
	for {
		switch {
		case p.eatKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return ColumnDef{}, err
			}
			def.NotNull = true
		case p.eatKeyword("NULL"):
			// default; no-op
		case p.eatKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return ColumnDef{}, err
			}
			def.NotNull = true
		default:
			return def, nil
		}
	}
}

func (p *parser) parseDropTable() (*DropTableStmt, error) {
	p.advance() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	d := &DropTableStmt{}
	if p.eatKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		d.IfExists = true
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	d.Table = name
	return d, nil
}

func (p *parser) parseAlterTable() (*AlterTableStmt, error) {
	p.advance() // ALTER
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	a := &AlterTableStmt{Table: name}
	switch {
	case p.eatKeyword("ADD"):
		p.eatKeyword("COLUMN")
		def, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		a.AddColumn = &def
	case p.eatKeyword("DROP"):
		p.eatKeyword("COLUMN")
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		a.DropColumn = col
	default:
		return nil, p.errf("expected ADD or DROP after ALTER TABLE name")
	}
	return a, nil
}

func (p *parser) parseTruncate() (*TruncateStmt, error) {
	p.advance() // TRUNCATE
	p.eatKeyword("TABLE")
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	return &TruncateStmt{Table: name}, nil
}

// parseSet parses SET name = value (also accepting the Postgres spelling
// SET name TO value). Values are an integer, a number, a string, TRUE/FALSE,
// or a bare identifier (on/off map to booleans, anything else is text).
func (p *parser) parseSet() (*SetStmt, error) {
	p.advance() // SET
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if !p.eatOp("=") {
		// TO is not a reserved word, so it arrives as a plain identifier.
		if t := p.cur(); t.kind == tkIdent && strings.EqualFold(t.text, "to") {
			p.advance()
		} else {
			return nil, p.errf("expected = or TO after SET %s", name)
		}
	}
	t := p.cur()
	var val types.Datum
	switch {
	case t.kind == tkNumber:
		p.advance()
		if n, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			val = types.NewInt(n)
		} else if f, err := strconv.ParseFloat(t.text, 64); err == nil {
			val = types.NewFloat(f)
		} else {
			return nil, p.errf("bad SET value %q", t.text)
		}
	case t.kind == tkString:
		p.advance()
		val = types.NewText(t.text)
	case t.kind == tkKeyword && (t.text == "TRUE" || t.text == "ON"):
		p.advance()
		val = types.NewBool(true)
	case t.kind == tkKeyword && t.text == "FALSE":
		p.advance()
		val = types.NewBool(false)
	case t.kind == tkIdent || t.kind == tkQuotedIdent:
		p.advance()
		switch strings.ToLower(t.text) {
		case "on":
			val = types.NewBool(true)
		case "off":
			val = types.NewBool(false)
		default:
			val = types.NewText(t.text)
		}
	default:
		return nil, p.errf("expected value after SET %s, found %q", name, t.text)
	}
	return &SetStmt{Name: strings.ToLower(name), Value: val}, nil
}

// ---------- Expressions ----------
// Precedence (low to high): OR, AND, NOT, comparison/IS/BETWEEN/IN/LIKE,
// additive (+ - ||), multiplicative (* / %), unary minus, postfix/primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.eatKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekOp("=") || p.peekOp("<>") || p.peekOp("!=") || p.peekOp("<") ||
			p.peekOp("<=") || p.peekOp(">") || p.peekOp(">="):
			opText := p.advance().text
			var op BinOp
			switch opText {
			case "=":
				op = OpEq
			case "<>", "!=":
				op = OpNe
			case "<":
				op = OpLt
			case "<=":
				op = OpLe
			case ">":
				op = OpGt
			case ">=":
				op = OpGe
			}
			// x = ANY(expr)
			if p.eatKeyword("ANY") {
				if err := p.expectOp("("); err != nil {
					return nil, err
				}
				arr, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				l = &AnyExpr{X: l, Op: op, Array: arr}
				continue
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: op, L: l, R: r}
		case p.peekKeyword("IS"):
			p.advance()
			not := p.eatKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			l = &IsNullExpr{X: l, Not: not}
		case p.peekKeyword("BETWEEN"), p.peekKeyword("NOT") && p.toks[p.i+1].kind == tkKeyword && p.toks[p.i+1].text == "BETWEEN":
			not := p.eatKeyword("NOT")
			if err := p.expectKeyword("BETWEEN"); err != nil {
				return nil, err
			}
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BetweenExpr{X: l, Lo: lo, Hi: hi, Not: not}
		case p.peekKeyword("IN"), p.peekKeyword("NOT") && p.toks[p.i+1].kind == tkKeyword && p.toks[p.i+1].text == "IN":
			not := p.eatKeyword("NOT")
			if err := p.expectKeyword("IN"); err != nil {
				return nil, err
			}
			// "x IN column" (NoBench Q8 array containment) is accepted as
			// sugar for x = ANY(column) when no parenthesized list follows.
			if !p.peekOp("(") {
				arr, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				in := Expr(&AnyExpr{X: l, Op: OpEq, Array: arr})
				if not {
					in = &UnaryExpr{Op: "NOT", X: in}
				}
				l = in
				continue
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var list []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if !p.eatOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			l = &InListExpr{X: l, List: list, Not: not}
		case p.peekKeyword("LIKE"), p.peekKeyword("NOT") && p.toks[p.i+1].kind == tkKeyword && p.toks[p.i+1].text == "LIKE":
			not := p.eatKeyword("NOT")
			if err := p.expectKeyword("LIKE"); err != nil {
				return nil, err
			}
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &LikeExpr{X: l, Pattern: pat, Not: not}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case p.peekOp("+"):
			op = OpAdd
		case p.peekOp("-"):
			op = OpSub
		case p.peekOp("||"):
			op = OpConcat
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case p.peekOp("*"):
			op = OpMul
		case p.peekOp("/"):
			op = OpDiv
		case p.peekOp("%"):
			op = OpMod
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.eatOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -literal immediately so "-5" is a constant.
		if lit, ok := x.(*Literal); ok && lit.Val.IsNumeric() {
			d := lit.Val
			if d.Typ == types.Int {
				return &Literal{Val: types.NewInt(-d.I)}, nil
			}
			return &Literal{Val: types.NewFloat(-d.F)}, nil
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	p.eatOp("+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tkNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Literal{Val: types.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Literal{Val: types.NewFloat(f)}, nil
		}
		return &Literal{Val: types.NewInt(i)}, nil
	case tkString:
		p.advance()
		return &Literal{Val: types.NewText(t.text)}, nil
	case tkKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return &Literal{Val: types.Datum{Null: true}}, nil
		case "TRUE":
			p.advance()
			return &Literal{Val: types.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Val: types.NewBool(false)}, nil
		case "CAST":
			p.advance()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			typTok := p.cur()
			if typTok.kind != tkIdent && typTok.kind != tkKeyword {
				return nil, p.errf("expected type name in CAST")
			}
			p.advance()
			typName := typTok.text
			if strings.EqualFold(typName, "double") && p.cur().kind == tkIdent && p.cur().text == "precision" {
				p.advance()
				typName = "double precision"
			}
			typ, err := types.ParseType(typName)
			if err != nil {
				return nil, p.errf("unknown type %q in CAST", typName)
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &CastExpr{X: x, To: typ}, nil
		default:
			return nil, p.errf("unexpected keyword %q in expression", t.text)
		}
	case tkOp:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %q in expression", t.text)
	case tkIdent, tkQuotedIdent:
		name := t.text
		p.advance()
		// Function call?
		if t.kind == tkIdent && p.peekOp("(") {
			p.advance()
			fc := &FuncCall{Name: strings.ToLower(name)}
			if p.eatOp("*") {
				fc.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if p.eatKeyword("DISTINCT") {
				fc.Distinct = true
			}
			if !p.eatOp(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					if !p.eatOp(",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		// Qualified column: t.col or t."user.id".
		if p.peekOp(".") {
			p.advance()
			colTok := p.cur()
			if colTok.kind != tkIdent && colTok.kind != tkQuotedIdent {
				return nil, p.errf("expected column name after %q.", name)
			}
			p.advance()
			return &ColumnRef{Table: name, Name: colTok.text}, nil
		}
		return &ColumnRef{Name: name}, nil
	default:
		return nil, p.errf("unexpected token %q", t.text)
	}
}
