package rdbms

// Concurrent-session tests for the snapshot read path (DESIGN.md §10):
// readers pin epoch-published heap snapshots and never block behind
// writers, so every read must be internally consistent — no torn rows,
// and aggregates that match *some* committed statement boundary. The
// Makefile's race-sessions leg runs these under -race at GOMAXPROCS
// 1, 2, and 8.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/plan"
	"github.com/sinewdata/sinew/internal/rdbms/sqlparse"
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// TestSnapshotStressMixed races writer goroutines — paired inserts,
// sign-flip updates, ANALYZE/freeze passes — against readers on live
// snapshots. Every committed state satisfies SUM(v) = 0 and an even
// COUNT(*), so any reader observing a torn statement (half an insert
// pair, a partially applied update, a mid-rebuild page) fails loudly.
func TestSnapshotStressMixed(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE s (v integer)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO s VALUES `)
	for i := 1; i <= 128; i++ {
		if i > 1 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d), (%d)", i, -i)
	}
	mustExec(t, db, sb.String())

	const (
		inserters  = 2
		writerIter = 40
		readers    = 6
		readerIter = 60
	)
	var wg sync.WaitGroup
	errs := make(chan error, inserters+readers+2)

	for g := 0; g < inserters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < writerIter; i++ {
				v := g*writerIter + i + 1000
				if _, err := db.Exec(fmt.Sprintf(`INSERT INTO s VALUES (%d), (%d)`, v, -v)); err != nil {
					errs <- fmt.Errorf("inserter %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // sign-flip updater: preserves both invariants
		defer wg.Done()
		for i := 0; i < writerIter; i++ {
			if _, err := db.Exec(`UPDATE s SET v = 0 - v`); err != nil {
				errs <- fmt.Errorf("updater: %w", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // ANALYZE rebuilds summaries and freezes cold pages in place
		defer wg.Done()
		for i := 0; i < writerIter/2; i++ {
			if err := db.Analyze("s"); err != nil {
				errs <- fmt.Errorf("analyze: %w", err)
				return
			}
		}
	}()
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < readerIter; i++ {
				res, err := db.Query(`SELECT COUNT(*), SUM(v) FROM s`)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", g, err)
					return
				}
				count, sum := res.Rows[0][0].I, res.Rows[0][1]
				if count%2 != 0 {
					errs <- fmt.Errorf("reader %d: odd count %d — torn insert pair", g, count)
					return
				}
				if sum.IsNull() || sum.I != 0 {
					errs <- fmt.Errorf("reader %d: sum = %v with count %d — torn statement", g, sum, count)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if open, _, _ := db.SnapshotStats(); open != 0 {
		t.Errorf("snapshots_open = %d after all statements finished; pins leaked", open)
	}
}

// TestSnapshotCountMonotonic runs an insert-only writer against readers
// that assert COUNT(*) never moves backwards across their own sequential
// reads: snapshots may lag the writer but publication is ordered.
func TestSnapshotCountMonotonic(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE m (v integer)`)
	stop := make(chan struct{})
	var writer, readers sync.WaitGroup
	errs := make(chan error, 9)
	writer.Add(1)
	go func() { // insert-only writer, runs until the readers are done
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Exec(fmt.Sprintf(`INSERT INTO m VALUES (%d)`, i)); err != nil {
				errs <- err
				return
			}
		}
	}()
	for g := 0; g < 8; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			last := int64(-1)
			for i := 0; i < 50; i++ {
				res, err := db.Query(`SELECT COUNT(*) FROM m`)
				if err != nil {
					errs <- err
					return
				}
				n := res.Rows[0][0].I
				if n < last {
					errs <- fmt.Errorf("reader %d: count went backwards %d -> %d", g, last, n)
					return
				}
				last = n
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	writer.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// snapshotReadState is the expected table contents at one heap epoch.
type snapshotReadState struct {
	rowsKey string // sorted "id:v" lines
	count   int64
	sum     int64
}

// readerPlanConfigs returns one private planner configuration per
// executor mode, so the differential readers cover row, batch,
// striped/page-skip, and parallel plans without racing on session SETs.
func readerPlanConfigs() map[string]*plan.Config {
	mk := func(mut func(*plan.Config)) *plan.Config {
		c := *plan.DefaultConfig()
		mut(&c)
		return &c
	}
	return map[string]*plan.Config{
		"row": mk(func(c *plan.Config) {
			c.EnableBatch = false
			c.MaxParallelWorkers = 1
		}),
		"batch": mk(func(c *plan.Config) {
			c.EnableBatch = true
			c.EnableStriped = false
			c.EnablePageSkip = false
			c.MaxParallelWorkers = 1
		}),
		"striped": mk(func(c *plan.Config) {
			c.EnableBatch = true
			c.EnableStriped = true
			c.EnablePageSkip = true
			c.MaxParallelWorkers = 1
		}),
		"parallel": mk(func(c *plan.Config) {
			c.EnableBatch = true
			c.EnableStriped = true
			c.MaxParallelWorkers = 4
			c.ParallelScanMinPages = 1
		}),
	}
}

// readAtSnapshot plans and runs one SELECT against the snapshot pinned
// by ec, under a private planner config. It returns the rows and the
// epoch the read was served at.
func readAtSnapshot(db *DB, ec *exec.ExecCtx, cfg *plan.Config, h *storage.Heap, sql string) ([]storage.Row, uint64, error) {
	epoch := ec.View(h).Epoch()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, 0, err
	}
	p := plan.NewPlanner(snapshotCatalog{db: db, ec: ec}, db.funcs, cfg)
	sp, err := p.PlanSelect(stmt.(*sqlparse.SelectStmt))
	if err != nil {
		return nil, 0, err
	}
	rows, err := sp.CollectCtx(ec)
	return rows, epoch, err
}

// TestSnapshotIsolationDifferential replays a randomized single-writer
// workload while concurrent readers pin snapshots and check that what
// they saw equals the serially computed table state at exactly their
// pinned epoch — across row, batch, striped, and parallel plans. The
// writer records each statement's expected outcome under its predicted
// epoch *before* executing it, so any published state is accounted for
// by the time a reader can pin it.
func TestSnapshotIsolationDifferential(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE diffy (id integer, v integer)`)

	h, _, err := db.Table("diffy")
	if err != nil {
		t.Fatal(err)
	}

	mirror := make(map[int64]int64) // id -> v, the serial model
	model := make(map[uint64]snapshotReadState)
	var modelMu sync.Mutex

	render := func() snapshotReadState {
		lines := make([]string, 0, len(mirror))
		var sum int64
		for id, v := range mirror {
			lines = append(lines, fmt.Sprintf("%d:%d\n", id, v))
			sum += v
		}
		sort.Strings(lines) // readers canonicalize the same way
		return snapshotReadState{rowsKey: strings.Join(lines, ""), count: int64(len(lines)), sum: sum}
	}
	record := func(epoch uint64) {
		st := render()
		modelMu.Lock()
		model[epoch] = st
		modelMu.Unlock()
	}

	// Seed rows, then record the published state.
	var sb strings.Builder
	sb.WriteString(`INSERT INTO diffy VALUES `)
	for i := int64(0); i < 512; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i*3)
		mirror[i] = i * 3
	}
	mustExec(t, db, sb.String())
	record(h.Epoch())

	const writerOps = 120
	nextID := int64(512)
	rng := rand.New(rand.NewSource(42))

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	wg.Add(1)
	go func() { // the single writer: serial randomized workload
		defer wg.Done()
		for i := 0; i < writerOps; i++ {
			var op string
			var analyze bool
			switch rng.Intn(4) {
			case 0: // insert a small batch
				var b strings.Builder
				b.WriteString(`INSERT INTO diffy VALUES `)
				n := 1 + rng.Intn(8)
				for k := 0; k < n; k++ {
					if k > 0 {
						b.WriteString(", ")
					}
					v := rng.Int63n(1000)
					fmt.Fprintf(&b, "(%d, %d)", nextID, v)
					mirror[nextID] = v
					nextID++
				}
				op = b.String()
			case 1: // shift a residue class
				m, r, d := int64(2+rng.Intn(5)), int64(rng.Intn(2)), rng.Int63n(50)+1
				op = fmt.Sprintf(`UPDATE diffy SET v = v + %d WHERE id %% %d = %d`, d, m, r)
				for id := range mirror {
					if id%m == r {
						mirror[id] += d
					}
				}
			case 2: // delete a thin slice
				m, r := int64(13+rng.Intn(7)), int64(rng.Intn(13))
				op = fmt.Sprintf(`DELETE FROM diffy WHERE id %% %d = %d`, m, r)
				for id := range mirror {
					if id%m == r {
						delete(mirror, id)
					}
				}
			case 3: // ANALYZE: publishes without changing contents
				analyze = true
			}
			// Each statement publishes exactly once, so its epoch is the
			// current one plus one. Record the outcome first: publication
			// happens-after this map write, so a reader that pins the new
			// snapshot always finds its state recorded.
			record(h.Epoch() + 1)
			if analyze {
				if err := db.Analyze("diffy"); err != nil {
					errs <- fmt.Errorf("writer analyze: %w", err)
					return
				}
			} else if _, err := db.Exec(op); err != nil {
				errs <- fmt.Errorf("writer %q: %w", op, err)
				return
			}
		}
	}()

	for name, cfg := range readerPlanConfigs() {
		wg.Add(1)
		go func(name string, cfg *plan.Config) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				ec := exec.NewExecCtx()
				rows, epoch, err := readAtSnapshot(db, ec, cfg, h, `SELECT id, v FROM diffy`)
				if err != nil {
					ec.Release()
					errs <- fmt.Errorf("%s reader: %w", name, err)
					return
				}
				// Same ec: the aggregate must see the identical snapshot.
				aggRows, aggEpoch, err := readAtSnapshot(db, ec, cfg, h, `SELECT COUNT(*), SUM(v) FROM diffy`)
				ec.Release()
				if err != nil {
					errs <- fmt.Errorf("%s reader agg: %w", name, err)
					return
				}
				if aggEpoch != epoch {
					errs <- fmt.Errorf("%s reader: epoch drifted %d -> %d within one ExecCtx", name, epoch, aggEpoch)
					return
				}
				modelMu.Lock()
				want, ok := model[epoch]
				modelMu.Unlock()
				if !ok {
					errs <- fmt.Errorf("%s reader: pinned epoch %d has no recorded state", name, epoch)
					return
				}
				lines := make([]string, len(rows))
				for j, r := range rows {
					lines[j] = fmt.Sprintf("%d:%d\n", r[0].I, r[1].I)
				}
				sort.Strings(lines)
				if got := strings.Join(lines, ""); got != want.rowsKey {
					errs <- fmt.Errorf("%s reader: epoch %d rows diverge from serial replay\ngot:\n%s\nwant:\n%s",
						name, epoch, got, want.rowsKey)
					return
				}
				count, sum := aggRows[0][0].I, aggRows[0][1]
				if count != want.count || (count > 0 && sum.I != want.sum) {
					errs <- fmt.Errorf("%s reader: epoch %d aggregates (%d, %v) != serial (%d, %d)",
						name, epoch, count, sum, want.count, want.sum)
					return
				}
			}
		}(name, cfg)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// BenchmarkQueryUnderIngest measures reader latency while a bulk load
// runs. The acceptance bar for the snapshot read path is a p50 within 2x
// of the idle-reader p50: readers pin a snapshot and never wait for the
// writer's table lock. Reported metrics: idle-p50-ns, busy-p50-ns, and
// their ratio.
func BenchmarkQueryUnderIngest(b *testing.B) {
	db := Open()
	if _, err := db.Exec(`CREATE TABLE ing (id integer, v integer)`); err != nil {
		b.Fatal(err)
	}
	rows := make([]storage.Row, 0, 20000)
	for i := 0; i < 20000; i++ {
		rows = append(rows, storage.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 97))})
	}
	if err := db.InsertRows("ing", rows); err != nil {
		b.Fatal(err)
	}
	const q = `SELECT COUNT(*), SUM(v) FROM ing WHERE v < 50`

	measure := func(n int) []time.Duration {
		lat := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			t0 := time.Now()
			if _, err := db.Query(q); err != nil {
				b.Fatal(err)
			}
			lat = append(lat, time.Since(t0))
		}
		return lat
	}
	p50 := func(lat []time.Duration) time.Duration {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)/2]
	}

	idle := p50(measure(100))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the ingest: continuous bulk insert + churn until readers finish
		defer wg.Done()
		chunk := make([]storage.Row, 256)
		n := int64(20000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range chunk {
				chunk[i] = storage.Row{types.NewInt(n), types.NewInt(n % 97)}
				n++
			}
			if err := db.InsertRows("ing", chunk); err != nil {
				return
			}
			// Drop the chunk again so the table holds steady at ~20k rows:
			// the readers' work stays constant and the ratio isolates lock
			// contention (what the snapshot path removes) from data growth.
			if _, err := db.Exec(`DELETE FROM ing WHERE id >= 20000`); err != nil {
				return
			}
		}
	}()

	b.ResetTimer()
	busy := p50(measure(max(b.N, 50)))
	b.StopTimer()
	close(stop)
	wg.Wait()

	b.ReportMetric(float64(idle.Nanoseconds()), "idle-p50-ns")
	b.ReportMetric(float64(busy.Nanoseconds()), "busy-p50-ns")
	b.ReportMetric(float64(busy)/float64(idle), "p50-ratio")
}
