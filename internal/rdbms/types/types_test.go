package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"int": Int, "INTEGER": Int, "bigint": Int, "smallint": Int,
		"real": Float, "double precision": Float, "numeric": Float,
		"text": Text, "varchar": Text, "bool": Bool, "boolean": Bool,
		"bytea": Bytes, "array": Array,
	}
	for name, want := range cases {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseType("jsonb"); err == nil {
		t.Error("unknown type should error")
	}
}

func TestIsNull(t *testing.T) {
	if !(Datum{}).IsNull() {
		t.Error("zero Datum should be NULL")
	}
	if !NewNull(Int).IsNull() {
		t.Error("typed NULL should be NULL")
	}
	if NewInt(0).IsNull() || NewText("").IsNull() || NewBool(false).IsNull() {
		t.Error("zero values are not NULL")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewText("a"), NewText("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewArray(NewInt(1)), NewArray(NewInt(1), NewInt(2)), -1},
		{NewArray(NewInt(2)), NewArray(NewInt(1), NewInt(9)), 1},
		{NewBytes([]byte("a")), NewBytes([]byte("b")), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v, %v) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
}

func TestCompareIncomparable(t *testing.T) {
	if _, err := Compare(NewText("x"), NewInt(1)); err == nil {
		t.Error("text vs int should error")
	}
	if _, err := Compare(NewBool(true), NewInt(1)); err == nil {
		t.Error("bool vs int should error")
	}
	if _, err := Compare(NewNull(Int), NewInt(1)); err == nil {
		t.Error("NULL operand should error (caller handles NULLs)")
	}
}

func TestNaNOrderingIsTotal(t *testing.T) {
	nan := NewFloat(math.NaN())
	if c, _ := Compare(nan, nan); c != 0 {
		t.Error("NaN should equal itself in sort order")
	}
	if c, _ := Compare(NewFloat(1), nan); c != -1 {
		t.Error("NaN should sort after numbers")
	}
	if c, _ := Compare(nan, NewFloat(1)); c != 1 {
		t.Error("NaN should sort after numbers (flipped)")
	}
}

func TestEqualSemantics(t *testing.T) {
	if !Equal(NewInt(2), NewFloat(2.0)) {
		t.Error("2 = 2.0")
	}
	if Equal(NewText("2"), NewInt(2)) {
		t.Error("'2' != 2 (incomparable is unequal, not error)")
	}
	if Equal(NewNull(Int), NewNull(Int)) {
		t.Error("NULL never equals NULL")
	}
}

func TestHashKeyConsistentWithEqual(t *testing.T) {
	f := func(a, b int64) bool {
		da, db := NewInt(a), NewFloat(float64(b))
		ka := string(da.HashKey(nil))
		kb := string(db.HashKey(nil))
		return (ka == kb) == Equal(da, db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Text and bytes never collide despite same content.
	if string(NewText("x").HashKey(nil)) == string(NewBytes([]byte("x")).HashKey(nil)) {
		t.Error("text/bytes hash collision")
	}
	// Array keys are self-delimiting.
	a1 := NewArray(NewText("ab"), NewText("c"))
	a2 := NewArray(NewText("a"), NewText("bc"))
	if string(a1.HashKey(nil)) == string(a2.HashKey(nil)) {
		t.Error("array hash keys must delimit elements")
	}
}

func TestCastMatrix(t *testing.T) {
	ok := []struct {
		in   Datum
		to   Type
		want Datum
	}{
		{NewText("42"), Int, NewInt(42)},
		{NewText(" 42 "), Int, NewInt(42)},
		{NewText("2.5"), Float, NewFloat(2.5)},
		{NewText("true"), Bool, NewBool(true)},
		{NewText("F"), Bool, NewBool(false)},
		{NewInt(1), Bool, NewBool(true)},
		{NewInt(3), Float, NewFloat(3)},
		{NewFloat(3.7), Int, NewInt(3)},
		{NewBool(true), Int, NewInt(1)},
		{NewInt(42), Text, NewText("42")},
		{NewFloat(2.5), Text, NewText("2.5")},
		{NewBool(false), Text, NewText("false")},
		{NewText("abc"), Bytes, NewBytes([]byte("abc"))},
	}
	for _, c := range ok {
		got, err := Cast(c.in, c.to)
		if err != nil {
			t.Errorf("Cast(%v, %v): %v", c.in, c.to, err)
			continue
		}
		if !Equal(got, c.want) && !(got.Typ == Bytes && string(got.Bs) == string(c.want.Bs)) {
			t.Errorf("Cast(%v, %v) = %v, want %v", c.in, c.to, got, c.want)
		}
	}
	// NULL casts to typed NULL.
	n, err := Cast(Datum{}, Int)
	if err != nil || !n.IsNull() || n.Typ != Int {
		t.Errorf("NULL cast = %v, %v", n, err)
	}
	// Malformed text raises an error — the pgjson Q7 behaviour.
	bad := []struct {
		in Datum
		to Type
	}{
		{NewText("twenty"), Int},
		{NewText("x"), Float},
		{NewText("maybe"), Bool},
	}
	for _, c := range bad {
		if _, err := Cast(c.in, c.to); err == nil {
			t.Errorf("Cast(%v, %v) should fail", c.in, c.to)
		}
	}
}

func TestSizeBytes(t *testing.T) {
	if NewNull(Text).SizeBytes() != 0 {
		t.Error("NULL should cost nothing beyond the bitmap")
	}
	if NewInt(1).SizeBytes() != 8 || NewBool(true).SizeBytes() != 1 {
		t.Error("scalar sizes")
	}
	if NewText("abcd").SizeBytes() != 8 { // 4-byte header + 4 bytes
		t.Errorf("text size = %d", NewText("abcd").SizeBytes())
	}
	arr := NewArray(NewInt(1), NewInt(2))
	if arr.SizeBytes() != 4+2*(1+8) {
		t.Errorf("array size = %d", arr.SizeBytes())
	}
}

func TestDatumString(t *testing.T) {
	cases := map[string]Datum{
		"NULL":  NewNull(Int),
		"42":    NewInt(42),
		"2.5":   NewFloat(2.5),
		"hello": NewText("hello"),
		"true":  NewBool(true),
		"{1,a}": NewArray(NewInt(1), NewText("a")),
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", d, got, want)
		}
	}
}

func TestCommonNumeric(t *testing.T) {
	if CommonNumeric(Int, Int) != Int || CommonNumeric(Int, Float) != Float || CommonNumeric(Float, Int) != Float {
		t.Error("CommonNumeric")
	}
}
