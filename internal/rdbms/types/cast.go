package types

import (
	"fmt"
	"strconv"
	"strings"
)

// Cast converts d to type t following Postgres-style rules: numerics
// inter-convert, anything casts to text via its display form, and text
// casts to other types by parsing — raising an error on malformed input
// (the behaviour that breaks Postgres-JSON on multi-typed keys, §6.4).
// NULL casts to NULL of the target type.
func Cast(d Datum, t Type) (Datum, error) {
	if d.IsNull() {
		return NewNull(t), nil
	}
	if d.Typ == t {
		return d, nil
	}
	switch t {
	case Bool:
		switch d.Typ {
		case Int:
			return NewBool(d.I != 0), nil
		case Text:
			switch strings.ToLower(strings.TrimSpace(d.S)) {
			case "t", "true", "yes", "on", "1":
				return NewBool(true), nil
			case "f", "false", "no", "off", "0":
				return NewBool(false), nil
			}
			return Datum{}, fmt.Errorf("invalid input syntax for type boolean: %q", d.S)
		default:
			// Float/Bytes/Array to boolean: no conversion; shared error below.
		}
	case Int:
		switch d.Typ {
		case Bool:
			if d.B {
				return NewInt(1), nil
			}
			return NewInt(0), nil
		case Float:
			return NewInt(int64(d.F)), nil
		case Text:
			i, err := strconv.ParseInt(strings.TrimSpace(d.S), 10, 64)
			if err != nil {
				return Datum{}, fmt.Errorf("invalid input syntax for type integer: %q", d.S)
			}
			return NewInt(i), nil
		default:
			// Bytes/Array to integer: no conversion; shared error below.
		}
	case Float:
		switch d.Typ {
		case Int:
			return NewFloat(float64(d.I)), nil
		case Text:
			f, err := strconv.ParseFloat(strings.TrimSpace(d.S), 64)
			if err != nil {
				return Datum{}, fmt.Errorf("invalid input syntax for type real: %q", d.S)
			}
			return NewFloat(f), nil
		default:
			// Bool/Bytes/Array to real: no conversion; shared error below.
		}
	case Text:
		return NewText(d.String()), nil
	case Bytes:
		if d.Typ == Text {
			return NewBytes([]byte(d.S)), nil
		}
	case Array:
		// Any scalar casts to a one-element array (convenience, not SQL std).
		return NewArray(d), nil
	default:
		// Unknown is not a castable target; shared error below.
	}
	return Datum{}, fmt.Errorf("cannot cast type %v to %v", d.Typ, t)
}

// CommonNumeric returns the wider of two numeric types (int+float = float);
// it is used for arithmetic result typing.
func CommonNumeric(a, b Type) Type {
	if a == Float || b == Float {
		return Float
	}
	return Int
}
