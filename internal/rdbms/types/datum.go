// Package types defines the value system of the embedded relational engine:
// SQL types, datums, comparison, casting, and hashing. It is shared by the
// storage layer, planner, executor, and by Sinew's serialization format.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type is a SQL column type.
type Type uint8

// The supported SQL types. Unknown is the type of an untyped NULL literal
// and of expressions whose type cannot be derived.
const (
	Unknown Type = iota
	Bool
	Int
	Float
	Text
	Bytes
	Array
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case Unknown:
		return "unknown"
	case Bool:
		return "boolean"
	case Int:
		return "integer"
	case Float:
		return "real"
	case Text:
		return "text"
	case Bytes:
		return "bytea"
	case Array:
		return "array"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType resolves a SQL type name (as written in DDL) to a Type.
func ParseType(name string) (Type, error) {
	switch strings.ToLower(name) {
	case "bool", "boolean":
		return Bool, nil
	case "int", "integer", "bigint", "int8", "int4", "smallint":
		return Int, nil
	case "real", "float", "float8", "double", "double precision", "numeric", "decimal":
		return Float, nil
	case "text", "varchar", "char", "string":
		return Text, nil
	case "bytea", "blob", "bytes":
		return Bytes, nil
	case "array":
		return Array, nil
	default:
		return Unknown, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Datum is a single SQL value. The zero Datum is the SQL NULL of unknown
// type. Exactly one payload field is meaningful, selected by Typ; a Datum
// with Null set has no payload.
type Datum struct {
	Typ  Type
	Null bool
	B    bool
	I    int64
	F    float64
	S    string
	Bs   []byte
	A    []Datum
}

// Constructors.

// NewNull returns a NULL of the given type.
func NewNull(t Type) Datum { return Datum{Typ: t, Null: true} }

// NewBool returns a boolean datum.
func NewBool(b bool) Datum { return Datum{Typ: Bool, B: b} }

// NewInt returns an integer datum.
func NewInt(i int64) Datum { return Datum{Typ: Int, I: i} }

// NewFloat returns a real datum.
func NewFloat(f float64) Datum { return Datum{Typ: Float, F: f} }

// NewText returns a text datum.
func NewText(s string) Datum { return Datum{Typ: Text, S: s} }

// NewBytes returns a bytea datum (b is not copied).
func NewBytes(b []byte) Datum { return Datum{Typ: Bytes, Bs: b} }

// NewArray returns an array datum over elems (not copied).
func NewArray(elems ...Datum) Datum { return Datum{Typ: Array, A: elems} }

// IsNull reports whether the datum is SQL NULL. A Datum of Unknown type is
// always NULL (no expression produces a non-null Unknown value), so the zero
// Datum is the untyped NULL literal.
func (d Datum) IsNull() bool { return d.Null || d.Typ == Unknown }

// String renders the datum for display (EXPLAIN, result printing, tests).
func (d Datum) String() string {
	if d.Null {
		return "NULL"
	}
	switch d.Typ {
	case Unknown:
		return "NULL"
	case Bool:
		if d.B {
			return "true"
		}
		return "false"
	case Int:
		return strconv.FormatInt(d.I, 10)
	case Float:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case Text:
		return d.S
	case Bytes:
		return fmt.Sprintf("\\x%x", d.Bs)
	case Array:
		var sb strings.Builder
		sb.WriteByte('{')
		for i, e := range d.A {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(e.String())
		}
		sb.WriteByte('}')
		return sb.String()
	default:
		return fmt.Sprintf("<datum %v>", d.Typ)
	}
}

// SizeBytes estimates the on-disk footprint of the datum, used by the
// byte-accounting pager (and therefore by the I/O model and Table 3 storage
// sizes). NULLs cost nothing beyond the row's null bitmap.
func (d Datum) SizeBytes() int64 {
	if d.Null {
		return 0
	}
	switch d.Typ {
	case Bool:
		return 1
	case Int:
		return 8
	case Float:
		return 8
	case Text:
		return int64(4 + len(d.S)) // 4-byte varlena length header
	case Bytes:
		return int64(4 + len(d.Bs))
	case Array:
		n := int64(4)
		for _, e := range d.A {
			n += 1 + e.SizeBytes() // element type tag + payload
		}
		return n
	default:
		return 0
	}
}

// Float64 widens numeric datums to float64; ok is false for non-numerics
// and NULL.
func (d Datum) Float64() (float64, bool) {
	if d.Null {
		return 0, false
	}
	switch d.Typ {
	case Int:
		return float64(d.I), true
	case Float:
		return d.F, true
	default:
		return 0, false
	}
}

// Compare orders two non-NULL datums: -1, 0, +1. Numeric types compare
// cross-type (integer vs real); all other cross-type comparisons are
// incomparable and return an error. NULL handling is the caller's job
// (SQL three-valued logic lives in the expression evaluator).
func Compare(a, b Datum) (int, error) {
	if a.Null || b.Null {
		return 0, fmt.Errorf("types: Compare called with NULL operand")
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.Typ == Int && b.Typ == Int {
			return cmpInt(a.I, b.I), nil
		}
		af, _ := a.Float64()
		bf, _ := b.Float64()
		return cmpFloat(af, bf), nil
	}
	if a.Typ != b.Typ {
		return 0, fmt.Errorf("types: cannot compare %v with %v", a.Typ, b.Typ)
	}
	switch a.Typ {
	case Bool:
		return cmpBool(a.B, b.B), nil
	case Text:
		return strings.Compare(a.S, b.S), nil
	case Bytes:
		return strings.Compare(string(a.Bs), string(b.Bs)), nil
	case Array:
		for i := 0; i < len(a.A) && i < len(b.A); i++ {
			if a.A[i].Null || b.A[i].Null {
				if a.A[i].Null && b.A[i].Null {
					continue
				}
				if a.A[i].Null {
					return -1, nil // NULLs first inside arrays
				}
				return 1, nil
			}
			c, err := Compare(a.A[i], b.A[i])
			if err != nil {
				return 0, err
			}
			if c != 0 {
				return c, nil
			}
		}
		return cmpInt(int64(len(a.A)), int64(len(b.A))), nil
	default:
		return 0, fmt.Errorf("types: cannot compare values of type %v", a.Typ)
	}
}

// IsNumeric reports whether the datum holds an integer or real value.
func (d Datum) IsNumeric() bool { return d.Typ == Int || d.Typ == Float }

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	// NaN ordering: NaN sorts after everything and equals itself, so sorts
	// and aggregates terminate deterministically.
	case math.IsNaN(a) && math.IsNaN(b):
		return 0
	case math.IsNaN(a):
		return 1
	default:
		return -1
	}
}

func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

// Equal reports SQL equality of two non-NULL datums; incomparable types are
// simply unequal (rather than an error) which matches the dynamic-typing
// behaviour Sinew needs for multi-typed attributes.
func Equal(a, b Datum) bool {
	if a.Null || b.Null {
		return false
	}
	if a.Typ != b.Typ && !(a.IsNumeric() && b.IsNumeric()) {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// HashKey encodes the datum into buf as a self-delimiting byte key such that
// Equal datums produce equal keys. Numerics are normalized to float64 so
// 2 and 2.0 collide (matching Equal). Used by hash join/aggregate.
func (d Datum) HashKey(buf []byte) []byte {
	if d.Null {
		return append(buf, 0x00)
	}
	switch d.Typ {
	case Bool:
		if d.B {
			return append(buf, 0x01, 1)
		}
		return append(buf, 0x01, 0)
	case Int, Float:
		f, _ := d.Float64()
		bits := math.Float64bits(f)
		buf = append(buf, 0x02)
		for shift := 56; shift >= 0; shift -= 8 {
			buf = append(buf, byte(bits>>shift))
		}
		return buf
	case Text:
		buf = append(buf, 0x03)
		buf = appendLenPrefixed(buf, d.S)
		return buf
	case Bytes:
		buf = append(buf, 0x04)
		buf = appendLenPrefixed(buf, string(d.Bs))
		return buf
	case Array:
		buf = append(buf, 0x05)
		buf = append(buf, byte(len(d.A)>>8), byte(len(d.A)))
		for _, e := range d.A {
			buf = e.HashKey(buf)
		}
		return buf
	default:
		return append(buf, 0xff)
	}
}

func appendLenPrefixed(buf []byte, s string) []byte {
	n := len(s)
	buf = append(buf, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	return append(buf, s...)
}
