package rdbms

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

func TestConcurrentReadersAndWriter(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE c (id integer, v integer)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO c VALUES `)
	for i := 0; i < 500; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i)
	}
	mustExec(t, db, sb.String())

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				res, err := db.Query(`SELECT COUNT(*) FROM c`)
				if err != nil {
					errs <- err
					return
				}
				if res.Rows[0][0].I != 500 {
					errs <- fmt.Errorf("count = %v", res.Rows[0][0])
					return
				}
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := db.Exec(fmt.Sprintf(`UPDATE c SET v = v + 1 WHERE id %% 2 = %d`, g)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every row got exactly 20 increments.
	res := mustExec(t, db, `SELECT SUM(v) FROM c`)
	want := int64(500*499/2 + 500*20)
	if res.Rows[0][0].I != want {
		t.Errorf("sum = %v, want %d", res.Rows[0][0], want)
	}
}

func TestUpdateRollbackOnError(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE r (v integer, s text)`)
	mustExec(t, db, `INSERT INTO r VALUES (1, '10'), (2, '20'), (3, 'boom'), (4, '40')`)
	// CAST fails on row 3 during the evaluation phase: nothing changes.
	if _, err := db.Exec(`UPDATE r SET v = CAST(s AS integer)`); err == nil {
		t.Fatal("expected cast failure")
	}
	res := mustExec(t, db, `SELECT SUM(v) FROM r`)
	if res.Rows[0][0].I != 10 {
		t.Errorf("sum = %v, want untouched 10", res.Rows[0][0])
	}
}

func TestSelfJoinWithAliasesSharesSnapshot(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE s (v integer)`)
	mustExec(t, db, `INSERT INTO s VALUES (1), (2), (3)`)
	res := mustExec(t, db, `SELECT COUNT(*) FROM s a, s b WHERE a.v <= b.v`)
	if res.Rows[0][0].I != 6 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestErrorMessages(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE e (v integer)`)
	cases := []struct {
		sql, want string
	}{
		{`SELECT * FROM missing`, "does not exist"},
		{`SELECT nope FROM e`, "does not exist"},
		{`INSERT INTO e (nope) VALUES (1)`, "does not exist"},
		{`SELECT unknown_func(v) FROM e`, "does not exist"},
		{`CREATE TABLE e (v integer)`, "already exists"},
		{`ALTER TABLE e DROP COLUMN ghost`, "does not exist"},
		{`SELECT v FROM e GROUP BY v HAVING nope > 1`, "does not exist"},
	}
	for _, c := range cases {
		_, err := db.Exec(c.sql)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.sql, err, c.want)
		}
	}
}

func TestDropAndRecreateTable(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE d (v integer)`)
	mustExec(t, db, `INSERT INTO d VALUES (1)`)
	mustExec(t, db, `DROP TABLE d`)
	mustExec(t, db, `CREATE TABLE d (s text)`)
	res := mustExec(t, db, `SELECT COUNT(*) FROM d`)
	if res.Rows[0][0].I != 0 {
		t.Error("recreated table should be empty")
	}
}

func TestTruncateResetsSize(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE tr (v text)`)
	mustExec(t, db, `INSERT INTO tr VALUES ('hello'), ('world')`)
	size, _ := db.TableSizeBytes("tr")
	if size <= 0 {
		t.Fatal("size should be positive")
	}
	mustExec(t, db, `TRUNCATE tr`)
	size, _ = db.TableSizeBytes("tr")
	if size != 0 {
		t.Errorf("size after truncate = %d", size)
	}
}

func TestInsertRowsAndScanTable(t *testing.T) {
	db := Open()
	if err := db.CreateTable("p", []storage.Column{
		{Name: "v", Typ: types.Int},
	}, false); err != nil {
		t.Fatal(err)
	}
	rows := make([]storage.Row, 50)
	for i := range rows {
		rows[i] = storage.Row{types.NewInt(int64(i))}
	}
	if err := db.InsertRows("p", rows); err != nil {
		t.Fatal(err)
	}
	var n int
	db.ScanTable("p", func(_ storage.RowID, _ storage.Row) bool { n++; return true })
	if n != 50 {
		t.Errorf("scanned = %d", n)
	}
	// Single-row mutation API (the materializer's primitive).
	var target storage.RowID
	db.ScanTable("p", func(id storage.RowID, r storage.Row) bool {
		if r[0].I == 25 {
			target = id
			return false
		}
		return true
	})
	if err := db.UpdateRow("p", target, storage.Row{types.NewInt(1000)}); err != nil {
		t.Fatal(err)
	}
	row, ok, _ := db.GetRow("p", target)
	if !ok || row[0].I != 1000 {
		t.Errorf("row = %v %v", row, ok)
	}
}

func TestStatsStaleAfterAlter(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE st (v integer)`)
	mustExec(t, db, `INSERT INTO st VALUES (1), (2)`)
	mustExec(t, db, `ANALYZE st`)
	_, stats, _ := db.Table("st")
	if stats == nil {
		t.Fatal("stats missing after ANALYZE")
	}
	mustExec(t, db, `ALTER TABLE st ADD COLUMN extra text`)
	_, stats, _ = db.Table("st")
	if stats != nil {
		t.Error("stats should be invalidated by ALTER")
	}
}

func TestTotalSizeAcrossTables(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE a (v text)`)
	mustExec(t, db, `CREATE TABLE b (v text)`)
	mustExec(t, db, `INSERT INTO a VALUES ('x')`)
	mustExec(t, db, `INSERT INTO b VALUES ('y')`)
	sa, _ := db.TableSizeBytes("a")
	sb2, _ := db.TableSizeBytes("b")
	if db.TotalSizeBytes() != sa+sb2 {
		t.Errorf("total = %d, parts %d + %d", db.TotalSizeBytes(), sa, sb2)
	}
	if got := db.TableNames(); len(got) != 2 || got[0] != "a" {
		t.Errorf("names = %v", got)
	}
}
