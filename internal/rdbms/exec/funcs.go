package exec

import (
	"fmt"
	"math"
	"strings"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// FuncDef describes a scalar function callable from SQL: built-ins and
// user-defined functions (Sinew's extraction functions, pgjson's
// json_extract, the text-index matches() hook) share this mechanism.
type FuncDef struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 for variadic
	// RetType derives the static result type from argument types; nil
	// means Unknown (dynamically typed).
	RetType func(args []types.Type) types.Type
	// Eval computes the result. Functions are assumed pure.
	Eval func(args []types.Datum) (types.Datum, error)
	// CostPerCall is the optimizer's per-call CPU cost estimate. Built-in
	// operators are ~0.0025; an expensive UDF (JSON text parsing) is far
	// higher, which is how the cost model learns that pgjson scans are
	// CPU-bound.
	CostPerCall float64
	// Opaque marks functions whose result distribution the optimizer knows
	// nothing about; predicates over them get fixed default selectivities
	// (the effect behind Table 2 of the paper).
	Opaque bool
	// EvalBatch, when non-nil, evaluates the function over a whole batch:
	// args[k][i] is argument k of row i, and the result for row i is written
	// to out[i]. ctx carries a per-batch scratch cache so a function can
	// amortize work shared across rows or call sites (Sinew's extraction
	// UDFs parse each serialized header once per batch instead of once per
	// expression node). Must agree with Eval row-for-row.
	EvalBatch func(ctx *UDFBatchCtx, args [][]types.Datum, out []types.Datum) error
	// FuseFamily, when non-empty, names the multi-extract kernel family this
	// function belongs to: calls of the form f(col, 'key') on the same column
	// can be fused into one batch-level kernel invocation (registered with
	// RegisterMultiExtract) that decodes each record once for all keys.
	FuseFamily string
	// FuseType is the family-specific type tag of this function's requests
	// (serial.AttrType for Sinew's extraction functions).
	FuseType uint8
	// FuseAny marks the family's untyped variant (first value of any type).
	FuseAny bool
	// Volatile marks functions whose result may differ across calls with
	// equal arguments (random(), nextval()-style). Volatile calls pin a
	// pipeline fragment to serial execution: a parallel pipeline would
	// evaluate them in a different interleaving than the serial plan.
	Volatile bool
}

// MultiExtractReq is one (key, type) request of a fused multi-extraction.
type MultiExtractReq struct {
	Key  string
	Type uint8 // family-specific type tag; ignored when Any
	Any  bool
	// Ret is the static SQL type of the output column.
	Ret types.Type
}

// MultiExtractKernel fills out[k][i] with request k evaluated against
// data[i], decoding each record once for every request. out columns are
// pre-sized to len(data) by the caller. Absent or differently-typed keys
// yield typed NULLs, matching the per-call UDF semantics.
type MultiExtractKernel func(data []types.Datum, out [][]types.Datum) error

// MultiExtractFactory builds a kernel instance for a fixed request set.
// Instances may carry scratch state (a reusable parsed record, prepared
// dictionary lookups) and must not be shared across goroutines.
type MultiExtractFactory func(reqs []MultiExtractReq) (MultiExtractKernel, error)

// SegExtractKernel evaluates a fused multi-extraction straight against a
// striped column segment (one frozen page of the data column), filling the
// same out columns a MultiExtractKernel would. handled=false means the
// kernel does not recognize the segment's concrete type; the caller falls
// back to the row kernel over the materialized column. Results must agree
// with the row kernel cell-for-cell.
type SegExtractKernel func(seg storage.ColumnSegment, out [][]types.Datum) (handled bool, err error)

// SegExtractFactory builds a segment kernel for a fixed request set. Like
// MultiExtractFactory instances, kernels carry scratch state and must not
// be shared across goroutines.
type SegExtractFactory func(reqs []MultiExtractReq) (SegExtractKernel, error)

// UDFBatchCtx is per-batch scratch state shared by every batch-aware UDF
// call site in one pipeline. Cache is cleared at each batch boundary.
type UDFBatchCtx struct {
	Cache map[any]any
}

// AttrResolver maps an extraction key (dotted path as written in SQL) to a
// superset of the dictionary attribute IDs whose presence on a heap page is
// necessary for the extraction to yield non-NULL there. The host (core)
// installs it so the planner can turn strict sparse-key predicates into
// page-skip conditions without the plan layer depending on the serializer.
// An empty (non-nil) result means the key appears nowhere in the corpus.
type AttrResolver func(key string) []uint32

// Registry maps lowercase function names to definitions.
type Registry struct {
	funcs    map[string]*FuncDef
	multi    map[string]MultiExtractFactory
	striped  map[string]SegExtractFactory
	resolver AttrResolver
}

// SetAttrResolver installs the page-skip attribute resolver.
func (r *Registry) SetAttrResolver(f AttrResolver) { r.resolver = f }

// AttrResolverFn returns the installed resolver, or nil.
func (r *Registry) AttrResolverFn() AttrResolver { return r.resolver }

// NewRegistry returns a registry preloaded with the built-in functions.
func NewRegistry() *Registry {
	r := &Registry{
		funcs:   make(map[string]*FuncDef),
		multi:   make(map[string]MultiExtractFactory),
		striped: make(map[string]SegExtractFactory),
	}
	for _, f := range builtins() {
		r.funcs[f.Name] = f
	}
	return r
}

// Register adds or replaces a function definition.
func (r *Registry) Register(def *FuncDef) {
	r.funcs[strings.ToLower(def.Name)] = def
}

// Lookup finds a function by (lowercase) name.
func (r *Registry) Lookup(name string) (*FuncDef, bool) {
	def, ok := r.funcs[strings.ToLower(name)]
	return def, ok
}

// RegisterMultiExtract installs the fused-kernel factory of a function
// family (the FuseFamily of its member FuncDefs).
func (r *Registry) RegisterMultiExtract(family string, f MultiExtractFactory) {
	r.multi[family] = f
}

// MultiExtract returns the fused-kernel factory of a family, if one is
// registered.
func (r *Registry) MultiExtract(family string) (MultiExtractFactory, bool) {
	f, ok := r.multi[family]
	return f, ok
}

// RegisterStripedExtract installs the segment-kernel factory of a function
// family: the striped-scan counterpart of RegisterMultiExtract, consulted
// when the data column arrives as a frozen-page ColumnSegment.
func (r *Registry) RegisterStripedExtract(family string, f SegExtractFactory) {
	r.striped[family] = f
}

// StripedExtract returns the segment-kernel factory of a family, if one is
// registered.
func (r *Registry) StripedExtract(family string) (SegExtractFactory, bool) {
	f, ok := r.striped[family]
	return f, ok
}

func fixed(t types.Type) func([]types.Type) types.Type {
	return func([]types.Type) types.Type { return t }
}

func builtins() []*FuncDef {
	return []*FuncDef{
		{
			Name: "coalesce", MinArgs: 1, MaxArgs: -1,
			RetType: func(args []types.Type) types.Type {
				for _, t := range args {
					if t != types.Unknown {
						return t
					}
				}
				return types.Unknown
			},
			Eval: func(args []types.Datum) (types.Datum, error) {
				for _, a := range args {
					if !a.IsNull() {
						return a, nil
					}
				}
				if len(args) > 0 {
					return args[len(args)-1], nil
				}
				return types.Datum{Null: true}, nil
			},
			CostPerCall: 0.0025,
		},
		{
			Name: "length", MinArgs: 1, MaxArgs: 1, RetType: fixed(types.Int),
			Eval: func(args []types.Datum) (types.Datum, error) {
				a := args[0]
				if a.IsNull() {
					return types.NewNull(types.Int), nil
				}
				switch a.Typ {
				case types.Text:
					return types.NewInt(int64(len(a.S))), nil
				case types.Bytes:
					return types.NewInt(int64(len(a.Bs))), nil
				case types.Array:
					return types.NewInt(int64(len(a.A))), nil
				default:
					return types.Datum{}, fmt.Errorf("length: unsupported type %v", a.Typ)
				}
			},
			CostPerCall: 0.0025,
		},
		{
			Name: "lower", MinArgs: 1, MaxArgs: 1, RetType: fixed(types.Text),
			Eval: textFunc(strings.ToLower), CostPerCall: 0.01,
		},
		{
			Name: "upper", MinArgs: 1, MaxArgs: 1, RetType: fixed(types.Text),
			Eval: textFunc(strings.ToUpper), CostPerCall: 0.01,
		},
		{
			Name: "abs", MinArgs: 1, MaxArgs: 1,
			RetType: func(args []types.Type) types.Type { return args[0] },
			Eval: func(args []types.Datum) (types.Datum, error) {
				a := args[0]
				if a.IsNull() {
					return a, nil
				}
				switch a.Typ {
				case types.Int:
					if a.I < 0 {
						return types.NewInt(-a.I), nil
					}
					return a, nil
				case types.Float:
					return types.NewFloat(math.Abs(a.F)), nil
				default:
					return types.Datum{}, fmt.Errorf("abs: unsupported type %v", a.Typ)
				}
			},
			CostPerCall: 0.0025,
		},
		{
			Name: "substr", MinArgs: 2, MaxArgs: 3, RetType: fixed(types.Text),
			Eval: func(args []types.Datum) (types.Datum, error) {
				if args[0].IsNull() || args[1].IsNull() {
					return types.NewNull(types.Text), nil
				}
				s, err := types.Cast(args[0], types.Text)
				if err != nil {
					return types.Datum{}, err
				}
				start, err := types.Cast(args[1], types.Int)
				if err != nil {
					return types.Datum{}, err
				}
				// SQL substr is 1-based.
				from := int(start.I) - 1
				if from < 0 {
					from = 0
				}
				if from > len(s.S) {
					return types.NewText(""), nil
				}
				to := len(s.S)
				if len(args) == 3 && !args[2].IsNull() {
					n, err := types.Cast(args[2], types.Int)
					if err != nil {
						return types.Datum{}, err
					}
					if t := from + int(n.I); t < to {
						to = t
					}
					if to < from {
						to = from
					}
				}
				return types.NewText(s.S[from:to]), nil
			},
			CostPerCall: 0.01,
		},
		{
			Name: "array_contains", MinArgs: 2, MaxArgs: 2, RetType: fixed(types.Bool),
			Eval: func(args []types.Datum) (types.Datum, error) {
				arr, v := args[0], args[1]
				if arr.IsNull() || v.IsNull() {
					return types.NewNull(types.Bool), nil
				}
				if arr.Typ != types.Array {
					return types.Datum{}, fmt.Errorf("array_contains: first argument must be an array")
				}
				for _, e := range arr.A {
					if types.Equal(e, v) {
						return types.NewBool(true), nil
					}
				}
				return types.NewBool(false), nil
			},
			CostPerCall: 0.02,
		},
		{
			Name: "array_length", MinArgs: 1, MaxArgs: 1, RetType: fixed(types.Int),
			Eval: func(args []types.Datum) (types.Datum, error) {
				a := args[0]
				if a.IsNull() {
					return types.NewNull(types.Int), nil
				}
				if a.Typ != types.Array {
					return types.Datum{}, fmt.Errorf("array_length: argument must be an array")
				}
				return types.NewInt(int64(len(a.A))), nil
			},
			CostPerCall: 0.0025,
		},
		{
			Name: "array_get", MinArgs: 2, MaxArgs: 2,
			Eval: func(args []types.Datum) (types.Datum, error) {
				a, idx := args[0], args[1]
				if a.IsNull() || idx.IsNull() {
					return types.Datum{Null: true}, nil
				}
				if a.Typ != types.Array {
					return types.Datum{}, fmt.Errorf("array_get: first argument must be an array")
				}
				i, err := types.Cast(idx, types.Int)
				if err != nil {
					return types.Datum{}, err
				}
				if i.I < 0 || i.I >= int64(len(a.A)) {
					return types.Datum{Null: true}, nil
				}
				return a.A[i.I], nil
			},
			CostPerCall: 0.0025,
		},
	}
}

func textFunc(fn func(string) string) func([]types.Datum) (types.Datum, error) {
	return func(args []types.Datum) (types.Datum, error) {
		if args[0].IsNull() {
			return types.NewNull(types.Text), nil
		}
		s, err := types.Cast(args[0], types.Text)
		if err != nil {
			return types.Datum{}, err
		}
		return types.NewText(fn(s.S)), nil
	}
}

// AggKind enumerates the supported aggregate functions.
type AggKind uint8

// Aggregate kinds.
const (
	AggCount AggKind = iota
	AggCountStar
	AggSum
	AggAvg
	AggMin
	AggMax
)

// AggFromName resolves an aggregate function name; ok is false for scalar
// functions.
func AggFromName(name string, star bool) (AggKind, bool) {
	switch strings.ToLower(name) {
	case "count":
		if star {
			return AggCountStar, true
		}
		return AggCount, true
	case "sum":
		return AggSum, true
	case "avg":
		return AggAvg, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	}
	return 0, false
}

// IsAggName reports whether name is an aggregate function.
func IsAggName(name string) bool {
	_, ok := AggFromName(name, false)
	return ok
}
