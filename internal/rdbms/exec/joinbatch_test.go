package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// TestPropertyBatchJoinMatchesRowJoin checks the adapter-free batch hash
// join against the row-at-a-time HashJoinIter: same build side (scanned as
// batches vs rows), same probe stream, identical output order, NULL keys
// dropped on both sides, with and without a residual predicate.
func TestPropertyBatchJoinMatchesRowJoin(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		colTypes := []types.Type{types.Int, types.Text}
		rows := randBatchRows(r, colTypes, r.Intn(300))
		h, _ := heapOf(t, colTypes, rows)
		buildTypes := []types.Type{types.Int, types.Text, types.Float}
		buildRows := randBatchRows(r, buildTypes, r.Intn(40))
		bh, _ := heapOf(t, buildTypes, buildRows)
		probeKeys := []Expr{col(0, types.Int)}
		buildKeys := []Expr{col(0, types.Int)}
		var residual Expr
		if r.Intn(2) == 0 {
			residual = &BinExpr{Op: "<>", L: col(1, types.Text), R: lit(types.NewText("c"))}
		}

		want, err := Collect(&HashJoinIter{
			Probe: NewScan(h, nil), Build: NewScan(bh, nil),
			ProbeKeys: probeKeys, BuildKeys: buildKeys, Residual: residual,
		})
		if err != nil {
			t.Fatalf("seed %d: row join: %v", seed, err)
		}

		size := 1 + r.Intn(40)
		got := collectBatches(t, &BatchHashJoinIter{
			Probe: NewBatchScan(h, nil, size), Build: NewBatchScan(bh, nil, size),
			ProbeKeys: probeKeys, BuildKeys: buildKeys, Residual: residual,
			BuildWidth: len(buildTypes), Size: size,
		})
		rowsEqual(t, got, want)

		// A filtered probe side exercises the selection-vector path through
		// the batch probe loop.
		pred := randPred(r, colTypes, 2, true)
		wantF, err := Collect(&HashJoinIter{
			Probe: &FilterIter{Pred: pred, In: NewScan(h, nil)}, Build: NewScan(bh, nil),
			ProbeKeys: probeKeys, BuildKeys: buildKeys, Residual: residual,
		})
		if err != nil {
			t.Fatalf("seed %d: row join (filtered): %v", seed, err)
		}
		gotF := collectBatches(t, &BatchHashJoinIter{
			Probe:     &BatchFilterIter{Pred: pred, In: NewBatchScan(h, nil, size)},
			Build:     NewBatchScan(bh, nil, size),
			ProbeKeys: probeKeys, BuildKeys: buildKeys, Residual: residual,
			BuildWidth: len(buildTypes), Size: size,
		})
		rowsEqual(t, gotF, wantF)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBatchJoinClosesInputs pins the Close contract: both inputs are closed
// exactly once even when the consumer abandons the join before the build
// side has been drained, and double Close is safe.
func TestBatchJoinClosesInputs(t *testing.T) {
	probe := &closeCountIter{}
	build := &closeCountIter{}
	j := &BatchHashJoinIter{
		Probe: probe, Build: build,
		ProbeKeys: []Expr{col(0, types.Int)}, BuildKeys: []Expr{col(0, types.Int)},
		BuildWidth: 1, Size: 8,
	}
	j.Close()
	j.Close()
	if probe.closed == 0 || build.closed == 0 {
		t.Fatalf("inputs not closed: probe=%d build=%d", probe.closed, build.closed)
	}
}

// closeCountIter is an empty BatchIterator that counts Close calls.
type closeCountIter struct{ closed int }

func (c *closeCountIter) NextBatch() (*RowBatch, error) { return nil, nil }
func (c *closeCountIter) Close()                        { c.closed++ }
