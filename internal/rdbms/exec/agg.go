package exec

import (
	"fmt"
	"sort"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// AggSpec describes one aggregate computation: kind plus argument
// expression (nil for COUNT(*)).
type AggSpec struct {
	Kind     AggKind
	Arg      Expr
	Distinct bool
}

// aggState accumulates a single aggregate for one group.
type aggState struct {
	spec     *AggSpec
	count    int64
	sumI     int64
	sumF     float64
	isFloat  bool
	hasVal   bool
	minMax   types.Datum
	distinct map[string]struct{}
	buf      []byte
}

func newAggState(spec *AggSpec) *aggState {
	st := &aggState{spec: spec}
	if spec.Distinct {
		st.distinct = make(map[string]struct{})
	}
	return st
}

func (st *aggState) add(row storage.Row) error {
	if st.spec.Kind == AggCountStar {
		st.count++
		return nil
	}
	v, err := st.spec.Arg.Eval(row)
	if err != nil {
		return err
	}
	return st.addValue(v)
}

// addValue accumulates an already-evaluated argument — the entry point the
// batch aggregate uses after materializing argument columns with EvalBatch.
func (st *aggState) addValue(v types.Datum) error {
	if st.spec.Kind == AggCountStar {
		st.count++
		return nil
	}
	if v.IsNull() {
		return nil
	}
	if st.distinct != nil {
		st.buf = v.HashKey(st.buf[:0])
		if _, seen := st.distinct[string(st.buf)]; seen {
			return nil
		}
		st.distinct[string(st.buf)] = struct{}{}
	}
	switch st.spec.Kind {
	case AggCount:
		st.count++
	case AggSum, AggAvg:
		f, ok := v.Float64()
		if !ok {
			return fmt.Errorf("exec: %s requires numeric input, got %v", aggName(st.spec.Kind), v.Typ)
		}
		if v.Typ == types.Float {
			st.isFloat = true
		}
		st.sumI += v.I
		st.sumF += f
		st.count++
		st.hasVal = true
	case AggMin, AggMax:
		if !st.hasVal {
			st.minMax = v
			st.hasVal = true
			return nil
		}
		c, err := types.Compare(v, st.minMax)
		if err != nil {
			// Multi-typed attribute: keep the first-seen type's extremum.
			return nil
		}
		if (st.spec.Kind == AggMin && c < 0) || (st.spec.Kind == AggMax && c > 0) {
			st.minMax = v
		}
	}
	return nil
}

// merge folds another partial state for the same spec into st — the combine
// step of two-phase parallel aggregation. COUNT/SUM/AVG/MIN/MAX all merge
// exactly; DISTINCT aggregates do not (per-worker distinct sets would
// double-count across partitions), so the planner keeps DISTINCT-aggregate
// plans serial and merge never sees one.
func (st *aggState) merge(o *aggState) error {
	if st.distinct != nil || o.distinct != nil {
		return fmt.Errorf("exec: cannot merge DISTINCT aggregate partials")
	}
	switch st.spec.Kind {
	case AggCount, AggCountStar:
		st.count += o.count
	case AggSum, AggAvg:
		st.sumI += o.sumI
		st.sumF += o.sumF
		st.count += o.count
		st.isFloat = st.isFloat || o.isFloat
		st.hasVal = st.hasVal || o.hasVal
	case AggMin, AggMax:
		if !o.hasVal {
			return nil
		}
		if !st.hasVal {
			st.minMax, st.hasVal = o.minMax, true
			return nil
		}
		c, err := types.Compare(o.minMax, st.minMax)
		if err != nil {
			// Multi-typed attribute: keep the first partition's type, matching
			// the serial accumulator's first-seen-type rule (heap order).
			return nil
		}
		if (st.spec.Kind == AggMin && c < 0) || (st.spec.Kind == AggMax && c > 0) {
			st.minMax = o.minMax
		}
	}
	return nil
}

func (st *aggState) result() types.Datum {
	switch st.spec.Kind {
	case AggCount, AggCountStar:
		return types.NewInt(st.count)
	case AggSum:
		if !st.hasVal {
			return types.Datum{Null: true}
		}
		if st.isFloat {
			return types.NewFloat(st.sumF)
		}
		return types.NewInt(st.sumI)
	case AggAvg:
		if !st.hasVal || st.count == 0 {
			return types.NewNull(types.Float)
		}
		return types.NewFloat(st.sumF / float64(st.count))
	case AggMin, AggMax:
		if !st.hasVal {
			return types.Datum{Null: true}
		}
		return st.minMax
	}
	return types.Datum{Null: true}
}

func aggName(k AggKind) string {
	switch k {
	case AggCount, AggCountStar:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return "?"
}

// HashAggIter groups rows by hashed key expressions and computes aggregates
// per group. Output rows are [groupKeys..., aggResults...]. With no group
// keys it emits exactly one row (scalar aggregation). Group output order is
// the hash-map order made deterministic by sorting on the encoded key, which
// keeps tests stable without changing complexity class.
type HashAggIter struct {
	In       Iterator
	GroupBy  []Expr
	Aggs     []*AggSpec
	SkipSort bool // preserve arbitrary order (used by benchmarks)

	done bool
	out  []storage.Row
	pos  int
	err  error
}

// Next implements Iterator.
func (h *HashAggIter) Next() (storage.Row, bool, error) {
	if !h.done {
		h.run()
	}
	if h.err != nil {
		return nil, false, h.err
	}
	if h.pos >= len(h.out) {
		return nil, false, nil
	}
	r := h.out[h.pos]
	h.pos++
	return r, true, nil
}

type aggGroup struct {
	keyVals []types.Datum
	states  []*aggState
	encKey  string
}

func (h *HashAggIter) run() {
	h.done = true
	defer h.In.Close()
	groups := make(map[string]*aggGroup)
	var keyBuf []byte
	for {
		row, ok, err := h.In.Next()
		if err != nil {
			h.err = err
			return
		}
		if !ok {
			break
		}
		keyBuf = keyBuf[:0]
		keyVals := make([]types.Datum, len(h.GroupBy))
		for i, g := range h.GroupBy {
			v, err := g.Eval(row)
			if err != nil {
				h.err = err
				return
			}
			keyVals[i] = v
			keyBuf = v.HashKey(keyBuf)
		}
		grp, ok := groups[string(keyBuf)]
		if !ok {
			grp = &aggGroup{keyVals: keyVals, encKey: string(keyBuf)}
			for _, spec := range h.Aggs {
				grp.states = append(grp.states, newAggState(spec))
			}
			groups[grp.encKey] = grp
		}
		for _, st := range grp.states {
			if err := st.add(row); err != nil {
				h.err = err
				return
			}
		}
	}
	if len(groups) == 0 && len(h.GroupBy) == 0 {
		// Scalar aggregate over empty input still yields one row.
		grp := &aggGroup{}
		for _, spec := range h.Aggs {
			grp.states = append(grp.states, newAggState(spec))
		}
		groups[""] = grp
	}
	ordered := make([]*aggGroup, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	if !h.SkipSort {
		sort.Slice(ordered, func(a, b int) bool { return ordered[a].encKey < ordered[b].encKey })
	}
	h.out = make([]storage.Row, len(ordered))
	for i, g := range ordered {
		row := make(storage.Row, 0, len(g.keyVals)+len(g.states))
		row = append(row, g.keyVals...)
		for _, st := range g.states {
			row = append(row, st.result())
		}
		h.out[i] = row
	}
}

// Close implements Iterator.
func (h *HashAggIter) Close() { h.In.Close() }

// GroupAggIter computes grouped aggregates over input already sorted by the
// group keys (the planner places a Sort below it). It streams one output
// row per group boundary.
type GroupAggIter struct {
	In      Iterator
	GroupBy []Expr
	Aggs    []*AggSpec

	cur     *aggGroup
	pending storage.Row
	eof     bool
	buf     []byte
}

// Next implements Iterator.
func (g *GroupAggIter) Next() (storage.Row, bool, error) {
	if g.eof && g.cur == nil {
		return nil, false, nil
	}
	for {
		var row storage.Row
		if g.pending != nil {
			row = g.pending
			g.pending = nil
		} else {
			var ok bool
			var err error
			row, ok, err = g.In.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				g.eof = true
				if g.cur != nil {
					out := g.emit()
					g.cur = nil
					return out, true, nil
				}
				if len(g.GroupBy) == 0 && g.cur == nil {
					// no rows and no groups: scalar agg handled by planner
					// using HashAggIter; GroupAgg always has group keys.
				}
				return nil, false, nil
			}
		}
		g.buf = g.buf[:0]
		keyVals := make([]types.Datum, len(g.GroupBy))
		for i, ge := range g.GroupBy {
			v, err := ge.Eval(row)
			if err != nil {
				return nil, false, err
			}
			keyVals[i] = v
			g.buf = v.HashKey(g.buf)
		}
		if g.cur == nil {
			g.cur = &aggGroup{keyVals: keyVals, encKey: string(g.buf)}
			for _, spec := range g.Aggs {
				g.cur.states = append(g.cur.states, newAggState(spec))
			}
		} else if g.cur.encKey != string(g.buf) {
			out := g.emit()
			g.cur = &aggGroup{keyVals: keyVals, encKey: string(g.buf)}
			for _, spec := range g.Aggs {
				g.cur.states = append(g.cur.states, newAggState(spec))
			}
			for _, st := range g.cur.states {
				if err := st.add(row); err != nil {
					return nil, false, err
				}
			}
			return out, true, nil
		}
		for _, st := range g.cur.states {
			if err := st.add(row); err != nil {
				return nil, false, err
			}
		}
	}
}

func (g *GroupAggIter) emit() storage.Row {
	row := make(storage.Row, 0, len(g.cur.keyVals)+len(g.cur.states))
	row = append(row, g.cur.keyVals...)
	for _, st := range g.cur.states {
		row = append(row, st.result())
	}
	return row
}

// Close implements Iterator.
func (g *GroupAggIter) Close() { g.In.Close() }
