package exec

import (
	"math"
	"sort"
	"strings"
	"sync"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// This file implements the batch-native sort path: BatchSortIter
// accumulates its input column-at-a-time, computes the sort keys once per
// batch with vectorized expression evaluation, and reorders through an
// index permutation — no storage.Row is ever materialized. The companion
// ParallelSortedMergeIter merges per-partition sorted streams (each worker
// sorts its gather partition locally and appends its key columns) with a
// k-way minimum scan over the already-computed keys.

// BatchSortIter materializes its batch input and emits it sorted. NULLs
// order last ascending, first descending, exactly like SortIter; ties keep
// input order (stable). Input columns are accumulated densely (a
// selection-carrying batch is compacted through its Sel on the way in) and
// sort keys are evaluated once per input batch via EvalBatch.
type BatchSortIter struct {
	In   BatchIterator
	Keys []SortKey
	// Size is rows per emitted batch (DefaultBatchSize when 0).
	Size int
	// AppendKeys appends the computed key columns after the data columns in
	// emitted batches (width W+K). The parallel sorted-merge gather sets it
	// so the merge step compares precomputed keys instead of re-evaluating
	// key expressions per comparison.
	AppendKeys bool
	// Heap, when non-nil, receives the sort_batches stats counter on Close.
	Heap *storage.Heap

	built   bool
	err     error
	width   int
	present []bool
	cols    [][]types.Datum
	keyCols [][]types.Datum
	rows    int
	perm    []int32
	pos     int
	out     *RowBatch
	batches int64
}

// NextBatch implements BatchIterator.
func (s *BatchSortIter) NextBatch() (*RowBatch, error) {
	if !s.built {
		s.build()
	}
	if s.err != nil {
		return nil, s.err
	}
	if s.pos >= s.rows {
		return nil, nil
	}
	size := s.Size
	if size <= 0 {
		size = DefaultBatchSize
	}
	outW := s.width
	if s.AppendKeys {
		outW += len(s.Keys)
	}
	if s.out == nil {
		s.out = GetBatch(outW)
	}
	out := s.out
	out.Reset()
	hi := s.pos + size
	if hi > s.rows {
		hi = s.rows
	}
	emitPerm(out, s.cols, s.present, s.keyCols, s.AppendKeys, s.perm, s.pos, hi)
	s.pos = hi
	return out, nil
}

// build drains the input (closing it), accumulates dense columns and key
// columns, and sorts the row permutation.
func (s *BatchSortIter) build() {
	s.built = true
	ctx := NewEvalCtx()
	first := true
	for {
		in, err := s.In.NextBatch()
		if err != nil {
			s.err = err
			s.In.Close()
			return
		}
		if in == nil {
			break
		}
		s.batches++
		if first {
			first = false
			s.width = in.Width()
			s.cols = make([][]types.Datum, s.width)
			s.present = make([]bool, s.width)
			for j := range s.present {
				s.present[j] = true
			}
			s.keyCols = make([][]types.Datum, len(s.Keys))
			// Size the accumulation buffers once when the input knows its
			// cardinality: append growth over ~90-byte Datums otherwise
			// re-copies every column log₂(rows) times.
			if sh, ok := s.In.(BatchSizeHinter); ok {
				if hint, known := sh.SizeHint(); known && hint > 0 && hint < 1<<22 {
					for j := range s.cols {
						s.cols[j] = make([]types.Datum, 0, hint)
					}
					for k := range s.keyCols {
						s.keyCols[k] = make([]types.Datum, 0, hint)
					}
				}
			}
		}
		n := in.Len()
		sel := in.Sel
		phys := in.PhysLen()
		ctx.BeginBatch()
		for k := range s.Keys {
			kc, err := EvalBatch(s.Keys[k].Expr, in, ctx)
			if err != nil {
				s.err = err
				s.In.Close()
				return
			}
			// EvalBatch results are physically indexed; gather the logical
			// rows through the selection vector.
			dst := s.keyCols[k]
			if sel == nil {
				dst = append(dst, kc[:n]...)
			} else {
				for si := 0; si < n; si++ {
					dst = append(dst, kc[sel[si]])
				}
			}
			s.keyCols[k] = dst
		}
		for j := 0; j < s.width && j < in.Width(); j++ {
			src := in.Cols[j]
			if len(src) < phys {
				// Column pruned away by the scan: it stays absent in the
				// output too (the planner guarantees no consumer reads it).
				s.present[j] = false
				s.cols[j] = nil
				continue
			}
			if !s.present[j] {
				continue
			}
			dst := s.cols[j]
			if sel == nil {
				dst = append(dst, src[:n]...)
			} else {
				for si := 0; si < n; si++ {
					dst = append(dst, src[sel[si]])
				}
			}
			s.cols[j] = dst
		}
		s.rows += n
	}
	s.In.Close()
	s.perm = make([]int32, s.rows)
	for i := range s.perm {
		s.perm[i] = int32(i)
	}
	if s.rows == 0 {
		return // empty input: keyCols was never initialized
	}
	var sortErr error
	cmps := make([]func(ia, ib int32) int, len(s.Keys))
	for k := range s.Keys {
		cmps[k] = sortKeyCmp(s.keyCols[k], s.Keys[k].Desc, &sortErr)
	}
	sort.SliceStable(s.perm, func(a, b int) bool {
		if sortErr != nil {
			return false
		}
		ia, ib := s.perm[a], s.perm[b]
		for _, cmp := range cmps {
			if c := cmp(ia, ib); c != 0 {
				return c < 0
			}
		}
		return false
	})
	s.err = sortErr
}

// sortKeyCmp builds the comparator for one accumulated key column. A
// homogeneous non-NULL column compares through a compact typed slice (a
// Datum is ~90 bytes, so the generic path drags two of them through the
// cache per comparison); anything else — NULLs, mixed types — goes through
// compareForSort, which is total. The typed kernels reproduce
// types.Compare exactly: integer order on Int, cmpFloat order (NaN last,
// NaN equals NaN) on Float, strings.Compare on Text.
func sortKeyCmp(col []types.Datum, desc bool, errp *error) func(ia, ib int32) int {
	sign := 1
	if desc {
		sign = -1
	}
	uniform := len(col) > 0
	typ := types.Unknown
	if uniform {
		typ = col[0].Typ
	}
	for i := range col {
		if col[i].Typ != typ || col[i].IsNull() {
			uniform = false
			break
		}
	}
	if uniform {
		switch typ {
		case types.Int:
			vals := make([]int64, len(col))
			for i := range col {
				vals[i] = col[i].I
			}
			return func(ia, ib int32) int {
				a, b := vals[ia], vals[ib]
				switch {
				case a < b:
					return -sign
				case a > b:
					return sign
				default:
					return 0
				}
			}
		case types.Float:
			vals := make([]float64, len(col))
			for i := range col {
				vals[i] = col[i].F
			}
			return func(ia, ib int32) int {
				a, b := vals[ia], vals[ib]
				switch {
				case a < b:
					return -sign
				case a > b:
					return sign
				case a == b:
					return 0
				case math.IsNaN(a) && math.IsNaN(b):
					return 0
				case math.IsNaN(a):
					return sign
				default:
					return -sign
				}
			}
		case types.Text:
			vals := make([]string, len(col))
			for i := range col {
				vals[i] = col[i].S
			}
			return func(ia, ib int32) int {
				return strings.Compare(vals[ia], vals[ib]) * sign
			}
		default:
			// Bool/Bytes/Array keys are rare in sorts: the generic
			// comparator below handles them.
		}
	}
	return func(ia, ib int32) int {
		c, err := compareForSort(col[ia], col[ib], desc)
		if err != nil && *errp == nil {
			*errp = err
		}
		return c
	}
}

// Close implements BatchIterator.
func (s *BatchSortIter) Close() {
	s.In.Close()
	if s.out != nil {
		PutBatch(s.out)
		s.out = nil
	}
	if s.Heap != nil && s.batches > 0 {
		s.Heap.RecordSortBatches(s.batches)
		s.batches = 0
	}
}

// SizeHint implements BatchSizeHinter: exact once the input is drained,
// delegated before that (sorting preserves cardinality).
func (s *BatchSortIter) SizeHint() (int64, bool) {
	if s.built && s.err == nil {
		return int64(s.rows), true
	}
	if sh, ok := s.In.(BatchSizeHinter); ok {
		return sh.SizeHint()
	}
	return 0, false
}

// emitPerm fills out with rows perm[lo:hi] gathered from the accumulated
// dense columns (absent columns stay empty, like pruned scan columns) plus,
// when appendKeys is set, the key columns after them.
func emitPerm(out *RowBatch, cols [][]types.Datum, present []bool, keyCols [][]types.Datum, appendKeys bool, perm []int32, lo, hi int) {
	width := len(cols)
	for j := 0; j < width; j++ {
		col := out.Cols[j][:0]
		if present[j] {
			src := cols[j]
			for i := lo; i < hi; i++ {
				col = append(col, src[perm[i]])
			}
		}
		out.SetCol(j, col)
	}
	if appendKeys {
		for k := range keyCols {
			col := out.Cols[width+k][:0]
			src := keyCols[k]
			for i := lo; i < hi; i++ {
				col = append(col, src[perm[i]])
			}
			out.SetCol(width+k, col)
		}
	}
	out.SetLen(hi - lo)
}

// ParallelSortedMergeIter merges per-partition sorted batch streams into
// one globally sorted stream: each worker runs build (whose top operator is
// a BatchSortIter/BatchTopNIter with AppendKeys set) over its page range,
// and the merger k-way-scans the partition heads comparing the trailing
// precomputed key columns. Ties break by partition index, which — combined
// with stable per-partition sorts over ascending page ranges — reproduces
// the serial stable sort order exactly. Cancellation follows
// ParallelPipelineIter's discipline (stop, drain, wait).
type ParallelSortedMergeIter struct {
	keys []SortKey
	// limit, when >= 0, stops the merge after that many rows (Top-N).
	limit int64
	size  int

	parts []chan parallelItem
	stop  chan struct{}
	wg    sync.WaitGroup

	heads     []*RowBatch
	headPools []*workerBatchPool
	headPos   []int
	primed    bool
	emitted   int64
	dataW     int
	haveW     bool
	out       *RowBatch
	err       error
	closed    bool
}

// NewParallelSortedMerge starts one worker per partition; limit < 0 means
// unbounded.
func NewParallelSortedMerge(parts []storage.PageRange, build PipelineBuild, keys []SortKey, limit int64, size int) *ParallelSortedMergeIter {
	if size <= 0 {
		size = DefaultBatchSize
	}
	m := &ParallelSortedMergeIter{
		keys:      keys,
		limit:     limit,
		size:      size,
		parts:     make([]chan parallelItem, len(parts)),
		stop:      make(chan struct{}),
		heads:     make([]*RowBatch, len(parts)),
		headPools: make([]*workerBatchPool, len(parts)),
		headPos:   make([]int, len(parts)),
	}
	for i, r := range parts {
		m.parts[i] = make(chan parallelItem, 2)
		m.wg.Add(1)
		go m.worker(i, r, build)
	}
	return m
}

func (m *ParallelSortedMergeIter) worker(i int, r storage.PageRange, build PipelineBuild) {
	defer m.wg.Done()
	defer close(m.parts[i])
	src, err := build(r)
	if err != nil {
		select {
		case m.parts[i] <- parallelItem{err: err}:
		case <-m.stop:
		}
		return
	}
	defer src.Close()
	pool := newWorkerBatchPool()
	for {
		b, err := src.NextBatch()
		if err != nil {
			select {
			case m.parts[i] <- parallelItem{err: err}:
			case <-m.stop:
			}
			return
		}
		if b == nil {
			return
		}
		out := cloneBatch(b, pool)
		select {
		case m.parts[i] <- parallelItem{b: out, pool: pool}:
		case <-m.stop:
			pool.put(out)
			return
		}
	}
}

// advance releases partition i's consumed head and pulls its next batch;
// an exhausted partition leaves heads[i] nil.
func (m *ParallelSortedMergeIter) advance(i int) error {
	if m.heads[i] != nil {
		releaseBatch(m.heads[i], m.headPools[i])
		m.heads[i], m.headPools[i] = nil, nil
	}
	item, ok := <-m.parts[i]
	if !ok {
		return nil
	}
	if item.err != nil {
		return item.err
	}
	m.heads[i], m.headPools[i], m.headPos[i] = item.b, item.pool, 0
	return nil
}

// less reports whether partition a's head row sorts before partition b's.
// Heads are dense clones whose trailing len(keys) columns hold the
// precomputed sort keys.
func (m *ParallelSortedMergeIter) less(a, b int) bool {
	ha, hb := m.heads[a], m.heads[b]
	wa := ha.Width() - len(m.keys)
	wb := hb.Width() - len(m.keys)
	for k := range m.keys {
		// compareForSort is total over heterogeneous values; it never errors.
		c, _ := compareForSort(ha.Cols[wa+k][m.headPos[a]], hb.Cols[wb+k][m.headPos[b]], m.keys[k].Desc)
		if c != 0 {
			return c < 0
		}
	}
	return a < b // partition order is heap order: serial stable tie-break
}

// NextBatch implements BatchIterator.
//
//lint:ignore sinew/sel-invariant partition heads are dense clones (cloneBatch compacts Sel before the channel send), so physical position == logical position
func (m *ParallelSortedMergeIter) NextBatch() (*RowBatch, error) {
	if m.err != nil {
		return nil, m.err
	}
	if !m.primed {
		m.primed = true
		for i := range m.parts {
			if err := m.advance(i); err != nil {
				m.err = err
				return nil, err
			}
		}
	}
	if m.limit >= 0 && m.emitted >= m.limit {
		return nil, nil
	}
	if !m.haveW {
		for _, h := range m.heads {
			if h != nil {
				m.dataW = h.Width() - len(m.keys)
				m.haveW = true
				break
			}
		}
		if !m.haveW {
			return nil, nil // empty result
		}
	}
	if m.out == nil {
		m.out = GetBatch(m.dataW)
	}
	out := m.out
	out.Reset()
	n := 0
	for n < m.size {
		best := -1
		for i := range m.heads {
			if m.heads[i] == nil {
				continue
			}
			if best == -1 || m.less(i, best) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		h := m.heads[best]
		r := m.headPos[best]
		for j := 0; j < m.dataW; j++ {
			if col := h.Cols[j]; r < len(col) {
				out.Cols[j] = append(out.Cols[j], col[r])
			} else {
				// Column pruned below the partition sorter: a zero Datum is
				// what every row-view of a pruned column yields.
				out.Cols[j] = append(out.Cols[j], types.Datum{})
			}
		}
		n++
		m.emitted++
		m.headPos[best]++
		if m.headPos[best] >= h.Len() {
			if err := m.advance(best); err != nil {
				m.err = err
				return nil, err
			}
		}
		if m.limit >= 0 && m.emitted >= m.limit {
			break
		}
	}
	if n == 0 {
		return nil, nil
	}
	for j := 0; j < m.dataW; j++ {
		out.SetCol(j, out.Cols[j])
	}
	out.SetLen(n)
	return out, nil
}

// Close implements BatchIterator: signals workers, releases held heads,
// drains, waits.
func (m *ParallelSortedMergeIter) Close() {
	if m.closed {
		return
	}
	m.closed = true
	close(m.stop)
	for i := range m.heads {
		if m.heads[i] != nil {
			releaseBatch(m.heads[i], m.headPools[i])
			m.heads[i], m.headPools[i] = nil, nil
		}
	}
	for _, ch := range m.parts {
		for range ch { //nolint:revive // drained for effect
		}
	}
	m.wg.Wait()
	if m.out != nil {
		PutBatch(m.out)
		m.out = nil
	}
}
