package exec

import (
	"sync"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
)

// ExecCtx is the per-statement execution context: it pins one storage
// snapshot per heap so every scan of one statement — across batch
// pipelines, parallel partitions and join sides — reads the same frozen
// page-table version, however the plan interleaves its opens. A nil
// ExecCtx means "read the live heap" (single-writer paths that hold the
// table lock, and embedded callers that never run concurrent writers).
type ExecCtx struct {
	mu    sync.Mutex
	views map[*storage.Heap]*storage.HeapSnapshot
}

// NewExecCtx returns an empty context. Callers must Release it when the
// statement finishes.
func NewExecCtx() *ExecCtx { return &ExecCtx{} }

// View resolves the statement's read view of h: the first call per heap
// pins the heap's latest snapshot, later calls return the same pin. A nil
// receiver (or nil heap) returns the live heap itself.
func (ec *ExecCtx) View(h *storage.Heap) storage.ReadView {
	if ec == nil || h == nil {
		return h
	}
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if s, ok := ec.views[h]; ok {
		return s
	}
	if ec.views == nil {
		ec.views = make(map[*storage.Heap]*storage.HeapSnapshot, 2)
	}
	s := h.AcquireSnapshot()
	ec.views[h] = s
	return s
}

// Resolve maps a plan-time view through the context: live heaps are
// re-pinned via View, already-frozen snapshots pass through unchanged.
func (ec *ExecCtx) Resolve(v storage.ReadView) storage.ReadView {
	if h, ok := v.(*storage.Heap); ok {
		return ec.View(h)
	}
	return v
}

// Release drops every snapshot pin the context holds. Safe on nil and
// safe to call more than once.
func (ec *ExecCtx) Release() {
	if ec == nil {
		return
	}
	ec.mu.Lock()
	defer ec.mu.Unlock()
	for h, s := range ec.views {
		s.Release()
		delete(ec.views, h)
	}
}
