package exec

import (
	"sync"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
)

// ParallelScanIter is a partitioned parallel SeqScan: the heap's page
// space is split into one contiguous page range per worker, each worker
// runs its own BatchScanIter (with its own partition-local byte
// accounting) and the partition streams are merged IN PARTITION ORDER, so
// the merged stream preserves heap order exactly like a serial scan. The
// planner bounds workers by GOMAXPROCS; the executor accepts any count.
type ParallelScanIter struct {
	parts []chan parallelItem
	stop  chan struct{}
	wg    sync.WaitGroup
	scans []*BatchScanIter

	cur    int
	closed bool
	nrows  int64
	exact  bool
}

type parallelItem struct {
	b   *RowBatch
	err error
	// pool, when non-nil, is the producing worker's private batch pool; the
	// merger hands the consumed batch back to it (releaseBatch).
	pool *workerBatchPool
}

// NewParallelScan starts workers scanning v's partitions concurrently.
// workers is clamped to [1, NumPages]; with one worker it degenerates to a
// serial BatchScanIter wrapped in the merge loop.
func NewParallelScan(v storage.ReadView, filter Expr, size, workers int) *ParallelScanIter {
	return NewParallelScanCols(v, filter, size, workers, nil)
}

// NewParallelScanCols is NewParallelScan with scan column pruning: cols
// (when non-nil) lists the only column indices the partition scans
// materialize. It must be fixed at construction because workers start
// reading immediately.
func NewParallelScanCols(v storage.ReadView, filter Expr, size, workers int, cols []int) *ParallelScanIter {
	return NewParallelScanColsSkip(v, filter, size, workers, cols, nil)
}

// NewParallelScanColsSkip is NewParallelScanCols with a page-skip
// predicate installed on every partition scan before workers start.
func NewParallelScanColsSkip(v storage.ReadView, filter Expr, size, workers int, cols []int, skip func(*storage.PageSummary) bool) *ParallelScanIter {
	return NewParallelScanStriped(v, filter, size, workers, cols, skip, false, nil)
}

// NewParallelScanStriped is NewParallelScanColsSkip with striped page mode
// enabled on every partition scan: frozen pages arrive as column aliases,
// filtered through the shared compiled SelFilter (each partition
// instantiates its own kernel/selection state on its worker goroutine).
// Because partition batches cross the merge channel, the scans run in
// no-reuse mode — frozen-page shells and selection buffers are allocated
// fresh per page.
func NewParallelScanStriped(v storage.ReadView, filter Expr, size, workers int, cols []int, skip func(*storage.PageSummary) bool, striped bool, sf *SelFilter) *ParallelScanIter {
	ranges := v.Partitions(workers)
	if len(ranges) == 0 {
		ranges = []storage.PageRange{{Start: 0, End: 0}}
	}
	if len(ranges) > 1 {
		v.Owner().RecordParallelWorkers(len(ranges))
	}
	p := &ParallelScanIter{
		parts: make([]chan parallelItem, len(ranges)),
		stop:  make(chan struct{}),
		scans: make([]*BatchScanIter, len(ranges)),
		nrows: v.NumRows(),
		exact: filter == nil,
	}
	for i, r := range ranges {
		// Cap 2 keeps a worker one batch ahead of the merger without
		// unbounded buffering.
		p.parts[i] = make(chan parallelItem, 2)
		s := NewBatchScanRange(v, filter, size, r.Start, r.End)
		s.NeedCols = cols
		if skip != nil {
			s.SetPageSkip(skip)
		}
		// Batches cross the channel to another goroutine, so the producer
		// must not recycle them.
		s.setNoReuse()
		if striped {
			if sf != nil {
				s.SetSelFilter(sf)
			}
			s.EnableStriped()
		}
		p.scans[i] = s
		p.wg.Add(1)
		go p.worker(i, s)
	}
	return p
}

func (p *ParallelScanIter) worker(i int, s *BatchScanIter) {
	defer p.wg.Done()
	defer close(p.parts[i])
	defer s.Close()
	for {
		b, err := s.NextBatch()
		if err != nil {
			select {
			case p.parts[i] <- parallelItem{err: err}:
			case <-p.stop:
			}
			return
		}
		if b == nil {
			return
		}
		select {
		case p.parts[i] <- parallelItem{b: b}:
		case <-p.stop:
			return
		}
	}
}

// NextBatch implements BatchIterator, draining partitions in ascending
// order.
func (p *ParallelScanIter) NextBatch() (*RowBatch, error) {
	for p.cur < len(p.parts) {
		item, ok := <-p.parts[p.cur]
		if !ok {
			p.cur++
			continue
		}
		if item.err != nil {
			return nil, item.err
		}
		return item.b, nil
	}
	return nil, nil
}

// Close implements BatchIterator: signals every worker to stop, waits for
// them, and finalizes per-partition pager accounting. Each worker closes
// its own partition scan via `defer s.Close()`; the linter's worker
// hand-off proof (scans stored and passed to an all-paths-closing worker,
// Close waiting on wg) verifies the release, so no suppression is needed.
func (p *ParallelScanIter) Close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.stop)
	// Drain so workers blocked on a full channel can observe stop/finish.
	for _, ch := range p.parts {
		for range ch { //nolint:revive // drained for effect
		}
	}
	p.wg.Wait()
}

// BytesRead sums the bytes charged by every partition's scan. Only valid
// after Close or end of stream.
func (p *ParallelScanIter) BytesRead() int64 {
	var total int64
	for _, s := range p.scans {
		total += s.BytesRead()
	}
	return total
}

// SizeHint implements BatchSizeHinter: exact when unfiltered.
func (p *ParallelScanIter) SizeHint() (int64, bool) {
	if !p.exact {
		return 0, false
	}
	return p.nrows, true
}
