package exec

import (
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// joinBuildTable is the columnar build side of a batch hash join: cells
// live in per-column arrays and the hash index maps encoded keys to row
// ids, so building and probing never allocate a per-row storage.Row.
// Columns the build pipeline pruned contribute zero Datums, matching what
// any row view of a pruned column yields.
type joinBuildTable struct {
	width int
	rows  int
	cols  [][]types.Datum
	idx   map[string][]int32
}

func newJoinBuildTable(width int) *joinBuildTable {
	return &joinBuildTable{
		width: width,
		cols:  make([][]types.Datum, width),
		idx:   make(map[string][]int32),
	}
}

// addBatches drains a batch iterator into the table (closing it), keying
// each row on keys. Rows with a NULL key cell are never entered, and rows
// enter in stream order — probe output order matches HashJoinIter exactly.
func (t *joinBuildTable) addBatches(in BatchIterator, keys []Expr) error {
	defer in.Close()
	ctx := NewEvalCtx()
	keyCols := make([][]types.Datum, len(keys))
	var buf []byte
	for {
		b, err := in.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		ctx.BeginBatch()
		for k, ke := range keys {
			if keyCols[k], err = EvalBatch(ke, b, ctx); err != nil {
				return err
			}
		}
		n := b.Len()
		sel := b.Sel
		phys := b.PhysLen()
		for si := 0; si < n; si++ {
			r := selIdx(sel, si)
			buf = buf[:0]
			null := false
			for _, col := range keyCols {
				if col[r].IsNull() {
					null = true
					break
				}
				buf = col[r].HashKey(buf)
			}
			if null {
				continue
			}
			id := int32(t.rows)
			for j := 0; j < t.width; j++ {
				var v types.Datum
				if j < len(b.Cols) {
					if col := b.Cols[j]; len(col) == phys {
						v = col[r]
					}
				}
				t.cols[j] = append(t.cols[j], v)
			}
			t.rows++
			t.idx[string(buf)] = append(t.idx[string(buf)], id)
		}
	}
}

// addRows drains a row iterator into the table (closing it) — the parallel
// join's build side may itself be a gather, which is row-shaped at its
// boundary.
func (t *joinBuildTable) addRows(in Iterator, keys []Expr) error {
	defer in.Close()
	var buf []byte
	for {
		row, ok, err := in.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		buf = buf[:0]
		null := false
		for _, k := range keys {
			v, err := k.Eval(row)
			if err != nil {
				return err
			}
			if v.IsNull() {
				null = true
				break
			}
			buf = v.HashKey(buf)
		}
		if null {
			continue
		}
		id := int32(t.rows)
		for j := 0; j < t.width; j++ {
			var v types.Datum
			if j < len(row) {
				v = row[j]
			}
			t.cols[j] = append(t.cols[j], v)
		}
		t.rows++
		t.idx[string(buf)] = append(t.idx[string(buf)], id)
	}
}

// appendTo appends build row id's cells to dst.
func (t *joinBuildTable) appendTo(dst storage.Row, id int32) storage.Row {
	for j := 0; j < t.width; j++ {
		dst = append(dst, t.cols[j][id])
	}
	return dst
}

// BatchHashJoinIter is the adapter-free inner equi-join: both sides are
// consumed batch-at-a-time, join keys are evaluated column-at-a-time, the
// build side lives in a columnar joinBuildTable, and matches are assembled
// straight into reused output columns. Semantics match HashJoinIter:
// output rows are probeRow ++ buildRow in probe order × build insertion
// order, NULL keys never match, and Residual is checked on joined rows.
type BatchHashJoinIter struct {
	Probe     BatchIterator
	Build     BatchIterator
	ProbeKeys []Expr
	BuildKeys []Expr
	Residual  Expr
	// BuildWidth is the build side's column count (the probe width comes
	// from its batches).
	BuildWidth int
	// Size is rows per emitted batch (DefaultBatchSize when 0).
	Size int

	table   *joinBuildTable
	built   bool
	err     error
	ctx     *EvalCtx
	keyCols [][]types.Datum
	keyBuf  []byte
	in      *RowBatch
	si      int
	curPhys int
	matches []int32
	matchIx int
	probeW  int
	out     *RowBatch
	outLen  int
	rowBuf  storage.Row
	joined  storage.Row
}

// NextBatch implements BatchIterator.
func (j *BatchHashJoinIter) NextBatch() (*RowBatch, error) {
	if !j.built {
		j.built = true
		j.table = newJoinBuildTable(j.BuildWidth)
		if err := j.table.addBatches(j.Build, j.BuildKeys); err != nil {
			j.err = err
		}
		j.ctx = NewEvalCtx()
		j.keyCols = make([][]types.Datum, len(j.ProbeKeys))
	}
	if j.err != nil {
		return nil, j.err
	}
	size := j.Size
	if size <= 0 {
		size = DefaultBatchSize
	}
	if j.out != nil {
		j.out.Reset()
	}
	j.outLen = 0
	for {
		if j.in == nil {
			b, err := j.Probe.NextBatch()
			if err != nil {
				return nil, err
			}
			if b == nil {
				return j.finish()
			}
			j.in = b
			j.si = 0
			j.matches = nil
			j.matchIx = 0
			j.probeW = b.Width()
			j.ctx.BeginBatch()
			for k, ke := range j.ProbeKeys {
				if j.keyCols[k], err = EvalBatch(ke, b, j.ctx); err != nil {
					return nil, err
				}
			}
			if j.out == nil {
				j.out = GetBatch(j.probeW + j.table.width)
			}
		}
		for j.matchIx < len(j.matches) {
			bid := j.matches[j.matchIx]
			j.matchIx++
			if j.Residual != nil {
				j.rowBuf = j.in.Row(j.curPhys, j.rowBuf)
				j.joined = append(j.joined[:0], j.rowBuf...)
				j.joined = j.table.appendTo(j.joined, bid)
				keep, err := EvalBool(j.Residual, j.joined)
				if err != nil {
					return nil, err
				}
				if !keep {
					continue
				}
			}
			r := j.curPhys
			phys := j.in.PhysLen()
			for c := 0; c < j.probeW; c++ {
				var v types.Datum
				if col := j.in.Cols[c]; len(col) == phys {
					v = col[r]
				}
				j.out.Cols[c] = append(j.out.Cols[c], v)
			}
			for c := 0; c < j.table.width; c++ {
				j.out.Cols[j.probeW+c] = append(j.out.Cols[j.probeW+c], j.table.cols[c][bid])
			}
			j.outLen++
			if j.outLen >= size {
				return j.finish()
			}
		}
		if j.si >= j.in.Len() {
			// Probe batch exhausted; its cells were copied into the output
			// columns, so the next pull may recycle it.
			j.in = nil
			continue
		}
		r := selIdx(j.in.Sel, j.si)
		j.si++
		j.keyBuf = j.keyBuf[:0]
		null := false
		for _, col := range j.keyCols {
			if col[r].IsNull() {
				null = true
				break
			}
			j.keyBuf = col[r].HashKey(j.keyBuf)
		}
		if null {
			continue
		}
		j.curPhys = r
		j.matches = j.table.idx[string(j.keyBuf)]
		j.matchIx = 0
	}
}

// finish finalizes the pending output batch (recomputing null bitmaps) or
// reports end of stream.
func (j *BatchHashJoinIter) finish() (*RowBatch, error) {
	if j.outLen == 0 {
		return nil, nil
	}
	for c := range j.out.Cols {
		j.out.SetCol(c, j.out.Cols[c])
	}
	j.out.SetLen(j.outLen)
	j.outLen = 0
	return j.out, nil
}

// Close implements BatchIterator.
func (j *BatchHashJoinIter) Close() {
	j.Probe.Close()
	j.Build.Close()
	if j.out != nil {
		PutBatch(j.out)
		j.out = nil
	}
}
