package exec

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// randSortKeys returns 1–3 sort keys over random columns or shallow
// expressions, each with a random direction, so multi-key ASC/DESC orders
// and NULL placement (last ascending, first descending) are all exercised.
func randSortKeys(r *rand.Rand, colTypes []types.Type) []SortKey {
	keys := make([]SortKey, 1+r.Intn(3))
	for i := range keys {
		var e Expr
		switch r.Intn(4) {
		case 0:
			e = randNumExpr(r, colTypes, 1, true)
		case 1:
			e = randTextExpr(r, colTypes, 1)
		default:
			j := r.Intn(len(colTypes))
			e = col(j, colTypes[j])
		}
		keys[i] = SortKey{Expr: e, Desc: r.Intn(2) == 0}
	}
	return keys
}

// sortChainBuild mirrors GatherNode.buildPartition for a sorted-merge
// gather: scan→(filter)→sorter with AppendKeys, one per partition. limit < 0
// builds a full BatchSortIter, otherwise a BatchTopNIter bounded at limit.
func sortChainBuild(h *storage.Heap, pred Expr, keys []SortKey, limit int64, size int) PipelineBuild {
	return func(r storage.PageRange) (BatchIterator, error) {
		var cur BatchIterator = NewBatchScanRange(h, nil, size, r.Start, r.End)
		if pred != nil {
			cur = &BatchFilterIter{In: cur, Pred: pred}
		}
		if limit >= 0 {
			return &BatchTopNIter{In: cur, Keys: keys, N: limit, Size: size, AppendKeys: true}, nil
		}
		return &BatchSortIter{In: cur, Keys: keys, Size: size, AppendKeys: true}, nil
	}
}

// TestPropertyBatchSortMatchesRowSort is the differential test backing the
// batch-native sort: over random schemas, data (with NULLs), multi-key
// ASC/DESC orders, and filters, the row SortIter, the serial BatchSortIter,
// and the parallel sorted-merge gather must produce identical output —
// same rows, same order (local stable sorts over ascending page ranges plus
// a partition-index tie-break reproduce the serial stable sort exactly).
func TestPropertyBatchSortMatchesRowSort(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		colTypes := []types.Type{types.Int, types.Text}
		for n := r.Intn(3); n > 0; n-- {
			colTypes = append(colTypes,
				[]types.Type{types.Int, types.Float, types.Text, types.Bool}[r.Intn(4)])
		}
		rows := randBatchRows(r, colTypes, r.Intn(300))
		h, _ := heapOf(t, colTypes, rows)
		keys := randSortKeys(r, colTypes)
		var pred Expr
		if r.Intn(2) == 0 {
			pred = randPred(r, colTypes, 2, true)
		}

		rowIn := NewScan(h, nil)
		var rowSrc Iterator = rowIn
		if pred != nil {
			rowSrc = &FilterIter{Pred: pred, In: rowIn}
		}
		want, err := Collect(&SortIter{In: rowSrc, Keys: keys})
		if err != nil {
			t.Fatalf("seed %d: row sort: %v", seed, err)
		}

		size := 1 + r.Intn(40)
		var batchSrc BatchIterator = NewBatchScan(h, nil, size)
		if pred != nil {
			batchSrc = &BatchFilterIter{Pred: pred, In: batchSrc}
		}
		batch := collectBatches(t, &BatchSortIter{In: batchSrc, Keys: keys, Size: size})
		rowsEqual(t, batch, want)

		for _, workers := range []int{2, 3, 5} {
			par := collectBatches(t, NewParallelSortedMerge(
				h.Partitions(workers), sortChainBuild(h, pred, keys, -1, size),
				keys, -1, size))
			rowsEqual(t, par, want)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTopNMatchesSortLimit checks the bounded Top-N operator — and
// its parallel form, per-partition Top-N heaps merged with the bound pushed
// into the merge — against the row-at-a-time SORT + LIMIT reference,
// including N = 0, N larger than the input, and ties at the boundary (the
// heap discards a tying newcomer, preserving first-arrival order exactly
// like the stable sort).
func TestPropertyTopNMatchesSortLimit(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		colTypes := []types.Type{types.Int, types.Text}
		for n := r.Intn(2); n > 0; n-- {
			colTypes = append(colTypes,
				[]types.Type{types.Int, types.Float, types.Text, types.Bool}[r.Intn(4)])
		}
		nRows := r.Intn(300)
		rows := randBatchRows(r, colTypes, nRows)
		h, _ := heapOf(t, colTypes, rows)
		keys := randSortKeys(r, colTypes)
		limit := int64(r.Intn(nRows + 20)) // sometimes 0, sometimes > nRows

		want, err := Collect(&LimitIter{N: limit,
			In: &SortIter{In: NewScan(h, nil), Keys: keys}})
		if err != nil {
			t.Fatalf("seed %d: row sort+limit: %v", seed, err)
		}

		size := 1 + r.Intn(40)
		batch := collectBatches(t, &BatchTopNIter{
			In: NewBatchScan(h, nil, size), Keys: keys, N: limit, Size: size})
		rowsEqual(t, batch, want)

		for _, workers := range []int{2, 4} {
			par := collectBatches(t, NewParallelSortedMerge(
				h.Partitions(workers), sortChainBuild(h, nil, keys, limit, size),
				keys, limit, size))
			rowsEqual(t, par, want)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestParallelSortedMergeReleasesOnEarlyClose abandons the sorted merge
// mid-stream and checks worker goroutines exit and the pager is charged at
// most one full scan — same contract as the other parallel mergers. The
// sorters drain their partitions during the first NextBatch, so the full
// heap has been read by then; early close must not double-charge it.
func TestParallelSortedMergeReleasesOnEarlyClose(t *testing.T) {
	colTypes := []types.Type{types.Int, types.Text}
	r := rand.New(rand.NewSource(13))
	rows := randBatchRows(r, colTypes, 4000)
	h, pager := heapOf(t, colTypes, rows)
	full := h.SizeBytes()
	keys := []SortKey{{Expr: col(0, types.Int)}}

	mk := map[string]func() BatchIterator{
		"sort": func() BatchIterator {
			return NewParallelSortedMerge(h.Partitions(4),
				sortChainBuild(h, nil, keys, -1, 32), keys, -1, 32)
		},
		"topn": func() BatchIterator {
			return NewParallelSortedMerge(h.Partitions(4),
				sortChainBuild(h, nil, keys, 7, 32), keys, 7, 32)
		},
	}
	for name, make := range mk {
		base := runtime.NumGoroutine()
		for i := 0; i < 10; i++ {
			pager.Reset()
			it := make()
			if _, err := it.NextBatch(); err != nil {
				t.Fatalf("%s: first batch: %v", name, err)
			}
			it.Close()
			it.Close() // idempotent
			read, _ := pager.Stats()
			if read > full {
				t.Fatalf("%s: pager charged %d bytes for early close, heap is %d", name, read, full)
			}
		}
		waitGoroutines(t, base)

		// Close before any NextBatch: workers may not even have started.
		it := make()
		it.Close()
		waitGoroutines(t, base)
	}
}
