// Package exec implements the runtime of the embedded RDBMS: compiled
// scalar expressions and Volcano-style operators (scan, filter, project,
// sort, aggregate, join, limit). Plans are built by the plan package and
// evaluated here.
package exec

import (
	"fmt"
	"regexp"
	"strings"
	"sync"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// Expr is a compiled scalar expression evaluated against an executor row.
type Expr interface {
	Eval(row storage.Row) (types.Datum, error)
	// Type is the statically derived result type (Unknown when dynamic).
	Type() types.Type
	// Cost is the estimated per-row evaluation cost in abstract CPU units,
	// used by the optimizer (UDF calls dominate).
	Cost() float64
	// String renders the expression for EXPLAIN output.
	String() string
}

// ---------- Column and constant ----------

// ColExpr reads column Idx of the executor row.
type ColExpr struct {
	Idx  int
	Typ  types.Type
	Name string // display name for EXPLAIN
}

// Eval implements Expr.
func (c *ColExpr) Eval(row storage.Row) (types.Datum, error) { return row[c.Idx], nil }

// Type implements Expr.
func (c *ColExpr) Type() types.Type { return c.Typ }

// Cost implements Expr.
func (c *ColExpr) Cost() float64 { return 0.01 }

func (c *ColExpr) String() string { return c.Name }

// ConstExpr is a literal.
type ConstExpr struct{ Val types.Datum }

// Eval implements Expr.
func (c *ConstExpr) Eval(storage.Row) (types.Datum, error) { return c.Val, nil }

// Type implements Expr.
func (c *ConstExpr) Type() types.Type { return c.Val.Typ }

// Cost implements Expr.
func (c *ConstExpr) Cost() float64 { return 0 }

func (c *ConstExpr) String() string {
	if c.Val.Typ == types.Text && !c.Val.Null {
		return "'" + strings.ReplaceAll(c.Val.S, "'", "''") + "'"
	}
	return c.Val.String()
}

// ---------- Binary operators ----------

// BinExpr applies a binary operator with SQL three-valued logic.
type BinExpr struct {
	Op   string // "=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/", "%", "AND", "OR", "||"
	L, R Expr
}

// Eval implements Expr.
func (b *BinExpr) Eval(row storage.Row) (types.Datum, error) {
	switch b.Op {
	case "AND", "OR":
		return b.evalLogical(row)
	}
	l, err := b.L.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	switch b.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		return evalComparison(b.Op, l, r)
	case "||":
		if l.IsNull() || r.IsNull() {
			return types.NewNull(types.Text), nil
		}
		ls, err := types.Cast(l, types.Text)
		if err != nil {
			return types.Datum{}, err
		}
		rs, err := types.Cast(r, types.Text)
		if err != nil {
			return types.Datum{}, err
		}
		return types.NewText(ls.S + rs.S), nil
	default:
		return evalArith(b.Op, l, r)
	}
}

func (b *BinExpr) evalLogical(row storage.Row) (types.Datum, error) {
	l, err := b.L.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	lt, lnull, err := truth(l)
	if err != nil {
		return types.Datum{}, err
	}
	// Short circuit where the result is decided.
	if b.Op == "AND" && !lnull && !lt {
		return types.NewBool(false), nil
	}
	if b.Op == "OR" && !lnull && lt {
		return types.NewBool(true), nil
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	rt, rnull, err := truth(r)
	if err != nil {
		return types.Datum{}, err
	}
	if b.Op == "AND" {
		switch {
		case !rnull && !rt:
			return types.NewBool(false), nil
		case lnull || rnull:
			return types.NewNull(types.Bool), nil
		default:
			return types.NewBool(true), nil
		}
	}
	switch {
	case !rnull && rt:
		return types.NewBool(true), nil
	case lnull || rnull:
		return types.NewNull(types.Bool), nil
	default:
		return types.NewBool(false), nil
	}
}

// Type implements Expr.
func (b *BinExpr) Type() types.Type {
	switch b.Op {
	case "=", "<>", "<", "<=", ">", ">=", "AND", "OR":
		return types.Bool
	case "||":
		return types.Text
	default:
		lt, rt := b.L.Type(), b.R.Type()
		if lt == types.Unknown || rt == types.Unknown {
			return types.Unknown
		}
		return types.CommonNumeric(lt, rt)
	}
}

// Cost implements Expr.
func (b *BinExpr) Cost() float64 { return b.L.Cost() + b.R.Cost() + 0.0025 }

func (b *BinExpr) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// truth interprets a datum as a SQL boolean: value, isNull, error.
func truth(d types.Datum) (val, isNull bool, err error) {
	if d.IsNull() {
		return false, true, nil
	}
	if d.Typ != types.Bool {
		return false, false, fmt.Errorf("exec: argument of boolean operator must be boolean, not %v", d.Typ)
	}
	return d.B, false, nil
}

func evalComparison(op string, l, r types.Datum) (types.Datum, error) {
	if l.IsNull() || r.IsNull() {
		return types.NewNull(types.Bool), nil
	}
	c, err := types.Compare(l, r)
	if err != nil {
		return types.Datum{}, err
	}
	var out bool
	switch op {
	case "=":
		out = c == 0
	case "<>":
		out = c != 0
	case "<":
		out = c < 0
	case "<=":
		out = c <= 0
	case ">":
		out = c > 0
	case ">=":
		out = c >= 0
	}
	return types.NewBool(out), nil
}

func evalArith(op string, l, r types.Datum) (types.Datum, error) {
	if l.IsNull() || r.IsNull() {
		return types.NewNull(types.CommonNumeric(l.Typ, r.Typ)), nil
	}
	if !l.IsNumeric() || !r.IsNumeric() {
		return types.Datum{}, fmt.Errorf("exec: operator %q requires numeric operands, got %v and %v", op, l.Typ, r.Typ)
	}
	if l.Typ == types.Int && r.Typ == types.Int {
		switch op {
		case "+":
			return types.NewInt(l.I + r.I), nil
		case "-":
			return types.NewInt(l.I - r.I), nil
		case "*":
			return types.NewInt(l.I * r.I), nil
		case "/":
			if r.I == 0 {
				return types.Datum{}, fmt.Errorf("exec: division by zero")
			}
			return types.NewInt(l.I / r.I), nil
		case "%":
			if r.I == 0 {
				return types.Datum{}, fmt.Errorf("exec: division by zero")
			}
			return types.NewInt(l.I % r.I), nil
		}
	}
	lf, _ := l.Float64()
	rf, _ := r.Float64()
	switch op {
	case "+":
		return types.NewFloat(lf + rf), nil
	case "-":
		return types.NewFloat(lf - rf), nil
	case "*":
		return types.NewFloat(lf * rf), nil
	case "/":
		if rf == 0 {
			return types.Datum{}, fmt.Errorf("exec: division by zero")
		}
		return types.NewFloat(lf / rf), nil
	case "%":
		return types.Datum{}, fmt.Errorf("exec: %% requires integer operands")
	}
	return types.Datum{}, fmt.Errorf("exec: unknown arithmetic operator %q", op)
}

// ---------- NOT / negation ----------

// NotExpr is logical NOT.
type NotExpr struct{ X Expr }

// Eval implements Expr.
func (n *NotExpr) Eval(row storage.Row) (types.Datum, error) {
	v, err := n.X.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	t, isNull, err := truth(v)
	if err != nil {
		return types.Datum{}, err
	}
	if isNull {
		return types.NewNull(types.Bool), nil
	}
	return types.NewBool(!t), nil
}

// Type implements Expr.
func (n *NotExpr) Type() types.Type { return types.Bool }

// Cost implements Expr.
func (n *NotExpr) Cost() float64 { return n.X.Cost() + 0.0025 }

func (n *NotExpr) String() string { return "(NOT " + n.X.String() + ")" }

// NegExpr is arithmetic negation.
type NegExpr struct{ X Expr }

// Eval implements Expr.
func (n *NegExpr) Eval(row storage.Row) (types.Datum, error) {
	v, err := n.X.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	if v.IsNull() {
		return v, nil
	}
	switch v.Typ {
	case types.Int:
		return types.NewInt(-v.I), nil
	case types.Float:
		return types.NewFloat(-v.F), nil
	default:
		return types.Datum{}, fmt.Errorf("exec: cannot negate %v", v.Typ)
	}
}

// Type implements Expr.
func (n *NegExpr) Type() types.Type { return n.X.Type() }

// Cost implements Expr.
func (n *NegExpr) Cost() float64 { return n.X.Cost() + 0.0025 }

func (n *NegExpr) String() string { return "(-" + n.X.String() + ")" }

// ---------- Predicate forms ----------

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// Eval implements Expr.
func (e *IsNullExpr) Eval(row storage.Row) (types.Datum, error) {
	v, err := e.X.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	return types.NewBool(v.IsNull() != e.Not), nil
}

// Type implements Expr.
func (e *IsNullExpr) Type() types.Type { return types.Bool }

// Cost implements Expr.
func (e *IsNullExpr) Cost() float64 { return e.X.Cost() + 0.0025 }

func (e *IsNullExpr) String() string {
	if e.Not {
		return "(" + e.X.String() + " IS NOT NULL)"
	}
	return "(" + e.X.String() + " IS NULL)"
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi, evaluated as the conjunction of
// two comparisons but with X evaluated once (the paper notes MongoDB
// precomputes the value while Postgres re-extracts per comparison; our
// engine models the Postgres behaviour in the pgjson baseline by rewriting
// BETWEEN into two explicit comparisons there).
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

// Eval implements Expr.
func (e *BetweenExpr) Eval(row storage.Row) (types.Datum, error) {
	x, err := e.X.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	lo, err := e.Lo.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	hi, err := e.Hi.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	geLo, err := evalComparison(">=", x, lo)
	if err != nil {
		return types.Datum{}, err
	}
	leHi, err := evalComparison("<=", x, hi)
	if err != nil {
		return types.Datum{}, err
	}
	if geLo.IsNull() || leHi.IsNull() {
		// FALSE AND NULL is FALSE.
		if (!geLo.IsNull() && !geLo.B) || (!leHi.IsNull() && !leHi.B) {
			return types.NewBool(e.Not), nil
		}
		return types.NewNull(types.Bool), nil
	}
	return types.NewBool((geLo.B && leHi.B) != e.Not), nil
}

// Type implements Expr.
func (e *BetweenExpr) Type() types.Type { return types.Bool }

// Cost implements Expr.
func (e *BetweenExpr) Cost() float64 { return e.X.Cost() + e.Lo.Cost() + e.Hi.Cost() + 0.005 }

func (e *BetweenExpr) String() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return "(" + e.X.String() + not + " BETWEEN " + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

// InListExpr is x [NOT] IN (list), with SQL NULL semantics.
type InListExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

// Eval implements Expr.
func (e *InListExpr) Eval(row storage.Row) (types.Datum, error) {
	x, err := e.X.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	if x.IsNull() {
		return types.NewNull(types.Bool), nil
	}
	sawNull := false
	for _, le := range e.List {
		v, err := le.Eval(row)
		if err != nil {
			return types.Datum{}, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		if types.Equal(x, v) {
			return types.NewBool(!e.Not), nil
		}
	}
	if sawNull {
		return types.NewNull(types.Bool), nil
	}
	return types.NewBool(e.Not), nil
}

// Type implements Expr.
func (e *InListExpr) Type() types.Type { return types.Bool }

// Cost implements Expr.
func (e *InListExpr) Cost() float64 {
	c := e.X.Cost()
	for _, le := range e.List {
		c += le.Cost()
	}
	return c + 0.0025*float64(len(e.List))
}

func (e *InListExpr) String() string {
	var parts []string
	for _, le := range e.List {
		parts = append(parts, le.String())
	}
	not := ""
	if e.Not {
		not = " NOT"
	}
	return "(" + e.X.String() + not + " IN (" + strings.Join(parts, ", ") + "))"
}

// LikeExpr is x [NOT] LIKE pattern. Patterns are compiled to regexps and
// cached per pattern string (patterns are usually constants).
type LikeExpr struct {
	X, Pattern Expr
	Not        bool

	mu       sync.Mutex
	cachedRx *regexp.Regexp
	cachedP  string
}

// Eval implements Expr.
func (e *LikeExpr) Eval(row storage.Row) (types.Datum, error) {
	x, err := e.X.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	p, err := e.Pattern.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	if x.IsNull() || p.IsNull() {
		return types.NewNull(types.Bool), nil
	}
	xs, err := types.Cast(x, types.Text)
	if err != nil {
		return types.Datum{}, err
	}
	ps, err := types.Cast(p, types.Text)
	if err != nil {
		return types.Datum{}, err
	}
	rx, err := e.compiled(ps.S)
	if err != nil {
		return types.Datum{}, err
	}
	return types.NewBool(rx.MatchString(xs.S) != e.Not), nil
}

func (e *LikeExpr) compiled(pattern string) (*regexp.Regexp, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cachedRx != nil && e.cachedP == pattern {
		return e.cachedRx, nil
	}
	rx, err := regexp.Compile(likeToRegexp(pattern))
	if err != nil {
		return nil, fmt.Errorf("exec: bad LIKE pattern %q: %w", pattern, err)
	}
	e.cachedRx, e.cachedP = rx, pattern
	return rx, nil
}

// likeToRegexp converts a SQL LIKE pattern to an anchored regexp source.
func likeToRegexp(pattern string) string {
	var sb strings.Builder
	sb.WriteString(`(?s)^`)
	for i := 0; i < len(pattern); i++ {
		switch c := pattern[i]; c {
		case '%':
			sb.WriteString(`.*`)
		case '_':
			sb.WriteString(`.`)
		case '\\':
			if i+1 < len(pattern) {
				i++
				sb.WriteString(regexp.QuoteMeta(string(pattern[i])))
			}
		default:
			sb.WriteString(regexp.QuoteMeta(string(c)))
		}
	}
	sb.WriteString(`$`)
	return sb.String()
}

// Type implements Expr.
func (e *LikeExpr) Type() types.Type { return types.Bool }

// Cost implements Expr.
func (e *LikeExpr) Cost() float64 { return e.X.Cost() + e.Pattern.Cost() + 0.05 }

func (e *LikeExpr) String() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return "(" + e.X.String() + not + " LIKE " + e.Pattern.String() + ")"
}

// AnyExpr is x op ANY(array): true if the comparison holds for any element.
type AnyExpr struct {
	X     Expr
	Op    string
	Array Expr
}

// Eval implements Expr.
func (e *AnyExpr) Eval(row storage.Row) (types.Datum, error) {
	x, err := e.X.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	arr, err := e.Array.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	if x.IsNull() || arr.IsNull() {
		return types.NewNull(types.Bool), nil
	}
	if arr.Typ != types.Array {
		return types.Datum{}, fmt.Errorf("exec: ANY requires an array, got %v", arr.Typ)
	}
	sawNull := false
	for _, elem := range arr.A {
		if elem.IsNull() {
			sawNull = true
			continue
		}
		// Heterogeneous arrays (Sinew's dynamic typing): incomparable
		// elements are simply non-matches, not errors.
		c, err := types.Compare(x, elem)
		if err != nil {
			continue
		}
		var ok bool
		switch e.Op {
		case "=":
			ok = c == 0
		case "<>":
			ok = c != 0
		case "<":
			ok = c < 0
		case "<=":
			ok = c <= 0
		case ">":
			ok = c > 0
		case ">=":
			ok = c >= 0
		}
		if ok {
			return types.NewBool(true), nil
		}
	}
	if sawNull {
		return types.NewNull(types.Bool), nil
	}
	return types.NewBool(false), nil
}

// Type implements Expr.
func (e *AnyExpr) Type() types.Type { return types.Bool }

// Cost implements Expr.
func (e *AnyExpr) Cost() float64 { return e.X.Cost() + e.Array.Cost() + 0.02 }

func (e *AnyExpr) String() string {
	return "(" + e.X.String() + " " + e.Op + " ANY(" + e.Array.String() + "))"
}

// CastExpr is CAST(x AS t); it raises runtime errors for malformed text
// input (the behaviour the pgjson baseline inherits).
type CastExpr struct {
	X  Expr
	To types.Type
}

// Eval implements Expr.
func (e *CastExpr) Eval(row storage.Row) (types.Datum, error) {
	v, err := e.X.Eval(row)
	if err != nil {
		return types.Datum{}, err
	}
	return types.Cast(v, e.To)
}

// Type implements Expr.
func (e *CastExpr) Type() types.Type { return e.To }

// Cost implements Expr.
func (e *CastExpr) Cost() float64 { return e.X.Cost() + 0.0025 }

func (e *CastExpr) String() string {
	return "CAST(" + e.X.String() + " AS " + e.To.String() + ")"
}

// CoalesceExpr returns the first non-NULL argument, evaluating lazily
// (Postgres semantics): later arguments — typically Sinew's extraction
// call over a dirty column — are not evaluated when an earlier one is
// non-NULL, which is what keeps the §3.1.4 dirty-column overhead small.
type CoalesceExpr struct {
	Args []Expr
}

// Eval implements Expr.
func (e *CoalesceExpr) Eval(row storage.Row) (types.Datum, error) {
	var last types.Datum
	last.Null = true
	for _, a := range e.Args {
		v, err := a.Eval(row)
		if err != nil {
			return types.Datum{}, err
		}
		if !v.IsNull() {
			return v, nil
		}
		last = v
	}
	return last, nil
}

// Type implements Expr.
func (e *CoalesceExpr) Type() types.Type {
	for _, a := range e.Args {
		if t := a.Type(); t != types.Unknown {
			return t
		}
	}
	return types.Unknown
}

// Cost implements Expr. The first argument is always evaluated; later ones
// are costed at half weight to reflect laziness.
func (e *CoalesceExpr) Cost() float64 {
	var c float64
	for i, a := range e.Args {
		if i == 0 {
			c += a.Cost()
		} else {
			c += a.Cost() / 2
		}
	}
	return c + 0.0025
}

func (e *CoalesceExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return "coalesce(" + strings.Join(parts, ", ") + ")"
}

// ---------- Function calls ----------

// CallExpr invokes a registered scalar function.
type CallExpr struct {
	Def  *FuncDef
	Args []Expr
}

// Eval implements Expr.
func (e *CallExpr) Eval(row storage.Row) (types.Datum, error) {
	args := make([]types.Datum, len(e.Args))
	for i, a := range e.Args {
		v, err := a.Eval(row)
		if err != nil {
			return types.Datum{}, err
		}
		args[i] = v
	}
	return e.Def.Eval(args)
}

// Type implements Expr.
func (e *CallExpr) Type() types.Type {
	if e.Def.RetType == nil {
		return types.Unknown
	}
	argTypes := make([]types.Type, len(e.Args))
	for i, a := range e.Args {
		argTypes[i] = a.Type()
	}
	return e.Def.RetType(argTypes)
}

// Cost implements Expr.
func (e *CallExpr) Cost() float64 {
	c := e.Def.CostPerCall
	for _, a := range e.Args {
		c += a.Cost()
	}
	return c
}

func (e *CallExpr) String() string {
	var parts []string
	for _, a := range e.Args {
		parts = append(parts, a.String())
	}
	return e.Def.Name + "(" + strings.Join(parts, ", ") + ")"
}

// EvalBool evaluates e as a predicate: NULL counts as false.
func EvalBool(e Expr, row storage.Row) (bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	t, isNull, err := truth(v)
	if err != nil {
		return false, err
	}
	return t && !isNull, nil
}
