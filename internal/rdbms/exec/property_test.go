package exec

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// TestPropertyJoinAlgorithmsAgree checks that hash join, merge join (over
// sorted inputs), and nested-loop join produce identical multisets of
// results on random inputs — the planner is free to pick any of them, so
// they must be interchangeable.
func TestPropertyJoinAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mkRows := func(n, keySpace int) []storage.Row {
			rows := make([]storage.Row, n)
			for i := range rows {
				key := types.NewInt(int64(r.Intn(keySpace)))
				if r.Intn(10) == 0 {
					key = types.NewNull(types.Int) // NULLs never join
				}
				rows[i] = storage.Row{key, types.NewInt(int64(i))}
			}
			return rows
		}
		left := mkRows(1+r.Intn(40), 1+r.Intn(8))
		right := mkRows(1+r.Intn(40), 1+r.Intn(8))
		keyL := []Expr{col(0, types.Int)}
		keyR := []Expr{col(0, types.Int)}

		hj, err := Collect(&HashJoinIter{
			Probe: sliceIter(left...), Build: sliceIter(right...),
			ProbeKeys: keyL, BuildKeys: keyR,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Merge join needs sorted inputs.
		sortedL := &SortIter{In: sliceIter(left...), Keys: []SortKey{{Expr: col(0, types.Int)}}}
		sortedR := &SortIter{In: sliceIter(right...), Keys: []SortKey{{Expr: col(0, types.Int)}}}
		mj, err := Collect(&MergeJoinIter{
			Left: sortedL, Right: sortedR, LeftKeys: keyL, RightKeys: keyR,
		})
		if err != nil {
			t.Fatal(err)
		}
		cond := &BinExpr{Op: "=", L: col(0, types.Int), R: col(2, types.Int)}
		nl, err := Collect(&NestedLoopIter{
			Outer: sliceIter(left...), Inner: sliceIter(right...), Cond: cond,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, b, c := canonical(hj), canonical(mj), canonical(nl)
		if a != b || b != c {
			t.Fatalf("seed %d: hash %q merge %q nl %q", seed, a, b, c)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAggregationStrategiesAgree checks HashAgg vs sorted GroupAgg
// on random groups.
func TestPropertyAggregationStrategiesAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		rows := make([]storage.Row, n)
		for i := range rows {
			g := types.NewInt(int64(r.Intn(6)))
			v := types.NewInt(int64(r.Intn(50)))
			if r.Intn(8) == 0 {
				v = types.NewNull(types.Int)
			}
			rows[i] = storage.Row{g, v}
		}
		specs := func() []*AggSpec {
			return []*AggSpec{
				{Kind: AggCountStar},
				{Kind: AggCount, Arg: col(1, types.Int)},
				{Kind: AggSum, Arg: col(1, types.Int)},
				{Kind: AggMin, Arg: col(1, types.Int)},
				{Kind: AggMax, Arg: col(1, types.Int)},
			}
		}
		hashed, err := Collect(&HashAggIter{
			In: sliceIter(rows...), GroupBy: []Expr{col(0, types.Int)}, Aggs: specs(),
		})
		if err != nil {
			t.Fatal(err)
		}
		sorted := &SortIter{In: sliceIter(rows...), Keys: []SortKey{{Expr: col(0, types.Int)}}}
		grouped, err := Collect(&GroupAggIter{
			In: sorted, GroupBy: []Expr{col(0, types.Int)}, Aggs: specs(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if canonical(hashed) != canonical(grouped) {
			t.Fatalf("seed %d: hash %v vs sort %v", seed, hashed, grouped)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// canonical renders a row multiset order-independently.
func canonical(rows []storage.Row) string {
	lines := make([]string, len(rows))
	for i, r := range rows {
		var buf []byte
		for _, d := range r {
			buf = d.HashKey(buf)
		}
		lines[i] = string(buf)
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\x00"
	}
	return out
}
