package exec

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// TestPropertyJoinAlgorithmsAgree checks that hash join, merge join (over
// sorted inputs), and nested-loop join produce identical multisets of
// results on random inputs — the planner is free to pick any of them, so
// they must be interchangeable.
func TestPropertyJoinAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mkRows := func(n, keySpace int) []storage.Row {
			rows := make([]storage.Row, n)
			for i := range rows {
				key := types.NewInt(int64(r.Intn(keySpace)))
				if r.Intn(10) == 0 {
					key = types.NewNull(types.Int) // NULLs never join
				}
				rows[i] = storage.Row{key, types.NewInt(int64(i))}
			}
			return rows
		}
		left := mkRows(1+r.Intn(40), 1+r.Intn(8))
		right := mkRows(1+r.Intn(40), 1+r.Intn(8))
		keyL := []Expr{col(0, types.Int)}
		keyR := []Expr{col(0, types.Int)}

		hj, err := Collect(&HashJoinIter{
			Probe: sliceIter(left...), Build: sliceIter(right...),
			ProbeKeys: keyL, BuildKeys: keyR,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Merge join needs sorted inputs.
		sortedL := &SortIter{In: sliceIter(left...), Keys: []SortKey{{Expr: col(0, types.Int)}}}
		sortedR := &SortIter{In: sliceIter(right...), Keys: []SortKey{{Expr: col(0, types.Int)}}}
		mj, err := Collect(&MergeJoinIter{
			Left: sortedL, Right: sortedR, LeftKeys: keyL, RightKeys: keyR,
		})
		if err != nil {
			t.Fatal(err)
		}
		cond := &BinExpr{Op: "=", L: col(0, types.Int), R: col(2, types.Int)}
		nl, err := Collect(&NestedLoopIter{
			Outer: sliceIter(left...), Inner: sliceIter(right...), Cond: cond,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, b, c := canonical(hj), canonical(mj), canonical(nl)
		if a != b || b != c {
			t.Fatalf("seed %d: hash %q merge %q nl %q", seed, a, b, c)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAggregationStrategiesAgree checks HashAgg vs sorted GroupAgg
// on random groups.
func TestPropertyAggregationStrategiesAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		rows := make([]storage.Row, n)
		for i := range rows {
			g := types.NewInt(int64(r.Intn(6)))
			v := types.NewInt(int64(r.Intn(50)))
			if r.Intn(8) == 0 {
				v = types.NewNull(types.Int)
			}
			rows[i] = storage.Row{g, v}
		}
		specs := func() []*AggSpec {
			return []*AggSpec{
				{Kind: AggCountStar},
				{Kind: AggCount, Arg: col(1, types.Int)},
				{Kind: AggSum, Arg: col(1, types.Int)},
				{Kind: AggMin, Arg: col(1, types.Int)},
				{Kind: AggMax, Arg: col(1, types.Int)},
			}
		}
		hashed, err := Collect(&HashAggIter{
			In: sliceIter(rows...), GroupBy: []Expr{col(0, types.Int)}, Aggs: specs(),
		})
		if err != nil {
			t.Fatal(err)
		}
		sorted := &SortIter{In: sliceIter(rows...), Keys: []SortKey{{Expr: col(0, types.Int)}}}
		grouped, err := Collect(&GroupAggIter{
			In: sorted, GroupBy: []Expr{col(0, types.Int)}, Aggs: specs(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if canonical(hashed) != canonical(grouped) {
			t.Fatalf("seed %d: hash %v vs sort %v", seed, hashed, grouped)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// canonical renders a row multiset order-independently.
func canonical(rows []storage.Row) string {
	lines := make([]string, len(rows))
	for i, r := range rows {
		var buf []byte
		for _, d := range r {
			buf = d.HashKey(buf)
		}
		lines[i] = string(buf)
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\x00"
	}
	return out
}

// ---------- Batch/row differential testing ----------

// randBatchRows builds a random table over the given column types, with
// NULLs sprinkled in every column.
func randBatchRows(r *rand.Rand, colTypes []types.Type, n int) []storage.Row {
	rows := make([]storage.Row, n)
	for i := range rows {
		row := make(storage.Row, len(colTypes))
		for j, tp := range colTypes {
			if r.Intn(6) == 0 {
				row[j] = types.NewNull(tp)
				continue
			}
			switch tp {
			case types.Int:
				row[j] = types.NewInt(int64(r.Intn(21) - 10))
			case types.Float:
				row[j] = types.NewFloat(float64(r.Intn(41))/4 - 5)
			case types.Text:
				row[j] = types.NewText(string(rune('a' + r.Intn(5))))
			default:
				row[j] = types.NewBool(r.Intn(2) == 0)
			}
		}
		rows[i] = row
	}
	return rows
}

func colsOfType(colTypes []types.Type, want ...types.Type) []int {
	var out []int
	for i, tp := range colTypes {
		for _, w := range want {
			if tp == w {
				out = append(out, i)
			}
		}
	}
	return out
}

// randNumExpr returns a numeric-valued expression; division and modulo are
// included rarely so that genuine runtime errors (÷0) are exercised but do
// not dominate. safe excludes both, for pipelines whose evaluation must be
// total.
func randNumExpr(r *rand.Rand, colTypes []types.Type, depth int, safe bool) Expr {
	nums := colsOfType(colTypes, types.Int, types.Float)
	if depth <= 0 || r.Intn(3) == 0 {
		if len(nums) > 0 && r.Intn(3) != 0 {
			i := nums[r.Intn(len(nums))]
			return col(i, colTypes[i])
		}
		if r.Intn(2) == 0 {
			return lit(types.NewInt(int64(r.Intn(9) - 4)))
		}
		return lit(types.NewFloat(float64(r.Intn(17))/4 - 2))
	}
	ops := []string{"+", "-", "*", "+", "-", "*", "/", "%"}
	if safe {
		ops = ops[:6]
	}
	return &BinExpr{
		Op: ops[r.Intn(len(ops))],
		L:  randNumExpr(r, colTypes, depth-1, safe),
		R:  randNumExpr(r, colTypes, depth-1, safe),
	}
}

func randTextExpr(r *rand.Rand, colTypes []types.Type, depth int) Expr {
	texts := colsOfType(colTypes, types.Text)
	if depth <= 0 || r.Intn(2) == 0 {
		if len(texts) > 0 && r.Intn(3) != 0 {
			i := texts[r.Intn(len(texts))]
			return col(i, colTypes[i])
		}
		return lit(types.NewText(string(rune('a' + r.Intn(5)))))
	}
	return &BinExpr{Op: "||",
		L: randTextExpr(r, colTypes, depth-1),
		R: randTextExpr(r, colTypes, depth-1)}
}

// randPred returns a random predicate mixing eager nodes (comparisons,
// BETWEEN, IS NULL, LIKE, NOT) with lazy ones (AND, OR, IN, COALESCE) so
// both batch evaluation paths are exercised. safe keeps every numeric
// sub-expression total (no ÷0 candidates).
func randPred(r *rand.Rand, colTypes []types.Type, depth int, safe bool) Expr {
	if depth > 0 && r.Intn(2) == 0 {
		switch r.Intn(4) {
		case 0:
			return &BinExpr{Op: "AND",
				L: randPred(r, colTypes, depth-1, safe), R: randPred(r, colTypes, depth-1, safe)}
		case 1:
			return &BinExpr{Op: "OR",
				L: randPred(r, colTypes, depth-1, safe), R: randPred(r, colTypes, depth-1, safe)}
		case 2:
			return &NotExpr{X: randPred(r, colTypes, depth-1, safe)}
		default:
			return &CoalesceExpr{Args: []Expr{
				randPred(r, colTypes, depth-1, safe), lit(types.NewBool(false))}}
		}
	}
	cmps := []string{"=", "<>", "<", "<=", ">", ">="}
	switch r.Intn(6) {
	case 0:
		return &IsNullExpr{X: randNumExpr(r, colTypes, 1, safe), Not: r.Intn(2) == 0}
	case 1:
		return &BetweenExpr{
			X:   randNumExpr(r, colTypes, 1, safe),
			Lo:  randNumExpr(r, colTypes, 0, safe),
			Hi:  randNumExpr(r, colTypes, 0, safe),
			Not: r.Intn(2) == 0,
		}
	case 2:
		return &LikeExpr{
			X:       randTextExpr(r, colTypes, 1),
			Pattern: lit(types.NewText([]string{"a%", "%b%", "_", "%", "c"}[r.Intn(5)])),
			Not:     r.Intn(2) == 0,
		}
	case 3:
		return &InListExpr{
			X: randNumExpr(r, colTypes, 0, safe),
			List: []Expr{lit(types.NewInt(int64(r.Intn(5)))),
				lit(types.NewInt(int64(r.Intn(5) - 5)))},
			Not: r.Intn(2) == 0,
		}
	case 4:
		return &BinExpr{Op: cmps[r.Intn(len(cmps))],
			L: randTextExpr(r, colTypes, 1), R: randTextExpr(r, colTypes, 1)}
	default:
		return &BinExpr{Op: cmps[r.Intn(len(cmps))],
			L: randNumExpr(r, colTypes, 2, safe), R: randNumExpr(r, colTypes, 1, safe)}
	}
}

// TestPropertyBatchMatchesRow is the differential test backing the batch
// executor: over random schemas, data (with NULLs), predicates, and
// projections, the batch pipeline must produce exactly the row pipeline's
// output — same rows, same order — and must error exactly when the row
// pipeline errors (÷0, type mismatches).
//
// The second leg adds LIMIT: the limit announces its remaining budget down
// the pipeline so the projection truncates each delivered batch BEFORE
// evaluating expressions, which makes projection errors past the limit
// unreachable in both pipelines — the formerly documented divergence. The
// predicate is kept total in that leg because a filter must still evaluate
// whole batches: predicate errors beyond the last limit-surviving row
// remain batch-granular by design.
func TestPropertyBatchMatchesRow(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		colTypes := []types.Type{types.Int, types.Text}
		for n := r.Intn(4); n > 0; n-- {
			colTypes = append(colTypes,
				[]types.Type{types.Int, types.Float, types.Text, types.Bool}[r.Intn(4)])
		}
		rows := randBatchRows(r, colTypes, r.Intn(60))
		pred := randPred(r, colTypes, 3, false)
		projs := make([]Expr, 1+r.Intn(3))
		for i := range projs {
			if r.Intn(3) == 0 {
				projs[i] = randTextExpr(r, colTypes, 2)
			} else {
				projs[i] = randNumExpr(r, colTypes, 2, false)
			}
		}

		want, wantErr := Collect(&ProjectIter{Exprs: projs,
			In: &FilterIter{Pred: pred, In: sliceIter(rows...)}})

		compare := func(size int, label string, got []storage.Row, gotErr error,
			want []storage.Row, wantErr error) {
			t.Helper()
			if (wantErr != nil) != (gotErr != nil) {
				t.Fatalf("seed %d size %d %s: row err %v, batch err %v",
					seed, size, label, wantErr, gotErr)
			}
			if wantErr != nil {
				return
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d size %d %s: %d rows vs %d",
					seed, size, label, len(got), len(want))
			}
			for i := range want {
				var wk, gk []byte
				for j := range want[i] {
					wk = want[i][j].HashKey(wk)
					gk = got[i][j].HashKey(gk)
				}
				if string(wk) != string(gk) {
					t.Fatalf("seed %d size %d %s row %d: batch %v vs row %v",
						seed, size, label, i, got[i], want[i])
				}
			}
		}

		for _, size := range []int{1, 2, 3, 7} {
			got, gotErr := Collect(&BatchToRow{In: &BatchProjectIter{Exprs: projs,
				In: &BatchFilterIter{Pred: pred,
					In: &RowToBatch{In: sliceIter(rows...), Size: size}}}})
			compare(size, "no-limit", got, gotErr, want, wantErr)
		}

		// LIMIT leg: total predicate, possibly-erroring projections. Both
		// pipelines must evaluate projections on exactly the first `limit`
		// filtered rows — same output AND same error behaviour.
		safePred := randPred(r, colTypes, 3, true)
		limit := int64(r.Intn(8))
		wantL, wantLErr := Collect(&LimitIter{N: limit,
			In: &ProjectIter{Exprs: projs,
				In: &FilterIter{Pred: safePred, In: sliceIter(rows...)}}})
		for _, size := range []int{1, 2, 3, 7} {
			gotL, gotLErr := Collect(&BatchToRow{In: &BatchLimitIter{N: limit,
				In: &BatchProjectIter{Exprs: projs,
					In: &BatchFilterIter{Pred: safePred,
						In: &RowToBatch{In: sliceIter(rows...), Size: size}}}}})
			compare(size, "limit", gotL, gotLErr, wantL, wantLErr)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
