package exec

import (
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// HashJoinIter is an inner equi-join: it materializes the build (right)
// side into a hash table keyed on the join expressions, then streams the
// probe (left) side. Output rows are probeRow ++ buildRow. Rows whose join
// keys are NULL never match.
type HashJoinIter struct {
	Probe     Iterator
	Build     Iterator
	ProbeKeys []Expr
	BuildKeys []Expr
	// Residual is an optional non-equi condition checked on joined rows.
	Residual Expr

	table   map[string][]storage.Row
	built   bool
	err     error
	curRow  storage.Row
	matches []storage.Row
	matchIx int
	buf     []byte
}

// Next implements Iterator.
func (j *HashJoinIter) Next() (storage.Row, bool, error) {
	if !j.built {
		j.build()
	}
	if j.err != nil {
		return nil, false, j.err
	}
	for {
		for j.matchIx < len(j.matches) {
			b := j.matches[j.matchIx]
			j.matchIx++
			out := make(storage.Row, 0, len(j.curRow)+len(b))
			out = append(out, j.curRow...)
			out = append(out, b...)
			if j.Residual != nil {
				keep, err := EvalBool(j.Residual, out)
				if err != nil {
					return nil, false, err
				}
				if !keep {
					continue
				}
			}
			return out, true, nil
		}
		row, ok, err := j.Probe.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		key, null, err := j.encodeKeys(row, j.ProbeKeys)
		if err != nil {
			return nil, false, err
		}
		if null {
			continue
		}
		j.curRow = row
		j.matches = j.table[key]
		j.matchIx = 0
	}
}

func (j *HashJoinIter) build() {
	j.built = true
	j.table = make(map[string][]storage.Row)
	defer j.Build.Close()
	for {
		row, ok, err := j.Build.Next()
		if err != nil {
			j.err = err
			return
		}
		if !ok {
			return
		}
		key, null, err := j.encodeKeys(row, j.BuildKeys)
		if err != nil {
			j.err = err
			return
		}
		if null {
			continue
		}
		j.table[key] = append(j.table[key], row)
	}
}

func (j *HashJoinIter) encodeKeys(row storage.Row, keys []Expr) (string, bool, error) {
	j.buf = j.buf[:0]
	for _, k := range keys {
		v, err := k.Eval(row)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		j.buf = v.HashKey(j.buf)
	}
	return string(j.buf), false, nil
}

// Close implements Iterator.
func (j *HashJoinIter) Close() {
	j.Probe.Close()
	j.Build.Close()
}

// MergeJoinIter is an inner equi-join over two inputs sorted ascending on
// their join keys (the planner inserts Sorts). Equal-key runs on the right
// are buffered so m×n matches are produced.
type MergeJoinIter struct {
	Left      Iterator
	Right     Iterator
	LeftKeys  []Expr
	RightKeys []Expr
	Residual  Expr

	leftRow   storage.Row
	leftKey   []types.Datum
	leftOK    bool
	rightRow  storage.Row
	rightKey  []types.Datum
	rightOK   bool
	started   bool
	runRows   []storage.Row // current right-side equal-key run
	runKey    []types.Datum
	runIx     int
	inRun     bool
	exhausted bool
}

// Next implements Iterator.
func (m *MergeJoinIter) Next() (storage.Row, bool, error) {
	if !m.started {
		m.started = true
		if err := m.advanceLeft(); err != nil {
			return nil, false, err
		}
		if err := m.advanceRight(); err != nil {
			return nil, false, err
		}
	}
	for {
		if m.inRun {
			for m.runIx < len(m.runRows) {
				r := m.runRows[m.runIx]
				m.runIx++
				out := make(storage.Row, 0, len(m.leftRow)+len(r))
				out = append(out, m.leftRow...)
				out = append(out, r...)
				if m.Residual != nil {
					keep, err := EvalBool(m.Residual, out)
					if err != nil {
						return nil, false, err
					}
					if !keep {
						continue
					}
				}
				return out, true, nil
			}
			// Finished this left row against the run; advance left and see
			// if it has the same key.
			if err := m.advanceLeft(); err != nil {
				return nil, false, err
			}
			if m.leftOK && keysEqual(m.leftKey, m.runKey) {
				m.runIx = 0
				continue
			}
			m.inRun = false
		}
		if !m.leftOK || !m.rightOK {
			return nil, false, nil
		}
		c, err := compareKeySlices(m.leftKey, m.rightKey)
		if err != nil {
			return nil, false, err
		}
		switch {
		case c < 0:
			if err := m.advanceLeft(); err != nil {
				return nil, false, err
			}
		case c > 0:
			if err := m.advanceRight(); err != nil {
				return nil, false, err
			}
		default:
			// Buffer the right-side run with this key.
			m.runRows = m.runRows[:0]
			m.runKey = m.rightKey
			for m.rightOK && keysEqual(m.rightKey, m.runKey) {
				m.runRows = append(m.runRows, m.rightRow)
				if err := m.advanceRight(); err != nil {
					return nil, false, err
				}
			}
			m.runIx = 0
			m.inRun = true
		}
	}
}

func (m *MergeJoinIter) advanceLeft() error {
	for {
		row, ok, err := m.Left.Next()
		if err != nil {
			return err
		}
		if !ok {
			m.leftOK = false
			return nil
		}
		key, null, err := evalKeys(row, m.LeftKeys)
		if err != nil {
			return err
		}
		if null {
			continue // NULL keys never join
		}
		m.leftRow, m.leftKey, m.leftOK = row, key, true
		return nil
	}
}

func (m *MergeJoinIter) advanceRight() error {
	for {
		row, ok, err := m.Right.Next()
		if err != nil {
			return err
		}
		if !ok {
			m.rightOK = false
			return nil
		}
		key, null, err := evalKeys(row, m.RightKeys)
		if err != nil {
			return err
		}
		if null {
			continue
		}
		m.rightRow, m.rightKey, m.rightOK = row, key, true
		return nil
	}
}

func evalKeys(row storage.Row, keys []Expr) ([]types.Datum, bool, error) {
	out := make([]types.Datum, len(keys))
	for i, k := range keys {
		v, err := k.Eval(row)
		if err != nil {
			return nil, false, err
		}
		if v.IsNull() {
			return nil, true, nil
		}
		out[i] = v
	}
	return out, false, nil
}

func keysEqual(a, b []types.Datum) bool {
	for i := range a {
		if !types.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func compareKeySlices(a, b []types.Datum) (int, error) {
	for i := range a {
		c, err := compareForSort(a[i], b[i], false)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return c, nil
		}
	}
	return 0, nil
}

// Close implements Iterator.
func (m *MergeJoinIter) Close() {
	m.Left.Close()
	m.Right.Close()
}

// NestedLoopIter is an inner join for arbitrary conditions: the inner side
// is materialized and rescanned per outer row.
type NestedLoopIter struct {
	Outer Iterator
	Inner Iterator
	Cond  Expr // may be nil (cross join)

	innerRows []storage.Row
	built     bool
	err       error
	outerRow  storage.Row
	innerIx   int
	haveOuter bool
}

// Next implements Iterator.
func (n *NestedLoopIter) Next() (storage.Row, bool, error) {
	if !n.built {
		n.built = true
		rows, err := Collect(n.Inner)
		if err != nil {
			n.err = err
		}
		n.innerRows = rows
	}
	if n.err != nil {
		return nil, false, n.err
	}
	for {
		if !n.haveOuter {
			row, ok, err := n.Outer.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			n.outerRow = row
			n.innerIx = 0
			n.haveOuter = true
		}
		for n.innerIx < len(n.innerRows) {
			inner := n.innerRows[n.innerIx]
			n.innerIx++
			out := make(storage.Row, 0, len(n.outerRow)+len(inner))
			out = append(out, n.outerRow...)
			out = append(out, inner...)
			if n.Cond != nil {
				keep, err := EvalBool(n.Cond, out)
				if err != nil {
					return nil, false, err
				}
				if !keep {
					continue
				}
			}
			return out, true, nil
		}
		n.haveOuter = false
	}
}

// Close implements Iterator.
func (n *NestedLoopIter) Close() {
	n.Outer.Close()
	n.Inner.Close()
}
