package exec

import (
	"sort"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// This file implements in-scan predicate evaluation for striped scans: the
// pushed-down conjuncts are compiled once at plan time into a SelFilter,
// and the scan evaluates them page by page directly against the frozen
// page's column vectors, emitting a selection vector (RowBatch.Sel)
// instead of a compacted copy. Extraction atoms inside the conjuncts
// (json_int(data, 'key') and friends) are rewritten to read shared slot
// columns filled by one segment-kernel pass per page, so a predicate over
// a striped attribute never parses a serialized record.
//
// Conjuncts run in a statically ranked order (cheapest/most selective
// first) and each one sees only the rows surviving the previous ones, so
// later, more expensive conjuncts touch a shrinking selection; a conjunct
// only forces materialization of the columns it actually reads, and a
// page whose selection empties out is abandoned before the remaining
// columns are ever decoded.
//
// Error discipline: reordering and skipping rows changes which evaluation
// error (if any) a query surfaces. Whenever the selection path errors on
// a page, the page is replayed with the original conjunction over every
// row in row order — exactly what the hoisted-filter pipeline did — and
// that outcome (error or keep mask) is authoritative.

// SelConjunct is one compiled conjunct of a SelFilter.
type SelConjunct struct {
	// Pred is the conjunct with extraction atoms rewritten to slot
	// ColExprs (Idx >= Width); Orig is the conjunct as pushed down.
	Pred Expr
	Orig Expr
	// Cols lists the physical scan columns Pred reads. When AllCols is
	// set the reader set is unknown and every scan-materialized column is
	// filled before evaluation.
	Cols    []int
	AllCols bool
	// Slots marks conjuncts reading extraction slot columns.
	Slots bool
	// Kern is the direct evaluation kernel for recognized conjunct shapes
	// (see selkernel.go); nil conjuncts evaluate through EvalPredBatch.
	Kern selKernelFn

	rank float64
}

// SelFilter is the compiled in-scan filter of a striped batch scan. It is
// immutable after compilation and safe to share across parallel scan
// partitions; each scan instantiates its own evaluation state.
type SelFilter struct {
	Conjuncts []SelConjunct
	// Filter is the full conjunction in pushed-down form — the row-form
	// page filter and the error-replay predicate.
	Filter Expr
	// Width is the physical scan width; slot ColExprs index Width+k.
	Width int
	// DataIdx is the scan column holding serialized records for slot
	// extraction (-1 when no conjunct uses slots).
	DataIdx int
	// Reqs are the deduplicated extraction requests behind the slots.
	Reqs []MultiExtractReq
	// SegFactory (optional) builds the segment-kernel fast path;
	// RowFactory builds the record-decoding fallback kernel.
	SegFactory SegExtractFactory
	RowFactory MultiExtractFactory
}

// selSlotKey identifies one distinct extraction request within the
// filter's conjuncts (the data column is fixed per SelFilter).
type selSlotKey struct {
	key string
	typ uint8
	any bool
}

type selCompiler struct {
	width     int
	segLookup func(string) (SegExtractFactory, bool)
	rowLookup func(string) (MultiExtractFactory, bool)

	family  string
	dataIdx int
	segF    SegExtractFactory
	rowF    MultiExtractFactory
	reqs    []MultiExtractReq
	slots   map[selSlotKey]int
}

// CompileSelFilter compiles pushed-down conjuncts into a SelFilter for a
// striped scan of the given physical width. The lookups resolve an
// extraction family to its kernel factories (nil-able; without a row
// factory the family's atoms are left un-rewritten and evaluate through
// the row-wise fallback). Returns nil when preds is empty.
func CompileSelFilter(preds []Expr, width int,
	segLookup func(string) (SegExtractFactory, bool),
	rowLookup func(string) (MultiExtractFactory, bool)) *SelFilter {
	if len(preds) == 0 {
		return nil
	}
	if segLookup == nil {
		segLookup = func(string) (SegExtractFactory, bool) { return nil, false }
	}
	if rowLookup == nil {
		rowLookup = func(string) (MultiExtractFactory, bool) { return nil, false }
	}
	c := &selCompiler{
		width:     width,
		segLookup: segLookup,
		rowLookup: rowLookup,
		dataIdx:   -1,
		slots:     map[selSlotKey]int{},
	}
	sf := &SelFilter{Width: width}
	var filter Expr
	for _, p := range preds {
		if filter == nil {
			filter = p
		} else {
			filter = &BinExpr{Op: "AND", L: filter, R: p}
		}
		pred, usesSlots := c.rewrite(p)
		cj := SelConjunct{Pred: pred, Orig: p, Slots: usesSlots,
			Kern: compileSelKernel(pred), rank: conjunctRank(p)}
		seen := map[int]bool{}
		known := ColumnsUsed(pred, func(idx int) {
			if idx >= 0 && idx < width && !seen[idx] {
				seen[idx] = true
				cj.Cols = append(cj.Cols, idx)
			}
		})
		if !known {
			cj.Cols, cj.AllCols = nil, true
		} else {
			sort.Ints(cj.Cols)
		}
		sf.Conjuncts = append(sf.Conjuncts, cj)
	}
	sort.SliceStable(sf.Conjuncts, func(i, j int) bool {
		return sf.Conjuncts[i].rank < sf.Conjuncts[j].rank
	})
	sf.Filter = filter
	sf.DataIdx = c.dataIdx
	sf.Reqs = c.reqs
	sf.SegFactory = c.segF
	sf.RowFactory = c.rowF
	return sf
}

// atomSlot resolves a call to its slot index when it is a rewritable
// extraction atom: a registered fuse family applied to (data column,
// constant key), with the whole filter sharing one (family, column) pair.
func (c *selCompiler) atomSlot(x *CallExpr) (int, bool) {
	d := x.Def
	if d == nil || d.FuseFamily == "" || len(x.Args) != 2 {
		return 0, false
	}
	ce, okc := x.Args[0].(*ColExpr)
	ke, okk := x.Args[1].(*ConstExpr)
	if !okc || !okk || ce.Idx < 0 || ce.Idx >= c.width ||
		ke.Val.IsNull() || ke.Val.Typ != types.Text {
		return 0, false
	}
	if c.rowF == nil {
		rf, ok := c.rowLookup(d.FuseFamily)
		if !ok {
			return 0, false
		}
		c.family, c.dataIdx, c.rowF = d.FuseFamily, ce.Idx, rf
		c.segF, _ = c.segLookup(d.FuseFamily)
	} else if d.FuseFamily != c.family || ce.Idx != c.dataIdx {
		return 0, false
	}
	sk := selSlotKey{key: ke.Val.S, typ: d.FuseType, any: d.FuseAny}
	if i, ok := c.slots[sk]; ok {
		return i, true
	}
	ret := types.Unknown
	if d.RetType != nil {
		ret = d.RetType(nil)
	}
	i := len(c.reqs)
	c.reqs = append(c.reqs, MultiExtractReq{Key: sk.key, Type: sk.typ, Any: sk.any, Ret: ret})
	c.slots[sk] = i
	return i, true
}

// rewrite returns e with extraction atoms replaced by slot ColExprs,
// copying nodes along rewritten paths (the original tree is shared with
// the row path and EXPLAIN and must not be mutated). Lazy contexts
// (AND/OR, COALESCE, IN-list, ANY) are left untouched: their operands
// evaluate row-wise with short-circuit semantics, where an unrewritten
// atom still works through the scan's materialized data column.
func (c *selCompiler) rewrite(e Expr) (Expr, bool) {
	switch x := e.(type) {
	case *CallExpr:
		if slot, ok := c.atomSlot(x); ok {
			return &ColExpr{Idx: c.width + slot, Typ: c.reqs[slot].Ret, Name: x.String()}, true
		}
		var args []Expr
		used := false
		for i, a := range x.Args {
			na, u := c.rewrite(a)
			if u && args == nil {
				args = make([]Expr, len(x.Args))
				copy(args, x.Args[:i])
			}
			if args != nil {
				args[i] = na
			}
			used = used || u
		}
		if used {
			return &CallExpr{Def: x.Def, Args: args}, true
		}
		return x, false
	case *BinExpr:
		if x.Op == "AND" || x.Op == "OR" {
			return x, false
		}
		l, ul := c.rewrite(x.L)
		r, ur := c.rewrite(x.R)
		if ul || ur {
			return &BinExpr{Op: x.Op, L: l, R: r}, true
		}
		return x, false
	case *NotExpr:
		if nx, u := c.rewrite(x.X); u {
			return &NotExpr{X: nx}, true
		}
		return x, false
	case *NegExpr:
		if nx, u := c.rewrite(x.X); u {
			return &NegExpr{X: nx}, true
		}
		return x, false
	case *IsNullExpr:
		if nx, u := c.rewrite(x.X); u {
			return &IsNullExpr{X: nx, Not: x.Not}, true
		}
		return x, false
	case *BetweenExpr:
		nx, ux := c.rewrite(x.X)
		lo, ul := c.rewrite(x.Lo)
		hi, uh := c.rewrite(x.Hi)
		if ux || ul || uh {
			return &BetweenExpr{X: nx, Lo: lo, Hi: hi, Not: x.Not}, true
		}
		return x, false
	case *LikeExpr:
		nx, ux := c.rewrite(x.X)
		np, up := c.rewrite(x.Pattern)
		if ux || up {
			// Fresh node (never a struct copy: LikeExpr embeds the
			// compiled-pattern cache and its mutex).
			return &LikeExpr{X: nx, Pattern: np, Not: x.Not}, true
		}
		return x, false
	case *CastExpr:
		if nx, u := c.rewrite(x.X); u {
			return &CastExpr{X: nx, To: x.To}, true
		}
		return x, false
	default:
		return e, false
	}
}

// conjunctRank orders conjuncts for evaluation: an estimated selectivity
// by predicate shape (mirroring the optimizer's default selectivities —
// equality and IS NULL prune hardest, range comparisons least) plus a
// small per-row cost term so cheap conjuncts break ties. Ranked on the
// original conjunct so extraction expense is counted even after atoms are
// rewritten to slot reads.
func conjunctRank(e Expr) float64 {
	sel := 0.5
	switch x := e.(type) {
	case *IsNullExpr:
		if x.Not {
			sel = 0.9
		} else {
			sel = 0.1
		}
	case *BetweenExpr:
		sel = 0.25
	case *LikeExpr:
		sel = 0.45
	case *InListExpr:
		sel = 0.3
	case *BinExpr:
		switch x.Op {
		case "=":
			sel = 0.15
		case "<", "<=", ">", ">=":
			sel = 0.35
		case "<>":
			sel = 0.85
		}
	}
	cost := e.Cost()
	if cost > 1 {
		cost = 1
	}
	return sel + 0.1*cost
}

// selScanState is the per-scan evaluation state of a SelFilter: the eval
// facade batch (physical columns plus slot columns), lazily instantiated
// kernels, and reusable selection/keep buffers. One state belongs to one
// scan goroutine.
type selScanState struct {
	sf   *SelFilter
	segK SegExtractKernel
	rowK MultiExtractKernel
	// kernelsBroken disables slot evaluation after a factory error; pages
	// then take the replay path, which needs no kernels.
	kernelsBroken bool
	built         bool

	// view is the predicate-evaluation facade: Cols[0:Width] alias the
	// page shell's columns as they are filled, Cols[Width+k] the slot
	// columns. Never pooled, never returned downstream.
	view        *RowBatch
	filled      []bool
	slotCols    [][]types.Datum
	slotsFilled bool
	selBuf      []int32
	keep        []bool
}

func newSelScanState(sf *SelFilter) *selScanState {
	k := len(sf.Reqs)
	return &selScanState{
		sf: sf,
		view: &RowBatch{
			Cols:  make([][]types.Datum, sf.Width+k),
			Nulls: make([]NullBitmap, sf.Width+k),
		},
		filled:   make([]bool, sf.Width),
		slotCols: make([][]types.Datum, k),
	}
}

// buildKernels instantiates the slot kernels on first use — on the scan's
// own goroutine, so parallel partitions never share kernel state. A
// factory failure is not fatal: the filter is still fully evaluable
// through replay, it just loses the vectorized slot path.
func (st *selScanState) buildKernels() {
	if st.built {
		return
	}
	st.built = true
	sf := st.sf
	if len(sf.Reqs) == 0 {
		return
	}
	if sf.RowFactory == nil {
		st.kernelsBroken = true
		return
	}
	rowK, err := sf.RowFactory(sf.Reqs)
	if err != nil || rowK == nil {
		st.kernelsBroken = true
		return
	}
	st.rowK = rowK
	if sf.SegFactory != nil {
		if segK, err := sf.SegFactory(sf.Reqs); err == nil {
			st.segK = segK
		}
	}
}

// beginPage resets the per-page fill tracking.
func (st *selScanState) beginPage() {
	for j := range st.filled {
		st.filled[j] = false
	}
	st.slotsFilled = false
	st.view.Sel = nil
}

// frozenSelBatch evaluates the scan's SelFilter against one frozen page
// and returns the page as a selection-carrying alias batch. A fully
// filtered page returns (nil, nil): the caller reads the next page.
func (s *BatchScanIter) frozenSelBatch(fp *storage.FrozenPage) (*RowBatch, error) {
	if s.selState == nil {
		s.selState = newSelScanState(s.sf)
	}
	st := s.selState
	st.buildKernels()
	sf := s.sf
	phys := fp.NumRows()
	b := s.frozenShell()
	st.beginPage()

	fill := func(j int) error {
		if st.filled[j] {
			return nil
		}
		vals, nulls, err := fp.ColVals(j)
		if err != nil {
			return err
		}
		b.Cols[j] = vals
		b.Nulls[j] = NullBitmap(nulls)
		st.view.Cols[j] = vals
		st.filled[j] = true
		return nil
	}
	// fillNeeded materializes the scan's full column set — what the
	// hoisted-filter pipeline would have handed its filter.
	fillNeeded := func() error {
		if s.NeedCols == nil {
			for j := 0; j < s.width; j++ {
				if err := fill(j); err != nil {
					return err
				}
			}
			return nil
		}
		for _, j := range s.NeedCols {
			if err := fill(j); err != nil {
				return err
			}
		}
		return nil
	}

	st.view.n = phys
	s.ctx.BeginBatch()
	sel, replay, err := s.evalConjuncts(fp, b, fill, fillNeeded, phys)
	if err != nil {
		return nil, err
	}
	if replay {
		// The selection path failed somewhere: re-run the original
		// conjunction row-wise over the whole page. Its outcome — error
		// or keep mask — is what the non-selective pipeline produces.
		if err := fillNeeded(); err != nil {
			return nil, err
		}
		b.n = phys
		keep, err := EvalPredBatch(sf.Filter, b, s.ctx, st.keep)
		if err != nil {
			return nil, err
		}
		st.keep = keep
		sel = s.selSlice(phys)
		for i := 0; i < phys; i++ {
			if keep[i] {
				sel = append(sel, int32(i))
			}
		}
		if len(sel) == phys {
			sel = nil
		}
	}
	if sel != nil && len(sel) == 0 {
		return nil, nil
	}
	if err := fillNeeded(); err != nil {
		return nil, err
	}
	for j := 0; j < s.width; j++ {
		if _, _, seg := fp.Col(j); seg != nil {
			b.Segs[j] = seg
		}
	}
	b.n = phys
	b.Sel = sel
	if sel != nil {
		s.selBatches++
	}
	return b, nil
}

// evalConjuncts runs the ranked conjuncts over the page, intersecting
// selections. It reports replay=true when any evaluation step errors —
// the caller then re-evaluates the page through the original filter.
func (s *BatchScanIter) evalConjuncts(fp *storage.FrozenPage, b *RowBatch,
	fill func(int) error, fillNeeded func() error, phys int) (sel []int32, replay bool, err error) {
	st := s.selState
	for ci := range s.sf.Conjuncts {
		c := &s.sf.Conjuncts[ci]
		if sel != nil && len(sel) == 0 {
			return sel, false, nil
		}
		var ferr error
		if c.AllCols {
			ferr = fillNeeded()
		} else {
			for _, j := range c.Cols {
				if ferr = fill(j); ferr != nil {
					break
				}
			}
		}
		if ferr == nil && c.Slots {
			ferr = s.fillSlots(fp, fill, phys)
		}
		if ferr != nil {
			return nil, true, nil
		}
		st.view.Sel = sel
		var keep []bool
		var kerr error
		if c.Kern != nil {
			n := st.view.Len()
			if cap(st.keep) < n {
				st.keep = make([]bool, n)
			}
			keep = st.keep[:n]
			kerr = c.Kern(st.view, keep)
		} else {
			keep, kerr = EvalPredBatch(c.Pred, st.view, s.ctx, st.keep)
		}
		if kerr != nil {
			return nil, true, nil
		}
		st.keep = keep
		if sel == nil {
			kept := 0
			for i := 0; i < phys; i++ {
				if keep[i] {
					kept++
				}
			}
			if kept == phys {
				continue
			}
			sel = s.selSlice(phys)
			for i := 0; i < phys; i++ {
				if keep[i] {
					sel = append(sel, int32(i))
				}
			}
		} else {
			w := 0
			for si := range keep {
				if keep[si] {
					sel[w] = sel[si]
					w++
				}
			}
			sel = sel[:w]
		}
	}
	return sel, false, nil
}

// fillSlots runs the extraction kernels once for the page, preferring the
// segment kernel when the data column is striped and recognized, falling
// back to record decoding over the materialized column. Kernels fill
// every physical row — rows a previous conjunct dropped are still valid
// records, matching BatchMultiExtractIter.
func (s *BatchScanIter) fillSlots(fp *storage.FrozenPage, fill func(int) error, phys int) error {
	st := s.selState
	if st.slotsFilled {
		return nil
	}
	if st.kernelsBroken {
		return errSelKernels
	}
	sf := st.sf
	for k := range sf.Reqs {
		if cap(st.slotCols[k]) < phys {
			st.slotCols[k] = make([]types.Datum, phys)
		}
		st.slotCols[k] = st.slotCols[k][:phys]
	}
	handled := false
	if st.segK != nil {
		if _, _, seg := fp.Col(sf.DataIdx); seg != nil && seg.NumRows() == phys {
			var err error
			if handled, err = st.segK(seg, st.slotCols); err != nil {
				return err
			}
		}
	}
	if !handled {
		if err := fill(sf.DataIdx); err != nil {
			return err
		}
		if err := st.rowK(st.view.Cols[sf.DataIdx], st.slotCols); err != nil {
			return err
		}
	}
	for k := range sf.Reqs {
		st.view.Cols[sf.Width+k] = st.slotCols[k]
	}
	st.slotsFilled = true
	return nil
}

// errSelKernels is the internal "no kernels" sentinel; it only ever
// triggers replay and is never surfaced.
var errSelKernels = &selKernelErr{}

type selKernelErr struct{}

func (*selKernelErr) Error() string { return "exec: selection-filter kernels unavailable" }

// selSlice returns an empty selection buffer with capacity for the page:
// the scan-owned buffer when batches are consumer-local, a fresh
// allocation when they cross a goroutine boundary.
func (s *BatchScanIter) selSlice(phys int) []int32 {
	if !s.reuse {
		return make([]int32, 0, phys)
	}
	st := s.selState
	if cap(st.selBuf) < phys {
		st.selBuf = make([]int32, 0, phys)
	}
	return st.selBuf[:0]
}

// frozenShell returns the cleared frozen-page shell batch (see
// frozenBatch: never pooled, never Reset).
func (s *BatchScanIter) frozenShell() *RowBatch {
	b := s.shell
	if b == nil || !s.reuse {
		b = &RowBatch{
			Cols:  make([][]types.Datum, s.width),
			Nulls: make([]NullBitmap, s.width),
			Segs:  make([]storage.ColumnSegment, s.width),
		}
		if s.reuse {
			s.shell = b
		}
	}
	for j := 0; j < s.width; j++ {
		b.Cols[j] = nil
		b.Nulls[j] = nil
		b.Segs[j] = nil
	}
	b.n = 0
	b.Sel = nil
	return b
}
