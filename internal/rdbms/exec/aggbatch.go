package exec

import (
	"sort"

	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// BatchHashAggIter is the batch-native hash aggregate: group keys and
// aggregate arguments are evaluated once per input batch with EvalBatch,
// then a tight per-row loop updates group states from the materialized
// columns. Semantics (grouping, DISTINCT, NULL handling, deterministic
// encKey output order unless SkipSort) match HashAggIter exactly.
type BatchHashAggIter struct {
	In       BatchIterator
	GroupBy  []Expr
	Aggs     []*AggSpec
	SkipSort bool
	Size     int // output batch size; DefaultBatchSize when <= 0

	done   bool
	err    error
	groups []*aggGroup
	pos    int
	out    *RowBatch
	ctx    *EvalCtx
}

// NextBatch implements BatchIterator.
func (h *BatchHashAggIter) NextBatch() (*RowBatch, error) {
	if !h.done {
		h.run()
	}
	if h.err != nil {
		return nil, h.err
	}
	if h.pos >= len(h.groups) {
		return nil, nil
	}
	size := h.Size
	if size <= 0 {
		size = DefaultBatchSize
	}
	width := len(h.GroupBy) + len(h.Aggs)
	if h.out == nil {
		// Selective queries leave far fewer groups than the batch size;
		// sizing the output by the remaining groups keeps a five-group
		// aggregate from allocating a full-size batch every execution.
		capHint := size
		if rem := len(h.groups) - h.pos; rem < capHint {
			capHint = rem
		}
		h.out = NewRowBatch(width, capHint)
	}
	b := h.out
	b.Reset()
	row := make([]types.Datum, 0, width)
	for b.Len() < size && h.pos < len(h.groups) {
		g := h.groups[h.pos]
		h.pos++
		row = row[:0]
		row = append(row, g.keyVals...)
		for _, st := range g.states {
			row = append(row, st.result())
		}
		b.AppendRow(row)
	}
	if b.Len() == 0 {
		return nil, nil
	}
	return b, nil
}

func (h *BatchHashAggIter) run() {
	h.done = true
	defer h.In.Close()
	if h.ctx == nil {
		h.ctx = NewEvalCtx()
	}
	groups := make(map[string]*aggGroup)
	var keyBuf []byte
	keyCols := make([][]types.Datum, len(h.GroupBy))
	argCols := make([][]types.Datum, len(h.Aggs))
	for {
		in, err := h.In.NextBatch()
		if err != nil {
			h.err = err
			return
		}
		if in == nil {
			break
		}
		h.ctx.BeginBatch()
		for i, g := range h.GroupBy {
			if keyCols[i], err = EvalBatch(g, in, h.ctx); err != nil {
				h.err = err
				return
			}
		}
		for k, spec := range h.Aggs {
			if spec.Arg == nil || spec.Kind == AggCountStar {
				argCols[k] = nil
				continue
			}
			if argCols[k], err = EvalBatch(spec.Arg, in, h.ctx); err != nil {
				h.err = err
				return
			}
		}
		n := in.Len()
		sel := in.Sel
		for si := 0; si < n; si++ {
			i := selIdx(sel, si)
			keyBuf = keyBuf[:0]
			for _, col := range keyCols {
				keyBuf = col[i].HashKey(keyBuf)
			}
			grp, ok := groups[string(keyBuf)]
			if !ok {
				keyVals := make([]types.Datum, len(h.GroupBy))
				for j, col := range keyCols {
					keyVals[j] = col[i]
				}
				grp = &aggGroup{keyVals: keyVals, encKey: string(keyBuf)}
				for _, spec := range h.Aggs {
					grp.states = append(grp.states, newAggState(spec))
				}
				groups[grp.encKey] = grp
			}
			for k, st := range grp.states {
				var v types.Datum
				if argCols[k] != nil {
					v = argCols[k][i]
				}
				if err := st.addValue(v); err != nil {
					h.err = err
					return
				}
			}
		}
	}
	if len(groups) == 0 && len(h.GroupBy) == 0 {
		grp := &aggGroup{}
		for _, spec := range h.Aggs {
			grp.states = append(grp.states, newAggState(spec))
		}
		groups[""] = grp
	}
	h.groups = make([]*aggGroup, 0, len(groups))
	for _, g := range groups {
		h.groups = append(h.groups, g)
	}
	if !h.SkipSort {
		sort.Slice(h.groups, func(a, b int) bool { return h.groups[a].encKey < h.groups[b].encKey })
	}
}

// Close implements BatchIterator.
func (h *BatchHashAggIter) Close() { h.In.Close() }
