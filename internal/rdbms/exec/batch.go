package exec

import (
	"fmt"
	"sync"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// DefaultBatchSize is the executor's default rows-per-batch (the
// plan.Config batch_size knob overrides it per session).
const DefaultBatchSize = 1024

// NullBitmap tracks NULLs of one batch column, one bit per row (bit set =
// NULL). Kernels use AnyNull to skip per-row NULL checks on all-valid
// columns.
type NullBitmap []uint64

// Set marks row i NULL.
func (m NullBitmap) Set(i int) { m[i>>6] |= 1 << (uint(i) & 63) }

// Get reports whether row i is NULL.
func (m NullBitmap) Get(i int) bool { return m[i>>6]&(1<<(uint(i)&63)) != 0 }

// AnyNull reports whether any bit is set.
func (m NullBitmap) AnyNull() bool {
	for _, w := range m {
		if w != 0 {
			return true
		}
	}
	return false
}

func bitmapWords(n int) int { return (n + 63) / 64 }

// RowBatch is a column-major batch of rows: Cols[j][i] is column j of row
// i, and Nulls[j] is column j's null bitmap. Batches returned by a
// BatchIterator are owned by that iterator and valid only until its next
// NextBatch or Close call; consumers that retain data must copy it.
type RowBatch struct {
	n     int
	Cols  [][]types.Datum
	Nulls []NullBitmap
	// Segs, when non-nil, carries the column segments backing this batch:
	// Segs[j] is the striped encoding of column j when the batch aliases a
	// frozen heap page, nil for plain columns. Only striped scans set it;
	// segment-aware operators (BatchMultiExtractIter.SegKernel) may read a
	// column's values straight from the segment instead of Cols[j].
	Segs []storage.ColumnSegment
	// Sel, when non-nil, is the batch's selection vector: the logical rows
	// are Cols[j][Sel[0]], Cols[j][Sel[1]], ... in that order, and Len()
	// reports len(Sel). Columns always keep their full physical length
	// (PhysLen rows) so filtered batches can alias immutable frozen-page
	// vectors without compaction. Operators reading columns must either
	// iterate through Sel (selIdx) or be materializing boundaries that
	// compact the batch to dense form.
	Sel []int32
}

// NewRowBatch returns an empty batch of the given width with capacity for
// capHint rows per column.
func NewRowBatch(width, capHint int) *RowBatch {
	b := &RowBatch{
		Cols:  make([][]types.Datum, width),
		Nulls: make([]NullBitmap, width),
	}
	for j := range b.Cols {
		b.Cols[j] = make([]types.Datum, 0, capHint)
		b.Nulls[j] = make(NullBitmap, bitmapWords(capHint))
	}
	return b
}

// Len returns the number of logical rows in the batch: the selection
// length when a selection vector is attached, the physical row count
// otherwise.
func (b *RowBatch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.n
}

// PhysLen returns the physical row count of the batch's columns,
// independent of any selection vector. Kernels that run over every stored
// row (segment extraction, column materialization) size their outputs by
// it; Sel entries index into [0, PhysLen).
func (b *RowBatch) PhysLen() int { return b.n }

// selIdx maps logical row si to its physical index through sel; the
// identity when no selection vector is attached.
func selIdx(sel []int32, si int) int {
	if sel != nil {
		return int(sel[si])
	}
	return si
}

// Width returns the number of columns.
func (b *RowBatch) Width() int { return len(b.Cols) }

// Reset empties the batch, keeping column capacity.
func (b *RowBatch) Reset() {
	b.n = 0
	b.Segs = nil
	b.Sel = nil
	for j := range b.Cols {
		b.Cols[j] = b.Cols[j][:0]
		for w := range b.Nulls[j] {
			b.Nulls[j][w] = 0
		}
	}
}

// AppendRow transposes one row into the batch. The row width must match
// the batch width.
func (b *RowBatch) AppendRow(row storage.Row) {
	i := b.n
	for j, d := range row {
		b.Cols[j] = append(b.Cols[j], d)
		if d.IsNull() {
			b.growNulls(j, i+1)
			b.Nulls[j].Set(i)
		}
	}
	b.n++
}

// growNulls makes sure column j's bitmap covers n rows.
func (b *RowBatch) growNulls(j, n int) {
	want := bitmapWords(n)
	for len(b.Nulls[j]) < want {
		b.Nulls[j] = append(b.Nulls[j], 0)
	}
}

// SetCol installs a fully materialized column (len must equal the batch
// length for every installed column) and recomputes its null bitmap.
func (b *RowBatch) SetCol(j int, col []types.Datum) {
	b.Cols[j] = col
	b.growNulls(j, len(col))
	m := b.Nulls[j][:bitmapWords(len(col))]
	for w := range m {
		m[w] = 0
	}
	for i := range col {
		if col[i].IsNull() {
			m.Set(i)
		}
	}
	if len(col) > b.n {
		b.n = len(col)
	}
}

// SetLen declares the row count after columns were written directly.
func (b *RowBatch) SetLen(n int) { b.n = n }

// AliasCol makes column j share column srcIdx of src — data and null
// bitmap — without copying or rescanning. The alias is valid as long as
// src's current batch contents are.
func (b *RowBatch) AliasCol(j int, src *RowBatch, srcIdx int) {
	b.Cols[j] = src.Cols[srcIdx]
	b.Nulls[j] = src.Nulls[srcIdx]
	if n := len(b.Cols[j]); n > b.n {
		b.n = n
	}
}

// FillRows replaces the batch contents with a column-wise transpose of
// rows, growing column and bitmap capacity as needed. It is the bulk
// equivalent of calling AppendRow per row, without per-cell append and
// bitmap-grow checks. When cols is non-nil only those column indices are
// materialized; the rest stay empty (length 0) — the pruned-scan shape,
// where unreferenced columns are never copied out of the heap.
func (b *RowBatch) FillRows(rows []storage.Row, cols []int) {
	words := bitmapWords(len(rows))
	if cols == nil {
		for j := range b.Cols {
			b.fillCol(j, rows, words)
		}
	} else {
		for j := range b.Cols {
			b.Cols[j] = b.Cols[j][:0]
			b.Nulls[j] = b.Nulls[j][:0]
		}
		for _, j := range cols {
			b.fillCol(j, rows, words)
		}
	}
	b.n = len(rows)
}

// fillCol transposes column j of rows into the batch.
func (b *RowBatch) fillCol(j int, rows []storage.Row, words int) {
	n := len(rows)
	col := b.Cols[j]
	if cap(col) < n {
		col = make([]types.Datum, n)
	}
	col = col[:n]
	m := b.Nulls[j]
	if cap(m) < words {
		m = make(NullBitmap, words)
	}
	m = m[:words]
	for w := range m {
		m[w] = 0
	}
	for i, r := range rows {
		col[i] = r[j]
		if col[i].IsNull() {
			m.Set(i)
		}
	}
	b.Cols[j], b.Nulls[j] = col, m
}

// Row copies row i into dst (reallocating when dst is too small) and
// returns it — the row-major view batch/row adapters and per-row fallback
// evaluation use. Columns a pruned scan left empty yield zero Datums; the
// planner guarantees no consumer reads them.
func (b *RowBatch) Row(i int, dst storage.Row) storage.Row {
	if cap(dst) < len(b.Cols) {
		dst = make(storage.Row, len(b.Cols))
	}
	dst = dst[:len(b.Cols)]
	for j := range b.Cols {
		if col := b.Cols[j]; i < len(col) {
			dst[j] = col[i]
		} else {
			dst[j] = types.Datum{}
		}
	}
	return dst
}

// batchPool recycles RowBatch shells between operators; capacity sizing
// happens lazily in the operators themselves.
var batchPool = sync.Pool{New: func() any { return &RowBatch{} }}

// GetBatch fetches a pooled batch resized to the given width (column
// contents are reset, capacity retained where possible).
func GetBatch(width int) *RowBatch {
	b := batchPool.Get().(*RowBatch)
	for len(b.Cols) < width {
		b.Cols = append(b.Cols, nil)
		b.Nulls = append(b.Nulls, nil)
	}
	b.Cols = b.Cols[:width]
	b.Nulls = b.Nulls[:width]
	b.Reset()
	return b
}

// PutBatch returns a batch to the pool. The caller must not use it again.
func PutBatch(b *RowBatch) {
	if b != nil {
		batchPool.Put(b)
	}
}

// BatchIterator is the batch-at-a-time operator interface. NextBatch
// returns a non-empty batch, or (nil, nil) at end of stream; the batch is
// valid until the next NextBatch or Close call on the same iterator.
type BatchIterator interface {
	NextBatch() (*RowBatch, error)
	Close()
}

// ---------- Row/batch adapters ----------

// RowToBatch adapts a row iterator to the batch interface by buffering
// Size rows per batch — how Sort, joins, and other row-only operators feed
// a batch pipeline stage above them.
type RowToBatch struct {
	In   Iterator
	Size int

	batch *RowBatch
}

// NextBatch implements BatchIterator.
func (a *RowToBatch) NextBatch() (*RowBatch, error) {
	size := a.Size
	if size <= 0 {
		size = DefaultBatchSize
	}
	if a.batch == nil {
		a.batch = GetBatch(0)
	}
	b := a.batch
	b.Reset()
	for b.Len() < size {
		row, ok, err := a.In.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if b.Width() == 0 && len(row) > 0 {
			// First row fixes the width.
			*b = *NewRowBatch(len(row), size)
		}
		b.AppendRow(row)
	}
	if b.Len() == 0 {
		return nil, nil
	}
	return b, nil
}

// Close implements BatchIterator.
func (a *RowToBatch) Close() {
	a.In.Close()
	if a.batch != nil {
		PutBatch(a.batch)
		a.batch = nil
	}
}

// SizeHint implements SizeHinter by delegating to the wrapped iterator.
func (a *RowToBatch) SizeHint() (int64, bool) {
	if sh, ok := a.In.(SizeHinter); ok {
		return sh.SizeHint()
	}
	return 0, false
}

// BatchToRow adapts a batch iterator back to the Volcano row interface at
// the boundary to row-only consumers (Sort, joins, Collect). Emitted rows
// are independent of the source batch: each batch's rows are carved out of
// one shared arena allocation, so retaining them (Collect, Sort) is safe
// and costs one allocation per batch rather than one per row.
type BatchToRow struct {
	In BatchIterator

	batch  *RowBatch
	pos    int
	arena  []types.Datum
	used   int
	hinted bool
	nohint bool
}

// Next implements Iterator.
func (a *BatchToRow) Next() (storage.Row, bool, error) {
	for a.batch == nil || a.pos >= a.batch.Len() {
		b, err := a.In.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return nil, false, nil
		}
		a.batch = b
		a.pos = 0
		need := b.Len() * b.Width()
		if !a.hinted && !a.nohint {
			// With an exact source cardinality, one arena covers the whole
			// result instead of one allocation per batch.
			if sh, ok := a.In.(BatchSizeHinter); ok {
				if n, exact := sh.SizeHint(); exact && n >= int64(b.Len()) && n <= collectCapHint {
					a.arena = make([]types.Datum, int(n)*b.Width())
					a.used = 0
					a.hinted = true
				}
			}
			if !a.hinted {
				a.nohint = true
			}
		}
		if len(a.arena)-a.used < need {
			a.arena = make([]types.Datum, need)
			a.used = 0
		}
	}
	w := a.batch.Width()
	row := storage.Row(a.arena[a.used : a.used+w : a.used+w])
	a.used += w
	i := selIdx(a.batch.Sel, a.pos)
	for j := 0; j < w; j++ {
		if col := a.batch.Cols[j]; i < len(col) {
			row[j] = col[i]
		} else {
			row[j] = types.Datum{} // column pruned away by the scan
		}
	}
	a.pos++
	return row, true, nil
}

// Close implements Iterator.
func (a *BatchToRow) Close() { a.In.Close() }

// SizeHint implements SizeHinter by delegating to the wrapped iterator.
func (a *BatchToRow) SizeHint() (int64, bool) {
	if sh, ok := a.In.(BatchSizeHinter); ok {
		return sh.SizeHint()
	}
	return 0, false
}

// BatchSizeHinter is SizeHinter for batch iterators.
type BatchSizeHinter interface {
	SizeHint() (int64, bool)
}

// ---------- Batch scan ----------

// BatchScanIter reads a heap page range in chunks, transposes rows into
// column-major batches, and applies an optional pushed-down filter with
// batch expression evaluation. It is the leaf of every batch pipeline.
type BatchScanIter struct {
	Filter Expr
	// NeedCols, when non-nil, lists the only column indices downstream
	// operators read (ascending). The scan materializes just those columns
	// into its batches; the rest stay empty. Set before the first
	// NextBatch.
	NeedCols []int

	chunk  *storage.HeapChunkIter
	width  int
	size   int
	nrows  int64 // heap row count at open (for SizeHint; no filter only)
	reuse  bool
	batch  *RowBatch
	rowBuf []storage.Row
	ctx    *EvalCtx
	keep   []bool

	// Striped page mode (EnableStriped): page-at-a-time reads that deliver
	// frozen pages as column aliases plus their segments. See striped.go.
	striped bool
	shell   *RowBatch     // frozen-page shell; aliases, never pooled/Reset
	own     *RowBatch     // owned transpose buffer for row-form pages
	pageBuf []storage.Row // ReadPage row buffer (one full page)

	// In-scan selection filtering (selfilter.go): the compiled filter, its
	// per-scan state, and the count of selection-carrying batches emitted
	// (flushed to the heap's stats on Close).
	sf         *SelFilter
	selState   *selScanState
	heap       *storage.Heap
	selBatches int64
}

// NewBatchScan returns a batch scan over all pages of v.
func NewBatchScan(v storage.ReadView, filter Expr, size int) *BatchScanIter {
	return NewBatchScanRange(v, filter, size, 0, v.NumPages())
}

// NewBatchScanRange returns a batch scan over pages [start, end) of v —
// one partition of a parallel scan. Stat flushes on Close key on the
// view's owner heap, so snapshot scans account like live scans.
func NewBatchScanRange(v storage.ReadView, filter Expr, size, start, end int) *BatchScanIter {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &BatchScanIter{
		Filter: filter,
		chunk:  v.IterateRange(start, end),
		width:  len(v.Schema().Cols),
		size:   size,
		nrows:  v.NumRows(),
		reuse:  true,
		ctx:    NewEvalCtx(),
		heap:   v.Owner(),
	}
}

// setNoReuse makes every NextBatch return a freshly allocated batch (the
// parallel scan hands batches across goroutines, so they cannot be
// recycled by the producer).
func (s *BatchScanIter) setNoReuse() { s.reuse = false }

// SetPageSkip installs a page-skip predicate on the underlying chunk
// cursor (storage page summaries); must be called before the first
// NextBatch.
func (s *BatchScanIter) SetPageSkip(f func(*storage.PageSummary) bool) { s.chunk.SetSkip(f) }

// NextBatch implements BatchIterator.
func (s *BatchScanIter) NextBatch() (*RowBatch, error) {
	if s.striped {
		return s.nextStriped()
	}
	if s.rowBuf == nil {
		s.rowBuf = make([]storage.Row, s.size)
	}
	for {
		var b *RowBatch
		if s.reuse {
			if s.batch == nil {
				s.batch = GetBatch(s.width)
			}
			b = s.batch
		} else {
			b = GetBatch(s.width)
		}
		n := s.chunk.ReadRows(s.rowBuf)
		if n == 0 {
			return nil, nil
		}
		b.FillRows(s.rowBuf[:n], s.NeedCols)
		if s.Filter == nil {
			return b, nil
		}
		s.ctx.BeginBatch()
		keep, err := EvalPredBatch(s.Filter, b, s.ctx, s.keep)
		if err != nil {
			return nil, err
		}
		s.keep = keep
		if kept := compactBatch(b, keep); kept > 0 {
			return b, nil
		}
		// Whole batch filtered out: read the next chunk.
	}
}

// Close implements BatchIterator.
func (s *BatchScanIter) Close() {
	s.chunk.Close()
	if s.selBatches > 0 && s.heap != nil {
		s.heap.RecordSelBatches(s.selBatches)
		s.selBatches = 0
	}
	if s.batch != nil {
		PutBatch(s.batch)
		s.batch = nil
	}
	if s.own != nil {
		PutBatch(s.own)
		s.own = nil
	}
}

// BytesRead reports this scan's (partition's) charged bytes.
func (s *BatchScanIter) BytesRead() int64 { return s.chunk.BytesRead() }

// SizeHint implements BatchSizeHinter: exact when unfiltered.
func (s *BatchScanIter) SizeHint() (int64, bool) {
	if s.Filter != nil {
		return 0, false
	}
	return s.nrows, true
}

// compactBatch keeps only rows with keep[i] set, in order, and returns the
// surviving count. It requires a dense batch: both callers compact a
// scan-owned batch straight out of FillRows, before any selection vector
// can exist, so logical and physical indices coincide.
//
//lint:ignore sinew/sel-invariant dense-only helper: callers compact scan-owned FillRows batches that never carry Sel
func compactBatch(b *RowBatch, keep []bool) int {
	n := b.Len()
	k := 0
	for i := 0; i < n; i++ {
		if keep[i] {
			k++
		}
	}
	if k == n {
		return k
	}
	for j := range b.Cols {
		col := b.Cols[j]
		if len(col) == 0 {
			continue // column pruned away by the scan
		}
		m := b.Nulls[j]
		for w := range m {
			m[w] = 0
		}
		out := 0
		for i := 0; i < n; i++ {
			if !keep[i] {
				continue
			}
			col[out] = col[i]
			if col[i].IsNull() {
				b.growNulls(j, out+1)
				b.Nulls[j].Set(out)
			}
			out++
		}
		b.Cols[j] = col[:out]
	}
	b.n = k
	return k
}

// ---------- Batch filter / project / limit ----------

// BatchFilterIter drops rows failing the predicate, evaluating it once per
// batch. Output batches are compacted copies, never aliases of the input.
type BatchFilterIter struct {
	In   BatchIterator
	Pred Expr
	// Pooled borrows the output buffer from the batch pool and returns it
	// on Close, so column capacity survives across queries. Only safe when
	// producer and consumer share one goroutine and the consumer honors
	// the batch-validity contract (the scan's hoisted striped filter);
	// batches that cross a channel must keep the default private buffer.
	Pooled bool

	ctx  *EvalCtx
	out  *RowBatch
	keep []bool
}

// NextBatch implements BatchIterator.
func (f *BatchFilterIter) NextBatch() (*RowBatch, error) {
	if f.ctx == nil {
		f.ctx = NewEvalCtx()
	}
	for {
		in, err := f.In.NextBatch()
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		f.ctx.BeginBatch()
		keep, err := EvalPredBatch(f.Pred, in, f.ctx, f.keep)
		if err != nil {
			return nil, err
		}
		f.keep = keep
		if f.out == nil {
			if f.Pooled {
				f.out = GetBatch(in.Width())
			} else {
				f.out = NewRowBatch(in.Width(), in.Len())
			}
		}
		out := f.out
		out.Reset()
		for len(out.Cols) < in.Width() {
			out.Cols = append(out.Cols, nil)
			out.Nulls = append(out.Nulls, nil)
		}
		n := in.Len()
		sel := in.Sel
		kept := 0
		for si := 0; si < n; si++ {
			if keep[si] {
				kept++
			}
		}
		for j := range in.Cols {
			src := in.Cols[j]
			col := out.Cols[j][:0]
			// A column-pruned scan leaves unneeded columns empty; keep
			// them empty rather than indexing past their length. The keep
			// mask is logical, so a selection-carrying input is compacted
			// through its Sel here (the output is always dense).
			if len(src) == in.PhysLen() {
				for si := 0; si < n; si++ {
					if keep[si] {
						col = append(col, src[selIdx(sel, si)])
					}
				}
			}
			out.SetCol(j, col)
		}
		out.n = kept
		if out.n > 0 {
			return out, nil
		}
	}
}

// Close implements BatchIterator.
func (f *BatchFilterIter) Close() {
	f.In.Close()
	if f.Pooled && f.out != nil {
		PutBatch(f.out)
		f.out = nil
	}
}

// RowBudgeter is implemented by cardinality-preserving batch operators
// that can skip work for rows a LIMIT above them will discard. A parent
// LIMIT announces the remaining row budget before each NextBatch pull; the
// operator truncates its input batch to the budget *before* evaluating
// expressions, so a batch pipeline never evaluates (and never surfaces
// errors from) rows a row-at-a-time pipeline would not reach.
type RowBudgeter interface {
	SetRowBudget(n int64)
}

// truncateBatch trims b to at most n logical rows (pruned empty columns
// are left untouched). A selection-carrying batch is trimmed by shortening
// its selection vector; the physical columns stay intact because they may
// alias immutable frozen-page storage.
func truncateBatch(b *RowBatch, n int64) {
	if n < 0 || int64(b.Len()) <= n {
		return
	}
	if b.Sel != nil {
		b.Sel = b.Sel[:n]
		return
	}
	for j := range b.Cols {
		if int64(len(b.Cols[j])) > n {
			b.Cols[j] = b.Cols[j][:n]
		}
	}
	b.n = int(n)
}

// BatchProjectIter evaluates output expressions once per batch. Output
// columns may alias input columns (plain column projections are free).
type BatchProjectIter struct {
	In    BatchIterator
	Exprs []Expr

	ctx       *EvalCtx
	out       *RowBatch
	budget    int64
	budgetSet bool
}

// SetRowBudget implements RowBudgeter: projection preserves cardinality,
// so rows beyond the parent LIMIT's budget can be dropped before any
// expression is evaluated.
func (p *BatchProjectIter) SetRowBudget(n int64) {
	p.budget, p.budgetSet = n, true
	if rb, ok := p.In.(RowBudgeter); ok {
		rb.SetRowBudget(n)
	}
}

// NextBatch implements BatchIterator.
func (p *BatchProjectIter) NextBatch() (*RowBatch, error) {
	if p.ctx == nil {
		p.ctx = NewEvalCtx()
	}
	in, err := p.In.NextBatch()
	if err != nil {
		return nil, err
	}
	if in == nil {
		return nil, nil
	}
	if p.budgetSet {
		truncateBatch(in, p.budget)
		p.budgetSet = false
	}
	if p.out == nil {
		p.out = &RowBatch{
			Cols:  make([][]types.Datum, len(p.Exprs)),
			Nulls: make([]NullBitmap, len(p.Exprs)),
		}
	}
	out := p.out
	out.n = 0
	p.ctx.BeginBatch()
	for j, e := range p.Exprs {
		// Plain column projections alias the input column and its bitmap;
		// no copy, no bitmap rescan.
		if ce, ok := e.(*ColExpr); ok && ce.Idx >= 0 && ce.Idx < in.Width() {
			out.AliasCol(j, in, ce.Idx)
			continue
		}
		col, err := EvalBatch(e, in, p.ctx)
		if err != nil {
			return nil, err
		}
		out.SetCol(j, col)
	}
	// Projection preserves the physical layout: output columns are aliases
	// or PhysLen-sized evaluation results, so the input's selection vector
	// carries over verbatim.
	out.n = in.PhysLen()
	out.Sel = in.Sel
	return out, nil
}

// Close implements BatchIterator.
func (p *BatchProjectIter) Close() { p.In.Close() }

// SizeHint implements BatchSizeHinter (projection preserves cardinality).
func (p *BatchProjectIter) SizeHint() (int64, bool) {
	if sh, ok := p.In.(BatchSizeHinter); ok {
		return sh.SizeHint()
	}
	return 0, false
}

// BatchLimitIter stops after N rows, truncating the final batch.
type BatchLimitIter struct {
	In BatchIterator
	N  int64

	seen int64
}

// NextBatch implements BatchIterator.
func (l *BatchLimitIter) NextBatch() (*RowBatch, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	// Announce the remaining budget so budget-aware children (Project,
	// MultiExtract) stop evaluating expressions past the limit.
	if rb, ok := l.In.(RowBudgeter); ok {
		rb.SetRowBudget(l.N - l.seen)
	}
	b, err := l.In.NextBatch()
	if err != nil {
		return nil, err
	}
	if b == nil {
		return nil, nil
	}
	truncateBatch(b, l.N-l.seen)
	l.seen += int64(b.Len())
	return b, nil
}

// Close implements BatchIterator.
func (l *BatchLimitIter) Close() { l.In.Close() }

// ---------- Fused multi-extraction ----------

// BatchMultiExtractIter appends K computed columns to every input batch,
// all filled by one MultiExtractKernel invocation per batch: the kernel
// decodes each serialized record of column DataIdx once and resolves every
// requested key from that single pass, replacing K independent extraction
// UDF evaluations. Input columns pass through by alias.
type BatchMultiExtractIter struct {
	In      BatchIterator
	DataIdx int
	Kernel  MultiExtractKernel
	K       int
	// SegKernel, when set, handles batches whose data column carries a
	// striped ColumnSegment (RowBatch.Segs, attached by striped scans):
	// the requested keys are read from the segment's per-attribute vectors
	// instead of decoding each record. A segment the kernel does not
	// recognize falls back to Kernel over the materialized column.
	SegKernel SegExtractKernel

	out       *RowBatch
	cols      [][]types.Datum
	segs      []storage.ColumnSegment
	budget    int64
	budgetSet bool
}

// SetRowBudget implements RowBudgeter (extraction preserves cardinality).
func (m *BatchMultiExtractIter) SetRowBudget(n int64) {
	m.budget, m.budgetSet = n, true
	if rb, ok := m.In.(RowBudgeter); ok {
		rb.SetRowBudget(n)
	}
}

// NextBatch implements BatchIterator.
func (m *BatchMultiExtractIter) NextBatch() (*RowBatch, error) {
	in, err := m.In.NextBatch()
	if err != nil {
		return nil, err
	}
	if in == nil {
		return nil, nil
	}
	if m.budgetSet {
		truncateBatch(in, m.budget)
		m.budgetSet = false
	}
	inW := in.Width()
	outW := inW + m.K
	if m.out == nil {
		m.out = &RowBatch{
			Cols:  make([][]types.Datum, outW),
			Nulls: make([]NullBitmap, outW),
		}
		m.cols = make([][]types.Datum, m.K)
	}
	out := m.out
	out.n = 0
	for len(out.Cols) < outW {
		out.Cols = append(out.Cols, nil)
		out.Nulls = append(out.Nulls, nil)
	}
	for j := 0; j < inW; j++ {
		out.AliasCol(j, in, j)
	}
	// Segments pass through like columns do (appended extraction outputs
	// are plain), so a further extraction stacked above still sees its data
	// column striped.
	out.Segs = nil
	if in.Segs != nil {
		if cap(m.segs) < outW {
			m.segs = make([]storage.ColumnSegment, outW)
		}
		segs := m.segs[:outW]
		copy(segs, in.Segs)
		for j := len(in.Segs); j < outW; j++ {
			segs[j] = nil
		}
		out.Segs = segs
	}
	// Kernels fill every physical row: a selection-carrying batch keeps its
	// columns (and the backing segment) at full page length, and extraction
	// over rows the selection dropped is harmless — they are valid records.
	n := in.PhysLen()
	for k := 0; k < m.K; k++ {
		if cap(m.cols[k]) < n {
			m.cols[k] = make([]types.Datum, n)
		}
		m.cols[k] = m.cols[k][:n]
	}
	handled := false
	if m.SegKernel != nil && m.DataIdx < len(in.Segs) {
		if seg := in.Segs[m.DataIdx]; seg != nil && seg.NumRows() == n {
			var err error
			handled, err = m.SegKernel(seg, m.cols)
			if err != nil {
				return nil, err
			}
		}
	}
	if !handled {
		if len(in.Cols[m.DataIdx]) != n {
			return nil, fmt.Errorf("exec: multi-extract data column %d not materialized (%d of %d rows)",
				m.DataIdx, len(in.Cols[m.DataIdx]), n)
		}
		if err := m.Kernel(in.Cols[m.DataIdx], m.cols); err != nil {
			return nil, err
		}
	}
	for k := 0; k < m.K; k++ {
		out.SetCol(inW+k, m.cols[k])
	}
	out.n = n
	out.Sel = in.Sel
	return out, nil
}

// Close implements BatchIterator.
func (m *BatchMultiExtractIter) Close() { m.In.Close() }

// SizeHint implements BatchSizeHinter (extraction preserves cardinality).
func (m *BatchMultiExtractIter) SizeHint() (int64, bool) {
	if sh, ok := m.In.(BatchSizeHinter); ok {
		return sh.SizeHint()
	}
	return 0, false
}

// SizeHint implements BatchSizeHinter.
func (l *BatchLimitIter) SizeHint() (int64, bool) {
	if sh, ok := l.In.(BatchSizeHinter); ok {
		if n, exact := sh.SizeHint(); exact {
			if n > l.N {
				n = l.N
			}
			return n, true
		}
	}
	return l.N, true
}
