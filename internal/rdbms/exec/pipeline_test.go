package exec

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// heapOf builds a pager-backed heap holding rows over colTypes.
func heapOf(t *testing.T, colTypes []types.Type, rows []storage.Row) (*storage.Heap, *storage.Pager) {
	t.Helper()
	cols := make([]storage.Column, len(colTypes))
	for i, tp := range colTypes {
		cols[i] = storage.Column{Name: string(rune('a' + i)), Typ: tp}
	}
	schema, err := storage.NewSchema(cols...)
	if err != nil {
		t.Fatal(err)
	}
	p := storage.NewPager()
	h := storage.NewHeap(schema, p)
	for _, r := range rows {
		if err := h.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	p.Reset()
	return h, p
}

// chainBuild returns a PipelineBuild running scan→filter→project over one
// partition, mirroring GatherNode.buildPartition.
func chainBuild(h *storage.Heap, pred Expr, projs []Expr, size int) PipelineBuild {
	return func(r storage.PageRange) (BatchIterator, error) {
		var cur BatchIterator = NewBatchScanRange(h, nil, size, r.Start, r.End)
		if pred != nil {
			cur = &BatchFilterIter{In: cur, Pred: pred}
		}
		if projs != nil {
			cur = &BatchProjectIter{In: cur, Exprs: projs}
		}
		return cur, nil
	}
}

// TestPropertyParallelMatchesSerial is the three-way differential test
// backing the morsel-driven pipelines: over random schemas, data,
// predicates, and projections, the row pipeline, the serial batch
// pipeline, and the parallel pipeline (random worker counts) must produce
// identical output — same rows, same order (the partition merge preserves
// heap order exactly).
func TestPropertyParallelMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		colTypes := []types.Type{types.Int, types.Text}
		for n := r.Intn(3); n > 0; n-- {
			colTypes = append(colTypes,
				[]types.Type{types.Int, types.Float, types.Text, types.Bool}[r.Intn(4)])
		}
		rows := randBatchRows(r, colTypes, r.Intn(300))
		h, _ := heapOf(t, colTypes, rows)
		pred := randPred(r, colTypes, 3, true)
		projs := make([]Expr, 1+r.Intn(3))
		for i := range projs {
			if r.Intn(3) == 0 {
				projs[i] = randTextExpr(r, colTypes, 2)
			} else {
				projs[i] = randNumExpr(r, colTypes, 2, true)
			}
		}

		want, err := Collect(&ProjectIter{Exprs: projs,
			In: &FilterIter{Pred: pred, In: NewScan(h, nil)}})
		if err != nil {
			t.Fatalf("seed %d: row pipeline: %v", seed, err)
		}
		size := 1 + r.Intn(40)
		batch := collectBatches(t, &BatchProjectIter{Exprs: projs,
			In: &BatchFilterIter{Pred: pred, In: NewBatchScan(h, nil, size)}})
		rowsEqual(t, batch, want)
		for _, workers := range []int{2, 3, 5} {
			par := collectBatches(t, NewParallelPipeline(
				h.Partitions(workers), chainBuild(h, pred, projs, size)))
			rowsEqual(t, par, want)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyParallelAggMatchesSerial checks two-phase parallel hash
// aggregation — GROUP BY with COUNT/SUM/AVG/MIN/MAX plus the grouped
// DISTINCT case (no aggregates) — against the row and serial batch
// aggregates.
func TestPropertyParallelAggMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		colTypes := []types.Type{types.Int, types.Int, types.Float, types.Text}
		rows := randBatchRows(r, colTypes, r.Intn(400))
		h, _ := heapOf(t, colTypes, rows)
		groupBy := []Expr{col(0, types.Int)}
		if r.Intn(2) == 0 {
			groupBy = append(groupBy, col(3, types.Text))
		}
		specs := func() []*AggSpec {
			return []*AggSpec{
				{Kind: AggCountStar},
				{Kind: AggCount, Arg: col(1, types.Int)},
				{Kind: AggSum, Arg: col(1, types.Int)},
				{Kind: AggAvg, Arg: col(2, types.Float)},
				{Kind: AggMin, Arg: col(2, types.Float)},
				{Kind: AggMax, Arg: col(3, types.Text)},
			}
		}
		size := 1 + r.Intn(40)

		want, err := Collect(&HashAggIter{In: NewScan(h, nil), GroupBy: groupBy, Aggs: specs()})
		if err != nil {
			t.Fatal(err)
		}
		batch := collectBatches(t, &BatchHashAggIter{
			In: NewBatchScan(h, nil, size), GroupBy: groupBy, Aggs: specs()})
		for _, workers := range []int{2, 4} {
			par := collectBatches(t, NewParallelHashAgg(
				h.Partitions(workers), chainBuild(h, nil, nil, size),
				groupBy, specs(), false, size))
			// Batch and parallel both emit in encoded-key order.
			rowsEqual(t, par, batch)
			if canonical(par) != canonical(want) {
				t.Fatalf("seed %d workers %d: parallel disagrees with row agg", seed, workers)
			}
		}

		// Grouped DISTINCT: group-by columns, no aggregate states.
		wantD, err := Collect(&HashAggIter{In: NewScan(h, nil), GroupBy: groupBy})
		if err != nil {
			t.Fatal(err)
		}
		parD := collectBatches(t, NewParallelHashAgg(
			h.Partitions(3), chainBuild(h, nil, nil, size), groupBy, nil, false, size))
		if canonical(parD) != canonical(wantD) {
			t.Fatalf("seed %d: parallel DISTINCT disagrees", seed)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAggMergeRejectsDistinct pins the planner contract: DISTINCT
// aggregates cannot be merged across partitions (per-worker distinct sets
// would double-count), so merge() must refuse them.
func TestAggMergeRejectsDistinct(t *testing.T) {
	spec := &AggSpec{Kind: AggCount, Arg: col(0, types.Int), Distinct: true}
	a, b := newAggState(spec), newAggState(spec)
	if err := a.merge(b); err == nil {
		t.Fatal("merge of DISTINCT aggregate states unexpectedly succeeded")
	}
}

// TestPropertyParallelJoinMatchesSerial checks the partitioned-probe hash
// join against the serial hash join: same build side, probe side scanned
// in parallel partitions, identical output order.
func TestPropertyParallelJoinMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		colTypes := []types.Type{types.Int, types.Text}
		rows := randBatchRows(r, colTypes, r.Intn(300))
		h, _ := heapOf(t, colTypes, rows)
		build := make([]storage.Row, 1+r.Intn(30))
		for i := range build {
			key := types.NewInt(int64(r.Intn(9) - 4))
			if r.Intn(8) == 0 {
				key = types.NewNull(types.Int)
			}
			build[i] = storage.Row{key, types.NewInt(int64(i))}
		}
		probeKeys := []Expr{col(0, types.Int)}
		buildKeys := []Expr{col(0, types.Int)}
		var residual Expr
		if r.Intn(2) == 0 {
			residual = &BinExpr{Op: "<>", L: col(1, types.Text), R: lit(types.NewText("b"))}
		}
		size := 1 + r.Intn(40)

		want, err := Collect(&HashJoinIter{
			Probe: NewScan(h, nil), Build: sliceIter(build...),
			ProbeKeys: probeKeys, BuildKeys: buildKeys, Residual: residual,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			par := collectBatches(t, NewParallelHashJoin(
				h.Partitions(workers), chainBuild(h, nil, nil, size),
				sliceIter(build...), probeKeys, buildKeys, residual,
				size, len(colTypes)+2, 2))
			rowsEqual(t, par, want)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// vecSegment is a test ColumnSegment: a copied datum vector standing in
// for the upper layer's striped record segments.
type vecSegment struct {
	vals []types.Datum
	ids  []uint32
}

func (s *vecSegment) NumRows() int      { return len(s.vals) }
func (s *vecSegment) AttrIDs() []uint32 { return s.ids }
func (s *vecSegment) Values(dst []types.Datum) error {
	copy(dst, s.vals)
	return nil
}

// freezeCols installs a segmenter striping the listed columns and freezes
// every full page, returning how many froze.
func freezeCols(h *storage.Heap, stripe map[int]bool) int {
	h.SetColumnSegmenter(func(col int, vals []types.Datum) (storage.ColumnSegment, error) {
		if !stripe[col] {
			return nil, nil
		}
		cp := make([]types.Datum, len(vals))
		copy(cp, vals)
		return &vecSegment{vals: cp, ids: []uint32{uint32(col)}}, nil
	})
	return h.FreezeColdPages()
}

// stripedChainBuild is chainBuild with the partition scan in striped page
// mode, mirroring GatherNode.buildPartition over a segmented heap.
func stripedChainBuild(h *storage.Heap, pred Expr, projs []Expr, size int) PipelineBuild {
	return func(rg storage.PageRange) (BatchIterator, error) {
		scan := NewBatchScanRange(h, nil, size, rg.Start, rg.End)
		scan.EnableStriped()
		var cur BatchIterator = scan
		if pred != nil {
			cur = &BatchFilterIter{In: cur, Pred: pred}
		}
		if projs != nil {
			cur = &BatchProjectIter{In: cur, Exprs: projs}
		}
		return cur, nil
	}
}

// selChainBuild mirrors GatherNode.buildPartition over a striped scan
// whose predicate is compiled into the in-scan selection filter: the
// SelFilter is shared across partitions, per-partition state instantiates
// on the worker goroutine.
func selChainBuild(h *storage.Heap, pred Expr, projs []Expr, size int, sf *SelFilter) PipelineBuild {
	return func(rg storage.PageRange) (BatchIterator, error) {
		scan := NewBatchScanRange(h, pred, size, rg.Start, rg.End)
		if sf != nil {
			scan.SetSelFilter(sf)
		}
		scan.EnableStriped()
		var cur BatchIterator = scan
		if projs != nil {
			cur = &BatchProjectIter{In: cur, Exprs: projs}
		}
		return cur, nil
	}
}

// TestPropertyStripedMatchesRow extends the three-way differential test
// with the frozen-segment leg: over heaps whose full pages are frozen
// into column segments, the row pipeline, the striped serial batch
// pipeline, and the striped parallel pipeline must agree — before and
// after an Update un-freezes a page mid-table, leaving a frozen/row mix.
func TestPropertyStripedMatchesRow(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		colTypes := []types.Type{types.Int, types.Text}
		for n := r.Intn(3); n > 0; n-- {
			colTypes = append(colTypes,
				[]types.Type{types.Int, types.Float, types.Text, types.Bool}[r.Intn(4)])
		}
		rows := randBatchRows(r, colTypes, 128+r.Intn(400))
		h, _ := heapOf(t, colTypes, rows)
		stripe := map[int]bool{r.Intn(len(colTypes)): true}
		if r.Intn(2) == 0 {
			stripe[0] = true
		}
		frozen := freezeCols(h, stripe)
		if frozen == 0 {
			t.Fatalf("seed %d: no pages froze", seed)
		}

		pred := randPred(r, colTypes, 3, true)
		projs := make([]Expr, 1+r.Intn(3))
		for i := range projs {
			if r.Intn(3) == 0 {
				projs[i] = randTextExpr(r, colTypes, 2)
			} else {
				projs[i] = randNumExpr(r, colTypes, 2, true)
			}
		}
		size := 1 + r.Intn(40)

		check := func(phase string) {
			want, err := Collect(&ProjectIter{Exprs: projs,
				In: &FilterIter{Pred: pred, In: NewScan(h, nil)}})
			if err != nil {
				t.Fatalf("seed %d %s: row pipeline: %v", seed, phase, err)
			}
			scan := NewBatchScan(h, nil, size)
			scan.EnableStriped()
			// A hoisted filter above a striped scan remains a supported
			// operator shape (residual predicates land there).
			striped := collectBatches(t, &BatchProjectIter{Exprs: projs,
				In: &BatchFilterIter{Pred: pred, In: scan, Pooled: true}})
			rowsEqual(t, striped, want)
			// The planner path proper: predicates compiled into the in-scan
			// selection filter, survivors carried by a selection vector.
			sf := CompileSelFilter([]Expr{pred}, len(colTypes), nil, nil)
			selScan := NewBatchScan(h, pred, size)
			selScan.SetSelFilter(sf)
			selScan.EnableStriped()
			selLeg := collectBatches(t, &BatchProjectIter{Exprs: projs, In: selScan})
			rowsEqual(t, selLeg, want)
			for _, workers := range []int{2, 3} {
				par := collectBatches(t, NewParallelPipeline(
					h.Partitions(workers), stripedChainBuild(h, pred, projs, size)))
				rowsEqual(t, par, want)
				selPar := collectBatches(t, NewParallelPipeline(
					h.Partitions(workers), selChainBuild(h, pred, projs, size, sf)))
				rowsEqual(t, selPar, want)
				scanPar := collectBatches(t, &BatchProjectIter{Exprs: projs,
					In: NewParallelScanStriped(h, pred, size, workers, nil, nil, true, sf)})
				rowsEqual(t, scanPar, want)
			}
		}
		check("frozen")

		// Update a row on a mid-table frozen page: it un-freezes back to
		// row form and the scan now crosses a frozen/row mix.
		id := storage.RowID{Page: frozen / 2, Slot: 3}
		if _, err := h.Update(id, rows[len(rows)-1]); err != nil {
			t.Fatalf("seed %d: un-freezing update: %v", seed, err)
		}
		if h.NumFrozenPages() != frozen-1 {
			t.Fatalf("seed %d: update left %d frozen pages, want %d",
				seed, h.NumFrozenPages(), frozen-1)
		}
		check("mixed")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStripedSelConsumers drives selection-carrying batches from
// in-scan sel filters through the operators that change or consume
// cardinality — LIMIT, GROUP BY aggregation, and hash joins — comparing
// serial and parallel striped legs against the row pipeline, on all-frozen
// and mixed frozen/row-form heaps.
func TestPropertyStripedSelConsumers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		colTypes := []types.Type{types.Int, types.Text, types.Float}
		rows := randBatchRows(r, colTypes, 200+r.Intn(300))
		h, _ := heapOf(t, colTypes, rows)
		stripe := map[int]bool{0: true}
		if r.Intn(2) == 0 {
			stripe[2] = true
		}
		frozen := freezeCols(h, stripe)
		if frozen == 0 {
			t.Fatalf("seed %d: no pages froze", seed)
		}
		pred := randPred(r, colTypes, 2, true)
		sf := CompileSelFilter([]Expr{pred}, len(colTypes), nil, nil)
		size := 1 + r.Intn(40)
		selScan := func() *BatchScanIter {
			s := NewBatchScan(h, pred, size)
			s.SetSelFilter(sf)
			s.EnableStriped()
			return s
		}

		check := func(phase string) {
			// LIMIT: truncateBatch trims a selection-carrying batch by
			// shortening Sel. Serial striped scans emit in heap order and
			// the parallel merge preserves partition order, so both legs
			// see the same prefix as the row pipeline.
			n := int64(1 + r.Intn(50))
			wantL, err := Collect(&LimitIter{N: n,
				In: &FilterIter{Pred: pred, In: NewScan(h, nil)}})
			if err != nil {
				t.Fatalf("seed %d %s: row limit: %v", seed, phase, err)
			}
			gotL := collectBatches(t, &BatchLimitIter{N: n, In: selScan()})
			rowsEqual(t, gotL, wantL)
			gotLP := collectBatches(t, &BatchLimitIter{N: n,
				In: NewParallelScanStriped(h, pred, size, 3, nil, nil, true, sf)})
			rowsEqual(t, gotLP, wantL)

			// GROUP BY over sel batches, serial and two-phase parallel.
			groupBy := []Expr{col(0, types.Int)}
			aggs := func() []*AggSpec {
				return []*AggSpec{
					{Kind: AggCountStar},
					{Kind: AggSum, Arg: col(0, types.Int)},
					{Kind: AggMax, Arg: col(1, types.Text)},
				}
			}
			wantA, err := Collect(&HashAggIter{GroupBy: groupBy, Aggs: aggs(),
				In: &FilterIter{Pred: pred, In: NewScan(h, nil)}})
			if err != nil {
				t.Fatalf("seed %d %s: row agg: %v", seed, phase, err)
			}
			gotA := collectBatches(t, &BatchHashAggIter{
				In: selScan(), GroupBy: groupBy, Aggs: aggs()})
			if canonical(gotA) != canonical(wantA) {
				t.Fatalf("seed %d %s: striped sel agg disagrees with row agg", seed, phase)
			}
			parA := collectBatches(t, NewParallelHashAgg(
				h.Partitions(3), selChainBuild(h, pred, nil, size, sf),
				groupBy, aggs(), false, size))
			if canonical(parA) != canonical(wantA) {
				t.Fatalf("seed %d %s: parallel striped sel agg disagrees", seed, phase)
			}

			// Hash joins probing from sel batches, serial and partitioned.
			build := make([]storage.Row, 1+r.Intn(20))
			for i := range build {
				build[i] = storage.Row{
					types.NewInt(int64(r.Intn(9) - 4)), types.NewInt(int64(i))}
			}
			keys := []Expr{col(0, types.Int)}
			wantJ, err := Collect(&HashJoinIter{
				Probe: &FilterIter{Pred: pred, In: NewScan(h, nil)},
				Build: sliceIter(build...), ProbeKeys: keys, BuildKeys: keys})
			if err != nil {
				t.Fatalf("seed %d %s: row join: %v", seed, phase, err)
			}
			gotJ, err := Collect(&HashJoinIter{
				Probe: &BatchToRow{In: selScan()},
				Build: sliceIter(build...), ProbeKeys: keys, BuildKeys: keys})
			if err != nil {
				t.Fatalf("seed %d %s: striped sel join: %v", seed, phase, err)
			}
			rowsEqual(t, gotJ, wantJ)
			parJ := collectBatches(t, NewParallelHashJoin(
				h.Partitions(2), selChainBuild(h, pred, nil, size, sf),
				sliceIter(build...), keys, keys, nil, size, len(colTypes)+2, 2))
			rowsEqual(t, parJ, wantJ)
		}
		check("frozen")

		id := storage.RowID{Page: frozen / 2, Slot: 5}
		if _, err := h.Update(id, rows[0]); err != nil {
			t.Fatalf("seed %d: un-freezing update: %v", seed, err)
		}
		check("mixed")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestStripedSegKernelFastPath pins the segment-aware extraction contract:
// frozen pages reach the SegKernel with the page's segment and full row
// count, row-tail pages fall back to the row Kernel, and a SegKernel that
// declines (handled=false) falls back too.
func TestStripedSegKernelFastPath(t *testing.T) {
	colTypes := []types.Type{types.Int, types.Text}
	rows := randBatchRows(rand.New(rand.NewSource(3)), colTypes, 300)
	h, _ := heapOf(t, colTypes, rows)
	if n := freezeCols(h, map[int]bool{1: true}); n != 2 {
		t.Fatalf("frozen pages = %d, want 2", n)
	}

	kernel := func(data []types.Datum, out [][]types.Datum) error {
		for i := range data {
			out[0][i] = types.NewInt(int64(i))
		}
		return nil
	}
	segCalls, segDeclined := 0, false
	segKernel := func(seg storage.ColumnSegment, out [][]types.Datum) (bool, error) {
		if _, ok := seg.(*vecSegment); !ok {
			t.Fatalf("SegKernel saw %T", seg)
		}
		if segDeclined {
			return false, nil
		}
		segCalls++
		for i := 0; i < seg.NumRows(); i++ {
			out[0][i] = types.NewInt(int64(i))
		}
		return true, nil
	}
	run := func(segK SegExtractKernel) []storage.Row {
		scan := NewBatchScan(h, nil, 64)
		scan.EnableStriped()
		return collectBatches(t, &BatchMultiExtractIter{
			In: scan, DataIdx: 1, K: 1, Kernel: kernel, SegKernel: segK})
	}

	want := run(nil) // row Kernel everywhere
	got := run(segKernel)
	rowsEqual(t, got, want)
	if segCalls != 2 {
		t.Errorf("SegKernel handled %d pages, want 2 (frozen pages only)", segCalls)
	}
	segDeclined = true
	rowsEqual(t, run(segKernel), want) // declining kernel falls back
}

// waitGoroutines polls until the goroutine count drops back to base
// (worker shutdown is asynchronous after Close returns the merge side).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), base)
}

// TestParallelPipelinesReleaseOnEarlyClose abandons every parallel
// iterator mid-stream and checks (a) all worker goroutines exit and (b)
// the pager is charged no more than one full scan of the heap — i.e.
// partition scans flushed their partial accounting instead of dropping or
// double-charging it.
func TestParallelPipelinesReleaseOnEarlyClose(t *testing.T) {
	colTypes := []types.Type{types.Int, types.Text}
	r := rand.New(rand.NewSource(11))
	rows := randBatchRows(r, colTypes, 4000)
	h, pager := heapOf(t, colTypes, rows)
	full := h.SizeBytes()
	groupBy := []Expr{col(0, types.Int)}
	aggs := []*AggSpec{{Kind: AggCountStar}}
	build := []storage.Row{{types.NewInt(1), types.NewInt(2)}}

	mk := map[string]func() BatchIterator{
		"pipeline": func() BatchIterator {
			return NewParallelPipeline(h.Partitions(4), chainBuild(h, nil, nil, 32))
		},
		"agg": func() BatchIterator {
			return NewParallelHashAgg(h.Partitions(4), chainBuild(h, nil, nil, 32),
				groupBy, aggs, false, 32)
		},
		"join": func() BatchIterator {
			return NewParallelHashJoin(h.Partitions(4), chainBuild(h, nil, nil, 32),
				sliceIter(build...), []Expr{col(0, types.Int)}, []Expr{col(0, types.Int)},
				nil, 32, 4, 2)
		},
	}
	for name, make := range mk {
		base := runtime.NumGoroutine()
		for i := 0; i < 10; i++ {
			pager.Reset()
			it := make()
			if _, err := it.NextBatch(); err != nil {
				t.Fatalf("%s: first batch: %v", name, err)
			}
			it.Close()
			it.Close() // idempotent
			read, _ := pager.Stats()
			if read > full {
				t.Fatalf("%s: pager charged %d bytes for early close, heap is %d", name, read, full)
			}
		}
		waitGoroutines(t, base)
	}

	// Close before any NextBatch: workers may not even have started.
	for name, make := range mk {
		base := runtime.NumGoroutine()
		it := make()
		it.Close()
		waitGoroutines(t, base)
		_ = name
	}
}
