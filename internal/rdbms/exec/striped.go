package exec

import (
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// This file implements the striped page mode of the batch scan: instead of
// copying rows out of the heap and transposing them, the scan reads whole
// pages (storage.HeapChunkIter.ReadPage) and turns each frozen page into a
// batch whose columns alias the page's immutable vectors — zero per-row
// work for plain columns, one cached materialization for segment columns —
// with the underlying ColumnSegments attached via RowBatch.Segs so
// segment-aware operators can skip the materialized datums entirely.
// Row-form pages (the write-hot tail) are transposed into scan-owned
// buffers exactly like the regular batch scan.
//
// The scan itself is filter-free by construction: compactBatch mutates
// columns in place, which must never happen to batches aliasing a frozen
// page. EnableStriped refuses a scan carrying a pushed-down predicate; the
// planner instead hoists predicates into a BatchFilterIter above the
// striped scan (ScanNode.OpenBatch), whose output batches are compacted
// copies.

// EnableStriped switches the scan to striped page mode. It must be called
// before the first NextBatch and is ignored when the scan carries a
// pushed-down filter (striped batches alias immutable page storage and
// cannot be compacted in place).
func (s *BatchScanIter) EnableStriped() {
	if s.Filter != nil {
		return
	}
	s.striped = true
}

// nextStriped is NextBatch in striped page mode.
func (s *BatchScanIter) nextStriped() (*RowBatch, error) {
	if s.pageBuf == nil {
		s.pageBuf = make([]storage.Row, storage.PageCapacity)
	}
	for {
		pv, ok := s.chunk.ReadPage(s.pageBuf)
		if !ok {
			return nil, nil
		}
		if pv.Frozen != nil {
			return s.frozenBatch(pv.Frozen)
		}
		if len(pv.Rows) == 0 {
			continue
		}
		// Row-form page: transpose into a scan-owned batch. The buffer is
		// deliberately separate from the frozen-page shell — FillRows reuses
		// column capacity, which must never overwrite aliased page vectors —
		// and comes from the batch pool so column capacity survives across
		// queries (Close returns it).
		var b *RowBatch
		if s.reuse {
			if s.own == nil {
				s.own = GetBatch(s.width)
			}
			b = s.own
		} else {
			b = GetBatch(s.width)
		}
		b.FillRows(pv.Rows, s.NeedCols)
		b.Segs = nil
		return b, nil
	}
}

// frozenBatch wraps one frozen page as a batch: needed columns alias the
// page's vectors (materializing and caching segment columns on first use),
// and every segment-backed column is exposed through Segs. The shell is
// never pooled and never Reset — both would corrupt the aliased storage.
func (s *BatchScanIter) frozenBatch(fp *storage.FrozenPage) (*RowBatch, error) {
	b := s.shell
	if b == nil || !s.reuse {
		b = &RowBatch{
			Cols:  make([][]types.Datum, s.width),
			Nulls: make([]NullBitmap, s.width),
			Segs:  make([]storage.ColumnSegment, s.width),
		}
		if s.reuse {
			s.shell = b
		}
	}
	for j := 0; j < s.width; j++ {
		b.Cols[j] = nil
		b.Nulls[j] = nil
		b.Segs[j] = nil
	}
	fill := func(j int) error {
		vals, nulls, err := fp.ColVals(j)
		if err != nil {
			return err
		}
		b.Cols[j] = vals
		b.Nulls[j] = NullBitmap(nulls)
		return nil
	}
	if s.NeedCols == nil {
		for j := 0; j < s.width; j++ {
			if err := fill(j); err != nil {
				return nil, err
			}
		}
	} else {
		for _, j := range s.NeedCols {
			if err := fill(j); err != nil {
				return nil, err
			}
		}
	}
	for j := 0; j < s.width; j++ {
		if _, _, seg := fp.Col(j); seg != nil {
			b.Segs[j] = seg
		}
	}
	b.n = fp.NumRows()
	return b, nil
}
