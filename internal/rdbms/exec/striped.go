package exec

import (
	"github.com/sinewdata/sinew/internal/rdbms/storage"
)

// This file implements the striped page mode of the batch scan: instead of
// copying rows out of the heap and transposing them, the scan reads whole
// pages (storage.HeapChunkIter.ReadPage) and turns each frozen page into a
// batch whose columns alias the page's immutable vectors — zero per-row
// work for plain columns, one cached materialization for segment columns —
// with the underlying ColumnSegments attached via RowBatch.Segs so
// segment-aware operators can skip the materialized datums entirely.
// Row-form pages (the write-hot tail) are transposed into scan-owned
// buffers exactly like the regular batch scan.
//
// Frozen-page batches alias immutable page storage and must never be
// compacted in place, so a pushed-down filter is applied by attaching a
// selection vector instead (selfilter.go): the planner compiles the
// conjuncts into a SelFilter evaluated page by page against the column
// vectors, and surviving rows are published through RowBatch.Sel with the
// aliased columns untouched. Row-form pages are scan-owned copies and
// filter by ordinary in-place compaction.

// EnableStriped switches the scan to striped page mode. It must be called
// before the first NextBatch. A scan carrying a pushed-down filter
// evaluates it in-scan through its SelFilter (SetSelFilter); when the
// planner did not compile one, a degenerate single-conjunct SelFilter is
// synthesized so frozen pages still filter via selection vectors.
func (s *BatchScanIter) EnableStriped() {
	if s.Filter != nil && s.sf == nil {
		s.sf = CompileSelFilter([]Expr{s.Filter}, s.width, nil, nil)
	}
	s.striped = true
}

// SetSelFilter installs the plan-compiled in-scan filter. Call before
// EnableStriped; the SelFilter's conjunction must be equivalent to the
// scan's Filter expression (Filter remains the row-form page and replay
// predicate).
func (s *BatchScanIter) SetSelFilter(sf *SelFilter) { s.sf = sf }

// nextStriped is NextBatch in striped page mode.
func (s *BatchScanIter) nextStriped() (*RowBatch, error) {
	if s.pageBuf == nil {
		s.pageBuf = make([]storage.Row, storage.PageCapacity)
	}
	for {
		pv, ok := s.chunk.ReadPage(s.pageBuf)
		if !ok {
			return nil, nil
		}
		if pv.Frozen != nil {
			if s.sf != nil {
				b, err := s.frozenSelBatch(pv.Frozen)
				if err != nil {
					return nil, err
				}
				if b == nil {
					continue // page fully filtered out
				}
				return b, nil
			}
			return s.frozenBatch(pv.Frozen)
		}
		if len(pv.Rows) == 0 {
			continue
		}
		// Row-form page: transpose into a scan-owned batch. The buffer is
		// deliberately separate from the frozen-page shell — FillRows reuses
		// column capacity, which must never overwrite aliased page vectors —
		// and comes from the batch pool so column capacity survives across
		// queries (Close returns it).
		var b *RowBatch
		if s.reuse {
			if s.own == nil {
				s.own = GetBatch(s.width)
			}
			b = s.own
		} else {
			b = GetBatch(s.width)
		}
		b.FillRows(pv.Rows, s.NeedCols)
		b.Segs = nil
		if s.Filter != nil {
			// Row-form pages are scan-owned copies: filter by ordinary
			// in-place compaction, like the non-striped batch scan.
			s.ctx.BeginBatch()
			keep, err := EvalPredBatch(s.Filter, b, s.ctx, s.keep)
			if err != nil {
				return nil, err
			}
			s.keep = keep
			if compactBatch(b, keep) == 0 {
				continue
			}
		}
		return b, nil
	}
}

// frozenBatch wraps one frozen page as a batch: needed columns alias the
// page's vectors (materializing and caching segment columns on first use),
// and every segment-backed column is exposed through Segs. The shell is
// never pooled and never Reset — both would corrupt the aliased storage.
func (s *BatchScanIter) frozenBatch(fp *storage.FrozenPage) (*RowBatch, error) {
	b := s.frozenShell()
	fill := func(j int) error {
		vals, nulls, err := fp.ColVals(j)
		if err != nil {
			return err
		}
		b.Cols[j] = vals
		b.Nulls[j] = NullBitmap(nulls)
		return nil
	}
	if s.NeedCols == nil {
		for j := 0; j < s.width; j++ {
			if err := fill(j); err != nil {
				return nil, err
			}
		}
	} else {
		for _, j := range s.NeedCols {
			if err := fill(j); err != nil {
				return nil, err
			}
		}
	}
	for j := 0; j < s.width; j++ {
		if _, _, seg := fp.Col(j); seg != nil {
			b.Segs[j] = seg
		}
	}
	b.n = fp.NumRows()
	return b, nil
}
