package exec

import (
	"sort"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// Iterator is the Volcano-style row cursor all operators implement.
type Iterator interface {
	// Next returns the next row; ok=false marks the end of the stream.
	Next() (row storage.Row, ok bool, err error)
	// Close releases resources; safe to call more than once.
	Close()
}

// SizeHinter is optionally implemented by iterators that know (or can
// bound) their cardinality up front; Collect uses it to pre-size its
// output slice instead of growing it by repeated reallocation.
type SizeHinter interface {
	// SizeHint returns the expected row count; exact reports whether the
	// count is precise rather than an upper bound.
	SizeHint() (n int64, exact bool)
}

// collectCapHint caps how much memory a size hint may pre-allocate (an
// inexact hint on a huge heap should not commit gigabytes up front).
const collectCapHint = 1 << 20

// Collect drains an iterator into a slice and closes it. A BatchToRow
// root is unwrapped and drained batch-at-a-time, skipping the per-row
// adapter call.
func Collect(it Iterator) ([]storage.Row, error) {
	if br, ok := it.(*BatchToRow); ok {
		return CollectBatches(br.In)
	}
	defer it.Close()
	var out []storage.Row
	if sh, ok := it.(SizeHinter); ok {
		if n, _ := sh.SizeHint(); n > 0 {
			if n > collectCapHint {
				n = collectCapHint
			}
			out = make([]storage.Row, 0, n)
		}
	}
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

// CollectProjectedScan is the fused fast path for the most common batch
// plan shape — Project over plain columns of a filterless scan, optionally
// under a LIMIT: each surviving heap row's projected cells are copied
// straight into the result arena, one copy end-to-end instead of the
// pipeline's transpose into batch columns plus re-transpose into result
// rows. cols lists the projected source column indices in output order,
// limit < 0 means no limit, and chunk is the scan batch size. The heap
// iterator is closed (flushing pager accounting) even on an early LIMIT
// stop.
func CollectProjectedScan(v storage.ReadView, cols []int, limit int64, chunk int) ([]storage.Row, error) {
	if chunk <= 0 {
		chunk = DefaultBatchSize
	}
	it := v.IterateRange(0, v.NumPages())
	defer it.Close()
	total := v.NumRows()
	if limit >= 0 && limit < total {
		total = limit
	}
	w := len(cols)
	capHint := total
	if capHint > collectCapHint {
		capHint = collectCapHint
	}
	out := make([]storage.Row, 0, capHint)
	buf := make([]storage.Row, chunk)

	// A projection over an ascending contiguous column run needs no datum
	// copies at all: every write path replaces stored rows wholesale
	// (Heap.Update swaps the slice; UPDATE and the materializer clone
	// before assigning), so result rows may alias page rows exactly as
	// ReadRows already hands aliases to the row pipeline. This covers
	// SELECT * and any projection in storage order, and skips the arena —
	// the dominant allocation of the hot path.
	contig := w > 0
	for k := 1; k < w; k++ {
		if cols[k] != cols[0]+k {
			contig = false
			break
		}
	}
	if contig {
		c0, c1 := cols[0], cols[0]+w
		for int64(len(out)) < total {
			n := it.ReadRows(buf)
			if n == 0 {
				break
			}
			if rem := total - int64(len(out)); int64(n) > rem {
				n = int(rem)
			}
			for _, r := range buf[:n] {
				out = append(out, r[c0:c1:c1])
			}
		}
		return out, nil
	}

	var arena []types.Datum
	if total*int64(w) <= collectCapHint {
		arena = make([]types.Datum, int(total)*w)
	}
	used := 0
	for int64(len(out)) < total {
		n := it.ReadRows(buf)
		if n == 0 {
			break
		}
		if rem := total - int64(len(out)); int64(n) > rem {
			n = int(rem)
		}
		if len(arena)-used < n*w {
			arena = make([]types.Datum, n*w)
			used = 0
		}
		for _, r := range buf[:n] {
			row := storage.Row(arena[used : used+w : used+w])
			used += w
			for k, c := range cols {
				row[k] = r[c]
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// CollectBatches drains a batch iterator into row-major rows and closes
// it. Rows of each batch are carved out of one arena allocation (one for
// the whole result when the source cardinality is exactly known), so the
// per-row cost is the final transpose alone.
func CollectBatches(it BatchIterator) ([]storage.Row, error) {
	defer it.Close()
	var out []storage.Row
	var arena []types.Datum
	used := 0
	if sh, ok := it.(BatchSizeHinter); ok {
		if n, _ := sh.SizeHint(); n > 0 {
			if n > collectCapHint {
				n = collectCapHint
			}
			out = make([]storage.Row, 0, n)
		}
	}
	hinted := false
	for {
		b, err := it.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		n, w := b.Len(), b.Width()
		need := n * w
		if !hinted {
			hinted = true
			if sh, ok := it.(BatchSizeHinter); ok {
				if total, exact := sh.SizeHint(); exact && total >= int64(n) && total <= collectCapHint {
					arena = make([]types.Datum, int(total)*w)
				}
			}
		}
		if len(arena)-used < need {
			arena = make([]types.Datum, need)
			used = 0
		}
		base := used
		for i := 0; i < n; i++ {
			out = append(out, storage.Row(arena[used:used+w:used+w]))
			used += w
		}
		sel := b.Sel
		for j := 0; j < w; j++ {
			col := b.Cols[j]
			if len(col) < b.PhysLen() {
				continue // column pruned away by the scan: cells stay zero
			}
			for si := 0; si < n; si++ {
				arena[base+si*w+j] = col[selIdx(sel, si)]
			}
		}
	}
}

// ---------- Scan ----------

// ScanIter reads a heap sequentially, applying an optional pushed-down
// filter. DML statements use RowIDScanIter instead, which also reports heap
// addresses.
type ScanIter struct {
	it     *storage.HeapIter
	Filter Expr // may be nil
	nrows  int64
}

// NewScan returns a scan over v with an optional filter.
func NewScan(v storage.ReadView, filter Expr) *ScanIter {
	return &ScanIter{it: v.Iterate(), Filter: filter, nrows: v.NumRows()}
}

// Next implements Iterator.
func (s *ScanIter) Next() (storage.Row, bool, error) {
	for {
		_, row, ok := s.it.Next()
		if !ok {
			return nil, false, nil
		}
		if s.Filter != nil {
			keep, err := EvalBool(s.Filter, row)
			if err != nil {
				return nil, false, err
			}
			if !keep {
				continue
			}
		}
		return row, true, nil
	}
}

// Close implements Iterator: it finalizes the heap iterator so pager byte
// accounting is recorded even when a LIMIT abandons the scan early.
func (s *ScanIter) Close() { s.it.Close() }

// SizeHint implements SizeHinter; exact only for unfiltered scans.
func (s *ScanIter) SizeHint() (int64, bool) {
	if s.Filter != nil {
		return 0, false
	}
	return s.nrows, true
}

// RowIDScanIter scans a heap yielding (row, id) pairs for DML.
type RowIDScanIter struct {
	it     *storage.HeapIter
	Filter Expr
}

// NewRowIDScan returns a scan that also reports row IDs.
//
//lint:ignore sinew/snapshot-pin DML runs under the table write lock and must scan the live heap it is about to mutate, not a stale snapshot
func NewRowIDScan(h *storage.Heap, filter Expr) *RowIDScanIter {
	return &RowIDScanIter{it: h.Iterate(), Filter: filter}
}

// NextWithID returns the next matching row and its heap address.
func (s *RowIDScanIter) NextWithID() (storage.RowID, storage.Row, bool, error) {
	for {
		id, row, ok := s.it.Next()
		if !ok {
			return storage.RowID{}, nil, false, nil
		}
		if s.Filter != nil {
			keep, err := EvalBool(s.Filter, row)
			if err != nil {
				return storage.RowID{}, nil, false, err
			}
			if !keep {
				continue
			}
		}
		return id, row, true, nil
	}
}

// Close finalizes the heap iterator's pager accounting; safe to call more
// than once.
func (s *RowIDScanIter) Close() { s.it.Close() }

// ---------- Filter / Project / Limit ----------

// FilterIter drops rows failing the predicate.
type FilterIter struct {
	In   Iterator
	Pred Expr
}

// Next implements Iterator.
func (f *FilterIter) Next() (storage.Row, bool, error) {
	for {
		row, ok, err := f.In.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		keep, err := EvalBool(f.Pred, row)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return row, true, nil
		}
	}
}

// Close implements Iterator.
func (f *FilterIter) Close() { f.In.Close() }

// ProjectIter evaluates output expressions into fresh rows.
type ProjectIter struct {
	In    Iterator
	Exprs []Expr
}

// Next implements Iterator.
func (p *ProjectIter) Next() (storage.Row, bool, error) {
	row, ok, err := p.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(storage.Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(row)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

// Close implements Iterator.
func (p *ProjectIter) Close() { p.In.Close() }

// SizeHint implements SizeHinter (projection preserves cardinality).
func (p *ProjectIter) SizeHint() (int64, bool) {
	if sh, ok := p.In.(SizeHinter); ok {
		return sh.SizeHint()
	}
	return 0, false
}

// LimitIter stops after N rows.
type LimitIter struct {
	In   Iterator
	N    int64
	seen int64
}

// Next implements Iterator.
func (l *LimitIter) Next() (storage.Row, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	row, ok, err := l.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

// Close implements Iterator.
func (l *LimitIter) Close() { l.In.Close() }

// SizeHint implements SizeHinter: LIMIT caps the child's hint.
func (l *LimitIter) SizeHint() (int64, bool) {
	if sh, ok := l.In.(SizeHinter); ok {
		if n, exact := sh.SizeHint(); exact {
			if n > l.N {
				n = l.N
			}
			return n, true
		}
	}
	return l.N, true
}

// ---------- Sort / Unique ----------

// SortKey is one ordering key for SortIter.
type SortKey struct {
	Expr Expr
	Desc bool
}

// SortIter materializes its input and emits it sorted. NULLs order last
// ascending, first descending (Postgres default).
type SortIter struct {
	In   Iterator
	Keys []SortKey

	rows   []storage.Row
	keys   [][]types.Datum
	pos    int
	sorted bool
	err    error
}

// Next implements Iterator.
func (s *SortIter) Next() (storage.Row, bool, error) {
	if !s.sorted {
		s.materialize()
	}
	if s.err != nil {
		return nil, false, s.err
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

func (s *SortIter) materialize() {
	s.sorted = true
	rows, err := Collect(s.In)
	if err != nil {
		s.err = err
		return
	}
	s.rows = rows
	s.keys = make([][]types.Datum, len(rows))
	for i, r := range rows {
		ks := make([]types.Datum, len(s.Keys))
		for j, k := range s.Keys {
			v, err := k.Expr.Eval(r)
			if err != nil {
				s.err = err
				return
			}
			ks[j] = v
		}
		s.keys[i] = ks
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		if sortErr != nil {
			return false
		}
		ka, kb := s.keys[idx[a]], s.keys[idx[b]]
		for j, k := range s.Keys {
			c, err := compareForSort(ka[j], kb[j], k.Desc)
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		s.err = sortErr
		return
	}
	sortedRows := make([]storage.Row, len(rows))
	sortedKeys := make([][]types.Datum, len(rows))
	for i, ix := range idx {
		sortedRows[i] = s.rows[ix]
		sortedKeys[i] = s.keys[ix]
	}
	s.rows, s.keys = sortedRows, sortedKeys
}

// compareForSort orders a before b (<0) honoring direction and NULL rules.
func compareForSort(a, b types.Datum, desc bool) (int, error) {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0, nil
	case an: // NULLS LAST ascending, FIRST descending (Postgres default)
		if desc {
			return -1, nil
		}
		return 1, nil
	case bn:
		if desc {
			return 1, nil
		}
		return -1, nil
	}
	c, err := types.Compare(a, b)
	if err != nil {
		// Heterogeneous values (multi-typed attributes): order by type tag
		// so sorting is total and deterministic rather than an error.
		c = int(a.Typ) - int(b.Typ)
		err = nil
	}
	if desc {
		c = -c
	}
	return c, err
}

// Close implements Iterator.
func (s *SortIter) Close() { s.In.Close() }

// UniqueIter removes consecutive duplicate rows (input must be sorted on
// the compared columns); Cols selects which leading columns to compare,
// nil meaning all.
type UniqueIter struct {
	In   Iterator
	Cols []int

	started bool
	buf     []byte
	prevKey []byte
}

// Next implements Iterator.
func (u *UniqueIter) Next() (storage.Row, bool, error) {
	for {
		row, ok, err := u.In.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		u.buf = u.buf[:0]
		if u.Cols == nil {
			for _, d := range row {
				u.buf = d.HashKey(u.buf)
			}
		} else {
			for _, i := range u.Cols {
				u.buf = row[i].HashKey(u.buf)
			}
		}
		if u.started && string(u.buf) == string(u.prevKey) {
			continue
		}
		u.started = true
		u.prevKey = append(u.prevKey[:0], u.buf...)
		return row, true, nil
	}
}

// Close implements Iterator.
func (u *UniqueIter) Close() { u.In.Close() }

// ---------- Materialized input helper ----------

// SliceIter replays a materialized row slice.
type SliceIter struct {
	Rows []storage.Row
	pos  int
}

// Next implements Iterator.
func (s *SliceIter) Next() (storage.Row, bool, error) {
	if s.pos >= len(s.Rows) {
		return nil, false, nil
	}
	r := s.Rows[s.pos]
	s.pos++
	return r, true, nil
}

// Close implements Iterator.
func (s *SliceIter) Close() {}

// SizeHint implements SizeHinter.
func (s *SliceIter) SizeHint() (int64, bool) { return int64(len(s.Rows)), true }
