package exec

import (
	"sort"
	"sync"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// This file implements morsel-driven parallel pipelines: each worker runs a
// full SCAN→FILTER→PROJECT(→partial AGGREGATE / JOIN probe) operator chain
// over one contiguous heap page range, and a merge step combines the
// per-worker streams. Three merge strategies exist:
//
//   - ParallelPipelineIter: ordered merge — partition streams are drained
//     in ascending partition order, so the merged stream preserves heap
//     order exactly like the serial pipeline (the property the three-way
//     differential test pins).
//   - ParallelHashAggIter: two-phase aggregation — each worker accumulates
//     a partial hash table; partials merge via aggState.merge in partition
//     order (COUNT/SUM/AVG/MIN/MAX and GROUP BY; DISTINCT stays serial).
//   - ParallelHashJoinIter: shared build table, partitioned probe — the
//     build side is drained once into a read-only hash table, then workers
//     probe their partitions and the match streams merge in partition
//     order.
//
// Cancellation follows ParallelScanIter's discipline: Close signals stop,
// drains the channels so blocked producers can observe it, and waits for
// every worker (each worker closes its own source, flushing partition-
// local pager accounting — no goroutine or byte leaks on early LIMIT or
// error termination).

// PipelineBuild constructs one worker's operator chain over a page range.
// It runs on the worker goroutine; any per-worker scratch state (fused
// extraction kernels, eval contexts) must be created inside it.
type PipelineBuild func(part storage.PageRange) (BatchIterator, error)

// workerBatchPool is one gather worker's private recycling loop for the
// output batches it sends across the merge channel: the merger returns a
// consumed batch to the worker that produced it instead of the global
// sync.Pool, so channel-crossing batches never race with another worker's
// recycling and column capacity stays worker-local. Overflow (or a worker
// that already exited) falls back to the global pool.
type workerBatchPool struct {
	free chan *RowBatch
}

func newWorkerBatchPool() *workerBatchPool {
	return &workerBatchPool{free: make(chan *RowBatch, 4)}
}

// get returns a recycled batch resized to width, or a global-pool batch
// when the local loop is empty.
func (p *workerBatchPool) get(width int) *RowBatch {
	select {
	case b := <-p.free:
		for len(b.Cols) < width {
			b.Cols = append(b.Cols, nil)
			b.Nulls = append(b.Nulls, nil)
		}
		b.Cols = b.Cols[:width]
		b.Nulls = b.Nulls[:width]
		b.Reset()
		return b
	default:
		return GetBatch(width)
	}
}

// put hands a consumed batch back to the worker's loop (global pool when
// full).
func (p *workerBatchPool) put(b *RowBatch) {
	if b == nil {
		return
	}
	select {
	case p.free <- b:
	default:
		PutBatch(b)
	}
}

// releaseBatch returns a merged-stream batch to its producing worker's
// pool, or the global pool for batches without one.
func releaseBatch(b *RowBatch, pool *workerBatchPool) {
	if b == nil {
		return
	}
	if pool != nil {
		pool.put(b)
		return
	}
	PutBatch(b)
}

// cloneBatch deep-copies b into a batch from the worker's pool. Workers
// clone the top-of-pipeline batch before sending it across the merge
// channel, because inner operators (project, multi-extract) recycle their
// output shells and striped scans alias frozen-page vectors. A
// selection-carrying batch is compacted through its selection here, so
// batches crossing the channel are always dense copies.
func cloneBatch(b *RowBatch, pool *workerBatchPool) *RowBatch {
	var out *RowBatch
	if pool != nil {
		out = pool.get(b.Width())
	} else {
		out = GetBatch(b.Width())
	}
	if sel := b.Sel; sel != nil {
		n := b.Len()
		for j := range b.Cols {
			src := b.Cols[j]
			col := out.Cols[j][:0]
			// Pruned columns stay empty, exactly like the dense path.
			if len(src) == b.PhysLen() {
				for si := 0; si < n; si++ {
					col = append(col, src[sel[si]])
				}
			}
			out.SetCol(j, col)
		}
		out.n = n
		return out
	}
	for j := range b.Cols {
		out.Cols[j] = append(out.Cols[j][:0], b.Cols[j]...)
		if cap(out.Nulls[j]) < len(b.Nulls[j]) {
			out.Nulls[j] = make(NullBitmap, len(b.Nulls[j]))
		}
		out.Nulls[j] = out.Nulls[j][:len(b.Nulls[j])]
		copy(out.Nulls[j], b.Nulls[j])
	}
	out.SetLen(b.Len())
	return out
}

// ParallelPipelineIter runs build once per partition on its own goroutine
// and merges the resulting batch streams in ascending partition order.
type ParallelPipelineIter struct {
	parts []chan parallelItem
	stop  chan struct{}
	wg    sync.WaitGroup

	cur      int
	last     *RowBatch
	lastPool *workerBatchPool
	closed   bool
}

// NewParallelPipeline starts one worker per partition. An empty partition
// list yields an immediately exhausted iterator.
func NewParallelPipeline(parts []storage.PageRange, build PipelineBuild) *ParallelPipelineIter {
	p := &ParallelPipelineIter{
		parts: make([]chan parallelItem, len(parts)),
		stop:  make(chan struct{}),
	}
	for i, r := range parts {
		p.parts[i] = make(chan parallelItem, 2)
		p.wg.Add(1)
		go p.worker(i, r, build)
	}
	return p
}

func (p *ParallelPipelineIter) worker(i int, r storage.PageRange, build PipelineBuild) {
	defer p.wg.Done()
	defer close(p.parts[i])
	src, err := build(r)
	if err != nil {
		select {
		case p.parts[i] <- parallelItem{err: err}:
		case <-p.stop:
		}
		return
	}
	defer src.Close()
	pool := newWorkerBatchPool()
	for {
		b, err := src.NextBatch()
		if err != nil {
			select {
			case p.parts[i] <- parallelItem{err: err}:
			case <-p.stop:
			}
			return
		}
		if b == nil {
			return
		}
		out := cloneBatch(b, pool)
		select {
		case p.parts[i] <- parallelItem{b: out, pool: pool}:
		case <-p.stop:
			pool.put(out)
			return
		}
	}
}

// NextBatch implements BatchIterator, draining partitions in ascending
// order. The previously returned batch is recycled, per the BatchIterator
// contract that batches are valid only until the next call.
func (p *ParallelPipelineIter) NextBatch() (*RowBatch, error) {
	if p.last != nil {
		releaseBatch(p.last, p.lastPool)
		p.last, p.lastPool = nil, nil
	}
	for p.cur < len(p.parts) {
		item, ok := <-p.parts[p.cur]
		if !ok {
			p.cur++
			continue
		}
		if item.err != nil {
			return nil, item.err
		}
		p.last, p.lastPool = item.b, item.pool
		return item.b, nil
	}
	return nil, nil
}

// Close implements BatchIterator: signals workers, drains, waits.
func (p *ParallelPipelineIter) Close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.stop)
	for _, ch := range p.parts {
		for range ch { //nolint:revive // drained for effect
		}
	}
	p.wg.Wait()
}

// ParallelHashAggIter is the two-phase parallel hash aggregate: phase one
// runs build + a partial hash-table accumulation per partition worker;
// phase two merges the partial tables in partition order (so first-seen
// semantics — group key values, MIN/MAX first-type rule — match the serial
// heap-order accumulator) and emits groups sorted by encoded key, matching
// HashAggIter/BatchHashAggIter output exactly.
type ParallelHashAggIter struct {
	GroupBy  []Expr
	Aggs     []*AggSpec
	SkipSort bool
	Size     int

	ranges  []storage.PageRange
	build   PipelineBuild
	results []chan aggPartial
	stop    chan struct{}
	wg      sync.WaitGroup

	started bool
	done    bool
	closed  bool
	err     error
	groups  []*aggGroup
	pos     int
	out     *RowBatch
}

type aggPartial struct {
	groups map[string]*aggGroup
	err    error
}

// NewParallelHashAgg prepares (but does not yet start) a two-phase
// aggregation over the given partitions.
func NewParallelHashAgg(parts []storage.PageRange, build PipelineBuild, groupBy []Expr, aggs []*AggSpec, skipSort bool, size int) *ParallelHashAggIter {
	return &ParallelHashAggIter{
		GroupBy:  groupBy,
		Aggs:     aggs,
		SkipSort: skipSort,
		Size:     size,
		ranges:   parts,
		build:    build,
		stop:     make(chan struct{}),
	}
}

func (p *ParallelHashAggIter) start() {
	p.started = true
	p.results = make([]chan aggPartial, len(p.ranges))
	for i, r := range p.ranges {
		p.results[i] = make(chan aggPartial, 1)
		p.wg.Add(1)
		go p.worker(i, r)
	}
}

func (p *ParallelHashAggIter) worker(i int, r storage.PageRange) {
	defer p.wg.Done()
	src, err := p.build(r)
	if err != nil {
		p.results[i] <- aggPartial{err: err}
		return
	}
	groups, err := accumulateGroups(src, p.GroupBy, p.Aggs, p.stop)
	p.results[i] <- aggPartial{groups: groups, err: err}
}

// accumulateGroups drains src into a partial group table — the per-worker
// phase-one loop, identical in semantics to BatchHashAggIter.run. It polls
// stop between batches so abandoned queries terminate promptly.
func accumulateGroups(src BatchIterator, groupBy []Expr, aggs []*AggSpec, stop <-chan struct{}) (map[string]*aggGroup, error) {
	defer src.Close()
	ctx := NewEvalCtx()
	groups := make(map[string]*aggGroup)
	var keyBuf []byte
	keyCols := make([][]types.Datum, len(groupBy))
	argCols := make([][]types.Datum, len(aggs))
	for {
		select {
		case <-stop:
			return groups, nil
		default:
		}
		in, err := src.NextBatch()
		if err != nil {
			return nil, err
		}
		if in == nil {
			return groups, nil
		}
		ctx.BeginBatch()
		for i, g := range groupBy {
			if keyCols[i], err = EvalBatch(g, in, ctx); err != nil {
				return nil, err
			}
		}
		for k, spec := range aggs {
			if spec.Arg == nil || spec.Kind == AggCountStar {
				argCols[k] = nil
				continue
			}
			if argCols[k], err = EvalBatch(spec.Arg, in, ctx); err != nil {
				return nil, err
			}
		}
		n := in.Len()
		sel := in.Sel
		for si := 0; si < n; si++ {
			i := selIdx(sel, si)
			keyBuf = keyBuf[:0]
			for _, col := range keyCols {
				keyBuf = col[i].HashKey(keyBuf)
			}
			grp, ok := groups[string(keyBuf)]
			if !ok {
				keyVals := make([]types.Datum, len(groupBy))
				for j, col := range keyCols {
					keyVals[j] = col[i]
				}
				grp = &aggGroup{keyVals: keyVals, encKey: string(keyBuf)}
				for _, spec := range aggs {
					grp.states = append(grp.states, newAggState(spec))
				}
				groups[grp.encKey] = grp
			}
			for k, st := range grp.states {
				var v types.Datum
				if argCols[k] != nil {
					v = argCols[k][i]
				}
				if err := st.addValue(v); err != nil {
					return nil, err
				}
			}
		}
	}
}

func (p *ParallelHashAggIter) run() {
	p.done = true
	if !p.started {
		p.start()
	}
	merged := make(map[string]*aggGroup)
	// Merge in ascending partition order: a group's key values and MIN/MAX
	// first-seen type come from its earliest partition, as in a serial scan.
	for i := range p.results {
		part := <-p.results[i]
		if part.err != nil && p.err == nil {
			p.err = part.err
		}
		if p.err != nil {
			continue
		}
		for k, g := range part.groups {
			d, ok := merged[k]
			if !ok {
				merged[k] = g
				continue
			}
			for s, st := range d.states {
				if err := st.merge(g.states[s]); err != nil {
					p.err = err
					break
				}
			}
		}
	}
	p.wg.Wait()
	if p.err != nil {
		return
	}
	if len(merged) == 0 && len(p.GroupBy) == 0 {
		grp := &aggGroup{}
		for _, spec := range p.Aggs {
			grp.states = append(grp.states, newAggState(spec))
		}
		merged[""] = grp
	}
	p.groups = make([]*aggGroup, 0, len(merged))
	for _, g := range merged {
		p.groups = append(p.groups, g)
	}
	if !p.SkipSort {
		sort.Slice(p.groups, func(a, b int) bool { return p.groups[a].encKey < p.groups[b].encKey })
	}
}

// NextBatch implements BatchIterator.
func (p *ParallelHashAggIter) NextBatch() (*RowBatch, error) {
	if !p.done {
		p.run()
	}
	if p.err != nil {
		return nil, p.err
	}
	if p.pos >= len(p.groups) {
		return nil, nil
	}
	size := p.Size
	if size <= 0 {
		size = DefaultBatchSize
	}
	width := len(p.GroupBy) + len(p.Aggs)
	if p.out == nil {
		p.out = NewRowBatch(width, size)
	}
	b := p.out
	b.Reset()
	row := make([]types.Datum, 0, width)
	for b.Len() < size && p.pos < len(p.groups) {
		g := p.groups[p.pos]
		p.pos++
		row = row[:0]
		row = append(row, g.keyVals...)
		for _, st := range g.states {
			row = append(row, st.result())
		}
		b.AppendRow(row)
	}
	if b.Len() == 0 {
		return nil, nil
	}
	return b, nil
}

// Close implements BatchIterator. Safe before, during, and after run.
func (p *ParallelHashAggIter) Close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.stop)
	if p.started && !p.done {
		// Drain pending partials so workers can exit, then wait.
		for i := range p.results {
			select {
			case <-p.results[i]:
			default:
			}
		}
	}
	p.wg.Wait()
}

// ParallelHashJoinIter is an inner equi-join with a shared build table and
// partitioned probe: the build side is drained once (serially — it may
// itself be a parallel gather) into a hash table, then partition workers
// run the probe-side pipeline over their page ranges and emit joined rows.
// Semantics match HashJoinIter exactly: output rows are probeRow ++
// buildRow, NULL keys never match, and Residual is checked on joined rows.
type ParallelHashJoinIter struct {
	Build     Iterator
	ProbeKeys []Expr
	BuildKeys []Expr
	Residual  Expr
	Size      int

	ranges     []storage.PageRange
	buildFn    PipelineBuild
	outWidth   int
	buildWidth int

	table   *joinBuildTable
	started bool

	parts    []chan parallelItem
	stop     chan struct{}
	wg       sync.WaitGroup
	cur      int
	last     *RowBatch
	lastPool *workerBatchPool
	closed   bool
	err      error
}

// NewParallelHashJoin prepares a partitioned-probe join. outWidth is the
// joined row width (probe width + build width) and buildWidth the build
// side's column count.
func NewParallelHashJoin(parts []storage.PageRange, probe PipelineBuild, build Iterator, probeKeys, buildKeys []Expr, residual Expr, size, outWidth, buildWidth int) *ParallelHashJoinIter {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &ParallelHashJoinIter{
		Build:      build,
		ProbeKeys:  probeKeys,
		BuildKeys:  buildKeys,
		Residual:   residual,
		Size:       size,
		ranges:     parts,
		buildFn:    probe,
		outWidth:   outWidth,
		buildWidth: buildWidth,
		stop:       make(chan struct{}),
	}
}

func (p *ParallelHashJoinIter) buildTable() error {
	p.table = newJoinBuildTable(p.buildWidth)
	return p.table.addRows(p.Build, p.BuildKeys)
}

func (p *ParallelHashJoinIter) start() {
	p.started = true
	if err := p.buildTable(); err != nil {
		p.err = err
		return
	}
	p.parts = make([]chan parallelItem, len(p.ranges))
	for i, r := range p.ranges {
		p.parts[i] = make(chan parallelItem, 2)
		p.wg.Add(1)
		go p.worker(i, r)
	}
}

func (p *ParallelHashJoinIter) worker(i int, r storage.PageRange) {
	defer p.wg.Done()
	defer close(p.parts[i])
	src, err := p.buildFn(r)
	if err != nil {
		select {
		case p.parts[i] <- parallelItem{err: err}:
		case <-p.stop:
		}
		return
	}
	defer src.Close()
	ctx := NewEvalCtx()
	keyCols := make([][]types.Datum, len(p.ProbeKeys))
	var keyBuf []byte
	var rowBuf, joined storage.Row
	pool := newWorkerBatchPool()
	ob := pool.get(p.outWidth)
	send := func() bool {
		if ob.Len() == 0 {
			return true
		}
		select {
		case p.parts[i] <- parallelItem{b: ob, pool: pool}:
			ob = pool.get(p.outWidth)
			return true
		case <-p.stop:
			pool.put(ob)
			ob = nil
			return false
		}
	}
	fail := func(err error) {
		if ob != nil {
			pool.put(ob)
			ob = nil
		}
		select {
		case p.parts[i] <- parallelItem{err: err}:
		case <-p.stop:
		}
	}
	for {
		in, err := src.NextBatch()
		if err != nil {
			fail(err)
			return
		}
		if in == nil {
			send()
			if ob != nil {
				pool.put(ob)
			}
			return
		}
		ctx.BeginBatch()
		for k, ke := range p.ProbeKeys {
			if keyCols[k], err = EvalBatch(ke, in, ctx); err != nil {
				fail(err)
				return
			}
		}
		n := in.Len()
		sel := in.Sel
		for si := 0; si < n; si++ {
			r := selIdx(sel, si)
			keyBuf = keyBuf[:0]
			null := false
			for _, col := range keyCols {
				if col[r].IsNull() {
					null = true
					break
				}
				keyBuf = col[r].HashKey(keyBuf)
			}
			if null {
				continue
			}
			matches := p.table.idx[string(keyBuf)]
			if len(matches) == 0 {
				continue
			}
			rowBuf = in.Row(r, rowBuf)
			for _, bid := range matches {
				// Joined rows assemble in one reused scratch; AppendRow
				// copies its cells into the output columns, so no per-match
				// storage.Row is ever allocated.
				joined = append(joined[:0], rowBuf...)
				joined = p.table.appendTo(joined, bid)
				if p.Residual != nil {
					keep, err := EvalBool(p.Residual, joined)
					if err != nil {
						fail(err)
						return
					}
					if !keep {
						continue
					}
				}
				ob.AppendRow(joined)
				if ob.Len() >= p.Size {
					if !send() {
						return
					}
				}
			}
		}
	}
}

// NextBatch implements BatchIterator, merging partitions in ascending
// order so output order matches the serial HashJoinIter probe order.
func (p *ParallelHashJoinIter) NextBatch() (*RowBatch, error) {
	if !p.started {
		p.start()
	}
	if p.err != nil {
		return nil, p.err
	}
	if p.last != nil {
		releaseBatch(p.last, p.lastPool)
		p.last, p.lastPool = nil, nil
	}
	for p.cur < len(p.parts) {
		item, ok := <-p.parts[p.cur]
		if !ok {
			p.cur++
			continue
		}
		if item.err != nil {
			return nil, item.err
		}
		p.last, p.lastPool = item.b, item.pool
		return item.b, nil
	}
	return nil, nil
}

// Close implements BatchIterator.
func (p *ParallelHashJoinIter) Close() {
	if p.closed {
		return
	}
	p.closed = true
	if !p.started {
		p.Build.Close()
	}
	close(p.stop)
	for _, ch := range p.parts {
		for range ch { //nolint:revive // drained for effect
		}
	}
	p.wg.Wait()
}
