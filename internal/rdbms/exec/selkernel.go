package exec

import (
	"fmt"

	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// This file compiles the common conjunct shapes of a SelFilter — a column
// compared against a constant, BETWEEN two constants, or IS NULL — into
// direct kernels that walk the page's column vector once and write the
// keep mask in place. The generic EvalPredBatch path materializes a
// broadcast column per constant and a result column per node, copying
// ~100-byte datums at every step; for the single-conjunct scans that
// dominate point and range queries those allocations are most of the scan
// cost. A kernel touches only the datums the selection references and
// allocates nothing.
//
// Semantics contract: a kernel must drop exactly the rows EvalPredBatch
// would drop (NULL and FALSE) and must fail on exactly the predicates the
// generic path would fail on (incomparable types). A kernel error does not
// need to reproduce the row path's error value: evalConjuncts replays the
// page through the original conjunction on any error, and that outcome is
// authoritative.

// selKernelFn evaluates one compiled conjunct against the scan's view
// batch, writing keep[si] for each logical row si (mapped through
// view.Sel). Any error sends the page to the replay path.
type selKernelFn func(view *RowBatch, keep []bool) error

// compileSelKernel returns a direct kernel for pred, or nil when the shape
// is not recognized and the conjunct must evaluate through EvalPredBatch.
// pred is the rewritten conjunct: extraction atoms are already slot
// ColExprs, so kernels cover extraction predicates too.
func compileSelKernel(pred Expr) selKernelFn {
	switch x := pred.(type) {
	case *BinExpr:
		switch x.Op {
		case "=", "<>", "<", "<=", ">", ">=":
		default:
			return nil
		}
		if col, ok := x.L.(*ColExpr); ok {
			if c, ok := x.R.(*ConstExpr); ok {
				return cmpKernel(x.Op, col.Idx, c.Val, false)
			}
		}
		if col, ok := x.R.(*ColExpr); ok {
			if c, ok := x.L.(*ConstExpr); ok {
				return cmpKernel(x.Op, col.Idx, c.Val, true)
			}
		}
	case *BetweenExpr:
		col, okX := x.X.(*ColExpr)
		lo, okLo := x.Lo.(*ConstExpr)
		hi, okHi := x.Hi.(*ConstExpr)
		if okX && okLo && okHi {
			return betweenKernel(col.Idx, lo.Val, hi.Val, x.Not)
		}
	case *IsNullExpr:
		if col, ok := x.X.(*ColExpr); ok {
			return isNullKernel(col.Idx, x.Not)
		}
	}
	return nil
}

// cmpSel mirrors types.Compare on datum pointers, without the by-value
// copies: -1/0/+1 for comparable non-NULL datums, ok=false when the pair
// is incomparable (the caller errors into replay, where types.Compare
// produces the canonical error). Array comparison is delegated — it
// recurses and is never hot.
func cmpSel(a, b *types.Datum) (int, bool) {
	at, bt := a.Typ, b.Typ
	if at == types.Int && bt == types.Int {
		switch {
		case a.I < b.I:
			return -1, true
		case a.I > b.I:
			return 1, true
		}
		return 0, true
	}
	anum := at == types.Int || at == types.Float
	bnum := bt == types.Int || bt == types.Float
	if anum && bnum {
		af, bf := a.F, b.F
		if at == types.Int {
			af = float64(a.I)
		}
		if bt == types.Int {
			bf = float64(b.I)
		}
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		}
		return 0, true
	}
	if at != bt {
		return 0, false
	}
	switch at {
	case types.Bool:
		switch {
		case !a.B && b.B:
			return -1, true
		case a.B && !b.B:
			return 1, true
		}
		return 0, true
	case types.Text:
		switch {
		case a.S < b.S:
			return -1, true
		case a.S > b.S:
			return 1, true
		}
		return 0, true
	case types.Array:
		if c, err := types.Compare(*a, *b); err == nil {
			return c, true
		}
		return 0, false
	default:
		// Bytes and anything newer keep the generic path: incomparable
		// here only means "replay", never a wrong answer.
		return 0, false
	}
}

// errSelKernelCmp is the replay trigger for incomparable operands. Never
// surfaced: the replay pass reproduces the row path's own error.
var errSelKernelCmp = fmt.Errorf("exec: selection kernel: incomparable operands")

// cmpKernel compiles `col <op> const` (flip reverses the operand order).
// A NULL constant makes every comparison NULL, which the predicate mask
// drops — the kernel short-circuits to an all-false mask.
func cmpKernel(op string, idx int, val types.Datum, flip bool) selKernelFn {
	var lt, eq, gt bool // mask outcome by comparison sign
	switch op {
	case "=":
		eq = true
	case "<>":
		lt, gt = true, true
	case "<":
		lt = true
	case "<=":
		lt, eq = true, true
	case ">":
		gt = true
	case ">=":
		gt, eq = true, true
	}
	if flip {
		lt, gt = gt, lt
	}
	constNull := val.IsNull()
	return func(view *RowBatch, keep []bool) error {
		vals := view.Cols[idx]
		sel := view.Sel
		n := view.Len()
		if constNull {
			for si := 0; si < n; si++ {
				keep[si] = false
			}
			return nil
		}
		if val.Typ == types.Text {
			// Point probes over text columns (the common dictionary-string
			// equality) compare inline; rows of any other type replay.
			for si := 0; si < n; si++ {
				d := &vals[selIdx(sel, si)]
				if d.IsNull() {
					keep[si] = false
					continue
				}
				if d.Typ != types.Text {
					return errSelKernelCmp
				}
				switch {
				case d.S == val.S:
					keep[si] = eq
				case d.S < val.S:
					keep[si] = lt
				default:
					keep[si] = gt
				}
			}
			return nil
		}
		for si := 0; si < n; si++ {
			d := &vals[selIdx(sel, si)]
			if d.IsNull() {
				keep[si] = false
				continue
			}
			c, ok := cmpSel(d, &val)
			if !ok {
				return errSelKernelCmp
			}
			switch {
			case c < 0:
				keep[si] = lt
			case c > 0:
				keep[si] = gt
			default:
				keep[si] = eq
			}
		}
		return nil
	}
}

// betweenKernel compiles `col [NOT] BETWEEN lo AND hi` with BetweenExpr's
// three-valued semantics: a definitely-false bound yields NOT (so NOT
// BETWEEN keeps the row), any remaining NULL bound yields NULL (dropped).
func betweenKernel(idx int, lo, hi types.Datum, not bool) selKernelFn {
	loNull, hiNull := lo.IsNull(), hi.IsNull()
	return func(view *RowBatch, keep []bool) error {
		vals := view.Cols[idx]
		sel := view.Sel
		n := view.Len()
		for si := 0; si < n; si++ {
			d := &vals[selIdx(sel, si)]
			var geLo, leHi, geLoNull, leHiNull bool
			if loNull || d.IsNull() {
				geLoNull = true
			} else {
				c, ok := cmpSel(d, &lo)
				if !ok {
					return errSelKernelCmp
				}
				geLo = c >= 0
			}
			if hiNull || d.IsNull() {
				leHiNull = true
			} else {
				c, ok := cmpSel(d, &hi)
				if !ok {
					return errSelKernelCmp
				}
				leHi = c <= 0
			}
			switch {
			case geLoNull || leHiNull:
				if (!geLoNull && !geLo) || (!leHiNull && !leHi) {
					keep[si] = not
				} else {
					keep[si] = false // NULL
				}
			default:
				keep[si] = (geLo && leHi) != not
			}
		}
		return nil
	}
}

// isNullKernel compiles `col IS [NOT] NULL`.
func isNullKernel(idx int, not bool) selKernelFn {
	return func(view *RowBatch, keep []bool) error {
		vals := view.Cols[idx]
		sel := view.Sel
		n := view.Len()
		for si := 0; si < n; si++ {
			keep[si] = vals[selIdx(sel, si)].IsNull() != not
		}
		return nil
	}
}
