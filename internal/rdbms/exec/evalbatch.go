package exec

import (
	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// EvalCtx carries the reusable scratch state for batch expression
// evaluation: a scratch row for the row-wise fallback, a shared per-batch
// UDF cache, and an argument buffer for non-batch function calls. One
// EvalCtx belongs to one operator; it is not safe for concurrent use.
type EvalCtx struct {
	udf     UDFBatchCtx
	scratch storage.Row
	argBuf  []types.Datum
	// consts caches the broadcast column of each ConstExpr node across
	// batches (its content never changes), so constant arguments cost one
	// allocation per query instead of one per batch.
	consts map[*ConstExpr][]types.Datum
	// predCol is a scratch result column armed by EvalPredBatch and
	// consumed by at most one evalBatchFallback per predicate evaluation.
	// Predicate columns are reduced to a keep mask immediately, so reusing
	// the buffer across batches is safe there — but nowhere else: project
	// results are retained as output columns.
	predCol      []types.Datum
	predColArmed bool
}

// NewEvalCtx returns a fresh evaluation context.
func NewEvalCtx() *EvalCtx {
	return &EvalCtx{udf: UDFBatchCtx{Cache: make(map[any]any)}}
}

// BeginBatch resets per-batch state. Operators call it once before the
// EvalBatch calls of each input batch, so UDF cache entries never outlive
// the batch whose data they were derived from.
func (c *EvalCtx) BeginBatch() {
	clear(c.udf.Cache)
}

// EvalBatch evaluates e over every row of b and returns the result column.
//
// Nodes with eager evaluation semantics (comparisons, arithmetic, concat,
// NOT, negation, IS NULL, BETWEEN, LIKE, CAST, function calls) are walked
// once per batch: each child is materialized as a full column, then a tight
// loop combines them. Nodes with lazy/short-circuit semantics (AND, OR,
// COALESCE, IN-list, ANY) fall back to row-wise Eval inside the batch so
// that skipped operands are truly not evaluated — same values, same errors,
// same side-effect ordering as the Volcano path.
//
// The returned slice may alias a column of b (ColExpr is free); callers
// must copy before mutating. On error the first failing row in row order —
// of the first failing child, for eager nodes — is reported.
//
// Result columns are physically indexed: they hold PhysLen entries and
// only the positions a selection vector references are written, so parent
// nodes index them exactly like columns of b. Rows outside the selection
// are never evaluated.
func EvalBatch(e Expr, b *RowBatch, ctx *EvalCtx) ([]types.Datum, error) {
	n := b.Len()
	sel := b.Sel
	phys := b.PhysLen()
	switch x := e.(type) {
	case *ColExpr:
		return b.Cols[x.Idx], nil

	case *ConstExpr:
		if ctx.consts == nil {
			ctx.consts = make(map[*ConstExpr][]types.Datum)
		}
		col := ctx.consts[x]
		if len(col) < phys {
			col = make([]types.Datum, phys)
			for i := range col {
				col[i] = x.Val
			}
			ctx.consts[x] = col
		}
		return col[:phys], nil

	case *BinExpr:
		if x.Op == "AND" || x.Op == "OR" {
			return evalBatchFallback(e, b, ctx)
		}
		l, err := EvalBatch(x.L, b, ctx)
		if err != nil {
			return nil, err
		}
		r, err := EvalBatch(x.R, b, ctx)
		if err != nil {
			return nil, err
		}
		out := make([]types.Datum, phys)
		switch x.Op {
		case "=", "<>", "<", "<=", ">", ">=":
			for si := 0; si < n; si++ {
				i := selIdx(sel, si)
				if out[i], err = evalComparison(x.Op, l[i], r[i]); err != nil {
					return nil, err
				}
			}
		case "||":
			for si := 0; si < n; si++ {
				i := selIdx(sel, si)
				if l[i].IsNull() || r[i].IsNull() {
					out[i] = types.NewNull(types.Text)
					continue
				}
				ls, err := types.Cast(l[i], types.Text)
				if err != nil {
					return nil, err
				}
				rs, err := types.Cast(r[i], types.Text)
				if err != nil {
					return nil, err
				}
				out[i] = types.NewText(ls.S + rs.S)
			}
		default:
			for si := 0; si < n; si++ {
				i := selIdx(sel, si)
				if out[i], err = evalArith(x.Op, l[i], r[i]); err != nil {
					return nil, err
				}
			}
		}
		return out, nil

	case *NotExpr:
		in, err := EvalBatch(x.X, b, ctx)
		if err != nil {
			return nil, err
		}
		out := make([]types.Datum, phys)
		for si := 0; si < n; si++ {
			i := selIdx(sel, si)
			t, isNull, err := truth(in[i])
			if err != nil {
				return nil, err
			}
			if isNull {
				out[i] = types.NewNull(types.Bool)
			} else {
				out[i] = types.NewBool(!t)
			}
		}
		return out, nil

	case *NegExpr:
		in, err := EvalBatch(x.X, b, ctx)
		if err != nil {
			return nil, err
		}
		out := make([]types.Datum, phys)
		for si := 0; si < n; si++ {
			i := selIdx(sel, si)
			v := in[i]
			switch {
			case v.IsNull():
				out[i] = v
			case v.Typ == types.Int:
				out[i] = types.NewInt(-v.I)
			case v.Typ == types.Float:
				out[i] = types.NewFloat(-v.F)
			default:
				// Rebuild the row-path error via single-row Eval.
				_, err := e.Eval(b.Row(i, ctx.scratchRow()))
				return nil, err
			}
		}
		return out, nil

	case *IsNullExpr:
		in, err := EvalBatch(x.X, b, ctx)
		if err != nil {
			return nil, err
		}
		out := make([]types.Datum, phys)
		for si := 0; si < n; si++ {
			i := selIdx(sel, si)
			out[i] = types.NewBool(in[i].IsNull() != x.Not)
		}
		return out, nil

	case *BetweenExpr:
		xs, err := EvalBatch(x.X, b, ctx)
		if err != nil {
			return nil, err
		}
		lo, err := EvalBatch(x.Lo, b, ctx)
		if err != nil {
			return nil, err
		}
		hi, err := EvalBatch(x.Hi, b, ctx)
		if err != nil {
			return nil, err
		}
		out := make([]types.Datum, phys)
		for si := 0; si < n; si++ {
			i := selIdx(sel, si)
			geLo, err := evalComparison(">=", xs[i], lo[i])
			if err != nil {
				return nil, err
			}
			leHi, err := evalComparison("<=", xs[i], hi[i])
			if err != nil {
				return nil, err
			}
			switch {
			case geLo.IsNull() || leHi.IsNull():
				if (!geLo.IsNull() && !geLo.B) || (!leHi.IsNull() && !leHi.B) {
					out[i] = types.NewBool(x.Not)
				} else {
					out[i] = types.NewNull(types.Bool)
				}
			default:
				out[i] = types.NewBool((geLo.B && leHi.B) != x.Not)
			}
		}
		return out, nil

	case *LikeExpr:
		xs, err := EvalBatch(x.X, b, ctx)
		if err != nil {
			return nil, err
		}
		ps, err := EvalBatch(x.Pattern, b, ctx)
		if err != nil {
			return nil, err
		}
		out := make([]types.Datum, phys)
		for si := 0; si < n; si++ {
			i := selIdx(sel, si)
			if xs[i].IsNull() || ps[i].IsNull() {
				out[i] = types.NewNull(types.Bool)
				continue
			}
			xv, err := types.Cast(xs[i], types.Text)
			if err != nil {
				return nil, err
			}
			pv, err := types.Cast(ps[i], types.Text)
			if err != nil {
				return nil, err
			}
			rx, err := x.compiled(pv.S)
			if err != nil {
				return nil, err
			}
			out[i] = types.NewBool(rx.MatchString(xv.S) != x.Not)
		}
		return out, nil

	case *CastExpr:
		in, err := EvalBatch(x.X, b, ctx)
		if err != nil {
			return nil, err
		}
		out := make([]types.Datum, phys)
		for si := 0; si < n; si++ {
			i := selIdx(sel, si)
			if out[i], err = types.Cast(in[i], x.To); err != nil {
				return nil, err
			}
		}
		return out, nil

	case *CallExpr:
		cols := make([][]types.Datum, len(x.Args))
		for k, a := range x.Args {
			col, err := EvalBatch(a, b, ctx)
			if err != nil {
				return nil, err
			}
			cols[k] = col
		}
		out := make([]types.Datum, phys)
		if x.Def.EvalBatch != nil && sel == nil {
			// Vectorized UDFs see whole argument columns; on a
			// selection-carrying batch they would evaluate (and could fail
			// on) deselected rows, so those batches take the per-row loop.
			if err := x.Def.EvalBatch(&ctx.udf, cols, out); err != nil {
				return nil, err
			}
			return out, nil
		}
		args := ctx.args(len(x.Args))
		for si := 0; si < n; si++ {
			i := selIdx(sel, si)
			for k := range cols {
				args[k] = cols[k][i]
			}
			v, err := x.Def.Eval(args)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil

	default:
		// AND/OR arrive here too (dispatched above): lazy semantics —
		// evaluate row-wise so short-circuiting skips operands exactly as
		// the row pipeline would. Likewise CoalesceExpr, InListExpr,
		// AnyExpr, and any Expr this switch does not know.
		return evalBatchFallback(e, b, ctx)
	}
}

// evalBatchFallback evaluates e row by row against the batch — the lazy
// path that preserves short-circuit semantics.
func evalBatchFallback(e Expr, b *RowBatch, ctx *EvalCtx) ([]types.Datum, error) {
	n := b.Len()
	sel := b.Sel
	phys := b.PhysLen()
	var out []types.Datum
	if ctx.predColArmed {
		// Predicate evaluation: the result is folded into a keep mask
		// before the next EvalBatch on this ctx, so a reused scratch
		// column is safe. One consumer per predicate — a nested operand
		// result must survive while its parent node computes.
		ctx.predColArmed = false
		if cap(ctx.predCol) < phys {
			ctx.predCol = make([]types.Datum, phys)
		}
		out = ctx.predCol[:phys]
	} else {
		out = make([]types.Datum, phys)
	}
	row := ctx.scratchRow()
	for si := 0; si < n; si++ {
		i := selIdx(sel, si)
		row = b.Row(i, row)
		v, err := e.Eval(row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	ctx.scratch = row
	return out, nil
}

// EvalPredBatch evaluates pred over the batch as a selection mask: keep[si]
// is true when the predicate is TRUE for logical row si (NULL and FALSE
// both drop the row, matching EvalBool). The mask is logically indexed —
// keep[si] pairs with b.Sel[si] on a selection-carrying batch. The keep
// buffer is reused when large enough.
func EvalPredBatch(pred Expr, b *RowBatch, ctx *EvalCtx, keep []bool) ([]bool, error) {
	n := b.Len()
	sel := b.Sel
	ctx.predColArmed = true
	col, err := EvalBatch(pred, b, ctx)
	ctx.predColArmed = false
	if err != nil {
		return nil, err
	}
	if cap(keep) < n {
		keep = make([]bool, n)
	}
	keep = keep[:n]
	for si := 0; si < n; si++ {
		t, isNull, err := truth(col[selIdx(sel, si)])
		if err != nil {
			return nil, err
		}
		keep[si] = t && !isNull
	}
	return keep, nil
}

func (c *EvalCtx) scratchRow() storage.Row { return c.scratch }

func (c *EvalCtx) args(n int) []types.Datum {
	if cap(c.argBuf) < n {
		c.argBuf = make([]types.Datum, n)
	}
	return c.argBuf[:n]
}
