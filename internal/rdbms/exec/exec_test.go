package exec

import (
	"testing"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

func col(i int, t types.Type) Expr      { return &ColExpr{Idx: i, Typ: t, Name: "c"} }
func lit(d types.Datum) Expr            { return &ConstExpr{Val: d} }
func row(ds ...types.Datum) storage.Row { return storage.Row(ds) }

func evalOn(t *testing.T, e Expr, r storage.Row) types.Datum {
	t.Helper()
	v, err := e.Eval(r)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return v
}

func TestComparisonThreeValuedLogic(t *testing.T) {
	eq := &BinExpr{Op: "=", L: col(0, types.Int), R: lit(types.NewInt(5))}
	if v := evalOn(t, eq, row(types.NewInt(5))); !v.B {
		t.Error("5 = 5 should be true")
	}
	if v := evalOn(t, eq, row(types.NewInt(6))); v.B {
		t.Error("6 = 5 should be false")
	}
	if v := evalOn(t, eq, row(types.NewNull(types.Int))); !v.IsNull() {
		t.Error("NULL = 5 should be NULL")
	}
}

func TestCrossTypeNumericComparison(t *testing.T) {
	eq := &BinExpr{Op: "=", L: lit(types.NewInt(2)), R: lit(types.NewFloat(2.0))}
	if v := evalOn(t, eq, nil); !v.B {
		t.Error("2 = 2.0 should be true in SQL")
	}
	lt := &BinExpr{Op: "<", L: lit(types.NewFloat(1.5)), R: lit(types.NewInt(2))}
	if v := evalOn(t, lt, nil); !v.B {
		t.Error("1.5 < 2 should be true")
	}
}

func TestIncomparableTypesError(t *testing.T) {
	gt := &BinExpr{Op: ">", L: lit(types.NewText("x")), R: lit(types.NewInt(1))}
	if _, err := gt.Eval(nil); err == nil {
		t.Error("text > int should error")
	}
}

func TestLogicalKleene(t *testing.T) {
	null := lit(types.NewNull(types.Bool))
	tru := lit(types.NewBool(true))
	fal := lit(types.NewBool(false))
	cases := []struct {
		op   string
		l, r Expr
		want string // "t", "f", "n"
	}{
		{"AND", tru, tru, "t"}, {"AND", tru, fal, "f"}, {"AND", fal, null, "f"},
		{"AND", null, fal, "f"}, {"AND", tru, null, "n"}, {"AND", null, null, "n"},
		{"OR", fal, fal, "f"}, {"OR", fal, tru, "t"}, {"OR", tru, null, "t"},
		{"OR", null, tru, "t"}, {"OR", fal, null, "n"}, {"OR", null, null, "n"},
	}
	for _, c := range cases {
		v := evalOn(t, &BinExpr{Op: c.op, L: c.l, R: c.r}, nil)
		got := "n"
		if !v.IsNull() {
			if v.B {
				got = "t"
			} else {
				got = "f"
			}
		}
		if got != c.want {
			t.Errorf("%s %s %s = %s, want %s", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestShortCircuitSkipsErrors(t *testing.T) {
	// FALSE AND <error> must not evaluate the error side.
	bad := &BinExpr{Op: ">", L: lit(types.NewText("x")), R: lit(types.NewInt(1))}
	and := &BinExpr{Op: "AND", L: lit(types.NewBool(false)), R: bad}
	if v := evalOn(t, and, nil); v.B {
		t.Error("FALSE AND err should be false")
	}
	or := &BinExpr{Op: "OR", L: lit(types.NewBool(true)), R: bad}
	if v := evalOn(t, or, nil); !v.B {
		t.Error("TRUE OR err should be true")
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		op   string
		l, r types.Datum
		want types.Datum
	}{
		{"+", types.NewInt(2), types.NewInt(3), types.NewInt(5)},
		{"-", types.NewInt(2), types.NewInt(3), types.NewInt(-1)},
		{"*", types.NewInt(4), types.NewInt(3), types.NewInt(12)},
		{"/", types.NewInt(7), types.NewInt(2), types.NewInt(3)}, // integer division
		{"%", types.NewInt(7), types.NewInt(2), types.NewInt(1)},
		{"+", types.NewInt(1), types.NewFloat(0.5), types.NewFloat(1.5)},
		{"/", types.NewFloat(7), types.NewInt(2), types.NewFloat(3.5)},
	}
	for _, c := range cases {
		v := evalOn(t, &BinExpr{Op: c.op, L: lit(c.l), R: lit(c.r)}, nil)
		if !types.Equal(v, c.want) || v.Typ != c.want.Typ {
			t.Errorf("%v %s %v = %v, want %v", c.l, c.op, c.r, v, c.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	for _, r := range []types.Datum{types.NewInt(0), types.NewFloat(0)} {
		d := &BinExpr{Op: "/", L: lit(types.NewInt(1)), R: lit(r)}
		if _, err := d.Eval(nil); err == nil {
			t.Errorf("1 / %v should error", r)
		}
	}
}

func TestLikeMatching(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "H%", false}, // case sensitive
		{"hello", "%x%", false},
		{"a.b", "a.b", true},
		{"axb", "a.b", false}, // dot is literal
		{"100%", `100\%`, true},
		{"multi\nline", "multi%", true},
	}
	for _, c := range cases {
		e := &LikeExpr{X: lit(types.NewText(c.s)), Pattern: lit(types.NewText(c.pat))}
		if v := evalOn(t, e, nil); v.B != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.pat, v.B, c.want)
		}
	}
}

func TestInListNullSemantics(t *testing.T) {
	// 3 IN (1, 2, NULL) is NULL (unknown), not false.
	in := &InListExpr{X: lit(types.NewInt(3)), List: []Expr{
		lit(types.NewInt(1)), lit(types.NewInt(2)), lit(types.NewNull(types.Int)),
	}}
	if v := evalOn(t, in, nil); !v.IsNull() {
		t.Errorf("3 IN (1,2,NULL) = %v, want NULL", v)
	}
	// 2 IN (1, 2, NULL) is true.
	in2 := &InListExpr{X: lit(types.NewInt(2)), List: []Expr{
		lit(types.NewInt(1)), lit(types.NewInt(2)), lit(types.NewNull(types.Int)),
	}}
	if v := evalOn(t, in2, nil); !v.B {
		t.Errorf("2 IN (1,2,NULL) = %v, want true", v)
	}
}

func TestAnyHeterogeneousArray(t *testing.T) {
	arr := lit(types.NewArray(types.NewText("x"), types.NewInt(5), types.NewBool(true)))
	// Probing for int 5 skips the incomparable string element.
	e := &AnyExpr{X: lit(types.NewInt(5)), Op: "=", Array: arr}
	if v := evalOn(t, e, nil); !v.B {
		t.Error("5 = ANY({x,5,true}) should be true")
	}
	e2 := &AnyExpr{X: lit(types.NewInt(9)), Op: "=", Array: arr}
	if v := evalOn(t, e2, nil); v.B {
		t.Error("9 = ANY({x,5,true}) should be false")
	}
}

func TestCoalesceLazy(t *testing.T) {
	// A trap argument that errors when evaluated.
	trap := &BinExpr{Op: ">", L: lit(types.NewText("boom")), R: lit(types.NewInt(1))}
	c := &CoalesceExpr{Args: []Expr{lit(types.NewInt(7)), trap}}
	if v := evalOn(t, c, nil); v.I != 7 {
		t.Errorf("coalesce = %v", v)
	}
	// First NULL falls through.
	c2 := &CoalesceExpr{Args: []Expr{lit(types.NewNull(types.Int)), lit(types.NewInt(9))}}
	if v := evalOn(t, c2, nil); v.I != 9 {
		t.Errorf("coalesce = %v", v)
	}
	// All NULL stays NULL.
	c3 := &CoalesceExpr{Args: []Expr{lit(types.NewNull(types.Int))}}
	if v := evalOn(t, c3, nil); !v.IsNull() {
		t.Errorf("coalesce = %v", v)
	}
}

// ---------- operators ----------

func sliceIter(rows ...storage.Row) Iterator { return &SliceIter{Rows: rows} }

func TestSortIterNullsAndDirections(t *testing.T) {
	in := sliceIter(
		row(types.NewInt(3)), row(types.NewNull(types.Int)),
		row(types.NewInt(1)), row(types.NewInt(2)),
	)
	s := &SortIter{In: in, Keys: []SortKey{{Expr: col(0, types.Int)}}}
	rows, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	// ASC: 1 2 3 NULL (nulls last).
	if rows[0][0].I != 1 || !rows[3][0].IsNull() {
		t.Errorf("asc rows = %v", rows)
	}
	s2 := &SortIter{In: sliceIter(
		row(types.NewInt(3)), row(types.NewNull(types.Int)), row(types.NewInt(1)),
	), Keys: []SortKey{{Expr: col(0, types.Int), Desc: true}}}
	rows, _ = Collect(s2)
	// DESC: NULL 3 1 (nulls first).
	if !rows[0][0].IsNull() || rows[1][0].I != 3 {
		t.Errorf("desc rows = %v", rows)
	}
}

func TestHashAggScalarOverEmpty(t *testing.T) {
	agg := &HashAggIter{In: sliceIter(), Aggs: []*AggSpec{{Kind: AggCountStar}}}
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].I != 0 {
		t.Errorf("COUNT(*) over empty = %v", rows)
	}
}

func TestHashAggGroups(t *testing.T) {
	in := sliceIter(
		row(types.NewText("a"), types.NewInt(1)),
		row(types.NewText("b"), types.NewInt(2)),
		row(types.NewText("a"), types.NewInt(3)),
		row(types.NewText("a"), types.NewNull(types.Int)),
	)
	agg := &HashAggIter{
		In:      in,
		GroupBy: []Expr{col(0, types.Text)},
		Aggs: []*AggSpec{
			{Kind: AggCountStar},
			{Kind: AggCount, Arg: col(1, types.Int)},
			{Kind: AggSum, Arg: col(1, types.Int)},
			{Kind: AggMin, Arg: col(1, types.Int)},
			{Kind: AggMax, Arg: col(1, types.Int)},
			{Kind: AggAvg, Arg: col(1, types.Int)},
		},
	}
	rows, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups = %v", rows)
	}
	// Deterministic order (sorted by encoded key): "a" then "b".
	a := rows[0]
	if a[0].S != "a" || a[1].I != 3 || a[2].I != 2 || a[3].I != 4 ||
		a[4].I != 1 || a[5].I != 3 || a[6].F != 2.0 {
		t.Errorf("group a = %v", a)
	}
}

func TestGroupAggMatchesHashAgg(t *testing.T) {
	rows := []storage.Row{
		row(types.NewInt(1), types.NewInt(10)),
		row(types.NewInt(1), types.NewInt(20)),
		row(types.NewInt(2), types.NewInt(5)),
		row(types.NewInt(3), types.NewInt(7)),
		row(types.NewInt(3), types.NewInt(8)),
	}
	specs := func() []*AggSpec {
		return []*AggSpec{{Kind: AggCountStar}, {Kind: AggSum, Arg: col(1, types.Int)}}
	}
	hashed, err := Collect(&HashAggIter{In: sliceIter(rows...), GroupBy: []Expr{col(0, types.Int)}, Aggs: specs()})
	if err != nil {
		t.Fatal(err)
	}
	// GroupAgg needs sorted input — rows above are sorted by group key.
	grouped, err := Collect(&GroupAggIter{In: sliceIter(rows...), GroupBy: []Expr{col(0, types.Int)}, Aggs: specs()})
	if err != nil {
		t.Fatal(err)
	}
	if len(hashed) != len(grouped) {
		t.Fatalf("hash %d groups vs sort %d", len(hashed), len(grouped))
	}
	for i := range hashed {
		for j := range hashed[i] {
			if !types.Equal(hashed[i][j], grouped[i][j]) {
				t.Errorf("group %d col %d: hash %v vs sort %v", i, j, hashed[i][j], grouped[i][j])
			}
		}
	}
}

func TestCountDistinct(t *testing.T) {
	in := sliceIter(
		row(types.NewInt(1)), row(types.NewInt(1)), row(types.NewInt(2)),
		row(types.NewNull(types.Int)),
	)
	agg := &HashAggIter{In: in, Aggs: []*AggSpec{{Kind: AggCount, Arg: col(0, types.Int), Distinct: true}}}
	rows, _ := Collect(agg)
	if rows[0][0].I != 2 {
		t.Errorf("COUNT(DISTINCT) = %v", rows[0][0])
	}
}

func TestHashJoinBasics(t *testing.T) {
	probe := sliceIter(
		row(types.NewInt(1), types.NewText("p1")),
		row(types.NewInt(2), types.NewText("p2")),
		row(types.NewNull(types.Int), types.NewText("pnull")),
	)
	build := sliceIter(
		row(types.NewInt(1), types.NewText("b1")),
		row(types.NewInt(1), types.NewText("b1b")),
		row(types.NewInt(3), types.NewText("b3")),
		row(types.NewNull(types.Int), types.NewText("bnull")),
	)
	j := &HashJoinIter{
		Probe: probe, Build: build,
		ProbeKeys: []Expr{col(0, types.Int)},
		BuildKeys: []Expr{col(0, types.Int)},
	}
	rows, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	// key 1 matches twice; NULLs never join.
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if len(rows[0]) != 4 {
		t.Errorf("joined width = %d", len(rows[0]))
	}
}

func TestMergeJoinMatchesHashJoin(t *testing.T) {
	left := []storage.Row{
		row(types.NewInt(1)), row(types.NewInt(2)), row(types.NewInt(2)), row(types.NewInt(4)),
	}
	right := []storage.Row{
		row(types.NewInt(2)), row(types.NewInt(2)), row(types.NewInt(3)), row(types.NewInt(4)),
	}
	mj, err := Collect(&MergeJoinIter{
		Left: sliceIter(left...), Right: sliceIter(right...),
		LeftKeys: []Expr{col(0, types.Int)}, RightKeys: []Expr{col(0, types.Int)},
	})
	if err != nil {
		t.Fatal(err)
	}
	hj, err := Collect(&HashJoinIter{
		Probe: sliceIter(left...), Build: sliceIter(right...),
		ProbeKeys: []Expr{col(0, types.Int)}, BuildKeys: []Expr{col(0, types.Int)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2x2 duplicates + 4x4 = 5 matches.
	if len(mj) != 5 || len(hj) != 5 {
		t.Fatalf("merge %d vs hash %d rows", len(mj), len(hj))
	}
}

func TestNestedLoopCross(t *testing.T) {
	nl := &NestedLoopIter{
		Outer: sliceIter(row(types.NewInt(1)), row(types.NewInt(2))),
		Inner: sliceIter(row(types.NewText("a")), row(types.NewText("b"))),
	}
	rows, err := Collect(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("cross join rows = %d", len(rows))
	}
}

func TestLimitAndUnique(t *testing.T) {
	lim := &LimitIter{In: sliceIter(row(types.NewInt(1)), row(types.NewInt(2)), row(types.NewInt(3))), N: 2}
	rows, _ := Collect(lim)
	if len(rows) != 2 {
		t.Errorf("limit rows = %d", len(rows))
	}
	u := &UniqueIter{In: sliceIter(
		row(types.NewInt(1)), row(types.NewInt(1)), row(types.NewInt(2)), row(types.NewInt(2)), row(types.NewInt(2)),
	)}
	rows, _ = Collect(u)
	if len(rows) != 2 {
		t.Errorf("unique rows = %v", rows)
	}
}

func TestScanWithFilterOverHeap(t *testing.T) {
	schema, _ := storage.NewSchema(storage.Column{Name: "v", Typ: types.Int})
	h := storage.NewHeap(schema, nil)
	for i := 0; i < 100; i++ {
		if err := h.Insert(row(types.NewInt(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	filter := &BinExpr{Op: ">=", L: col(0, types.Int), R: lit(types.NewInt(90))}
	rows, err := Collect(NewScan(h, filter))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestRegistryAndBuiltins(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"coalesce", "length", "lower", "upper", "abs", "substr", "array_contains", "array_length", "array_get"} {
		if _, ok := r.Lookup(name); !ok {
			t.Errorf("builtin %s missing", name)
		}
	}
	length, _ := r.Lookup("length")
	v, err := length.Eval([]types.Datum{types.NewText("hello")})
	if err != nil || v.I != 5 {
		t.Errorf("length = %v %v", v, err)
	}
	substr, _ := r.Lookup("substr")
	v, _ = substr.Eval([]types.Datum{types.NewText("hello"), types.NewInt(2), types.NewInt(3)})
	if v.S != "ell" {
		t.Errorf("substr = %v", v)
	}
	// Out-of-range substr clamps.
	v, _ = substr.Eval([]types.Datum{types.NewText("hi"), types.NewInt(10)})
	if v.S != "" {
		t.Errorf("substr oob = %q", v.S)
	}
}

func TestAggFromName(t *testing.T) {
	if k, ok := AggFromName("count", true); !ok || k != AggCountStar {
		t.Error("count(*)")
	}
	if k, ok := AggFromName("SUM", false); !ok || k != AggSum {
		t.Error("sum case-insensitive")
	}
	if _, ok := AggFromName("length", false); ok {
		t.Error("length is not an aggregate")
	}
	if !IsAggName("avg") || IsAggName("lower") {
		t.Error("IsAggName")
	}
}
