package exec

// ColumnsUsed calls add with the index of every input column e reads and
// reports whether the expression tree was fully understood. A false return
// means an unknown node type was encountered, so the caller must assume
// the expression may read any column. The planner uses this to push
// referenced-column sets into batch scans (scan column pruning).
func ColumnsUsed(e Expr, add func(int)) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *ColExpr:
		add(x.Idx)
		return true
	case *ConstExpr:
		return true
	case *BinExpr:
		return ColumnsUsed(x.L, add) && ColumnsUsed(x.R, add)
	case *NotExpr:
		return ColumnsUsed(x.X, add)
	case *NegExpr:
		return ColumnsUsed(x.X, add)
	case *IsNullExpr:
		return ColumnsUsed(x.X, add)
	case *BetweenExpr:
		return ColumnsUsed(x.X, add) && ColumnsUsed(x.Lo, add) && ColumnsUsed(x.Hi, add)
	case *InListExpr:
		if !ColumnsUsed(x.X, add) {
			return false
		}
		for _, a := range x.List {
			if !ColumnsUsed(a, add) {
				return false
			}
		}
		return true
	case *LikeExpr:
		return ColumnsUsed(x.X, add) && ColumnsUsed(x.Pattern, add)
	case *AnyExpr:
		return ColumnsUsed(x.X, add) && ColumnsUsed(x.Array, add)
	case *CastExpr:
		return ColumnsUsed(x.X, add)
	case *CoalesceExpr:
		for _, a := range x.Args {
			if !ColumnsUsed(a, add) {
				return false
			}
		}
		return true
	case *CallExpr:
		for _, a := range x.Args {
			if !ColumnsUsed(a, add) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
