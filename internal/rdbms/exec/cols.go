package exec

// ParallelSafe reports whether e may be evaluated inside a parallel
// pipeline fragment: every function call it contains must be non-volatile,
// and the whole tree must be understood (unknown node types are assumed
// unsafe, mirroring ColumnsUsed's conservatism).
func ParallelSafe(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *ColExpr, *ConstExpr:
		return true
	case *BinExpr:
		return ParallelSafe(x.L) && ParallelSafe(x.R)
	case *NotExpr:
		return ParallelSafe(x.X)
	case *NegExpr:
		return ParallelSafe(x.X)
	case *IsNullExpr:
		return ParallelSafe(x.X)
	case *BetweenExpr:
		return ParallelSafe(x.X) && ParallelSafe(x.Lo) && ParallelSafe(x.Hi)
	case *InListExpr:
		if !ParallelSafe(x.X) {
			return false
		}
		for _, a := range x.List {
			if !ParallelSafe(a) {
				return false
			}
		}
		return true
	case *LikeExpr:
		return ParallelSafe(x.X) && ParallelSafe(x.Pattern)
	case *AnyExpr:
		return ParallelSafe(x.X) && ParallelSafe(x.Array)
	case *CastExpr:
		return ParallelSafe(x.X)
	case *CoalesceExpr:
		for _, a := range x.Args {
			if !ParallelSafe(a) {
				return false
			}
		}
		return true
	case *CallExpr:
		if x.Def != nil && x.Def.Volatile {
			return false
		}
		for _, a := range x.Args {
			if !ParallelSafe(a) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// ColumnsUsed calls add with the index of every input column e reads and
// reports whether the expression tree was fully understood. A false return
// means an unknown node type was encountered, so the caller must assume
// the expression may read any column. The planner uses this to push
// referenced-column sets into batch scans (scan column pruning).
func ColumnsUsed(e Expr, add func(int)) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *ColExpr:
		add(x.Idx)
		return true
	case *ConstExpr:
		return true
	case *BinExpr:
		return ColumnsUsed(x.L, add) && ColumnsUsed(x.R, add)
	case *NotExpr:
		return ColumnsUsed(x.X, add)
	case *NegExpr:
		return ColumnsUsed(x.X, add)
	case *IsNullExpr:
		return ColumnsUsed(x.X, add)
	case *BetweenExpr:
		return ColumnsUsed(x.X, add) && ColumnsUsed(x.Lo, add) && ColumnsUsed(x.Hi, add)
	case *InListExpr:
		if !ColumnsUsed(x.X, add) {
			return false
		}
		for _, a := range x.List {
			if !ColumnsUsed(a, add) {
				return false
			}
		}
		return true
	case *LikeExpr:
		return ColumnsUsed(x.X, add) && ColumnsUsed(x.Pattern, add)
	case *AnyExpr:
		return ColumnsUsed(x.X, add) && ColumnsUsed(x.Array, add)
	case *CastExpr:
		return ColumnsUsed(x.X, add)
	case *CoalesceExpr:
		for _, a := range x.Args {
			if !ColumnsUsed(a, add) {
				return false
			}
		}
		return true
	case *CallExpr:
		for _, a := range x.Args {
			if !ColumnsUsed(a, add) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
