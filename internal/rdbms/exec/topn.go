package exec

import (
	"sort"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

// BatchTopNIter is the bounded ORDER BY + LIMIT operator: it keeps at most
// N rows in a columnar worst-first heap while streaming its input, so an
// ORDER BY under a LIMIT never materializes the full input. Rows that
// compare worse than the current N-th row are discarded on arrival (the
// topn_short_circuits stats counter); the survivors are emitted in full
// sort order. Semantics match SortIter + LimitIter exactly, including
// stability: ties keep first-arrival order, because a tying newcomer is
// always worse than the incumbent it ties with.
type BatchTopNIter struct {
	In   BatchIterator
	Keys []SortKey
	N    int64
	// Size is rows per emitted batch (DefaultBatchSize when 0).
	Size int
	// AppendKeys appends the key columns after the data columns (the
	// parallel sorted-merge gather consumes them).
	AppendKeys bool
	// Heap, when non-nil, receives the topn_short_circuits counter on Close.
	Heap *storage.Heap

	built   bool
	err     error
	width   int
	present []bool
	cols    [][]types.Datum // slot-major: cols[j][slot]
	keyCols [][]types.Datum
	seqs    []int64 // arrival order per slot (stability tie-break)
	heap    []int32 // slot ids, worst row at the root
	perm    []int32
	pos     int
	out     *RowBatch
	shorted int64
}

// NextBatch implements BatchIterator.
func (t *BatchTopNIter) NextBatch() (*RowBatch, error) {
	if !t.built {
		t.build()
	}
	if t.err != nil {
		return nil, t.err
	}
	if t.pos >= len(t.perm) {
		return nil, nil
	}
	size := t.Size
	if size <= 0 {
		size = DefaultBatchSize
	}
	outW := t.width
	if t.AppendKeys {
		outW += len(t.Keys)
	}
	if t.out == nil {
		t.out = GetBatch(outW)
	}
	out := t.out
	out.Reset()
	hi := t.pos + size
	if hi > len(t.perm) {
		hi = len(t.perm)
	}
	emitPerm(out, t.cols, t.present, t.keyCols, t.AppendKeys, t.perm, t.pos, hi)
	t.pos = hi
	return out, nil
}

// worse reports whether slot a sorts strictly after slot b (a would be
// evicted before b). Equal keys fall back to arrival order: the later row
// is worse.
func (t *BatchTopNIter) worse(a, b int32) bool {
	for k := range t.Keys {
		// compareForSort is total over heterogeneous values; it never errors.
		c, _ := compareForSort(t.keyCols[k][a], t.keyCols[k][b], t.Keys[k].Desc)
		if c != 0 {
			return c > 0
		}
	}
	return t.seqs[a] > t.seqs[b]
}

func (t *BatchTopNIter) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(t.heap[i], t.heap[parent]) {
			return
		}
		t.heap[i], t.heap[parent] = t.heap[parent], t.heap[i]
		i = parent
	}
}

func (t *BatchTopNIter) siftDown(i int) {
	n := len(t.heap)
	for {
		worst := i
		if l := 2*i + 1; l < n && t.worse(t.heap[l], t.heap[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && t.worse(t.heap[r], t.heap[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.heap[i], t.heap[worst] = t.heap[worst], t.heap[i]
		i = worst
	}
}

// build drains the input (closing it) through the bounded heap and sorts
// the surviving slots.
func (t *BatchTopNIter) build() {
	t.built = true
	ctx := NewEvalCtx()
	first := true
	var seq int64
	keyVals := make([][]types.Datum, len(t.Keys)) // per-batch key columns
	for {
		in, err := t.In.NextBatch()
		if err != nil {
			t.err = err
			t.In.Close()
			return
		}
		if in == nil {
			break
		}
		if first {
			first = false
			t.width = in.Width()
			t.cols = make([][]types.Datum, t.width)
			t.present = make([]bool, t.width)
			for j := range t.present {
				t.present[j] = true
			}
			t.keyCols = make([][]types.Datum, len(t.Keys))
		}
		ctx.BeginBatch()
		for k := range t.Keys {
			if keyVals[k], err = EvalBatch(t.Keys[k].Expr, in, ctx); err != nil {
				t.err = err
				t.In.Close()
				return
			}
		}
		phys := in.PhysLen()
		for j := 0; j < t.width && j < in.Width(); j++ {
			if t.present[j] && len(in.Cols[j]) < phys {
				t.present[j] = false
				t.cols[j] = nil
			}
		}
		n := in.Len()
		sel := in.Sel
		for si := 0; si < n; si++ {
			r := selIdx(sel, si)
			if int64(len(t.heap)) >= t.N {
				if len(t.heap) == 0 { // N <= 0: keep nothing
					t.shorted++
					seq++
					continue
				}
				// Full: compare the newcomer against the current worst row.
				// A newcomer that ties is worse (later arrival), so keys
				// <= root means discard — the Top-N short circuit.
				root := t.heap[0]
				cmp := 0
				for k := range t.Keys {
					c, _ := compareForSort(keyVals[k][r], t.keyCols[k][root], t.Keys[k].Desc)
					if c != 0 {
						cmp = c
						break
					}
				}
				if cmp >= 0 {
					t.shorted++
					seq++
					continue
				}
				// Overwrite the worst slot in place and restore the heap.
				for j := 0; j < t.width; j++ {
					if t.present[j] {
						t.cols[j][root] = in.Cols[j][r]
					}
				}
				for k := range t.Keys {
					t.keyCols[k][root] = keyVals[k][r]
				}
				t.seqs[root] = seq
				seq++
				t.siftDown(0)
				continue
			}
			slot := int32(len(t.heap))
			for j := 0; j < t.width; j++ {
				if t.present[j] {
					t.cols[j] = append(t.cols[j], in.Cols[j][r])
				}
			}
			for k := range t.Keys {
				t.keyCols[k] = append(t.keyCols[k], keyVals[k][r])
			}
			t.seqs = append(t.seqs, seq)
			seq++
			t.heap = append(t.heap, slot)
			t.siftUp(len(t.heap) - 1)
		}
	}
	t.In.Close()
	t.perm = make([]int32, len(t.heap))
	copy(t.perm, t.heap)
	sort.Slice(t.perm, func(a, b int) bool {
		pa, pb := t.perm[a], t.perm[b]
		for k := range t.Keys {
			c, _ := compareForSort(t.keyCols[k][pa], t.keyCols[k][pb], t.Keys[k].Desc)
			if c != 0 {
				return c < 0
			}
		}
		return t.seqs[pa] < t.seqs[pb]
	})
}

// Close implements BatchIterator.
func (t *BatchTopNIter) Close() {
	t.In.Close()
	if t.out != nil {
		PutBatch(t.out)
		t.out = nil
	}
	if t.Heap != nil && t.shorted > 0 {
		t.Heap.RecordTopNShortCircuits(t.shorted)
		t.shorted = 0
	}
}

// SizeHint implements BatchSizeHinter.
func (t *BatchTopNIter) SizeHint() (int64, bool) {
	if t.built && t.err == nil {
		return int64(len(t.perm)), true
	}
	return t.N, false
}
