package exec

import (
	"fmt"
	"testing"

	"github.com/sinewdata/sinew/internal/rdbms/storage"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

func intHeap(t *testing.T, n int) *storage.Heap {
	t.Helper()
	schema, err := storage.NewSchema(
		storage.Column{Name: "v", Typ: types.Int},
		storage.Column{Name: "s", Typ: types.Text},
	)
	if err != nil {
		t.Fatal(err)
	}
	h := storage.NewHeap(schema, nil)
	for i := 0; i < n; i++ {
		s := types.NewText(fmt.Sprintf("s%d", i%7))
		if i%5 == 0 {
			s = types.NewNull(types.Text)
		}
		if err := h.Insert(row(types.NewInt(int64(i)), s)); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// collectBatches drains a BatchIterator into plain rows (copying).
func collectBatches(t *testing.T, it BatchIterator) []storage.Row {
	t.Helper()
	defer it.Close()
	var out []storage.Row
	for {
		b, err := it.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			return out
		}
		if b.Len() == 0 {
			t.Fatal("BatchIterator emitted an empty batch")
		}
		for i := 0; i < b.Len(); i++ {
			// Row is a physical accessor: logical row i lives at Sel[i]
			// when the batch carries a selection vector.
			out = append(out, b.Row(selIdx(b.Sel, i), nil))
		}
	}
}

func rowsEqual(t *testing.T, got, want []storage.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d: width %d vs %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if string(got[i][j].HashKey(nil)) != string(want[i][j].HashKey(nil)) {
				t.Fatalf("row %d col %d: %v vs %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestRowBatchAppendAndNulls(t *testing.T) {
	b := NewRowBatch(2, 4)
	b.AppendRow(row(types.NewInt(1), types.NewNull(types.Text)))
	b.AppendRow(row(types.NewInt(2), types.NewText("x")))
	if b.Len() != 2 || b.Width() != 2 {
		t.Fatalf("len=%d width=%d", b.Len(), b.Width())
	}
	if b.Nulls[0].AnyNull() {
		t.Error("col 0 has no NULLs")
	}
	if !b.Nulls[1].Get(0) || b.Nulls[1].Get(1) {
		t.Error("col 1 bitmap wrong")
	}
	r := b.Row(1, nil)
	if r[0].I != 2 || r[1].S != "x" {
		t.Errorf("Row(1) = %v", r)
	}
	b.Reset()
	if b.Len() != 0 || b.Nulls[1].AnyNull() {
		t.Error("Reset should clear rows and bitmaps")
	}
}

func TestRowBatchSetColRebuildsBitmap(t *testing.T) {
	b := NewRowBatch(1, 4)
	b.SetCol(0, []types.Datum{types.NewInt(1), types.NewNull(types.Int), types.NewInt(3)})
	b.SetLen(3)
	if b.Nulls[0].Get(0) || !b.Nulls[0].Get(1) || b.Nulls[0].Get(2) {
		t.Error("SetCol bitmap wrong")
	}
}

func TestRowBatchAdaptersRoundTrip(t *testing.T) {
	var want []storage.Row
	for i := 0; i < 100; i++ {
		d := types.NewInt(int64(i))
		if i%9 == 0 {
			d = types.NewNull(types.Int)
		}
		want = append(want, row(d, types.NewText(fmt.Sprintf("r%d", i))))
	}
	for _, size := range []int{1, 3, 100, 1000} {
		got, err := Collect(&BatchToRow{In: &RowToBatch{In: sliceIter(want...), Size: size}})
		if err != nil {
			t.Fatal(err)
		}
		rowsEqual(t, got, want)
	}
}

func TestBatchScanMatchesRowScan(t *testing.T) {
	h := intHeap(t, 1000)
	filter := &BinExpr{Op: "<", L: col(0, types.Int), R: lit(types.NewInt(333))}
	for _, f := range []Expr{nil, filter} {
		want, err := Collect(NewScan(h, f))
		if err != nil {
			t.Fatal(err)
		}
		got := collectBatches(t, NewBatchScan(h, f, 64))
		rowsEqual(t, got, want)
	}
}

func TestBatchScanSizeHint(t *testing.T) {
	h := intHeap(t, 100)
	if n, exact := NewBatchScan(h, nil, 0).SizeHint(); !exact || n != 100 {
		t.Errorf("unfiltered hint = %d %v", n, exact)
	}
	f := &BinExpr{Op: "=", L: col(0, types.Int), R: lit(types.NewInt(1))}
	if _, exact := NewBatchScan(h, f, 0).SizeHint(); exact {
		t.Error("filtered hint should be inexact")
	}
}

func TestBatchFilterProjectLimitPipeline(t *testing.T) {
	h := intHeap(t, 500)
	pred := &BinExpr{Op: "=",
		L: &BinExpr{Op: "%", L: col(0, types.Int), R: lit(types.NewInt(3))},
		R: lit(types.NewInt(0))}
	proj := []Expr{
		&BinExpr{Op: "*", L: col(0, types.Int), R: lit(types.NewInt(2))},
		col(1, types.Text),
	}
	want, err := Collect(&LimitIter{N: 40, In: &ProjectIter{Exprs: proj,
		In: &FilterIter{Pred: pred, In: NewScan(h, nil)}}})
	if err != nil {
		t.Fatal(err)
	}
	got := collectBatches(t, &BatchLimitIter{N: 40,
		In: &BatchProjectIter{Exprs: proj,
			In: &BatchFilterIter{Pred: pred,
				In: NewBatchScan(h, nil, 32)}}})
	rowsEqual(t, got, want)
}

func TestBatchFilterDoesNotAliasInput(t *testing.T) {
	// The filter's output must survive the producer recycling its batch on
	// the following NextBatch (batch reuse is the common case).
	h := intHeap(t, 300)
	pred := &BinExpr{Op: "<", L: col(0, types.Int), R: lit(types.NewInt(5))}
	f := &BatchFilterIter{Pred: pred, In: NewBatchScan(h, nil, 64)}
	b1, err := f.NextBatch()
	if err != nil || b1 == nil {
		t.Fatalf("first batch: %v %v", b1, err)
	}
	snapshot := b1.Row(0, nil)
	// Drive the source forward; b1 must keep its values.
	f.In.NextBatch()
	after := b1.Row(0, nil)
	if string(after[0].HashKey(nil)) != string(snapshot[0].HashKey(nil)) {
		t.Errorf("filter output aliased producer batch: %v -> %v", snapshot, after)
	}
	f.Close()
}

func TestBatchHashAggMatchesRowHashAgg(t *testing.T) {
	h := intHeap(t, 400)
	groupBy := []Expr{&BinExpr{Op: "%", L: col(0, types.Int), R: lit(types.NewInt(6))}}
	specs := func() []*AggSpec {
		return []*AggSpec{
			{Kind: AggCountStar},
			{Kind: AggCount, Arg: col(1, types.Text)},
			{Kind: AggSum, Arg: col(0, types.Int)},
			{Kind: AggMin, Arg: col(0, types.Int)},
			{Kind: AggMax, Arg: col(0, types.Int)},
			{Kind: AggCount, Arg: col(1, types.Text), Distinct: true},
		}
	}
	want, err := Collect(&HashAggIter{In: NewScan(h, nil), GroupBy: groupBy, Aggs: specs()})
	if err != nil {
		t.Fatal(err)
	}
	got := collectBatches(t, &BatchHashAggIter{
		In: NewBatchScan(h, nil, 128), GroupBy: groupBy, Aggs: specs()})
	// Both aggregates order groups by encoded key, so ordered compare works.
	rowsEqual(t, got, want)
	// Scalar aggregate over empty input still yields one row.
	empty := intHeap(t, 0)
	got = collectBatches(t, &BatchHashAggIter{
		In: NewBatchScan(empty, nil, 16), Aggs: []*AggSpec{{Kind: AggCountStar}}})
	if len(got) != 1 || got[0][0].I != 0 {
		t.Errorf("scalar agg over empty = %v", got)
	}
}

func TestParallelScanMatchesSequential(t *testing.T) {
	h := intHeap(t, 2000)
	filter := &BinExpr{Op: ">=", L: col(0, types.Int), R: lit(types.NewInt(100))}
	for _, f := range []Expr{nil, filter} {
		want, err := Collect(NewScan(h, f))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 9} {
			got := collectBatches(t, NewParallelScan(h, f, 64, workers))
			rowsEqual(t, got, want)
		}
	}
}

func TestParallelScanEarlyClose(t *testing.T) {
	h := intHeap(t, 3000)
	for i := 0; i < 20; i++ { // stress the shutdown path
		it := NewParallelScan(h, nil, 32, 4)
		b, err := it.NextBatch()
		if err != nil || b == nil {
			t.Fatalf("first batch: %v %v", b, err)
		}
		it.Close()
		it.Close() // idempotent
	}
}

func TestParallelScanBytesReadAndHint(t *testing.T) {
	h := intHeap(t, 2000)
	it := NewParallelScan(h, nil, 64, 4)
	if n, exact := it.SizeHint(); !exact || n != 2000 {
		t.Errorf("hint = %d %v", n, exact)
	}
	rows := collectBatches(t, it)
	if len(rows) != 2000 {
		t.Fatalf("rows = %d", len(rows))
	}
	if it.BytesRead() != h.SizeBytes() {
		t.Errorf("bytes read %d, heap size %d", it.BytesRead(), h.SizeBytes())
	}
}

func TestCollectUsesSizeHint(t *testing.T) {
	h := intHeap(t, 257)
	rows, err := Collect(NewScan(h, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 257 {
		t.Fatalf("rows = %d", len(rows))
	}
	// LimitIter caps the hint.
	l := &LimitIter{N: 10, In: NewScan(h, nil)}
	if n, exact := l.SizeHint(); !exact || n != 10 {
		t.Errorf("limit hint = %d %v", n, exact)
	}
}

func TestScanCloseFlushesPagerOnEarlyStop(t *testing.T) {
	p := storage.NewPager()
	schema, _ := storage.NewSchema(storage.Column{Name: "v", Typ: types.Int})
	h := storage.NewHeap(schema, p)
	for i := 0; i < 1000; i++ {
		h.Insert(row(types.NewInt(int64(i))))
	}
	p.Reset()
	// A LIMIT that stops a scan early must still charge the pages it
	// touched when the iterator is closed.
	it := &LimitIter{N: 5, In: NewScan(h, nil)}
	if _, err := Collect(it); err != nil {
		t.Fatal(err)
	}
	if r, _ := p.Stats(); r <= 0 || r >= h.SizeBytes() {
		t.Errorf("early-stopped scan charged %d of %d", r, h.SizeBytes())
	}
}

func TestBatchScanNeedCols(t *testing.T) {
	h := intHeap(t, 300)
	s := NewBatchScan(h, nil, 64)
	s.NeedCols = []int{1} // only the string column is referenced
	defer s.Close()
	n := 0
	for {
		b, err := s.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		if len(b.Cols[0]) != 0 {
			t.Fatalf("pruned column materialized %d values", len(b.Cols[0]))
		}
		if len(b.Cols[1]) != b.Len() {
			t.Fatalf("needed column has %d of %d values", len(b.Cols[1]), b.Len())
		}
		for i := 0; i < b.Len(); i++ {
			r := b.Row(i, nil)
			// Row() must zero-fill pruned cells, never index past them.
			if r[0].Typ != types.Unknown || !r[0].IsNull() {
				t.Fatalf("row %d pruned cell = %v", i, r[0])
			}
			n++
		}
	}
	if n != 300 {
		t.Fatalf("scanned %d rows, want 300", n)
	}
}

func TestCollectProjectedScan(t *testing.T) {
	h := intHeap(t, 500)
	// Delete a scattering of rows so the fused collector sees holes.
	var ids []storage.RowID
	h.Scan(func(id storage.RowID, r storage.Row) bool {
		if r[0].I%9 == 0 {
			ids = append(ids, id)
		}
		return true
	})
	for _, id := range ids {
		if _, err := h.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	cols := []int{1, 0, 1} // reorder + duplicate
	for _, limit := range []int64{-1, 0, 5, 137, h.NumRows(), h.NumRows() + 99} {
		want := func() []storage.Row {
			var out []storage.Row
			h.Scan(func(_ storage.RowID, r storage.Row) bool {
				if limit >= 0 && int64(len(out)) >= limit {
					return false
				}
				out = append(out, storage.Row{r[1], r[0], r[1]})
				return true
			})
			return out
		}()
		got, err := CollectProjectedScan(h, cols, limit, 64)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		rowsEqual(t, got, want)
	}
}

func TestCollectProjectedScanFlushesPager(t *testing.T) {
	p := storage.NewPager()
	schema, _ := storage.NewSchema(storage.Column{Name: "v", Typ: types.Int})
	h := storage.NewHeap(schema, p)
	for i := 0; i < 2000; i++ {
		h.Insert(row(types.NewInt(int64(i))))
	}
	p.Reset()
	rows, err := CollectProjectedScan(h, []int{0}, 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if r, _ := p.Stats(); r <= 0 || r >= h.SizeBytes() {
		t.Errorf("early-stopped fused scan charged %d of %d bytes", r, h.SizeBytes())
	}
}
