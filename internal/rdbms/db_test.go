package rdbms

import (
	"fmt"
	"strings"
	"testing"

	"github.com/sinewdata/sinew/internal/rdbms/exec"
	"github.com/sinewdata/sinew/internal/rdbms/types"
)

func mustExec(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE users (id integer NOT NULL, name text, age integer, score real, active boolean)`)
	mustExec(t, db, `INSERT INTO users (id, name, age, score, active) VALUES
		(1, 'alice', 30, 9.5, TRUE),
		(2, 'bob', 25, 7.25, FALSE),
		(3, 'carol', 35, 8.0, TRUE),
		(4, 'dave', 25, NULL, TRUE),
		(5, NULL, 40, 5.5, FALSE)`)
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT name, age FROM users WHERE age > 28 ORDER BY age`)
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	if res.Rows[0][0].S != "alice" || res.Rows[0][1].I != 30 {
		t.Errorf("row 0 = %v, want alice/30", res.Rows[0])
	}
	if res.Rows[2][1].I != 40 {
		t.Errorf("last age = %v, want 40", res.Rows[2][1])
	}
	if res.Columns[0] != "name" || res.Columns[1] != "age" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT * FROM users WHERE id = 2`)
	if len(res.Rows) != 1 || len(res.Rows[0]) != 5 {
		t.Fatalf("rows=%v", res.Rows)
	}
	if res.Rows[0][1].S != "bob" {
		t.Errorf("name = %v", res.Rows[0][1])
	}
}

func TestWherePredicates(t *testing.T) {
	db := newTestDB(t)
	cases := []struct {
		where string
		want  int
	}{
		{`age BETWEEN 25 AND 30`, 3},
		{`age NOT BETWEEN 25 AND 30`, 2},
		{`name IS NULL`, 1},
		{`name IS NOT NULL`, 4},
		{`score IS NULL`, 1},
		{`age IN (25, 40)`, 3},
		{`age NOT IN (25, 40)`, 2},
		{`name LIKE 'a%'`, 1},
		{`name LIKE '%o%'`, 2},
		{`NOT active`, 2},
		{`active AND age > 30`, 1},
		{`age = 25 OR age = 40`, 3},
		{`score > 7.0 AND active`, 2},
	}
	for _, c := range cases {
		res := mustExec(t, db, `SELECT id FROM users WHERE `+c.where)
		if len(res.Rows) != c.want {
			t.Errorf("WHERE %s: got %d rows, want %d", c.where, len(res.Rows), c.want)
		}
	}
}

func TestAggregates(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT COUNT(*), COUNT(score), SUM(age), AVG(age), MIN(age), MAX(age) FROM users`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	r := res.Rows[0]
	if r[0].I != 5 || r[1].I != 4 || r[2].I != 155 {
		t.Errorf("count/count(score)/sum = %v %v %v", r[0], r[1], r[2])
	}
	if r[3].F != 31.0 {
		t.Errorf("avg = %v, want 31", r[3])
	}
	if r[4].I != 25 || r[5].I != 40 {
		t.Errorf("min/max = %v %v", r[4], r[5])
	}
}

func TestGroupBy(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT age, COUNT(*) FROM users GROUP BY age ORDER BY age`)
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d, want 4: %v", len(res.Rows), res.Rows)
	}
	if res.Rows[0][0].I != 25 || res.Rows[0][1].I != 2 {
		t.Errorf("first group = %v", res.Rows[0])
	}
}

func TestGroupByHaving(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT age, COUNT(*) AS n FROM users GROUP BY age HAVING COUNT(*) > 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 25 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT DISTINCT age FROM users ORDER BY age`)
	if len(res.Rows) != 4 {
		t.Fatalf("distinct ages = %d, want 4", len(res.Rows))
	}
}

func TestOrderByDesc(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT id FROM users ORDER BY score DESC`)
	// NULL score orders first in DESC (NULLS FIRST on desc).
	if res.Rows[0][0].I != 4 {
		t.Errorf("first row id = %v (rows=%v)", res.Rows[0][0], res.Rows)
	}
	if res.Rows[1][0].I != 1 {
		t.Errorf("second row id = %v, want 1 (highest score)", res.Rows[1][0])
	}
}

func TestLimit(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT id FROM users ORDER BY id LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[1][0].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoin(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE orders (user_id integer, amount real)`)
	mustExec(t, db, `INSERT INTO orders VALUES (1, 10.0), (1, 20.0), (2, 5.0), (99, 1.0)`)
	res := mustExec(t, db, `SELECT u.name, o.amount FROM users u, orders o WHERE u.id = o.user_id ORDER BY o.amount`)
	if len(res.Rows) != 3 {
		t.Fatalf("join rows = %d, want 3: %v", len(res.Rows), res.Rows)
	}
	if res.Rows[0][0].S != "bob" || res.Rows[0][1].F != 5.0 {
		t.Errorf("first = %v", res.Rows[0])
	}
	// JOIN ... ON syntax must agree.
	res2 := mustExec(t, db, `SELECT u.name, o.amount FROM users u JOIN orders o ON u.id = o.user_id ORDER BY o.amount`)
	if len(res2.Rows) != 3 {
		t.Fatalf("JOIN ON rows = %d", len(res2.Rows))
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE a (x integer)`)
	mustExec(t, db, `CREATE TABLE b (x integer, y integer)`)
	mustExec(t, db, `CREATE TABLE c (y integer)`)
	mustExec(t, db, `INSERT INTO a VALUES (1), (2), (3)`)
	mustExec(t, db, `INSERT INTO b VALUES (1, 10), (2, 20), (3, 30)`)
	mustExec(t, db, `INSERT INTO c VALUES (10), (30)`)
	res := mustExec(t, db, `SELECT a.x, c.y FROM a, b, c WHERE a.x = b.x AND b.y = c.y ORDER BY a.x`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].I != 1 || res.Rows[1][1].I != 30 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSelfJoin(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT t1.name, t2.name FROM users t1, users t2 WHERE t1.age = t2.age AND t1.id < t2.id`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "bob" || res.Rows[0][1].S != "dave" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestUpdate(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `UPDATE users SET age = age + 1 WHERE active`)
	if res.RowsAffected != 3 {
		t.Fatalf("affected = %d, want 3", res.RowsAffected)
	}
	check := mustExec(t, db, `SELECT age FROM users WHERE id = 1`)
	if check.Rows[0][0].I != 31 {
		t.Errorf("age = %v, want 31", check.Rows[0][0])
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `DELETE FROM users WHERE age = 25`)
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	left := mustExec(t, db, `SELECT COUNT(*) FROM users`)
	if left.Rows[0][0].I != 3 {
		t.Errorf("remaining = %v", left.Rows[0][0])
	}
}

func TestAlterTable(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `ALTER TABLE users ADD COLUMN city text`)
	res := mustExec(t, db, `SELECT city FROM users WHERE id = 1`)
	if !res.Rows[0][0].IsNull() {
		t.Errorf("new column should be NULL, got %v", res.Rows[0][0])
	}
	mustExec(t, db, `UPDATE users SET city = 'nyc' WHERE id = 1`)
	res = mustExec(t, db, `SELECT city FROM users WHERE id = 1`)
	if res.Rows[0][0].S != "nyc" {
		t.Errorf("city = %v", res.Rows[0][0])
	}
	mustExec(t, db, `ALTER TABLE users DROP COLUMN city`)
	if _, err := db.Exec(`SELECT city FROM users`); err == nil {
		t.Error("expected error selecting dropped column")
	}
}

func TestExplainAndAnalyze(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `ANALYZE users`)
	res := mustExec(t, db, `EXPLAIN SELECT DISTINCT age FROM users`)
	if res.ExplainText == "" {
		t.Fatal("empty explain")
	}
	if !strings.Contains(res.ExplainText, "Seq Scan on users") {
		t.Errorf("explain missing scan:\n%s", res.ExplainText)
	}
}

func TestAggregatePlanSwitchesOnStats(t *testing.T) {
	// The Table 2 mechanism in miniature: a DISTINCT over a high-cardinality
	// column uses sort-based Unique when statistics reveal the cardinality,
	// and HashAggregate when the column is hidden behind an opaque function.
	db := Open()
	mustExec(t, db, `CREATE TABLE big (v integer, s text)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO big VALUES `)
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'x%d')", i, i)
	}
	mustExec(t, db, sb.String())
	mustExec(t, db, `ANALYZE big`)
	db.PlanConfig().HashAggMaxGroups = 1000

	withStats := mustExec(t, db, `EXPLAIN SELECT DISTINCT v FROM big`)
	if !strings.Contains(withStats.ExplainText, "Unique") {
		t.Errorf("with stats, want Unique:\n%s", withStats.ExplainText)
	}
	opaque := mustExec(t, db, `EXPLAIN SELECT DISTINCT abs(v) FROM big`)
	if !strings.Contains(opaque.ExplainText, "HashAggregate") {
		t.Errorf("opaque expr, want HashAggregate:\n%s", opaque.ExplainText)
	}
}

func TestUDF(t *testing.T) {
	db := newTestDB(t)
	db.RegisterFunc(doubleFunc())
	res := mustExec(t, db, `SELECT double_it(age) FROM users WHERE id = 1`)
	if res.Rows[0][0].I != 60 {
		t.Fatalf("double_it = %v", res.Rows[0][0])
	}
}

func TestTypeErrorOnBadCast(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`SELECT CAST(name AS integer) FROM users WHERE id = 1`); err == nil {
		t.Error("expected cast error for 'alice' -> integer")
	}
}

func TestMultiTypeComparisonError(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`SELECT id FROM users WHERE name > 5`); err == nil {
		t.Error("expected comparison error between text and integer")
	}
}

func TestSelectNoFrom(t *testing.T) {
	db := Open()
	res := mustExec(t, db, `SELECT 1 + 2 AS three, 'x' || 'y'`)
	if res.Rows[0][0].I != 3 || res.Rows[0][1].S != "xy" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestInsertRollbackOnError(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE t (a integer NOT NULL)`)
	_, err := db.Exec(`INSERT INTO t VALUES (1), (NULL), (3)`)
	if err == nil {
		t.Fatal("expected NOT NULL violation")
	}
	res := mustExec(t, db, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].I != 0 {
		t.Errorf("partial insert not rolled back: count = %v", res.Rows[0][0])
	}
}

func doubleFunc() *exec.FuncDef {
	return &exec.FuncDef{
		Name: "double_it", MinArgs: 1, MaxArgs: 1,
		Eval: func(args []types.Datum) (types.Datum, error) {
			if args[0].IsNull() {
				return args[0], nil
			}
			return types.NewInt(args[0].I * 2), nil
		},
	}
}

func TestOrderByOrdinal(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT name, age FROM users WHERE name IS NOT NULL ORDER BY 2 DESC, 1 LIMIT 2`)
	if res.Rows[0][1].I != 35 || res.Rows[1][1].I != 30 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if _, err := db.Exec(`SELECT name FROM users ORDER BY 9`); err == nil {
		t.Error("out-of-range ordinal should error")
	}
}

// Every SET validation failure carries the uniform "rdbms: SET <name>:"
// prefix so clients see which knob was rejected, whether the variable is
// unknown, mistyped, or out of range.
func TestSetValidationErrors(t *testing.T) {
	db := newTestDB(t)
	cases := []struct {
		sql  string
		want []string
	}{
		{`SET nope = 1`, []string{"rdbms: SET nope:", "unrecognized configuration parameter", "batch_size"}},
		{`SET batch_size = 'abc'`, []string{"rdbms: SET batch_size:", "requires an integer value"}},
		{`SET batch_size = 0`, []string{"rdbms: SET batch_size:", "outside the valid range [1, 65536]"}},
		{`SET batch_size = 1048576`, []string{"rdbms: SET batch_size:", "outside the valid range [1, 65536]"}},
		{`SET max_parallel_workers = 1048576`, []string{"rdbms: SET max_parallel_workers:", "outside the valid range [0, 1024]"}},
		{`SET parallel_scan_min_pages = many`, []string{"rdbms: SET parallel_scan_min_pages:", "requires an integer value"}},
		{`SET enable_batch = 42`, []string{"rdbms: SET enable_batch:", "requires a boolean value"}},
		{`SET enable_page_skip = 'yes'`, []string{"rdbms: SET enable_page_skip:", "requires a boolean value"}},
	}
	for _, tc := range cases {
		_, err := db.Exec(tc.sql)
		if err == nil {
			t.Errorf("%s: expected a validation error, got none", tc.sql)
			continue
		}
		for _, frag := range tc.want {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("%s: error %q does not mention %q", tc.sql, err, frag)
			}
		}
	}
}

func TestSetSessionKnobs(t *testing.T) {
	db := newTestDB(t)
	// batch_size flows into EXPLAIN's batch annotation.
	mustExec(t, db, `SET batch_size = 256`)
	res := mustExec(t, db, `EXPLAIN SELECT name FROM users WHERE age > 20`)
	if !strings.Contains(res.ExplainText, "(batch)") ||
		!strings.Contains(res.ExplainText, "Batch Size: 256") {
		t.Errorf("explain after SET batch_size:\n%s", res.ExplainText)
	}
	// enable_batch = off drops the batch pipeline; queries still run.
	mustExec(t, db, `SET enable_batch = off`)
	res = mustExec(t, db, `EXPLAIN SELECT name FROM users WHERE age > 20`)
	if strings.Contains(res.ExplainText, "(batch)") {
		t.Errorf("explain after SET enable_batch=off:\n%s", res.ExplainText)
	}
	rowMode := mustExec(t, db, `SELECT id FROM users ORDER BY id`)
	mustExec(t, db, `SET enable_batch = on`)
	batchMode := mustExec(t, db, `SELECT id FROM users ORDER BY id`)
	if len(rowMode.Rows) != len(batchMode.Rows) {
		t.Fatalf("row-mode %d rows, batch-mode %d", len(rowMode.Rows), len(batchMode.Rows))
	}
	for i := range rowMode.Rows {
		if rowMode.Rows[i][0].I != batchMode.Rows[i][0].I {
			t.Errorf("row %d: %v vs %v", i, rowMode.Rows[i], batchMode.Rows[i])
		}
	}
	// Errors: unknown knob, wrong type, out of range.
	for _, bad := range []string{
		`SET nonsense = 1`,
		`SET batch_size = 'huge'`,
		`SET batch_size = 0`,
		`SET batch_size = 100000000`,
		`SET enable_batch = 3`,
	} {
		if _, err := db.Exec(bad); err == nil {
			t.Errorf("Exec(%q) should error", bad)
		}
	}
}
